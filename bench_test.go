// Package psaflow's root benchmark harness regenerates every table and
// figure of the paper's evaluation as Go benchmarks:
//
//	BenchmarkFig5/<app>          one full uninformed PSA-flow run per app,
//	                             reporting the Fig. 5 speedup bars as metrics
//	BenchmarkFig5Informed/<app>  the informed run (Auto-Selected bar)
//	BenchmarkTable1              the added-LOC analysis (Table I)
//	BenchmarkFig6                the cost trade-off curves (Fig. 6)
//	BenchmarkUnrollDSE           the Fig. 2 unroll-until-overmap meta-program
//
// Run with: go test -bench=. -benchmem
package psaflow_test

import (
	"fmt"
	"testing"

	"psaflow/internal/bench"
	"psaflow/internal/core"
	"psaflow/internal/experiments"
	"psaflow/internal/hls"
	"psaflow/internal/interp"
	"psaflow/internal/minic"
	"psaflow/internal/platform"
	"psaflow/internal/tasks"
	"psaflow/internal/telemetry"
	"psaflow/internal/transform"
)

// BenchmarkFig5 runs the uninformed PSA-flow per benchmark and reports the
// five design speedups (the bars of Fig. 5) as custom metrics, plus the
// interpreter-substrate metrics the perf trajectory tracks: profiled-run
// cache hit rate and interpreter throughput (virtual ops per wall second).
//
// The cache-hit metric covers the benchmark's full Fig. 5 sweep — the
// uninformed and informed flows sharing one profiled-run cache, exactly
// as RunFig5 runs them — because a fresh per-flow cache yields a rate
// that is a structural constant of the flow (the same for every
// benchmark) instead of a property of the benchmark's sweep. The
// informed leg runs with the timer stopped, so ns/op and interp-Mops/s
// keep measuring the uninformed flow alone.
func BenchmarkFig5(b *testing.B) {
	for _, app := range bench.All() {
		b.Run(app.Name, func(b *testing.B) {
			b.ReportAllocs()
			var results []experiments.DesignResult
			var hits, misses, ops int64
			for i := 0; i < b.N; i++ {
				rec := telemetry.New()
				runs := core.NewRunCache()
				var err error
				results, err = experiments.RunBenchmarkShared(app,
					tasks.FlowOptions{Mode: tasks.Uninformed, Strategy: tasks.DefaultStrategy}, nil, rec, runs)
				if err != nil {
					b.Fatal(err)
				}
				ops += rec.Counter(telemetry.CounterInterpOps)
				b.StopTimer()
				if _, err := experiments.RunBenchmarkShared(app,
					tasks.FlowOptions{Mode: tasks.Informed, Strategy: tasks.DefaultStrategy}, nil, nil, runs); err != nil {
					b.Fatal(err)
				}
				h, m := runs.Stats()
				hits += h
				misses += m
				b.StartTimer()
			}
			if hits+misses > 0 {
				b.ReportMetric(100*float64(hits)/float64(hits+misses), "cache-hit%")
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(ops)/secs/1e6, "interp-Mops/s")
			}
			for _, r := range results {
				label := metricLabel(r.Design)
				if r.Infeasible {
					b.ReportMetric(0, label+"-overmap")
					continue
				}
				b.ReportMetric(r.Speedup, label)
			}
		})
	}
}

// BenchmarkFig5Informed runs the informed flow, reporting the
// Auto-Selected speedup.
func BenchmarkFig5Informed(b *testing.B) {
	for _, app := range bench.All() {
		b.Run(app.Name, func(b *testing.B) {
			var best float64
			for i := 0; i < b.N; i++ {
				results, err := experiments.RunBenchmark(app, tasks.Informed, nil)
				if err != nil {
					b.Fatal(err)
				}
				best = 0
				for _, r := range results {
					if r.Speedup > best {
						best = r.Speedup
					}
				}
			}
			b.ReportMetric(best, "auto-speedupX")
		})
	}
}

func metricLabel(d *core.Design) string {
	switch {
	case d.Target == platform.TargetCPU:
		return "omp-speedupX"
	case d.Device == platform.GTX1080Ti.Name:
		return "gtx1080-speedupX"
	case d.Device == platform.RTX2080Ti.Name:
		return "rtx2080-speedupX"
	case d.Device == platform.Arria10.Name:
		return "a10-speedupX"
	case d.Device == platform.Stratix10.Name:
		return "s10-speedupX"
	}
	return "unknown"
}

// BenchmarkTable1 regenerates the added-LOC analysis and reports the
// average percentages per design family.
func BenchmarkTable1(b *testing.B) {
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunTable1(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	avg := experiments.Table1Average(rows)
	b.ReportMetric(avg.OMP, "omp-addedLOC%")
	b.ReportMetric(avg.HIP1080, "hip-addedLOC%")
	b.ReportMetric(avg.A10, "a10-addedLOC%")
	b.ReportMetric(avg.S10, "s10-addedLOC%")
	b.ReportMetric(avg.Total, "total-addedLOC%")
}

// BenchmarkFig6 regenerates the cost trade-off curves and reports the
// crossover price ratios.
func BenchmarkFig6(b *testing.B) {
	var series []experiments.Fig6Series
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig5(nil)
		if err != nil {
			b.Fatal(err)
		}
		series = experiments.RunFig6(rows)
	}
	for _, s := range series {
		b.ReportMetric(s.Crossover, s.Benchmark+"-crossover")
	}
}

// BenchmarkUnrollDSE measures the Fig. 2 meta-program itself: the
// doubling unroll search with HLS re-estimation each step.
func BenchmarkUnrollDSE(b *testing.B) {
	src := `
void k(int n, const float *a, float *b) {
    for (int i = 0; i < n; i++) {
        b[i] = sqrtf(a[i] * a[i] + 1.0f);
    }
}
`
	b.ReportAllocs()
	finalUnroll := 0
	for i := 0; i < b.N; i++ {
		prog := minic.MustParse(src)
		fn := prog.MustFunc("k")
		loop := firstFor(fn)
		finalUnroll = 0
		for n := 1; n <= 1<<16; n *= 2 {
			transform.RemoveLoopPragmas(loop, "unroll")
			if err := transform.InsertLoopPragma(loop, fmt.Sprintf("unroll %d", n)); err != nil {
				b.Fatal(err)
			}
			rep := hls.Estimate(prog, fn, platform.Arria10, 0)
			if !rep.Fits {
				break
			}
			finalUnroll = n
		}
	}
	b.ReportMetric(float64(finalUnroll), "final-unroll")
}

// BenchmarkInterp measures the dynamic-analysis substrate: one profiled
// execution of each benchmark application on the default engine (the
// register bytecode VM).
func BenchmarkInterp(b *testing.B) {
	benchmarkInterp(b, interp.Config{})
}

// BenchmarkInterpClosures runs the same executions on the slot-indexed
// closure engine (the previous fast path), so the VM's gain over it stays
// measured release to release.
func BenchmarkInterpClosures(b *testing.B) {
	benchmarkInterp(b, interp.Config{Closures: true})
}

// BenchmarkInterpTreeWalk runs the same executions on the reference
// tree-walking evaluator, so the compiled paths' gain stays measured.
func BenchmarkInterpTreeWalk(b *testing.B) {
	benchmarkInterp(b, interp.Config{TreeWalk: true})
}

func benchmarkInterp(b *testing.B, base interp.Config) {
	for _, app := range bench.All() {
		b.Run(app.Name, func(b *testing.B) {
			prog := app.Parse()
			w := bench.Workload{B: app}
			if !base.Closures && !base.TreeWalk {
				// The production path (tasks.runWorkload) runs every
				// profiled execution through a shared program cache keyed
				// by the program fingerprint, so repeated runs reuse one
				// progressively-quickened lowering; benchmark the same way.
				base.Progs = interp.NewProgramCache()
				base.Fingerprint = minic.Fingerprint(prog)
			}
			b.ReportAllocs()
			var steps int64
			for i := 0; i < b.N; i++ {
				cfg := base
				cfg.Entry, cfg.Args = w.Entry(), w.Args()
				res, err := interp.Run(prog, cfg)
				if err != nil {
					b.Fatal(err)
				}
				steps += res.Steps
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(steps)/secs/1e6, "interp-Mops/s")
			}
		})
	}
}

// BenchmarkHLSEstimate measures the resource estimator on the largest
// kernel (Rush Larsen).
func BenchmarkHLSEstimate(b *testing.B) {
	app, _ := bench.ByName("rushlarsen")
	prog := app.Parse()
	fn := prog.MustFunc("rush_larsen")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hls.Estimate(prog, fn, platform.Stratix10, 0)
	}
}

func firstFor(fn *minic.FuncDecl) minic.Stmt {
	var loop minic.Stmt
	minic.Walk(fn, func(n minic.Node) bool {
		if loop != nil {
			return false
		}
		if _, ok := n.(*minic.ForStmt); ok {
			loop = n.(minic.Stmt)
			return false
		}
		return true
	})
	return loop
}

func runApp(prog *minic.Program, app *bench.Benchmark) (any, error) {
	w := bench.Workload{B: app}
	return runEntry(prog, w)
}

func runEntry(prog *minic.Program, w bench.Workload) (*interp.Result, error) {
	return interp.Run(prog, interp.Config{Entry: w.Entry(), Args: w.Args()})
}
