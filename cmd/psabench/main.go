// Command psabench regenerates the paper's evaluation artifacts: the
// Fig. 5 speedup table (informed + uninformed PSA-flow runs over all five
// benchmarks), the Table I added-LOC analysis, and the Fig. 6 cost
// trade-off curves. Each output prints measured values next to the
// paper's reported numbers.
//
// Usage:
//
//	psabench [-fig5] [-table1] [-fig6] [-ablate] [-json out.json]
//	         [-metrics] [-metrics-json out.json] [-v]
//	psabench -chaos [-faults seed=1,rate=0.2] [-chaos-runs 5]
//	         [-chaos-mode informed] [-chaos-json out.json]
//
// With no selection flags, everything runs (the chaos sweep is opt-in).
// -metrics prints a flow telemetry report (per-task wall clock plus
// interp/DSE/HLS counters) for the experiment runs; -metrics-json writes
// the same report as JSON. -chaos sweeps seeded fault injection over all
// five benchmarks (see docs/FAULTS.md) and writes the completion/retry/
// degradation report consumed by scripts/chaos.sh.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"psaflow/internal/experiments"
	"psaflow/internal/faults"
	"psaflow/internal/tasks"
	"psaflow/internal/telemetry"
)

func main() {
	fig5 := flag.Bool("fig5", false, "reproduce Fig. 5 (design speedups)")
	table1 := flag.Bool("table1", false, "reproduce Table I (added lines of code)")
	fig6 := flag.Bool("fig6", false, "reproduce Fig. 6 (FPGA vs GPU cost trade-off)")
	ablate := flag.Bool("ablate", false, "run the optimisation-task ablation study")
	jsonOut := flag.String("json", "", "also write the selected results as JSON to this file")
	metrics := flag.Bool("metrics", false, "print a flow telemetry report (timings + counters)")
	metricsJSON := flag.String("metrics-json", "", "write the flow telemetry report as JSON to this file")
	chaos := flag.Bool("chaos", false, "run the seeded fault-injection sweep over all benchmarks")
	faultSpec := flag.String("faults", "seed=1,rate=0.2", "chaos fault spec; the seed is the sweep's starting seed")
	chaosRuns := flag.Int("chaos-runs", 5, "number of consecutive seeds to sweep in -chaos")
	chaosMode := flag.String("chaos-mode", "informed", "flow mode for -chaos: informed or uninformed")
	chaosJSON := flag.String("chaos-json", "", "write the chaos report as JSON to this file (BENCH_<date>_chaos.json)")
	dseWorkers := flag.Int("dse-workers", 0, "evaluate DSE candidates on a worker pool of this size (0 or 1 = serial; results are identical)")
	quickenThreshold := flag.Int("quicken-threshold", 0, "interpreter hot-counter trip for profile-guided opcode specialization (0 = default, negative disables; results are identical)")
	verbose := flag.Bool("v", false, "log flow execution")
	flag.Parse()

	all := !*fig5 && !*table1 && !*fig6 && !*ablate && !*chaos
	var logf func(string, ...any)
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	var rec *telemetry.Recorder
	if *metrics || *metricsJSON != "" {
		rec = telemetry.New()
	}

	var fig5Rows []experiments.Fig5Row
	needFig5 := all || *fig5 || *fig6
	if needFig5 {
		rows, err := experiments.RunFig5Env(logf, rec, experiments.JobEnv{DSEWorkers: *dseWorkers, QuickenThreshold: *quickenThreshold})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig5:", err)
			os.Exit(1)
		}
		fig5Rows = rows
	}

	if all || *fig5 {
		fmt.Println("== Fig. 5: accelerated hotspot speedups (measured vs paper) ==")
		fmt.Println(experiments.FormatFig5(fig5Rows))
		winners := 0
		for _, r := range fig5Rows {
			if r.InformedPickedWinner(0.05) {
				winners++
			}
		}
		fmt.Printf("informed PSA strategy selected the best target for %d/%d benchmarks\n\n",
			winners, len(fig5Rows))
	}

	if all || *table1 {
		rows, err := experiments.RunTable1(logf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "table1:", err)
			os.Exit(1)
		}
		fmt.Println("== Table I: added lines of code per generated design ==")
		fmt.Println(experiments.FormatTable1(rows))
		fmt.Println()
	}

	if all || *fig6 {
		fmt.Println("== Fig. 6: FPGA vs GPU cost trade-off ==")
		fmt.Println(experiments.FormatFig6(experiments.RunFig6(fig5Rows)))
	}

	if *chaos {
		inj, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(2)
		}
		if inj == nil {
			fmt.Fprintln(os.Stderr, "chaos: -faults must enable injection (rate > 0)")
			os.Exit(2)
		}
		var mode tasks.Mode
		switch *chaosMode {
		case "informed":
			mode = tasks.Informed
		case "uninformed":
			mode = tasks.Uninformed
		default:
			fmt.Fprintf(os.Stderr, "chaos: unknown mode %q\n", *chaosMode)
			os.Exit(2)
		}
		fmt.Printf("== Chaos: %s mode, %s, %d seed(s) ==\n", *chaosMode, inj, *chaosRuns)
		rep := experiments.RunChaos(mode, inj, *chaosRuns, faults.RetryPolicy{}, logf)
		rep.Date = time.Now().UTC().Format("2006-01-02")
		fmt.Println(experiments.FormatChaos(rep))
		if *chaosJSON != "" {
			data, err := rep.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "chaos-json:", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*chaosJSON, data, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "chaos-json:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *chaosJSON)
		}
		if mode == tasks.Informed && rep.CompletionRate < 1 {
			fmt.Fprintf(os.Stderr, "chaos: informed completion rate %.0f%% < 100%%\n", rep.CompletionRate*100)
			os.Exit(1)
		}
	}

	var ablations []experiments.AblationRow
	if all || *ablate {
		rows, err := experiments.RunAblations(logf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ablate:", err)
			os.Exit(1)
		}
		ablations = rows
		fmt.Println("== Ablations: optimisation tasks on/off ==")
		fmt.Println(experiments.FormatAblations(rows))
	}

	if *jsonOut != "" {
		rep := experiments.ReportJSON{Ablations: ablations}
		if fig5Rows != nil {
			rep.Fig5 = experiments.Fig5ToJSON(fig5Rows)
			rep.Fig6 = experiments.RunFig6(fig5Rows)
		}
		if all || *table1 {
			if rows, err := experiments.RunTable1(nil); err == nil {
				rep.Table1 = rows
			}
		}
		data, err := experiments.MarshalReport(rep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "json:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "json:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}

	if rec != nil {
		rep := rec.Snapshot()
		if *metrics {
			fmt.Println(rep.Text())
		}
		if *metricsJSON != "" {
			data, err := rep.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "metrics-json:", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*metricsJSON, data, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "metrics-json:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *metricsJSON)
		}
	}
}
