// Command psaflow runs the implemented PSA-flow (paper Fig. 4) on one of
// the five evaluation benchmarks and reports the generated designs: target
// and device, tuned parameters, estimated performance, execution trace,
// and (optionally) the full generated target source.
//
// The flow graph defaults to the built-in PSA-flow of paper Fig. 4; -flow
// runs a user-defined .psa document instead (see docs/FLOWS.md), and
// -check validates a document without running anything.
//
// Usage:
//
//	psaflow -bench nbody [-mode informed|uninformed] [-timeout 30s] [-trace]
//	        [-flow examples/flows/paper.psa] [-budget 0.5]
//	        [-faults seed=1,rate=0.1,kinds=hls,run] [-task-timeout 10s]
//	        [-emit] [-metrics] [-metrics-json out.json] [-v]
//	psaflow -check examples/flows/paper.psa
//	psaflow -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"psaflow/internal/bench"
	"psaflow/internal/core"
	"psaflow/internal/experiments"
	"psaflow/internal/faults"
	"psaflow/internal/flowlang"
	"psaflow/internal/tasks"
	"psaflow/internal/telemetry"
)

func main() {
	name := flag.String("bench", "", "benchmark to run (see -list)")
	mode := flag.String("mode", "informed", "branch point A mode: informed or uninformed")
	flowFile := flag.String("flow", "", "run this .psa flow document instead of the built-in PSA-flow (see docs/FLOWS.md)")
	check := flag.String("check", "", "parse and validate this .psa flow document, print diagnostics, and exit")
	budget := flag.Float64("budget", 0, "cost budget for gated branches (0 = gate off; overrides the flow's budget setting)")
	list := flag.Bool("list", false, "list available benchmarks")
	sharing := flag.Bool("sharing", false, "enable FPGA resource sharing (recovers overmapped designs)")
	trace := flag.Bool("trace", false, "print the provenance trace of each design")
	emit := flag.Bool("emit", false, "print the generated target source of each design")
	outDir := flag.String("out", "", "export each design (source, trace, summary) under this directory")
	metrics := flag.Bool("metrics", false, "print a flow telemetry report (timings + counters)")
	metricsJSON := flag.String("metrics-json", "", "write the flow telemetry report as JSON to this file")
	timeout := flag.Duration("timeout", 0, "bound the flow's wall-clock time (0 = unbounded)")
	faultSpec := flag.String("faults", "", `inject deterministic faults: "seed=1,rate=0.1,kinds=hls,run" ("" or "off" disables)`)
	taskTimeout := flag.Duration("task-timeout", 0, "bound each flow task attempt; timed-out attempts are retried (0 = unbounded)")
	dseWorkers := flag.Int("dse-workers", 0, "evaluate DSE candidates on a worker pool of this size (0 or 1 = serial; results are identical)")
	quickenThreshold := flag.Int("quicken-threshold", 0, "interpreter hot-counter trip for profile-guided opcode specialization (0 = default, negative disables; results are identical)")
	verbose := flag.Bool("v", false, "log flow execution")
	flag.Parse()

	if *check != "" {
		src, err := os.ReadFile(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		f, err := flowlang.Parse(string(src))
		if err == nil {
			err = flowlang.Validate(f)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *check, err)
			os.Exit(2)
		}
		fmt.Printf("%s: ok (flow %q)\n", *check, f.Flow.Name)
		return
	}

	if *list {
		for _, b := range bench.All() {
			fmt.Printf("%-12s %s (expected informed target: %s)\n", b.Name, b.Descr, b.ExpectTarget)
		}
		return
	}
	b, err := bench.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		fmt.Fprintln(os.Stderr, "use -list to see available benchmarks")
		os.Exit(2)
	}
	var m tasks.Mode
	switch *mode {
	case "informed":
		m = tasks.Informed
	case "uninformed":
		m = tasks.Uninformed
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	var logf func(string, ...any)
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	var rec *telemetry.Recorder
	if *metrics || *metricsJSON != "" {
		rec = telemetry.New()
	}

	runCtx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, *timeout)
		defer cancel()
	}
	env := experiments.JobEnv{TaskTimeout: *taskTimeout, DSEWorkers: *dseWorkers, QuickenThreshold: *quickenThreshold}
	flowFaults := *faultSpec
	if *flowFile != "" {
		src, err := os.ReadFile(*flowFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		compiled, err := flowlang.CompileSource(string(src),
			flowlang.Options{Mode: m, Sharing: *sharing, Strategy: tasks.DefaultStrategy})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *flowFile, err)
			os.Exit(2)
		}
		env.Flow = compiled.Flow
		env.Budget = compiled.Budget
		if compiled.HasRetry {
			env.Retry = compiled.Retry
		}
		// CLI flags win over the document's settings.
		if flowFaults == "" {
			flowFaults = compiled.Faults
		}
	}
	inj, err := faults.ParseSpec(flowFaults)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	env.Faults = inj
	if *budget > 0 {
		env.Budget = *budget
	}
	if env.Budget > 0 {
		env.Cost = experiments.DefaultCost
	}
	results, err := experiments.RunBenchmarkEnv(runCtx, b, nil,
		tasks.FlowOptions{Mode: m, Strategy: tasks.DefaultStrategy, ResourceSharing: *sharing},
		env, logf, rec, core.NewRunCache())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s (%s mode): %d design(s)\n\n", b.Name, *mode, len(results))
	for _, r := range results {
		d := r.Design
		fmt.Printf("design %s\n", d.Label())
		if r.Infeasible {
			fmt.Printf("  NOT SYNTHESIZABLE: %s\n", d.Infeasible)
		} else {
			fmt.Printf("  estimated speedup over 1-thread CPU: %.1fX\n", r.Speedup)
			fmt.Printf("  time breakdown: kernel=%.4gs transfer=%.4gs overhead=%.4gs (%s)\n",
				r.Breakdown.KernelTime, r.Breakdown.TransferTime, r.Breakdown.Overhead, r.Breakdown.Note)
			switch {
			case d.NumThreads > 0:
				fmt.Printf("  tuned: %d OpenMP threads\n", d.NumThreads)
			case d.Blocksize > 0:
				fmt.Printf("  tuned: blocksize=%d pinned=%t sharedmem=%v fastmath=%t\n",
					d.Blocksize, d.Pinned, d.SharedMem, d.Specialised)
			case d.UnrollFactor > 0:
				fmt.Printf("  tuned: unroll=%d zerocopy=%t (%s)\n",
					d.UnrollFactor, d.ZeroCopy, d.HLSReport)
			}
			if d.Artifact != nil {
				fmt.Printf("  generated %s source: %d LOC (+%d over the %d-line reference)\n",
					d.Artifact.Target, d.Artifact.LOC, d.Artifact.AddedLOC, d.RefLOC)
			}
		}
		if *trace {
			fmt.Println("  trace:")
			for _, ev := range d.Trace {
				fmt.Printf("    %s\n", ev)
			}
		}
		if *emit && d.Artifact != nil {
			fmt.Println("  ---- generated source ----")
			fmt.Println(d.Artifact.Source)
		}
		if *outDir != "" {
			dir, err := d.Export(*outDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "export:", err)
				os.Exit(1)
			}
			fmt.Printf("  exported to %s\n", dir)
		}
		fmt.Println()
	}

	if rec != nil {
		rep := rec.Snapshot()
		if *metrics {
			fmt.Println(rep.Text())
		}
		if *metricsJSON != "" {
			data, err := rep.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "metrics-json:", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*metricsJSON, data, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "metrics-json:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *metricsJSON)
		}
	}
}
