// Command psaflowd serves PSA-flows over HTTP: clients POST MiniC source +
// workload + mode to /v1/jobs, a bounded worker pool executes the flows
// against one process-wide profiled-run cache, and every job transition is
// logged durably to a write-ahead store under -data-dir (submissions are
// acknowledged only after the fsync). A crash loses nothing acknowledged:
// the next start replays the WAL, serves finished results, and requeues
// jobs that were queued or running. SIGINT/SIGTERM drains gracefully: the
// listener stops, in-flight jobs finish, still-queued jobs stay in the
// store, and a clean-shutdown marker suppresses the recovery log line.
//
// Usage:
//
//	psaflowd [-addr :8080] [-workers 4] [-queue 64] [-data-dir DIR]
//	         [-timeout 5m] [-faults seed=1,rate=0.1,kinds=hls,run]
//	         [-event-ring 1024] [-event-watchers 1024] [-retain 1024]
//	         [-max-body 1048576] [-store-retain 0]
//	         [-batch=true] [-quicken-threshold 0]
//	         [-node-id n1 -peers n2=http://...,n3=http://...]
//	         [-tenant-quota acme=4:2,guest=1] [-v]
//
// With -node-id and -peers, N daemons form one logical service: jobs
// route to their (tenant, program-fingerprint) ring owner, any node
// proxies status/result/event reads for jobs it does not hold, and
// profiled-run results are shared cluster-wide through a fingerprint-
// keyed read-through cache (each unique program+workload is profiled
// once per cluster, not once per node).
//
// Endpoints:
//
//	POST   /v1/jobs             submit a job (202; 429 when the queue is full)
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result designs + telemetry (409 while running)
//	GET    /v1/jobs/{id}/events live event stream, NDJSON or SSE (?from=N resumes)
//	DELETE /v1/jobs/{id}        cancel (queued: 200; running: 202)
//	GET    /healthz             liveness (503 while draining)
//	GET    /metrics             service gauges + telemetry report
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"psaflow/internal/cluster"
	"psaflow/internal/faults"
	"psaflow/internal/service"
)

// buildClusterNode turns the -node-id/-peers flags into a cluster node,
// or nil when clustering is off. The peer table is "id=url" pairs; the
// local node must not appear in it.
func buildClusterNode(nodeID, peers string, logf func(string, ...any)) (*cluster.Node, error) {
	if nodeID == "" {
		if peers != "" {
			return nil, fmt.Errorf("-peers requires -node-id")
		}
		return nil, nil
	}
	if !cluster.ValidNodeID(nodeID) {
		return nil, fmt.Errorf("-node-id %q: want 1-16 of [a-z0-9]", nodeID)
	}
	table := make(map[string]string)
	for _, entry := range strings.Split(peers, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, url, ok := strings.Cut(entry, "=")
		id, url = strings.TrimSpace(id), strings.TrimSpace(url)
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("-peers entry %q: want id=http://host:port", entry)
		}
		if id == nodeID {
			return nil, fmt.Errorf("-peers entry %q names this node; list only the others", entry)
		}
		table[id] = url
	}
	return cluster.New(cluster.Config{Self: nodeID, Peers: table, Logf: logf})
}

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	workers := flag.Int("workers", 4, "worker pool size (concurrent flows)")
	queueSize := flag.Int("queue", 64, "job queue capacity (beyond it, submissions get 429)")
	dataDir := flag.String("data-dir", "", "root the durable job store (WAL, replayed on start) here (empty = no persistence)")
	timeout := flag.Duration("timeout", 5*time.Minute, "default per-job run-time bound (0 = unbounded)")
	faultSpec := flag.String("faults", "", `default fault-injection spec for jobs without their own ("" or "off" disables; kinds=io also targets persistence writes)`)
	eventRing := flag.Int("event-ring", 0, "per-job event ring size: the /events replay window (0 = default 1024)")
	eventWatchers := flag.Int("event-watchers", 0, "max concurrent /events watchers per job, beyond it 429 (0 = default 1024)")
	retainJobs := flag.Int("retain", 0, "terminal jobs kept in memory before eviction to store-backed lookups (0 = default 1024, negative = never evict)")
	maxBody := flag.Int64("max-body", 0, "max submit request body in bytes, beyond it 413 (0 = default 1 MiB)")
	storeRetain := flag.Int("store-retain", 0, "terminal job records kept in the durable store before tombstoning (0 = unlimited)")
	batch := flag.Bool("batch", true, "batch queued jobs with identical program+spec behind one flow execution (followers receive copied results)")
	quickenThreshold := flag.Int("quicken-threshold", 0, "interpreter hot-counter trip for profile-guided opcode specialization (0 = default, negative disables)")
	nodeID := flag.String("node-id", "", "this node's cluster identity, 1-16 of [a-z0-9] (empty = single-node, no clustering)")
	peers := flag.String("peers", "", `cluster peer table: comma-separated id=http://host:port entries, e.g. "n2=http://10.0.0.2:8080,n3=http://10.0.0.3:8080"`)
	tenantQuotas := flag.String("tenant-quota", "", `per-tenant scheduling contracts: comma-separated tenant=maxInflight[:weight], "*" = default, e.g. "acme=4:2,guest=1"`)
	verbose := flag.Bool("v", false, "log job lifecycle events")
	flag.Parse()

	if _, err := faults.ParseSpec(*faultSpec); err != nil {
		fmt.Fprintln(os.Stderr, "psaflowd:", err)
		os.Exit(2)
	}
	if _, err := service.ParseTenantQuotas(*tenantQuotas); err != nil {
		fmt.Fprintln(os.Stderr, "psaflowd:", err)
		os.Exit(2)
	}
	logger := log.New(os.Stderr, "psaflowd: ", log.LstdFlags|log.Lmsgprefix)
	var logf func(string, ...any)
	if *verbose {
		logf = logger.Printf
	}

	node, err := buildClusterNode(*nodeID, *peers, logf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psaflowd:", err)
		os.Exit(2)
	}

	s := service.New(service.Config{
		Workers:        *workers,
		QueueSize:      *queueSize,
		DataDir:        *dataDir,
		DefaultTimeout: *timeout,
		Faults:         *faultSpec,

		EventRingSize:     *eventRing,
		MaxWatchersPerJob: *eventWatchers,
		RetainJobs:        *retainJobs,
		MaxBody:           *maxBody,
		StoreRetain:       *storeRetain,

		Batch:            *batch,
		QuickenThreshold: *quickenThreshold,

		TenantQuotas: *tenantQuotas,
		Cluster:      node,

		Logf: logf,
	})
	if err := s.Start(); err != nil {
		logger.Fatalf("start: %v", err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Printf("listening on %s (workers=%d queue=%d data-dir=%q)", *addr, *workers, *queueSize, *dataDir)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Printf("%s: draining (in-flight jobs finish, queued jobs stay durable in the store)", sig)
	case err := <-errCh:
		logger.Fatalf("serve: %v", err)
	}

	// Stop accepting connections first, then drain the queue so no new job
	// can slip in behind the clean-shutdown marker.
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("http shutdown: %v", err)
	}
	leftover, err := s.Drain()
	if err != nil {
		logger.Fatalf("drain: %v", err)
	}
	if leftover > 0 {
		fmt.Fprintf(os.Stderr, "psaflowd: %d queued job(s) remain durable in the store\n", leftover)
	}
	logger.Printf("drained cleanly")
}
