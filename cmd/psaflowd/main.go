// Command psaflowd serves PSA-flows over HTTP: clients POST MiniC source +
// workload + mode to /v1/jobs, a bounded worker pool executes the flows
// against one process-wide profiled-run cache, and every job transition is
// logged durably to a write-ahead store under -data-dir (submissions are
// acknowledged only after the fsync). A crash loses nothing acknowledged:
// the next start replays the WAL, serves finished results, and requeues
// jobs that were queued or running. SIGINT/SIGTERM drains gracefully: the
// listener stops, in-flight jobs finish, still-queued jobs stay in the
// store, and a clean-shutdown marker suppresses the recovery log line.
//
// Usage:
//
//	psaflowd [-addr :8080] [-workers 4] [-queue 64] [-data-dir DIR]
//	         [-timeout 5m] [-faults seed=1,rate=0.1,kinds=hls,run]
//	         [-event-ring 1024] [-event-watchers 1024] [-retain 1024]
//	         [-max-body 1048576] [-store-retain 0]
//	         [-batch=true] [-quicken-threshold 0] [-v]
//
// Endpoints:
//
//	POST   /v1/jobs             submit a job (202; 429 when the queue is full)
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result designs + telemetry (409 while running)
//	GET    /v1/jobs/{id}/events live event stream, NDJSON or SSE (?from=N resumes)
//	DELETE /v1/jobs/{id}        cancel (queued: 200; running: 202)
//	GET    /healthz             liveness (503 while draining)
//	GET    /metrics             service gauges + telemetry report
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"psaflow/internal/faults"
	"psaflow/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	workers := flag.Int("workers", 4, "worker pool size (concurrent flows)")
	queueSize := flag.Int("queue", 64, "job queue capacity (beyond it, submissions get 429)")
	dataDir := flag.String("data-dir", "", "root the durable job store (WAL, replayed on start) here (empty = no persistence)")
	timeout := flag.Duration("timeout", 5*time.Minute, "default per-job run-time bound (0 = unbounded)")
	faultSpec := flag.String("faults", "", `default fault-injection spec for jobs without their own ("" or "off" disables; kinds=io also targets persistence writes)`)
	eventRing := flag.Int("event-ring", 0, "per-job event ring size: the /events replay window (0 = default 1024)")
	eventWatchers := flag.Int("event-watchers", 0, "max concurrent /events watchers per job, beyond it 429 (0 = default 1024)")
	retainJobs := flag.Int("retain", 0, "terminal jobs kept in memory before eviction to store-backed lookups (0 = default 1024, negative = never evict)")
	maxBody := flag.Int64("max-body", 0, "max submit request body in bytes, beyond it 413 (0 = default 1 MiB)")
	storeRetain := flag.Int("store-retain", 0, "terminal job records kept in the durable store before tombstoning (0 = unlimited)")
	batch := flag.Bool("batch", true, "batch queued jobs with identical program+spec behind one flow execution (followers receive copied results)")
	quickenThreshold := flag.Int("quicken-threshold", 0, "interpreter hot-counter trip for profile-guided opcode specialization (0 = default, negative disables)")
	verbose := flag.Bool("v", false, "log job lifecycle events")
	flag.Parse()

	if _, err := faults.ParseSpec(*faultSpec); err != nil {
		fmt.Fprintln(os.Stderr, "psaflowd:", err)
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "psaflowd: ", log.LstdFlags|log.Lmsgprefix)
	var logf func(string, ...any)
	if *verbose {
		logf = logger.Printf
	}

	s := service.New(service.Config{
		Workers:        *workers,
		QueueSize:      *queueSize,
		DataDir:        *dataDir,
		DefaultTimeout: *timeout,
		Faults:         *faultSpec,

		EventRingSize:     *eventRing,
		MaxWatchersPerJob: *eventWatchers,
		RetainJobs:        *retainJobs,
		MaxBody:           *maxBody,
		StoreRetain:       *storeRetain,

		Batch:            *batch,
		QuickenThreshold: *quickenThreshold,

		Logf: logf,
	})
	if err := s.Start(); err != nil {
		logger.Fatalf("start: %v", err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Printf("listening on %s (workers=%d queue=%d data-dir=%q)", *addr, *workers, *queueSize, *dataDir)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Printf("%s: draining (in-flight jobs finish, queued jobs stay durable in the store)", sig)
	case err := <-errCh:
		logger.Fatalf("serve: %v", err)
	}

	// Stop accepting connections first, then drain the queue so no new job
	// can slip in behind the clean-shutdown marker.
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("http shutdown: %v", err)
	}
	leftover, err := s.Drain()
	if err != nil {
		logger.Fatalf("drain: %v", err)
	}
	if leftover > 0 {
		fmt.Fprintf(os.Stderr, "psaflowd: %d queued job(s) remain durable in the store\n", leftover)
	}
	logger.Printf("drained cleanly")
}
