// Heterogeneous cloud runtime mapping (paper §IV-D): the uninformed
// PSA-flow generates all five designs per application; a cloud scheduler
// then maps a stream of incoming jobs onto priced CPU/GPU/FPGA resources
// using the designs' modeled execution times. The cost-aware policy beats
// the performance-first and static policies on spend — "the most
// performant design for a given application and workload might not be the
// most cost effective".
//
//	go run ./examples/cloud
package main

import (
	"fmt"
	"log"
	"math"

	"psaflow/internal/bench"
	"psaflow/internal/cloud"
	"psaflow/internal/experiments"
	"psaflow/internal/platform"
	"psaflow/internal/tasks"
)

func main() {
	// 1. Generate the diverse designs (uninformed mode) for three
	// applications and collect each design's modeled execution time.
	resources := []*cloud.Resource{
		{Name: "cpu-32core", Target: platform.TargetCPU, PricePerSec: 0.5, Instances: 4},
		{Name: "gpu-2080ti", Target: platform.TargetGPU, PricePerSec: 3.0, Instances: 2},
		{Name: "fpga-s10", Target: platform.TargetFPGA, PricePerSec: 2.0, Instances: 2},
	}
	resourceFor := func(r experiments.DesignResult) string {
		switch {
		case r.Design.Target == platform.TargetCPU:
			return "cpu-32core"
		case r.Design.Device == platform.RTX2080Ti.Name:
			return "gpu-2080ti"
		case r.Design.Device == platform.Stratix10.Name:
			return "fpga-s10"
		}
		return ""
	}

	var classes []*cloud.JobClass
	for _, name := range []string{"nbody", "kmeans", "adpredictor"} {
		b, err := bench.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("generating designs for %s...\n", name)
		results, err := experiments.RunBenchmark(b, tasks.Uninformed, nil)
		if err != nil {
			log.Fatal(err)
		}
		cls := &cloud.JobClass{Name: name, ExecTime: map[string]float64{}}
		for _, r := range results {
			res := resourceFor(r)
			if res == "" || r.Infeasible || math.IsInf(r.Breakdown.Total, 1) {
				continue
			}
			cls.ExecTime[res] = r.Breakdown.Total
		}
		classes = append(classes, cls)
		fmt.Printf("  design times: %v\n", cls.ExecTime)
	}

	// 2. A deterministic Poisson-ish job stream mixing the applications.
	var jobs []cloud.Job
	t := 0.0
	for i := 0; i < 120; i++ {
		cls := classes[i%len(classes)]
		t += 0.0004 * float64(1+(i*7)%5)
		jobs = append(jobs, cloud.Job{Class: cls, Arrival: t, Deadline: t + 0.25})
	}

	// 3. Compare mapping policies.
	fmt.Printf("\nmapping %d jobs over %d applications:\n", len(jobs), len(classes))
	for _, p := range []cloud.Policy{cloud.StaticBest{}, cloud.FastestFinish{}, cloud.CheapestFeasible{}} {
		res, err := cloud.Simulate(resources, jobs, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("  " + res.Summary())
	}
	fmt.Println("\ncheapest-feasible trades latency for spend; static-best queues on one device.")
}
