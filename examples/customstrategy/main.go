// Custom strategy: PSA-flows are programmatic and customizable — this
// example replaces the paper's Fig. 3 strategy at branch point A with a
// *latency-budget* strategy (pick the cheapest target whose estimated
// design time meets a deadline) and composes a reduced flow that only
// knows about the OpenMP and Stratix 10 paths. It demonstrates the
// extensibility claim of §III: new strategies and path sets plug into the
// same engine.
//
//	go run ./examples/customstrategy
package main

import (
	"fmt"
	"log"

	"psaflow/internal/bench"
	"psaflow/internal/core"
	"psaflow/internal/perfmodel"
	"psaflow/internal/platform"
	"psaflow/internal/tasks"
)

// deadlineSelector picks the first path whose rough pre-estimate meets the
// deadline, preferring the CPU (cheapest to deploy). It inspects the same
// KernelReport the built-in strategy uses.
func deadlineSelector(deadline float64) core.Selector {
	return core.SelectorFunc{
		SelName: "deadline",
		Fn: func(ctx *core.Context, d *core.Design, paths []core.Path, excluded map[int]bool) ([]int, error) {
			feat := d.Report.Features()
			ompT := perfmodel.OMPTime(ctx.CPU, feat, ctx.CPU.Cores)
			d.Tracef("branch", "deadline", "OMP estimate %.4gs vs deadline %.4gs", ompT, deadline)
			pick := func(name string) []int {
				for i, p := range paths {
					if p.Name == name && !excluded[i] {
						return []int{i}
					}
				}
				return nil
			}
			if ompT <= deadline {
				if idx := pick("cpu"); idx != nil {
					return idx, nil
				}
			}
			// CPU too slow: escalate to the FPGA path.
			if idx := pick("fpga"); idx != nil {
				return idx, nil
			}
			return nil, nil
		},
	}
}

// buildCustomFlow composes a two-target flow from the public task
// repository: the shared target-independent front, then a branch point
// with the custom strategy.
func buildCustomFlow(deadline float64) *core.Flow {
	flow := &core.Flow{Name: "deadline-flow"}
	for _, t := range tasks.TargetIndependent() {
		flow.AddTask(t)
	}

	cpuPath := &core.Flow{Name: "cpu"}
	cpuPath.AddTask(tasks.OMPParallelLoops)
	cpuPath.AddTask(tasks.NumThreadsDSE)
	cpuPath.AddTask(tasks.RenderDesign)

	fpgaPath := &core.Flow{Name: "fpga"}
	fpgaPath.AddTask(tasks.GenerateOneAPI)
	fpgaPath.AddTask(tasks.UnrollFixedLoopsTask)
	fpgaPath.AddTask(tasks.SinglePrecisionFns)
	fpgaPath.AddTask(tasks.SinglePrecisionLiterals)
	fpgaPath.AddTask(tasks.ZeroCopy(platform.Stratix10))
	fpgaPath.AddTask(tasks.UnrollUntilOvermap(platform.Stratix10))
	fpgaPath.AddTask(tasks.RenderDesign)

	flow.AddBranch(core.Branch{
		PointName: "A",
		Paths: []core.Path{
			{Name: "cpu", Flow: cpuPath},
			{Name: "fpga", Flow: fpgaPath},
		},
		Select: deadlineSelector(deadline),
	})
	return flow
}

func run(deadline float64) {
	b, err := bench.ByName("adpredictor")
	if err != nil {
		log.Fatal(err)
	}
	design := core.NewDesign(b.Name, b.Parse())
	ctx := &core.Context{Workload: bench.Workload{B: b}, CPU: platform.EPYC7543}
	designs, err := buildCustomFlow(deadline).Run(ctx, design)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deadline %.2gs:\n", deadline)
	for _, d := range designs {
		if d.Infeasible != "" {
			fmt.Printf("  %-40s not synthesizable (%s)\n", d.Label(), d.Infeasible)
			continue
		}
		fmt.Printf("  %-40s est %.4gs (%s)\n", d.Label(), d.Est.Total, d.Est.Note)
	}
	fmt.Println()
}

func main() {
	// A loose deadline keeps the design on the CPU; a tight one escalates
	// to the Stratix 10 pipeline.
	run(1.0)
	run(1e-5)
}
