// Fig. 2, literally: the paper's worked example is a meta-program
// `unroll_until_overmap(src=app.cpp, kernel_name=knl, mod_src=app_out.cpp)`
// that (1) builds the AST, (2) queries the outermost for-loops enclosed by
// knl — matching one loop, not the nested one, and none in main —
// (3) iteratively instruments `#pragma unroll $n`, runs the FPGA compiler
// for a resource report, and doubles n until LUTs exceed 90%, then
// (4) exports the last fitting design.
//
// This example runs that exact sequence with this repository's query,
// transform, and HLS layers, printing each DSE iteration and the final
// exported source.
//
//	go run ./examples/fig2
package main

import (
	"fmt"
	"log"

	"psaflow/internal/hls"
	"psaflow/internal/minic"
	"psaflow/internal/platform"
	"psaflow/internal/query"
	"psaflow/internal/transform"
)

// app.cpp from the figure: a kernel function with an outermost loop (and a
// nested one that must NOT match), plus a main-like function whose loops
// must also not match.
const appCpp = `
void knl(int n, const float *in, float *out) {
    for (int i = 0; i < n; i++) {
        float acc = 0.0f;
        for (int j = 0; j < 8; j++) {
            acc += in[i] * (float)(j + 1);
        }
        out[i] = sqrtf(acc);
    }
}

void main_like(int n, float *in, float *out) {
    int iter = 0;
    while (iter < 3) {
        for (int i = 0; i < n; i++) {
            in[i] = (float)i * 0.5f;
        }
        knl(n, in, out);
        iter++;
    }
}
`

func main() {
	// ast ⇐ Ast(src)
	ast, err := minic.Parse(appCpp)
	if err != nil {
		log.Fatal(err)
	}
	kernelName := "knl"
	dev := platform.Arria10

	// loops ⇐ query(∀loop,fn ∈ ast: loop.isForStmt ∧ fn.name = kernel_name
	//               ∧ fn.encloses(loop) ∧ loop.is_outermost)
	q := query.New(ast)
	loops := q.Select(func(q *query.Q, n minic.Node) bool {
		if !query.IsForStmt(n) {
			return false
		}
		fn := q.EnclosingFunc(n)
		return fn != nil && fn.Name == kernelName &&
			q.Encloses(fn, n) && q.IsOutermostLoop(n)
	})
	fmt.Printf("query matched %d loop(s) (the figure matches exactly one:\n", len(loops))
	fmt.Println("the nested loop and main's loops are excluded)")
	if len(loops) != 1 {
		log.Fatalf("expected 1 match, got %d", len(loops))
	}
	loop := loops[0].(minic.Stmt)
	kernel := ast.MustFunc(kernelName)

	// do { instrument; evaluate; } while not overmap
	n := 2
	var design *minic.Program
	finalN := 0
	for {
		transform.RemoveLoopPragmas(loop, "unroll")
		if err := transform.InsertLoopPragma(loop, fmt.Sprintf("unroll %d", n)); err != nil {
			log.Fatal(err)
		}
		report := hls.Estimate(ast, kernel, dev, 0) // exec(ast) → report
		overmap := report.LUTUtil >= hls.OvermapThreshold
		fmt.Printf("  n=%-5d LUT=%5.1f%%  overmap=%v\n", n, report.LUTUtil*100, overmap)
		if overmap {
			break
		}
		design = ast.Clone() // design ⇐ ast
		finalN = n
		n *= 2
	}

	// if design: design.export(mod_src)
	if design == nil {
		fmt.Println("no fitting design (even n=2 overmaps)")
		return
	}
	fmt.Printf("\nexported app_out.cpp with the final unroll factor %d:\n\n", finalN)
	fmt.Println(minic.Print(design))
}
