// ML-based PSA strategy: the paper's future work (§VI) proposes
// "sophisticated ML-based PSA strategies" for branch points. This example
// trains a k-nearest-neighbour target classifier on synthetic kernels
// labeled by the device performance models, plugs it into branch point A
// in place of the hand-written Fig. 3 strategy, and compares the two
// strategies' decisions across the five paper benchmarks.
//
//	go run ./examples/mlstrategy
package main

import (
	"fmt"
	"log"

	"psaflow/internal/bench"
	"psaflow/internal/core"
	"psaflow/internal/mlpsa"
	"psaflow/internal/platform"
	"psaflow/internal/tasks"
)

// buildMLFlow is BuildPSAFlow with the kNN selector at branch point A.
func buildMLFlow(model *mlpsa.KNN) *core.Flow {
	flow := &core.Flow{Name: "ml-psa-flow"}
	for _, t := range tasks.TargetIndependent() {
		flow.AddTask(t)
	}

	gpuFlow := &core.Flow{Name: "gpu-path"}
	gpuFlow.AddTask(tasks.GenerateHIP)
	gpuFlow.AddTask(tasks.PinnedMemory)
	gpuFlow.AddTask(tasks.SinglePrecisionFns)
	gpuFlow.AddTask(tasks.SinglePrecisionLiterals)
	gpuFlow.AddTask(tasks.SharedMemBuffer)
	gpuFlow.AddTask(tasks.SpecialisedMathFns)
	gpuFlow.AddTask(tasks.BlocksizeDSE(platform.RTX2080Ti))
	gpuFlow.AddTask(tasks.RenderDesign)

	fpgaFlow := &core.Flow{Name: "fpga-path"}
	fpgaFlow.AddTask(tasks.GenerateOneAPI)
	fpgaFlow.AddTask(tasks.UnrollFixedLoopsTask)
	fpgaFlow.AddTask(tasks.SinglePrecisionFns)
	fpgaFlow.AddTask(tasks.SinglePrecisionLiterals)
	fpgaFlow.AddTask(tasks.ZeroCopy(platform.Stratix10))
	fpgaFlow.AddTask(tasks.UnrollUntilOvermap(platform.Stratix10))
	fpgaFlow.AddTask(tasks.RenderDesign)

	cpuFlow := &core.Flow{Name: "cpu-path"}
	cpuFlow.AddTask(tasks.OMPParallelLoops)
	cpuFlow.AddTask(tasks.NumThreadsDSE)
	cpuFlow.AddTask(tasks.RenderDesign)

	flow.AddBranch(core.Branch{
		PointName: "A",
		Paths: []core.Path{
			{Name: "gpu", Flow: gpuFlow},
			{Name: "fpga", Flow: fpgaFlow},
			{Name: "cpu", Flow: cpuFlow},
		},
		Select: mlpsa.Selector(model),
	})
	return flow
}

func main() {
	fmt.Println("training kNN on 2500 synthetic kernels labeled by the device models...")
	examples := mlpsa.SyntheticTrainingSet(mlpsa.SyntheticConfig{N: 2500, Seed: 42})
	model, err := mlpsa.Train(examples, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d examples (k=%d)\n\n", len(model.Examples), model.K)

	fmt.Printf("%-12s %-18s %-18s %s\n", "benchmark", "Fig.3 strategy", "ML strategy", "agreement")
	agreeCount := 0
	for _, b := range bench.All() {
		mlTarget := runWith(b, buildMLFlow(model))
		agree := "=="
		if mlTarget == b.ExpectTarget {
			agreeCount++
		} else {
			agree = "!= (paper picks " + b.ExpectTarget + ")"
		}
		fmt.Printf("%-12s %-18s %-18s %s\n", b.Name, b.ExpectTarget, mlTarget, agree)
	}
	fmt.Printf("\nagreement with the expert strategy: %d/5\n", agreeCount)
	fmt.Println("note: the kNN uses scale-free features so it transfers from synthetic")
	fmt.Println("deployment-scale kernels to profile-scale measurements; decisions that")
	fmt.Println("hinge on absolute work (overhead amortization) are where it diverges —")
	fmt.Println("the gap the paper's future work on richer ML strategies would close.")
}

// runWith executes the flow on a benchmark and reports the target class of
// the produced design(s).
func runWith(b *bench.Benchmark, flow *core.Flow) string {
	design := core.NewDesign(b.Name, b.Parse())
	ctx := &core.Context{Workload: bench.Workload{B: b}, CPU: platform.EPYC7543}
	designs, err := flow.Run(ctx, design)
	if err != nil {
		log.Fatal(err)
	}
	if len(designs) == 0 {
		return "none"
	}
	return designs[0].Target.String()
}
