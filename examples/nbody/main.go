// N-Body walkthrough: push the paper's headline benchmark through the full
// PSA-flow in both modes, verify functional equivalence of the transformed
// program against the untouched reference by executing both, and show the
// generated HIP design the informed flow selects (751X in the paper's
// Fig. 5; ~750X under this repository's device models).
//
//	go run ./examples/nbody
package main

import (
	"fmt"
	"log"
	"strings"

	"psaflow/internal/bench"
	"psaflow/internal/experiments"
	"psaflow/internal/interp"
	"psaflow/internal/tasks"
)

func main() {
	b, err := bench.ByName("nbody")
	if err != nil {
		log.Fatal(err)
	}

	// Reference execution of the unmodified source: the checksum printed
	// by the driver is the functional-equivalence baseline.
	ref, err := interp.Run(b.Parse(), interp.Config{Entry: b.Entry, Args: b.MakeArgs()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference output: %s\n\n", strings.Join(ref.Output, " "))

	// Uninformed mode: all five designs.
	fmt.Println("uninformed PSA-flow (all targets):")
	uninformed, err := experiments.RunBenchmark(b, tasks.Uninformed, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range uninformed {
		if r.Infeasible {
			fmt.Printf("  %-45s n/a (%s)\n", r.Design.Label(), r.Design.Infeasible)
			continue
		}
		fmt.Printf("  %-45s %7.1fX\n", r.Design.Label(), r.Speedup)

		// Functional equivalence: the transformed program still computes
		// the same result on the same workload.
		out, err := interp.Run(r.Design.Prog, interp.Config{Entry: b.Entry, Args: b.MakeArgs()})
		if err != nil {
			log.Fatalf("%s: transformed program fails: %v", r.Design.Label(), err)
		}
		if got, want := strings.Join(out.Output, " "), strings.Join(ref.Output, " "); got != want {
			// SP-demoted designs drift in the last digits; report, don't fail.
			fmt.Printf("    note: output drifted after SP transforms (expected): %.40s...\n", got)
		}
	}

	// Informed mode: the Fig. 3 strategy classifies the hotspot
	// compute-bound with a parallel outer loop and no fully-unrollable
	// inner dependence loops → CPU+GPU branch.
	fmt.Println("\ninformed PSA-flow (auto-selected):")
	informed, err := experiments.RunBenchmark(b, tasks.Informed, nil)
	if err != nil {
		log.Fatal(err)
	}
	var best *experiments.DesignResult
	for i := range informed {
		r := &informed[i]
		fmt.Printf("  %-45s %7.1fX\n", r.Design.Label(), r.Speedup)
		if best == nil || r.Speedup > best.Speedup {
			best = r
		}
	}
	if best == nil || best.Design.Artifact == nil {
		log.Fatal("no design generated")
	}
	fmt.Printf("\nwinning design: %s (blocksize %d, pinned=%t, shared mem %v)\n",
		best.Design.Label(), best.Design.Blocksize, best.Design.Pinned, best.Design.SharedMem)
	fmt.Println("generated HIP kernel (excerpt):")
	for _, line := range strings.Split(best.Design.Artifact.Source, "\n") {
		fmt.Println("  " + line)
		if strings.Contains(line, "}") && strings.Contains(best.Design.Artifact.Source[:strings.Index(best.Design.Artifact.Source, line)+len(line)], "__global__") {
			break
		}
	}
}
