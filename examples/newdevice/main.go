// Plugging in new technology: the paper's Fig. 1 shows an AMD CPU+GPU
// design next to the NVIDIA ones, and §III states "the approach is not
// limited to the programming models or vendor device types in our
// implemented PSA-flow. To target new technology, target-specific
// design-flow tasks can be implemented and seamlessly plugged in."
//
// This example defines an AMD Radeon VII from its datasheet, plugs a third
// device path into branch point B — reusing the existing HIP tasks, which
// are AMD-native — and runs N-Body across all three GPUs.
//
//	go run ./examples/newdevice
package main

import (
	"fmt"
	"log"

	"psaflow/internal/bench"
	"psaflow/internal/core"
	"psaflow/internal/perfmodel"
	"psaflow/internal/platform"
	"psaflow/internal/tasks"
)

// radeonVII is the new device: pure data, defined outside the catalog.
// Datasheet: Vega 20, 60 CUs (modeled as SMs of 64 lanes), 1.75 GHz,
// 13.44 TFLOPS FP32, 1 TB/s HBM2, 256 KB register file per CU.
var radeonVII = platform.GPUSpec{
	Name:            "AMD Radeon VII",
	SMs:             60,
	CoresPerSM:      64,
	ClockHz:         1.75e9,
	PeakFP32:        13.44e12,
	MemBWBps:        1024e9,
	RegsPerSM:       65536,
	MaxThreadsPerSM: 1024,
	MaxBlockSize:    1024,
	PCIeBps:         9.0e9,
	PinnedScale:     1.25,
	Sustained:       0.55, // ROCm-era compiler maturity
	LatIPC:          0.70,
	SpecialDiv:      6.0,
}

// buildFlow is the paper's PSA-flow with a three-way branch point B.
func buildFlow() *core.Flow {
	flow := &core.Flow{Name: "psa-flow+amd"}
	for _, t := range tasks.TargetIndependent() {
		flow.AddTask(t)
	}
	gpuFlow := &core.Flow{Name: "gpu-path"}
	gpuFlow.AddTask(tasks.GenerateHIP)
	gpuFlow.AddTask(tasks.PinnedMemory)
	gpuFlow.AddTask(tasks.SinglePrecisionFns)
	gpuFlow.AddTask(tasks.SinglePrecisionLiterals)
	gpuFlow.AddTask(tasks.SharedMemBuffer)
	gpuFlow.AddTask(tasks.SpecialisedMathFns)
	gpuFlow.AddTask(tasks.VerifyKernelRuns)

	var paths []core.Path
	for _, dev := range append(platform.GPUs(), radeonVII) {
		devFlow := &core.Flow{Name: "gpu/" + dev.Name}
		devFlow.AddTask(tasks.BlocksizeDSE(dev)) // the same DSE task, new device
		devFlow.AddTask(tasks.RenderDesign)
		paths = append(paths, core.Path{Name: dev.Name, Flow: devFlow})
	}
	gpuFlow.AddBranch(core.Branch{PointName: "B", Paths: paths, Select: core.SelectAll{}})

	flow.AddBranch(core.Branch{
		PointName: "A",
		Paths:     []core.Path{{Name: "gpu", Flow: gpuFlow}},
		Select:    core.SelectAll{},
	})
	return flow
}

func main() {
	b, err := bench.ByName("nbody")
	if err != nil {
		log.Fatal(err)
	}
	design := core.NewDesign(b.Name, b.Parse())
	ctx := &core.Context{Workload: bench.Workload{B: b}, CPU: platform.EPYC7543, Parallel: true}
	designs, err := buildFlow().Run(ctx, design)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("branch point B now carries %d device paths:\n\n", len(designs))
	for _, d := range designs {
		feat := b.Scale.Apply(d.Report.Features())
		dev, ok := platform.GPUByName(d.Device)
		if !ok {
			dev = radeonVII
		}
		bd := perfmodel.GPUTime(dev, feat, d.Blocksize, d.Pinned)
		fmt.Printf("  %-45s blocksize=%-5d speedup %.0fX (%s)\n",
			d.Label(), d.Blocksize, perfmodel.Speedup(ctx.CPU, feat, bd), bd.Note)
	}
	fmt.Println("\nno new tasks were written: the HIP generator, the SP/fast-math")
	fmt.Println("transforms, and the blocksize DSE are device-parameterized, so the")
	fmt.Println("AMD path is pure configuration — the paper's extensibility claim.")
}
