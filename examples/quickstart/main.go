// Quickstart: take an unoptimized high-level source, run the implemented
// PSA-flow in informed mode, and print the design it auto-generates —
// target selection, tuned parameters, and the generated source.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"psaflow/internal/bench"
	"psaflow/internal/core"
	"psaflow/internal/interp"
	"psaflow/internal/minic"
	"psaflow/internal/perfmodel"
	"psaflow/internal/platform"
	"psaflow/internal/tasks"
)

// The technology-agnostic input: a plain C-style application with an
// obvious hot loop. No pragmas, no target-specific code.
const src = `
void saxpy_app(int n, double a, const double *x, double *y) {
    for (int i = 0; i < n; i++) {
        y[i] = a * x[i] + sqrt(y[i] * y[i] + 1.0);
    }
    y[0] = y[0] + 1.0;
}
`

// workload supplies the input the dynamic analyses execute.
type workload struct{ n int }

func (w workload) Name() string  { return "saxpy" }
func (w workload) Entry() string { return "saxpy_app" }
func (w workload) Args() []interp.Value {
	x := make([]float64, w.n)
	y := make([]float64, w.n)
	for i := range x {
		x[i] = float64(i) * 0.25
		y[i] = float64(i) * 0.5
	}
	return []interp.Value{
		interp.IntVal(int64(w.n)),
		interp.DoubleVal(2.0),
		interp.BufVal(interp.NewFloatBuffer("x", minic.Double, x)),
		interp.BufVal(interp.NewFloatBuffer("y", minic.Double, y)),
	}
}

func main() {
	prog, err := minic.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	design := core.NewDesign("saxpy", prog)
	ctx := &core.Context{
		Workload: workload{n: 65536},
		CPU:      platform.EPYC7543,
	}

	// The full Fig. 4 PSA-flow: target-independent analyses, branch point
	// A with the Fig. 3 strategy, then device-specific tasks and DSE.
	flow := tasks.BuildPSAFlow(tasks.Informed, tasks.DefaultStrategy)
	designs, err := flow.Run(ctx, design)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("input: %d-line technology-agnostic source\n", design.RefLOC)
	fmt.Printf("generated %d design(s):\n\n", len(designs))
	for _, d := range designs {
		fmt.Printf("== %s ==\n", d.Label())
		if d.Infeasible != "" {
			fmt.Printf("not synthesizable: %s\n\n", d.Infeasible)
			continue
		}
		feat := d.Report.Features()
		speedup := perfmodel.Speedup(ctx.CPU, feat, d.Est)
		fmt.Printf("estimated speedup vs 1-thread CPU: %.1fX (%s)\n", speedup, d.Est.Note)
		fmt.Println("decision trail:")
		for _, ev := range d.Trace {
			if ev.Kind == "branch" || ev.Kind == "dse" {
				fmt.Printf("  %s\n", ev)
			}
		}
		if d.Artifact != nil {
			fmt.Printf("\ngenerated %s source (%d lines, +%d over reference):\n",
				d.Artifact.Target, d.Artifact.LOC, d.Artifact.AddedLOC)
			fmt.Println(d.Artifact.Source)
		}
	}

	// The same API also powers the five paper benchmarks:
	fmt.Println("bundled paper benchmarks:")
	for _, b := range bench.All() {
		fmt.Printf("  %-12s %s\n", b.Name, b.Descr)
	}
}
