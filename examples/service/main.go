// Command service is a psaflowd client: it submits one or more jobs,
// polls them to completion, and reports the selected designs. With -n > 1
// it doubles as a small load generator (identical jobs race through the
// daemon's queue and shared run cache), and -json emits a machine-readable
// summary that scripts/loadtest.sh and the CI smoke test consume.
//
// -watch follows the first job's live event stream (GET
// /v1/jobs/{id}/events) and prints each event as it happens; -watchers N
// attaches N concurrent streams round-robin across the submitted jobs and
// reports time-to-first-event statistics — the latency a dashboard user
// would feel — alongside the throughput numbers.
//
// Usage (against a running daemon):
//
//	go run ./examples/service -addr http://localhost:8080 -bench nbody -watch
//	go run ./examples/service -bench adpredictor -n 32 -watchers 256 -json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

type jobSpec struct {
	Bench     string `json:"bench"`
	Mode      string `json:"mode,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	Tenant    string `json:"tenant,omitempty"`
	Faults    string `json:"faults,omitempty"`
}

type jobStatus struct {
	ID          string  `json:"id"`
	State       string  `json:"state"`
	Error       string  `json:"error"`
	QueueWaitMS float64 `json:"queue_wait_ms"`
	RunMS       float64 `json:"run_ms"`
}

type jobResult struct {
	jobStatus
	AutoTarget string `json:"auto_target"`
	Designs    []struct {
		Label   string  `json:"label"`
		Target  string  `json:"target"`
		Speedup float64 `json:"speedup"`
	} `json:"designs"`
}

type metrics struct {
	Service struct {
		RunCacheHits   int64   `json:"runcache_hits"`
		RunCacheMisses int64   `json:"runcache_misses"`
		QueueWaitMSAvg float64 `json:"queue_wait_ms_avg"`
	} `json:"service"`
	Telemetry struct {
		Counters map[string]int64 `json:"counters"`
	} `json:"telemetry"`
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return json.Unmarshal(body, v)
}

func submit(addr string, spec jobSpec) (string, error) {
	body, _ := json.Marshal(spec)
	resp, err := http.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit: %d: %s", resp.StatusCode, data)
	}
	var st jobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return "", err
	}
	return st.ID, nil
}

// event mirrors the daemon's NDJSON event frame.
type event struct {
	Seq    uint64  `json:"seq"`
	Type   string  `json:"type"`
	Name   string  `json:"name"`
	Detail string  `json:"detail"`
	DurMS  float64 `json:"dur_ms"`
}

// watchStats is one watcher's outcome: how long until the first event
// frame arrived and how many events the stream carried to completion.
type watchStats struct {
	ttfe   time.Duration
	events int
	err    error
}

// watchJob attaches one event stream and drains it to EOF (the server
// closes the stream at the job's terminal event). onEvent may be nil.
func watchJob(addr, id string, onEvent func(event)) watchStats {
	start := time.Now()
	resp, err := http.Get(addr + "/v1/jobs/" + id + "/events")
	if err != nil {
		return watchStats{err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return watchStats{err: fmt.Errorf("events %s: %d: %s", id, resp.StatusCode, body)}
	}
	var st watchStats
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue // heartbeat
		}
		if st.events == 0 {
			st.ttfe = time.Since(start)
		}
		st.events++
		if onEvent != nil {
			var e event
			if json.Unmarshal(line, &e) == nil {
				onEvent(e)
			}
		}
	}
	st.err = sc.Err()
	return st
}

func await(addr, id string, poll, wait time.Duration) (jobStatus, error) {
	deadline := time.Now().Add(wait)
	for {
		var st jobStatus
		if err := getJSON(addr+"/v1/jobs/"+id, &st); err != nil {
			return st, err
		}
		switch st.State {
		case "done", "failed", "cancelled":
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("job %s still %s after %v", id, st.State, wait)
		}
		time.Sleep(poll)
	}
}

func main() {
	addrFlag := flag.String("addr", "http://localhost:8080", "psaflowd base URL, or a comma-separated list of cluster nodes (submissions round-robin)")
	benchName := flag.String("bench", "nbody", "benchmark to submit")
	mode := flag.String("mode", "", "informed (default) or uninformed")
	n := flag.Int("n", 1, "number of identical jobs to submit concurrently")
	timeoutMS := flag.Int64("timeout-ms", 0, "per-job run-time bound (0 = server default)")
	poll := flag.Duration("poll", 100*time.Millisecond, "status poll interval")
	wait := flag.Duration("wait", 5*time.Minute, "per-job completion deadline")
	jsonOut := flag.Bool("json", false, "emit a machine-readable run summary")
	watch := flag.Bool("watch", false, "print the first job's live event stream")
	watchers := flag.Int("watchers", 0, "attach N concurrent event streams (round-robin over jobs) and report time-to-first-event")
	tenants := flag.Int("tenants", 0, "spread jobs over K synthetic tenants (lt0..ltK-1) so a cluster places them across nodes (0 = anonymous)")
	faultSpec := flag.String("faults", "", "per-job fault-injection spec (adds retry wall-time per job)")
	flag.Parse()

	addrs := strings.Split(*addrFlag, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	start := time.Now()

	ids := make([]string, *n)
	errs := make([]error, *n)
	submitAddr := make([]string, *n)
	var wg sync.WaitGroup
	for i := 0; i < *n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := jobSpec{Bench: *benchName, Mode: *mode, TimeoutMS: *timeoutMS, Faults: *faultSpec}
			if *tenants > 0 {
				spec.Tenant = fmt.Sprintf("lt%d", i%*tenants)
			}
			submitAddr[i] = addrs[i%len(addrs)]
			ids[i], errs[i] = submit(submitAddr[i], spec)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			fmt.Fprintf(os.Stderr, "job %d: %v\n", i, err)
			os.Exit(1)
		}
	}

	// Watchers attach while the jobs are still queued or running, so the
	// measured time-to-first-event is the ring replay latency a live
	// dashboard would see, not a post-hoc read.
	var watchWG sync.WaitGroup
	watched := make([]watchStats, *watchers)
	for i := 0; i < *watchers; i++ {
		watchWG.Add(1)
		go func(i int) {
			defer watchWG.Done()
			j := i % len(ids)
			watched[i] = watchJob(submitAddr[j], ids[j], nil)
		}(i)
	}
	if *watch {
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			st := watchJob(submitAddr[0], ids[0], func(e event) {
				fmt.Printf("  event %3d %-16s %-40s %s", e.Seq, e.Type, e.Name, e.Detail)
				if e.DurMS > 0 {
					fmt.Printf(" (%.1fms)", e.DurMS)
				}
				fmt.Println()
			})
			if st.err != nil {
				fmt.Fprintf(os.Stderr, "watch %s: %v\n", ids[0], st.err)
			}
		}()
	}

	// Jobs run concurrently server-side; polling them in order just
	// collects the results.
	states := make([]jobStatus, *n)
	for i, id := range ids {
		st, err := await(submitAddr[i], id, *poll, *wait)
		if err != nil {
			fmt.Fprintf(os.Stderr, "job %s: %v\n", id, err)
			os.Exit(1)
		}
		states[i] = st
	}
	wall := time.Since(start)
	watchWG.Wait() // streams end at each job's terminal event

	done := 0
	var waitSum float64
	for _, st := range states {
		if st.State == "done" {
			done++
		}
		waitSum += st.QueueWaitMS
	}

	// Fold the watcher fleet's outcomes into TTFE stats.
	var ttfes []time.Duration
	eventsStreamed := 0
	for i, ws := range watched {
		if ws.err != nil {
			fmt.Fprintf(os.Stderr, "watcher %d: %v\n", i, ws.err)
			os.Exit(1)
		}
		ttfes = append(ttfes, ws.ttfe)
		eventsStreamed += ws.events
	}
	sort.Slice(ttfes, func(i, j int) bool { return ttfes[i] < ttfes[j] })
	ttfeMS := func(q float64) float64 {
		if len(ttfes) == 0 {
			return 0
		}
		i := int(q * float64(len(ttfes)-1))
		return float64(ttfes[i]) / float64(time.Millisecond)
	}

	if *jsonOut {
		var m metrics
		_ = getJSON(addrs[0]+"/metrics", &m)
		out := map[string]any{
			"jobs":               *n,
			"done":               done,
			"bench":              *benchName,
			"wall_s":             wall.Seconds(),
			"throughput_jobs_s":  float64(*n) / wall.Seconds(),
			"queue_wait_ms_avg":  waitSum / float64(*n),
			"runcache_hits":      m.Service.RunCacheHits,
			"runcache_misses":    m.Service.RunCacheMisses,
			"server_wait_ms_avg": m.Service.QueueWaitMSAvg,
		}
		if len(addrs) > 1 {
			// Per-node placement from the job-ID prefix (the cluster's
			// routing scheme: <node>-j<base>-<seq>), plus the cluster
			// counters summed across every node's /metrics.
			perNode := make(map[string]int)
			for _, id := range ids {
				node := "?"
				if head, rest, ok := strings.Cut(id, "-"); ok && strings.HasPrefix(rest, "j") {
					node = head
				}
				perNode[node]++
			}
			agg := make(map[string]int64)
			for _, a := range addrs {
				var nm metrics
				if getJSON(a+"/metrics", &nm) != nil {
					continue
				}
				for k, v := range nm.Telemetry.Counters {
					if strings.HasPrefix(k, "cluster.") {
						agg[k] += v
					}
				}
			}
			hits := agg["cluster.runcache.peer_hits"]
			misses := agg["cluster.runcache.peer_misses"]
			hitPct := 0.0
			if hits+misses > 0 {
				hitPct = 100 * float64(hits) / float64(hits+misses)
			}
			out["nodes"] = len(addrs)
			out["jobs_per_node"] = perNode
			out["jobs_forwarded"] = agg["cluster.jobs_forwarded"]
			out["requests_proxied"] = agg["cluster.requests_proxied"]
			out["runcache_peer_hits"] = hits
			out["runcache_peer_misses"] = misses
			out["runcache_fills"] = agg["cluster.runcache.fills"]
			out["cross_node_hit_pct"] = hitPct
		}
		if *watchers > 0 {
			var sum time.Duration
			for _, d := range ttfes {
				sum += d
			}
			out["watchers"] = *watchers
			out["events_streamed"] = eventsStreamed
			out["ttfe_ms_avg"] = float64(sum) / float64(len(ttfes)) / float64(time.Millisecond)
			out["ttfe_ms_p95"] = ttfeMS(0.95)
			out["ttfe_ms_max"] = ttfeMS(1)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	} else {
		for _, st := range states {
			fmt.Printf("job %s: %s (queued %.0fms, ran %.0fms)\n", st.ID, st.State, st.QueueWaitMS, st.RunMS)
			if st.Error != "" {
				fmt.Printf("  error: %s\n", st.Error)
			}
		}
		// Show the first job's designs as the walkthrough payload.
		var res jobResult
		if err := getJSON(submitAddr[0]+"/v1/jobs/"+ids[0]+"/result", &res); err == nil {
			fmt.Printf("auto-selected target: %s\n", res.AutoTarget)
			for _, d := range res.Designs {
				if d.Speedup > 0 {
					fmt.Printf("  %-28s %-6s %5.1fX\n", d.Label, d.Target, d.Speedup)
				} else {
					fmt.Printf("  %-28s %-6s (infeasible)\n", d.Label, d.Target)
				}
			}
		}
		if *watchers > 0 {
			fmt.Printf("%d watcher(s) streamed %d events; time-to-first-event p95 %.1fms max %.1fms\n",
				*watchers, eventsStreamed, ttfeMS(0.95), ttfeMS(1))
		}
	}
	if done != *n {
		os.Exit(1)
	}
}
