// Command service is a psaflowd client: it submits one or more jobs,
// polls them to completion, and reports the selected designs. With -n > 1
// it doubles as a small load generator (identical jobs race through the
// daemon's queue and shared run cache), and -json emits a machine-readable
// summary that scripts/loadtest.sh and the CI smoke test consume.
//
// Usage (against a running daemon):
//
//	go run ./examples/service -addr http://localhost:8080 -bench nbody
//	go run ./examples/service -bench adpredictor -n 32 -json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"
)

type jobSpec struct {
	Bench     string `json:"bench"`
	Mode      string `json:"mode,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

type jobStatus struct {
	ID          string  `json:"id"`
	State       string  `json:"state"`
	Error       string  `json:"error"`
	QueueWaitMS float64 `json:"queue_wait_ms"`
	RunMS       float64 `json:"run_ms"`
}

type jobResult struct {
	jobStatus
	AutoTarget string `json:"auto_target"`
	Designs    []struct {
		Label   string  `json:"label"`
		Target  string  `json:"target"`
		Speedup float64 `json:"speedup"`
	} `json:"designs"`
}

type metrics struct {
	Service struct {
		RunCacheHits   int64   `json:"runcache_hits"`
		RunCacheMisses int64   `json:"runcache_misses"`
		QueueWaitMSAvg float64 `json:"queue_wait_ms_avg"`
	} `json:"service"`
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return json.Unmarshal(body, v)
}

func submit(addr string, spec jobSpec) (string, error) {
	body, _ := json.Marshal(spec)
	resp, err := http.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit: %d: %s", resp.StatusCode, data)
	}
	var st jobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return "", err
	}
	return st.ID, nil
}

func await(addr, id string, poll, wait time.Duration) (jobStatus, error) {
	deadline := time.Now().Add(wait)
	for {
		var st jobStatus
		if err := getJSON(addr+"/v1/jobs/"+id, &st); err != nil {
			return st, err
		}
		switch st.State {
		case "done", "failed", "cancelled":
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("job %s still %s after %v", id, st.State, wait)
		}
		time.Sleep(poll)
	}
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "psaflowd base URL")
	benchName := flag.String("bench", "nbody", "benchmark to submit")
	mode := flag.String("mode", "", "informed (default) or uninformed")
	n := flag.Int("n", 1, "number of identical jobs to submit concurrently")
	timeoutMS := flag.Int64("timeout-ms", 0, "per-job run-time bound (0 = server default)")
	poll := flag.Duration("poll", 100*time.Millisecond, "status poll interval")
	wait := flag.Duration("wait", 5*time.Minute, "per-job completion deadline")
	jsonOut := flag.Bool("json", false, "emit a machine-readable run summary")
	flag.Parse()

	spec := jobSpec{Bench: *benchName, Mode: *mode, TimeoutMS: *timeoutMS}
	start := time.Now()

	ids := make([]string, *n)
	errs := make([]error, *n)
	var wg sync.WaitGroup
	for i := 0; i < *n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i], errs[i] = submit(*addr, spec)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			fmt.Fprintf(os.Stderr, "job %d: %v\n", i, err)
			os.Exit(1)
		}
	}

	// Jobs run concurrently server-side; polling them in order just
	// collects the results.
	states := make([]jobStatus, *n)
	for i, id := range ids {
		st, err := await(*addr, id, *poll, *wait)
		if err != nil {
			fmt.Fprintf(os.Stderr, "job %s: %v\n", id, err)
			os.Exit(1)
		}
		states[i] = st
	}
	wall := time.Since(start)

	done := 0
	var waitSum float64
	for _, st := range states {
		if st.State == "done" {
			done++
		}
		waitSum += st.QueueWaitMS
	}

	if *jsonOut {
		var m metrics
		_ = getJSON(*addr+"/metrics", &m)
		out := map[string]any{
			"jobs":               *n,
			"done":               done,
			"bench":              *benchName,
			"wall_s":             wall.Seconds(),
			"throughput_jobs_s":  float64(*n) / wall.Seconds(),
			"queue_wait_ms_avg":  waitSum / float64(*n),
			"runcache_hits":      m.Service.RunCacheHits,
			"runcache_misses":    m.Service.RunCacheMisses,
			"server_wait_ms_avg": m.Service.QueueWaitMSAvg,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	} else {
		for _, st := range states {
			fmt.Printf("job %s: %s (queued %.0fms, ran %.0fms)\n", st.ID, st.State, st.QueueWaitMS, st.RunMS)
			if st.Error != "" {
				fmt.Printf("  error: %s\n", st.Error)
			}
		}
		// Show the first job's designs as the walkthrough payload.
		var res jobResult
		if err := getJSON(*addr+"/v1/jobs/"+ids[0]+"/result", &res); err == nil {
			fmt.Printf("auto-selected target: %s\n", res.AutoTarget)
			for _, d := range res.Designs {
				if d.Speedup > 0 {
					fmt.Printf("  %-28s %-6s %5.1fX\n", d.Label, d.Target, d.Speedup)
				} else {
					fmt.Printf("  %-28s %-6s (infeasible)\n", d.Label, d.Target)
				}
			}
		}
	}
	if done != *n {
		os.Exit(1)
	}
}
