module psaflow

go 1.22
