// Package analysis implements the static analyses of the design-flow task
// repository: loop dependence analysis (with reduction recognition),
// static arithmetic intensity, operation counting / kernel feature
// extraction, and unrollability tests. Dynamic counterparts (hotspot
// timing, trip counts, data movement, alias observation) come from
// interp.Profile; the tasks layer fuses both into a KernelReport.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"psaflow/internal/minic"
)

// Affine is a multilinear form c0 + Σ coeff[t]·t where each term t is a
// product of variables (key "i", "i*m", ...). Products of variables are
// kept symbolically, which lets subscripts such as i*m + j be analyzed
// under the usual delinearization assumption (rows do not overlap). OK is
// false when the expression is not recognizable (division, modulo, calls);
// consumers must then be conservative.
type Affine struct {
	Const int64
	Coeff map[string]int64
	OK    bool
}

// AffineOf analyzes an integer index expression into a multilinear form.
// Supported: literals, identifiers, +, -, unary -, multiplication
// (distributed over terms), and casts.
func AffineOf(e minic.Expr) Affine {
	switch v := e.(type) {
	case *minic.IntLit:
		return Affine{Const: v.Val, Coeff: map[string]int64{}, OK: true}
	case *minic.Ident:
		return Affine{Coeff: map[string]int64{v.Name: 1}, OK: true}
	case *minic.UnaryExpr:
		if v.Op != minic.TokMinus {
			return Affine{}
		}
		a := AffineOf(v.X)
		if !a.OK {
			return Affine{}
		}
		return a.scaleConst(-1)
	case *minic.BinaryExpr:
		l := AffineOf(v.L)
		r := AffineOf(v.R)
		if !l.OK || !r.OK {
			return Affine{}
		}
		switch v.Op {
		case minic.TokPlus:
			return l.add(r, 1)
		case minic.TokMinus:
			return l.add(r, -1)
		case minic.TokStar:
			return l.mul(r)
		}
		return Affine{}
	case *minic.CastExpr:
		return AffineOf(v.X)
	}
	return Affine{}
}

func (a Affine) isConst() bool { return a.OK && len(a.Coeff) == 0 }

func (a Affine) add(b Affine, sign int64) Affine {
	out := Affine{Const: a.Const + sign*b.Const, Coeff: map[string]int64{}, OK: true}
	for k, v := range a.Coeff {
		out.Coeff[k] += v
	}
	for k, v := range b.Coeff {
		out.Coeff[k] += sign * v
	}
	out.normalize()
	return out
}

func (a Affine) scaleConst(c int64) Affine {
	out := Affine{Const: a.Const * c, Coeff: map[string]int64{}, OK: true}
	for k, v := range a.Coeff {
		out.Coeff[k] = v * c
	}
	out.normalize()
	return out
}

// mul distributes the product of two multilinear forms; degree grows, but
// terms stay symbolic products, e.g. (i+1)*m = i*m + m.
func (a Affine) mul(b Affine) Affine {
	out := Affine{Const: a.Const * b.Const, Coeff: map[string]int64{}, OK: true}
	for k, v := range a.Coeff {
		out.Coeff[k] += v * b.Const
	}
	for k, v := range b.Coeff {
		out.Coeff[k] += v * a.Const
	}
	for ka, va := range a.Coeff {
		for kb, vb := range b.Coeff {
			out.Coeff[mergeFactors(ka, kb)] += va * vb
		}
	}
	out.normalize()
	return out
}

// mergeFactors produces the canonical sorted factor-product key.
func mergeFactors(a, b string) string {
	fs := append(strings.Split(a, "*"), strings.Split(b, "*")...)
	sort.Strings(fs)
	return strings.Join(fs, "*")
}

func (a *Affine) normalize() {
	for k, v := range a.Coeff {
		if v == 0 {
			delete(a.Coeff, k)
		}
	}
}

// CoeffOf returns the coefficient of the plain variable term v (0 when
// absent, composite, or not affine).
func (a Affine) CoeffOf(v string) int64 {
	if !a.OK {
		return 0
	}
	return a.Coeff[v]
}

// DependsOn reports whether any term contains variable v as a factor.
func (a Affine) DependsOn(v string) bool {
	if !a.OK {
		return false
	}
	for k := range a.Coeff {
		for _, f := range strings.Split(k, "*") {
			if f == v {
				return true
			}
		}
	}
	return false
}

// VarPart returns the sub-form of terms containing v; InvPart the rest
// (including the constant). Together they decompose a subscript for the
// cross-iteration conflict test on the v loop.
func (a Affine) VarPart(v string) map[string]int64 {
	out := map[string]int64{}
	for k, c := range a.Coeff {
		if termHasVar(k, v) {
			out[k] = c
		}
	}
	return out
}

// InvPart returns the terms not containing v, plus the constant under key
// "".
func (a Affine) InvPart(v string) map[string]int64 {
	out := map[string]int64{"": a.Const}
	for k, c := range a.Coeff {
		if !termHasVar(k, v) {
			out[k] = c
		}
	}
	return out
}

func termHasVar(term, v string) bool {
	for _, f := range strings.Split(term, "*") {
		if f == v {
			return true
		}
	}
	return false
}

func mapsEqual(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// Equal reports whether two forms are identical.
func (a Affine) Equal(b Affine) bool {
	if !a.OK || !b.OK || a.Const != b.Const {
		return false
	}
	return mapsEqual(a.Coeff, b.Coeff)
}

// EqualModulo reports whether a and b agree on every term not containing v
// (used to compare subscripts across iterations of the v loop).
func (a Affine) EqualModulo(b Affine, v string) bool {
	if !a.OK || !b.OK {
		return false
	}
	return mapsEqual(a.InvPart(v), b.InvPart(v))
}

// String renders the form for diagnostics.
func (a Affine) String() string {
	if !a.OK {
		return "<non-affine>"
	}
	var terms []string
	keys := make([]string, 0, len(a.Coeff))
	for k := range a.Coeff {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := a.Coeff[k]
		switch c {
		case 1:
			terms = append(terms, k)
		case -1:
			terms = append(terms, "-"+k)
		default:
			terms = append(terms, fmt.Sprintf("%d*%s", c, k))
		}
	}
	if a.Const != 0 || len(terms) == 0 {
		terms = append(terms, fmt.Sprintf("%d", a.Const))
	}
	return strings.Join(terms, " + ")
}
