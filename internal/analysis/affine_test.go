package analysis

import (
	"testing"
	"testing/quick"

	"psaflow/internal/minic"
)

func exprOf(t *testing.T, src string) minic.Expr {
	t.Helper()
	prog := minic.MustParse("int f(int i, int j, int m, int n) { return " + src + "; }")
	return prog.Funcs[0].Body.Stmts[0].(*minic.ReturnStmt).X
}

func TestAffineForms(t *testing.T) {
	cases := []struct {
		src   string
		want  string
		ok    bool
		cnst  int64
		coefI int64
	}{
		{"5", "5", true, 5, 0},
		{"i", "i", true, 0, 1},
		{"i + 1", "i + 1", true, 1, 1},
		{"i - 1", "i + -1", true, -1, 1},
		{"2 * i", "2*i", true, 0, 2},
		{"i * 3", "3*i", true, 0, 3},
		{"i * m", "i*m", true, 0, 0},
		{"(i + 1) * m", "i*m + m", true, 0, 0},
		{"i * 3 + j", "3*i + j", true, 0, 3},
		{"-i", "-i", true, 0, -1},
		{"i + i", "2*i", true, 0, 2},
		{"i - i", "0", true, 0, 0},
		{"(i + 1) * 4", "4*i + 4", true, 4, 4},
		{"i / 2", "", false, 0, 0},
		{"i % 4", "", false, 0, 0},
	}
	for _, c := range cases {
		a := AffineOf(exprOf(t, c.src))
		if a.OK != c.ok {
			t.Errorf("%s: OK=%v, want %v", c.src, a.OK, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if a.String() != c.want {
			t.Errorf("%s: String=%q, want %q", c.src, a.String(), c.want)
		}
		if a.Const != c.cnst || a.CoeffOf("i") != c.coefI {
			t.Errorf("%s: const=%d coefI=%d, want %d/%d", c.src, a.Const, a.CoeffOf("i"), c.cnst, c.coefI)
		}
	}
}

func TestAffineEqual(t *testing.T) {
	a := AffineOf(exprOf(t, "i * 3 + j + 1"))
	b := AffineOf(exprOf(t, "3 * i + j + 1"))
	c := AffineOf(exprOf(t, "i * 3 + j + 2"))
	if !a.Equal(b) {
		t.Error("a should equal b")
	}
	if a.Equal(c) {
		t.Error("a must not equal c")
	}
}

func TestAffineEqualModulo(t *testing.T) {
	a := AffineOf(exprOf(t, "i * 4 + j"))
	b := AffineOf(exprOf(t, "i * 7 + j"))
	if !a.EqualModulo(b, "i") {
		t.Error("forms differing only in i must be EqualModulo i")
	}
	c := AffineOf(exprOf(t, "i * 4 + 2 * j"))
	if a.EqualModulo(c, "i") {
		t.Error("forms differing in j must not be EqualModulo i")
	}
}

func TestAffineNonAffineString(t *testing.T) {
	a := AffineOf(exprOf(t, "i % m"))
	if a.String() != "<non-affine>" {
		t.Errorf("got %q", a.String())
	}
}

func TestAffineDependsOn(t *testing.T) {
	a := AffineOf(exprOf(t, "i * m + j"))
	if !a.DependsOn("i") || !a.DependsOn("m") || !a.DependsOn("j") {
		t.Errorf("DependsOn failed for %s", a)
	}
	if a.DependsOn("n") {
		t.Error("must not depend on n")
	}
	if !a.DependsOn("i") {
		t.Error("composite term i*m must depend on i")
	}
}

// TestQuickAffineEvaluation: the recognized linear form evaluates to the
// same value as the interpreted expression for random variable values.
func TestQuickAffineEvaluation(t *testing.T) {
	e := exprOf(t, "3 * i - 2 * j + (i + 7) * 4")
	a := AffineOf(e)
	if !a.OK {
		t.Fatal("expression should be affine")
	}
	f := func(i, j int16) bool {
		want := 3*int64(i) - 2*int64(j) + (int64(i)+7)*4
		got := a.Const + a.CoeffOf("i")*int64(i) + a.CoeffOf("j")*int64(j)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
