package analysis

import (
	"fmt"

	"psaflow/internal/minic"
	"psaflow/internal/query"
)

// DepKind classifies a loop-carried dependence.
type DepKind int

// Dependence kinds.
const (
	DepScalar      DepKind = iota // scalar written and read across iterations
	DepArrayFlow                  // array read/write conflict across iterations
	DepArrayOutput                // array write/write conflict across iterations
	DepUnknown                    // non-affine or otherwise unanalyzable access
)

// String names the dependence kind.
func (k DepKind) String() string {
	switch k {
	case DepScalar:
		return "scalar"
	case DepArrayFlow:
		return "array-flow"
	case DepArrayOutput:
		return "array-output"
	case DepUnknown:
		return "unknown"
	}
	return fmt.Sprintf("DepKind(%d)", int(k))
}

// Dependence is one loop-carried dependence.
type Dependence struct {
	Kind   DepKind
	Name   string // variable or array involved
	Detail string
}

// Reduction is a recognized reduction pattern: every write to Name inside
// the loop is a compound update (+=, -=, *=) and Name is not otherwise
// read. Reductions are carried dependences, but parallelizable with an
// OpenMP reduction clause or a post-extraction rewrite (the paper's
// "Remove Array += Dependency" task).
type Reduction struct {
	Name  string
	Array bool
	Op    minic.TokKind
}

// LoopDeps is the dependence analysis result for one loop.
type LoopDeps struct {
	LoopID     int
	Var        string // induction variable ("" when unrecognized)
	Carried    []Dependence
	Reductions []Reduction
}

// Clone returns an independent deep copy: forked designs must not share
// the dependence/reduction slices with the original (parallel branch
// paths would otherwise race on the backing arrays).
func (d *LoopDeps) Clone() *LoopDeps {
	if d == nil {
		return nil
	}
	nd := *d
	nd.Carried = append([]Dependence(nil), d.Carried...)
	nd.Reductions = append([]Reduction(nil), d.Reductions...)
	return &nd
}

// Parallel reports whether the loop has no carried dependences at all.
func (d *LoopDeps) Parallel() bool {
	return len(d.Carried) == 0 && len(d.Reductions) == 0
}

// ParallelWithReduction reports whether the only carried dependences are
// recognized reductions.
func (d *LoopDeps) ParallelWithReduction() bool {
	return len(d.Carried) == 0
}

// access is one array access with its affine subscript.
type access struct {
	array string
	sub   Affine
	write bool
	comp  bool // compound update (+=, etc.)
}

// AnalyzeLoop performs static dependence analysis of one for loop.
// While loops are reported with a single unknown dependence (their
// iteration structure is not analyzable here).
func AnalyzeLoop(loop minic.Stmt) *LoopDeps {
	fs, ok := loop.(*minic.ForStmt)
	if !ok {
		return &LoopDeps{
			LoopID:  loop.ID(),
			Carried: []Dependence{{Kind: DepUnknown, Detail: "while loop"}},
		}
	}
	v := query.LoopVar(fs)
	d := &LoopDeps{LoopID: fs.ID(), Var: v}
	if v == "" {
		d.Carried = append(d.Carried, Dependence{Kind: DepUnknown, Detail: "unrecognized loop shape"})
		return d
	}

	declared := declaredIn(fs)
	scalarDeps(fs, v, declared, d)
	arrayDeps(fs, v, d)
	return d
}

// declaredIn collects names declared inside the loop (body declarations
// and nested for-inits). Accesses to these cannot carry across iterations
// of the analyzed loop.
func declaredIn(loop *minic.ForStmt) map[string]bool {
	out := map[string]bool{}
	minic.Walk(loop.Body, func(n minic.Node) bool {
		if ds, ok := n.(*minic.DeclStmt); ok {
			out[ds.Name] = true
		}
		return true
	})
	// Inner for-inits inside the body are found by the walk above; the
	// analyzed loop's own induction variable is handled separately.
	return out
}

// scalarDeps finds carried scalar dependences and scalar reductions.
func scalarDeps(loop *minic.ForStmt, v string, declared map[string]bool, d *LoopDeps) {
	type scalarUse struct {
		compoundWrites int
		plainWrites    int
		otherReads     int
		op             minic.TokKind
	}
	uses := map[string]*scalarUse{}
	get := func(name string) *scalarUse {
		u, ok := uses[name]
		if !ok {
			u = &scalarUse{}
			uses[name] = u
		}
		return u
	}

	// Inner-loop induction variables: a nested canonical for re-assigns
	// its variable each outer iteration; exclude them when declared in
	// their init (covered by declaredIn) — for `for (i = ...)` style inner
	// loops the variable is genuinely carried, so no special case here.

	minic.Walk(loop.Body, func(n minic.Node) bool {
		switch e := n.(type) {
		case *minic.AssignExpr:
			if id, ok := e.LHS.(*minic.Ident); ok {
				u := get(id.Name)
				switch e.Op {
				case minic.TokPlusEq, minic.TokMinusEq, minic.TokStarEq:
					u.compoundWrites++
					u.op = e.Op
				default:
					u.plainWrites++
				}
			}
		case *minic.IncDecExpr:
			if id, ok := e.X.(*minic.Ident); ok {
				u := get(id.Name)
				u.compoundWrites++
				u.op = minic.TokPlusEq
			}
		case *minic.Ident:
			// Reads: every Ident that is not the direct LHS of an assign.
			// Walk visits LHS idents too; correct for them afterwards.
			get(e.Name).otherReads++
		}
		return true
	})
	// Each compound/plain write visited its LHS Ident once as a "read";
	// subtract those spurious counts.
	minic.Walk(loop.Body, func(n minic.Node) bool {
		if e, ok := n.(*minic.AssignExpr); ok {
			if id, ok := e.LHS.(*minic.Ident); ok {
				get(id.Name).otherReads--
			}
		}
		if e, ok := n.(*minic.IncDecExpr); ok {
			if id, ok := e.X.(*minic.Ident); ok {
				get(id.Name).otherReads--
			}
		}
		return true
	})

	for name, u := range uses {
		if name == v || declared[name] {
			continue
		}
		if u.compoundWrites == 0 && u.plainWrites == 0 {
			continue // read-only
		}
		if u.plainWrites == 0 && u.otherReads <= 0 {
			d.Reductions = append(d.Reductions, Reduction{Name: name, Op: u.op})
			continue
		}
		// A scalar that is plainly written before being read each
		// iteration would be privatizable; detecting that requires flow
		// analysis, so be conservative.
		d.Carried = append(d.Carried, Dependence{
			Kind: DepScalar, Name: name,
			Detail: fmt.Sprintf("scalar %q written in loop body and visible outside", name),
		})
	}
}

// arrayDeps finds carried array dependences and array reductions.
func arrayDeps(loop *minic.ForStmt, v string, d *LoopDeps) {
	accesses := collectAccesses(loop.Body)
	byArray := map[string][]access{}
	for _, a := range accesses {
		byArray[a.array] = append(byArray[a.array], a)
	}
	arrays := make([]string, 0, len(byArray))
	for name := range byArray {
		arrays = append(arrays, name)
	}
	sortStrings(arrays)

	for _, name := range arrays {
		accs := byArray[name]
		hasWrite := false
		for _, a := range accs {
			if a.write {
				hasWrite = true
			}
		}
		if !hasWrite {
			continue // read-only arrays carry nothing
		}

		// Array reduction: every write is compound, and every subscript of
		// the array is invariant in v (e.g. hist[c] += 1) or identical.
		allCompound := true
		for _, a := range accs {
			if a.write && !a.comp {
				allCompound = false
			}
		}
		dep := classifyArray(accs, v)
		if dep == nil {
			continue // provably independent across iterations
		}
		if allCompound {
			// Histogram-style updates (hist[label[i]] += w) are reductions
			// even when the subscript is data-dependent: commutative
			// updates to arbitrary elements.
			d.Reductions = append(d.Reductions, Reduction{Name: name, Array: true, Op: minic.TokPlusEq})
			continue
		}
		dep.Name = name
		d.Carried = append(d.Carried, *dep)
	}
}

// classifyArray returns a carried dependence for the array's accesses, or
// nil when all iterations provably touch disjoint (or identical read-only)
// locations.
func classifyArray(accs []access, v string) *Dependence {
	for i := range accs {
		if !accs[i].sub.OK {
			return &Dependence{Kind: DepUnknown, Detail: "non-affine subscript"}
		}
	}
	for i := range accs {
		if !accs[i].write {
			continue
		}
		w := accs[i]
		if !w.sub.DependsOn(v) {
			// Same element (per inner-iteration tuple) written every v
			// iteration.
			return &Dependence{Kind: DepArrayOutput,
				Detail: fmt.Sprintf("write subscript %s invariant in %s", w.sub, v)}
		}
		wVar := w.sub.VarPart(v)
		for j := range accs {
			if i == j {
				continue
			}
			a := accs[j]
			kind := DepArrayFlow
			if a.write {
				kind = DepArrayOutput
			}
			if !mapsEqual(wVar, a.sub.VarPart(v)) {
				// Different dependence on v (including v-invariant reads of
				// a written array): conservative carried dependence.
				return &Dependence{Kind: kind,
					Detail: fmt.Sprintf("subscripts %s and %s differ in their %s terms", w.sub, a.sub, v)}
			}
			if !w.sub.EqualModulo(a.sub, v) {
				// Same v term but shifted invariants. When the v part is a
				// pure c·v term and the shift is a constant δ, the accesses
				// collide across iterations only if c divides δ (the GCD
				// test): acc[3i] vs acc[3i+1] never alias, acc[i] vs
				// acc[i-1] do.
				if c, ok := pureCoeff(wVar, v); ok && invDiffersOnlyInConst(w.sub, a.sub, v) {
					delta := w.sub.Const - a.sub.Const
					if delta%c != 0 {
						continue
					}
				}
				return &Dependence{Kind: kind,
					Detail: fmt.Sprintf("subscripts %s and %s conflict across iterations", w.sub, a.sub)}
			}
		}
	}
	return nil
}

// collectAccesses walks a subtree gathering array accesses with subscripts
// and read/write/compound classification.
func collectAccesses(root minic.Node) []access {
	var out []access
	record := func(e minic.Expr, write, comp bool) {
		ix, ok := e.(*minic.IndexExpr)
		if !ok {
			return
		}
		base, ok := ix.Base.(*minic.Ident)
		if !ok {
			return
		}
		out = append(out, access{array: base.Name, sub: AffineOf(ix.Index), write: write, comp: comp})
	}
	minic.Walk(root, func(n minic.Node) bool {
		switch e := n.(type) {
		case *minic.AssignExpr:
			comp := e.Op != minic.TokAssign
			record(e.LHS, true, comp)
			if comp {
				record(e.LHS, false, comp) // compound also reads
			}
		case *minic.IncDecExpr:
			record(e.X, true, true)
			record(e.X, false, true)
		case *minic.IndexExpr:
			// Generic visit records every IndexExpr as a read. Store
			// targets are re-visited here with the same subscript as their
			// write record; such same-subscript duplicates are harmless to
			// the pairwise dependence test (identical affine forms never
			// conflict), so no filtering is needed.
			if name := identName(e.Base); name != "" {
				out = append(out, access{array: name, sub: AffineOf(e.Index)})
			}
		}
		return true
	})
	return out
}

func identName(e minic.Expr) string {
	if id, ok := e.(*minic.Ident); ok {
		return id.Name
	}
	return ""
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// pureCoeff returns the coefficient when the variable part is exactly one
// pure c·v term.
func pureCoeff(varPart map[string]int64, v string) (int64, bool) {
	if len(varPart) != 1 {
		return 0, false
	}
	c, ok := varPart[v]
	if !ok || c == 0 {
		return 0, false
	}
	return c, true
}

// invDiffersOnlyInConst reports whether the v-invariant parts of two
// affine forms agree on every symbolic term (only the constants differ).
func invDiffersOnlyInConst(a, b Affine, v string) bool {
	ai := a.InvPart(v)
	bi := b.InvPart(v)
	delete(ai, "")
	delete(bi, "")
	return mapsEqual(ai, bi)
}
