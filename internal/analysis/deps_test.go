package analysis

import (
	"testing"

	"psaflow/internal/minic"
	"psaflow/internal/query"
)

// loopOf parses src and returns the first outermost loop of function f.
func loopOf(t *testing.T, src string) minic.Stmt {
	t.Helper()
	prog := minic.MustParse(src)
	q := query.New(prog)
	loops := q.OutermostLoops(prog.Funcs[0])
	if len(loops) == 0 {
		t.Fatal("no loops in source")
	}
	return loops[0]
}

func TestParallelElementwise(t *testing.T) {
	loop := loopOf(t, `void f(int n, double *a, const double *b) {
        for (int i = 0; i < n; i++) { a[i] = b[i] * 2.0; }
    }`)
	d := AnalyzeLoop(loop)
	if !d.Parallel() {
		t.Fatalf("elementwise loop should be parallel: %+v", d)
	}
	if d.Var != "i" {
		t.Errorf("var = %q", d.Var)
	}
}

func TestParallelWithStride(t *testing.T) {
	loop := loopOf(t, `void f(int n, int m, double *a, const double *b) {
        for (int i = 0; i < n; i++) {
            for (int j = 0; j < m; j++) {
                a[i * m + j] = b[i * m + j] + 1.0;
            }
        }
    }`)
	d := AnalyzeLoop(loop)
	if !d.Parallel() {
		t.Fatalf("outer loop of 2D elementwise should be parallel: %+v", d)
	}
}

func TestScalarReduction(t *testing.T) {
	loop := loopOf(t, `double f(int n, const double *a) {
        double s = 0.0;
        for (int i = 0; i < n; i++) { s += a[i]; }
        return s;
    }`)
	d := AnalyzeLoop(loop)
	if d.Parallel() {
		t.Fatal("reduction loop must not be fully parallel")
	}
	if !d.ParallelWithReduction() {
		t.Fatalf("should be reduction-parallel: %+v", d.Carried)
	}
	if len(d.Reductions) != 1 || d.Reductions[0].Name != "s" || d.Reductions[0].Array {
		t.Fatalf("reductions = %+v", d.Reductions)
	}
}

func TestScalarCarriedWhenReadElsewhere(t *testing.T) {
	loop := loopOf(t, `void f(int n, double *a) {
        double s = 0.0;
        for (int i = 0; i < n; i++) {
            s += a[i];
            a[i] = s;
        }
    }`)
	d := AnalyzeLoop(loop)
	if d.ParallelWithReduction() {
		t.Fatalf("prefix-sum must be carried: %+v", d)
	}
	found := false
	for _, c := range d.Carried {
		if c.Kind == DepScalar && c.Name == "s" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected scalar dep on s: %+v", d.Carried)
	}
}

func TestLocalScalarNotCarried(t *testing.T) {
	loop := loopOf(t, `void f(int n, int m, const double *b, double *out) {
        for (int i = 0; i < n; i++) {
            double acc = 0.0;
            for (int j = 0; j < m; j++) { acc += b[j]; }
            out[i] = acc;
        }
    }`)
	d := AnalyzeLoop(loop)
	if !d.Parallel() {
		t.Fatalf("loop-local accumulator must not carry across outer iterations: %+v", d)
	}
}

func TestArrayFlowDepShiftedRead(t *testing.T) {
	loop := loopOf(t, `void f(int n, double *a) {
        for (int i = 1; i < n; i++) { a[i] = a[i - 1] * 0.5; }
    }`)
	d := AnalyzeLoop(loop)
	if d.ParallelWithReduction() {
		t.Fatalf("recurrence must be carried: %+v", d)
	}
}

func TestArrayOutputDepInvariantWrite(t *testing.T) {
	loop := loopOf(t, `void f(int n, double *a, const double *b) {
        for (int i = 0; i < n; i++) { a[0] = b[i]; }
    }`)
	d := AnalyzeLoop(loop)
	if len(d.Carried) == 0 {
		t.Fatalf("invariant write target must be carried: %+v", d)
	}
	if d.Carried[0].Kind != DepArrayOutput {
		t.Errorf("kind = %v, want array-output", d.Carried[0].Kind)
	}
}

func TestArrayReduction(t *testing.T) {
	loop := loopOf(t, `void f(int n, const int *label, double *hist, const double *w) {
        for (int i = 0; i < n; i++) { hist[label[i]] += w[i]; }
    }`)
	d := AnalyzeLoop(loop)
	if d.Parallel() {
		t.Fatal("histogram must not be fully parallel")
	}
	if !d.ParallelWithReduction() {
		t.Fatalf("histogram should be reduction-only: %+v", d.Carried)
	}
	if len(d.Reductions) != 1 || !d.Reductions[0].Array || d.Reductions[0].Name != "hist" {
		t.Fatalf("reductions = %+v", d.Reductions)
	}
}

func TestNonAffineSubscriptConservative(t *testing.T) {
	loop := loopOf(t, `void f(int n, int m, double *a) {
        for (int i = 0; i < n; i++) { a[i % m] = 1.0; }
    }`)
	d := AnalyzeLoop(loop)
	if d.Parallel() {
		t.Fatalf("non-affine write subscript must be conservative: %+v", d)
	}
}

func TestSymbolicStrideWriteParallel(t *testing.T) {
	// a[i*m] with symbolic stride m: parallel under the delinearization
	// assumption (distinct i touch distinct rows).
	loop := loopOf(t, `void f(int n, int m, double *a) {
        for (int i = 0; i < n; i++) { a[i * m] = 1.0; }
    }`)
	d := AnalyzeLoop(loop)
	if !d.Parallel() {
		t.Fatalf("symbolic stride write should be parallel: %+v", d)
	}
}

func TestReadOnlyArraysIgnored(t *testing.T) {
	loop := loopOf(t, `void f(int n, double *out, const double *table) {
        for (int i = 0; i < n; i++) { out[i] = table[0] + table[i] + table[n - i - 1]; }
    }`)
	d := AnalyzeLoop(loop)
	if !d.Parallel() {
		t.Fatalf("read-only gather must be parallel: %+v", d)
	}
}

func TestWhileLoopUnknown(t *testing.T) {
	loop := loopOf(t, `void f(int n) { while (n > 0) { n--; } }`)
	d := AnalyzeLoop(loop)
	if d.ParallelWithReduction() {
		t.Fatal("while loops must be conservatively carried")
	}
	if d.Carried[0].Kind != DepUnknown {
		t.Errorf("kind = %v", d.Carried[0].Kind)
	}
}

func TestInnerSequentialOuterParallel(t *testing.T) {
	// AdPredictor-like shape: outer parallel, inner fixed loop carries a
	// scalar dependence through a multiplicative accumulation.
	src := `void f(int n, const double *w, double *out) {
        for (int i = 0; i < n; i++) {
            double p = 1.0;
            for (int j = 0; j < 12; j++) {
                p = p * w[i * 12 + j] + 0.5;
            }
            out[i] = p;
        }
    }`
	prog := minic.MustParse(src)
	q := query.New(prog)
	outer := q.OutermostLoops(prog.Funcs[0])[0]
	inner := q.InnerLoops(outer)[0]
	dOuter := AnalyzeLoop(outer)
	if !dOuter.Parallel() {
		t.Fatalf("outer must be parallel: %+v", dOuter)
	}
	dInner := AnalyzeLoop(inner)
	if dInner.ParallelWithReduction() {
		t.Fatalf("inner p = p*w + c must be carried (not a recognized reduction): %+v", dInner)
	}
}

func TestAnalyzeUnrollability(t *testing.T) {
	src := `void f(int n, int m, const double *w, double *out) {
        for (int i = 0; i < n; i++) {
            double p = 1.0;
            for (int j = 0; j < 12; j++) { p = p * w[j] + 0.5; }
            out[i] = p;
        }
    }`
	prog := minic.MustParse(src)
	q := query.New(prog)
	outer := q.OutermostLoops(prog.Funcs[0])[0]
	u := AnalyzeUnrollability(q, outer, 64)
	if u.InnerLoopCount != 1 || u.InnerWithDeps != 1 {
		t.Fatalf("unrollability = %+v", u)
	}
	if !u.AllDepsFixed || u.MaxFixedTrip != 12 {
		t.Fatalf("inner fixed-12 dep loop should be fully unrollable: %+v", u)
	}
	// Same shape but runtime-bounded inner loop: not fully unrollable.
	src2 := `void f(int n, int m, const double *w, double *out) {
        for (int i = 0; i < n; i++) {
            double p = 1.0;
            for (int j = 0; j < m; j++) { p = p * w[j] + 0.5; }
            out[i] = p;
        }
    }`
	prog2 := minic.MustParse(src2)
	q2 := query.New(prog2)
	outer2 := q2.OutermostLoops(prog2.Funcs[0])[0]
	u2 := AnalyzeUnrollability(q2, outer2, 64)
	if u2.AllDepsFixed {
		t.Fatalf("runtime-bounded dep loop must not be fully unrollable: %+v", u2)
	}
	// Fixed bound above the limit: also not fully unrollable.
	src3 := `void f(int n, const double *w, double *out) {
        for (int i = 0; i < n; i++) {
            double p = 1.0;
            for (int j = 0; j < 500; j++) { p = p * w[j] + 0.5; }
            out[i] = p;
        }
    }`
	prog3 := minic.MustParse(src3)
	q3 := query.New(prog3)
	outer3 := q3.OutermostLoops(prog3.Funcs[0])[0]
	if u3 := AnalyzeUnrollability(q3, outer3, 64); u3.AllDepsFixed {
		t.Fatalf("500-trip dep loop above limit 64 must not be fully unrollable: %+v", u3)
	}
}

func TestLoopDepsClone(t *testing.T) {
	var nilDeps *LoopDeps
	if nilDeps.Clone() != nil {
		t.Error("nil clone must stay nil")
	}
	d := &LoopDeps{
		LoopID:     3,
		Var:        "i",
		Carried:    []Dependence{{Kind: DepScalar, Name: "s", Detail: "x"}},
		Reductions: []Reduction{{Name: "acc"}},
	}
	c := d.Clone()
	c.Carried[0].Name = "mutated"
	c.Reductions[0].Name = "mutated"
	c.Carried = append(c.Carried, Dependence{Kind: DepUnknown})
	if d.Carried[0].Name != "s" || d.Reductions[0].Name != "acc" || len(d.Carried) != 1 {
		t.Errorf("clone shares slices with original: %+v", d)
	}
}
