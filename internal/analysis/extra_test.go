package analysis

import (
	"testing"

	"psaflow/internal/minic"
	"psaflow/internal/query"
)

func TestHeavySpecialFraction(t *testing.T) {
	cases := []struct {
		src  string
		lo   float64
		hi   float64
		name string
	}{
		{`void k(double *a) { a[0] = exp(a[1]); }`, 0.99, 1.01, "pure exp"},
		{`void k(double *a) { a[0] = sqrt(a[1]); }`, -0.01, 0.01, "pure sqrt"},
		{`void k(double *a) { a[0] = exp(a[1]) + sqrt(a[2]) + sqrt(a[3]); }`, 0.4, 0.6, "mixed"},
		{`void k(double *a) { a[0] = a[1] * 2.0; }`, -0.01, 0.01, "no specials"},
		{`void k(float *a) { a[0] = __expf(a[1]) + erff(a[2]); }`, 0.99, 1.01, "intrinsics count as heavy"},
		{`void k(double *a) { a[0] = pow(a[1], 2.0); }`, -0.01, 0.01, "pow is a fast path"},
	}
	for _, c := range cases {
		prog := minic.MustParse(c.src)
		got := HeavySpecialFraction(prog.MustFunc("k"))
		if got < c.lo || got > c.hi {
			t.Errorf("%s: fraction = %v, want [%v,%v]", c.name, got, c.lo, c.hi)
		}
	}
}

func TestHeavySpecialFractionScalesWithFixedLoops(t *testing.T) {
	// A heavy call inside a fixed loop dominates a single light call.
	prog := minic.MustParse(`void k(double *a) {
        a[0] = sqrt(a[1]);
        for (int i = 0; i < 32; i++) { a[i] += exp(a[i]); }
    }`)
	got := HeavySpecialFraction(prog.MustFunc("k"))
	if got < 0.9 {
		t.Errorf("fraction = %v, want near 1 (32 weighted exps vs 1 sqrt)", got)
	}
}

func TestHasDPSpecialCalls(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{`void k(double *a) { a[0] = exp(a[1]); }`, true},
		{`void k(float *a) { a[0] = expf(a[1]); }`, false},
		{`void k(double *a) { a[0] = erf(a[1]) + expf(a[2]); }`, true},
		{`void k(double *a) { a[0] = a[1] + 1.0; }`, false},
		{`void k(float *a) { a[0] = __expf(a[1]) + sqrtf(a[2]); }`, false},
	}
	for _, c := range cases {
		prog := minic.MustParse(c.src)
		if got := HasDPSpecialCalls(prog.MustFunc("k")); got != c.want {
			t.Errorf("%s: got %v, want %v", c.src, got, c.want)
		}
	}
}

func TestLoopMarkedRolled(t *testing.T) {
	prog := minic.MustParse(`void k(int n, double *a) {
        #pragma unroll 1
        for (int i = 0; i < 4; i++) { a[i] = 0.0; }
        #pragma unroll 4
        for (int j = 0; j < 4; j++) { a[j] = 1.0; }
        for (int m = 0; m < 4; m++) { a[m] = 2.0; }
    }`)
	q := query.New(prog)
	loops := q.LoopsIn(prog.MustFunc("k"))
	if !LoopMarkedRolled(loops[0]) {
		t.Error("unroll 1 loop should be rolled")
	}
	if LoopMarkedRolled(loops[1]) {
		t.Error("unroll 4 loop is not rolled")
	}
	if LoopMarkedRolled(loops[2]) {
		t.Error("unannotated loop is not rolled")
	}
}

func TestWeightedOpsRespectsRolledPragma(t *testing.T) {
	spatial := minic.MustParse(`void k(double *a, const double *b) {
        for (int i = 0; i < 16; i++) { a[i] = b[i] + 1.0; }
    }`)
	rolled := minic.MustParse(`void k(double *a, const double *b) {
        #pragma unroll 1
        for (int i = 0; i < 16; i++) { a[i] = b[i] + 1.0; }
    }`)
	s := WeightedOps(spatial.MustFunc("k"))
	r := WeightedOps(rolled.MustFunc("k"))
	if s.AddSub != 16 {
		t.Errorf("spatial addsub = %v, want 16", s.AddSub)
	}
	if r.AddSub != 1 {
		t.Errorf("rolled addsub = %v, want 1", r.AddSub)
	}
}

func TestDepKindStrings(t *testing.T) {
	want := map[DepKind]string{
		DepScalar: "scalar", DepArrayFlow: "array-flow",
		DepArrayOutput: "array-output", DepUnknown: "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestIsIntExprCases(t *testing.T) {
	prog := minic.MustParse(`void k(int n, int *idx, double *a, float f) {
        int i = 2;
        a[0] = (double)(n + i * 3);
        a[1] = a[0] + 1.0;
        idx[0] = abs(n) + min(i, n) % 2;
        a[2] = (double)idx[0];
    }`)
	fn := prog.MustFunc("k")
	ops := CountOps(fn.Body, fn)
	// n + i*3, abs+min stuff, and % are int ops; only FP add counts flops.
	if ops.IntOps < 3 {
		t.Errorf("int ops = %v, want >= 3", ops.IntOps)
	}
	if ops.FlopsW < 1 {
		t.Errorf("flops = %v", ops.FlopsW)
	}
}

func TestWeightedOpsPerIterationWhile(t *testing.T) {
	prog := minic.MustParse(`void k(int n, double *a) {
        while (n > 0) {
            a[n] = 1.0;
            n = n - 1;
        }
    }`)
	fn := prog.MustFunc("k")
	loops := query.New(prog).LoopsIn(fn)
	ops := WeightedOpsPerIteration(loops[0], fn)
	if ops.Stores != 1 {
		t.Errorf("while per-iter stores = %v", ops.Stores)
	}
	// Non-loop input yields empty counts.
	other := minic.MustParse(`void k(double *a) { a[0] = 1.0; }`)
	decl := other.MustFunc("k").Body.Stmts[0]
	if empty := WeightedOpsPerIteration(decl, other.MustFunc("k")); empty.Stores != 0 {
		t.Errorf("non-loop counts = %+v", empty)
	}
}

func TestOpCountsFlopsAccessor(t *testing.T) {
	prog := minic.MustParse(`void k(double *a) { a[0] = a[1] * 2.0 + 1.0; }`)
	fn := prog.MustFunc("k")
	ops := CountOps(fn.Body, fn)
	if ops.Flops() != ops.FlopsW {
		t.Error("Flops() accessor mismatch")
	}
}

func TestAffineHelpers(t *testing.T) {
	a := AffineOf(exprOf(t, "7"))
	if !a.isConst() {
		t.Error("7 should be constant")
	}
	b := AffineOf(exprOf(t, "i + 7"))
	if b.isConst() {
		t.Error("i+7 is not constant")
	}
	if AffineOf(exprOf(t, "i % 2")).OK {
		t.Error("modulo is not affine")
	}
	// EqualModulo with a non-affine side is false.
	bad := AffineOf(exprOf(t, "i % 2"))
	if b.EqualModulo(bad, "i") || bad.EqualModulo(b, "i") {
		t.Error("EqualModulo must reject non-affine forms")
	}
	if bad.CoeffOf("i") != 0 {
		t.Error("CoeffOf on non-affine must be 0")
	}
}
