package analysis

import (
	"psaflow/internal/interp"
	"psaflow/internal/minic"
	"psaflow/internal/query"
)

// OpCounts is a histogram of operations in a code region. Counts are
// per single execution of the region unless produced by WeightedOps,
// which scales by statically known trip counts.
type OpCounts struct {
	AddSub   float64
	Mul      float64
	Div      float64
	Cmp      float64
	Special  float64 // sqrt/exp/log/pow/trig/erf calls
	IntOps   float64
	Loads    float64 // array element reads
	Stores   float64 // array element writes
	Calls    float64 // user function calls
	FlopsW   float64 // FLOPs weighted like the interpreter counts them
	BytesRW  float64 // bytes moved by Loads+Stores (element-size aware)
	SpecialK map[string]float64
}

func newOpCounts() *OpCounts { return &OpCounts{SpecialK: map[string]float64{}} }

// Flops returns the weighted floating-point operation count.
func (o *OpCounts) Flops() float64 { return o.FlopsW }

// AI returns the static arithmetic intensity (FLOPs per byte); 0 when no
// memory traffic is present.
func (o *OpCounts) AI() float64 {
	if o.BytesRW == 0 {
		return 0
	}
	return o.FlopsW / o.BytesRW
}

func (o *OpCounts) addScaled(src *OpCounts, k float64) {
	o.AddSub += k * src.AddSub
	o.Mul += k * src.Mul
	o.Div += k * src.Div
	o.Cmp += k * src.Cmp
	o.Special += k * src.Special
	o.IntOps += k * src.IntOps
	o.Loads += k * src.Loads
	o.Stores += k * src.Stores
	o.Calls += k * src.Calls
	o.FlopsW += k * src.FlopsW
	o.BytesRW += k * src.BytesRW
	for name, n := range src.SpecialK {
		o.SpecialK[name] += k * n
	}
}

// typeEnv records array element kinds and integer-typed scalars for the
// enclosing function, supporting byte accounting and int/float operation
// classification.
type typeEnv struct {
	arrays map[string]minic.BasicKind
	ints   map[string]bool
}

func typesIn(fn *minic.FuncDecl) typeEnv {
	env := typeEnv{arrays: map[string]minic.BasicKind{}, ints: map[string]bool{}}
	for _, p := range fn.Params {
		if p.Type.Ptr {
			env.arrays[p.Name] = p.Type.Kind
		} else if p.Type.Kind == minic.Int {
			env.ints[p.Name] = true
		}
	}
	minic.Walk(fn, func(n minic.Node) bool {
		if d, ok := n.(*minic.DeclStmt); ok {
			if d.ArrayLen != nil {
				env.arrays[d.Name] = d.Type.Kind
			} else if d.Type.Kind == minic.Int {
				env.ints[d.Name] = true
			}
		}
		return true
	})
	return env
}

func (env typeEnv) bytes(array string) float64 {
	switch env.arrays[array] {
	case minic.Float, minic.Int:
		return 4
	case minic.Double:
		return 8
	default:
		return 8 // unknown arrays default to double width
	}
}

// isIntExpr reports whether e is statically integer-typed (int literals,
// int scalars, int array elements, int-returning builtins, and arithmetic
// over those). Anything unknown defaults to floating.
func (env typeEnv) isIntExpr(e minic.Expr) bool {
	switch v := e.(type) {
	case *minic.IntLit:
		return true
	case *minic.BoolLit:
		return true
	case *minic.Ident:
		return env.ints[v.Name]
	case *minic.UnaryExpr:
		return env.isIntExpr(v.X)
	case *minic.BinaryExpr:
		switch v.Op {
		case minic.TokPlus, minic.TokMinus, minic.TokStar, minic.TokSlash, minic.TokPercent:
			return env.isIntExpr(v.L) && env.isIntExpr(v.R)
		}
		return false
	case *minic.IndexExpr:
		if name := identName(v.Base); name != "" {
			return env.arrays[name] == minic.Int
		}
		return false
	case *minic.CallExpr:
		switch v.Fun {
		case "abs", "min", "max":
			return true
		}
		return false
	case *minic.CastExpr:
		return v.To.Kind == minic.Int
	case *minic.IncDecExpr:
		return env.isIntExpr(v.X)
	}
	return false
}

// specialNames classifies builtin calls counted as Special ops.
func isSpecialFn(name string) bool {
	return interp.BuiltinFlops(name) > 1 // transcendental-weighted builtins
}

// CountOps statically counts operations in a region, treating every
// statement as executing once (loops are NOT scaled; see WeightedOps).
// fn provides element types for byte accounting.
func CountOps(region minic.Node, fn *minic.FuncDecl) *OpCounts {
	env := typesIn(fn)
	out := newOpCounts()
	countInto(region, env, out)
	return out
}

func countInto(region minic.Node, env typeEnv, out *OpCounts) {
	minic.Walk(region, func(n minic.Node) bool {
		switch e := n.(type) {
		case *minic.BinaryExpr:
			isInt := env.isIntExpr(e)
			switch e.Op {
			case minic.TokPlus, minic.TokMinus:
				if isInt {
					out.IntOps++
				} else {
					out.AddSub++
					out.FlopsW++
				}
			case minic.TokStar:
				if isInt {
					out.IntOps++
				} else {
					out.Mul++
					out.FlopsW++
				}
			case minic.TokSlash, minic.TokPercent:
				if isInt {
					out.IntOps++
				} else {
					out.Div++
					out.FlopsW++
				}
			case minic.TokLt, minic.TokGt, minic.TokLe, minic.TokGe, minic.TokEqEq, minic.TokNe:
				out.Cmp++
			}
		case *minic.AssignExpr:
			if e.Op != minic.TokAssign {
				if env.isIntExpr(e.LHS) {
					out.IntOps++
				} else {
					out.AddSub++
					out.FlopsW++
				}
			}
			if ix, ok := e.LHS.(*minic.IndexExpr); ok {
				out.Stores++
				out.BytesRW += env.bytes(identName(ix.Base))
				if e.Op != minic.TokAssign {
					out.Loads++
					out.BytesRW += env.bytes(identName(ix.Base))
				}
			}
		case *minic.IncDecExpr:
			if env.isIntExpr(e.X) {
				out.IntOps++
			} else {
				out.AddSub++
				out.FlopsW++
			}
			if ix, ok := e.X.(*minic.IndexExpr); ok {
				out.Loads++
				out.Stores++
				out.BytesRW += 2 * env.bytes(identName(ix.Base))
			}
		case *minic.IndexExpr:
			// Reads: stores were handled at the Assign/IncDec level; the
			// spurious double count for store targets is corrected there by
			// not recording the LHS again — so skip IndexExpr that are
			// direct LHS targets.
			if !isStoreTarget(region, e) {
				out.Loads++
				out.BytesRW += env.bytes(identName(e.Base))
			}
		case *minic.CallExpr:
			if flops := interp.BuiltinFlops(e.Fun); flops > 0 {
				if isSpecialFn(e.Fun) {
					out.Special++
					out.SpecialK[e.Fun]++
				} else {
					out.AddSub++
				}
				out.FlopsW += float64(flops)
			} else if !interp.IsBuiltin(e.Fun) {
				out.Calls++
			}
		}
		return true
	})
}

// storeTargets caches nothing; for the sizes involved a direct check is
// fine: an IndexExpr is a store target if some Assign/IncDec in the region
// has it as the LHS pointer-identical node.
func isStoreTarget(region minic.Node, ix *minic.IndexExpr) bool {
	found := false
	minic.Walk(region, func(n minic.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *minic.AssignExpr:
			if e.LHS == minic.Expr(ix) {
				// Both plain and compound stores account their target at
				// the assignment level (compound adds the extra load there).
				found = true
			}
		case *minic.IncDecExpr:
			if e.X == minic.Expr(ix) {
				found = true
			}
		}
		return true
	})
	return found
}

// WeightedOps counts operations in the body of fn with statically known
// loop trip counts multiplied through; loops with unknown bounds count as
// one iteration. The result approximates "work per call" up to the unknown
// outer dimensions, which dynamic trip counts supply.
func WeightedOps(fn *minic.FuncDecl) *OpCounts {
	env := typesIn(fn)
	return weightedBlock(fn.Body, env)
}

// WeightedOpsPerIteration counts work for one iteration of the given loop
// (its body with nested fixed loops scaled).
func WeightedOpsPerIteration(loop minic.Stmt, fn *minic.FuncDecl) *OpCounts {
	env := typesIn(fn)
	switch l := loop.(type) {
	case *minic.ForStmt:
		return weightedBlock(l.Body, env)
	case *minic.WhileStmt:
		return weightedBlock(l.Body, env)
	}
	return newOpCounts()
}

func weightedBlock(b *minic.Block, env typeEnv) *OpCounts {
	out := newOpCounts()
	for _, s := range b.Stmts {
		out.addScaled(weightedStmt(s, env), 1)
	}
	return out
}

func weightedStmt(s minic.Stmt, env typeEnv) *OpCounts {
	out := newOpCounts()
	switch v := s.(type) {
	case *minic.Block:
		out.addScaled(weightedBlock(v, env), 1)
	case *minic.ForStmt:
		trips := 1.0
		if n, fixed := query.FixedTripCount(v); fixed && n > 0 && !LoopMarkedRolled(v) {
			trips = float64(n)
		}
		inner := weightedBlock(v.Body, env)
		// Loop control overhead: one compare + one increment per trip.
		inner.Cmp++
		inner.IntOps++
		out.addScaled(inner, trips)
	case *minic.WhileStmt:
		out.addScaled(weightedBlock(v.Body, env), 1)
	case *minic.IfStmt:
		countInto(v.Cond, env, out)
		out.addScaled(weightedBlock(v.Then, env), 1)
		if v.Else != nil {
			out.addScaled(weightedStmt(v.Else, env), 1)
		}
	default:
		countInto(s, env, out)
	}
	return out
}

// RegisterEstimate approximates the per-thread register demand of a kernel
// when compiled for a GPU: declared scalar locals (weighted by the trip
// count of enclosing fixed loops, which GPU compilers unroll, multiplying
// live values), expression temporaries, and special-function call sites.
// The constants are calibrated so register-heavy ODE solver kernels land
// near the paper's observed 255 registers/thread while simple streaming
// kernels stay below 64.
func RegisterEstimate(fn *minic.FuncDecl) int {
	scalars := 0.0
	maxDepth := 0
	specials := 0
	weight := registerLoopWeights(fn)
	minic.Walk(fn, func(n minic.Node) bool {
		switch e := n.(type) {
		case *minic.DeclStmt:
			if e.ArrayLen == nil && e.Type.IsFloating() {
				w := 1.0
				if lw, ok := weight[e.ID()]; ok {
					w = lw
				}
				scalars += w
			}
		case *minic.CallExpr:
			if isSpecialFn(e.Fun) {
				specials++
			}
		}
		if ex, ok := n.(minic.Expr); ok {
			if d := exprDepth(ex); d > maxDepth {
				maxDepth = d
			}
		}
		return true
	})
	regs := 16 + int(4*scalars) + 2*specials + 2*maxDepth
	if regs > 255 {
		regs = 255
	}
	return regs
}

// registerLoopWeights maps declaration node IDs to the unroll pressure of
// their enclosing fixed-trip loops (capped — compilers stop keeping
// everything live at some point).
func registerLoopWeights(fn *minic.FuncDecl) map[int]float64 {
	const unrollCap = 24
	out := map[int]float64{}
	var rec func(n minic.Node, w float64)
	rec = func(n minic.Node, w float64) {
		if l, ok := n.(minic.Stmt); ok && n != minic.Node(fn) {
			if trips, fixed := query.FixedTripCount(l); fixed && trips > 1 {
				t := float64(trips)
				if t > unrollCap {
					t = unrollCap
				}
				w *= t
			}
		}
		if d, ok := n.(*minic.DeclStmt); ok {
			out[d.ID()] = w
		}
		for _, c := range minic.Children(n) {
			rec(c, w)
		}
	}
	rec(fn, 1)
	return out
}

// heavySpecials are transcendentals that execute as multi-pass SFU
// sequences on consumer GPUs (range reduction + polynomial), unlike the
// single-pass sqrt/sin/cos/pow fast paths.
var heavySpecials = map[string]bool{
	"exp": true, "expf": true, "__expf": true,
	"log": true, "logf": true, "__logf": true,
	"tanh": true, "tanhf": true,
	"erf": true, "erff": true,
}

// HeavySpecialFraction returns the statically weighted fraction of special
// FLOPs in fn attributable to heavy transcendentals (exp/log/tanh/erf).
func HeavySpecialFraction(fn *minic.FuncDecl) float64 {
	ops := WeightedOps(fn)
	var heavy, total float64
	for name, n := range ops.SpecialK {
		flops := float64(interp.BuiltinFlops(name)) * n
		total += flops
		if heavySpecials[name] {
			heavy += flops
		}
	}
	if total == 0 {
		return 0
	}
	return heavy / total
}

func exprDepth(e minic.Expr) int {
	max := 0
	for _, c := range minic.Children(e) {
		if ce, ok := c.(minic.Expr); ok {
			if d := exprDepth(ce); d > max {
				max = d
			}
		}
	}
	return max + 1
}

// Unrollability summarizes the "inner loops with dependences" PSA test on
// one outer loop: whether any inner loop carries a dependence, and whether
// all such loops have fixed trip counts at or below limit ("fully
// unrollable" on an FPGA).
type Unrollability struct {
	InnerWithDeps  int
	AllDepsFixed   bool
	MaxFixedTrip   int64
	InnerLoopCount int
}

// AnalyzeUnrollability inspects the inner loops of outer within fn.
func AnalyzeUnrollability(q *query.Q, outer minic.Stmt, limit int64) Unrollability {
	u := Unrollability{AllDepsFixed: true}
	for _, inner := range q.InnerLoops(outer) {
		u.InnerLoopCount++
		deps := AnalyzeLoop(inner)
		if deps.Parallel() {
			continue
		}
		u.InnerWithDeps++
		n, fixed := query.FixedTripCount(inner)
		if !fixed || n > limit {
			u.AllDepsFixed = false
		} else if n > u.MaxFixedTrip {
			u.MaxFixedTrip = n
		}
	}
	return u
}

// LoopMarkedRolled reports whether a loop carries an explicit "unroll 1"
// pragma — the resource-sharing annotation: the loop body is instantiated
// once in hardware and time-multiplexed instead of spatially unrolled.
func LoopMarkedRolled(loop minic.Stmt) bool {
	var pragmas []string
	switch l := loop.(type) {
	case *minic.ForStmt:
		pragmas = l.Pragmas
	case *minic.WhileStmt:
		pragmas = l.Pragmas
	}
	for _, p := range pragmas {
		if p == "unroll 1" {
			return true
		}
	}
	return false
}

// HasDPSpecialCalls reports whether fn calls any double-precision
// transcendental (exp, erf, pow, ... without the single-precision suffix).
// Kernels that keep such calls pay the consumer-GPU FP64 special-function
// penalty in the performance model.
func HasDPSpecialCalls(fn *minic.FuncDecl) bool {
	dp := map[string]bool{
		"sqrt": true, "exp": true, "log": true, "pow": true,
		"sin": true, "cos": true, "tanh": true, "erf": true,
	}
	found := false
	minic.Walk(fn, func(n minic.Node) bool {
		if c, ok := n.(*minic.CallExpr); ok && dp[c.Fun] {
			found = true
		}
		return !found
	})
	return found
}
