package analysis

import (
	"testing"

	"psaflow/internal/minic"
	"psaflow/internal/query"
)

func TestCountOpsBasic(t *testing.T) {
	prog := minic.MustParse(`void f(int n, double *a, const double *b) {
        for (int i = 0; i < n; i++) {
            a[i] = b[i] * 2.0 + sqrt(b[i]);
        }
    }`)
	fn := prog.Funcs[0]
	ops := CountOps(fn.Body, fn)
	if ops.Mul != 1 || ops.AddSub != 1 {
		t.Errorf("mul=%v addsub=%v, want 1/1", ops.Mul, ops.AddSub)
	}
	if ops.Special != 1 || ops.SpecialK["sqrt"] != 1 {
		t.Errorf("special=%v (%v)", ops.Special, ops.SpecialK)
	}
	if ops.Stores != 1 {
		t.Errorf("stores=%v, want 1", ops.Stores)
	}
	if ops.Loads != 2 {
		t.Errorf("loads=%v, want 2 (two reads of b[i])", ops.Loads)
	}
	// FLOPs: mul + add + sqrt(4) = 6.
	if ops.FlopsW != 6 {
		t.Errorf("flops=%v, want 6", ops.FlopsW)
	}
	// Bytes: 3 accesses * 8 bytes.
	if ops.BytesRW != 24 {
		t.Errorf("bytes=%v, want 24", ops.BytesRW)
	}
	if ai := ops.AI(); ai != 0.25 {
		t.Errorf("AI=%v, want 0.25", ai)
	}
}

func TestCountOpsCompoundAssign(t *testing.T) {
	prog := minic.MustParse(`void f(double *a, const double *b) {
        a[0] += b[1];
    }`)
	fn := prog.Funcs[0]
	ops := CountOps(fn.Body, fn)
	// Compound: one add, load+store of a[0], load of b[1].
	if ops.AddSub != 1 || ops.Loads != 2 || ops.Stores != 1 {
		t.Errorf("addsub=%v loads=%v stores=%v", ops.AddSub, ops.Loads, ops.Stores)
	}
	if ops.BytesRW != 24 {
		t.Errorf("bytes=%v, want 24", ops.BytesRW)
	}
}

func TestCountOpsFloatWidths(t *testing.T) {
	prog := minic.MustParse(`void f(float *a, const float *b) {
        a[0] = b[0];
    }`)
	fn := prog.Funcs[0]
	ops := CountOps(fn.Body, fn)
	if ops.BytesRW != 8 { // two float accesses * 4 bytes
		t.Errorf("bytes=%v, want 8", ops.BytesRW)
	}
}

func TestWeightedOpsScalesFixedLoops(t *testing.T) {
	prog := minic.MustParse(`void f(double *a, const double *b) {
        for (int j = 0; j < 10; j++) {
            a[j] = b[j] + 1.0;
        }
    }`)
	fn := prog.Funcs[0]
	ops := WeightedOps(fn)
	if ops.AddSub < 10 {
		t.Errorf("weighted addsub=%v, want >= 10", ops.AddSub)
	}
	if ops.Stores != 10 {
		t.Errorf("weighted stores=%v, want 10", ops.Stores)
	}
}

func TestWeightedOpsUnknownLoopOnce(t *testing.T) {
	prog := minic.MustParse(`void f(int n, double *a) {
        for (int i = 0; i < n; i++) {
            a[i] = 1.0;
        }
    }`)
	fn := prog.Funcs[0]
	ops := WeightedOps(fn)
	if ops.Stores != 1 {
		t.Errorf("unknown-trip loop must count once: stores=%v", ops.Stores)
	}
}

func TestWeightedOpsPerIteration(t *testing.T) {
	prog := minic.MustParse(`void f(int n, double *out, const double *w) {
        for (int i = 0; i < n; i++) {
            double p = 0.0;
            for (int j = 0; j < 4; j++) { p += w[j]; }
            out[i] = p;
        }
    }`)
	fn := prog.Funcs[0]
	q := query.New(prog)
	outer := q.OutermostLoops(fn)[0]
	ops := WeightedOpsPerIteration(outer, fn)
	// Per outer iteration: 4 adds (inner scaled) + 4 loads + 1 store.
	if ops.AddSub != 4 || ops.Loads != 4 || ops.Stores != 1 {
		t.Errorf("per-iter: addsub=%v loads=%v stores=%v", ops.AddSub, ops.Loads, ops.Stores)
	}
}

func TestRegisterEstimateOrdering(t *testing.T) {
	simple := minic.MustParse(`void k(int n, float *a, const float *b) {
        for (int i = 0; i < n; i++) { a[i] = b[i] * 2.0f; }
    }`).Funcs[0]
	heavy := minic.MustParse(`void k(int n, double *v) {
        for (int i = 0; i < n; i++) {
            double g1 = exp(v[i] * 0.1);
            double g2 = exp(v[i] * 0.2);
            double g3 = exp(g1 * g2 + sqrt(g1));
            double g4 = pow(g3, 2.0) + exp(g2);
            double g5 = exp(g4) + exp(g3) * exp(g1);
            double g6 = g5 * g4 + g3 * g2 + g1;
            double g7 = exp(g6) + pow(g5, g4);
            double g8 = g7 + exp(g6 * g5);
            double g9 = exp(g8) * exp(g7);
            double g10 = g9 + g8 * g7 + exp(g6);
            double g11 = exp(g10) + exp(g9);
            double g12 = g11 * g10 + exp(g8);
            double g13 = exp(g12) + g11;
            double g14 = exp(g13) * g12;
            double g15 = exp(g14) + g13;
            double g16 = exp(g15) * g14;
            double g17 = exp(g16) + g15;
            double g18 = exp(g17) * g16;
            double g19 = exp(g18) + g17;
            double g20 = exp(g19) * g18;
            v[i] = g20 + g19;
        }
    }`).Funcs[0]
	rs := RegisterEstimate(simple)
	rh := RegisterEstimate(heavy)
	if rs >= rh {
		t.Errorf("simple kernel regs (%d) must be below heavy kernel regs (%d)", rs, rh)
	}
	if rs > 64 {
		t.Errorf("streaming kernel estimate too high: %d", rs)
	}
	if rh > 255 {
		t.Errorf("estimate must clamp at 255: %d", rh)
	}
}

func TestOpCountsAIZeroWithoutTraffic(t *testing.T) {
	prog := minic.MustParse(`double f(double x) { return x * x + 1.0; }`)
	fn := prog.Funcs[0]
	ops := CountOps(fn.Body, fn)
	if ops.AI() != 0 {
		t.Errorf("AI without memory traffic = %v, want 0", ops.AI())
	}
	if ops.FlopsW != 2 {
		t.Errorf("flops = %v, want 2", ops.FlopsW)
	}
}
