package bench

import (
	"psaflow/internal/interp"
	"psaflow/internal/minic"
)

// adpredictorSrc is a Bayesian click-through-rate predictor in the style
// of AdPredictor: for each impression, Gaussian belief messages over 6
// feature weights are combined sequentially — the inner loop carries the
// mean/variance chain through erf/exp corrections (CDF, PDF, and an
// exponential forgetting term). The inner loop has a fixed bound and
// loop-carried dependences — exactly the "fully unrollable inner
// dependence loop" shape the PSA strategy maps to the CPU+FPGA branch,
// where the Stratix 10 pipeline achieves the paper's best result (32X,
// §IV-B-iii).
const adpredictorSrc = `
void adpredictor_init(int n, float *x, double *wmean, double *wvar, int seed) {
    int s = seed;
    for (int i = 0; i < 6 * n; i++) {
        s = (s * 1103515245 + 12345) % 2147483647;
        if (s < 0) {
            s = 0 - s;
        }
        x[i] = (float)((double)s / 2147483647.0);
    }
    for (int j = 0; j < 6; j++) {
        s = (s * 1103515245 + 12345) % 2147483647;
        if (s < 0) {
            s = 0 - s;
        }
        wmean[j] = (double)s / 2147483647.0 - 0.5;
        s = (s * 1103515245 + 12345) % 2147483647;
        if (s < 0) {
            s = 0 - s;
        }
        wvar[j] = (double)s / 2147483647.0 * 0.9 + 0.1;
    }
}

double adpredictor_logloss(int n, const float *pred) {
    double loss = 0.0;
    for (int i = 0; i < n; i++) {
        double p = (double)pred[i];
        if (p < 0.0001) {
            p = 0.0001;
        }
        if (p > 0.9999) {
            p = 0.9999;
        }
        loss += 0.0 - log(p);
    }
    return loss / (double)n;
}

double adpredictor_mean_pred(int n, const float *pred) {
    double total = 0.0;
    for (int i = 0; i < n; i++) {
        total += (double)pred[i];
    }
    return total / (double)n;
}

void adpredictor_batch(int n, const float *x, const double *wmean, const double *wvar, float *pred) {
    for (int i = 0; i < n; i++) {
        double mean = 0.0;
        double var = 1.0;
        for (int j = 0; j < 6; j++) {
            double xv = (double)x[i * 6 + j];
            double m = wmean[j] * xv;
            double s2 = wvar[j] * xv * xv + 0.01;
            double z = (mean + m) / (s2 + var);
            double cdf = 0.5 * (1.0 + erf(z * 0.7071067811865475));
            double pdf = exp(-0.5 * z * z) * 0.3989422804014327;
            double decay = exp(-0.1 * s2);
            double v = pdf / (cdf + 0.000000001);
            mean = mean + m + v * decay * 0.01;
            var = var * (1.0 - v * (v + z) * decay * 0.05);
        }
        pred[i] = (float)(mean / (1.0 + var));
    }
}

void adpredictor_main(int n, int seed, float *x, double *wmean, double *wvar, float *pred) {
    adpredictor_init(n, x, wmean, wvar, seed);
    adpredictor_batch(n, x, wmean, wvar, pred);
    double mp = adpredictor_mean_pred(n, pred);
    double loss = adpredictor_logloss(n, pred);
    printf("adpredictor mean=%f logloss=%f", mp, loss);
}
`

const (
	adpredProfileN = 2048
	adpredEvalN    = 32768 // impressions per batch in deployment
	adpredCalls    = 4     // streamed batches in the deployment scenario
)

// AdPredictor returns the AdPredictor benchmark. Profiling runs one batch
// of 2048 impressions; the deployment scenario streams 4 batches of 32768.
func AdPredictor() *Benchmark {
	r := float64(adpredEvalN) / float64(adpredProfileN)
	return &Benchmark{
		Name:   "adpredictor",
		Descr:  "Bayesian CTR prediction over 6-feature impressions",
		Source: adpredictorSrc,
		Entry:  "adpredictor_main",
		MakeArgs: func() []interp.Value {
			n := adpredProfileN
			return []interp.Value{
				interp.IntVal(int64(n)),
				interp.IntVal(99),
				interp.BufVal(interp.NewFloatBuffer("x", minic.Float, make([]float64, 6*n))),
				interp.BufVal(interp.NewFloatBuffer("wmean", minic.Double, make([]float64, 6))),
				interp.BufVal(interp.NewFloatBuffer("wvar", minic.Double, make([]float64, 6))),
				interp.BufVal(interp.NewFloatBuffer("pred", minic.Float, make([]float64, n))),
			}
		},
		Scale: EvalScale{
			Work:      r * adpredCalls,
			Footprint: r * adpredCalls,
			Threads:   r,
			Pipelined: r * adpredCalls,
			Calls:     adpredCalls,
		},
		ExpectTarget: "fpga",
	}
}
