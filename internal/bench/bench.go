// Package bench provides the five evaluation applications of the paper —
// N-Body Simulation, K-Means Classification, AdPredictor, Rush Larsen ODE
// Solver, and Bezier Surface Generation — as unoptimized MiniC sources
// with workload generators, plus the evaluation-scale factors that map the
// (small, fast-to-interpret) profiling inputs to the deployment-size
// scenario the Fig. 5 speedups describe.
package bench

import (
	"fmt"

	"psaflow/internal/hls"
	"psaflow/internal/interp"
	"psaflow/internal/minic"
	"psaflow/internal/perfmodel"
)

// EvalScale maps profiling-run measurements to the evaluation scenario.
// Profiling runs use reduced input sizes so the dynamic analyses stay
// fast; the factors below scale the measured kernel features to the
// deployment size (a standard profile-small / model-large methodology).
type EvalScale struct {
	Work      float64 // scales cycles and FLOPs (total computational work)
	Footprint float64 // scales kernel bytes and host transfer volumes
	Threads   float64 // scales the parallel iteration count per invocation
	Pipelined float64 // scales the FPGA pipelined trip count
	Calls     float64 // kernel invocations in deployment (absolute, ≥1)
}

// Apply returns the features scaled to the evaluation scenario.
func (es EvalScale) Apply(f perfmodel.KernelFeatures) perfmodel.KernelFeatures {
	w := es.Work
	if w <= 0 {
		w = 1
	}
	fp := es.Footprint
	if fp <= 0 {
		fp = 1
	}
	th := es.Threads
	if th <= 0 {
		th = 1
	}
	f.HotspotCycles *= w
	f.Flops *= w
	f.SpecialFlops *= w
	f.Bytes *= fp
	f.TransferIn *= fp
	f.TransferOut *= fp
	f.Threads *= th
	if es.Calls >= 1 {
		f.Calls = es.Calls
	}
	return f
}

// ApplyHLS returns a copy of an HLS report with the pipelined trip count
// scaled to the evaluation scenario.
func (es EvalScale) ApplyHLS(rep *hls.Report) *hls.Report {
	out := *rep
	p := es.Pipelined
	if p <= 0 {
		p = 1
	}
	out.PipelinedTrips *= p
	return &out
}

// Benchmark is one evaluation application.
type Benchmark struct {
	Name   string
	Descr  string
	Source string
	// Entry is the application function dynamic analyses execute.
	Entry string
	// MakeArgs allocates fresh argument buffers for one profiling run.
	MakeArgs func() []interp.Value
	// Scale maps profile measurements to the evaluation scenario.
	Scale EvalScale
	// Expected PSA outcome (paper Fig. 5 "Auto-Selected"), used by tests
	// and reported by the harness.
	ExpectTarget string
}

// Workload adapts a Benchmark to core.Workload.
type Workload struct{ B *Benchmark }

// Name returns the benchmark name.
func (w Workload) Name() string { return w.B.Name }

// Entry returns the application entry function.
func (w Workload) Entry() string { return w.B.Entry }

// Args allocates fresh buffers for one run.
func (w Workload) Args() []interp.Value { return w.B.MakeArgs() }

// Parse returns the benchmark's program (panics on malformed embedded
// source; covered by tests).
func (b *Benchmark) Parse() *minic.Program { return minic.MustParse(b.Source) }

// All returns the five benchmarks in the paper's order of presentation.
func All() []*Benchmark {
	return []*Benchmark{NBody(), KMeans(), AdPredictor(), RushLarsen(), Bezier()}
}

// ByName fetches one benchmark.
func ByName(name string) (*Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown benchmark %q", name)
}

// deterministic pseudo-random fill (xorshift) so workloads are reproducible
// without math/rand.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed ^ 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// unit returns a float in [0, 1).
func (r *rng) unit() float64 { return float64(r.next()%(1<<53)) / (1 << 53) }

// rangeF returns a float in [lo, hi).
func (r *rng) rangeF(lo, hi float64) float64 { return lo + (hi-lo)*r.unit() }

func fillRange(buf []float64, seed uint64, lo, hi float64) {
	r := newRNG(seed)
	for i := range buf {
		buf[i] = r.rangeF(lo, hi)
	}
}
