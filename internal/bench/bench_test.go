package bench

import (
	"strings"
	"testing"

	"psaflow/internal/analysis"
	"psaflow/internal/hls"
	"psaflow/internal/interp"
	"psaflow/internal/perfmodel"
	"psaflow/internal/platform"
	"psaflow/internal/query"
)

func TestAllBenchmarksParse(t *testing.T) {
	for _, b := range All() {
		prog := b.Parse()
		if prog.Func(b.Entry) == nil {
			t.Errorf("%s: entry %q missing", b.Name, b.Entry)
		}
	}
}

func TestAllBenchmarksExecute(t *testing.T) {
	for _, b := range All() {
		res, err := interp.Run(b.Parse(), interp.Config{Entry: b.Entry, Args: b.MakeArgs()})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if len(res.Output) == 0 {
			t.Errorf("%s: driver produced no validation output", b.Name)
		}
		if res.Prof.Cycles <= 0 {
			t.Errorf("%s: no cycles recorded", b.Name)
		}
	}
}

func TestBenchmarksDeterministic(t *testing.T) {
	for _, b := range All() {
		r1, err1 := interp.Run(b.Parse(), interp.Config{Entry: b.Entry, Args: b.MakeArgs()})
		r2, err2 := interp.Run(b.Parse(), interp.Config{Entry: b.Entry, Args: b.MakeArgs()})
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", b.Name, err1, err2)
		}
		if strings.Join(r1.Output, "|") != strings.Join(r2.Output, "|") {
			t.Errorf("%s: nondeterministic output:\n%v\n%v", b.Name, r1.Output, r2.Output)
		}
		if r1.Prof.Cycles != r2.Prof.Cycles {
			t.Errorf("%s: nondeterministic cycles", b.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, b := range All() {
		got, err := ByName(b.Name)
		if err != nil || got.Name != b.Name {
			t.Errorf("ByName(%s): %v", b.Name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
}

// hotspotOf runs hotspot detection and returns the function holding the
// hottest outermost loop.
func hotspotOf(t *testing.T, b *Benchmark) (string, float64) {
	t.Helper()
	res, err := interp.Run(b.Parse(), interp.Config{Entry: b.Entry, Args: b.MakeArgs()})
	if err != nil {
		t.Fatalf("%s: %v", b.Name, err)
	}
	hs, share := res.Prof.Hotspot()
	if hs == nil {
		t.Fatalf("%s: no hotspot", b.Name)
	}
	return hs.Func, share
}

func TestHotspotsLandInComputeKernels(t *testing.T) {
	want := map[string]string{
		"nbody":       "nbody_step",
		"kmeans":      "kmeans_iter",
		"adpredictor": "adpredictor_batch",
		"rushlarsen":  "rush_larsen",
		"bezier":      "bezier_surface",
	}
	for _, b := range All() {
		fn, share := hotspotOf(t, b)
		if fn != want[b.Name] {
			t.Errorf("%s: hotspot in %q, want %q", b.Name, fn, want[b.Name])
		}
		if share < 0.5 {
			t.Errorf("%s: hotspot share %.2f, want > 0.5", b.Name, share)
		}
	}
}

func TestRegisterEstimates(t *testing.T) {
	// Rush Larsen must hit the paper's 255 registers/thread; streaming
	// kernels stay far below.
	rush, _ := ByName("rushlarsen")
	prog := rush.Parse()
	if regs := analysis.RegisterEstimate(prog.MustFunc("rush_larsen")); regs != 255 {
		t.Errorf("rush regs = %d, want 255 (paper)", regs)
	}
	km, _ := ByName("kmeans")
	if regs := analysis.RegisterEstimate(km.Parse().MustFunc("kmeans_iter")); regs >= 255 {
		t.Errorf("kmeans regs = %d, want below the cap", regs)
	}
}

func TestOuterLoopParallelism(t *testing.T) {
	kernels := map[string]string{
		"nbody":       "nbody_step",
		"kmeans":      "kmeans_iter",
		"adpredictor": "adpredictor_batch",
		"rushlarsen":  "rush_larsen",
		"bezier":      "bezier_surface",
	}
	for name, fnName := range kernels {
		b, _ := ByName(name)
		prog := b.Parse()
		q := query.New(prog)
		outer := q.OutermostLoops(prog.MustFunc(fnName))
		if len(outer) == 0 {
			t.Fatalf("%s: no loops", name)
		}
		deps := analysis.AnalyzeLoop(outer[0])
		if !deps.ParallelWithReduction() {
			t.Errorf("%s: compute loop must be outer-parallel: %+v", name, deps.Carried)
		}
	}
}

func TestRushLarsenOvermapsBothFPGAs(t *testing.T) {
	b, _ := ByName("rushlarsen")
	prog := b.Parse()
	fn := prog.MustFunc("rush_larsen")
	// Even at unroll 1 the 20x3 exponential units exceed both devices:
	// the paper's "designs exceed the capacity of our current FPGA
	// devices" outcome. The gate loop is accounted spatially by
	// WeightedOps whether or not materialized.
	repA10 := hls.Estimate(prog, fn, platform.Arria10, 0)
	repS10 := hls.Estimate(prog, fn, platform.Stratix10, 0)
	if repA10.Fits {
		t.Errorf("rush should overmap Arria 10: %s", repA10)
	}
	if repS10.Fits {
		t.Errorf("rush should overmap Stratix 10: %s", repS10)
	}
}

func TestEvalScaleApply(t *testing.T) {
	es := EvalScale{Work: 4, Footprint: 2, Threads: 3, Pipelined: 5, Calls: 7}
	f := perfmodel.KernelFeatures{
		HotspotCycles: 10, Flops: 10, SpecialFlops: 4, Bytes: 10,
		TransferIn: 10, TransferOut: 10, Threads: 10, Calls: 1,
	}
	got := es.Apply(f)
	if got.HotspotCycles != 40 || got.Flops != 40 || got.SpecialFlops != 16 {
		t.Errorf("work scaling wrong: %+v", got)
	}
	if got.Bytes != 20 || got.TransferIn != 20 || got.TransferOut != 20 {
		t.Errorf("footprint scaling wrong: %+v", got)
	}
	if got.Threads != 30 || got.Calls != 7 {
		t.Errorf("threads/calls wrong: %+v", got)
	}
	// Zero factors default to 1.
	id := EvalScale{}.Apply(f)
	if id != f {
		t.Errorf("identity scale changed features: %+v", id)
	}
}

func TestEvalScaleApplyHLS(t *testing.T) {
	es := EvalScale{Pipelined: 8}
	rep := &hls.Report{PipelinedTrips: 100}
	out := es.ApplyHLS(rep)
	if out.PipelinedTrips != 800 {
		t.Errorf("trips = %v", out.PipelinedTrips)
	}
	if rep.PipelinedTrips != 100 {
		t.Error("ApplyHLS mutated the input report")
	}
}

func TestRNGDeterministicAndBounded(t *testing.T) {
	a := make([]float64, 100)
	b := make([]float64, 100)
	fillRange(a, 5, -2, 3)
	fillRange(b, 5, -2, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("fillRange not deterministic")
		}
		if a[i] < -2 || a[i] >= 3 {
			t.Fatalf("value %v out of range", a[i])
		}
	}
	c := make([]float64, 100)
	fillRange(c, 6, -2, 3)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 10 {
		t.Error("different seeds produce similar sequences")
	}
}
