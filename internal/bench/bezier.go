package bench

import (
	"psaflow/internal/interp"
	"psaflow/internal/minic"
)

// bezierSrc evaluates a degree-(m,n) Bezier surface on a flat sample grid.
// Per sample point (parallel outer loop) the nested control-point loops
// accumulate Bernstein-weighted control coordinates through pow() — a
// complex multi-nested inner loop structure with runtime bounds, which the
// PSA strategy maps to the CPU+GPU branch (paper §IV-B-ii: neither GPU is
// fully saturated at this grid size, so the two devices land close
// together).
const bezierSrc = `
void bezier_init_ctrl(int m, int n, double *ctrl, int seed) {
    int s = seed;
    for (int i = 0; i < (m + 1) * (n + 1) * 3; i++) {
        s = (s * 1103515245 + 12345) % 2147483647;
        if (s < 0) {
            s = 0 - s;
        }
        ctrl[i] = (double)s / 2147483647.0 * 4.0 - 2.0;
    }
}

void bezier_init_binom(double *binom) {
    for (int d = 0; d < 17; d++) {
        binom[d * 17] = 1.0;
        for (int k = 1; k < 17; k++) {
            binom[d * 17 + k] = 0.0;
        }
    }
    for (int d = 1; d < 17; d++) {
        for (int k = 1; k <= d; k++) {
            binom[d * 17 + k] = binom[(d - 1) * 17 + k - 1] + binom[(d - 1) * 17 + k];
        }
    }
}

double bezier_surface_area_estimate(int su, int sv, const double *surf) {
    double area = 0.0;
    for (int p = 0; p < su * sv - sv - 1; p++) {
        double dx = surf[(p + 1) * 3] - surf[p * 3];
        double dy = surf[(p + 1) * 3 + 1] - surf[p * 3 + 1];
        double dz = surf[(p + sv) * 3 + 2] - surf[p * 3 + 2];
        area += sqrt(dx * dx + dy * dy + dz * dz);
    }
    return area;
}

double bezier_checksum(int su, int sv, const double *surf) {
    double acc = 0.0;
    for (int i = 0; i < su * sv * 3; i++) {
        acc += surf[i];
    }
    return acc;
}

void bezier_surface(int su, int sv, int m, int n, const double *ctrl, const double *binom, double *surf) {
    for (int p = 0; p < su * sv; p++) {
        int ui = p / sv;
        int vi = p % sv;
        double u = (double)ui / (double)(su - 1);
        double v = (double)vi / (double)(sv - 1);
        double sx = 0.0;
        double sy = 0.0;
        double sz = 0.0;
        for (int i = 0; i <= m; i++) {
            double bu = binom[m * 17 + i] * pow(u, (double)i) * pow(1.0 - u, (double)(m - i));
            for (int j = 0; j <= n; j++) {
                double bv = binom[n * 17 + j] * pow(v, (double)j) * pow(1.0 - v, (double)(n - j));
                double w = bu * bv;
                int cidx = (i * (n + 1) + j) * 3;
                sx = sx + w * ctrl[cidx];
                sy = sy + w * ctrl[cidx + 1];
                sz = sz + w * ctrl[cidx + 2];
            }
        }
        surf[p * 3] = sx;
        surf[p * 3 + 1] = sy;
        surf[p * 3 + 2] = sz;
    }
}

void bezier_main(int su, int sv, int m, int n, int seed, double *ctrl, double *binom, double *surf) {
    bezier_init_ctrl(m, n, ctrl, seed);
    bezier_init_binom(binom);
    bezier_surface(su, sv, m, n, ctrl, binom, surf);
    double area = bezier_surface_area_estimate(su, sv, surf);
    double sum = bezier_checksum(su, sv, surf);
    printf("bezier area=%f checksum=%f", area, sum);
}
`

const (
	bezierProfileGrid = 32 // 32x32 sample points
	bezierProfileDeg  = 8
	bezierEvalGrid    = 64 // 64x64 sample points
	bezierEvalDeg     = 16
)

// Bezier returns the Bezier Surface Generation benchmark. Profiling
// evaluates a degree-8 patch on a 32×32 grid; the evaluation scenario is a
// degree-16 patch on 64×64 (work scales with grid × (deg+1)²).
func Bezier() *Benchmark {
	gridScale := float64(bezierEvalGrid*bezierEvalGrid) / float64(bezierProfileGrid*bezierProfileGrid)
	degScale := float64((bezierEvalDeg+1)*(bezierEvalDeg+1)) / float64((bezierProfileDeg+1)*(bezierProfileDeg+1))
	return &Benchmark{
		Name:   "bezier",
		Descr:  "Bezier surface evaluation over a sample grid",
		Source: bezierSrc,
		Entry:  "bezier_main",
		MakeArgs: func() []interp.Value {
			deg := bezierProfileDeg
			grid := bezierProfileGrid
			nCtrl := (deg + 1) * (deg + 1) * 3
			return []interp.Value{
				interp.IntVal(int64(grid)),
				interp.IntVal(int64(grid)),
				interp.IntVal(int64(deg)),
				interp.IntVal(int64(deg)),
				interp.IntVal(3),
				interp.BufVal(interp.NewFloatBuffer("ctrl", minic.Double, make([]float64, nCtrl))),
				interp.BufVal(interp.NewFloatBuffer("binom", minic.Double, make([]float64, 17*17))),
				interp.BufVal(interp.NewFloatBuffer("surf", minic.Double, make([]float64, grid*grid*3))),
			}
		},
		Scale: EvalScale{
			Work:      gridScale * degScale,
			Footprint: gridScale,
			Threads:   gridScale,
			Pipelined: gridScale * degScale,
			Calls:     1,
		},
		ExpectTarget: "gpu",
	}
}
