package bench

import (
	"psaflow/internal/interp"
	"psaflow/internal/minic"
)

// kmeansSrc is one Lloyd iteration of K-Means with K=8 clusters in D=4
// dimensions: the assignment step (the hotspot: low arithmetic intensity,
// memory-bound, so the informed PSA strategy keeps it on the multi-thread
// CPU — paper §IV-B-i) followed by the centroid update.
const kmeansSrc = `
void kmeans_init(int n, double *points, double *centroids, int seed) {
    int s = seed;
    for (int i = 0; i < 4 * n; i++) {
        s = (s * 1103515245 + 12345) % 2147483647;
        if (s < 0) {
            s = 0 - s;
        }
        points[i] = (double)s / 2147483647.0 * 20.0 - 10.0;
    }
    for (int c = 0; c < 32; c++) {
        s = (s * 1103515245 + 12345) % 2147483647;
        if (s < 0) {
            s = 0 - s;
        }
        centroids[c] = (double)s / 2147483647.0 * 20.0 - 10.0;
    }
}

double kmeans_inertia(int n, const double *points, const double *centroids, const int *labels) {
    double total = 0.0;
    for (int i = 0; i < n; i++) {
        int c = labels[i];
        for (int j = 0; j < 4; j++) {
            double diff = points[i * 4 + j] - centroids[c * 4 + j];
            total += diff * diff;
        }
    }
    return total;
}

int kmeans_label_histogram(int n, const int *labels, int *hist) {
    int nonempty = 0;
    for (int c = 0; c < 8; c++) {
        hist[c] = 0;
    }
    for (int i = 0; i < n; i++) {
        hist[labels[i]] += 1;
    }
    for (int c = 0; c < 8; c++) {
        if (hist[c] > 0) {
            nonempty++;
        }
    }
    return nonempty;
}

void kmeans_iter(int n, const double *points, double *centroids, int *labels, double *sums, int *counts) {
    for (int i = 0; i < n; i++) {
        double best = 1e30;
        int bestc = 0;
        for (int c = 0; c < 8; c++) {
            double dist = 0.0;
            for (int j = 0; j < 4; j++) {
                double diff = points[i * 4 + j] - centroids[c * 4 + j];
                dist = dist + diff * diff;
            }
            if (dist < best) {
                best = dist;
                bestc = c;
            }
        }
        labels[i] = bestc;
    }
    for (int c = 0; c < 8; c++) {
        counts[c] = 0;
        for (int j = 0; j < 4; j++) {
            sums[c * 4 + j] = 0.0;
        }
    }
    for (int i = 0; i < n; i++) {
        int c = labels[i];
        for (int j = 0; j < 4; j++) {
            sums[c * 4 + j] += points[i * 4 + j];
        }
        counts[c] += 1;
    }
    for (int c = 0; c < 8; c++) {
        if (counts[c] > 0) {
            for (int j = 0; j < 4; j++) {
                centroids[c * 4 + j] = sums[c * 4 + j] / (double)counts[c];
            }
        }
    }
}

void kmeans_main(int n, int seed, double *points, double *centroids, int *labels, double *sums, int *counts, int *hist) {
    kmeans_init(n, points, centroids, seed);
    kmeans_iter(n, points, centroids, labels, sums, counts);
    double inertia = kmeans_inertia(n, points, centroids, labels);
    int nonempty = kmeans_label_histogram(n, labels, hist);
    printf("kmeans inertia=%f clusters=%d", inertia, nonempty);
}
`

const (
	kmeansProfileN = 4096
	kmeansEvalN    = 4194304
)

// KMeans returns the K-Means Classification benchmark. Profiling runs
// n=4096 points; the evaluation scenario models n≈4.2M (everything scales
// linearly with n).
func KMeans() *Benchmark {
	r := float64(kmeansEvalN) / float64(kmeansProfileN)
	return &Benchmark{
		Name:   "kmeans",
		Descr:  "K-Means classification iteration (K=8, D=4)",
		Source: kmeansSrc,
		Entry:  "kmeans_main",
		MakeArgs: func() []interp.Value {
			n := kmeansProfileN
			return []interp.Value{
				interp.IntVal(int64(n)),
				interp.IntVal(7),
				interp.BufVal(interp.NewFloatBuffer("points", minic.Double, make([]float64, 4*n))),
				interp.BufVal(interp.NewFloatBuffer("centroids", minic.Double, make([]float64, 4*8))),
				interp.BufVal(interp.NewIntBuffer("labels", make([]int64, n))),
				interp.BufVal(interp.NewFloatBuffer("sums", minic.Double, make([]float64, 4*8))),
				interp.BufVal(interp.NewIntBuffer("counts", make([]int64, 8))),
				interp.BufVal(interp.NewIntBuffer("hist", make([]int64, 8))),
			}
		},
		Scale: EvalScale{
			Work:      r,
			Footprint: r,
			Threads:   r,
			Pipelined: r,
			Calls:     1,
		},
		ExpectTarget: "cpu",
	}
}
