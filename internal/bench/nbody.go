package bench

import (
	"psaflow/internal/interp"
	"psaflow/internal/minic"
)

// nbodySrc is the unoptimized all-pairs N-Body step: the O(N²) force
// accumulation (the hotspot) followed by an O(N) leapfrog integration.
// The force loop is parallel in i; its inner j loop carries only local
// reductions with a runtime bound, so the PSA strategy routes the design
// to the CPU+GPU branch (paper §IV-B-ii).
const nbodySrc = `
void nbody_init(int n, double *pos, double *vel, double *acc, int seed) {
    int s = seed;
    for (int i = 0; i < 3 * n; i++) {
        s = (s * 1103515245 + 12345) % 2147483647;
        if (s < 0) {
            s = 0 - s;
        }
        pos[i] = (double)s / 2147483647.0 * 2.0 - 1.0;
        s = (s * 1103515245 + 12345) % 2147483647;
        if (s < 0) {
            s = 0 - s;
        }
        vel[i] = ((double)s / 2147483647.0 - 0.5) * 0.2;
        acc[i] = 0.0;
    }
}

double nbody_kinetic_energy(int n, const double *vel, double mass) {
    double e = 0.0;
    for (int i = 0; i < n; i++) {
        double vx = vel[i * 3];
        double vy = vel[i * 3 + 1];
        double vz = vel[i * 3 + 2];
        e += 0.5 * mass * (vx * vx + vy * vy + vz * vz);
    }
    return e;
}

double nbody_extent(int n, const double *pos) {
    double maxr2 = 0.0;
    for (int i = 0; i < n; i++) {
        double x = pos[i * 3];
        double y = pos[i * 3 + 1];
        double z = pos[i * 3 + 2];
        double r2 = x * x + y * y + z * z;
        if (r2 > maxr2) {
            maxr2 = r2;
        }
    }
    return sqrt(maxr2);
}

double nbody_checksum(int n, const double *pos, const double *vel) {
    double acc = 0.0;
    for (int i = 0; i < 3 * n; i++) {
        acc += pos[i] * 0.75 + vel[i] * 0.25;
    }
    return acc;
}

void nbody_step(int n, double *pos, double *vel, double *acc, double dt, double eps) {
    for (int i = 0; i < n; i++) {
        double ax = 0.0;
        double ay = 0.0;
        double az = 0.0;
        for (int j = 0; j < n; j++) {
            double dx = pos[j * 3] - pos[i * 3];
            double dy = pos[j * 3 + 1] - pos[i * 3 + 1];
            double dz = pos[j * 3 + 2] - pos[i * 3 + 2];
            double dist2 = dx * dx + dy * dy + dz * dz + eps;
            double invDist = 1.0 / sqrt(dist2);
            double invDist3 = invDist * invDist * invDist;
            ax = ax + dx * invDist3;
            ay = ay + dy * invDist3;
            az = az + dz * invDist3;
        }
        acc[i * 3] = ax;
        acc[i * 3 + 1] = ay;
        acc[i * 3 + 2] = az;
    }
    for (int i = 0; i < n; i++) {
        vel[i * 3] = vel[i * 3] + acc[i * 3] * dt;
        vel[i * 3 + 1] = vel[i * 3 + 1] + acc[i * 3 + 1] * dt;
        vel[i * 3 + 2] = vel[i * 3 + 2] + acc[i * 3 + 2] * dt;
        pos[i * 3] = pos[i * 3] + vel[i * 3] * dt;
        pos[i * 3 + 1] = pos[i * 3 + 1] + vel[i * 3 + 1] * dt;
        pos[i * 3 + 2] = pos[i * 3 + 2] + vel[i * 3 + 2] * dt;
    }
}

void nbody_main(int n, int seed, double dt, double eps, double *pos, double *vel, double *acc) {
    nbody_init(n, pos, vel, acc, seed);
    double e0 = nbody_kinetic_energy(n, vel, 1.0);
    nbody_step(n, pos, vel, acc, dt, eps);
    double e1 = nbody_kinetic_energy(n, vel, 1.0);
    double extent = nbody_extent(n, pos);
    double sum = nbody_checksum(n, pos, vel);
    printf("nbody e0=%f e1=%f extent=%f checksum=%f", e0, e1, extent, sum);
}
`

const (
	nbodyProfileN = 256
	nbodyEvalN    = 32768
)

// NBody returns the N-Body Simulation benchmark. Profiling runs n=256
// bodies; the evaluation scenario models n=16384 (work scales with n²,
// data and parallelism with n).
func NBody() *Benchmark {
	r := float64(nbodyEvalN) / float64(nbodyProfileN)
	return &Benchmark{
		Name:   "nbody",
		Descr:  "all-pairs gravitational N-Body step",
		Source: nbodySrc,
		Entry:  "nbody_main",
		MakeArgs: func() []interp.Value {
			n := nbodyProfileN
			return []interp.Value{
				interp.IntVal(int64(n)),
				interp.IntVal(42),
				interp.DoubleVal(0.01),
				interp.DoubleVal(1e-9),
				interp.BufVal(interp.NewFloatBuffer("pos", minic.Double, make([]float64, 3*n))),
				interp.BufVal(interp.NewFloatBuffer("vel", minic.Double, make([]float64, 3*n))),
				interp.BufVal(interp.NewFloatBuffer("acc", minic.Double, make([]float64, 3*n))),
			}
		},
		Scale: EvalScale{
			Work:      r * r,
			Footprint: r,
			Threads:   r,
			Pipelined: r * r,
			Calls:     1,
		},
		ExpectTarget: "gpu",
	}
}
