package bench

import (
	"psaflow/internal/interp"
	"psaflow/internal/minic"
)

// rushLarsenSrc is a Rush-Larsen exponential-integrator ODE solver for a
// membrane model with 20 gating variables per cell: per cell (parallel
// outer loop) the sub-step loop integrates the stiff gate dynamics, with
// three exp() evaluations per gate per sub-step. The sub-step loop carries
// the membrane-potential recurrence with a runtime bound, so the PSA
// strategy maps the design to the CPU+GPU branch; the ~20 live gate values
// drive the register estimate to the paper's 255 registers/thread, and the
// 60 exponential units per pipeline stage overmap both FPGAs — exactly the
// paper's "Rush Larsen CPU+FPGA designs exceed device capacity" outcome.
const rushLarsenSrc = `
void rush_init(int n, double *vm, double *gates, double *ka, double *kb, double *kc, double *kd, double *ek, int seed) {
    int s = seed;
    for (int c = 0; c < n; c++) {
        s = (s * 1103515245 + 12345) % 2147483647;
        if (s < 0) {
            s = 0 - s;
        }
        vm[c] = (double)s / 2147483647.0 * 20.0 - 80.0;
    }
    for (int i = 0; i < 20 * n; i++) {
        s = (s * 1103515245 + 12345) % 2147483647;
        if (s < 0) {
            s = 0 - s;
        }
        gates[i] = (double)s / 2147483647.0;
    }
    for (int g = 0; g < 20; g++) {
        s = (s * 1103515245 + 12345) % 2147483647;
        if (s < 0) {
            s = 0 - s;
        }
        ka[g] = (double)s / 2147483647.0 * 2.0 - 2.0;
        s = (s * 1103515245 + 12345) % 2147483647;
        if (s < 0) {
            s = 0 - s;
        }
        kb[g] = (double)s / 2147483647.0 * 0.8 + 0.1;
        s = (s * 1103515245 + 12345) % 2147483647;
        if (s < 0) {
            s = 0 - s;
        }
        kc[g] = (double)s / 2147483647.0 * 2.0 - 1.0;
        s = (s * 1103515245 + 12345) % 2147483647;
        if (s < 0) {
            s = 0 - s;
        }
        kd[g] = (double)s / 2147483647.0 * 0.8 + 0.1;
        s = (s * 1103515245 + 12345) % 2147483647;
        if (s < 0) {
            s = 0 - s;
        }
        ek[g] = (double)s / 2147483647.0 * 130.0 - 90.0;
    }
}

double rush_mean_vm(int n, const double *vm) {
    double total = 0.0;
    for (int c = 0; c < n; c++) {
        total += vm[c];
    }
    return total / (double)n;
}

double rush_gate_bounds_violations(int n, const double *gates) {
    double bad = 0.0;
    for (int i = 0; i < 20 * n; i++) {
        if (gates[i] < 0.0 || gates[i] > 1.0) {
            bad += 1.0;
        }
    }
    return bad;
}

void rush_larsen(int n, int steps, double *vm, double *gates, const double *ka, const double *kb, const double *kc, const double *kd, const double *ek, double dt) {
    for (int c = 0; c < n; c++) {
        double v = vm[c];
        for (int s = 0; s < steps; s++) {
            double current = 0.0;
            for (int g = 0; g < 20; g++) {
                double alpha = exp(ka[g] + kb[g] * v * 0.01);
                double beta = exp(kc[g] - kd[g] * v * 0.01);
                double ginf = alpha / (alpha + beta);
                double gold = gates[c * 20 + g];
                double gnew = ginf + (gold - ginf) * exp(0.0 - dt * (alpha + beta));
                gates[c * 20 + g] = gnew;
                current = current + gnew * (v - ek[g]);
            }
            v = v - dt * current * 0.05;
        }
        vm[c] = v;
    }
}

void rush_main(int n, int steps, int seed, double dt, double *vm, double *gates, double *ka, double *kb, double *kc, double *kd, double *ek) {
    rush_init(n, vm, gates, ka, kb, kc, kd, ek, seed);
    rush_larsen(n, steps, vm, gates, ka, kb, kc, kd, ek, dt);
    double mv = rush_mean_vm(n, vm);
    double bad = rush_gate_bounds_violations(n, gates);
    printf("rushlarsen mean_vm=%f violations=%f", mv, bad);
}
`

const (
	rushProfileCells = 256
	rushProfileSteps = 25
	rushEvalCells    = 12288
	rushEvalSteps    = 2000
)

// RushLarsen returns the Rush Larsen ODE solver benchmark. Profiling runs
// 256 cells for 25 sub-steps; the evaluation scenario integrates 12288
// cells for 2000 sub-steps (a workload that saturates the GTX 1080 Ti's
// register-limited thread capacity but not the RTX 2080 Ti's).
func RushLarsen() *Benchmark {
	rc := float64(rushEvalCells) / float64(rushProfileCells)
	rs := float64(rushEvalSteps) / float64(rushProfileSteps)
	return &Benchmark{
		Name:   "rushlarsen",
		Descr:  "Rush-Larsen ODE solver, 20 gates per cell",
		Source: rushLarsenSrc,
		Entry:  "rush_main",
		MakeArgs: func() []interp.Value {
			n := rushProfileCells
			return []interp.Value{
				interp.IntVal(int64(n)),
				interp.IntVal(rushProfileSteps),
				interp.IntVal(5),
				interp.DoubleVal(0.001),
				interp.BufVal(interp.NewFloatBuffer("vm", minic.Double, make([]float64, n))),
				interp.BufVal(interp.NewFloatBuffer("gates", minic.Double, make([]float64, 20*n))),
				interp.BufVal(interp.NewFloatBuffer("ka", minic.Double, make([]float64, 20))),
				interp.BufVal(interp.NewFloatBuffer("kb", minic.Double, make([]float64, 20))),
				interp.BufVal(interp.NewFloatBuffer("kc", minic.Double, make([]float64, 20))),
				interp.BufVal(interp.NewFloatBuffer("kd", minic.Double, make([]float64, 20))),
				interp.BufVal(interp.NewFloatBuffer("ek", minic.Double, make([]float64, 20))),
			}
		},
		Scale: EvalScale{
			Work:      rc * rs,
			Footprint: rc,
			Threads:   rc,
			Pipelined: rc * rs,
			Calls:     1,
		},
		ExpectTarget: "gpu",
	}
}
