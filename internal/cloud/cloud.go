// Package cloud implements the runtime-mapping scenario of the paper's
// §IV-D: once the uninformed PSA-flow has produced a set of diverse
// designs per application, a heterogeneous cloud can map incoming
// computations at runtime onto CPU, GPU, or FPGA resources using the
// derived performance models and current resource prices — and "the most
// performant design for a given application and workload might not be the
// most cost effective". The package provides priced resource pools, job
// classes backed by per-design execution times, mapping policies, and a
// deterministic discrete-event simulator that reports cost, latency, and
// deadline metrics.
package cloud

import (
	"fmt"
	"math"
	"sort"

	"psaflow/internal/platform"
)

// PriceSchedule maps simulation time to a price multiplier, modeling the
// paper's variable cloud pricing ("discounts at off-peak hours" §IV-D).
type PriceSchedule func(t float64) float64

// Resource is a provisioned device pool in the cloud: jobs mapped to it
// execute one at a time per instance and are billed per second.
type Resource struct {
	Name        string
	Target      platform.TargetKind
	PricePerSec float64 // base billing rate while a job runs
	Instances   int     // concurrent slots
	// Schedule optionally scales the base rate over time (nil = flat).
	Schedule PriceSchedule
	// nextFree[i] is the completion time of instance i's last job.
	nextFree []float64
}

// PriceAt returns the effective rate for a job starting at time t.
func (r *Resource) PriceAt(t float64) float64 {
	if r.Schedule == nil {
		return r.PricePerSec
	}
	return r.PricePerSec * r.Schedule(t)
}

// JobClass is an application with one design per resource (times from the
// PSA-flow's device models). A missing entry means the design is not
// synthesizable on that resource (e.g. Rush Larsen on FPGAs).
type JobClass struct {
	Name string
	// ExecTime maps resource name to the design's execution time.
	ExecTime map[string]float64
}

// Job is one arrival.
type Job struct {
	Class    *JobClass
	Arrival  float64
	Deadline float64 // absolute completion deadline; 0 = none
}

// Assignment records where a job ran and what it cost.
type Assignment struct {
	Job      Job
	Resource string
	Start    float64
	Finish   float64
	Cost     float64
	Missed   bool // deadline missed (or job unmappable)
	Mapped   bool
}

// Policy chooses a resource for a job given current instance availability.
// earliest maps resource name to the earliest start time a job could get.
type Policy interface {
	Name() string
	Choose(job Job, resources []*Resource, earliest map[string]float64) *Resource
}

// feasibleFinish computes the finish time of job on r if started at the
// earliest slot.
func feasibleFinish(job Job, r *Resource, earliest map[string]float64) (float64, bool) {
	exec, ok := job.Class.ExecTime[r.Name]
	if !ok || exec <= 0 || math.IsInf(exec, 1) {
		return 0, false
	}
	start := math.Max(job.Arrival, earliest[r.Name])
	return start + exec, true
}

// CheapestFeasible picks the lowest-cost resource whose finish time meets
// the deadline; with no deadline it simply minimizes cost, breaking ties
// by finish time.
type CheapestFeasible struct{}

// Name identifies the policy.
func (CheapestFeasible) Name() string { return "cheapest-feasible" }

// Choose implements Policy.
func (CheapestFeasible) Choose(job Job, resources []*Resource, earliest map[string]float64) *Resource {
	var best *Resource
	bestCost, bestFinish := math.Inf(1), math.Inf(1)
	var fallback *Resource
	fallbackFinish := math.Inf(1)
	for _, r := range resources {
		finish, ok := feasibleFinish(job, r, earliest)
		if !ok {
			continue
		}
		start := math.Max(job.Arrival, earliest[r.Name])
		cost := job.Class.ExecTime[r.Name] * r.PriceAt(start)
		if finish < fallbackFinish {
			fallback, fallbackFinish = r, finish
		}
		if job.Deadline > 0 && finish > job.Deadline {
			continue
		}
		if cost < bestCost || (cost == bestCost && finish < bestFinish) {
			best, bestCost, bestFinish = r, cost, finish
		}
	}
	if best == nil {
		return fallback // nothing meets the deadline: minimize lateness
	}
	return best
}

// FastestFinish always picks the earliest finish time (performance-first
// baseline).
type FastestFinish struct{}

// Name identifies the policy.
func (FastestFinish) Name() string { return "fastest-finish" }

// Choose implements Policy.
func (FastestFinish) Choose(job Job, resources []*Resource, earliest map[string]float64) *Resource {
	var best *Resource
	bestFinish := math.Inf(1)
	for _, r := range resources {
		finish, ok := feasibleFinish(job, r, earliest)
		if !ok {
			continue
		}
		if finish < bestFinish {
			best, bestFinish = r, finish
		}
	}
	return best
}

// StaticBest always uses the resource whose design is fastest in isolation
// (what a deployment without runtime mapping would hard-code) — queueing
// and price are ignored.
type StaticBest struct{}

// Name identifies the policy.
func (StaticBest) Name() string { return "static-best" }

// Choose implements Policy.
func (StaticBest) Choose(job Job, resources []*Resource, earliest map[string]float64) *Resource {
	var best *Resource
	bestExec := math.Inf(1)
	for _, r := range resources {
		exec, ok := job.Class.ExecTime[r.Name]
		if !ok || math.IsInf(exec, 1) {
			continue
		}
		if exec < bestExec {
			best, bestExec = r, exec
		}
	}
	return best
}

// Result aggregates a simulation run.
type Result struct {
	Policy      string
	Assignments []Assignment
	TotalCost   float64
	MeanLatency float64
	MaxLatency  float64
	Missed      int
	Unmapped    int
	PerResource map[string]int // jobs per resource
}

// Simulate runs the job stream through the policy on the given resources.
// Jobs are processed in arrival order; each resource instance serves jobs
// FIFO. The input slices are not mutated.
func Simulate(resources []*Resource, jobs []Job, policy Policy) (*Result, error) {
	if len(resources) == 0 {
		return nil, fmt.Errorf("cloud: no resources")
	}
	pool := make([]*Resource, len(resources))
	for i, r := range resources {
		cp := *r
		if cp.Instances <= 0 {
			cp.Instances = 1
		}
		cp.nextFree = make([]float64, cp.Instances)
		pool[i] = &cp
	}
	ordered := append([]Job(nil), jobs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Arrival < ordered[j].Arrival })

	res := &Result{Policy: policy.Name(), PerResource: map[string]int{}}
	var totalLatency float64
	for _, job := range ordered {
		earliest := map[string]float64{}
		slot := map[string]int{}
		for _, r := range pool {
			bestIdx, bestT := 0, math.Inf(1)
			for i, t := range r.nextFree {
				if t < bestT {
					bestIdx, bestT = i, t
				}
			}
			earliest[r.Name] = bestT
			slot[r.Name] = bestIdx
		}
		r := policy.Choose(job, pool, earliest)
		if r == nil {
			res.Assignments = append(res.Assignments, Assignment{Job: job, Missed: true})
			res.Unmapped++
			res.Missed++
			continue
		}
		exec := job.Class.ExecTime[r.Name]
		start := math.Max(job.Arrival, earliest[r.Name])
		finish := start + exec
		r.nextFree[slot[r.Name]] = finish
		a := Assignment{
			Job: job, Resource: r.Name, Start: start, Finish: finish,
			Cost:   exec * r.PriceAt(start),
			Mapped: true,
		}
		if job.Deadline > 0 && finish > job.Deadline {
			a.Missed = true
			res.Missed++
		}
		res.Assignments = append(res.Assignments, a)
		res.TotalCost += a.Cost
		latency := finish - job.Arrival
		totalLatency += latency
		if latency > res.MaxLatency {
			res.MaxLatency = latency
		}
		res.PerResource[r.Name]++
	}
	if mapped := len(res.Assignments) - res.Unmapped; mapped > 0 {
		res.MeanLatency = totalLatency / float64(mapped)
	}
	return res, nil
}

// Summary renders a one-line result overview.
func (r *Result) Summary() string {
	return fmt.Sprintf("%-18s cost=%8.4f meanLat=%8.4gs maxLat=%8.4gs missed=%d unmapped=%d mix=%v",
		r.Policy, r.TotalCost, r.MeanLatency, r.MaxLatency, r.Missed, r.Unmapped, r.PerResource)
}
