package cloud

import (
	"math"
	"testing"
	"testing/quick"

	"psaflow/internal/platform"
)

func testResources() []*Resource {
	return []*Resource{
		{Name: "cpu", Target: platform.TargetCPU, PricePerSec: 1, Instances: 2},
		{Name: "gpu", Target: platform.TargetGPU, PricePerSec: 10, Instances: 1},
		{Name: "fpga", Target: platform.TargetFPGA, PricePerSec: 4, Instances: 1},
	}
}

func classFast() *JobClass {
	// GPU 10x faster than CPU, FPGA in between.
	return &JobClass{Name: "fast", ExecTime: map[string]float64{
		"cpu": 1.0, "gpu": 0.1, "fpga": 0.4,
	}}
}

func classNoFPGA() *JobClass {
	return &JobClass{Name: "nofpga", ExecTime: map[string]float64{
		"cpu": 2.0, "gpu": 0.2,
	}}
}

func TestSimulateRequiresResources(t *testing.T) {
	if _, err := Simulate(nil, nil, CheapestFeasible{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestCheapestFeasiblePrefersLowCost(t *testing.T) {
	// Costs: cpu 1*1=1, gpu 0.1*10=1, fpga 0.4*4=1.6. cpu and gpu tie on
	// cost; the tiebreak is finish time → gpu.
	jobs := []Job{{Class: classFast(), Arrival: 0}}
	res, err := Simulate(testResources(), jobs, CheapestFeasible{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignments[0].Resource != "gpu" {
		t.Fatalf("assigned to %s, want gpu (cost tie, faster finish)", res.Assignments[0].Resource)
	}
	if math.Abs(res.TotalCost-1.0) > 1e-12 {
		t.Fatalf("cost = %v", res.TotalCost)
	}
}

func TestCheapestMeetsDeadline(t *testing.T) {
	// Make the CPU cheapest but too slow for the deadline.
	rs := testResources()
	rs[0].PricePerSec = 0.01
	jobs := []Job{{Class: classFast(), Arrival: 0, Deadline: 0.5}}
	res, err := Simulate(rs, jobs, CheapestFeasible{})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Assignments[0]
	if a.Resource == "cpu" {
		t.Fatal("cpu cannot meet the 0.5s deadline")
	}
	if a.Missed {
		t.Fatal("deadline should be met")
	}
	// fpga finishes at 0.4 and costs 1.6; gpu finishes at 0.1 and costs 1.
	if a.Resource != "gpu" {
		t.Fatalf("assigned %s, want gpu (cheapest feasible)", a.Resource)
	}
}

func TestDeadlineMissFallsBackToFastest(t *testing.T) {
	jobs := []Job{{Class: classFast(), Arrival: 0, Deadline: 0.01}}
	res, err := Simulate(testResources(), jobs, CheapestFeasible{})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Assignments[0]
	if !a.Missed {
		t.Fatal("impossible deadline must be recorded as missed")
	}
	if a.Resource != "gpu" {
		t.Fatalf("lateness minimization should pick gpu, got %s", a.Resource)
	}
	if res.Missed != 1 {
		t.Fatalf("missed = %d", res.Missed)
	}
}

func TestFastestFinishAccountsForQueueing(t *testing.T) {
	// Two simultaneous jobs: the single GPU serves one; the second's
	// fastest FINISH is the idle FPGA (0.4) over the queued GPU (0.2).
	jobs := []Job{
		{Class: classFast(), Arrival: 0},
		{Class: classFast(), Arrival: 0},
	}
	res, err := Simulate(testResources(), jobs, FastestFinish{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignments[0].Resource != "gpu" {
		t.Fatalf("first job on %s", res.Assignments[0].Resource)
	}
	second := res.Assignments[1]
	if second.Resource != "gpu" {
		t.Fatalf("second job on %s, want gpu (finish 0.2 beats fpga 0.4)", second.Resource)
	}
	if math.Abs(second.Finish-0.2) > 1e-12 {
		t.Fatalf("second finish = %v", second.Finish)
	}
}

func TestStaticBestIgnoresQueueing(t *testing.T) {
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Class: classFast(), Arrival: 0}
	}
	res, err := Simulate(testResources(), jobs, StaticBest{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerResource["gpu"] != 8 {
		t.Fatalf("static-best must pile everything on the gpu: %v", res.PerResource)
	}
	// Queueing: the last job waits 7*0.1s.
	if res.MaxLatency < 0.79 {
		t.Fatalf("max latency = %v, want queueing delay", res.MaxLatency)
	}
}

func TestUnsynthesizableDesignNeverMapped(t *testing.T) {
	jobs := []Job{{Class: classNoFPGA(), Arrival: 0}}
	for _, p := range []Policy{CheapestFeasible{}, FastestFinish{}, StaticBest{}} {
		res, err := Simulate(testResources(), jobs, p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Assignments[0].Resource == "fpga" {
			t.Fatalf("%s mapped a job to a resource without a design", p.Name())
		}
	}
}

func TestUnmappableJob(t *testing.T) {
	empty := &JobClass{Name: "none", ExecTime: map[string]float64{}}
	res, err := Simulate(testResources(), []Job{{Class: empty}}, FastestFinish{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unmapped != 1 || res.Assignments[0].Mapped {
		t.Fatalf("unmapped = %d", res.Unmapped)
	}
}

func TestInstancesServeConcurrently(t *testing.T) {
	// Two CPU instances: two simultaneous CPU-only jobs run in parallel.
	rs := []*Resource{{Name: "cpu", PricePerSec: 1, Instances: 2}}
	cls := &JobClass{Name: "c", ExecTime: map[string]float64{"cpu": 1}}
	jobs := []Job{{Class: cls, Arrival: 0}, {Class: cls, Arrival: 0}}
	res, err := Simulate(rs, jobs, FastestFinish{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assignments {
		if math.Abs(a.Finish-1.0) > 1e-12 {
			t.Fatalf("finish = %v, want parallel service", a.Finish)
		}
	}
}

func TestSimulateDoesNotMutateInputs(t *testing.T) {
	rs := testResources()
	jobs := []Job{
		{Class: classFast(), Arrival: 3},
		{Class: classFast(), Arrival: 1},
	}
	if _, err := Simulate(rs, jobs, FastestFinish{}); err != nil {
		t.Fatal(err)
	}
	if jobs[0].Arrival != 3 || jobs[1].Arrival != 1 {
		t.Fatal("job order mutated")
	}
	if rs[0].nextFree != nil {
		t.Fatal("input resource state mutated")
	}
}

// TestQuickCheapestNeverCostsMoreThanFastest: over random job streams, the
// cost-aware policy's total cost never exceeds the performance-first
// policy's (with no deadlines) — the §IV-D claim that runtime mapping by
// price saves money.
func TestQuickCheapestNeverCostsMoreThanFastest(t *testing.T) {
	f := func(seed uint8, nJobs uint8) bool {
		n := int(nJobs)%20 + 1
		jobs := make([]Job, n)
		for i := range jobs {
			jobs[i] = Job{Class: classFast(), Arrival: float64((int(seed)+i*7)%13) * 0.05}
		}
		cheap, err1 := Simulate(testResources(), jobs, CheapestFeasible{})
		fast, err2 := Simulate(testResources(), jobs, FastestFinish{})
		if err1 != nil || err2 != nil {
			return false
		}
		return cheap.TotalCost <= fast.TotalCost+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFastestNeverSlowerMeanLatency: symmetric property for latency.
func TestQuickFastestNeverSlowerMeanLatency(t *testing.T) {
	f := func(seed uint8, nJobs uint8) bool {
		n := int(nJobs)%20 + 1
		jobs := make([]Job, n)
		for i := range jobs {
			jobs[i] = Job{Class: classFast(), Arrival: float64((int(seed)+i*3)%11) * 0.03}
		}
		cheap, err1 := Simulate(testResources(), jobs, CheapestFeasible{})
		fast, err2 := Simulate(testResources(), jobs, FastestFinish{})
		if err1 != nil || err2 != nil {
			return false
		}
		return fast.MeanLatency <= cheap.MeanLatency+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeVaryingPricing(t *testing.T) {
	// GPU is half price after t=1 (off-peak); the cost-aware policy should
	// shift late jobs onto it.
	offPeak := func(tt float64) float64 {
		if tt >= 1 {
			return 0.1
		}
		return 1.0
	}
	rs := []*Resource{
		{Name: "cpu", PricePerSec: 1, Instances: 4},
		{Name: "gpu", PricePerSec: 10, Instances: 1, Schedule: offPeak},
	}
	cls := &JobClass{Name: "c", ExecTime: map[string]float64{"cpu": 1.0, "gpu": 0.1}}
	jobs := []Job{
		{Class: cls, Arrival: 0}, // peak: cpu cost 1, gpu cost 1 → gpu (tie, faster)
		{Class: cls, Arrival: 2}, // off-peak: gpu cost 0.1 → gpu
	}
	res, err := Simulate(rs, jobs, CheapestFeasible{})
	if err != nil {
		t.Fatal(err)
	}
	late := res.Assignments[1]
	if late.Resource != "gpu" {
		t.Fatalf("off-peak job on %s, want gpu", late.Resource)
	}
	if math.Abs(late.Cost-0.1*0.1*10) > 1e-12 {
		t.Fatalf("off-peak cost = %v, want 0.1 exec * 1.0 effective rate", late.Cost)
	}
	// Flat-priced resource unaffected.
	if rs[0].PriceAt(5) != 1 {
		t.Error("flat price changed")
	}
	if rs[1].PriceAt(0.5) != 10 || rs[1].PriceAt(2) != 1 {
		t.Errorf("scheduled prices: %v %v", rs[1].PriceAt(0.5), rs[1].PriceAt(2))
	}
}
