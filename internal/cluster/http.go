package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"psaflow/internal/telemetry"
)

// Wire headers of the peer protocol.
const (
	// ForwardedHeader marks a job submission forwarded by another node;
	// its value is the forwarding node's ID. A request carrying it is
	// always handled locally — one hop maximum, so a stale or split
	// ring can never orbit a job between nodes.
	ForwardedHeader = "X-Psaflow-Forwarded"
	// ProxiedHeader marks a status/result/events/cancel request proxied
	// by another node; the target answers from local state only.
	ProxiedHeader = "X-Psaflow-Proxied"
	// sumHeader carries the envelope checksum on run-cache GETs.
	sumHeader = "X-Psaflow-Sum"
	// nodeHeader / loadHeader identify the responding node and its
	// current load on every peer-protocol response; the client side
	// feeds both into its health table.
	nodeHeader = "X-Psaflow-Node"
	loadHeader = "X-Psaflow-Load"
)

// maxEnvelopeBytes bounds one run envelope on the wire (fills and
// fetches). Profiled-run payloads are a few KB; 8 MiB is a defensive
// ceiling, not a target.
const maxEnvelopeBytes = 8 << 20

// runEnvelope is the POST /v1/cluster/runs/{key} body: the key fields
// (re-hashed by the owner to verify the URL), the content checksum, and
// the wire result.
type runEnvelope struct {
	Fingerprint uint64          `json:"fingerprint"`
	Workload    string          `json:"workload"`
	Entry       string          `json:"entry"`
	Watch       string          `json:"watch"`
	Sum         string          `json:"sum"`
	Result      json.RawMessage `json:"result"`
}

// policyEnvelope is the fusion-policy wire form (a uint16 bitmask).
type policyEnvelope struct {
	Policy uint16 `json:"policy"`
}

// Register mounts the peer protocol on the service mux.
func (n *Node) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/cluster/ping", n.stamp(n.handlePing))
	mux.HandleFunc("GET /v1/cluster/runs/{key}", n.stamp(n.handleRunGet))
	mux.HandleFunc("POST /v1/cluster/runs/{key}", n.stamp(n.handleRunFill))
	mux.HandleFunc("GET /v1/cluster/policy/{fp}", n.stamp(n.handlePolicyGet))
	mux.HandleFunc("POST /v1/cluster/policy/{fp}", n.stamp(n.handlePolicyFill))
}

// stamp adds the responder-identity headers every peer response carries.
func (n *Node) stamp(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(nodeHeader, n.self)
		w.Header().Set(loadHeader, strconv.FormatInt(n.localLoad(), 10))
		h(w, r)
	}
}

func clusterErr(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (n *Node) handlePing(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"node":          n.self,
		"load":          n.localLoad(),
		"healthy_nodes": n.HealthyCount(),
	})
}

// handleRunGet serves the owner side of a read-through fetch. A present
// entry returns 200 with the payload. An absent entry either claims the
// key pending under the requester (404, compute-and-fill) or — when the
// key is already pending under someone else and ?wait is positive —
// blocks for the fill up to the wait budget (200 on arrival, 404 on
// timeout).
func (n *Node) handleRunGet(w http.ResponseWriter, r *http.Request) {
	keyID := r.PathValue("key")
	if len(keyID) != 64 {
		clusterErr(w, http.StatusBadRequest, "malformed run key %q", keyID)
		return
	}
	var wait time.Duration
	if v := r.URL.Query().Get("wait"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			clusterErr(w, http.StatusBadRequest, "invalid wait=%q", v)
			return
		}
		// The server-side wait is capped below the client timeout so a
		// slow fill answers 404 rather than a torn connection.
		wait = min(time.Duration(ms)*time.Millisecond, n.cfg.HTTPTimeout-time.Second)
	}
	payload, sum, hit, _, waited := n.runs.fetch(keyID, wait, time.Now)
	if !hit {
		clusterErr(w, http.StatusNotFound, "no envelope for %.12s", keyID)
		return
	}
	if waited {
		n.count(telemetry.CounterClusterRunWaitHits, 1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(sumHeader, sum)
	w.Write(payload)
}

// handleRunFill verifies and stores a fill: the envelope's key fields
// must hash to the URL's key ID and the checksum must match the payload
// — content-addressed both ways, so a buggy or malicious filler cannot
// poison a key it does not hold the bytes for.
func (n *Node) handleRunFill(w http.ResponseWriter, r *http.Request) {
	keyID := r.PathValue("key")
	body, err := io.ReadAll(io.LimitReader(r.Body, maxEnvelopeBytes+1))
	if err != nil {
		clusterErr(w, http.StatusBadRequest, "read fill: %v", err)
		return
	}
	if len(body) > maxEnvelopeBytes {
		n.count(telemetry.CounterClusterRunFillReject, 1)
		clusterErr(w, http.StatusRequestEntityTooLarge, "fill exceeds %d bytes", maxEnvelopeBytes)
		return
	}
	var env runEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		n.count(telemetry.CounterClusterRunFillReject, 1)
		clusterErr(w, http.StatusBadRequest, "decode fill: %v", err)
		return
	}
	if got := RunKeyID(env.Fingerprint, env.Workload, env.Entry, env.Watch); got != keyID {
		n.count(telemetry.CounterClusterRunFillReject, 1)
		clusterErr(w, http.StatusBadRequest, "fill key mismatch: body hashes to %.12s, URL names %.12s", got, keyID)
		return
	}
	if got := Checksum(env.Result); got != env.Sum {
		n.count(telemetry.CounterClusterRunFillReject, 1)
		clusterErr(w, http.StatusBadRequest, "fill checksum mismatch")
		return
	}
	// Decode once at the boundary: a payload that cannot decode must not
	// be served to peers who would each reject it.
	if _, err := DecodeResult(env.Result, env.Sum); err != nil {
		n.count(telemetry.CounterClusterRunFillReject, 1)
		clusterErr(w, http.StatusBadRequest, "fill rejected: %v", err)
		return
	}
	n.runs.put(keyID, env.Result, env.Sum)
	w.WriteHeader(http.StatusCreated)
}

func parseFP(s string) (uint64, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("malformed fingerprint %q", s)
	}
	return strconv.ParseUint(s, 16, 64)
}

func (n *Node) handlePolicyGet(w http.ResponseWriter, r *http.Request) {
	fp, err := parseFP(r.PathValue("fp"))
	if err != nil {
		clusterErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	pol, ok := n.policies.get(fp)
	if !ok {
		clusterErr(w, http.StatusNotFound, "no policy for %016x", fp)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(policyEnvelope{Policy: pol})
}

func (n *Node) handlePolicyFill(w http.ResponseWriter, r *http.Request) {
	fp, err := parseFP(r.PathValue("fp"))
	if err != nil {
		clusterErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	var env policyEnvelope
	if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&env); err != nil {
		clusterErr(w, http.StatusBadRequest, "decode policy: %v", err)
		return
	}
	n.policies.put(fp, env.Policy)
	w.WriteHeader(http.StatusCreated)
}
