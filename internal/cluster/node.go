package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"psaflow/internal/core"
	"psaflow/internal/faults"
	"psaflow/internal/interp"
	"psaflow/internal/telemetry"
)

// Sink receives cluster counters; *telemetry.Recorder satisfies it.
type Sink interface {
	Add(name string, delta int64)
}

// Config describes one node's view of the cluster.
type Config struct {
	// Self is this node's ID: 1-16 lowercase alphanumerics. It prefixes
	// every job ID the node mints, which is how any node maps an unknown
	// job ID back to its owner.
	Self string
	// Peers maps node ID → base URL for the full membership (self may be
	// included; its URL is advertisory). A single-entry map is a valid
	// one-node cluster — every owner lookup resolves to self.
	Peers map[string]string
	// Retry shapes the backoff for idempotent peer requests (fetches,
	// pings); zero fields take faults.DefaultRetry. Forwarded submissions
	// are never retried — a submit is not idempotent, and the caller's
	// local fallback already guarantees the job runs.
	Retry faults.RetryPolicy
	// PingInterval is the peer health-probe cadence (default 1s).
	PingInterval time.Duration
	// FetchWait bounds how long a run-cache fetch blocks on a peer's
	// in-flight computation of the same key before degrading to local
	// compute (default 2s).
	FetchWait time.Duration
	// HTTPTimeout bounds each peer request (default 5s; must exceed
	// FetchWait or waiting fetches would be cut off by their transport).
	HTTPTimeout time.Duration
	// LoadBound is the bounded-load factor c: a node whose last-known
	// load exceeds c·(mean healthy load)+1 is skipped at job placement
	// and the key spills to the next node on the ring (default 1.25).
	LoadBound float64
	// StoreCap bounds the owner-side run-envelope store (default 4096).
	StoreCap int
	// Logf receives peer-layer progress lines; nil silences them.
	Logf func(format string, args ...any)
}

// ValidNodeID reports whether id can prefix job IDs: 1-16 lowercase
// alphanumerics (no dash — the dash separates the prefix from the job
// counter, so IDs stay unambiguous).
func ValidNodeID(id string) bool {
	if id == "" || len(id) > 16 {
		return false
	}
	for _, c := range id {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// peerState tracks one remote node's reachability. A peer is unhealthy
// after two consecutive failed contacts and recovers on the first
// success — routing consults this on every placement, which is what
// rehashes a dead node's keyspace onto the survivors with no membership
// change.
type peerState struct {
	id  string
	url string

	mu       sync.Mutex
	lastOK   time.Time
	lastErr  string
	fails    int
	load     int64
	everSeen bool
}

const unhealthyAfter = 2 // consecutive failures

func (p *peerState) markOK(load int64, hasLoad bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lastOK = time.Now()
	p.lastErr = ""
	p.fails = 0
	p.everSeen = true
	if hasLoad {
		p.load = load
	}
}

func (p *peerState) markFail(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fails++
	p.lastErr = err.Error()
}

func (p *peerState) healthy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fails < unhealthyAfter
}

func (p *peerState) snapshot() PeerInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	info := PeerInfo{
		ID: p.id, URL: p.url,
		Healthy: p.fails < unhealthyAfter,
		Load:    p.load,
	}
	if !p.lastOK.IsZero() {
		info.LastContact = p.lastOK.UTC().Format(time.RFC3339Nano)
	}
	info.LastError = p.lastErr
	return info
}

// PeerInfo is one node's health row in the /healthz peer view.
type PeerInfo struct {
	ID          string `json:"id"`
	URL         string `json:"url,omitempty"`
	Self        bool   `json:"self,omitempty"`
	Healthy     bool   `json:"healthy"`
	Load        int64  `json:"load"`
	LastContact string `json:"last_contact,omitempty"`
	LastError   string `json:"last_error,omitempty"`
}

// Stats is the /metrics view of the peer layer.
type Stats struct {
	Self         string   `json:"self"`
	Nodes        []string `json:"nodes"`
	HealthyNodes int      `json:"healthy_nodes"` // self included
	RunEntries   int      `json:"run_entries"`   // owner-side envelope store
	RunEvicted   int64    `json:"run_evicted"`
	Policies     int      `json:"policies"` // owner-side fusion policies
}

// Node is one psaflowd process's membership in the cluster. It owns the
// ring, the peer health table, the owner-side cache stores, and the
// HTTP client side of the peer protocol; it implements core.RunPeer and
// interp.PolicyPeer so the process-wide caches read through it.
type Node struct {
	cfg   Config
	self  string
	retry faults.RetryPolicy

	mu    sync.Mutex
	ring  *Ring
	peers map[string]*peerState // remote nodes only

	client *http.Client // per-request timeout (peer protocol)
	// streamClient has no timeout: proxied event streams live as long as
	// the job (cancellation comes from the client's request context).
	streamClient *http.Client

	runs     *runStore
	policies *policyStore

	counters  Sink
	loadFn    func() int64
	lastGauge int64 // last cluster.peers_healthy value pushed to the sink

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// New builds a node. Peers may be empty or self-only (a one-node
// cluster); membership can be replaced later with SetPeers.
func New(cfg Config) (*Node, error) {
	if !ValidNodeID(cfg.Self) {
		return nil, fmt.Errorf("cluster: invalid node ID %q (want 1-16 lowercase alphanumerics)", cfg.Self)
	}
	if cfg.PingInterval <= 0 {
		cfg.PingInterval = time.Second
	}
	if cfg.FetchWait <= 0 {
		cfg.FetchWait = 2 * time.Second
	}
	if cfg.HTTPTimeout <= 0 {
		cfg.HTTPTimeout = 5 * time.Second
	}
	if cfg.HTTPTimeout <= cfg.FetchWait {
		cfg.HTTPTimeout = cfg.FetchWait + 3*time.Second
	}
	if cfg.LoadBound <= 1 {
		cfg.LoadBound = 1.25
	}
	n := &Node{
		cfg:          cfg,
		self:         cfg.Self,
		retry:        cfg.Retry.WithDefaults(),
		client:       &http.Client{Timeout: cfg.HTTPTimeout},
		streamClient: &http.Client{},
		runs:         newRunStore(cfg.StoreCap),
		policies:     newPolicyStore(),
		stop:         make(chan struct{}),
	}
	if err := n.SetPeers(cfg.Peers); err != nil {
		return nil, err
	}
	return n, nil
}

// SetPeers replaces the membership (self is always a member, with or
// without an entry in peers). Existing health state is kept for nodes
// that remain.
func (n *Node) SetPeers(peers map[string]string) error {
	ids := []string{n.self}
	for id := range peers {
		if !ValidNodeID(id) {
			return fmt.Errorf("cluster: invalid peer ID %q", id)
		}
		if id != n.self {
			ids = append(ids, id)
		}
	}
	ring := NewRing(ids)
	n.mu.Lock()
	defer n.mu.Unlock()
	old := n.peers
	n.peers = make(map[string]*peerState, len(peers))
	for id, url := range peers {
		if id == n.self {
			continue
		}
		if p := old[id]; p != nil && p.url == url {
			n.peers[id] = p
			continue
		}
		n.peers[id] = &peerState{id: id, url: url}
	}
	n.ring = ring
	return nil
}

// Self returns this node's ID.
func (n *Node) Self() string { return n.self }

// SetCounters wires the telemetry sink (call before Start).
func (n *Node) SetCounters(s Sink) { n.counters = s }

// SetLoadFunc wires the local-load probe used by bounded-load placement
// and advertised to peers (typically queue depth + running jobs).
func (n *Node) SetLoadFunc(f func() int64) { n.loadFn = f }

func (n *Node) count(name string, delta int64) {
	if n.counters != nil && delta != 0 {
		n.counters.Add(name, delta)
	}
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

func (n *Node) localLoad() int64 {
	if n.loadFn == nil {
		return 0
	}
	return n.loadFn()
}

// Start spawns the health pinger (no-op on a peerless node beyond
// priming the health gauge).
func (n *Node) Start() {
	n.updateHealthGauge()
	n.mu.Lock()
	hasPeers := len(n.peers) > 0
	n.mu.Unlock()
	if !hasPeers {
		return
	}
	n.wg.Add(1)
	go n.pinger()
}

// Stop halts the pinger and waits for it.
func (n *Node) Stop() {
	n.once.Do(func() { close(n.stop) })
	n.wg.Wait()
}

func (n *Node) pinger() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.PingInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.pingAll()
		}
	}
}

func (n *Node) pingAll() {
	n.mu.Lock()
	peers := make([]*peerState, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()
	var wg sync.WaitGroup
	for _, p := range peers {
		wg.Add(1)
		go func(p *peerState) {
			defer wg.Done()
			n.count(telemetry.CounterClusterPings, 1)
			resp, err := n.do(context.Background(), p, http.MethodGet, "/v1/cluster/ping", nil)
			if err != nil {
				n.count(telemetry.CounterClusterPingFailures, 1)
				return
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
		}(p)
	}
	wg.Wait()
	n.updateHealthGauge()
}

// updateHealthGauge pushes the healthy-node count (self included) into
// the sink as a gauge (delta-maintained counter).
func (n *Node) updateHealthGauge() {
	healthy := int64(n.HealthyCount())
	n.mu.Lock()
	delta := healthy - n.lastGauge
	n.lastGauge = healthy
	n.mu.Unlock()
	n.count(telemetry.CounterClusterPeersHealthy, delta)
}

// HealthyCount returns the number of healthy nodes, self included.
func (n *Node) HealthyCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	count := 1
	for _, p := range n.peers {
		if p.healthy() {
			count++
		}
	}
	return count
}

// Healthy reports whether the given node is currently routable.
func (n *Node) Healthy(id string) bool {
	if id == n.self {
		return true
	}
	n.mu.Lock()
	p := n.peers[id]
	n.mu.Unlock()
	return p != nil && p.healthy()
}

// PeerURL returns the base URL for a remote node.
func (n *Node) PeerURL(id string) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p := n.peers[id]
	if p == nil {
		return "", false
	}
	return p.url, true
}

// Nodes returns the full membership, sorted.
func (n *Node) Nodes() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ring.Nodes()
}

// PeerView returns the health table for /healthz, self first.
func (n *Node) PeerView() []PeerInfo {
	n.mu.Lock()
	peers := make([]*peerState, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	selfURL := n.cfg.Peers[n.self]
	n.mu.Unlock()
	view := []PeerInfo{{ID: n.self, URL: selfURL, Self: true, Healthy: true, Load: n.localLoad()}}
	rest := make([]PeerInfo, 0, len(peers))
	for _, p := range peers {
		rest = append(rest, p.snapshot())
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].ID < rest[j].ID })
	return append(view, rest...)
}

// Stats snapshots the peer layer for /metrics.
func (n *Node) Stats() Stats {
	entries, evicted := n.runs.stats()
	return Stats{
		Self:         n.self,
		Nodes:        n.Nodes(),
		HealthyNodes: n.HealthyCount(),
		RunEntries:   entries,
		RunEvicted:   evicted,
		Policies:     n.policies.len(),
	}
}

// OwnerForJob places a job: bounded-load consistent hashing over the
// healthy nodes, keyed by (tenant, program fingerprint) so one tenant's
// duplicate submissions co-locate with the cache entries they will hit.
// Returns self when the ring yields nothing routable.
func (n *Node) OwnerForJob(tenant string, fingerprint uint64) string {
	n.mu.Lock()
	ring := n.ring
	peers := n.peers
	healthyLoads := []int64{n.localLoad()}
	for _, p := range peers {
		if p.healthy() {
			p.mu.Lock()
			healthyLoads = append(healthyLoads, p.load)
			p.mu.Unlock()
		}
	}
	n.mu.Unlock()
	var total int64
	for _, l := range healthyLoads {
		total += l
	}
	bound := int64(n.cfg.LoadBound*float64(total)/float64(len(healthyLoads))) + 1
	owner := ring.OwnerWhere(JobKey(tenant, fingerprint), func(id string) bool {
		if id == n.self {
			return n.localLoad() <= bound
		}
		p := peers[id]
		if p == nil || !p.healthy() {
			return false
		}
		p.mu.Lock()
		load := p.load
		p.mu.Unlock()
		return load <= bound
	})
	if owner == "" {
		// Everything is over-bound or down: run it here rather than
		// refuse it. Backpressure, if warranted, comes from the queue.
		return n.self
	}
	return owner
}

// ownerHealthy walks the ring with a health-only accept — cache
// ownership must not chase load, or hit rates would collapse every time
// a queue grows.
func (n *Node) ownerHealthy(key uint64) string {
	n.mu.Lock()
	ring := n.ring
	peers := n.peers
	n.mu.Unlock()
	owner := ring.OwnerWhere(key, func(id string) bool {
		if id == n.self {
			return true
		}
		p := peers[id]
		return p != nil && p.healthy()
	})
	if owner == "" {
		return n.self
	}
	return owner
}

// --- peer HTTP client ---

// do sends one request to a peer and updates its health from the
// outcome. Any HTTP response counts as contact; only transport errors
// count against health.
func (n *Node) do(ctx context.Context, p *peerState, method, path string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, p.url+path, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set("X-Psaflow-Node", n.self)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := n.client.Do(req)
	if err != nil {
		p.markFail(err)
		return nil, err
	}
	load, perr := strconv.ParseInt(resp.Header.Get("X-Psaflow-Load"), 10, 64)
	p.markOK(load, perr == nil)
	return resp, nil
}

// doRetry wraps do with the node's retry policy for idempotent
// requests: transport errors are classified transient (an I/O fault in
// the engine's taxonomy) and retried with deterministic backoff.
func (n *Node) doRetry(ctx context.Context, p *peerState, method, path string, body []byte, op string) (*http.Response, error) {
	var resp *http.Response
	err := n.retry.Do(ctx, op, func(retry int, delay time.Duration, err error) {
		n.logf("cluster: %s: retry %d after %v: %v", op, retry, delay, err)
	}, func() error {
		r, err := n.do(ctx, p, method, path, body)
		if err != nil {
			return fmt.Errorf("cluster: %w", &faults.Fault{
				Kind: faults.IO, Op: fmt.Sprintf("%s (%v)", op, err), Transient: true,
			})
		}
		resp = r
		return nil
	})
	return resp, err
}

func (n *Node) peer(id string) *peerState {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.peers[id]
}

// ForwardSubmit posts a forwarded job submission to a peer. Exactly one
// attempt: a submit is not idempotent, and the caller's local fallback
// already guarantees the job runs somewhere.
func (n *Node) ForwardSubmit(ctx context.Context, id string, body []byte) (*http.Response, error) {
	p := n.peer(id)
	if p == nil {
		return nil, fmt.Errorf("cluster: unknown peer %q", id)
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.url+"/v1/jobs", rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, n.self)
	resp, err := n.client.Do(req)
	if err != nil {
		p.markFail(err)
		return nil, err
	}
	p.markOK(0, false)
	return resp, nil
}

// StreamClient returns the timeout-free client used for proxied event
// streams (lifetime bounded by the proxied request's context).
func (n *Node) StreamClient() *http.Client { return n.streamClient }

// --- core.RunPeer ---

// FetchRun implements core.RunPeer: on a local run-cache miss, ask the
// key's ring owner before computing. A miss answer doubles as the
// cluster-wide singleflight claim — the owner marks the key pending
// under this node, and every other node's fetch blocks (bounded) for
// the fill instead of recomputing. Peer failure is a miss, never an
// error: the caller computes locally and the cluster degrades to
// per-node caching.
func (n *Node) FetchRun(key core.RunKey) (*interp.Result, bool) {
	keyID := RunKeyID(key.Fingerprint, key.Workload, key.Entry, key.Watch)
	owner := n.ownerHealthy(RunKeyHash(keyID))
	if owner == n.self {
		payload, sum, hit, _, _ := n.runs.fetch(keyID, n.cfg.FetchWait, time.Now)
		if !hit {
			n.count(telemetry.CounterClusterRunPeerMisses, 1)
			return nil, false
		}
		res, err := DecodeResult(payload, sum)
		if err != nil {
			n.count(telemetry.CounterClusterRunFetchErrors, 1)
			n.logf("cluster: local envelope for %.12s corrupt: %v", keyID, err)
			return nil, false
		}
		n.count(telemetry.CounterClusterRunPeerHits, 1)
		return res, true
	}
	p := n.peer(owner)
	if p == nil {
		n.count(telemetry.CounterClusterRunPeerMisses, 1)
		return nil, false
	}
	path := fmt.Sprintf("/v1/cluster/runs/%s?wait=%d", keyID, n.cfg.FetchWait.Milliseconds())
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.HTTPTimeout)
	defer cancel()
	resp, err := n.doRetry(ctx, p, http.MethodGet, path, nil, "cluster:fetch-run")
	if err != nil {
		n.count(telemetry.CounterClusterRunFetchErrors, 1)
		n.count(telemetry.CounterClusterRunPeerMisses, 1)
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		n.count(telemetry.CounterClusterRunPeerMisses, 1)
		return nil, false
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		n.count(telemetry.CounterClusterRunFetchErrors, 1)
		n.count(telemetry.CounterClusterRunPeerMisses, 1)
		return nil, false
	}
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxEnvelopeBytes+1))
	if err != nil || len(payload) > maxEnvelopeBytes {
		n.count(telemetry.CounterClusterRunFetchErrors, 1)
		n.count(telemetry.CounterClusterRunPeerMisses, 1)
		return nil, false
	}
	res, err := DecodeResult(payload, resp.Header.Get(sumHeader))
	if err != nil {
		n.count(telemetry.CounterClusterRunFetchErrors, 1)
		n.count(telemetry.CounterClusterRunPeerMisses, 1)
		n.logf("cluster: fetched envelope for %.12s rejected: %v", keyID, err)
		return nil, false
	}
	n.count(telemetry.CounterClusterRunPeerHits, 1)
	return res, true
}

// FillRun implements core.RunPeer: push a freshly computed result to the
// key's ring owner (or store it directly when that is us). Best-effort —
// a failed fill only costs the cluster a future recompute.
func (n *Node) FillRun(key core.RunKey, res *interp.Result) {
	keyID := RunKeyID(key.Fingerprint, key.Workload, key.Entry, key.Watch)
	payload, sum, err := EncodeResult(res)
	if err != nil {
		// Not wire-encodable (e.g. buffer return): release any pending
		// mark we hold so other nodes stop waiting on a fill that will
		// never come.
		n.runs.abandon(keyID)
		return
	}
	owner := n.ownerHealthy(RunKeyHash(keyID))
	if owner == n.self {
		n.runs.put(keyID, payload, sum)
		n.count(telemetry.CounterClusterRunFills, 1)
		return
	}
	env := runEnvelope{
		Fingerprint: key.Fingerprint, Workload: key.Workload,
		Entry: key.Entry, Watch: key.Watch,
		Sum: sum, Result: json.RawMessage(payload),
	}
	body, err := json.Marshal(env)
	if err != nil {
		return
	}
	p := n.peer(owner)
	if p == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.HTTPTimeout)
	defer cancel()
	resp, err := n.doRetry(ctx, p, http.MethodPost, "/v1/cluster/runs/"+keyID, body, "cluster:fill-run")
	if err != nil {
		n.logf("cluster: fill %.12s at %s failed: %v", keyID, owner, err)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated {
		n.count(telemetry.CounterClusterRunFills, 1)
	}
}

// --- interp.PolicyPeer ---

// FetchPolicy implements interp.PolicyPeer: adopt a peer-mined
// superinstruction policy for a fingerprint instead of re-tracing it
// locally.
func (n *Node) FetchPolicy(fp uint64) (interp.FusionPolicy, bool) {
	owner := n.ownerHealthy(PolicyKeyHash(fp))
	if owner == n.self {
		pol, ok := n.policies.get(fp)
		if ok {
			n.count(telemetry.CounterClusterPolicyHits, 1)
		}
		return interp.FusionPolicy(pol), ok
	}
	p := n.peer(owner)
	if p == nil {
		return 0, false
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.HTTPTimeout)
	defer cancel()
	resp, err := n.doRetry(ctx, p, http.MethodGet, fmt.Sprintf("/v1/cluster/policy/%016x", fp), nil, "cluster:fetch-policy")
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return 0, false
	}
	var body policyEnvelope
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body); err != nil {
		return 0, false
	}
	n.count(telemetry.CounterClusterPolicyHits, 1)
	return interp.FusionPolicy(body.Policy), true
}

// FillPolicy implements interp.PolicyPeer: publish a locally mined
// policy to its ring owner. Best-effort.
func (n *Node) FillPolicy(fp uint64, pol interp.FusionPolicy) {
	owner := n.ownerHealthy(PolicyKeyHash(fp))
	if owner == n.self {
		n.policies.put(fp, uint16(pol))
		n.count(telemetry.CounterClusterPolicyFills, 1)
		return
	}
	p := n.peer(owner)
	if p == nil {
		return
	}
	body, _ := json.Marshal(policyEnvelope{Policy: uint16(pol)})
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.HTTPTimeout)
	defer cancel()
	resp, err := n.doRetry(ctx, p, http.MethodPost, fmt.Sprintf("/v1/cluster/policy/%016x", fp), body, "cluster:fill-policy")
	if err != nil {
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated {
		n.count(telemetry.CounterClusterPolicyFills, 1)
	}
}
