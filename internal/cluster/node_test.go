package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"psaflow/internal/core"
	"psaflow/internal/faults"
	"psaflow/internal/interp"
)

func TestRunStoreSingleflight(t *testing.T) {
	rs := newRunStore(8)
	key := RunKeyID(1, "w", "main", "")

	// First fetch claims the computation.
	_, _, hit, mine, waited := rs.fetch(key, 0, time.Now)
	if hit || !mine || waited {
		t.Fatalf("first fetch: hit=%v mine=%v waited=%v, want miss+mine", hit, mine, waited)
	}
	// Second fetch with no wait budget: miss, not mine — the claim stands.
	_, _, hit, mine, _ = rs.fetch(key, 0, time.Now)
	if hit || mine {
		t.Fatalf("second fetch: hit=%v mine=%v, want plain miss", hit, mine)
	}

	// A waiting fetch blocks until the fill lands.
	var wg sync.WaitGroup
	wg.Add(1)
	var gotPayload []byte
	var gotWaited bool
	go func() {
		defer wg.Done()
		gotPayload, _, hit, _, gotWaited = rs.fetch(key, 5*time.Second, time.Now)
	}()
	time.Sleep(20 * time.Millisecond) // let the fetch park on the pending channel
	rs.put(key, []byte("payload"), "sum")
	wg.Wait()
	if !hit || !gotWaited || string(gotPayload) != "payload" {
		t.Fatalf("waiting fetch: hit=%v waited=%v payload=%q", hit, gotWaited, gotPayload)
	}

	// Filled entries hit immediately.
	p, s, hit, _, waited := rs.fetch(key, 0, time.Now)
	if !hit || waited || string(p) != "payload" || s != "sum" {
		t.Fatalf("post-fill fetch: hit=%v waited=%v", hit, waited)
	}

	// First fill wins.
	rs.put(key, []byte("other"), "othersum")
	p, _, _, _, _ = rs.fetch(key, 0, time.Now)
	if string(p) != "payload" {
		t.Fatalf("duplicate fill replaced the entry: %q", p)
	}
}

func TestRunStoreWaitTimeout(t *testing.T) {
	rs := newRunStore(8)
	key := RunKeyID(2, "w", "main", "")
	if _, _, _, mine, _ := rs.fetch(key, 0, time.Now); !mine {
		t.Fatal("first fetch did not claim the key")
	}
	start := time.Now()
	_, _, hit, mine, waited := rs.fetch(key, 30*time.Millisecond, time.Now)
	if hit || mine || !waited {
		t.Fatalf("timed-out wait: hit=%v mine=%v waited=%v", hit, mine, waited)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("wait returned before the budget elapsed")
	}
}

func TestRunStoreAbandon(t *testing.T) {
	rs := newRunStore(8)
	key := RunKeyID(3, "w", "main", "")
	if _, _, _, mine, _ := rs.fetch(key, 0, time.Now); !mine {
		t.Fatal("first fetch did not claim the key")
	}
	rs.abandon(key)
	// The claim is gone: the next fetch re-claims instead of waiting.
	if _, _, _, mine, _ := rs.fetch(key, 0, time.Now); !mine {
		t.Fatal("fetch after abandon did not re-claim the key")
	}
}

func TestRunStorePendingExpiry(t *testing.T) {
	rs := newRunStore(8)
	key := RunKeyID(4, "w", "main", "")
	base := time.Unix(1000, 0)
	now := base
	clock := func() time.Time { return now }
	if _, _, _, mine, _ := rs.fetch(key, 0, clock); !mine {
		t.Fatal("first fetch did not claim the key")
	}
	now = base.Add(pendingTTL / 2)
	if _, _, _, mine, _ := rs.fetch(key, 0, clock); mine {
		t.Fatal("unexpired pending mark was stolen")
	}
	now = base.Add(pendingTTL + time.Second)
	if _, _, _, mine, _ := rs.fetch(key, 0, clock); !mine {
		t.Fatal("expired pending mark was not re-claimed")
	}
}

func TestRunStoreEviction(t *testing.T) {
	rs := newRunStore(3)
	keys := make([]string, 5)
	for i := range keys {
		keys[i] = RunKeyID(uint64(10+i), "w", "main", "")
		rs.put(keys[i], []byte(fmt.Sprintf("p%d", i)), "s")
	}
	entries, evicted := rs.stats()
	if entries != 3 || evicted != 2 {
		t.Fatalf("entries=%d evicted=%d, want 3 and 2", entries, evicted)
	}
	// Oldest two are gone, newest three remain.
	for i, key := range keys {
		_, _, hit, _, _ := rs.fetch(key, 0, time.Now)
		if want := i >= 2; hit != want {
			t.Errorf("key %d: hit=%v want %v", i, hit, want)
		}
	}
}

// fastRetry keeps peer-failure tests quick: one attempt, no backoff.
var fastRetry = faults.RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}

// testSink collects counters for assertions.
type testSink struct {
	mu sync.Mutex
	m  map[string]int64
}

func newTestSink() *testSink { return &testSink{m: map[string]int64{}} }

func (s *testSink) Add(name string, delta int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[name] += delta
}

func (s *testSink) get(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[name]
}

// newPair builds a two-node cluster ("na", "nb") over httptest servers.
func newPair(t *testing.T) (na, nb *Node, sa, sb *testSink) {
	t.Helper()
	muxA, muxB := http.NewServeMux(), http.NewServeMux()
	srvA, srvB := httptest.NewServer(muxA), httptest.NewServer(muxB)
	t.Cleanup(srvA.Close)
	t.Cleanup(srvB.Close)
	peers := map[string]string{"na": srvA.URL, "nb": srvB.URL}
	var err error
	na, err = New(Config{Self: "na", Peers: peers, Retry: fastRetry, FetchWait: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	nb, err = New(Config{Self: "nb", Peers: peers, Retry: fastRetry, FetchWait: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sa, sb = newTestSink(), newTestSink()
	na.SetCounters(sa)
	nb.SetCounters(sb)
	na.Register(muxA)
	nb.Register(muxB)
	return na, nb, sa, sb
}

// keyOwnedBy scans fingerprints until the derived run key's ring owner is
// the wanted node, so cross-node tests exercise a real remote hop.
func keyOwnedBy(t *testing.T, n *Node, owner string) core.RunKey {
	t.Helper()
	for fp := uint64(1); fp < 10000; fp++ {
		key := core.RunKey{Fingerprint: fp, Workload: "w", Entry: "main"}
		id := RunKeyID(key.Fingerprint, key.Workload, key.Entry, key.Watch)
		if n.ownerHealthy(RunKeyHash(id)) == owner {
			return key
		}
	}
	t.Fatal("no fingerprint hashes to the wanted owner")
	return core.RunKey{}
}

func TestTwoNodeRunFetchFill(t *testing.T) {
	na, nb, sa, sb := newPair(t)
	key := keyOwnedBy(t, na, "nb")

	// Remote miss claims the key at the owner for this node.
	if _, ok := na.FetchRun(key); ok {
		t.Fatal("fetch of an unfilled key hit")
	}
	if sa.get("cluster.runcache.peer_misses") != 1 {
		t.Fatalf("miss not counted: %v", sa.m)
	}

	res := sampleResult()
	na.FillRun(key, res)
	if sa.get("cluster.runcache.fills") != 1 {
		t.Fatalf("fill not counted: %v", sa.m)
	}

	// Both the remote requester and the owner now hit.
	got, ok := na.FetchRun(key)
	if !ok || got.Steps != res.Steps {
		t.Fatalf("remote fetch after fill: ok=%v", ok)
	}
	if sa.get("cluster.runcache.peer_hits") != 1 {
		t.Fatalf("remote hit not counted: %v", sa.m)
	}
	got, ok = nb.FetchRun(key)
	if !ok || got.Steps != res.Steps || got.Ret.F != res.Ret.F {
		t.Fatalf("owner-side fetch after fill: ok=%v", ok)
	}
	if sb.get("cluster.runcache.peer_hits") != 1 {
		t.Fatalf("owner hit not counted: %v", sb.m)
	}
}

func TestTwoNodeFetchWaitsForFill(t *testing.T) {
	na, nb, _, _ := newPair(t)
	key := keyOwnedBy(t, na, "nb")

	// nb (the owner) claims the key locally, as if computing it.
	if _, ok := nb.FetchRun(key); ok {
		t.Fatal("owner claim unexpectedly hit")
	}
	// na's fetch arrives while the key is pending: it must block for the
	// fill and hit, not recompute.
	done := make(chan bool, 1)
	go func() {
		_, ok := na.FetchRun(key)
		done <- ok
	}()
	time.Sleep(20 * time.Millisecond)
	nb.FillRun(key, sampleResult())
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("waiting fetch missed after the fill landed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiting fetch never returned")
	}
}

func TestTwoNodePolicy(t *testing.T) {
	na, _, sa, _ := newPair(t)
	// Find a fingerprint whose policy owner is the remote node.
	var fp uint64
	for fp = 1; fp < 10000; fp++ {
		if na.ownerHealthy(PolicyKeyHash(fp)) == "nb" {
			break
		}
	}
	if _, ok := na.FetchPolicy(fp); ok {
		t.Fatal("unfilled policy hit")
	}
	na.FillPolicy(fp, interp.FusionPolicy(0x2a))
	pol, ok := na.FetchPolicy(fp)
	if !ok || pol != 0x2a {
		t.Fatalf("policy round-trip: ok=%v pol=%#x", ok, pol)
	}
	if sa.get("cluster.progcache.policy_fills") != 1 || sa.get("cluster.progcache.policy_hits") != 1 {
		t.Fatalf("policy counters: %v", sa.m)
	}
}

func TestFillRejectedAtOwner(t *testing.T) {
	na, nb, _, sb := newPair(t)
	key := keyOwnedBy(t, na, "nb")
	keyID := RunKeyID(key.Fingerprint, key.Workload, key.Entry, key.Watch)

	// POST a fill whose body hashes to a different key: the owner must
	// refuse it and count the reject.
	payload, sum, err := EncodeResult(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	env := fmt.Sprintf(`{"fingerprint":%d,"workload":"other","entry":"main","watch":"","sum":"%s","result":%s}`,
		key.Fingerprint, sum, payload)
	url, _ := na.PeerURL("nb")
	resp, err := http.Post(url+"/v1/cluster/runs/"+keyID, "application/json", strings.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched fill accepted: status %d", resp.StatusCode)
	}
	if sb.get("cluster.runcache.fill_rejects") != 1 {
		t.Fatalf("reject not counted: %v", sb.m)
	}
	if _, ok := nb.FetchRun(key); ok {
		t.Fatal("rejected fill is fetchable")
	}
}

func TestPeerFailureDegradesToLocal(t *testing.T) {
	// nb's server is already gone: every cross-node call must degrade to a
	// miss or a local store, never an error, and nb must go unhealthy so
	// ownership rehashes onto na.
	mux := http.NewServeMux()
	srv := httptest.NewServer(mux)
	deadURL := srv.URL
	srv.Close()
	na, err := New(Config{
		Self:  "na",
		Peers: map[string]string{"na": "http://ignored", "nb": deadURL},
		Retry: fastRetry, FetchWait: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	na.SetCounters(newTestSink())
	key := keyOwnedBy(t, na, "nb")

	if _, ok := na.FetchRun(key); ok {
		t.Fatal("fetch from a dead peer hit")
	}
	na.FillRun(key, sampleResult()) // must not panic or error
	if na.Healthy("nb") {
		t.Fatal("nb still healthy after two failed contacts")
	}
	if na.HealthyCount() != 1 {
		t.Fatalf("healthy count %d, want 1", na.HealthyCount())
	}

	// Ownership has rehashed onto na: the same key now stores and serves
	// locally, so the cache works cluster-degraded.
	if owner := na.ownerHealthy(RunKeyHash(RunKeyID(key.Fingerprint, key.Workload, key.Entry, key.Watch))); owner != "na" {
		t.Fatalf("dead peer still owns the key (owner %q)", owner)
	}
	if _, ok := na.FetchRun(key); ok {
		t.Fatal("fetch hit before any local fill")
	}
	na.FillRun(key, sampleResult())
	if _, ok := na.FetchRun(key); !ok {
		t.Fatal("local degraded cache did not serve the fill")
	}
}

func TestOwnerForJobFallsBackToSelf(t *testing.T) {
	na, err := New(Config{Self: "na", Retry: fastRetry})
	if err != nil {
		t.Fatal(err)
	}
	if owner := na.OwnerForJob("acme", 42); owner != "na" {
		t.Fatalf("single-node owner %q, want self", owner)
	}
}

