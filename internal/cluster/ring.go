// Package cluster is the peer layer that turns N psaflowd processes into
// one logical service: consistent-hash job placement over the node set,
// a groupcache-style read-through peer protocol for the profiled-run and
// program caches, and the health tracking that lets both degrade to
// local behaviour when peers disappear. Membership is static (the -peers
// flag); liveness is not — every routing decision consults per-peer
// health, so a dead node's keyspace is rehashed onto the survivors
// without any membership change.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodesPerNode is the number of virtual points each node contributes to
// the ring. 64 points per node keeps the keyspace split within a few
// percent of even for small clusters while the full ring stays tiny
// (N*64 uint64s, rebuilt only on SetPeers).
const vnodesPerNode = 64

// ringPoint is one virtual node: a position on the hash circle and the
// node that owns it.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring with virtual nodes and bounded-load
// placement. It is immutable after build — Node swaps whole rings on
// membership change — so lookups need no locking.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // distinct node IDs, sorted
}

// NewRing builds a ring over the given node IDs (duplicates ignored).
func NewRing(nodes []string) *Ring {
	seen := make(map[string]bool, len(nodes))
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for v := 0; v < vnodesPerNode; v++ {
			r.points = append(r.points, ringPoint{hash: hashString(fmt.Sprintf("%s#%d", n, v)), node: n})
		}
	}
	sort.Strings(r.nodes)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by node ID so every ring
		// built from the same membership routes identically.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the member IDs, sorted.
func (r *Ring) Nodes() []string { return r.nodes }

// Len returns the number of member nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the node owning key: the first virtual point at or after
// the key's hash. Empty string on an empty ring.
func (r *Ring) Owner(key uint64) string {
	return r.OwnerWhere(key, nil)
}

// OwnerWhere walks the ring clockwise from key and returns the first
// distinct node accepted by the predicate — the bounded-load variant of
// consistent hashing: accept rejects nodes that are unhealthy or past
// their load bound, and the key spills to the next node on the circle.
// Keys not spilled keep their canonical owner, so a rejected node
// recovers its keyspace the moment accept admits it again. Returns ""
// when no node is accepted (callers fall back to local handling).
func (r *Ring) OwnerWhere(key uint64, accept func(node string) bool) string {
	if len(r.points) == 0 {
		return ""
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	tried := make(map[string]bool, len(r.nodes))
	for i := 0; i < len(r.points) && len(tried) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if tried[p.node] {
			continue
		}
		tried[p.node] = true
		if accept == nil || accept(p.node) {
			return p.node
		}
	}
	return ""
}

// hashString is the ring's point hash: FNV-1a 64 finished with an
// avalanche mix. Raw FNV on short, near-identical strings (vnode labels,
// sequential key names) leaves the high bits — exactly the bits that
// place a point on the circle — barely stirred, which skews ownership by
// tens of percent; the finalizer spreads every input bit across the word.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the 64-bit avalanche finalizer (the murmur3 fmix64 constants).
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// JobKey hashes a job's placement identity. Tenant and program
// fingerprint together: all of one tenant's submissions of the same
// program land on one owner, so the owner's local run cache absorbs the
// duplicate-heavy traffic the distributed cache would otherwise carry.
func JobKey(tenant string, fingerprint uint64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%016x", tenant, fingerprint)
	return mix64(h.Sum64())
}

// RunKeyHash hashes a distributed run-cache key ID onto the ring.
func RunKeyHash(keyID string) uint64 { return hashString("run|" + keyID) }

// PolicyKeyHash hashes a program fingerprint onto the ring for fusion-
// policy ownership.
func PolicyKeyHash(fp uint64) uint64 { return hashString(fmt.Sprintf("policy|%016x", fp)) }
