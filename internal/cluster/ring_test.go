package cluster

import (
	"fmt"
	"testing"
)

func TestRingDistribution(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"})
	counts := map[string]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		owner := r.Owner(hashString(fmt.Sprintf("key-%d", i)))
		if owner == "" {
			t.Fatalf("key %d: no owner", i)
		}
		counts[owner]++
	}
	if len(counts) != 3 {
		t.Fatalf("keys landed on %d nodes, want 3: %v", len(counts), counts)
	}
	for node, c := range counts {
		frac := float64(c) / keys
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("node %s owns %.1f%% of the keyspace (virtual nodes too few?)", node, 100*frac)
		}
	}
}

func TestRingStableAcrossBuilds(t *testing.T) {
	a := NewRing([]string{"n3", "n1", "n2"})
	b := NewRing([]string{"n1", "n2", "n3", "n2"}) // order and dupes must not matter
	for i := 0; i < 1000; i++ {
		k := hashString(fmt.Sprintf("key-%d", i))
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %d: owners differ between equivalent rings", i)
		}
	}
}

func TestRingMinimalReshuffle(t *testing.T) {
	before := NewRing([]string{"n1", "n2", "n3"})
	after := NewRing([]string{"n1", "n2", "n3", "n4"})
	moved := 0
	const keys = 10000
	for i := 0; i < keys; i++ {
		k := hashString(fmt.Sprintf("key-%d", i))
		was, is := before.Owner(k), after.Owner(k)
		if was != is {
			if is != "n4" {
				t.Fatalf("key %d moved %s→%s, not to the new node", i, was, is)
			}
			moved++
		}
	}
	// Consistent hashing moves ~1/N of the keyspace to a new node; far
	// more would mean the hash is not consistent at all.
	if frac := float64(moved) / keys; frac > 0.45 {
		t.Errorf("%.1f%% of keys moved when adding one node to three", 100*frac)
	}
}

func TestOwnerWhereSkipsRejected(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"})
	k := hashString("some-key")
	canonical := r.Owner(k)
	spilled := r.OwnerWhere(k, func(id string) bool { return id != canonical })
	if spilled == "" || spilled == canonical {
		t.Fatalf("rejecting the canonical owner %q yielded %q", canonical, spilled)
	}
	if got := r.OwnerWhere(k, func(string) bool { return false }); got != "" {
		t.Fatalf("rejecting every node yielded %q, want \"\"", got)
	}
	// Re-admitting the canonical owner returns the key home.
	if got := r.OwnerWhere(k, func(string) bool { return true }); got != canonical {
		t.Fatalf("healthy ring owner %q, want canonical %q", got, canonical)
	}
}

func TestJobKeyTenantsSeparate(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3", "n4", "n5", "n6", "n7", "n8"})
	owners := map[string]bool{}
	for i := 0; i < 64; i++ {
		owners[r.Owner(JobKey(fmt.Sprintf("tenant-%d", i), 0xabcdef))] = true
	}
	if len(owners) < 2 {
		t.Fatalf("64 tenants of one program all landed on one node")
	}
	// Same tenant + program must be stable.
	if JobKey("acme", 1) != JobKey("acme", 1) {
		t.Fatal("JobKey not deterministic")
	}
	if JobKey("acme", 1) == JobKey("zeta", 1) {
		t.Fatal("tenants share a placement key")
	}
}

func TestValidNodeID(t *testing.T) {
	for _, ok := range []string{"n1", "a", "node12345", "abcdefghij123456"} {
		if !ValidNodeID(ok) {
			t.Errorf("ValidNodeID(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", "N1", "n-1", "n_1", "abcdefghij1234567", "n.1"} {
		if ValidNodeID(bad) {
			t.Errorf("ValidNodeID(%q) = true, want false", bad)
		}
	}
}
