package cluster

import (
	"sync"
	"time"
)

// runStore is the owner-side half of the distributed run cache: the
// envelopes this node stores for the slice of the keyspace the ring
// assigns it, plus the pending-entry machinery that gives the cluster
// its singleflight property. The first fetch that misses marks the key
// pending and is told to compute; fetches arriving while the key is
// pending block (up to the caller's wait budget) for the fill instead
// of re-profiling the same program on another node. A pending mark left
// behind by a crashed requester expires, so one dead peer can only
// delay a key once, never wedge it.
type runStore struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*storedRun
	order   []string // insertion order, for FIFO eviction past cap
	pending map[string]*pendingRun
	evicted int64
}

// storedRun is one cached fill: the wire payload and its checksum,
// served verbatim to fetchers (who re-verify the checksum themselves).
type storedRun struct {
	payload []byte
	sum     string
}

type pendingRun struct {
	ch      chan struct{} // closed on fill
	expires time.Time
}

// defaultStoreCap bounds the per-node envelope store; profiled-run
// payloads are small (KBs) so the default keeps the worst case in the
// tens of MBs.
const defaultStoreCap = 4096

// pendingTTL bounds how long a key stays pending without a fill before
// the next fetch is allowed to recompute.
const pendingTTL = 30 * time.Second

func newRunStore(capacity int) *runStore {
	if capacity <= 0 {
		capacity = defaultStoreCap
	}
	return &runStore{
		cap:     capacity,
		entries: make(map[string]*storedRun),
		pending: make(map[string]*pendingRun),
	}
}

// fetch looks the key up. Outcomes:
//   - payload, sum, "hit": the entry exists (possibly after waiting out
//     an in-flight computation elsewhere — waited reports that).
//   - "miss" with mine=true: the key is now pending under this caller,
//     who must compute and fill (or let the mark expire).
//   - "miss" with mine=false: the caller waited on someone else's
//     pending computation and timed out; compute locally, do not fill
//     ownership — the fill from the original requester may still land.
func (rs *runStore) fetch(keyID string, wait time.Duration, now func() time.Time) (payload []byte, sum string, hit, mine, waited bool) {
	rs.mu.Lock()
	if e := rs.entries[keyID]; e != nil {
		rs.mu.Unlock()
		return e.payload, e.sum, true, false, false
	}
	p := rs.pending[keyID]
	if p == nil || now().After(p.expires) {
		rs.pending[keyID] = &pendingRun{ch: make(chan struct{}), expires: now().Add(pendingTTL)}
		rs.mu.Unlock()
		return nil, "", false, true, false
	}
	if wait <= 0 {
		rs.mu.Unlock()
		return nil, "", false, false, false
	}
	ch := p.ch
	rs.mu.Unlock()

	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-ch:
	case <-t.C:
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if e := rs.entries[keyID]; e != nil {
		return e.payload, e.sum, true, false, true
	}
	return nil, "", false, false, true
}

// put stores a verified fill and wakes every fetch waiting on the key.
func (rs *runStore) put(keyID string, payload []byte, sum string) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if p := rs.pending[keyID]; p != nil {
		close(p.ch)
		delete(rs.pending, keyID)
	}
	if _, exists := rs.entries[keyID]; exists {
		return // first fill wins; duplicates carry identical bytes anyway
	}
	rs.entries[keyID] = &storedRun{payload: payload, sum: sum}
	rs.order = append(rs.order, keyID)
	for len(rs.entries) > rs.cap && len(rs.order) > 0 {
		oldest := rs.order[0]
		rs.order = rs.order[1:]
		if _, ok := rs.entries[oldest]; ok {
			delete(rs.entries, oldest)
			rs.evicted++
		}
	}
}

// abandon clears a pending mark this node created but could not fill
// (encode failure, failed run), letting the next fetch recompute
// immediately instead of waiting out the TTL.
func (rs *runStore) abandon(keyID string) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if p := rs.pending[keyID]; p != nil {
		close(p.ch)
		delete(rs.pending, keyID)
	}
}

// stats returns entry count and cumulative evictions.
func (rs *runStore) stats() (entries int, evicted int64) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.entries), rs.evicted
}

// policyStore is the owner-side fusion-policy map: tiny (one uint16 per
// fingerprint), so no eviction.
type policyStore struct {
	mu       sync.Mutex
	policies map[uint64]uint16
}

func newPolicyStore() *policyStore {
	return &policyStore{policies: make(map[uint64]uint16)}
}

func (ps *policyStore) get(fp uint64) (uint16, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	p, ok := ps.policies[fp]
	return p, ok
}

func (ps *policyStore) put(fp uint64, policy uint16) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if _, ok := ps.policies[fp]; !ok {
		ps.policies[fp] = policy
	}
}

func (ps *policyStore) len() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.policies)
}
