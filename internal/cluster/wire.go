package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"psaflow/internal/interp"
	"psaflow/internal/minic"
)

// Wire form of a profiled interp.Result for the distributed run cache.
//
// The hard requirement is determinism: a result that crossed the wire
// must drive every downstream analysis to byte-identical designs. Two
// properties make that work. First, every field a consumer reads —
// profile scalars, loop profiles, per-parameter traffic, output lines,
// the return value — round-trips exactly (Go's encoding/json emits
// float64 with enough digits to reparse bit-for-bit). Second, buffer
// *identity* is preserved structurally: Profile.Bindings records which
// runtime Buffer each pointer parameter was bound to per watched call,
// and the dynamic alias analysis compares those pointers. The codec
// interns each distinct Buffer to an index, ships (name, kind, len)
// once, and rebuilds one Buffer per index on decode — so two parameters
// bound to the same buffer decode to the same pointer, and AliasPairs
// sees exactly the aliasing the original run observed. Buffer contents
// are deliberately not shipped: no binding consumer reads them (only
// Len and element size), and they dominate the payload.
//
// Binding maps repeat heavily (one per watched call, usually all equal),
// so distinct maps are deduplicated with a repeat count; first-occurrence
// order is preserved, which keeps "first binding mentioning the
// parameter" lookups and the set of observed alias pairs intact.

// wireValue carries Result.Ret. Buffer returns are not encodable (see
// EncodeResult); Buf stays nil on decode.
type wireValue struct {
	K int     `json:"k"`
	I int64   `json:"i,omitempty"`
	F float64 `json:"f,omitempty"`
	B bool    `json:"b,omitempty"`
}

type wireLoop struct {
	ID      int     `json:"id"`
	Line    int     `json:"line"`
	Col     int     `json:"col"`
	Func    string  `json:"func"`
	Depth   int     `json:"depth"`
	Entries int64   `json:"entries"`
	Trips   int64   `json:"trips"`
	Cycles  float64 `json:"cycles"`
}

type wireTraffic struct {
	Param      string `json:"param"`
	BytesIn    int64  `json:"bytes_in"`
	BytesOut   int64  `json:"bytes_out"`
	ElemReads  int64  `json:"elem_reads"`
	ElemWrites int64  `json:"elem_writes"`
}

// wireBuf is one interned buffer: identity and shape, not contents.
type wireBuf struct {
	Name string `json:"name"`
	Kind int    `json:"kind"`
	Len  int    `json:"len"`
}

// wireBinding is one distinct binding map (param → interned buffer
// index) plus how many consecutive-or-not watched calls used it.
type wireBinding struct {
	Params map[string]int `json:"params"`
	Count  int            `json:"count"`
}

type wireProfile struct {
	Cycles            float64       `json:"cycles"`
	Flops             int64         `json:"flops"`
	IntOps            int64         `json:"int_ops"`
	LoadBytes         int64         `json:"load_bytes"`
	StoreBytes        int64         `json:"store_bytes"`
	Loops             []wireLoop    `json:"loops,omitempty"`
	WatchFunc         string        `json:"watch_func,omitempty"`
	WatchCalls        int64         `json:"watch_calls,omitempty"`
	WatchCycles       float64       `json:"watch_cycles,omitempty"`
	WatchFlops        int64         `json:"watch_flops,omitempty"`
	WatchLoadBytes    int64         `json:"watch_load_bytes,omitempty"`
	WatchStoreBytes   int64         `json:"watch_store_bytes,omitempty"`
	WatchSpecialFlops int64         `json:"watch_special_flops,omitempty"`
	Traffic           []wireTraffic `json:"traffic,omitempty"`
	Bufs              []wireBuf     `json:"bufs,omitempty"`
	Bindings          []wireBinding `json:"bindings,omitempty"`
}

type wireResult struct {
	Ret    wireValue    `json:"ret"`
	Steps  int64        `json:"steps"`
	Output []string     `json:"output,omitempty"`
	Prof   *wireProfile `json:"prof,omitempty"`
}

// RunKeyID is the content address of one run-cache key: a hex SHA-256
// over the canonical key tuple. Both sides of the peer protocol derive
// it independently, so a fill whose claimed key does not hash to the
// URL it was posted at is rejected.
func RunKeyID(fingerprint uint64, workload, entry, watch string) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%016x|%s|%s|%s", fingerprint, workload, entry, watch)))
	return hex.EncodeToString(sum[:])
}

// EncodeResult serializes res for a peer-cache fill and returns the
// payload plus its hex SHA-256 (the content checksum verified on both
// store and fetch). Results that cannot cross the wire faithfully —
// buffer-valued returns, non-finite floats JSON cannot carry — return an
// error; callers skip the fill and the cluster degrades to per-node
// caching for that key.
func EncodeResult(res *interp.Result) (payload []byte, sum string, err error) {
	if res == nil {
		return nil, "", fmt.Errorf("cluster: nil result")
	}
	if res.Ret.K == interp.KBuf {
		return nil, "", fmt.Errorf("cluster: buffer-valued result is not wire-encodable")
	}
	w := wireResult{
		Ret:    wireValue{K: int(res.Ret.K), I: res.Ret.I, F: res.Ret.F, B: res.Ret.B},
		Steps:  res.Steps,
		Output: res.Output,
	}
	if res.Prof != nil {
		wp, err := encodeProfile(res.Prof)
		if err != nil {
			return nil, "", err
		}
		w.Prof = wp
	}
	payload, err = json.Marshal(w)
	if err != nil {
		return nil, "", fmt.Errorf("cluster: encode result: %w", err)
	}
	return payload, Checksum(payload), nil
}

// Checksum is the content checksum of a wire payload (hex SHA-256).
func Checksum(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

func encodeProfile(p *interp.Profile) (*wireProfile, error) {
	wp := &wireProfile{
		Cycles:            p.Cycles,
		Flops:             p.Flops,
		IntOps:            p.IntOps,
		LoadBytes:         p.LoadBytes,
		StoreBytes:        p.StoreBytes,
		WatchFunc:         p.WatchFunc,
		WatchCalls:        p.WatchCalls,
		WatchCycles:       p.WatchCycles,
		WatchFlops:        p.WatchFlops,
		WatchLoadBytes:    p.WatchLoadBytes,
		WatchStoreBytes:   p.WatchStoreBytes,
		WatchSpecialFlops: p.WatchSpecialFlops,
	}
	for id, lp := range p.Loops {
		wp.Loops = append(wp.Loops, wireLoop{
			ID: id, Line: lp.Pos.Line, Col: lp.Pos.Col, Func: lp.Func,
			Depth: lp.Depth, Entries: lp.Entries, Trips: lp.Trips, Cycles: lp.Cycles,
		})
	}
	sort.Slice(wp.Loops, func(i, j int) bool { return wp.Loops[i].ID < wp.Loops[j].ID })
	for param, tr := range p.ParamTraffic {
		wp.Traffic = append(wp.Traffic, wireTraffic{
			Param: param, BytesIn: tr.BytesIn, BytesOut: tr.BytesOut,
			ElemReads: tr.ElemReads, ElemWrites: tr.ElemWrites,
		})
	}
	sort.Slice(wp.Traffic, func(i, j int) bool { return wp.Traffic[i].Param < wp.Traffic[j].Param })

	// Intern buffers in first-appearance order (params sorted within a
	// binding so the numbering is deterministic), then dedupe binding maps
	// preserving first-occurrence order.
	bufIdx := map[*interp.Buffer]int{}
	type bindingAccum struct {
		w     wireBinding
		canon string
	}
	var accums []*bindingAccum
	byCanon := map[string]*bindingAccum{}
	for _, binding := range p.Bindings {
		params := make([]string, 0, len(binding))
		for param := range binding {
			params = append(params, param)
		}
		sort.Strings(params)
		m := make(map[string]int, len(binding))
		for _, param := range params {
			buf := binding[param]
			if buf == nil {
				continue
			}
			idx, ok := bufIdx[buf]
			if !ok {
				idx = len(wp.Bufs)
				bufIdx[buf] = idx
				wp.Bufs = append(wp.Bufs, wireBuf{Name: buf.Name, Kind: int(buf.Kind), Len: buf.Len()})
			}
			m[param] = idx
		}
		canon := fmt.Sprint(m) // map print sorts keys: a canonical identity
		if acc := byCanon[canon]; acc != nil {
			acc.w.Count++
			continue
		}
		acc := &bindingAccum{w: wireBinding{Params: m, Count: 1}, canon: canon}
		byCanon[canon] = acc
		accums = append(accums, acc)
	}
	for _, acc := range accums {
		wp.Bindings = append(wp.Bindings, acc.w)
	}
	return wp, nil
}

// DecodeResult parses a wire payload back into an interp.Result,
// verifying the content checksum first. The reconstructed result is
// read-only shared state exactly like a locally cached one.
func DecodeResult(payload []byte, sum string) (*interp.Result, error) {
	if got := Checksum(payload); got != sum {
		return nil, fmt.Errorf("cluster: result checksum mismatch (got %.12s want %.12s)", got, sum)
	}
	var w wireResult
	if err := json.Unmarshal(payload, &w); err != nil {
		return nil, fmt.Errorf("cluster: decode result: %w", err)
	}
	res := &interp.Result{
		Ret:    interp.Value{K: interp.ValKind(w.Ret.K), I: w.Ret.I, F: w.Ret.F, B: w.Ret.B},
		Steps:  w.Steps,
		Output: w.Output,
	}
	if res.Ret.K == interp.KBuf {
		return nil, fmt.Errorf("cluster: buffer-valued result on the wire")
	}
	if w.Prof != nil {
		p, err := decodeProfile(w.Prof)
		if err != nil {
			return nil, err
		}
		res.Prof = p
	}
	return res, nil
}

func decodeProfile(wp *wireProfile) (*interp.Profile, error) {
	p := &interp.Profile{
		Cycles:            wp.Cycles,
		Flops:             wp.Flops,
		IntOps:            wp.IntOps,
		LoadBytes:         wp.LoadBytes,
		StoreBytes:        wp.StoreBytes,
		Loops:             make(map[int]*interp.LoopProfile, len(wp.Loops)),
		WatchFunc:         wp.WatchFunc,
		WatchCalls:        wp.WatchCalls,
		WatchCycles:       wp.WatchCycles,
		WatchFlops:        wp.WatchFlops,
		WatchLoadBytes:    wp.WatchLoadBytes,
		WatchStoreBytes:   wp.WatchStoreBytes,
		WatchSpecialFlops: wp.WatchSpecialFlops,
		ParamTraffic:      make(map[string]*interp.Traffic, len(wp.Traffic)),
	}
	for _, wl := range wp.Loops {
		p.Loops[wl.ID] = &interp.LoopProfile{
			ID: wl.ID, Pos: minic.Pos{Line: wl.Line, Col: wl.Col}, Func: wl.Func,
			Depth: wl.Depth, Entries: wl.Entries, Trips: wl.Trips, Cycles: wl.Cycles,
		}
	}
	for _, wt := range wp.Traffic {
		p.ParamTraffic[wt.Param] = &interp.Traffic{
			Param: wt.Param, BytesIn: wt.BytesIn, BytesOut: wt.BytesOut,
			ElemReads: wt.ElemReads, ElemWrites: wt.ElemWrites,
		}
	}
	// One Buffer per interned entry: bindings referencing the same index
	// share the pointer, reproducing the original aliasing structure.
	// Contents are zeroed at the recorded length — binding consumers read
	// only shape (Len, element size), never data.
	bufs := make([]*interp.Buffer, len(wp.Bufs))
	for i, wb := range wp.Bufs {
		kind := minic.BasicKind(wb.Kind)
		if wb.Len < 0 {
			return nil, fmt.Errorf("cluster: negative buffer length on the wire")
		}
		if kind == minic.Int {
			bufs[i] = interp.NewIntBuffer(wb.Name, make([]int64, wb.Len))
		} else {
			bufs[i] = interp.NewFloatBuffer(wb.Name, kind, make([]float64, wb.Len))
		}
	}
	for _, wb := range wp.Bindings {
		if wb.Count <= 0 || wb.Count > 1<<20 {
			return nil, fmt.Errorf("cluster: implausible binding repeat count %d", wb.Count)
		}
		binding := make(map[string]*interp.Buffer, len(wb.Params))
		for param, idx := range wb.Params {
			if idx < 0 || idx >= len(bufs) {
				return nil, fmt.Errorf("cluster: binding references unknown buffer %d", idx)
			}
			binding[param] = bufs[idx]
		}
		for i := 0; i < wb.Count; i++ {
			p.Bindings = append(p.Bindings, binding)
		}
	}
	return p, nil
}
