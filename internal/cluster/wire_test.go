package cluster

import (
	"bytes"
	"math"
	"testing"

	"psaflow/internal/interp"
	"psaflow/internal/minic"
)

// sampleResult builds a result exercising every wire feature: loops,
// traffic, shared and distinct buffer bindings, output, an exact
// awkward float.
func sampleResult() *interp.Result {
	pos := interp.NewFloatBuffer("pos", minic.Double, make([]float64, 128))
	vel := interp.NewFloatBuffer("vel", minic.Double, make([]float64, 128))
	idx := interp.NewIntBuffer("idx", make([]int64, 16))
	prof := &interp.Profile{
		Cycles:     12345.6789012345,
		Flops:      1 << 40,
		IntOps:     7,
		LoadBytes:  4096,
		StoreBytes: 512,
		Loops: map[int]*interp.LoopProfile{
			3: {ID: 3, Pos: minic.Pos{Line: 10, Col: 2}, Func: "main", Depth: 1, Entries: 5, Trips: 500, Cycles: 0.1 + 0.2},
			7: {ID: 7, Pos: minic.Pos{Line: 20, Col: 4}, Func: "kern", Depth: 2, Entries: 500, Trips: 64000, Cycles: math.Nextafter(1, 2)},
		},
		WatchFunc:         "kern",
		WatchCalls:        5,
		WatchCycles:       9999.25,
		WatchFlops:        123,
		WatchLoadBytes:    456,
		WatchStoreBytes:   789,
		WatchSpecialFlops: 11,
		ParamTraffic: map[string]*interp.Traffic{
			"pos": {Param: "pos", BytesIn: 1024, BytesOut: 1024, ElemReads: 128, ElemWrites: 128},
			"vel": {Param: "vel", BytesIn: 1024, BytesOut: 0, ElemReads: 128},
		},
		Bindings: []map[string]*interp.Buffer{
			{"a": pos, "b": vel, "c": idx},
			{"a": pos, "b": vel, "c": idx}, // duplicate of the first
			{"a": pos, "b": pos, "c": idx}, // a and b alias here
		},
	}
	return &interp.Result{
		Ret:    interp.Value{K: interp.KDouble, F: 0.30000000000000004},
		Prof:   prof,
		Steps:  987654321,
		Output: []string{"line one", "line two"},
	}
}

func TestWireRoundTrip(t *testing.T) {
	res := sampleResult()
	payload, sum, err := EncodeResult(res)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeResult(payload, sum)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Ret.K != res.Ret.K || got.Ret.F != res.Ret.F {
		t.Errorf("Ret: got %+v want %+v", got.Ret, res.Ret)
	}
	if got.Steps != res.Steps {
		t.Errorf("Steps: got %d want %d", got.Steps, res.Steps)
	}
	if len(got.Output) != 2 || got.Output[0] != "line one" {
		t.Errorf("Output: got %v", got.Output)
	}
	gp, rp := got.Prof, res.Prof
	if gp.Cycles != rp.Cycles || gp.Flops != rp.Flops || gp.WatchCycles != rp.WatchCycles {
		t.Errorf("profile scalars differ: got %+v", gp)
	}
	if len(gp.Loops) != 2 {
		t.Fatalf("loops: got %d want 2", len(gp.Loops))
	}
	for id, lp := range rp.Loops {
		g := gp.Loops[id]
		if g == nil || *g != *lp {
			t.Errorf("loop %d: got %+v want %+v", id, g, lp)
		}
	}
	for param, tr := range rp.ParamTraffic {
		g := gp.ParamTraffic[param]
		if g == nil || *g != *tr {
			t.Errorf("traffic %s: got %+v want %+v", param, g, tr)
		}
	}
	if len(gp.Bindings) != 3 {
		t.Fatalf("bindings: got %d want 3", len(gp.Bindings))
	}
	// Identity structure: a/b distinct in binding 0, aliased in the
	// third distinct map; idx shared across all bindings.
	if gp.Bindings[0]["a"] == gp.Bindings[0]["b"] {
		t.Error("binding 0: a and b alias after decode, should not")
	}
	if gp.Bindings[2]["a"] != gp.Bindings[2]["b"] {
		t.Error("binding 2: a and b should alias after decode")
	}
	if gp.Bindings[0]["c"] != gp.Bindings[2]["c"] {
		t.Error("c should be the same buffer in every binding")
	}
	if gp.Bindings[0]["a"] != gp.Bindings[1]["a"] {
		t.Error("deduplicated bindings should share buffers")
	}
	// Shape: lengths and element sizes drive footprint math downstream.
	if gp.Bindings[0]["a"].Len() != 128 || gp.Bindings[0]["a"].ElemBytes() != rp.Bindings[0]["a"].ElemBytes() {
		t.Errorf("buffer shape lost: len=%d", gp.Bindings[0]["a"].Len())
	}
	if gp.Bindings[0]["c"].Len() != 16 {
		t.Errorf("int buffer shape lost: len=%d", gp.Bindings[0]["c"].Len())
	}
	// AliasPairs — the actual consumer of binding identity — must agree.
	if want, got := rp.AliasPairs(), gp.AliasPairs(); len(want) != len(got) {
		t.Errorf("AliasPairs: got %v want %v", got, want)
	} else {
		for i := range want {
			if want[i] != got[i] {
				t.Errorf("AliasPairs[%d]: got %v want %v", i, got[i], want[i])
			}
		}
	}
}

func TestWireDeterministic(t *testing.T) {
	// Same result encodes to identical bytes every time (map ordering
	// must not leak in) — the checksum depends on it.
	a, sumA, err := EncodeResult(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b, sumB, err := EncodeResult(sampleResult())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) || sumA != sumB {
			t.Fatalf("encode %d differs from first encode", i)
		}
	}
}

func TestWireRejects(t *testing.T) {
	if _, _, err := EncodeResult(nil); err == nil {
		t.Error("nil result encoded")
	}
	buf := interp.NewIntBuffer("x", make([]int64, 4))
	if _, _, err := EncodeResult(&interp.Result{Ret: interp.Value{K: interp.KBuf, Buf: buf}}); err == nil {
		t.Error("buffer-valued result encoded")
	}
	if _, _, err := EncodeResult(&interp.Result{Prof: &interp.Profile{Cycles: math.NaN()}}); err == nil {
		t.Error("NaN cycles encoded (JSON cannot carry NaN)")
	}
	payload, sum, err := EncodeResult(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResult(payload, "deadbeef"); err == nil {
		t.Error("checksum mismatch not rejected")
	}
	tampered := bytes.Replace(payload, []byte("line one"), []byte("line 0ne"), 1)
	if _, err := DecodeResult(tampered, sum); err == nil {
		t.Error("tampered payload not rejected")
	}
}

func TestRunKeyID(t *testing.T) {
	a := RunKeyID(1, "nbody", "main", "kern")
	if len(a) != 64 {
		t.Fatalf("key ID length %d, want 64 hex chars", len(a))
	}
	if a != RunKeyID(1, "nbody", "main", "kern") {
		t.Error("RunKeyID not deterministic")
	}
	if a == RunKeyID(2, "nbody", "main", "kern") || a == RunKeyID(1, "nbody", "main", "") {
		t.Error("distinct keys collide")
	}
}
