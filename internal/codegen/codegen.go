// Package codegen renders MiniC programs whose hotspot kernel has been
// extracted into complete target-specific designs: OpenMP multi-thread
// CPU, HIP CPU+GPU, and oneAPI (SYCL) CPU+FPGA source text. The emitted
// designs are what the paper's "Generate {HIP,oneAPI} Design" and
// "Multi-Thread Parallel Loops" code-generation tasks produce, and their
// line counts drive the Table I developer-productivity analysis. Output is
// human-readable (the paper stresses generated designs can be hand-tuned).
package codegen

import (
	"fmt"
	"strings"

	"psaflow/internal/minic"
	"psaflow/internal/query"
)

// Options configures a code generation pass.
type Options struct {
	Kernel       string   // extracted kernel function name
	Device       string   // device label for comments/ids
	NumThreads   int      // OpenMP: omp_set_num_threads
	Blocksize    int      // HIP: launch block size
	Pinned       bool     // HIP: use pinned host memory
	SharedMem    []string // HIP: read-only arrays staged through shared memory
	Specialised  bool     // HIP: note specialised math fns in header comment
	ZeroCopy     bool     // oneAPI: USM zero-copy host allocations
	UnrollFactor int      // oneAPI: outer loop unroll pragma factor
}

// Design is a rendered target design.
type Design struct {
	Target   string // "openmp" | "hip" | "oneapi"
	Device   string
	Source   string
	LOC      int
	AddedLOC int // LOC - reference LOC (clamped at 0)
}

func finish(target, device, src string, refLOC int) *Design {
	loc := minic.CountLOC(src)
	added := loc - refLOC
	if added < 0 {
		added = 0
	}
	return &Design{Target: target, Device: device, Source: src, LOC: loc, AddedLOC: added}
}

// kernelLoop fetches the kernel function and its canonical outer loop.
func kernelLoop(prog *minic.Program, kernel string) (*minic.FuncDecl, *minic.ForStmt, query.LoopBound, error) {
	fn := prog.Func(kernel)
	if fn == nil {
		return nil, nil, query.LoopBound{}, fmt.Errorf("codegen: no kernel %q", kernel)
	}
	q := query.New(prog)
	outer := q.OutermostLoops(fn)
	if len(outer) == 0 {
		return nil, nil, query.LoopBound{}, fmt.Errorf("codegen: kernel %q has no loop", kernel)
	}
	fs, ok := outer[0].(*minic.ForStmt)
	if !ok {
		return nil, nil, query.LoopBound{}, fmt.Errorf("codegen: kernel %q outer loop is not a for", kernel)
	}
	b, ok := query.Bounds(fs)
	if !ok {
		return nil, nil, query.LoopBound{}, fmt.Errorf("codegen: kernel %q outer loop is not canonical", kernel)
	}
	return fn, fs, b, nil
}

// paramList renders a C parameter list.
func paramList(params []*minic.Param) string {
	parts := make([]string, len(params))
	for i, p := range params {
		t := p.Type.String()
		if p.Type.Ptr {
			parts[i] = t + p.Name
		} else {
			parts[i] = t + " " + p.Name
		}
	}
	return strings.Join(parts, ", ")
}

// argList renders the call arguments matching a parameter list.
func argList(params []*minic.Param) string {
	parts := make([]string, len(params))
	for i, p := range params {
		parts[i] = p.Name
	}
	return strings.Join(parts, ", ")
}

// indent prefixes every non-empty line of s with pad.
func indent(s, pad string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		if strings.TrimSpace(l) != "" {
			lines[i] = pad + l
		}
	}
	return strings.Join(lines, "\n")
}

// renderStmts prints statements at the given indentation.
func renderStmts(stmts []minic.Stmt, pad string) string {
	var sb strings.Builder
	for _, s := range stmts {
		sb.WriteString(indent(minic.FormatStmt(s), pad))
		sb.WriteString("\n")
	}
	return sb.String()
}

// renderOtherFuncs prints every function except the kernel (the untouched
// application code that surrounds the generated design).
func renderOtherFuncs(prog *minic.Program, kernel string) string {
	var sb strings.Builder
	for _, f := range prog.Funcs {
		if f.Name == kernel {
			continue
		}
		single := &minic.Program{Funcs: []*minic.FuncDecl{f}}
		sb.WriteString(minic.Print(single))
		sb.WriteString("\n")
	}
	return sb.String()
}

// pointerParams returns the kernel's pointer parameters.
func pointerParams(fn *minic.FuncDecl) []*minic.Param {
	var out []*minic.Param
	for _, p := range fn.Params {
		if p.Type.Ptr {
			out = append(out, p)
		}
	}
	return out
}

// sizeExprFor guesses the element count expression for a pointer parameter
// from the kernel's outer-loop bound — the generated management code
// allocates hi elements per buffer. This mirrors what the paper's
// generators derive from the data in/out analysis.
func sizeExprFor(b query.LoopBound) string {
	return minic.FormatExpr(b.Hi)
}
