package codegen

import (
	"strings"
	"testing"

	"psaflow/internal/minic"
)

// extractedSrc models a program after hotspot extraction: host calls the
// kernel, kernel holds the hot loop.
const extractedSrc = `
void app(int n, const double *in, double *out) {
    app_hotspot(n, in, out);
    out[0] = out[0] + 1.0;
}

void app_hotspot(int n, const double *in, double *out) {
    for (int i = 0; i < n; i++) {
        out[i] = sqrt(in[i] * in[i] + 1.0);
    }
}
`

func refProgram(t *testing.T) (*minic.Program, int) {
	t.Helper()
	prog := minic.MustParse(extractedSrc)
	return prog, minic.CountLOC(minic.Print(prog))
}

func balancedBraces(t *testing.T, src string) {
	t.Helper()
	depth := 0
	for _, r := range src {
		switch r {
		case '{':
			depth++
		case '}':
			depth--
			if depth < 0 {
				t.Fatalf("unbalanced braces:\n%s", src)
			}
		}
	}
	if depth != 0 {
		t.Fatalf("unbalanced braces (depth %d):\n%s", depth, src)
	}
}

func TestOpenMPDesign(t *testing.T) {
	prog, ref := refProgram(t)
	d, err := OpenMP(prog, ref, Options{Kernel: "app_hotspot", Device: "EPYC 7543", NumThreads: 32})
	if err != nil {
		t.Fatalf("OpenMP: %v", err)
	}
	for _, want := range []string{
		"#include <omp.h>",
		"#pragma omp parallel for num_threads(32)",
		"for (int i = 0; i < n; i++)",
	} {
		if !strings.Contains(d.Source, want) {
			t.Errorf("missing %q in:\n%s", want, d.Source)
		}
	}
	balancedBraces(t, d.Source)
	if d.Target != "openmp" {
		t.Errorf("target = %q", d.Target)
	}
	// OMP adds very few lines (paper: ~+2%).
	if d.AddedLOC < 1 || d.AddedLOC > 8 {
		t.Errorf("OMP AddedLOC = %d, want small (1..8)", d.AddedLOC)
	}
	// The original program must not be mutated.
	if strings.Contains(minic.Print(prog), "omp parallel") {
		t.Error("OpenMP mutated the input program")
	}
}

func TestHIPDesign(t *testing.T) {
	prog, ref := refProgram(t)
	d, err := HIP(prog, ref, Options{Kernel: "app_hotspot", Device: "GTX 1080 Ti", Blocksize: 128})
	if err != nil {
		t.Fatalf("HIP: %v", err)
	}
	for _, want := range []string{
		"#include <hip/hip_runtime.h>",
		"__global__ void app_hotspot_kernel(",
		"int i = blockIdx.x * blockDim.x + threadIdx.x;",
		"if (i < n) {",
		"hipMalloc(&d_in",
		"hipMemcpy(d_in, in",
		"hipLaunchKernelGGL(app_hotspot_kernel, dim3(grid), dim3(blocksize), 0, 0, n, d_in, d_out);",
		"hipDeviceSynchronize()",
		"hipMemcpy(out, d_out",
		"hipFree(d_in)",
		"int blocksize = 128;",
	} {
		if !strings.Contains(d.Source, want) {
			t.Errorf("missing %q in:\n%s", want, d.Source)
		}
	}
	// Input-only (const) buffers are not copied back.
	if strings.Contains(d.Source, "hipMemcpy(in, d_in") {
		t.Error("const input buffer copied back to host")
	}
	balancedBraces(t, d.Source)
	if d.AddedLOC <= 8 {
		t.Errorf("HIP AddedLOC = %d, want substantial", d.AddedLOC)
	}
}

func TestHIPPinnedAndShared(t *testing.T) {
	prog, ref := refProgram(t)
	d, err := HIP(prog, ref, Options{
		Kernel: "app_hotspot", Device: "RTX 2080 Ti", Blocksize: 256,
		Pinned: true, SharedMem: []string{"in"}, Specialised: true,
	})
	if err != nil {
		t.Fatalf("HIP: %v", err)
	}
	for _, want := range []string{
		"hipHostMalloc(&h_in",
		"__shared__ double in_tile[256];",
		"__syncthreads();",
		"fast-math",
	} {
		if !strings.Contains(d.Source, want) {
			t.Errorf("missing %q in:\n%s", want, d.Source)
		}
	}
	plain, err := HIP(prog, ref, Options{Kernel: "app_hotspot", Device: "RTX 2080 Ti", Blocksize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if d.AddedLOC <= plain.AddedLOC {
		t.Errorf("pinned+shared design (%d) should add more LOC than plain (%d)", d.AddedLOC, plain.AddedLOC)
	}
}

func TestOneAPIBufferDesign(t *testing.T) {
	prog, ref := refProgram(t)
	d, err := OneAPI(prog, ref, Options{Kernel: "app_hotspot", Device: "Arria 10", UnrollFactor: 4})
	if err != nil {
		t.Fatalf("OneAPI: %v", err)
	}
	for _, want := range []string{
		"#include <sycl/sycl.hpp>",
		"fpga_selector",
		"sycl::buffer<double, 1> in_buf(in, sycl::range<1>(n));",
		"get_access<sycl::access::mode::read>",
		"get_access<sycl::access::mode::read_write>",
		"h.single_task<App_hotspotKernelID>",
		"#pragma unroll 4",
		"for (int i = 0; i < n; i++)",
	} {
		if !strings.Contains(d.Source, want) {
			t.Errorf("missing %q in:\n%s", want, d.Source)
		}
	}
	if strings.Contains(d.Source, "malloc_host") {
		t.Error("buffer-style design must not use USM")
	}
	balancedBraces(t, d.Source)
}

func TestOneAPIZeroCopyDesign(t *testing.T) {
	prog, ref := refProgram(t)
	d, err := OneAPI(prog, ref, Options{Kernel: "app_hotspot", Device: "Stratix 10", UnrollFactor: 8, ZeroCopy: true})
	if err != nil {
		t.Fatalf("OneAPI: %v", err)
	}
	for _, want := range []string{
		"sycl::malloc_host<double>(n, q);",
		"zero-copy",
		"#pragma unroll 8",
		"sycl::free(u_in, q);",
		"memcpy(out, u_out",
	} {
		if !strings.Contains(d.Source, want) {
			t.Errorf("missing %q in:\n%s", want, d.Source)
		}
	}
	if strings.Contains(d.Source, "sycl::buffer") {
		t.Error("zero-copy design must not use buffers")
	}
	balancedBraces(t, d.Source)
}

func TestLOCOrdering(t *testing.T) {
	// Table I shape: OMP < HIP < oneAPI A10 < oneAPI S10 added LOC.
	prog, ref := refProgram(t)
	omp, _ := OpenMP(prog, ref, Options{Kernel: "app_hotspot", NumThreads: 32})
	hip, _ := HIP(prog, ref, Options{Kernel: "app_hotspot", Blocksize: 256, Pinned: true})
	a10, _ := OneAPI(prog, ref, Options{Kernel: "app_hotspot", UnrollFactor: 4})
	s10, _ := OneAPI(prog, ref, Options{Kernel: "app_hotspot", UnrollFactor: 8, ZeroCopy: true})
	if !(omp.AddedLOC < hip.AddedLOC) {
		t.Errorf("OMP (%d) should add fewer lines than HIP (%d)", omp.AddedLOC, hip.AddedLOC)
	}
	if !(hip.AddedLOC < s10.AddedLOC) {
		t.Errorf("HIP (%d) should add fewer lines than oneAPI S10 (%d)", hip.AddedLOC, s10.AddedLOC)
	}
	if a10.AddedLOC == 0 || s10.AddedLOC == 0 {
		t.Error("oneAPI designs must add lines")
	}
}

func TestCodegenErrors(t *testing.T) {
	prog, ref := refProgram(t)
	if _, err := OpenMP(prog, ref, Options{Kernel: "missing"}); err == nil {
		t.Error("expected error for missing kernel")
	}
	noLoop := minic.MustParse(`void k(int n) { n = n + 1; }`)
	if _, err := HIP(noLoop, 1, Options{Kernel: "k"}); err == nil {
		t.Error("expected error for loopless kernel")
	}
	while := minic.MustParse(`void k(int n) { while (n > 0) { n--; } }`)
	if _, err := OneAPI(while, 1, Options{Kernel: "k"}); err == nil {
		t.Error("expected error for non-canonical outer loop")
	}
}
