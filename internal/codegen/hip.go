package codegen

import (
	"fmt"
	"strings"

	"psaflow/internal/minic"
)

// HIP renders the CPU+GPU design: a `__global__` kernel whose grid
// parallelizes the extracted hotspot's outer loop, plus host management
// code (device allocation, transfers, launch, teardown). Options select
// pinned host memory, shared-memory staging, and the blocksize found by
// the per-device DSE. The paper measures ≈ +36% added LOC for this
// generator.
func HIP(prog *minic.Program, refLOC int, opts Options) (*Design, error) {
	fn, loop, bound, err := kernelLoop(prog, opts.Kernel)
	if err != nil {
		return nil, err
	}
	blocksize := opts.Blocksize
	if blocksize <= 0 {
		blocksize = 256
	}

	var sb strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&sb, format, args...) }

	w("// Auto-generated HIP CPU+GPU design\n")
	w("// target: %s, blocksize: %d\n", opts.Device, blocksize)
	if opts.Specialised {
		w("// fast-math: specialised device intrinsics enabled\n")
	}
	w("#include <hip/hip_runtime.h>\n")
	w("#include <cstdio>\n\n")
	w("#define HIP_CHECK(cmd) do { hipError_t e = (cmd); if (e != hipSuccess) { \\\n")
	w("    fprintf(stderr, \"HIP error %%s at %%s:%%d\\n\", hipGetErrorString(e), __FILE__, __LINE__); \\\n")
	w("    } } while (0)\n\n")

	// Device kernel: grid-stride mapping of the outer loop.
	w("__global__ void %s_kernel(%s) {\n", fn.Name, paramList(fn.Params))
	w("    int %s = blockIdx.x * blockDim.x + threadIdx.x;\n", bound.Var)
	shared := map[string]bool{}
	for _, name := range opts.SharedMem {
		shared[name] = true
	}
	if len(opts.SharedMem) > 0 {
		for _, p := range pointerParams(fn) {
			if !shared[p.Name] {
				continue
			}
			elem := p.Type.Kind.String()
			w("    __shared__ %s %s_tile[%d];\n", elem, p.Name, blocksize)
			w("    if (threadIdx.x < %d && %s < %s) {\n", blocksize, bound.Var, minic.FormatExpr(bound.Hi))
			w("        %s_tile[threadIdx.x] = %s[%s];\n", p.Name, p.Name, bound.Var)
			w("    }\n")
		}
		w("    __syncthreads();\n")
	}
	w("    if (%s < %s) {\n", bound.Var, minic.FormatExpr(bound.Hi))
	sb.WriteString(renderStmts(loop.Body.Stmts, "        "))
	w("    }\n")
	w("}\n\n")

	// Host wrapper replacing the original kernel function.
	w("void %s(%s) {\n", fn.Name, paramList(fn.Params))
	sizeExpr := sizeExprFor(bound)
	ptrs := pointerParams(fn)
	for _, p := range ptrs {
		elem := p.Type.Kind.String()
		w("    %s *d_%s = nullptr;\n", elem, p.Name)
		w("    HIP_CHECK(hipMalloc(&d_%s, sizeof(%s) * (%s)));\n", p.Name, elem, sizeExpr)
	}
	if opts.Pinned {
		w("    // Pinned host staging buffers for faster PCIe transfers.\n")
		for _, p := range ptrs {
			elem := p.Type.Kind.String()
			w("    %s *h_%s = nullptr;\n", elem, p.Name)
			w("    HIP_CHECK(hipHostMalloc(&h_%s, sizeof(%s) * (%s)));\n", p.Name, elem, sizeExpr)
			w("    memcpy(h_%s, %s, sizeof(%s) * (%s));\n", p.Name, p.Name, elem, sizeExpr)
		}
	}
	for _, p := range ptrs {
		src := p.Name
		if opts.Pinned {
			src = "h_" + p.Name
		}
		w("    HIP_CHECK(hipMemcpy(d_%s, %s, sizeof(%s) * (%s), hipMemcpyHostToDevice));\n",
			p.Name, src, p.Type.Kind.String(), sizeExpr)
	}
	w("    int blocksize = %d;\n", blocksize)
	w("    int grid = ((%s) + blocksize - 1) / blocksize;\n", sizeExpr)
	var callArgs []string
	for _, p := range fn.Params {
		if p.Type.Ptr {
			callArgs = append(callArgs, "d_"+p.Name)
		} else {
			callArgs = append(callArgs, p.Name)
		}
	}
	w("    hipLaunchKernelGGL(%s_kernel, dim3(grid), dim3(blocksize), 0, 0, %s);\n",
		fn.Name, strings.Join(callArgs, ", "))
	w("    HIP_CHECK(hipDeviceSynchronize());\n")
	for _, p := range ptrs {
		if p.Type.Const {
			continue // input-only buffers need no copy back
		}
		dst := p.Name
		if opts.Pinned {
			dst = "h_" + p.Name
		}
		w("    HIP_CHECK(hipMemcpy(%s, d_%s, sizeof(%s) * (%s), hipMemcpyDeviceToHost));\n",
			dst, p.Name, p.Type.Kind.String(), sizeExpr)
		if opts.Pinned {
			w("    memcpy(%s, h_%s, sizeof(%s) * (%s));\n", p.Name, p.Name, p.Type.Kind.String(), sizeExpr)
		}
	}
	for _, p := range ptrs {
		w("    HIP_CHECK(hipFree(d_%s));\n", p.Name)
		if opts.Pinned {
			w("    HIP_CHECK(hipHostFree(h_%s));\n", p.Name)
		}
	}
	w("}\n\n")

	sb.WriteString(renderOtherFuncs(prog, fn.Name))
	return finish("hip", opts.Device, sb.String(), refLOC), nil
}
