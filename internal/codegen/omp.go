package codegen

import (
	"fmt"
	"strings"

	"psaflow/internal/minic"
)

// OpenMP renders the multi-thread CPU design: the original program with an
// `omp parallel for` pragma (and thread-count clause from the num-threads
// DSE) on the kernel's outer loop. The added-LOC footprint is tiny — the
// paper measures ≈ +2%.
func OpenMP(prog *minic.Program, refLOC int, opts Options) (*Design, error) {
	fn, loop, _, err := kernelLoop(prog, opts.Kernel)
	if err != nil {
		return nil, err
	}
	work := prog.Clone()
	wfn := work.MustFunc(fn.Name)
	// Re-locate the outer loop in the clone.
	_, wloop, _, err := kernelLoop(work, opts.Kernel)
	if err != nil {
		return nil, err
	}
	_ = loop
	threads := opts.NumThreads
	if threads <= 0 {
		threads = 1
	}
	// Replace any bare parallel-for annotation left by the transform task
	// with the final clause carrying the DSE-selected thread count,
	// preserving clauses such as reduction(...).
	pragma := fmt.Sprintf("omp parallel for num_threads(%d)", threads)
	kept := wloop.Pragmas[:0]
	for _, p := range wloop.Pragmas {
		if strings.HasPrefix(p, "omp parallel for") {
			if rest := strings.TrimPrefix(p, "omp parallel for"); strings.TrimSpace(rest) != "" {
				pragma += rest
			}
			continue
		}
		kept = append(kept, p)
	}
	wloop.Pragmas = append(kept, pragma)

	var sb strings.Builder
	sb.WriteString("#include <omp.h>\n\n")
	sb.WriteString(renderOtherFuncs(work, wfn.Name))
	single := &minic.Program{Funcs: []*minic.FuncDecl{wfn}}
	sb.WriteString(minic.Print(single))
	return finish("openmp", opts.Device, sb.String(), refLOC), nil
}
