package codegen

import (
	"fmt"
	"strings"

	"psaflow/internal/minic"
	"psaflow/internal/query"
)

// OneAPI renders the CPU+FPGA design: a SYCL single_task pipeline kernel
// with the outer loop carrying the unroll pragma found by the
// unroll-until-overmap DSE, plus host management code. Buffer/accessor
// style is used for devices without USM (Arria 10); zero-copy malloc_host
// pointers for USM devices (Stratix 10) — which is why the paper's S10
// designs add more lines (+81% avg) than A10 designs (+57% avg).
func OneAPI(prog *minic.Program, refLOC int, opts Options) (*Design, error) {
	fn, loop, bound, err := kernelLoop(prog, opts.Kernel)
	if err != nil {
		return nil, err
	}
	unroll := opts.UnrollFactor
	if unroll <= 0 {
		unroll = 1
	}

	var sb strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&sb, format, args...) }

	kernelID := strings.ToUpper(fn.Name[:1]) + fn.Name[1:] + "KernelID"
	ptrs := pointerParams(fn)
	sizeExpr := sizeExprFor(bound)

	w("// Auto-generated oneAPI CPU+FPGA design\n")
	w("// target: %s, unroll: %d", opts.Device, unroll)
	if opts.ZeroCopy {
		w(", zero-copy USM host allocations")
	}
	w("\n")
	w("#include <sycl/sycl.hpp>\n")
	w("#include <sycl/ext/intel/fpga_extensions.hpp>\n")
	w("#include <cstring>\n")
	w("#include <iostream>\n\n")
	w("class %s;\n\n", kernelID)
	w("void %s(%s) {\n", fn.Name, paramList(fn.Params))
	w("#if defined(FPGA_EMULATOR)\n")
	w("    sycl::ext::intel::fpga_emulator_selector selector;\n")
	w("#else\n")
	w("    sycl::ext::intel::fpga_selector selector;\n")
	w("#endif\n")
	w("    auto exception_handler = [](sycl::exception_list elist) {\n")
	w("        for (std::exception_ptr const &e : elist) {\n")
	w("            try {\n")
	w("                std::rethrow_exception(e);\n")
	w("            } catch (sycl::exception const &ex) {\n")
	w("                std::cerr << \"SYCL exception: \" << ex.what() << std::endl;\n")
	w("                std::terminate();\n")
	w("            }\n")
	w("        }\n")
	w("    };\n")
	w("    sycl::property_list props{sycl::property::queue::enable_profiling()};\n")
	w("    sycl::queue q(selector, exception_handler, props);\n")
	w("    sycl::device dev = q.get_device();\n")
	w("    std::cerr << \"Running on \" << dev.get_info<sycl::info::device::name>() << std::endl;\n")

	if opts.ZeroCopy {
		w("    // Zero-copy: the kernel streams host memory directly through\n")
		w("    // USM; no buffer copies are staged on the device DDR.\n")
		w("    if (!dev.has(sycl::aspect::usm_host_allocations)) {\n")
		w("        std::cerr << \"Device lacks USM host allocations\" << std::endl;\n")
		w("        std::terminate();\n")
		w("    }\n")
		for _, p := range ptrs {
			elem := p.Type.Kind.String()
			w("    %s *u_%s = sycl::malloc_host<%s>(%s, q);\n", elem, p.Name, elem, sizeExpr)
			w("    memcpy(u_%s, %s, sizeof(%s) * (%s));\n", p.Name, p.Name, elem, sizeExpr)
		}
		w("    sycl::event e = q.submit([&](sycl::handler &h) {\n")
		w("        h.single_task<%s>([=]() [[intel::kernel_args_restrict]] {\n", kernelID)
		emitPipelineLoop(w, loop, bound, unroll, "            ")
		w("        });\n")
		w("    });\n")
		w("    q.wait();\n")
		w("    double start_ns = e.get_profiling_info<sycl::info::event_profiling::command_start>();\n")
		w("    double end_ns = e.get_profiling_info<sycl::info::event_profiling::command_end>();\n")
		w("    std::cerr << \"Kernel time: \" << (end_ns - start_ns) * 1e-6 << \" ms\" << std::endl;\n")
		for _, p := range ptrs {
			if !p.Type.Const {
				w("    memcpy(%s, u_%s, sizeof(%s) * (%s));\n", p.Name, p.Name, p.Type.Kind.String(), sizeExpr)
			}
		}
		for _, p := range ptrs {
			w("    sycl::free(u_%s, q);\n", p.Name)
		}
	} else {
		w("    {\n")
		for _, p := range ptrs {
			elem := p.Type.Kind.String()
			w("        sycl::buffer<%s, 1> %s_buf(%s, sycl::range<1>(%s));\n", elem, p.Name, p.Name, sizeExpr)
		}
		w("        sycl::event e = q.submit([&](sycl::handler &h) {\n")
		for _, p := range ptrs {
			mode := "read_write"
			if p.Type.Const {
				mode = "read"
			}
			w("            auto %s_acc = %s_buf.get_access<sycl::access::mode::%s>(h);\n", p.Name, p.Name, mode)
		}
		w("            h.single_task<%s>([=]() [[intel::kernel_args_restrict]] {\n", kernelID)
		emitPipelineLoop(w, loop, bound, unroll, "                ")
		w("            });\n")
		w("        });\n")
		w("        q.wait();\n")
		w("        double start_ns = e.get_profiling_info<sycl::info::event_profiling::command_start>();\n")
		w("        double end_ns = e.get_profiling_info<sycl::info::event_profiling::command_end>();\n")
		w("        std::cerr << \"Kernel time: \" << (end_ns - start_ns) * 1e-6 << \" ms\" << std::endl;\n")
		w("    } // buffer destructors write results back to the host\n")
	}
	w("}\n\n")

	sb.WriteString(renderOtherFuncs(prog, fn.Name))
	return finish("oneapi", opts.Device, sb.String(), refLOC), nil
}

// emitPipelineLoop renders the kernel's outer loop with its unroll pragma
// and body at the given indentation.
func emitPipelineLoop(w func(string, ...any), loop *minic.ForStmt, bound query.LoopBound, unroll int, pad string) {
	if unroll > 1 {
		w("%s#pragma unroll %d\n", pad, unroll)
	}
	init := ""
	switch d := loop.Init.(type) {
	case *minic.DeclStmt:
		s := minic.FormatStmt(d)
		init = strings.TrimSuffix(s, ";")
	case *minic.ExprStmt:
		init = minic.FormatExpr(d.X)
	}
	cond := ""
	if loop.Cond != nil {
		cond = minic.FormatExpr(loop.Cond)
	}
	post := ""
	if loop.Post != nil {
		post = minic.FormatExpr(loop.Post)
	}
	w("%sfor (%s; %s; %s) {\n", pad, init, cond, post)
	w("%s", renderStmts(loop.Body.Stmts, pad+"    "))
	w("%s}\n", pad)
	_ = bound
}
