package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"psaflow/internal/minic"
)

func cancelTask(name string, fn func(ctx *Context, d *Design) error) Task {
	return TaskFunc{TaskName: name, TaskKind: Analysis, Fn: fn}
}

func newCancelDesign(t *testing.T) *Design {
	t.Helper()
	prog, err := minic.Parse(`void app(int n) { int x; x = n; }`)
	if err != nil {
		t.Fatal(err)
	}
	return NewDesign("cancel", prog)
}

func TestInterruptedNilContext(t *testing.T) {
	ctx := &Context{}
	if err := ctx.Interrupted(); err != nil {
		t.Fatalf("nil Ctx should never report interruption, got %v", err)
	}
}

// The engine must refuse to start the task after the one that observed the
// cancellation, and the error must unwrap to context.Canceled.
func TestFlowCancelStopsAtTaskBoundary(t *testing.T) {
	cctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	flow := &Flow{Name: "cancel-flow"}
	flow.AddTask(cancelTask("first", func(ctx *Context, d *Design) error {
		cancel() // cancellation lands while the flow is mid-run
		return nil
	}))
	flow.AddTask(cancelTask("second", func(ctx *Context, d *Design) error {
		ran.Add(1)
		return nil
	}))

	_, err := flow.Run(&Context{Ctx: cctx}, newCancelDesign(t))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	var fe *FlowError
	if !errors.As(err, &fe) {
		t.Fatalf("want *FlowError, got %T", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("task after cancellation still ran %d time(s)", ran.Load())
	}
}

// Cancellation must interrupt every forked branch path of a parallel
// uninformed run: each path blocks mid-task until the context is cancelled,
// and the tasks scheduled after the blocking one must never start.
func TestParallelBranchCancelMidPath(t *testing.T) {
	cctx, cancel := context.WithCancel(context.Background())
	const paths = 3
	started := make(chan struct{}, paths)
	var after atomic.Int32

	var ps []Path
	for i := 0; i < paths; i++ {
		pf := &Flow{Name: "path"}
		pf.AddTask(cancelTask("block", func(ctx *Context, d *Design) error {
			started <- struct{}{}
			<-ctx.Ctx.Done() // a long profiled run, interrupted
			return nil
		}))
		pf.AddTask(cancelTask("after", func(ctx *Context, d *Design) error {
			after.Add(1)
			return nil
		}))
		ps = append(ps, Path{Name: "p", Flow: pf})
	}
	flow := &Flow{Name: "parallel-cancel"}
	flow.AddBranch(Branch{PointName: "X", Paths: ps, Select: SelectAll{}})

	done := make(chan error, 1)
	go func() {
		_, err := flow.Run(&Context{Ctx: cctx, Parallel: true}, newCancelDesign(t))
		done <- err
	}()
	for i := 0; i < paths; i++ {
		<-started // every forked path is in flight
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled parallel flow did not return")
	}
	if after.Load() != 0 {
		t.Fatalf("%d path task(s) ran after cancellation", after.Load())
	}
}

// A deadline must surface as context.DeadlineExceeded through the same
// boundary checks.
func TestFlowDeadline(t *testing.T) {
	cctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	flow := &Flow{Name: "deadline-flow"}
	flow.AddTask(cancelTask("slow", func(ctx *Context, d *Design) error {
		<-ctx.Ctx.Done()
		return nil
	}))
	flow.AddTask(cancelTask("late", func(ctx *Context, d *Design) error { return nil }))
	_, err := flow.Run(&Context{Ctx: cctx}, newCancelDesign(t))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}
