// Package core implements the paper's primary contribution: PSA-flows —
// programmatic, customizable, reusable design-flows composed of codified
// tasks and branch points with Path Selection Automation. A flow consumes
// a technology-agnostic design (MiniC source + workload) and produces one
// or more specialized designs (multi-thread CPU, CPU+GPU, CPU+FPGA),
// forking the design at branch points and recording full provenance.
package core

import (
	"fmt"

	"psaflow/internal/analysis"
	"psaflow/internal/codegen"
	"psaflow/internal/hls"
	"psaflow/internal/interp"
	"psaflow/internal/minic"
	"psaflow/internal/perfmodel"
	"psaflow/internal/platform"
)

// Workload supplies a runnable input configuration for dynamic analyses:
// the entry function and freshly allocated argument buffers. Args must
// return independent buffers on every call so repeated instrumented runs
// observe identical initial state.
type Workload interface {
	Name() string
	Entry() string
	Args() []interp.Value
}

// KernelReport accumulates everything the analysis tasks learn about the
// extracted hotspot kernel; the PSA strategies and performance models read
// from it.
type KernelReport struct {
	// Hotspot detection (dynamic).
	HotspotLoopID int
	HotspotShare  float64 // fraction of total reference cycles
	HotspotCycles float64

	// Kernel-level dynamic measurements.
	KernelFlops    float64
	SpecialFlops   float64 // FLOPs from transcendental builtins
	BytesIn        float64
	BytesOut       float64
	KernelBytes    float64 // total memory traffic inside the kernel
	OuterTrips     float64 // trips of the kernel's outer loop per invocation
	PipelinedTrips float64
	SerialDepth    float64 // mean trips of dep-carrying inner loops
	Calls          float64 // kernel invocations observed in the profiling run

	// Static analyses.
	AliasPairs   [][2]string
	DynamicAI    float64
	StaticAI     float64
	OuterDeps    *analysis.LoopDeps
	Unroll       analysis.Unrollability
	RegsEstimate int
	SinglePrec   bool
	SpecialDP    bool    // kernel retains double-precision transcendentals
	HeavyFrac    float64 // fraction of special FLOPs from exp/log/tanh/erf
}

// Features assembles the perfmodel view of the kernel.
func (r *KernelReport) Features() perfmodel.KernelFeatures {
	calls := r.Calls
	if calls < 1 {
		calls = 1
	}
	return perfmodel.KernelFeatures{
		HotspotCycles: r.HotspotCycles,
		Flops:         r.KernelFlops,
		SpecialFlops:  r.SpecialFlops,
		Bytes:         r.KernelBytes,
		TransferIn:    r.BytesIn,
		TransferOut:   r.BytesOut,
		Threads:       r.OuterTrips / calls,
		SerialDepth:   r.SerialDepth,
		Calls:         calls,
		Regs:          r.RegsEstimate,
		SinglePrec:    r.SinglePrec,
		SpecialDP:     r.SpecialDP,
		HeavyFrac:     r.HeavyFrac,
	}
}

// TraceEvent records one step of provenance.
type TraceEvent struct {
	Kind   string // "task" | "branch" | "dse" | "note"
	Name   string
	Detail string
}

// String renders the event.
func (e TraceEvent) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("[%s] %s", e.Kind, e.Name)
	}
	return fmt.Sprintf("[%s] %s: %s", e.Kind, e.Name, e.Detail)
}

// Design is the unit that flows through a PSA-flow: application source,
// accumulated knowledge, the chosen target/device, and generated
// artifacts.
type Design struct {
	Name   string
	Prog   *minic.Program
	Kernel string // extracted kernel function name; "" before partitioning
	RefLOC int    // line count of the unoptimized reference source (Table I baseline)

	Target platform.TargetKind
	Device string

	Report    *KernelReport
	Trace     []TraceEvent
	Artifact  *codegen.Design // rendered target source
	HLSReport *hls.Report     // FPGA designs only

	// Tuned parameters found by DSE tasks.
	NumThreads   int
	Blocksize    int
	UnrollFactor int
	Pinned       bool
	ZeroCopy     bool
	SharedMem    []string
	Specialised  bool

	// Estimated design time on the selected device.
	Est        perfmodel.Breakdown
	Infeasible string // non-empty when the design cannot be realized (e.g. FPGA overmap)
}

// NewDesign wraps a parsed program as the flow input, recording the
// reference line count Table I measures added lines against.
func NewDesign(name string, prog *minic.Program) *Design {
	return &Design{
		Name:   name,
		Prog:   prog,
		Report: &KernelReport{},
		RefLOC: minic.CountLOC(minic.Print(prog)),
	}
}

// Tracef appends a provenance event.
func (d *Design) Tracef(kind, name, format string, args ...any) {
	d.Trace = append(d.Trace, TraceEvent{Kind: kind, Name: name, Detail: fmt.Sprintf(format, args...)})
}

// Clone returns an independent deep copy of the report. A plain struct
// copy is not enough: AliasPairs shares its backing array and OuterDeps
// is a pointer, so two forks mutating either would race (or silently
// cross-contaminate analyses) when branch paths run in parallel.
func (r *KernelReport) Clone() *KernelReport {
	if r == nil {
		return nil
	}
	nr := *r
	nr.AliasPairs = append([][2]string(nil), r.AliasPairs...)
	nr.OuterDeps = r.OuterDeps.Clone()
	return &nr
}

// Fork deep-copies the design for a branch path: the program, the report
// (including its alias/dependence results), the provenance trace, and the
// per-design artifacts. Forks share no mutable state, so parallel branch
// paths can work on them concurrently.
func (d *Design) Fork() *Design {
	nd := *d
	nd.Prog = d.Prog.Clone()
	nd.Report = d.Report.Clone()
	nd.Trace = append([]TraceEvent(nil), d.Trace...)
	nd.SharedMem = append([]string(nil), d.SharedMem...)
	if d.HLSReport != nil {
		rep := *d.HLSReport
		nd.HLSReport = &rep
	}
	if d.Artifact != nil {
		art := *d.Artifact
		nd.Artifact = &art
	}
	return &nd
}

// KernelFunc returns the extracted kernel function, or nil.
func (d *Design) KernelFunc() *minic.FuncDecl {
	if d.Kernel == "" {
		return nil
	}
	return d.Prog.Func(d.Kernel)
}

// Label names the design for reports: "nbody/gpu/RTX 2080 Ti".
func (d *Design) Label() string {
	if d.Device == "" {
		return fmt.Sprintf("%s/%s", d.Name, d.Target)
	}
	return fmt.Sprintf("%s/%s/%s", d.Name, d.Target, d.Device)
}
