package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"psaflow/internal/minic"
)

// Export writes the design to a directory, mirroring the paper's Fig. 2
// final step (design.export(mod_src)): the generated target source, the
// transformed MiniC program, the provenance trace, and a JSON summary of
// the report and tuned parameters. Returns the directory created.
func (d *Design) Export(baseDir string) (string, error) {
	dir := filepath.Join(baseDir, sanitize(d.Label()))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("export %s: %w", d.Label(), err)
	}
	if d.Artifact != nil {
		name := map[string]string{
			"openmp": "design_omp.c",
			"hip":    "design_hip.cpp",
			"oneapi": "design_oneapi.cpp",
		}[d.Artifact.Target]
		if name == "" {
			name = "design.txt"
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(d.Artifact.Source), 0o644); err != nil {
			return "", err
		}
	}
	if d.Prog != nil {
		if err := os.WriteFile(filepath.Join(dir, "transformed.minic"), []byte(minic.Print(d.Prog)), 0o644); err != nil {
			return "", err
		}
	}
	var trace strings.Builder
	for _, ev := range d.Trace {
		trace.WriteString(ev.String())
		trace.WriteByte('\n')
	}
	if err := os.WriteFile(filepath.Join(dir, "trace.log"), []byte(trace.String()), 0o644); err != nil {
		return "", err
	}
	summary := map[string]any{
		"name":       d.Name,
		"target":     d.Target.String(),
		"device":     d.Device,
		"kernel":     d.Kernel,
		"infeasible": d.Infeasible,
		"tuned": map[string]any{
			"num_threads":   d.NumThreads,
			"blocksize":     d.Blocksize,
			"unroll_factor": d.UnrollFactor,
			"pinned":        d.Pinned,
			"zero_copy":     d.ZeroCopy,
			"shared_mem":    d.SharedMem,
			"fast_math":     d.Specialised,
		},
		"estimate": map[string]any{
			"kernel_s":   d.Est.KernelTime,
			"transfer_s": d.Est.TransferTime,
			"overhead_s": d.Est.Overhead,
			"total_s":    d.Est.Total,
			"note":       d.Est.Note,
		},
		"report": d.Report,
	}
	data, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, "design.json"), data, 0o644); err != nil {
		return "", err
	}
	return dir, nil
}

// sanitize turns a design label into a filesystem-safe directory name.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-' || r == '_' || r == '.':
			out = append(out, r)
		case r == '/' || r == ' ':
			out = append(out, '_')
		}
	}
	return string(out)
}
