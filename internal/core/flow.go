package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"psaflow/internal/events"
	"psaflow/internal/faults"
	"psaflow/internal/interp"
	"psaflow/internal/platform"
	"psaflow/internal/telemetry"
)

// TaskKind classifies tasks as in the paper's Fig. 4 legend.
type TaskKind int

// Task classifications: Analysis (A), Transform (T), Code-Generation (CG),
// Optimisation/DSE (O).
const (
	Analysis TaskKind = iota
	Transform
	CodeGen
	Optimisation
)

// String returns the paper's one-letter task class.
func (k TaskKind) String() string {
	switch k {
	case Analysis:
		return "A"
	case Transform:
		return "T"
	case CodeGen:
		return "CG"
	case Optimisation:
		return "O"
	}
	return "?"
}

// Context carries the environment tasks run in.
type Context struct {
	// Ctx carries cancellation and deadlines into the flow run: the engine
	// checks it at every task boundary and branch revision, the bundled DSE
	// loops check it per iteration, and dynamic tasks hand it to the
	// interpreter so an in-flight profiled run aborts promptly. Nil means
	// the run cannot be interrupted (the historical CLI behaviour).
	Ctx      context.Context
	Workload Workload
	CPU      platform.CPUSpec
	// Budget is the user cost budget for the Fig. 3 cost-evaluation
	// feedback loop; 0 disables the gate.
	Budget float64
	// Cost evaluates a completed design's cost for the budget gate.
	Cost func(*Design) float64
	// Logf receives progress lines; nil silences them.
	Logf func(format string, args ...any)
	// Parallel evaluates forked branch paths concurrently (each path works
	// on its own design fork; Workload.Args must allocate fresh buffers per
	// call, which every bundled workload does). Results keep path order.
	Parallel bool
	// Telemetry records hierarchical flow-run spans (flow → branch → path
	// → task) and named counters from the hot layers. Nil disables
	// recording at zero cost; the recorder is race-safe, so it can be
	// shared by parallel branch paths.
	Telemetry *telemetry.Recorder
	// Runs memoizes profiled interpreter executions across the dynamic
	// analyses and across sibling forked paths, keyed by program
	// fingerprint + workload identity (see RunCache). Nil disables
	// memoization; every dynamic task then re-executes the program. The
	// cache is race-safe and shared as-is by parallel branch paths.
	Runs *RunCache
	// Progs caches lowered bytecode programs across the flow's profiled
	// runs, keyed by program fingerprint: repeat executions of an
	// unchanged program skip lowering and inherit quickened instruction
	// state from earlier runs (see interp.ProgramCache). Nil disables the
	// cache; each run then lowers afresh. Race-safe, shared as-is by
	// parallel branch paths, and shareable across whole job batches.
	Progs *interp.ProgramCache
	// QuickenThreshold is handed to the interpreter for every profiled
	// run: the per-instruction execution count after which the bytecode
	// VM rewrites hot generic opcodes to type-specialized forms. 0 means
	// interp.DefaultQuickenThreshold; negative disables quickening.
	QuickenThreshold int
	// Faults injects deterministic synthetic failures at the instrumented
	// tool call sites (partial compiles, profiled runs, device claims —
	// see internal/faults and docs/FAULTS.md). Nil disables injection;
	// zero-fault runs are bit-for-bit identical to a Context without the
	// resilience fields set.
	Faults *faults.Injector
	// Retry tunes the engine's per-task retry loop (transient faults are
	// retried in place with deterministic backoff). The zero value means
	// faults.DefaultRetry; the policy's Budget caps total retries across
	// the whole flow run.
	Retry faults.RetryPolicy
	// TaskTimeout bounds each task attempt; an attempt that exceeds it is
	// classified as a transient faults.Timeout and retried. 0 disables.
	TaskTimeout time.Duration
	// DSEWorkers bounds the worker pool the DSE sweeps (blocksize,
	// num-threads, unroll-until-overmap) use to evaluate candidates
	// concurrently. 0 or 1 keeps the historical serial sweeps; higher
	// values evaluate candidate estimates in parallel while a serial
	// consumption walk keeps fault-injection order, telemetry, and
	// selected designs bit-for-bit identical to serial mode.
	DSEWorkers int

	// shared is the run-scoped mutable state (log serialization, retry
	// budget) installed by Flow.Run before any parallel work starts and
	// propagated by pointer through withCtx copies.
	shared *sharedState
}

// sharedState is the per-flow-run state shared by every goroutine and
// every per-attempt Context copy of one run.
type sharedState struct {
	mu          sync.Mutex
	retryTokens int64
	hasBudget   bool
}

// ensureShared installs the shared state. Idempotent; called from the
// single-threaded Flow.Run entry before goroutines exist.
func (c *Context) ensureShared() {
	if c.shared != nil {
		return
	}
	s := &sharedState{}
	if b := c.Retry.WithDefaults().Budget; b > 0 {
		s.hasBudget, s.retryTokens = true, int64(b)
	}
	c.shared = s
}

// takeRetryToken consumes one retry from the flow's shared budget and
// reports whether one was available. Contexts never run through Flow.Run
// (direct Task.Run in tests) have no budget and always grant.
func (c *Context) takeRetryToken() bool {
	s := c.shared
	if s == nil || !s.hasBudget {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.retryTokens <= 0 {
		return false
	}
	s.retryTokens--
	return true
}

// resilient reports whether fault-recovery machinery is active for this
// run. When false the engine takes exactly its historical code paths, so
// fault-free runs stay bit-for-bit identical.
func (c *Context) resilient() bool {
	return c.Faults.Enabled() || c.TaskTimeout > 0
}

// withCtx returns a task-context copy with the cancellation context
// replaced — the engine uses it to impose per-attempt timeouts without
// disturbing sibling paths. Field-by-field (not a struct copy) so no
// future lock-bearing field is ever copied by value.
func (c *Context) withCtx(ctx context.Context) *Context {
	return &Context{
		Ctx:              ctx,
		Workload:         c.Workload,
		CPU:              c.CPU,
		Budget:           c.Budget,
		Cost:             c.Cost,
		Logf:             c.Logf,
		Parallel:         c.Parallel,
		Telemetry:        c.Telemetry,
		Runs:             c.Runs,
		Progs:            c.Progs,
		QuickenThreshold: c.QuickenThreshold,
		Faults:           c.Faults,
		Retry:            c.Retry,
		TaskTimeout:      c.TaskTimeout,
		DSEWorkers:       c.DSEWorkers,
		shared:           c.shared,
	}
}

// FailPoint consults the fault injector for one instrumented operation,
// recording telemetry when a fault fires. Instrumented call sites invoke
// it immediately before the simulated tool step (and before any cache
// lookup, so failures never poison memoized results). Returns the
// injected fault as an error, or nil to proceed.
func (c *Context) FailPoint(kind faults.Kind, op string) error {
	err := c.Faults.Fail(kind, op)
	if err != nil {
		c.Count(telemetry.CounterFaultsInjected, 1)
		c.Count(telemetry.FaultCounter(string(kind)), 1)
		c.Emit(events.TypeFaultInjected, op, err.Error())
		c.logf("  fault injected: %v", err)
	}
	return err
}

// Interrupted returns the context's error once cancellation or a deadline
// has landed, and nil before that (or when no context is attached). Tasks
// with internal iteration (DSE sweeps) should poll it so long explorations
// stop at the next iteration boundary.
func (c *Context) Interrupted() error {
	if c.Ctx == nil {
		return nil
	}
	select {
	case <-c.Ctx.Done():
		return c.Ctx.Err()
	default:
		return nil
	}
}

// Count increments a named telemetry counter; no-op without a recorder.
// Tasks use this to report DSE iterations and other per-run quantities.
func (c *Context) Count(name string, delta int64) {
	c.Telemetry.Add(name, delta)
}

// Emit publishes one typed live event (see internal/events) through the
// recorder's event sink — branch decisions, DSE progress, faults, and
// retries reach streaming clients this way. No-op without a recorder or
// an attached sink, so batch runs pay only a nil check.
func (c *Context) Emit(typ, name, detail string) {
	c.Telemetry.Emit(typ, name, detail)
}

func (c *Context) logf(format string, args ...any) {
	if c.Logf == nil {
		return
	}
	if s := c.shared; s != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	c.Logf(format, args...)
}

// Task is one codified design-flow task (a meta-program in the paper's
// terms): a self-contained analysis, transform, code generation, or
// optimisation that operates on a design.
type Task interface {
	Name() string
	Kind() TaskKind
	Dynamic() bool // requires program execution (the paper's ⚡ marker)
	Run(ctx *Context, d *Design) error
}

// TaskFunc adapts a function to the Task interface.
type TaskFunc struct {
	TaskName string
	TaskKind TaskKind
	IsDyn    bool
	Fn       func(ctx *Context, d *Design) error
}

// Name returns the task name.
func (t TaskFunc) Name() string { return t.TaskName }

// Kind returns the task classification.
func (t TaskFunc) Kind() TaskKind { return t.TaskKind }

// Dynamic reports whether the task executes the program.
func (t TaskFunc) Dynamic() bool { return t.IsDyn }

// Run executes the task.
func (t TaskFunc) Run(ctx *Context, d *Design) error { return t.Fn(ctx, d) }

// Node is a flow element: a Task step or a Branch point.
type Node interface{ flowNode() }

// Step wraps a task as a flow node.
type Step struct{ Task Task }

func (Step) flowNode() {}

// Path is one alternative at a branch point.
type Path struct {
	Name string
	Flow *Flow
}

// Selector implements Path Selection Automation at a branch point. It
// returns the indices of the paths to take: one for an informed strategy,
// several (or all) for uninformed generation. excluded lists path indices
// ruled out by the budget feedback loop.
type Selector interface {
	Name() string
	Select(ctx *Context, d *Design, paths []Path, excluded map[int]bool) ([]int, error)
}

// SelectAll is the uninformed selector: every (non-excluded) path is
// taken, generating all design versions (paper §IV-B "Uninformed" mode).
type SelectAll struct{}

// Name identifies the selector.
func (SelectAll) Name() string { return "select-all" }

// Select returns all non-excluded paths.
func (SelectAll) Select(_ *Context, _ *Design, paths []Path, excluded map[int]bool) ([]int, error) {
	var out []int
	for i := range paths {
		if !excluded[i] {
			out = append(out, i)
		}
	}
	return out, nil
}

// SelectorFunc adapts a function to Selector.
type SelectorFunc struct {
	SelName string
	Fn      func(ctx *Context, d *Design, paths []Path, excluded map[int]bool) ([]int, error)
}

// Name identifies the selector.
func (s SelectorFunc) Name() string { return s.SelName }

// Select delegates to the wrapped function.
func (s SelectorFunc) Select(ctx *Context, d *Design, paths []Path, excluded map[int]bool) ([]int, error) {
	return s.Fn(ctx, d, paths, excluded)
}

// Branch is a PSA branch point: alternative sub-flows plus a selection
// strategy, and optionally the cost/budget feedback gate of Fig. 3 (when
// ctx.Budget > 0 and ctx.Cost is set, a selected path whose resulting
// designs all exceed the budget is excluded and selection re-runs).
type Branch struct {
	PointName string
	Paths     []Path
	Select    Selector
	// Gated enables the cost/budget feedback loop at this branch point
	// (Fig. 3 places it at the target-selection branch). Ungated branches
	// ignore ctx.Budget.
	Gated bool
	// MaxRevisions bounds the feedback loop (default 4).
	MaxRevisions int
}

func (Branch) flowNode() {}

// Flow is a sequence of steps and branch points — one PSA-flow (or a
// sub-flow forming a branch path).
type Flow struct {
	Name  string
	Nodes []Node
}

// AddTask appends a task step and returns the flow for chaining.
func (f *Flow) AddTask(t Task) *Flow {
	f.Nodes = append(f.Nodes, Step{Task: t})
	return f
}

// AddBranch appends a branch point and returns the flow for chaining.
func (f *Flow) AddBranch(b Branch) *Flow {
	f.Nodes = append(f.Nodes, b)
	return f
}

// FlowError wraps a task failure with its flow position.
type FlowError struct {
	Flow string
	Task string
	Err  error
}

// Error implements the error interface.
func (e *FlowError) Error() string {
	return fmt.Sprintf("flow %s: task %s: %v", e.Flow, e.Task, e.Err)
}

// Unwrap exposes the cause.
func (e *FlowError) Unwrap() error { return e.Err }

// Run executes the flow on design d and returns the leaf designs — one per
// branch path ultimately taken. Designs that become infeasible (e.g. FPGA
// overmap) are still returned, marked via Design.Infeasible, so harnesses
// can report them as the paper does ("n/a" bars).
func (f *Flow) Run(ctx *Context, d *Design) ([]*Design, error) {
	ctx.ensureShared()
	span := ctx.Telemetry.StartSpan(nil, telemetry.KindFlow, f.Name)
	defer span.End()
	return f.run(ctx, d, span)
}

// run executes the flow's nodes with telemetry attached under parent
// (sub-flows of a branch path attach to the path's span).
func (f *Flow) run(ctx *Context, d *Design, parent *telemetry.Span) ([]*Design, error) {
	designs := []*Design{d}
	for _, node := range f.Nodes {
		switch n := node.(type) {
		case Step:
			// A fresh output slice: reusing designs[:0] would alias the
			// input's backing array, corrupting not-yet-visited designs the
			// moment a step drops or expands entries.
			next := make([]*Design, 0, len(designs))
			for _, cur := range designs {
				if cur.Infeasible != "" {
					next = append(next, cur)
					continue
				}
				if err := ctx.Interrupted(); err != nil {
					return nil, &FlowError{Flow: f.Name, Task: n.Task.Name(), Err: err}
				}
				ctx.logf("  task %-32s (%s) on %s", n.Task.Name(), n.Task.Kind(), cur.Label())
				span := ctx.Telemetry.StartSpan(parent, telemetry.KindTask, n.Task.Name())
				span.SetDetail(cur.Label())
				err := runTask(ctx, n.Task, cur, span)
				span.End()
				if err != nil {
					return nil, &FlowError{Flow: f.Name, Task: n.Task.Name(), Err: err}
				}
				cur.Tracef("task", n.Task.Name(), "%s", n.Task.Kind())
				next = append(next, cur)
			}
			designs = next
		case Branch:
			next := make([]*Design, 0, len(designs))
			for _, cur := range designs {
				if cur.Infeasible != "" {
					next = append(next, cur)
					continue
				}
				out, err := runBranch(ctx, n, cur, f.Name, parent)
				if err != nil {
					return nil, err
				}
				next = append(next, out...)
			}
			designs = next
		default:
			return nil, fmt.Errorf("flow %s: unknown node %T", f.Name, node)
		}
	}
	return designs, nil
}

// runTask executes one task with the engine's resilience wrapper: an
// optional per-attempt timeout, plus retry-with-backoff for transient
// faults bounded by the retry policy's MaxAttempts and the flow's shared
// retry budget. With injection off and no timeout this reduces to exactly
// one plain Task.Run call, so fault-free flows behave identically to the
// pre-resilience engine.
func runTask(ctx *Context, t Task, d *Design, span *telemetry.Span) error {
	pol := ctx.Retry.WithDefaults()
	for attempt := 1; ; attempt++ {
		err := runTaskAttempt(ctx, t, d)
		if err == nil || !faults.Transient(err) {
			return err
		}
		if ctx.Interrupted() != nil {
			return err
		}
		if attempt >= pol.MaxAttempts {
			ctx.Count(telemetry.CounterRetryGiveups, 1)
			span.Note(fmt.Sprintf("gave up after %d attempts: %v", attempt, err))
			return fmt.Errorf("task %s: %d attempts exhausted: %w", t.Name(), attempt, err)
		}
		if !ctx.takeRetryToken() {
			ctx.Count(telemetry.CounterRetryBudgetExhausted, 1)
			span.Note(fmt.Sprintf("retry budget exhausted after attempt %d: %v", attempt, err))
			return fmt.Errorf("task %s: flow retry budget exhausted: %w", t.Name(), err)
		}
		delay := pol.Delay(t.Name(), attempt)
		ctx.Count(telemetry.CounterRetryAttempts, 1)
		ctx.Count(telemetry.CounterRetryBackoffMillis, delay.Milliseconds())
		ctx.Emit(events.TypeRetry, t.Name(), fmt.Sprintf("attempt %d failed (%v); retrying after %s", attempt, err, delay))
		span.Note(fmt.Sprintf("retry %d after %v (backoff %s)", attempt, err, delay))
		ctx.logf("  retry %-31s attempt %d after %s (%v)", t.Name(), attempt+1, delay, err)
		if faults.Sleep(ctx.Ctx, delay) != nil {
			return err
		}
	}
}

// runTaskAttempt runs one attempt, imposing Context.TaskTimeout when set.
// An attempt killed by its own deadline — while the flow's context is
// still alive — is reclassified as a transient faults.Timeout so the
// retry loop treats a hung tool invocation like a failed one.
func runTaskAttempt(ctx *Context, t Task, d *Design) error {
	if ctx.TaskTimeout <= 0 {
		return t.Run(ctx, d)
	}
	base := ctx.Ctx
	if base == nil {
		base = context.Background()
	}
	tctx, cancel := context.WithTimeout(base, ctx.TaskTimeout)
	defer cancel()
	err := t.Run(ctx.withCtx(tctx), d)
	if err != nil && errors.Is(err, context.DeadlineExceeded) &&
		(ctx.Ctx == nil || ctx.Ctx.Err() == nil) {
		ctx.Count(telemetry.CounterTaskTimeouts, 1)
		return fmt.Errorf("task %s exceeded timeout %s: %w", t.Name(), ctx.TaskTimeout,
			&faults.Fault{Kind: faults.Timeout, Op: t.Name(), N: 1, Transient: true})
	}
	return err
}

// pathNames renders the selected path names for the branch_decision event
// ("" when nothing was selected).
func pathNames(paths []Path, idxs []int) string {
	var names []string
	for _, i := range idxs {
		if i >= 0 && i < len(paths) {
			names = append(names, fmt.Sprintf("%q", paths[i].Name))
		}
	}
	return strings.Join(names, ", ")
}

// runBranch executes one branch point on one design, including the budget
// feedback loop: an initial selection plus at most MaxRevisions
// re-selections, each revision excluding the paths that exceeded the
// budget.
//
// Fault-degraded paths follow the graceful-degradation tier (docs/FAULTS.md):
// a path whose sub-flow fails with a degradable error (a retry-exhausted or
// non-transient fault) is not allowed to abort the flow. Its fork is marked
// Infeasible and kept as a failure verdict; when the selection was a single
// path (informed strategy) the path is additionally excluded and selection
// re-runs, so the strategy falls back to its next-best target.
func runBranch(ctx *Context, b Branch, d *Design, flowName string, parent *telemetry.Span) ([]*Design, error) {
	maxRev := b.MaxRevisions
	if maxRev <= 0 {
		maxRev = 4
	}
	gated := b.Gated && ctx.Budget > 0 && ctx.Cost != nil
	resilient := ctx.resilient()
	excluded := map[int]bool{}
	branchSpan := ctx.Telemetry.StartSpan(parent, telemetry.KindBranch, b.PointName)
	defer branchSpan.End()
	// degraded accumulates the Infeasible failure verdicts of fault-degraded
	// paths across fallback re-selections; they are returned alongside the
	// surviving designs so harnesses see per-branch failure outcomes.
	var degraded []*Design
	rev, fallbacks := 0, 0
	for {
		if err := ctx.Interrupted(); err != nil {
			return nil, &FlowError{Flow: flowName, Task: "branch:" + b.PointName, Err: err}
		}
		idxs, err := b.Select.Select(ctx, d, b.Paths, excluded)
		if err != nil {
			return nil, &FlowError{Flow: flowName, Task: "branch:" + b.PointName, Err: err}
		}
		if names := pathNames(b.Paths, idxs); names != "" {
			ctx.Emit(events.TypeBranchDecision, b.PointName,
				fmt.Sprintf("strategy %s selected %s", b.Select.Name(), names))
		}
		if len(idxs) == 0 {
			// No viable path: the flow terminates without specializing
			// (Fig. 3's "design-flow terminates" outcome). Verdicts from
			// earlier degraded paths are still reported.
			d.Tracef("branch", b.PointName, "no path selected; design unmodified")
			return append(degraded, d), nil
		}
		for _, i := range idxs {
			if i < 0 || i >= len(b.Paths) {
				return nil, &FlowError{Flow: flowName, Task: "branch:" + b.PointName,
					Err: fmt.Errorf("selector returned invalid path index %d", i)}
			}
		}
		perPath := make([][]*Design, len(idxs))
		errs := make([]error, len(idxs))
		forks := make([]*Design, len(idxs))
		runPath := func(slot, i int) {
			p := b.Paths[i]
			fork := d
			// Fork when several paths run, when the budget gate may reject
			// this path and re-select, or when resilience is active: budget
			// revisions and fault fallbacks must both restart from the
			// unmodified design.
			if len(idxs) > 1 || gated || resilient {
				fork = d.Fork()
				ctx.Count(telemetry.CounterDesignsForked, 1)
			}
			forks[slot] = fork
			fork.Tracef("branch", b.PointName, "selected path %q (strategy %s)", p.Name, b.Select.Name())
			ctx.logf("branch %s -> %s", b.PointName, p.Name)
			pathSpan := ctx.Telemetry.StartSpan(branchSpan, telemetry.KindPath, b.PointName+"/"+p.Name)
			pathSpan.SetDetail(fork.Label())
			perPath[slot], errs[slot] = p.Flow.run(ctx, fork, pathSpan)
			pathSpan.End()
		}
		if ctx.Parallel && len(idxs) > 1 {
			var wg sync.WaitGroup
			for slot, i := range idxs {
				wg.Add(1)
				go func(slot, i int) {
					defer wg.Done()
					runPath(slot, i)
				}(slot, i)
			}
			wg.Wait()
		} else {
			for slot, i := range idxs {
				runPath(slot, i)
			}
		}
		var out []*Design
		overBudget := true
		failedSlots := 0
		var firstFail error
		for slot, i := range idxs {
			if err := errs[slot]; err != nil {
				if !resilient || !faults.Degradable(err) {
					// Programming/specification errors (or any failure with
					// resilience off) still abort the flow.
					return nil, err
				}
				// Graceful degradation: the failed fork becomes an
				// Infeasible failure verdict instead of aborting the flow.
				p := b.Paths[i]
				fork := forks[slot]
				fork.Infeasible = fmt.Sprintf("path %q failed: %v", p.Name, err)
				fork.Tracef("branch", b.PointName, "degraded: %v", err)
				ctx.Count(telemetry.CounterFaultDegradations, 1)
				ctx.Emit(events.TypeDegraded, b.PointName+"/"+p.Name, err.Error())
				branchSpan.Note(fmt.Sprintf("path %q degraded: %v", p.Name, err))
				ctx.logf("branch %s: path %q degraded (%v)", b.PointName, p.Name, err)
				degraded = append(degraded, fork)
				failedSlots++
				if firstFail == nil {
					firstFail = err
				}
				// Like any infeasible leaf, a failure verdict suppresses
				// budget revision for this round.
				overBudget = false
				continue
			}
			out = append(out, perPath[slot]...)
			for _, leaf := range perPath[slot] {
				if !gated || leaf.Infeasible != "" {
					overBudget = false
					continue
				}
				if cost := ctx.Cost(leaf); cost <= ctx.Budget {
					overBudget = false
				} else {
					leaf.Tracef("branch", b.PointName, "cost %.4g exceeds budget %.4g", cost, ctx.Budget)
				}
			}
		}
		// A multi-select branch whose every path failed produced nothing to
		// continue with: surface one degradable error so an enclosing branch
		// (informed mode's target selection) can fall back in turn.
		if failedSlots == len(idxs) && len(idxs) > 1 {
			return nil, &FlowError{Flow: flowName, Task: "branch:" + b.PointName,
				Err: fmt.Errorf("all %d selected paths failed: %w", len(idxs), firstFail)}
		}
		// Informed fallback: when the strategy picked a single path and it
		// failed, exclude it and re-select so the next-best target runs.
		// Bounded by the path count — each fallback permanently excludes one.
		if failedSlots > 0 && len(idxs) == 1 {
			if fallbacks >= len(b.Paths) {
				return nil, &FlowError{Flow: flowName, Task: "branch:" + b.PointName,
					Err: fmt.Errorf("fault fallback exceeded %d paths (selector re-selected a failed path)", len(b.Paths))}
			}
			fallbacks++
			excluded[idxs[0]] = true
			ctx.Count(telemetry.CounterFaultFallbacks, 1)
			branchSpan.Note(fmt.Sprintf("fallback %d: re-selecting without path %q", fallbacks, b.Paths[idxs[0]].Name))
			d.Tracef("branch", b.PointName, "fallback %d: path %q failed, re-selecting", fallbacks, b.Paths[idxs[0]].Name)
			continue
		}
		if !gated || !overBudget {
			return append(degraded, out...), nil
		}
		if rev == maxRev {
			return nil, &FlowError{Flow: flowName, Task: "branch:" + b.PointName,
				Err: fmt.Errorf("budget feedback exhausted %d revisions", maxRev)}
		}
		// Feedback: revise by excluding the failed path(s) and re-selecting.
		for _, i := range idxs {
			excluded[i] = true
		}
		rev++
		ctx.Count(telemetry.CounterBudgetRevisions, 1)
		d.Tracef("branch", b.PointName, "revision %d: all selected paths over budget, re-selecting", rev)
	}
}
