package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"psaflow/internal/analysis"
	"psaflow/internal/codegen"
	"psaflow/internal/hls"
	"psaflow/internal/minic"
	"psaflow/internal/platform"
	"psaflow/internal/telemetry"
)

const flowSrc = `
void app(int n, double *a) {
    for (int i = 0; i < n; i++) {
        a[i] = a[i] * 2.0;
    }
}
`

func newTestDesign() *Design {
	return NewDesign("test", minic.MustParse(flowSrc))
}

// record builds a task that appends its name to a log slice.
func record(log *[]string, name string) Task {
	return TaskFunc{
		TaskName: name, TaskKind: Transform,
		Fn: func(ctx *Context, d *Design) error {
			*log = append(*log, name+"@"+d.Label())
			return nil
		},
	}
}

func TestFlowSequentialTasks(t *testing.T) {
	var log []string
	flow := &Flow{Name: "seq"}
	flow.AddTask(record(&log, "t1"))
	flow.AddTask(record(&log, "t2"))
	flow.AddTask(record(&log, "t3"))
	out, err := flow.Run(&Context{}, newTestDesign())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(out) != 1 {
		t.Fatalf("designs = %d, want 1", len(out))
	}
	if len(log) != 3 || !strings.HasPrefix(log[0], "t1") || !strings.HasPrefix(log[2], "t3") {
		t.Fatalf("log = %v", log)
	}
	// Trace records every task.
	if len(out[0].Trace) != 3 {
		t.Fatalf("trace = %v", out[0].Trace)
	}
}

func TestFlowTaskError(t *testing.T) {
	flow := &Flow{Name: "failing"}
	flow.AddTask(TaskFunc{TaskName: "boom", TaskKind: Analysis,
		Fn: func(*Context, *Design) error { return errors.New("kaput") }})
	_, err := flow.Run(&Context{}, newTestDesign())
	if err == nil {
		t.Fatal("expected error")
	}
	var fe *FlowError
	if !errors.As(err, &fe) {
		t.Fatalf("error type %T", err)
	}
	if fe.Task != "boom" || fe.Flow != "failing" {
		t.Fatalf("flow error = %+v", fe)
	}
}

// pathFlow builds a sub-flow that stamps the design's Device.
func pathFlow(name string) *Flow {
	f := &Flow{Name: name}
	f.AddTask(TaskFunc{TaskName: "stamp-" + name, TaskKind: Transform,
		Fn: func(ctx *Context, d *Design) error {
			d.Device = name
			return nil
		}})
	return f
}

func TestBranchSelectAllForks(t *testing.T) {
	flow := &Flow{Name: "fork"}
	flow.AddBranch(Branch{
		PointName: "X",
		Paths: []Path{
			{Name: "a", Flow: pathFlow("a")},
			{Name: "b", Flow: pathFlow("b")},
			{Name: "c", Flow: pathFlow("c")},
		},
		Select: SelectAll{},
	})
	out, err := flow.Run(&Context{}, newTestDesign())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(out) != 3 {
		t.Fatalf("designs = %d, want 3", len(out))
	}
	devices := map[string]bool{}
	for _, d := range out {
		devices[d.Device] = true
		// Forked designs own independent programs.
		for _, other := range out {
			if other != d && other.Prog == d.Prog {
				t.Fatal("forked designs share a program")
			}
		}
	}
	if !devices["a"] || !devices["b"] || !devices["c"] {
		t.Fatalf("devices = %v", devices)
	}
}

func TestBranchSingleSelection(t *testing.T) {
	sel := SelectorFunc{SelName: "pick-b",
		Fn: func(ctx *Context, d *Design, paths []Path, excluded map[int]bool) ([]int, error) {
			return []int{1}, nil
		}}
	flow := &Flow{Name: "single"}
	flow.AddBranch(Branch{PointName: "X",
		Paths:  []Path{{Name: "a", Flow: pathFlow("a")}, {Name: "b", Flow: pathFlow("b")}},
		Select: sel})
	out, err := flow.Run(&Context{}, newTestDesign())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(out) != 1 || out[0].Device != "b" {
		t.Fatalf("out = %v", out)
	}
	// The single selection must not fork (same design flows on).
	found := false
	for _, ev := range out[0].Trace {
		if ev.Kind == "branch" && strings.Contains(ev.Detail, `path "b"`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("branch trace missing: %v", out[0].Trace)
	}
}

func TestBranchNoPathTerminates(t *testing.T) {
	sel := SelectorFunc{SelName: "none",
		Fn: func(ctx *Context, d *Design, paths []Path, excluded map[int]bool) ([]int, error) {
			return nil, nil
		}}
	flow := &Flow{Name: "terminate"}
	flow.AddBranch(Branch{PointName: "X",
		Paths:  []Path{{Name: "a", Flow: pathFlow("a")}},
		Select: sel})
	out, err := flow.Run(&Context{}, newTestDesign())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Design passes through unmodified (Fig. 3: flow terminates without
	// specializing).
	if len(out) != 1 || out[0].Device != "" {
		t.Fatalf("out = %+v", out[0])
	}
}

func TestBranchInvalidIndex(t *testing.T) {
	sel := SelectorFunc{SelName: "bad",
		Fn: func(ctx *Context, d *Design, paths []Path, excluded map[int]bool) ([]int, error) {
			return []int{7}, nil
		}}
	flow := &Flow{Name: "bad"}
	flow.AddBranch(Branch{PointName: "X", Paths: []Path{{Name: "a", Flow: pathFlow("a")}}, Select: sel})
	if _, err := flow.Run(&Context{}, newTestDesign()); err == nil {
		t.Fatal("expected error for invalid path index")
	}
}

// TestBudgetFeedback exercises the Fig. 3 cost-evaluation loop: the first
// selected path exceeds the budget, so the branch re-selects with that
// path excluded.
func TestBudgetFeedback(t *testing.T) {
	costs := map[string]float64{"expensive": 100, "cheap": 1}
	sel := SelectorFunc{SelName: "greedy",
		Fn: func(ctx *Context, d *Design, paths []Path, excluded map[int]bool) ([]int, error) {
			// Prefer the expensive path unless excluded.
			for i, p := range paths {
				if p.Name == "expensive" && !excluded[i] {
					return []int{i}, nil
				}
			}
			for i := range paths {
				if !excluded[i] {
					return []int{i}, nil
				}
			}
			return nil, nil
		}}
	flow := &Flow{Name: "budgeted"}
	flow.AddBranch(Branch{PointName: "X",
		Paths:  []Path{{Name: "expensive", Flow: pathFlow("expensive")}, {Name: "cheap", Flow: pathFlow("cheap")}},
		Select: sel, Gated: true})
	ctx := &Context{
		Budget: 10,
		Cost:   func(d *Design) float64 { return costs[d.Device] },
	}
	out, err := flow.Run(ctx, newTestDesign())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(out) != 1 || out[0].Device != "cheap" {
		t.Fatalf("budget feedback should land on cheap path, got %v", out[0].Device)
	}
	// Trace should record the revision.
	revised := false
	for _, ev := range out[0].Trace {
		if strings.Contains(ev.Detail, "re-selecting") {
			revised = true
		}
	}
	if !revised {
		t.Fatalf("revision not traced: %v", out[0].Trace)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	sel := SelectorFunc{SelName: "stubborn",
		Fn: func(ctx *Context, d *Design, paths []Path, excluded map[int]bool) ([]int, error) {
			if excluded[0] {
				return nil, nil // gives up after exclusion → terminates
			}
			return []int{0}, nil
		}}
	flow := &Flow{Name: "exhaust"}
	flow.AddBranch(Branch{PointName: "X",
		Paths:  []Path{{Name: "only", Flow: pathFlow("only")}},
		Select: sel, Gated: true, MaxRevisions: 2})
	ctx := &Context{Budget: 1, Cost: func(*Design) float64 { return 50 }}
	out, err := flow.Run(ctx, newTestDesign())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// After exclusion the selector returns no path: unmodified design.
	if len(out) != 1 || out[0].Device != "" {
		t.Fatalf("out = %v", out)
	}
}

func TestInfeasibleDesignSkipsRemainingTasks(t *testing.T) {
	var log []string
	flow := &Flow{Name: "skip"}
	flow.AddTask(TaskFunc{TaskName: "mark", TaskKind: Optimisation,
		Fn: func(ctx *Context, d *Design) error {
			d.Infeasible = "overmap"
			return nil
		}})
	flow.AddTask(record(&log, "after"))
	out, err := flow.Run(&Context{}, newTestDesign())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(log) != 0 {
		t.Fatalf("tasks ran after infeasibility: %v", log)
	}
	if out[0].Infeasible != "overmap" {
		t.Fatal("infeasibility lost")
	}
}

func TestNestedBranches(t *testing.T) {
	inner := &Flow{Name: "inner"}
	inner.AddBranch(Branch{PointName: "B",
		Paths:  []Path{{Name: "x", Flow: pathFlow("x")}, {Name: "y", Flow: pathFlow("y")}},
		Select: SelectAll{}})
	flow := &Flow{Name: "outer"}
	flow.AddBranch(Branch{PointName: "A",
		Paths:  []Path{{Name: "p", Flow: inner}, {Name: "q", Flow: pathFlow("q")}},
		Select: SelectAll{}})
	out, err := flow.Run(&Context{}, newTestDesign())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(out) != 3 { // p→{x,y} + q
		t.Fatalf("designs = %d, want 3", len(out))
	}
}

func TestForkIndependence(t *testing.T) {
	d := newTestDesign()
	d.Report.KernelFlops = 42
	d.SharedMem = []string{"a"}
	d.Tracef("note", "orig", "first")
	f := d.Fork()
	f.Report.KernelFlops = 99
	f.SharedMem[0] = "b"
	f.Tracef("note", "fork", "second")
	if d.Report.KernelFlops != 42 {
		t.Error("fork shares report")
	}
	if d.SharedMem[0] != "a" {
		t.Error("fork shares shared-mem slice")
	}
	if len(d.Trace) != 1 {
		t.Error("fork shares trace")
	}
}

// TestForkDeepCopiesReport: forks must not share the report's reference
// fields (AliasPairs backing array, OuterDeps pointer) — parallel branch
// paths would race or cross-contaminate analyses through them.
func TestForkDeepCopiesReport(t *testing.T) {
	d := newTestDesign()
	d.Report.AliasPairs = [][2]string{{"a", "b"}}
	d.Report.OuterDeps = &analysis.LoopDeps{
		LoopID:     7,
		Var:        "i",
		Carried:    []analysis.Dependence{{Kind: analysis.DepScalar, Name: "s"}},
		Reductions: []analysis.Reduction{{Name: "acc"}},
	}
	f := d.Fork()
	if f.Report.OuterDeps == d.Report.OuterDeps {
		t.Fatal("fork shares *LoopDeps")
	}
	f.Report.AliasPairs[0] = [2]string{"x", "y"}
	f.Report.AliasPairs = append(f.Report.AliasPairs, [2]string{"p", "q"})
	f.Report.OuterDeps.Carried[0].Name = "mutated"
	f.Report.OuterDeps.Reductions[0].Name = "mutated"
	if d.Report.AliasPairs[0] != [2]string{"a", "b"} || len(d.Report.AliasPairs) != 1 {
		t.Errorf("fork mutated original alias pairs: %v", d.Report.AliasPairs)
	}
	if d.Report.OuterDeps.Carried[0].Name != "s" {
		t.Errorf("fork mutated original carried deps: %v", d.Report.OuterDeps.Carried)
	}
	if d.Report.OuterDeps.Reductions[0].Name != "acc" {
		t.Errorf("fork mutated original reductions: %v", d.Report.OuterDeps.Reductions)
	}
}

// TestForkDeepCopiesArtifacts: the HLS report and rendered artifact are
// per-design results; forks must own their copies.
func TestForkDeepCopiesArtifacts(t *testing.T) {
	d := newTestDesign()
	d.HLSReport = &hls.Report{Device: "A10", Unroll: 4}
	d.Artifact = &codegen.Design{Target: "oneapi", LOC: 10}
	f := d.Fork()
	f.HLSReport.Unroll = 8
	f.Artifact.LOC = 99
	if d.HLSReport.Unroll != 4 || d.Artifact.LOC != 10 {
		t.Errorf("fork shares artifacts: hls=%+v art=%+v", d.HLSReport, d.Artifact)
	}
}

// TestBudgetExhaustionRevisionCount: with MaxRevisions=N the branch does
// one initial selection plus exactly N revisions, the trace numbers them
// 1..N, and the terminal error reports the same N.
func TestBudgetExhaustionRevisionCount(t *testing.T) {
	selections := 0
	sel := SelectorFunc{SelName: "stubborn",
		Fn: func(ctx *Context, d *Design, paths []Path, excluded map[int]bool) ([]int, error) {
			selections++
			return []int{0}, nil // ignores exclusion, so the loop must bound it
		}}
	const maxRev = 2
	flow := &Flow{Name: "exhaust-count"}
	flow.AddBranch(Branch{PointName: "X",
		Paths:  []Path{{Name: "only", Flow: pathFlow("only")}},
		Select: sel, Gated: true, MaxRevisions: maxRev})
	d := newTestDesign()
	ctx := &Context{Budget: 1, Cost: func(*Design) float64 { return 50 }}
	_, err := flow.Run(ctx, d)
	if err == nil {
		t.Fatal("expected exhaustion error")
	}
	if want := fmt.Sprintf("exhausted %d revisions", maxRev); !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not report %q", err, want)
	}
	if selections != maxRev+1 {
		t.Errorf("selections = %d, want %d (initial + %d revisions)", selections, maxRev+1, maxRev)
	}
	trace := fmt.Sprint(d.Trace)
	for rev := 1; rev <= maxRev; rev++ {
		if !strings.Contains(trace, fmt.Sprintf("revision %d:", rev)) {
			t.Errorf("trace missing revision %d: %v", rev, trace)
		}
	}
	if strings.Contains(trace, fmt.Sprintf("revision %d:", maxRev+1)) {
		t.Errorf("trace numbers a revision beyond MaxRevisions: %v", trace)
	}
}

// TestStepErrorLeavesPriorDesignsIntact: the Step case must build its
// output in a fresh slice; reusing the input's backing array would let a
// mid-step failure (or a future drop/expand step) corrupt designs that
// were already processed.
func TestStepErrorLeavesPriorDesignsIntact(t *testing.T) {
	var visited []*Design
	flow := &Flow{Name: "midstep"}
	flow.AddBranch(Branch{
		PointName: "X",
		Paths: []Path{
			{Name: "a", Flow: pathFlow("a")},
			{Name: "b", Flow: pathFlow("b")},
			{Name: "c", Flow: pathFlow("c")},
		},
		Select: SelectAll{},
	})
	flow.AddTask(TaskFunc{TaskName: "fail-on-b", TaskKind: Transform,
		Fn: func(ctx *Context, d *Design) error {
			visited = append(visited, d)
			if d.Device == "b" {
				return errors.New("boom")
			}
			d.NumThreads = 32 // mark successful processing
			return nil
		}})
	_, err := flow.Run(&Context{}, newTestDesign())
	if err == nil {
		t.Fatal("expected mid-step error")
	}
	if len(visited) != 2 {
		t.Fatalf("visited %d designs before failing, want 2", len(visited))
	}
	first := visited[0]
	if first.Device != "a" || first.NumThreads != 32 {
		t.Errorf("prior design corrupted: device=%q threads=%d", first.Device, first.NumThreads)
	}
}

// TestFlowTelemetrySpans: a recorded run produces the flow → branch →
// path → task hierarchy and the fork counter.
func TestFlowTelemetrySpans(t *testing.T) {
	rec := telemetry.New()
	flow := &Flow{Name: "observed"}
	flow.AddTask(TaskFunc{TaskName: "prep", TaskKind: Analysis,
		Fn: func(*Context, *Design) error { return nil }})
	flow.AddBranch(Branch{
		PointName: "X",
		Paths:     []Path{{Name: "a", Flow: pathFlow("a")}, {Name: "b", Flow: pathFlow("b")}},
		Select:    SelectAll{},
	})
	if _, err := flow.Run(&Context{Telemetry: rec, Parallel: true}, newTestDesign()); err != nil {
		t.Fatal(err)
	}
	rep := rec.Snapshot()
	if len(rep.Spans) != 1 || rep.Spans[0].Kind != telemetry.KindFlow {
		t.Fatalf("roots = %+v", rep.Spans)
	}
	kinds := map[string]int64{}
	names := map[string]bool{}
	for _, st := range rep.Stats {
		kinds[st.Kind] += st.Calls
		names[st.Name] = true
	}
	if kinds[telemetry.KindTask] != 3 { // prep + 2 path stamps
		t.Errorf("task spans = %d, want 3 (%v)", kinds[telemetry.KindTask], rep.Stats)
	}
	if kinds[telemetry.KindBranch] != 1 || kinds[telemetry.KindPath] != 2 {
		t.Errorf("branch/path spans = %d/%d, want 1/2", kinds[telemetry.KindBranch], kinds[telemetry.KindPath])
	}
	if !names["X/a"] || !names["X/b"] || !names["stamp-a"] {
		t.Errorf("span names missing: %v", names)
	}
	if got := rec.Counter(telemetry.CounterDesignsForked); got != 2 {
		t.Errorf("designs forked = %d, want 2", got)
	}
}

func TestTaskKindStrings(t *testing.T) {
	want := map[TaskKind]string{Analysis: "A", Transform: "T", CodeGen: "CG", Optimisation: "O"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%v.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestDesignLabel(t *testing.T) {
	d := newTestDesign()
	d.Target = platform.TargetGPU
	if got := d.Label(); got != "test/gpu" {
		t.Errorf("label = %q", got)
	}
	d.Device = "X"
	if got := d.Label(); got != "test/gpu/X" {
		t.Errorf("label = %q", got)
	}
}

func TestTraceEventString(t *testing.T) {
	e := TraceEvent{Kind: "task", Name: "foo"}
	if e.String() != "[task] foo" {
		t.Errorf("got %q", e.String())
	}
	e.Detail = "bar"
	if e.String() != "[task] foo: bar" {
		t.Errorf("got %q", e.String())
	}
}

func TestFlowErrorUnwrap(t *testing.T) {
	inner := fmt.Errorf("inner")
	fe := &FlowError{Flow: "f", Task: "t", Err: inner}
	if !errors.Is(fe, inner) {
		t.Error("Unwrap broken")
	}
	if !strings.Contains(fe.Error(), "inner") {
		t.Errorf("message = %q", fe.Error())
	}
}

// TestParallelBranchMatchesSequential: parallel path evaluation produces
// the same designs in the same order as sequential.
func TestParallelBranchMatchesSequential(t *testing.T) {
	build := func() *Flow {
		flow := &Flow{Name: "fork"}
		flow.AddBranch(Branch{
			PointName: "X",
			Paths: []Path{
				{Name: "a", Flow: pathFlow("a")},
				{Name: "b", Flow: pathFlow("b")},
				{Name: "c", Flow: pathFlow("c")},
			},
			Select: SelectAll{},
		})
		return flow
	}
	seq, err := build().Run(&Context{}, newTestDesign())
	if err != nil {
		t.Fatal(err)
	}
	par, err := build().Run(&Context{Parallel: true}, newTestDesign())
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Device != par[i].Device {
			t.Errorf("order differs at %d: %q vs %q", i, seq[i].Device, par[i].Device)
		}
	}
}

// TestParallelBranchErrorPropagates: a failing path surfaces its error.
func TestParallelBranchErrorPropagates(t *testing.T) {
	bad := &Flow{Name: "bad"}
	bad.AddTask(TaskFunc{TaskName: "boom", TaskKind: Analysis,
		Fn: func(*Context, *Design) error { return errors.New("kaput") }})
	flow := &Flow{Name: "fork"}
	flow.AddBranch(Branch{
		PointName: "X",
		Paths:     []Path{{Name: "ok", Flow: pathFlow("ok")}, {Name: "bad", Flow: bad}},
		Select:    SelectAll{},
	})
	if _, err := flow.Run(&Context{Parallel: true}, newTestDesign()); err == nil {
		t.Fatal("expected error from parallel path")
	}
}

func TestDesignExport(t *testing.T) {
	dir := t.TempDir()
	d := newTestDesign()
	d.Device = "Test Device 1"
	d.Target = platform.TargetGPU
	d.Tracef("note", "x", "hello")
	out, err := d.Export(dir)
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	for _, f := range []string{"transformed.minic", "trace.log", "design.json"} {
		if _, err := os.Stat(filepath.Join(out, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
	data, err := os.ReadFile(filepath.Join(out, "design.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"target": "gpu"`) {
		t.Errorf("summary missing target:\n%s", data)
	}
	traceData, _ := os.ReadFile(filepath.Join(out, "trace.log"))
	if !strings.Contains(string(traceData), "hello") {
		t.Error("trace not exported")
	}
	if strings.ContainsAny(filepath.Base(out), "/ ") {
		t.Errorf("unsanitized dir name %q", out)
	}
}
