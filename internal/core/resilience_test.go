package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"psaflow/internal/faults"
	"psaflow/internal/telemetry"
)

// fastRetry keeps resilience tests quick: microsecond backoff.
var fastRetry = faults.RetryPolicy{
	MaxAttempts: 3,
	BaseDelay:   time.Microsecond,
	MaxDelay:    10 * time.Microsecond,
}

// resilientCtx returns a Context with resilience active (an enabled
// injector flips the engine's recovery tiers on) but whose injector is
// never consulted — the test tasks simulate faults themselves, keeping
// each scenario deterministic and explicit.
func resilientCtx(rec *telemetry.Recorder) *Context {
	return &Context{Faults: faults.New(1, 1), Retry: fastRetry, Telemetry: rec}
}

// transientFault builds the error a retry-worthy instrumented call site
// would surface.
func transientFault(op string) error {
	return &faults.Fault{Kind: faults.Run, Op: op, N: 1, Transient: true}
}

// deviceFault builds the non-transient fault of an unavailable target.
func deviceFault(op string) error {
	return &faults.Fault{Kind: faults.Device, Op: op, N: 1}
}

func TestRunTaskRetriesTransient(t *testing.T) {
	rec := telemetry.New()
	calls := 0
	flow := &Flow{Name: "retry"}
	flow.AddTask(TaskFunc{TaskName: "flaky", TaskKind: Analysis,
		Fn: func(*Context, *Design) error {
			calls++
			if calls < 3 {
				return transientFault("flaky")
			}
			return nil
		}})
	out, err := flow.Run(resilientCtx(rec), newTestDesign())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls != 3 || len(out) != 1 {
		t.Fatalf("calls=%d out=%d", calls, len(out))
	}
	if got := rec.Counter(telemetry.CounterRetryAttempts); got != 2 {
		t.Errorf("retry.attempts = %d, want 2", got)
	}
	if got := rec.Counter(telemetry.CounterRetryGiveups); got != 0 {
		t.Errorf("retry.giveups = %d, want 0", got)
	}
}

func TestRunTaskGiveupAfterMaxAttempts(t *testing.T) {
	rec := telemetry.New()
	calls := 0
	flow := &Flow{Name: "giveup"}
	flow.AddTask(TaskFunc{TaskName: "doomed", TaskKind: Analysis,
		Fn: func(*Context, *Design) error {
			calls++
			return transientFault("doomed")
		}})
	_, err := flow.Run(resilientCtx(rec), newTestDesign())
	if err == nil {
		t.Fatal("expected exhaustion error")
	}
	if calls != fastRetry.MaxAttempts {
		t.Fatalf("calls = %d, want %d", calls, fastRetry.MaxAttempts)
	}
	if !strings.Contains(err.Error(), "attempts exhausted") {
		t.Errorf("error %q does not report exhaustion", err)
	}
	// The exhausted error must keep its fault classification so a branch
	// above could still degrade the path.
	if !faults.Degradable(err) {
		t.Error("exhausted error lost its fault chain")
	}
	if got := rec.Counter(telemetry.CounterRetryGiveups); got != 1 {
		t.Errorf("retry.giveups = %d, want 1", got)
	}
}

func TestRunTaskNonTransientFailsFast(t *testing.T) {
	rec := telemetry.New()
	calls := 0
	flow := &Flow{Name: "fast-fail"}
	flow.AddTask(TaskFunc{TaskName: "device", TaskKind: Analysis,
		Fn: func(*Context, *Design) error {
			calls++
			return deviceFault("board0")
		}})
	if _, err := flow.Run(resilientCtx(rec), newTestDesign()); err == nil {
		t.Fatal("expected error")
	}
	if calls != 1 {
		t.Fatalf("non-transient fault retried: %d calls", calls)
	}
	if got := rec.Counter(telemetry.CounterRetryAttempts); got != 0 {
		t.Errorf("retry.attempts = %d, want 0", got)
	}
}

func TestRetryBudgetCapsFlowWideRetries(t *testing.T) {
	rec := telemetry.New()
	ctx := resilientCtx(rec)
	ctx.Retry = faults.RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   time.Microsecond,
		MaxDelay:    10 * time.Microsecond,
		Budget:      2,
	}
	calls := 0
	flow := &Flow{Name: "budgeted-retries"}
	flow.AddTask(TaskFunc{TaskName: "doomed", TaskKind: Analysis,
		Fn: func(*Context, *Design) error {
			calls++
			return transientFault("doomed")
		}})
	_, err := flow.Run(ctx, newTestDesign())
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
	// Initial attempt + Budget retries, then the next retry is denied.
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if got := rec.Counter(telemetry.CounterRetryBudgetExhausted); got != 1 {
		t.Errorf("retry.budget_exhausted = %d, want 1", got)
	}
	if got := rec.Counter(telemetry.CounterRetryAttempts); got != 2 {
		t.Errorf("retry.attempts = %d, want 2", got)
	}
}

func TestTaskTimeoutClassifiedAndRetried(t *testing.T) {
	rec := telemetry.New()
	ctx := &Context{TaskTimeout: 20 * time.Millisecond, Retry: fastRetry, Telemetry: rec}
	calls := 0
	flow := &Flow{Name: "timeouts"}
	flow.AddTask(TaskFunc{TaskName: "hang", TaskKind: Analysis,
		Fn: func(c *Context, _ *Design) error {
			calls++
			if calls == 1 {
				<-c.Ctx.Done() // simulate a hung tool invocation
				return c.Ctx.Err()
			}
			return nil
		}})
	out, err := flow.Run(ctx, newTestDesign())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls != 2 || len(out) != 1 {
		t.Fatalf("calls=%d out=%d", calls, len(out))
	}
	if got := rec.Counter(telemetry.CounterTaskTimeouts); got != 1 {
		t.Errorf("fault.task_timeouts = %d, want 1", got)
	}
	if got := rec.Counter(telemetry.CounterRetryAttempts); got != 1 {
		t.Errorf("retry.attempts = %d, want 1", got)
	}
}

func TestTaskTimeoutDoesNotMaskFlowCancellation(t *testing.T) {
	base, cancel := context.WithCancel(context.Background())
	ctx := &Context{Ctx: base, TaskTimeout: time.Minute, Retry: fastRetry}
	calls := 0
	flow := &Flow{Name: "cancelled"}
	flow.AddTask(TaskFunc{TaskName: "victim", TaskKind: Analysis,
		Fn: func(c *Context, _ *Design) error {
			calls++
			cancel() // the job is cancelled mid-task
			<-c.Ctx.Done()
			return c.Ctx.Err()
		}})
	_, err := flow.Run(ctx, newTestDesign())
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("cancelled task retried: %d calls", calls)
	}
}

// preferFirst is an informed-style selector: it picks the first
// non-excluded path, so fault fallbacks walk the preference order.
var preferFirst = SelectorFunc{SelName: "prefer-first",
	Fn: func(_ *Context, _ *Design, paths []Path, excluded map[int]bool) ([]int, error) {
		for i := range paths {
			if !excluded[i] {
				return []int{i}, nil
			}
		}
		return nil, nil
	}}

// failingPathFlow stamps the device like pathFlow, but fails with a
// non-transient device fault when the path's name is in bad.
func failingPathFlow(name string, bad map[string]bool) *Flow {
	f := &Flow{Name: name}
	f.AddTask(TaskFunc{TaskName: "stamp-" + name, TaskKind: Transform,
		Fn: func(_ *Context, d *Design) error {
			if bad[name] {
				return deviceFault(name)
			}
			d.Device = name
			return nil
		}})
	return f
}

// TestInformedFallbackOrdering is the satellite table test: with paths
// preferred a > b > c and 1..N of them failing, the branch must land on
// the first surviving path (or terminate unspecialized when all fail),
// reporting each failed path as an Infeasible verdict.
func TestInformedFallbackOrdering(t *testing.T) {
	cases := []struct {
		name       string
		bad        map[string]bool
		wantDevice string // "" = no surviving path, design unmodified
	}{
		{"first-fails", map[string]bool{"a": true}, "b"},
		{"first-two-fail", map[string]bool{"a": true, "b": true}, "c"},
		{"all-fail", map[string]bool{"a": true, "b": true, "c": true}, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := telemetry.New()
			flow := &Flow{Name: "informed"}
			flow.AddBranch(Branch{PointName: "X",
				Paths: []Path{
					{Name: "a", Flow: failingPathFlow("a", c.bad)},
					{Name: "b", Flow: failingPathFlow("b", c.bad)},
					{Name: "c", Flow: failingPathFlow("c", c.bad)},
				},
				Select: preferFirst})
			out, err := flow.Run(resilientCtx(rec), newTestDesign())
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			var survivors, verdicts []*Design
			for _, d := range out {
				if d.Infeasible != "" {
					verdicts = append(verdicts, d)
				} else {
					survivors = append(survivors, d)
				}
			}
			if len(survivors) != 1 {
				t.Fatalf("survivors = %d, want 1 (%v)", len(survivors), out)
			}
			if survivors[0].Device != c.wantDevice {
				t.Errorf("landed on %q, want %q", survivors[0].Device, c.wantDevice)
			}
			if len(verdicts) != len(c.bad) {
				t.Errorf("failure verdicts = %d, want %d", len(verdicts), len(c.bad))
			}
			for _, v := range verdicts {
				if !strings.Contains(v.Infeasible, "failed") {
					t.Errorf("verdict %q does not report the failure", v.Infeasible)
				}
			}
			if got := rec.Counter(telemetry.CounterFaultFallbacks); got != int64(len(c.bad)) {
				t.Errorf("fault.fallbacks = %d, want %d", got, len(c.bad))
			}
			if got := rec.Counter(telemetry.CounterFaultDegradations); got != int64(len(c.bad)) {
				t.Errorf("fault.degradations = %d, want %d", got, len(c.bad))
			}
		})
	}
}

// TestUninformedBranchReportsFailureVerdicts: SelectAll keeps the
// surviving versions and turns each failed path into an Infeasible
// verdict instead of aborting the generation sweep.
func TestUninformedBranchReportsFailureVerdicts(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		name := "sequential"
		if parallel {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			rec := telemetry.New()
			bad := map[string]bool{"b": true}
			flow := &Flow{Name: "uninformed"}
			flow.AddBranch(Branch{PointName: "X",
				Paths: []Path{
					{Name: "a", Flow: failingPathFlow("a", bad)},
					{Name: "b", Flow: failingPathFlow("b", bad)},
					{Name: "c", Flow: failingPathFlow("c", bad)},
				},
				Select: SelectAll{}})
			ctx := resilientCtx(rec)
			ctx.Parallel = parallel
			out, err := flow.Run(ctx, newTestDesign())
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if len(out) != 3 {
				t.Fatalf("designs = %d, want 3 (2 survivors + 1 verdict)", len(out))
			}
			devices := map[string]bool{}
			verdicts := 0
			for _, d := range out {
				if d.Infeasible != "" {
					verdicts++
					if !strings.Contains(d.Infeasible, `path "b" failed`) {
						t.Errorf("verdict = %q", d.Infeasible)
					}
					continue
				}
				devices[d.Device] = true
			}
			if verdicts != 1 || !devices["a"] || !devices["c"] {
				t.Errorf("verdicts=%d devices=%v", verdicts, devices)
			}
			if got := rec.Counter(telemetry.CounterFaultFallbacks); got != 0 {
				t.Errorf("multi-select recorded %d fallbacks, want 0", got)
			}
			if got := rec.Counter(telemetry.CounterFaultDegradations); got != 1 {
				t.Errorf("fault.degradations = %d, want 1", got)
			}
		})
	}
}

// TestNestedBranchAllFailFallsBack: when every path of a nested
// multi-select branch fails, the enclosing informed branch treats the
// whole sub-flow as failed and falls back to its next-best path — the
// "both GPUs unavailable → strategy retargets" scenario.
func TestNestedBranchAllFailFallsBack(t *testing.T) {
	rec := telemetry.New()
	bad := map[string]bool{"dev0": true, "dev1": true}
	inner := &Flow{Name: "devices"}
	inner.AddBranch(Branch{PointName: "B",
		Paths: []Path{
			{Name: "dev0", Flow: failingPathFlow("dev0", bad)},
			{Name: "dev1", Flow: failingPathFlow("dev1", bad)},
		},
		Select: SelectAll{}})
	outer := &Flow{Name: "targets"}
	outer.AddBranch(Branch{PointName: "A",
		Paths: []Path{
			{Name: "accel", Flow: inner},
			{Name: "cpu", Flow: pathFlow("cpu")},
		},
		Select: preferFirst})
	out, err := outer.Run(resilientCtx(rec), newTestDesign())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var survivor *Design
	verdicts := 0
	for _, d := range out {
		if d.Infeasible != "" {
			verdicts++
			if !strings.Contains(d.Infeasible, "all 2 selected paths failed") {
				t.Errorf("verdict = %q", d.Infeasible)
			}
			continue
		}
		survivor = d
	}
	if survivor == nil || survivor.Device != "cpu" {
		t.Fatalf("fallback did not land on cpu: %v", out)
	}
	if verdicts != 1 {
		t.Errorf("verdicts = %d, want 1 (the degraded accel sub-flow)", verdicts)
	}
	if got := rec.Counter(telemetry.CounterFaultFallbacks); got != 1 {
		t.Errorf("fault.fallbacks = %d, want 1", got)
	}
}

// TestDegradationDisabledWithoutResilience: with injection off and no
// task timeout, a fault-shaped error still aborts the flow — the
// pre-resilience contract.
func TestDegradationDisabledWithoutResilience(t *testing.T) {
	flow := &Flow{Name: "strict"}
	flow.AddBranch(Branch{PointName: "X",
		Paths:  []Path{{Name: "a", Flow: failingPathFlow("a", map[string]bool{"a": true})}},
		Select: preferFirst})
	if _, err := flow.Run(&Context{}, newTestDesign()); err == nil {
		t.Fatal("expected failure to abort without resilience")
	}
}

// TestFailPointCounters: an injector wired through the Context records
// both the aggregate and the per-kind injection counters.
func TestFailPointCounters(t *testing.T) {
	rec := telemetry.New()
	ctx := &Context{Faults: faults.New(1, 1), Telemetry: rec}
	if err := ctx.FailPoint(faults.HLS, "devA"); err == nil {
		t.Fatal("rate=1 injector did not fire")
	}
	if err := ctx.FailPoint(faults.Run, "run:gpu:main"); err == nil {
		t.Fatal("rate=1 injector did not fire")
	}
	if got := rec.Counter(telemetry.CounterFaultsInjected); got != 2 {
		t.Errorf("fault.injected = %d, want 2", got)
	}
	if got := rec.Counter(telemetry.FaultCounter("hls")); got != 1 {
		t.Errorf("fault.injected.hls = %d, want 1", got)
	}
}

// TestResilientSingleSelectForks: with resilience active, even a single
// selected path runs on a fork so a fallback can restart from the
// pristine design.
func TestResilientSingleSelectForks(t *testing.T) {
	rec := telemetry.New()
	flow := &Flow{Name: "fork-check"}
	flow.AddBranch(Branch{PointName: "X",
		Paths:  []Path{{Name: "a", Flow: pathFlow("a")}},
		Select: preferFirst})

	if _, err := flow.Run(&Context{Telemetry: rec}, newTestDesign()); err != nil {
		t.Fatal(err)
	}
	if got := rec.Counter(telemetry.CounterDesignsForked); got != 0 {
		t.Fatalf("non-resilient single select forked %d times, want 0", got)
	}

	rec2 := telemetry.New()
	if _, err := flow.Run(resilientCtx(rec2), newTestDesign()); err != nil {
		t.Fatal(err)
	}
	if got := rec2.Counter(telemetry.CounterDesignsForked); got != 1 {
		t.Fatalf("resilient single select forked %d times, want 1", got)
	}
}

// TestSpanNotesRecordRecovery: retry annotations surface in the span
// snapshot so operators can see a flow's recovery history.
func TestSpanNotesRecordRecovery(t *testing.T) {
	rec := telemetry.New()
	calls := 0
	flow := &Flow{Name: "noted"}
	flow.AddTask(TaskFunc{TaskName: "flaky", TaskKind: Analysis,
		Fn: func(*Context, *Design) error {
			calls++
			if calls == 1 {
				return transientFault("flaky")
			}
			return nil
		}})
	if _, err := flow.Run(resilientCtx(rec), newTestDesign()); err != nil {
		t.Fatal(err)
	}
	var notes []string
	var walk func(s telemetry.SpanSnapshot)
	walk = func(s telemetry.SpanSnapshot) {
		notes = append(notes, s.Notes...)
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, s := range rec.Snapshot().Spans {
		walk(s)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "retry 1") {
		t.Fatalf("span notes = %v", notes)
	}
}
