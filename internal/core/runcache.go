package core

import (
	"sync"
	"sync/atomic"

	"psaflow/internal/interp"
)

// The profiled-run cache. The target-independent analyses (tindep.go in
// internal/tasks) execute the same program on the same workload up to five
// times per branch path — hotspot identification, pointer analysis,
// data-in/out, trip counts, dependence re-verification — and sibling paths
// forked at a branch point repeat the identical runs on identical program
// copies. RunCache memoizes those executions on the Context, keyed by a
// deterministic AST fingerprint (minic.Fingerprint) plus workload
// identity, so an unchanged program runs once and every other consumer
// reuses the profiled interp.Result. Transform rewrites change the
// fingerprint, invalidating automatically.

// RunKey identifies one profiled interpreter execution.
type RunKey struct {
	// Fingerprint is minic.Fingerprint of the program that would run.
	Fingerprint uint64
	// Workload names the workload supplying the entry arguments.
	Workload string
	// Entry is the entry function name.
	Entry string
	// Watch is the watched function, normalized the way interp.Run
	// normalizes it (the empty string means the entry).
	Watch string
}

type runEntry struct {
	once sync.Once
	res  *interp.Result
	err  error
}

// RunCache memoizes profiled interpreter runs across the dynamic analyses
// of one flow, or a whole experiment sweep. It is safe for concurrent use:
// branch paths forked under Context.Parallel share one cache, and a
// per-key sync.Once collapses concurrent first requests into a single
// execution (singleflight), so no run is ever duplicated by a race.
// Cached Results are shared between consumers and must be treated as
// read-only, which every bundled task does.
type RunCache struct {
	mu      sync.Mutex
	entries map[RunKey]*runEntry
	hits    atomic.Int64
	misses  atomic.Int64
}

// NewRunCache returns an empty cache.
func NewRunCache() *RunCache {
	return &RunCache{entries: make(map[RunKey]*runEntry)}
}

// Do returns the memoized result for key, calling run — exactly once per
// key, even under concurrency — to produce it on first request. hit
// reports whether this call avoided an execution. Errors are cached too:
// the interpreter is deterministic, so a failing program fails identically
// on re-execution. A nil cache always executes.
func (c *RunCache) Do(key RunKey, run func() (*interp.Result, error)) (res *interp.Result, err error, hit bool) {
	if c == nil {
		res, err = run()
		return res, err, false
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &runEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	executed := false
	e.once.Do(func() {
		e.res, e.err = run()
		executed = true
	})
	if executed {
		c.misses.Add(1)
		return e.res, e.err, false
	}
	c.hits.Add(1)
	return e.res, e.err, true
}

// Forget drops the entry for key so a later Do re-executes it. The serving
// layer needs it for cancellation hygiene: Do caches errors on the premise
// that the interpreter is deterministic, but a run aborted by one job's
// deadline says nothing about the program, and a process-wide cache shared
// across jobs must not replay that abort into other jobs.
func (c *RunCache) Forget(key RunKey) {
	if c == nil {
		return
	}
	c.mu.Lock()
	delete(c.entries, key)
	c.mu.Unlock()
}

// Stats returns the cumulative hit and miss counts.
func (c *RunCache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of distinct runs cached.
func (c *RunCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
