package core

import (
	"sync"
	"sync/atomic"

	"psaflow/internal/interp"
)

// The profiled-run cache. The target-independent analyses (tindep.go in
// internal/tasks) execute the same program on the same workload up to five
// times per branch path — hotspot identification, pointer analysis,
// data-in/out, trip counts, dependence re-verification — and sibling paths
// forked at a branch point repeat the identical runs on identical program
// copies. RunCache memoizes those executions on the Context, keyed by a
// deterministic AST fingerprint (minic.Fingerprint) plus workload
// identity, so an unchanged program runs once and every other consumer
// reuses the profiled interp.Result. Transform rewrites change the
// fingerprint, invalidating automatically.

// RunKey identifies one profiled interpreter execution.
type RunKey struct {
	// Fingerprint is minic.Fingerprint of the program that would run.
	Fingerprint uint64
	// Workload names the workload supplying the entry arguments.
	Workload string
	// Entry is the entry function name.
	Entry string
	// Watch is the watched function, normalized the way interp.Run
	// normalizes it (the empty string means the entry).
	Watch string
}

type runEntry struct {
	once sync.Once
	res  *interp.Result
	err  error
}

// RunPeer is the distributed read-through hook (implemented by
// cluster.Node). On a local miss the cache asks the peer layer before
// computing, and publishes successful computations back. Both calls are
// best-effort by contract: a Fetch that cannot reach its peer reports a
// miss, a failed Fill is dropped — peer loss degrades the cache to
// per-node behaviour, it never surfaces as an error.
type RunPeer interface {
	// FetchRun returns the cluster's cached result for key, if any node
	// holds one. It may block briefly (bounded by the peer layer's wait
	// budget) when another node is computing the same key right now.
	FetchRun(key RunKey) (*interp.Result, bool)
	// FillRun publishes a locally computed result for key.
	FillRun(key RunKey, res *interp.Result)
}

// RunCache memoizes profiled interpreter runs across the dynamic analyses
// of one flow, or a whole experiment sweep. It is safe for concurrent use:
// branch paths forked under Context.Parallel share one cache, and a
// per-key sync.Once collapses concurrent first requests into a single
// execution (singleflight), so no run is ever duplicated by a race.
// Cached Results are shared between consumers and must be treated as
// read-only, which every bundled task does.
type RunCache struct {
	mu      sync.Mutex
	entries map[RunKey]*runEntry
	peer    RunPeer // nil on a single-node cache
	hits    atomic.Int64
	misses  atomic.Int64
	// peerHits counts executions avoided by a cluster fetch (reported as
	// hits to callers — the run was avoided — but split out here so the
	// local and distributed contributions stay distinguishable).
	peerHits atomic.Int64
}

// SetPeer wires the distributed read-through hook. Call before the
// cache is shared (the serving layer does it at construction).
func (c *RunCache) SetPeer(p RunPeer) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.peer = p
	c.mu.Unlock()
}

// NewRunCache returns an empty cache.
func NewRunCache() *RunCache {
	return &RunCache{entries: make(map[RunKey]*runEntry)}
}

// Do returns the memoized result for key, calling run — exactly once per
// key, even under concurrency — to produce it on first request. hit
// reports whether this call avoided an execution. Errors are cached too:
// the interpreter is deterministic, so a failing program fails identically
// on re-execution. A nil cache always executes.
func (c *RunCache) Do(key RunKey, run func() (*interp.Result, error)) (res *interp.Result, err error, hit bool) {
	if c == nil {
		res, err = run()
		return res, err, false
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &runEntry{}
		c.entries[key] = e
	}
	peer := c.peer
	c.mu.Unlock()
	executed, fromPeer := false, false
	e.once.Do(func() {
		// Local miss: ask the cluster before computing. The peer call is
		// inside the singleflight on purpose — concurrent local callers
		// collapse to one fetch, exactly as they collapse to one run.
		if peer != nil {
			if res, ok := peer.FetchRun(key); ok {
				e.res = res
				fromPeer = true
				return
			}
		}
		e.res, e.err = run()
		executed = true
		if peer != nil && e.err == nil {
			peer.FillRun(key, e.res)
		}
	})
	if executed {
		c.misses.Add(1)
		return e.res, e.err, false
	}
	if fromPeer {
		c.peerHits.Add(1)
	}
	c.hits.Add(1)
	return e.res, e.err, true
}

// Forget drops the entry for key so a later Do re-executes it. The serving
// layer needs it for cancellation hygiene: Do caches errors on the premise
// that the interpreter is deterministic, but a run aborted by one job's
// deadline says nothing about the program, and a process-wide cache shared
// across jobs must not replay that abort into other jobs.
func (c *RunCache) Forget(key RunKey) {
	if c == nil {
		return
	}
	c.mu.Lock()
	delete(c.entries, key)
	c.mu.Unlock()
}

// Stats returns the cumulative hit and miss counts.
func (c *RunCache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// PeerHits returns how many of the hits were served by the cluster
// (executions this node avoided because a peer had already profiled the
// key). Always ≤ Stats' hits.
func (c *RunCache) PeerHits() int64 {
	if c == nil {
		return 0
	}
	return c.peerHits.Load()
}

// Len returns the number of distinct runs cached.
func (c *RunCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
