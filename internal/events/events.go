// Package events is the live flow-observability channel: a typed job
// event model plus a per-job ring-buffered broker that fans events out to
// any number of stream subscribers. The engine's telemetry spans explain a
// finished run; events explain a run *while it happens* — the queued →
// started → task/branch/DSE/fault progression the paper's PSA-flows exist
// to make explicit, delivered to clients as it occurs.
//
// The broker holds a bounded ring of the most recent events. Late
// subscribers replay the retained history from any sequence number and
// then follow the live tail; subscribers too slow for the ring lose the
// oldest events and are told exactly how many (drop-count accounting), so
// a consumer always knows whether its view is complete. Publishing never
// blocks on a subscriber, so one stalled watcher cannot slow a flow.
package events

import (
	"encoding/json"
	"sync"
	"time"
)

// Event types, in rough lifecycle order. The lifecycle types (queued,
// started, done, failed, cancelled) are published by the serving layer;
// the execution types are emitted by the engine through the telemetry
// recorder's event sink.
const (
	TypeQueued         = "queued"          // job accepted into the queue
	TypeStarted        = "started"         // a worker began executing the flow
	TypeTaskStart      = "task_start"      // a flow task span opened
	TypeTaskEnd        = "task_end"        // a flow task span closed (dur_ms set)
	TypeBranchDecision = "branch_decision" // a branch-point selector chose path(s)
	TypeDSEProgress    = "dse_progress"    // a DSE sweep advanced / concluded
	TypeFaultInjected  = "fault_injected"  // the fault injector fired at a tool site
	TypeRetry          = "retry"           // a transient task failure is being retried
	TypeDegraded       = "degraded"        // a branch path was degraded to Infeasible
	TypeNote           = "note"            // free-form span annotation (resilience detail)
	TypeDone           = "done"            // terminal: flow completed
	TypeFailed         = "failed"          // terminal: flow failed (detail = error)
	TypeCancelled      = "cancelled"       // terminal: job cancelled
)

// Event is one observation in a job's stream. Seq is assigned by the
// broker and is dense per job (0, 1, 2, ...), so `?from=<seq>` resume and
// gap detection are both exact. The JSON shape is the NDJSON/SSE wire
// format served by GET /v1/jobs/{id}/events.
type Event struct {
	Seq    uint64  `json:"seq"`
	TS     string  `json:"ts"` // RFC3339Nano, UTC, stamped at publish
	Type   string  `json:"type"`
	Job    string  `json:"job,omitempty"`
	Name   string  `json:"name,omitempty"`   // task/branch/sweep the event is about
	Detail string  `json:"detail,omitempty"` // free-form context (path chosen, error, ...)
	DurMS  float64 `json:"dur_ms,omitempty"` // task_end and terminal events
}

// Frame is an event plus its canonical wire encoding. The broker
// marshals each event exactly once at publish time and every subscriber
// shares the bytes — with hundreds of watchers on one job, per-watcher
// re-marshaling would dominate streaming cost — and it makes the
// replay-equals-live guarantee literal: the same Line bytes are served to
// every subscriber at every point in time.
type Frame struct {
	Event
	Line []byte // compact JSON of Event, no trailing newline; do not mutate
}

// Defaults applied when NewBroker is given non-positive sizes.
const (
	DefaultRingSize = 1024
	DefaultMaxSubs  = 1024
)

// Broker is one job's event hub: a fixed-capacity ring of the newest
// events plus the live subscriber set. All methods are safe for
// concurrent use; Publish is called from parallel branch-path goroutines.
type Broker struct {
	job string
	now func() time.Time // injectable clock for tests

	mu      sync.Mutex
	buf     []Frame // ring storage; slot = seq % cap(buf)
	head    uint64  // seq of the oldest event still retained
	next    uint64  // seq the next Publish will assign (== total published)
	closed  bool
	maxSubs int
	subs    map[*Sub]struct{}
	dropped uint64 // drops folded in from closed subscribers
}

// NewBroker builds a broker retaining the last ringSize events and
// admitting at most maxSubs concurrent subscribers (non-positive values
// take the defaults).
func NewBroker(job string, ringSize, maxSubs int) *Broker {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	if maxSubs <= 0 {
		maxSubs = DefaultMaxSubs
	}
	return &Broker{
		job:     job,
		now:     time.Now,
		buf:     make([]Frame, 0, ringSize),
		maxSubs: maxSubs,
		subs:    make(map[*Sub]struct{}),
	}
}

// Publish stamps e with the next sequence number, the wall clock, and the
// job ID, appends it to the ring (evicting the oldest event when full),
// and wakes subscribers. Publishing to a closed broker is a no-op (a
// worker racing a queued-cancel must not resurrect the stream). Returns
// whether the event was accepted.
func (b *Broker) Publish(e Event) bool {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return false
	}
	e.Seq = b.next
	e.TS = b.now().UTC().Format(time.RFC3339Nano)
	e.Job = b.job
	b.next++
	line, _ := json.Marshal(e) // Event is strings + numbers; cannot fail
	f := Frame{Event: e, Line: line}
	if len(b.buf) < cap(b.buf) {
		b.buf = append(b.buf, f)
	} else {
		b.buf[e.Seq%uint64(cap(b.buf))] = f
		b.head++
	}
	subs := make([]*Sub, 0, len(b.subs))
	for s := range b.subs {
		subs = append(subs, s)
	}
	b.mu.Unlock()
	for _, s := range subs {
		s.wake()
	}
	return true
}

// Close ends the stream: subscribers drain the retained ring and then see
// the end of stream. Idempotent. The ring is kept so late subscribers can
// still replay a finished job's history until the broker is dropped.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := make([]*Sub, 0, len(b.subs))
	for s := range b.subs {
		subs = append(subs, s)
	}
	b.mu.Unlock()
	for _, s := range subs {
		s.wake()
	}
}

// Subscribe attaches a subscriber whose cursor starts at sequence number
// from (0 = everything retained). Subscribing to a closed broker is
// allowed — the subscriber replays the ring and immediately reaches end
// of stream. Returns false when the broker is at its subscriber cap.
func (b *Broker) Subscribe(from uint64) (*Sub, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.subs) >= b.maxSubs {
		return nil, false
	}
	if from > b.next {
		// A resume point past the tail (stale client state) starts at the
		// live edge instead of waiting for a seq that may never arrive.
		from = b.next
	}
	s := &Sub{b: b, cursor: from, notify: make(chan struct{}, 1)}
	b.subs[s] = struct{}{}
	return s, true
}

// Stats reports the broker's lifetime publish count, total events dropped
// (folded in from closed subscribers plus live subscribers' current
// gaps), and the live subscriber count.
func (b *Broker) Stats() (published, dropped uint64, subs int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	dropped = b.dropped
	for s := range b.subs {
		dropped += s.dropped
	}
	return b.next, dropped, len(b.subs)
}

// Sub is one subscriber's cursor into a broker's stream. Not safe for
// concurrent use by multiple goroutines (each stream handler owns one).
type Sub struct {
	b      *Broker
	notify chan struct{}

	cursor  uint64 // next seq to deliver
	dropped uint64 // events the ring evicted before this sub read them
	closed  bool
}

// wake is the broker's non-blocking notification (cap-1 channel: a
// pending wake already covers any number of new events).
func (s *Sub) wake() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Ready returns the wake channel: it receives after new events are
// published or the broker closes. After draining it, call Poll again —
// the channel is a level trigger collapsed to one token.
func (s *Sub) Ready() <-chan struct{} { return s.notify }

// Poll returns up to max buffered frames at the cursor and whether the
// stream is over (broker closed and fully drained). If the ring evicted
// events the subscriber had not read yet, the cursor jumps forward and
// the loss is added to Dropped — delivery resumes at the oldest retained
// event, never blocks, and never delivers out of order.
func (s *Sub) Poll(max int) (frames []Frame, done bool) {
	b := s.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if s.cursor < b.head {
		s.dropped += b.head - s.cursor
		s.cursor = b.head
	}
	for s.cursor < b.next && len(frames) < max {
		frames = append(frames, b.buf[s.cursor%uint64(cap(b.buf))])
		s.cursor++
	}
	return frames, b.closed && s.cursor == b.next
}

// Dropped returns how many events this subscriber lost to ring eviction
// (including any gap between its requested start and the retained ring).
func (s *Sub) Dropped() uint64 { return s.dropped }

// Close detaches the subscriber, folding its drop count into the broker
// total, and returns that drop count. Idempotent.
func (s *Sub) Close() uint64 {
	b := s.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if !s.closed {
		s.closed = true
		b.dropped += s.dropped
		delete(b.subs, s)
	}
	return s.dropped
}
