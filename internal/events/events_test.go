package events

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

func fixedClock() func() time.Time {
	base := time.Date(2024, 6, 1, 12, 0, 0, 0, time.UTC)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}

func publishN(t *testing.T, b *Broker, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if !b.Publish(Event{Type: TypeNote, Name: fmt.Sprintf("e%d", i)}) {
			t.Fatalf("publish %d rejected", i)
		}
	}
}

func drain(t *testing.T, s *Sub) ([]Event, bool) {
	t.Helper()
	var all []Event
	for {
		frames, done := s.Poll(3) // small batch to exercise repeated polls
		for _, f := range frames {
			all = append(all, f.Event)
		}
		if len(frames) == 0 {
			return all, done
		}
		if done {
			return all, true
		}
	}
}

func TestPublishStampsDenseSeqAndJob(t *testing.T) {
	b := NewBroker("job-1", 8, 4)
	b.now = fixedClock()
	publishN(t, b, 3)
	sub, ok := b.Subscribe(0)
	if !ok {
		t.Fatal("subscribe failed")
	}
	evs, done := drain(t, sub)
	if done {
		t.Fatal("stream reported done while broker open")
	}
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i) {
			t.Errorf("event %d: seq=%d", i, e.Seq)
		}
		if e.Job != "job-1" {
			t.Errorf("event %d: job=%q", i, e.Job)
		}
		if e.TS == "" {
			t.Errorf("event %d: no timestamp", i)
		}
	}
}

// A subscriber that arrives after events were published must see exactly
// what a live subscriber saw: same events, same seqs, same marshalled
// bytes (the stream endpoint's replay guarantee rides on this).
func TestLateSubscriberReplayMatchesLive(t *testing.T) {
	b := NewBroker("job-replay", 64, 4)
	b.now = fixedClock()
	live, _ := b.Subscribe(0)
	var liveEvs []Event
	var liveLines [][]byte
	for i := 0; i < 10; i++ {
		publishN(t, b, 1)
		frames, _ := live.Poll(16)
		for _, f := range frames {
			liveEvs = append(liveEvs, f.Event)
			liveLines = append(liveLines, f.Line)
		}
	}
	b.Close()
	if _, done := live.Poll(16); !done {
		t.Fatal("live subscriber did not see close")
	}

	late, ok := b.Subscribe(0)
	if !ok {
		t.Fatal("subscribe after close failed")
	}
	lateEvs, done := drain(t, late)
	if !done {
		t.Fatal("late subscriber did not reach end of stream")
	}
	if !reflect.DeepEqual(liveEvs, lateEvs) {
		t.Fatalf("replay diverged from live view:\nlive: %+v\nlate: %+v", liveEvs, lateEvs)
	}
	// The shared pre-marshalled lines make the wire-bytes guarantee exact.
	lateSub, _ := b.Subscribe(0)
	lateFrames, _ := lateSub.Poll(64)
	for i, f := range lateFrames {
		if !bytes.Equal(f.Line, liveLines[i]) {
			t.Fatalf("frame %d wire bytes diverged: live %s late %s", i, liveLines[i], f.Line)
		}
		var decoded Event
		if err := json.Unmarshal(f.Line, &decoded); err != nil || decoded != f.Event {
			t.Fatalf("frame %d line does not decode to its event: %s (err %v)", i, f.Line, err)
		}
	}
}

func TestResumeFromSeq(t *testing.T) {
	b := NewBroker("job-resume", 64, 4)
	publishN(t, b, 10)
	sub, _ := b.Subscribe(7)
	evs, _ := drain(t, sub)
	if len(evs) != 3 || evs[0].Seq != 7 {
		t.Fatalf("resume from 7: got %d events starting at seq %d", len(evs), evs[0].Seq)
	}
	if sub.Dropped() != 0 {
		t.Fatalf("resume inside ring counted %d drops", sub.Dropped())
	}

	// Resume past the tail clamps to the live edge rather than hanging.
	b.Close()
	past, _ := b.Subscribe(99)
	frames, done := past.Poll(16)
	if len(frames) != 0 || !done {
		t.Fatalf("resume past tail: got %d events, done=%t", len(frames), done)
	}
}

// A subscriber slower than the ring loses the oldest events and is told
// exactly how many; delivery resumes in order at the oldest retained seq.
func TestSlowSubscriberDropAccounting(t *testing.T) {
	b := NewBroker("job-slow", 4, 4)
	sub, _ := b.Subscribe(0)
	publishN(t, b, 10) // ring holds seqs 6..9; sub missed 0..5
	evs, _ := drain(t, sub)
	if sub.Dropped() != 6 {
		t.Fatalf("dropped=%d, want 6", sub.Dropped())
	}
	if len(evs) != 4 || evs[0].Seq != 6 || evs[3].Seq != 9 {
		t.Fatalf("delivered wrong window: %+v", evs)
	}
	// Closing folds the sub's drops into the broker total.
	if got := sub.Close(); got != 6 {
		t.Fatalf("Close returned %d, want 6", got)
	}
	_, dropped, subs := b.Stats()
	if dropped != 6 || subs != 0 {
		t.Fatalf("Stats after close: dropped=%d subs=%d", dropped, subs)
	}
}

func TestMaxSubscribers(t *testing.T) {
	b := NewBroker("job-cap", 8, 2)
	s1, ok1 := b.Subscribe(0)
	_, ok2 := b.Subscribe(0)
	if !ok1 || !ok2 {
		t.Fatal("first two subscribes should succeed")
	}
	if _, ok := b.Subscribe(0); ok {
		t.Fatal("third subscribe should be rejected at cap 2")
	}
	s1.Close()
	if _, ok := b.Subscribe(0); !ok {
		t.Fatal("subscribe after a slot freed should succeed")
	}
}

func TestPublishAfterCloseRejected(t *testing.T) {
	b := NewBroker("job-closed", 8, 4)
	publishN(t, b, 2)
	b.Close()
	b.Close() // idempotent
	if b.Publish(Event{Type: TypeNote}) {
		t.Fatal("publish after close accepted")
	}
	published, _, _ := b.Stats()
	if published != 2 {
		t.Fatalf("published=%d, want 2", published)
	}
	// The ring survives close: a late subscriber still replays history.
	sub, _ := b.Subscribe(0)
	evs, done := drain(t, sub)
	if len(evs) != 2 || !done {
		t.Fatalf("post-close replay: %d events, done=%t", len(evs), done)
	}
}

func TestSubCloseIdempotent(t *testing.T) {
	b := NewBroker("job-subclose", 2, 4)
	sub, _ := b.Subscribe(0)
	publishN(t, b, 5) // 3 drops for an unread sub at cursor 0
	sub.Poll(16)
	if sub.Close() != 3 || sub.Close() != 3 {
		t.Fatal("Close not idempotent")
	}
	_, dropped, _ := b.Stats()
	if dropped != 3 {
		t.Fatalf("double Close double-counted drops: %d", dropped)
	}
}

// Concurrent publishers and pollers, meant for -race: every subscriber
// must account for all events as delivered + dropped, in order.
func TestConcurrentPublishSubscribe(t *testing.T) {
	const (
		publishers = 4
		perPub     = 200
		watchers   = 8
	)
	b := NewBroker("job-race", 32, watchers+1)

	var wg sync.WaitGroup
	results := make([]struct {
		got     uint64
		dropped uint64
		ordered bool
	}, watchers)
	for w := 0; w < watchers; w++ {
		sub, ok := b.Subscribe(0)
		if !ok {
			t.Fatalf("watcher %d: subscribe failed", w)
		}
		wg.Add(1)
		go func(w int, sub *Sub) {
			defer wg.Done()
			ordered := true
			var got uint64
			last := -1
			for {
				evs, done := sub.Poll(16)
				for _, e := range evs {
					if int(e.Seq) <= last {
						ordered = false
					}
					last = int(e.Seq)
					got++
				}
				if done {
					break
				}
				if len(evs) == 0 {
					<-sub.Ready()
				}
			}
			results[w].got = got
			results[w].dropped = sub.Close()
			results[w].ordered = ordered
		}(w, sub)
	}

	var pubWG sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func(p int) {
			defer pubWG.Done()
			for i := 0; i < perPub; i++ {
				b.Publish(Event{Type: TypeDSEProgress, Name: fmt.Sprintf("p%d-%d", p, i)})
			}
		}(p)
	}
	pubWG.Wait()
	b.Close()
	wg.Wait()

	const total = publishers * perPub
	published, _, _ := b.Stats()
	if published != total {
		t.Fatalf("published=%d, want %d", published, total)
	}
	for w, r := range results {
		if !r.ordered {
			t.Errorf("watcher %d: out-of-order delivery", w)
		}
		if r.got+r.dropped != total {
			t.Errorf("watcher %d: got %d + dropped %d != %d", w, r.got, r.dropped, total)
		}
	}
}
