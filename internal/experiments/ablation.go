package experiments

import (
	"fmt"
	"strings"

	"psaflow/internal/bench"
	"psaflow/internal/core"
	"psaflow/internal/platform"
	"psaflow/internal/tasks"
)

// Ablations quantify the design choices the paper's flow makes: each row
// re-runs one benchmark's device path with one optimisation task removed
// (or, for resource sharing, added) and reports the speedup delta.

// AblationRow is one ablation result.
type AblationRow struct {
	Name      string // what was ablated
	Benchmark string
	Device    string
	Baseline  float64 // speedup with the paper's flow
	Ablated   float64 // speedup with the variant
	Note      string
}

// runVariantFPGA pushes a benchmark through the target-independent front
// plus a custom FPGA device flow and evaluates it at deployment scale.
func runVariantFPGA(b *bench.Benchmark, dev platform.FPGASpec, build func() *core.Flow) (DesignResult, error) {
	design := core.NewDesign(b.Name, b.Parse())
	ctx := &core.Context{Workload: bench.Workload{B: b}, CPU: platform.EPYC7543}
	flow := &core.Flow{Name: "ablation"}
	for _, t := range tasks.TargetIndependent() {
		flow.AddTask(t)
	}
	flow.AddBranch(core.Branch{
		PointName: "A",
		Paths:     []core.Path{{Name: "fpga", Flow: build()}},
		Select:    core.SelectAll{},
	})
	leaves, err := flow.Run(ctx, design)
	if err != nil {
		return DesignResult{}, err
	}
	if len(leaves) != 1 {
		return DesignResult{}, fmt.Errorf("ablation produced %d designs", len(leaves))
	}
	return evalDesign(ctx.CPU, leaves[0], b.Scale), nil
}

// fpgaFlowVariant builds the paper's FPGA device path with optional task
// omissions.
func fpgaFlowVariant(dev platform.FPGASpec, skipSP, skipZeroCopy, skipUnrollFixed bool) func() *core.Flow {
	return func() *core.Flow {
		f := &core.Flow{Name: "fpga-variant/" + dev.Name}
		f.AddTask(tasks.GenerateOneAPI)
		if !skipUnrollFixed {
			f.AddTask(tasks.UnrollFixedLoopsTask)
		}
		if !skipSP {
			f.AddTask(tasks.SinglePrecisionFns)
			f.AddTask(tasks.SinglePrecisionLiterals)
		}
		f.AddTask(tasks.VerifyKernelRuns)
		if dev.USM && !skipZeroCopy {
			f.AddTask(tasks.ZeroCopy(dev))
		}
		f.AddTask(tasks.UnrollUntilOvermap(dev))
		f.AddTask(tasks.RenderDesign)
		return f
	}
}

// gpuFlowVariant builds the paper's GPU device path with optional task
// omissions.
func gpuFlowVariant(dev platform.GPUSpec, skipPinned, skipSP, skipFastMath bool) func() *core.Flow {
	return func() *core.Flow {
		f := &core.Flow{Name: "gpu-variant/" + dev.Name}
		f.AddTask(tasks.GenerateHIP)
		if !skipPinned {
			f.AddTask(tasks.PinnedMemory)
		}
		if !skipSP {
			f.AddTask(tasks.SinglePrecisionFns)
			f.AddTask(tasks.SinglePrecisionLiterals)
		}
		f.AddTask(tasks.SharedMemBuffer)
		if !skipFastMath {
			f.AddTask(tasks.SpecialisedMathFns)
		}
		f.AddTask(tasks.VerifyKernelRuns)
		f.AddTask(tasks.BlocksizeDSE(dev))
		f.AddTask(tasks.RenderDesign)
		return f
	}
}

// runVariantGPU mirrors runVariantFPGA for the GPU path.
func runVariantGPU(b *bench.Benchmark, build func() *core.Flow) (DesignResult, error) {
	design := core.NewDesign(b.Name, b.Parse())
	ctx := &core.Context{Workload: bench.Workload{B: b}, CPU: platform.EPYC7543}
	flow := &core.Flow{Name: "ablation"}
	for _, t := range tasks.TargetIndependent() {
		flow.AddTask(t)
	}
	flow.AddBranch(core.Branch{
		PointName: "A",
		Paths:     []core.Path{{Name: "gpu", Flow: build()}},
		Select:    core.SelectAll{},
	})
	leaves, err := flow.Run(ctx, design)
	if err != nil {
		return DesignResult{}, err
	}
	return evalDesign(ctx.CPU, leaves[0], b.Scale), nil
}

// RunAblations evaluates the flow's optimisation tasks one by one.
func RunAblations(logf func(string, ...any)) ([]AblationRow, error) {
	var rows []AblationRow
	s10 := platform.Stratix10
	g2080 := platform.RTX2080Ti

	adp, err := bench.ByName("adpredictor")
	if err != nil {
		return nil, err
	}
	nbody, err := bench.ByName("nbody")
	if err != nil {
		return nil, err
	}
	rush, err := bench.ByName("rushlarsen")
	if err != nil {
		return nil, err
	}

	// 1. Single precision off (FPGA): the DP datapath balloons; for
	// AdPredictor it overmaps the device entirely.
	base, err := runVariantFPGA(adp, s10, fpgaFlowVariant(s10, false, false, false))
	if err != nil {
		return nil, err
	}
	noSP, err := runVariantFPGA(adp, s10, fpgaFlowVariant(s10, true, false, false))
	if err != nil {
		return nil, err
	}
	rows = append(rows, AblationRow{
		Name: "Employ SP Math Fns + Literals (off)", Benchmark: adp.Name, Device: s10.Name,
		Baseline: base.Speedup, Ablated: noSP.Speedup,
		Note: infeasibleNote(noSP, "DP transcendental units overmap"),
	})

	// 2. Zero-copy off (S10): transfers serialize with the pipeline.
	noZC, err := runVariantFPGA(adp, s10, fpgaFlowVariant(s10, false, true, false))
	if err != nil {
		return nil, err
	}
	rows = append(rows, AblationRow{
		Name: "Zero-Copy Data Transfer (off)", Benchmark: adp.Name, Device: s10.Name,
		Baseline: base.Speedup, Ablated: noZC.Speedup,
		Note: "PCIe staging instead of USM streaming",
	})

	// 3. Unroll Fixed Loops off (FPGA): the inner dependence loop stays
	// rolled, forcing a high initiation interval.
	noUnroll, err := runVariantFPGA(adp, s10, fpgaFlowVariant(s10, false, false, true))
	if err != nil {
		return nil, err
	}
	rows = append(rows, AblationRow{
		Name: "Unroll Fixed Loops (off)", Benchmark: adp.Name, Device: s10.Name,
		Baseline: base.Speedup, Ablated: noUnroll.Speedup,
		Note: "no model effect: the HLS estimator auto-unrolls fixed loops (source materialization is cosmetic)",
	})

	// 4. Pinned memory off (GPU, transfer-sensitive benchmark).
	kmeans, err := bench.ByName("kmeans")
	if err != nil {
		return nil, err
	}
	gBase, err := runVariantGPU(kmeans, gpuFlowVariant(g2080, false, false, false))
	if err != nil {
		return nil, err
	}
	noPinned, err := runVariantGPU(kmeans, gpuFlowVariant(g2080, true, false, false))
	if err != nil {
		return nil, err
	}
	rows = append(rows, AblationRow{
		Name: "Employ HIP Pinned Memory (off)", Benchmark: kmeans.Name, Device: g2080.Name,
		Baseline: gBase.Speedup, Ablated: noPinned.Speedup,
		Note: "pageable PCIe transfers",
	})

	// 5. SP off (GPU): FP64 arithmetic on a consumer part.
	nBase, err := runVariantGPU(nbody, gpuFlowVariant(g2080, false, false, false))
	if err != nil {
		return nil, err
	}
	nNoSP, err := runVariantGPU(nbody, gpuFlowVariant(g2080, false, true, false))
	if err != nil {
		return nil, err
	}
	rows = append(rows, AblationRow{
		Name: "Employ SP Math Fns + Literals (off)", Benchmark: nbody.Name, Device: g2080.Name,
		Baseline: nBase.Speedup, Ablated: nNoSP.Speedup,
		Note: "FP64 penalty on consumer GPU",
	})

	// 6. Resource sharing (added): Rush Larsen's FPGA design becomes
	// synthesizable but much slower — the paper's predicted trade-off.
	rushShared, err := runVariantFPGA(rush, s10, func() *core.Flow { return tasks.BuildSharingFPGAFlow(s10) })
	if err != nil {
		return nil, err
	}
	rows = append(rows, AblationRow{
		Name: "Resource sharing (added; paper future work)", Benchmark: rush.Name, Device: s10.Name,
		Baseline: 0, Ablated: rushShared.Speedup,
		Note: infeasibleNote(rushShared, "still overmaps") + " (baseline overmaps: 0X)",
	})

	if logf != nil {
		for _, r := range rows {
			logf("ablation %-45s %s/%s: %.1fX -> %.1fX", r.Name, r.Benchmark, r.Device, r.Baseline, r.Ablated)
		}
	}
	return rows, nil
}

func infeasibleNote(r DesignResult, msg string) string {
	if r.Infeasible {
		return msg
	}
	return "synthesizable"
}

// FormatAblations renders the ablation table.
func FormatAblations(rows []AblationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-46s %-12s %9s %9s  %s\n", "ablated task", "benchmark", "baseline", "ablated", "note")
	for _, r := range rows {
		base := fmt.Sprintf("%.1fX", r.Baseline)
		abl := fmt.Sprintf("%.1fX", r.Ablated)
		if r.Ablated == 0 {
			abl = "n/a"
		}
		if r.Baseline == 0 {
			base = "n/a"
		}
		fmt.Fprintf(&sb, "%-46s %-12s %9s %9s  %s\n", r.Name, r.Benchmark, base, abl, r.Note)
	}
	return sb.String()
}
