package experiments

// Chaos sweep: seeded fault injection over the evaluation benchmarks.
// The acceptance bar (see docs/FAULTS.md) is that informed-mode flows
// complete with at least one feasible — possibly degraded — design in
// 100% of seeded runs: accelerator failures must degrade and fall back,
// never abort, because the CPU path has no injectable substrate.

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"psaflow/internal/bench"
	"psaflow/internal/core"
	"psaflow/internal/faults"
	"psaflow/internal/tasks"
	"psaflow/internal/telemetry"
)

// ChaosRun is one seeded flow execution on one benchmark.
type ChaosRun struct {
	Bench string `json:"bench"`
	Seed  int64  `json:"seed"`
	// Completed means the flow returned without error AND produced at
	// least one feasible design.
	Completed bool `json:"completed"`
	// Feasible / Designs count the leaves with and without an
	// infeasibility verdict (degraded paths land in the second bucket).
	Feasible int    `json:"feasible_designs"`
	Designs  int    `json:"designs"`
	Error    string `json:"error,omitempty"`
	// Resilience counters from the run's recorder.
	FaultsInjected int64 `json:"faults_injected"`
	RetryAttempts  int64 `json:"retry_attempts"`
	Degradations   int64 `json:"degradations"`
	Fallbacks      int64 `json:"fallbacks"`
}

// ChaosReport is the aggregate emitted as BENCH_<date>_chaos.json.
type ChaosReport struct {
	// Date is stamped by the CLI (the library stays clock-free).
	Date string `json:"date,omitempty"`
	Mode string `json:"mode"`
	// Spec is the base fault spec; each run replays it under its own seed.
	Spec string     `json:"spec"`
	Runs []ChaosRun `json:"runs"`
	// CompletionRate is completed runs / total runs (the acceptance bar
	// for informed mode is 1.0).
	CompletionRate float64 `json:"completion_rate"`
	TotalFaults    int64   `json:"total_faults_injected"`
	TotalRetries   int64   `json:"total_retry_attempts"`
	TotalDegraded  int64   `json:"total_degradations"`
	TotalFallbacks int64   `json:"total_fallbacks"`
}

// RunChaos sweeps the flow over every benchmark × seeds consecutive
// seeds starting at base's seed, with fault injection from base's rate
// and kind set. Individual run failures are recorded, not returned: the
// report is the result either way.
func RunChaos(mode tasks.Mode, base *faults.Injector, seeds int, retry faults.RetryPolicy, logf func(string, ...any)) *ChaosReport {
	rep := &ChaosReport{Mode: modeName(mode), Spec: base.String()}
	if seeds <= 0 {
		seeds = 1
	}
	// One profiled-run cache across the sweep: injection fires before the
	// cache lookup, so faults still land on cache hits and each run's
	// outcome stays a pure function of its seed.
	runs := core.NewRunCache()
	completed := 0
	for i := 0; i < seeds; i++ {
		seed := base.Seed() + int64(i)
		for _, b := range bench.All() {
			r := runChaosOne(mode, b, base.WithSeed(seed), retry, runs, logf)
			if r.Completed {
				completed++
			}
			rep.Runs = append(rep.Runs, r)
			rep.TotalFaults += r.FaultsInjected
			rep.TotalRetries += r.RetryAttempts
			rep.TotalDegraded += r.Degradations
			rep.TotalFallbacks += r.Fallbacks
		}
	}
	rep.CompletionRate = float64(completed) / float64(len(rep.Runs))
	return rep
}

func runChaosOne(mode tasks.Mode, b *bench.Benchmark, inj *faults.Injector, retry faults.RetryPolicy, runs *core.RunCache, logf func(string, ...any)) ChaosRun {
	rec := telemetry.New()
	env := JobEnv{Faults: inj, Retry: retry}
	out := ChaosRun{Bench: b.Name, Seed: inj.Seed()}
	results, err := RunBenchmarkEnv(context.Background(), b, nil,
		tasks.FlowOptions{Mode: mode, Strategy: tasks.DefaultStrategy}, env, logf, rec, runs)
	if err != nil {
		out.Error = err.Error()
	}
	out.Designs = len(results)
	for _, r := range results {
		if !r.Infeasible {
			out.Feasible++
		}
	}
	out.Completed = err == nil && out.Feasible > 0
	snap := rec.Snapshot()
	out.FaultsInjected = snap.Counters[telemetry.CounterFaultsInjected]
	out.RetryAttempts = snap.Counters[telemetry.CounterRetryAttempts]
	out.Degradations = snap.Counters[telemetry.CounterFaultDegradations]
	out.Fallbacks = snap.Counters[telemetry.CounterFaultFallbacks]
	return out
}

func modeName(m tasks.Mode) string {
	if m == tasks.Uninformed {
		return "uninformed"
	}
	return "informed"
}

// JSON marshals the report for BENCH_<date>_chaos.json.
func (r *ChaosReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FormatChaos renders the per-run table plus the aggregate line the
// chaos CLI prints.
func FormatChaos(r *ChaosReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %5s %9s %9s %7s %8s %8s %6s\n",
		"benchmark", "seed", "complete", "feasible", "faults", "retries", "degrade", "fall")
	for _, run := range r.Runs {
		status := "ok"
		if !run.Completed {
			status = "FAIL"
		}
		fmt.Fprintf(&sb, "%-12s %5d %9s %5d/%-3d %7d %8d %8d %6d\n",
			run.Bench, run.Seed, status, run.Feasible, run.Designs,
			run.FaultsInjected, run.RetryAttempts, run.Degradations, run.Fallbacks)
		if run.Error != "" {
			fmt.Fprintf(&sb, "    error: %s\n", run.Error)
		}
	}
	fmt.Fprintf(&sb, "\n%s mode, spec %s: %d runs, completion %.0f%%, %d faults, %d retries, %d degradations, %d fallbacks\n",
		r.Mode, r.Spec, len(r.Runs), r.CompletionRate*100,
		r.TotalFaults, r.TotalRetries, r.TotalDegraded, r.TotalFallbacks)
	return sb.String()
}
