package experiments

import (
	"reflect"
	"testing"
	"time"

	"psaflow/internal/faults"
	"psaflow/internal/tasks"
)

var chaosTestRetry = faults.RetryPolicy{
	MaxAttempts: 6,
	BaseDelay:   50 * time.Microsecond,
	MaxDelay:    500 * time.Microsecond,
}

// TestRunChaosInformedCompletes is the acceptance sweep in miniature:
// every seeded informed run must complete with a feasible design, and
// the whole report must replay bit-identically from the same base spec.
func TestRunChaosInformedCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("full flow runs the interpreter; skipped in -short mode")
	}
	base := faults.New(1, 0.2)
	rep := RunChaos(tasks.Informed, base, 2, chaosTestRetry, nil)
	if rep.CompletionRate != 1 {
		t.Fatalf("completion rate %.2f, want 1.0: %s", rep.CompletionRate, FormatChaos(rep))
	}
	if got := len(rep.Runs); got != 10 {
		t.Fatalf("2 seeds x 5 benchmarks should be 10 runs, got %d", got)
	}
	if rep.TotalFaults == 0 {
		t.Error("rate=0.2 sweep injected nothing; chaos is not wired through")
	}
	replay := RunChaos(tasks.Informed, base, 2, chaosTestRetry, nil)
	if !reflect.DeepEqual(rep, replay) {
		t.Errorf("chaos sweep is not deterministic:\nfirst:  %+v\nreplay: %+v", rep, replay)
	}
}
