package experiments

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"psaflow/internal/bench"
	"psaflow/internal/interp"
	"psaflow/internal/minic"
	"psaflow/internal/platform"
	"psaflow/internal/tasks"
)

// fig5Once caches the expensive full-evaluation run across tests.
var (
	fig5Once sync.Once
	fig5Rows []Fig5Row
	fig5Err  error
)

func getFig5(t *testing.T) []Fig5Row {
	t.Helper()
	if testing.Short() {
		t.Skip("full evaluation run (use without -short)")
	}
	fig5Once.Do(func() { fig5Rows, fig5Err = RunFig5(nil) })
	if fig5Err != nil {
		t.Fatalf("RunFig5: %v", fig5Err)
	}
	return fig5Rows
}

func rowOf(t *testing.T, rows []Fig5Row, name string) Fig5Row {
	t.Helper()
	for _, r := range rows {
		if r.Benchmark == name {
			return r
		}
	}
	t.Fatalf("no row for %s", name)
	return Fig5Row{}
}

// TestFig5InformedSelectsWinner is the paper's headline claim: "the
// informed PSA-flow selects the best target for all of the five
// benchmarks".
func TestFig5InformedSelectsWinner(t *testing.T) {
	rows := getFig5(t)
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for _, r := range rows {
		if !r.InformedPickedWinner(0.05) {
			best, col := r.BestSpeedup()
			t.Errorf("%s: informed auto=%.1fX (%s) is not the winner %.1fX (%s)",
				r.Benchmark, r.Auto, r.AutoTarget, best, col)
		}
	}
}

// TestFig5BranchDecisions checks the target class the Fig. 3 strategy
// picks per benchmark against the paper (§IV-B).
func TestFig5BranchDecisions(t *testing.T) {
	rows := getFig5(t)
	for _, b := range bench.All() {
		r := rowOf(t, rows, b.Name)
		if r.AutoTarget != b.ExpectTarget {
			t.Errorf("%s: informed strategy chose %q, paper chooses %q",
				b.Name, r.AutoTarget, b.ExpectTarget)
		}
	}
}

// band asserts v within [lo, hi].
func band(t *testing.T, what string, v, lo, hi float64) {
	t.Helper()
	if v < lo || v > hi {
		t.Errorf("%s = %.2f, want within [%.2f, %.2f]", what, v, lo, hi)
	}
}

// TestFig5OMPSpeedups: all five benchmarks are embarrassingly parallel, so
// OpenMP lands close to the 32-core count (paper: 28-30X).
func TestFig5OMPSpeedups(t *testing.T) {
	for _, r := range getFig5(t) {
		band(t, r.Benchmark+" OMP", r.OMP, 25, 32)
	}
}

// TestFig5NBody: the GPU designs dominate with the RTX 2080 Ti about 2X
// ahead of the GTX 1080 Ti (paper: 337X vs 751X), and the FPGA designs are
// barely better than a single CPU thread (paper: 1.1X / 1.4X).
func TestFig5NBody(t *testing.T) {
	r := rowOf(t, getFig5(t), "nbody")
	band(t, "nbody 1080", r.GTX1080, 200, 520)
	band(t, "nbody 2080", r.RTX2080, 480, 1100)
	band(t, "nbody 2080/1080 ratio", r.RTX2080/r.GTX1080, 1.7, 2.6)
	band(t, "nbody A10", r.A10, 0.4, 6)
	band(t, "nbody S10", r.S10, 0.8, 10)
	if best, col := r.BestSpeedup(); col != "rtx2080" {
		t.Errorf("nbody winner = %s (%.0fX), want rtx2080", col, best)
	}
}

// TestFig5KMeans: memory-bound; the multi-thread CPU design wins (paper:
// OMP 30X vs GPU 19-24X, FPGA 7/13X).
func TestFig5KMeans(t *testing.T) {
	r := rowOf(t, getFig5(t), "kmeans")
	if best, col := r.BestSpeedup(); col != "omp" {
		t.Errorf("kmeans winner = %s (%.0fX), want omp", col, best)
	}
	band(t, "kmeans 1080", r.GTX1080, 10, 28)
	band(t, "kmeans 2080", r.RTX2080, 10, 28)
	band(t, "kmeans A10", r.A10, 3, 18)
	band(t, "kmeans S10", r.S10, 8, 28)
	if r.S10 <= r.A10 {
		t.Errorf("kmeans S10 (%.1f) should beat A10 (%.1f)", r.S10, r.A10)
	}
	if r.OMP <= r.GTX1080 || r.OMP <= r.S10 {
		t.Errorf("kmeans OMP (%.1f) must beat accelerators (GPU %.1f, S10 %.1f)",
			r.OMP, r.GTX1080, r.S10)
	}
}

// TestFig5AdPredictor: the pipelined Stratix 10 design wins, narrowly
// ahead of OpenMP (paper: 32X vs 28X), with the Arria 10 feasible but
// slower.
func TestFig5AdPredictor(t *testing.T) {
	r := rowOf(t, getFig5(t), "adpredictor")
	if best, col := r.BestSpeedup(); col != "s10" {
		t.Errorf("adpredictor winner = %s (%.0fX), want s10", col, best)
	}
	band(t, "adpredictor S10", r.S10, 25, 45)
	if r.S10 <= r.OMP {
		t.Errorf("S10 (%.1f) must beat OMP (%.1f), as in the paper (32 vs 28)", r.S10, r.OMP)
	}
	if r.A10Overmap {
		t.Error("adpredictor must fit the Arria 10 (paper: 14X)")
	}
	band(t, "adpredictor A10", r.A10, 4, 20)
	band(t, "adpredictor 1080", r.GTX1080, 6, 28)
	band(t, "adpredictor 2080", r.RTX2080, 6, 30)
}

// TestFig5RushLarsen: GPU designs win; the register saturation effect
// leaves the 2080 Ti ~1.5-2X ahead (paper 1.6X: 98 vs 63); both CPU+FPGA
// designs exceed device capacity and are not synthesizable.
func TestFig5RushLarsen(t *testing.T) {
	r := rowOf(t, getFig5(t), "rushlarsen")
	if !r.A10Overmap || !r.S10Overmap {
		t.Fatalf("rush larsen FPGA designs must overmap (paper); a10=%v s10=%v",
			r.A10Overmap, r.S10Overmap)
	}
	band(t, "rush 1080", r.GTX1080, 35, 95)
	band(t, "rush 2080", r.RTX2080, 60, 145)
	band(t, "rush 2080/1080 ratio", r.RTX2080/r.GTX1080, 1.4, 2.2)
	if best, col := r.BestSpeedup(); col != "rtx2080" {
		t.Errorf("rush winner = %s (%.0fX), want rtx2080", col, best)
	}
}

// TestFig5Bezier: the grid does not saturate either GPU, so the two land
// close together (paper 63X vs 67X) and win.
func TestFig5Bezier(t *testing.T) {
	r := rowOf(t, getFig5(t), "bezier")
	band(t, "bezier 1080", r.GTX1080, 40, 110)
	band(t, "bezier 2080", r.RTX2080, 40, 110)
	band(t, "bezier GPU ratio", r.RTX2080/r.GTX1080, 0.85, 1.25)
	if _, col := r.BestSpeedup(); col != "rtx2080" && col != "gtx1080" {
		t.Errorf("bezier winner = %s, want a GPU", col)
	}
	if r.S10 <= r.A10 {
		t.Errorf("bezier S10 (%.1f) should beat A10 (%.1f)", r.S10, r.A10)
	}
}

// TestUninformedGeneratesFiveDesigns: the uninformed mode produces one
// design per device (paper §IV-B).
func TestUninformedGeneratesFiveDesigns(t *testing.T) {
	for _, r := range getFig5(t) {
		if len(r.Designs) != 5 {
			t.Errorf("%s: %d designs, want 5", r.Benchmark, len(r.Designs))
		}
	}
}

func TestFig5Formatting(t *testing.T) {
	rows := getFig5(t)
	out := FormatFig5(rows)
	for _, want := range []string{"nbody", "overmap", "(paper)", "GTX1080"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q", want)
		}
	}
}

// TestTable1Shape checks the paper's Table I orderings: OMP adds the
// fewest lines, HIP more, oneAPI the most, with zero-copy S10 designs
// above A10; Rush Larsen's FPGA designs are excluded.
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	rows, err := RunTable1(nil)
	if err != nil {
		t.Fatalf("RunTable1: %v", err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.RefLOC < 60 {
			t.Errorf("%s: reference LOC %d suspiciously small", r.Benchmark, r.RefLOC)
		}
		if r.Benchmark == "rushlarsen" {
			if len(r.Excluded) != 2 || r.A10 != 0 || r.S10 != 0 {
				t.Errorf("rush FPGA designs must be excluded: %+v", r)
			}
		} else {
			if !(r.OMP < r.HIP1080 && r.HIP1080 <= r.HIP2080+1e-9 && r.HIP2080 <= r.S10+1e-9) {
				t.Errorf("%s: ordering OMP(%f) < HIP(%f) <= S10(%f) violated",
					r.Benchmark, r.OMP, r.HIP1080, r.S10)
			}
			if r.A10 >= r.S10 {
				t.Errorf("%s: S10 (+%.0f%%) must add more than A10 (+%.0f%%) (zero-copy host code)",
					r.Benchmark, r.S10, r.A10)
			}
		}
		if r.OMP <= 0 || r.OMP > 15 {
			t.Errorf("%s: OMP added %.1f%%, want small positive", r.Benchmark, r.OMP)
		}
	}
	avg := Table1Average(rows)
	if avg.Total < 100 {
		t.Errorf("average total %.0f%%, want substantial (paper: 212%%)", avg.Total)
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "average") || !strings.Contains(out, "+212%") {
		t.Errorf("format missing expected content")
	}
}

// TestFig6Crossovers: the cost crossover equals the speedup ratio, the
// Rush Larsen series is absent (no FPGA design), and the qualitative
// claims hold: AdPredictor is fastest on the FPGA yet becomes less cost
// effective than the GPU above its crossover; Bezier is faster on the GPU
// yet cheaper on the FPGA when GPU prices rise above the inverse
// crossover.
func TestFig6Crossovers(t *testing.T) {
	rows := getFig5(t)
	series := RunFig6(rows)
	names := map[string]Fig6Series{}
	for _, s := range series {
		names[s.Benchmark] = s
		wantCross := s.SpeedupFPGA / s.SpeedupGPU
		if diff := s.Crossover - wantCross; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: crossover %v != speedup ratio %v", s.Benchmark, s.Crossover, wantCross)
		}
		if len(s.RelCost) != len(Fig6PriceRatios) {
			t.Errorf("%s: curve length %d", s.Benchmark, len(s.RelCost))
		}
		// Relative cost is linear in the price ratio.
		for i := 1; i < len(s.RelCost); i++ {
			if s.RelCost[i] <= s.RelCost[i-1] {
				t.Errorf("%s: curve not increasing", s.Benchmark)
			}
		}
	}
	if _, ok := names["rushlarsen"]; ok {
		t.Error("rush larsen has no synthesizable FPGA design; it must not appear in Fig. 6")
	}
	ad, ok := names["adpredictor"]
	if !ok {
		t.Fatal("adpredictor series missing")
	}
	if ad.Crossover <= 1 {
		t.Errorf("adpredictor crossover %v must exceed 1 (FPGA-favored at parity)", ad.Crossover)
	}
	if ad.MoreCostEffective(1) != "fpga" || ad.MoreCostEffective(ad.Crossover*2) != "gpu" {
		t.Error("adpredictor cost-effectiveness flip broken")
	}
	bz, ok := names["bezier"]
	if !ok {
		t.Fatal("bezier series missing")
	}
	if bz.Crossover >= 1 {
		t.Errorf("bezier crossover %v must be below 1 (GPU-favored at parity)", bz.Crossover)
	}
	if bz.MoreCostEffective(1) != "gpu" || bz.MoreCostEffective(bz.Crossover/2) != "fpga" {
		t.Error("bezier cost-effectiveness flip broken")
	}
	out := FormatFig6(series)
	if !strings.Contains(out, "crossover") {
		t.Error("format missing crossover column")
	}
}

// TestEvalDesignDeviceLookup guards the evaluation path against designs
// whose device is not in the catalog.
func TestEvalDesignDeviceLookup(t *testing.T) {
	for _, g := range platform.GPUs() {
		if _, ok := platform.GPUByName(g.Name); !ok {
			t.Errorf("GPU %q not resolvable", g.Name)
		}
	}
	for _, f := range platform.FPGAs() {
		if _, ok := platform.FPGAByName(f.Name); !ok {
			t.Errorf("FPGA %q not resolvable", f.Name)
		}
	}
	if _, ok := platform.GPUByName("bogus"); ok {
		t.Error("bogus GPU resolved")
	}
}

// TestInformedModeRunsSubsetOfTargets: informed mode produces only the
// selected target's designs.
func TestInformedModeRunsSubsetOfTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("flow run")
	}
	b, _ := bench.ByName("kmeans")
	results, err := RunBenchmark(b, tasks.Informed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("kmeans informed designs = %d, want 1 (CPU only)", len(results))
	}
	if results[0].Design.Target != platform.TargetCPU {
		t.Errorf("target = %v", results[0].Design.Target)
	}
}

// TestAblations runs the optimisation-task ablation study and checks its
// qualitative outcomes: SP demotion is load-bearing on FPGAs (DP
// overmaps), zero-copy and pinned memory help, and resource sharing makes
// Rush Larsen synthesizable at a large performance cost (the paper's
// §IV-B-iii prediction).
func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	rows, err := RunAblations(nil)
	if err != nil {
		t.Fatalf("RunAblations: %v", err)
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Name+"/"+r.Benchmark] = r
	}
	sp := byName["Employ SP Math Fns + Literals (off)/adpredictor"]
	if sp.Ablated != 0 {
		t.Errorf("DP adpredictor should overmap the Stratix 10, got %.1fX", sp.Ablated)
	}
	zc := byName["Zero-Copy Data Transfer (off)/adpredictor"]
	if zc.Ablated >= zc.Baseline {
		t.Errorf("removing zero-copy must hurt: %.1fX -> %.1fX", zc.Baseline, zc.Ablated)
	}
	pin := byName["Employ HIP Pinned Memory (off)/kmeans"]
	if pin.Ablated >= pin.Baseline {
		t.Errorf("removing pinned memory must hurt: %.1fX -> %.1fX", pin.Baseline, pin.Ablated)
	}
	gsp := byName["Employ SP Math Fns + Literals (off)/nbody"]
	if gsp.Ablated >= gsp.Baseline/4 {
		t.Errorf("FP64 nbody should collapse: %.1fX -> %.1fX", gsp.Baseline, gsp.Ablated)
	}
	share := byName["Resource sharing (added; paper future work)/rushlarsen"]
	if share.Ablated <= 0 {
		t.Error("resource sharing must make rush larsen synthesizable")
	}
	if share.Ablated > 30 {
		t.Errorf("shared rush larsen at %.1fX: sharing should cost most of the speedup", share.Ablated)
	}
	out := FormatAblations(rows)
	if !strings.Contains(out, "Resource sharing") {
		t.Error("format missing sharing row")
	}
}

// TestJSONExport round-trips the evaluation report through the export
// DTOs.
func TestJSONExport(t *testing.T) {
	rows := getFig5(t)
	rep := ReportJSON{
		Fig5: Fig5ToJSON(rows),
		Fig6: RunFig6(rows),
	}
	data, err := MarshalReport(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back ReportJSON
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back.Fig5) != 5 {
		t.Fatalf("fig5 rows = %d", len(back.Fig5))
	}
	for _, r := range back.Fig5 {
		if len(r.Designs) != 5 {
			t.Errorf("%s: %d designs in export", r.Benchmark, len(r.Designs))
		}
		if len(r.Paper) != 6 {
			t.Errorf("%s: paper reference missing", r.Benchmark)
		}
	}
	var rush *Fig5JSON
	for i := range back.Fig5 {
		if back.Fig5[i].Benchmark == "rushlarsen" {
			rush = &back.Fig5[i]
		}
	}
	if rush == nil || !rush.A10Overmap || !rush.S10Overmap {
		t.Error("rush overmap flags lost in export")
	}
	if !strings.Contains(string(data), "auto_target") {
		t.Error("JSON field names changed")
	}
}

// TestSharingFlowRecoversRushLarsen: with the resource-sharing option the
// full PSA-flow produces synthesizable Rush Larsen FPGA designs, at a
// fraction of the GPU speedup (paper §IV-B-iii: the adjustments "may
// potentially impact performance negatively").
func TestSharingFlowRecoversRushLarsen(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	b, err := bench.ByName("rushlarsen")
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunBenchmarkOpts(b,
		tasks.FlowOptions{Mode: tasks.Uninformed, Strategy: tasks.DefaultStrategy, ResourceSharing: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var s10, gpu2080 *DesignResult
	for i := range results {
		r := &results[i]
		switch r.Design.Device {
		case platform.Stratix10.Name:
			s10 = r
		case platform.RTX2080Ti.Name:
			gpu2080 = r
		}
	}
	if s10 == nil || gpu2080 == nil {
		t.Fatal("designs missing")
	}
	if s10.Infeasible {
		t.Fatalf("sharing must make the S10 design synthesizable: %s", s10.Design.Infeasible)
	}
	if s10.Speedup <= 0.5 {
		t.Errorf("shared S10 speedup = %.2f, want > 0.5", s10.Speedup)
	}
	if s10.Speedup > gpu2080.Speedup/3 {
		t.Errorf("sharing should cost most of the speedup: S10 %.1fX vs GPU %.1fX",
			s10.Speedup, gpu2080.Speedup)
	}
}

// TestTransformedProgramsReparse: every design's transformed MiniC source
// re-parses and re-executes — the "output implementations are
// human-readable and can be further hand-tuned" property of §III requires
// that generated sources stay valid inputs to the flow itself.
func TestTransformedProgramsReparse(t *testing.T) {
	rows := getFig5(t)
	for _, row := range rows {
		b, err := bench.ByName(row.Benchmark)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range row.Designs {
			printed := minic.Print(r.Design.Prog)
			reparsed, err := minic.Parse(printed)
			if err != nil {
				t.Errorf("%s: transformed source does not re-parse: %v", r.Design.Label(), err)
				continue
			}
			if minic.Print(reparsed) != printed {
				t.Errorf("%s: re-print not stable", r.Design.Label())
			}
			// And it still runs on the reference workload.
			if _, err := interp.Run(reparsed, interp.Config{Entry: b.Entry, Args: b.MakeArgs()}); err != nil {
				t.Errorf("%s: reparsed program fails to execute: %v", r.Design.Label(), err)
			}
		}
	}
}

// TestGeneratedArtifactsWellFormed: every rendered target source is
// non-trivial and structurally balanced (braces/parens) — the cheap
// compilability proxy available without vendor toolchains.
func TestGeneratedArtifactsWellFormed(t *testing.T) {
	rows := getFig5(t)
	checked := 0
	for _, row := range rows {
		for _, r := range row.Designs {
			d := r.Design
			if d.Infeasible != "" {
				if d.Artifact != nil {
					t.Errorf("%s: unsynthesizable design has an artifact", d.Label())
				}
				continue
			}
			if d.Artifact == nil {
				t.Errorf("%s: missing artifact", d.Label())
				continue
			}
			src := d.Artifact.Source
			if d.Artifact.LOC < 20 {
				t.Errorf("%s: suspiciously small artifact (%d LOC)", d.Label(), d.Artifact.LOC)
			}
			for _, pair := range [][2]rune{{'{', '}'}, {'(', ')'}, {'[', ']'}} {
				depth := 0
				for _, c := range src {
					switch c {
					case pair[0]:
						depth++
					case pair[1]:
						depth--
					}
					if depth < 0 {
						break
					}
				}
				if depth != 0 {
					t.Errorf("%s: unbalanced %c%c (depth %d)", d.Label(), pair[0], pair[1], depth)
				}
			}
			// Every artifact must still contain the kernel computation.
			if !strings.Contains(src, d.Kernel) {
				t.Errorf("%s: artifact does not mention kernel %s", d.Label(), d.Kernel)
			}
			checked++
		}
	}
	if checked < 20 { // 5 benchmarks x 5 designs - 2 overmaps = 23
		t.Errorf("only %d artifacts checked", checked)
	}
}
