package experiments

import (
	"encoding/json"

	"psaflow/internal/core"
)

// Export DTOs: trimmed, stable JSON shapes for downstream tooling
// (plotting scripts, CI dashboards). The full Design objects carry ASTs
// and are not serialized; the DTOs capture what the paper's tables and
// figures report.

// DesignJSON summarizes one generated design.
type DesignJSON struct {
	Label        string  `json:"label"`
	Target       string  `json:"target"`
	Device       string  `json:"device,omitempty"`
	Speedup      float64 `json:"speedup"`
	KernelTime   float64 `json:"kernel_time_s"`
	TransferTime float64 `json:"transfer_time_s"`
	Overhead     float64 `json:"overhead_s"`
	TotalTime    float64 `json:"total_time_s"`
	Note         string  `json:"note,omitempty"`
	Infeasible   string  `json:"infeasible,omitempty"`
	NumThreads   int     `json:"num_threads,omitempty"`
	Blocksize    int     `json:"blocksize,omitempty"`
	UnrollFactor int     `json:"unroll_factor,omitempty"`
	ZeroCopy     bool    `json:"zero_copy,omitempty"`
	Pinned       bool    `json:"pinned,omitempty"`
	GeneratedLOC int     `json:"generated_loc,omitempty"`
	AddedLOC     int     `json:"added_loc,omitempty"`
}

// Fig5JSON is one benchmark's Fig. 5 record.
type Fig5JSON struct {
	Benchmark  string       `json:"benchmark"`
	AutoTarget string       `json:"auto_target"`
	Auto       float64      `json:"auto_speedup"`
	OMP        float64      `json:"omp"`
	GTX1080    float64      `json:"gtx1080"`
	RTX2080    float64      `json:"rtx2080"`
	A10        float64      `json:"a10"`
	S10        float64      `json:"s10"`
	A10Overmap bool         `json:"a10_overmap"`
	S10Overmap bool         `json:"s10_overmap"`
	Paper      []float64    `json:"paper,omitempty"` // auto, omp, 1080, 2080, a10, s10
	Designs    []DesignJSON `json:"designs"`
}

// ReportJSON is the full evaluation export.
type ReportJSON struct {
	Fig5      []Fig5JSON    `json:"fig5,omitempty"`
	Table1    []Table1Row   `json:"table1,omitempty"`
	Fig6      []Fig6Series  `json:"fig6,omitempty"`
	Ablations []AblationRow `json:"ablations,omitempty"`
}

// designJSON converts one evaluated design.
func designJSON(r DesignResult) DesignJSON {
	d := r.Design
	out := DesignJSON{
		Label:        d.Label(),
		Target:       d.Target.String(),
		Device:       d.Device,
		Speedup:      r.Speedup,
		KernelTime:   r.Breakdown.KernelTime,
		TransferTime: r.Breakdown.TransferTime,
		Overhead:     r.Breakdown.Overhead,
		TotalTime:    r.Breakdown.Total,
		Note:         r.Breakdown.Note,
		Infeasible:   d.Infeasible,
		NumThreads:   d.NumThreads,
		Blocksize:    d.Blocksize,
		UnrollFactor: d.UnrollFactor,
		ZeroCopy:     d.ZeroCopy,
		Pinned:       d.Pinned,
	}
	if d.Artifact != nil {
		out.GeneratedLOC = d.Artifact.LOC
		out.AddedLOC = d.Artifact.AddedLOC
	}
	return out
}

// Fig5ToJSON converts harness rows to the export shape.
func Fig5ToJSON(rows []Fig5Row) []Fig5JSON {
	out := make([]Fig5JSON, 0, len(rows))
	for _, r := range rows {
		j := Fig5JSON{
			Benchmark:  r.Benchmark,
			AutoTarget: r.AutoTarget,
			Auto:       r.Auto,
			OMP:        r.OMP,
			GTX1080:    r.GTX1080,
			RTX2080:    r.RTX2080,
			A10:        r.A10,
			S10:        r.S10,
			A10Overmap: r.A10Overmap,
			S10Overmap: r.S10Overmap,
		}
		if p, ok := PaperFig5(r.Benchmark); ok {
			j.Paper = p[:]
		}
		for _, dr := range r.Designs {
			j.Designs = append(j.Designs, designJSON(dr))
		}
		out = append(out, j)
	}
	return out
}

// MarshalReport renders the full evaluation as indented JSON.
func MarshalReport(rep ReportJSON) ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}

// ensure core stays referenced for doc links even if DTO fields change.
var _ = core.Design{}
