package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Fig. 6 of the paper plots the relative cost of FPGA vs GPU execution as
// the resource price ratio varies: cost_FPGA / cost_GPU = (T_FPGA × ρ) /
// T_GPU where ρ is the FPGA-second price in GPU-seconds. The crossover
// (relative cost = 1) falls exactly at ρ* = T_GPU / T_FPGA = speedup_FPGA
// / speedup_GPU, so the paper's observations follow directly from Fig. 5:
// AdPredictor crosses near ρ ≈ 3.2 and Bezier near 1/ρ ≈ 2.5.

// Fig6Series is the cost-ratio curve for one application, comparing the
// Stratix 10 CPU+FPGA design to the RTX 2080 Ti CPU+GPU design.
type Fig6Series struct {
	Benchmark   string
	SpeedupFPGA float64 // Stratix 10 design speedup (Fig. 5)
	SpeedupGPU  float64 // RTX 2080 Ti design speedup (Fig. 5)
	// Crossover is the FPGA/GPU price ratio at which both cost the same;
	// above it the GPU is more cost effective.
	Crossover float64
	// PriceRatios and RelCost sample the curve: RelCost[i] =
	// cost(FPGA)/cost(GPU) at PriceRatios[i].
	PriceRatios []float64
	RelCost     []float64
}

// Fig6PriceRatios is the sweep of FPGA-vs-GPU price ratios shown on the
// paper's x-axis (1/4 … 4).
var Fig6PriceRatios = []float64{0.25, 1.0 / 3, 0.5, 1, 2, 3, 4}

// RunFig6 derives the cost trade-off curves from Fig. 5 rows for the
// applications the paper plots (those with feasible designs on both the
// Stratix 10 and the RTX 2080 Ti).
func RunFig6(rows []Fig5Row) []Fig6Series {
	var out []Fig6Series
	for _, r := range rows {
		if r.S10 <= 0 || r.RTX2080 <= 0 {
			continue // no synthesizable FPGA design (Rush Larsen)
		}
		s := Fig6Series{
			Benchmark:   r.Benchmark,
			SpeedupFPGA: r.S10,
			SpeedupGPU:  r.RTX2080,
			Crossover:   r.S10 / r.RTX2080,
			PriceRatios: Fig6PriceRatios,
		}
		// T_FPGA / T_GPU = speedupGPU / speedupFPGA.
		timeRatio := r.RTX2080 / r.S10
		for _, rho := range Fig6PriceRatios {
			s.RelCost = append(s.RelCost, timeRatio*rho)
		}
		out = append(out, s)
	}
	return out
}

// MoreCostEffective reports which platform is cheaper at price ratio rho.
func (s Fig6Series) MoreCostEffective(rho float64) string {
	rel := (s.SpeedupGPU / s.SpeedupFPGA) * rho
	switch {
	case math.Abs(rel-1) < 1e-9:
		return "equal"
	case rel < 1:
		return "fpga"
	default:
		return "gpu"
	}
}

// FormatFig6 renders the curves and crossovers.
func FormatFig6(series []Fig6Series) string {
	var sb strings.Builder
	sb.WriteString("relative cost of FPGA (Stratix 10) vs GPU (RTX 2080 Ti) execution\n")
	fmt.Fprintf(&sb, "%-12s", "price ratio")
	for _, rho := range Fig6PriceRatios {
		fmt.Fprintf(&sb, "%8.2f", rho)
	}
	fmt.Fprintf(&sb, "%12s\n", "crossover")
	for _, s := range series {
		fmt.Fprintf(&sb, "%-12s", s.Benchmark)
		for _, rel := range s.RelCost {
			fmt.Fprintf(&sb, "%8.2f", rel)
		}
		fmt.Fprintf(&sb, "%12.2f\n", s.Crossover)
	}
	sb.WriteString("\nrelative cost < 1: FPGA is more cost effective; > 1: GPU is.\n")
	sb.WriteString("paper: AdPredictor crossover ≈ 3.2 (FPGA faster but loses above it);\n")
	sb.WriteString("paper: Bezier crossover ≈ 1/2.5 (GPU faster but loses when GPU price > 2.5x).\n")
	return sb.String()
}
