package experiments

import (
	"fmt"
	"sort"
	"testing"

	"psaflow/internal/bench"
	"psaflow/internal/core"
	"psaflow/internal/platform"
	"psaflow/internal/tasks"
	"psaflow/internal/telemetry"
)

// leafFingerprint condenses everything the flow decides about one design
// into a comparable string: label, feasibility, and every tuned parameter.
func leafFingerprint(d *core.Design) string {
	return fmt.Sprintf("%s infeasible=%q threads=%d blocksize=%d pinned=%t shared=%v fast=%t unroll=%d zerocopy=%t",
		d.Label(), d.Infeasible, d.NumThreads, d.Blocksize, d.Pinned,
		d.SharedMem, d.Specialised, d.UnrollFactor, d.ZeroCopy)
}

// runUninformed pushes a benchmark through the full uninformed PSA-flow
// with the given parallelism setting and returns sorted leaf fingerprints.
func runUninformed(t *testing.T, b *bench.Benchmark, parallel bool) []string {
	t.Helper()
	ctx := &core.Context{
		Workload:  bench.Workload{B: b},
		CPU:       platform.EPYC7543,
		Parallel:  parallel,
		Telemetry: telemetry.New(),
	}
	flow := tasks.BuildPSAFlow(tasks.Uninformed, tasks.DefaultStrategy)
	leaves, err := flow.Run(ctx, core.NewDesign(b.Name, b.Parse()))
	if err != nil {
		t.Fatalf("%s (parallel=%t): %v", b.Name, parallel, err)
	}
	fps := make([]string, 0, len(leaves))
	for _, d := range leaves {
		fps = append(fps, leafFingerprint(d))
	}
	sort.Strings(fps)
	return fps
}

// TestParallelFlowMatchesSerial runs the full uninformed flow with
// concurrent branch paths (the experiment harness configuration) and
// asserts the produced design set is identical to a serial run. Under
// `go test -race` this also exercises the Fork deep-copy and telemetry
// locking: path goroutines mutate forked designs and record spans
// concurrently.
func TestParallelFlowMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full flow runs the interpreter; skipped in -short mode")
	}
	for _, name := range []string{"kmeans", "bezier"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			b, err := bench.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			serial := runUninformed(t, b, false)
			parallel := runUninformed(t, b, true)
			if len(parallel) != len(serial) {
				t.Fatalf("parallel produced %d designs, serial %d:\nparallel=%v\nserial=%v",
					len(parallel), len(serial), parallel, serial)
			}
			for i := range serial {
				if parallel[i] != serial[i] {
					t.Errorf("design %d differs:\nparallel: %s\nserial:   %s", i, parallel[i], serial[i])
				}
			}
		})
	}
}
