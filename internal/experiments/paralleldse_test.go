package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"psaflow/internal/bench"
	"psaflow/internal/core"
	"psaflow/internal/faults"
	"psaflow/internal/tasks"
	"psaflow/internal/telemetry"
)

// The parallel-DSE determinism contract: running the flow with
// Context.DSEWorkers > 1 must produce bit-for-bit the same designs,
// provenance traces, and telemetry as the serial sweeps — only the
// dse.parallel.* pool counters may differ. Run under -race this also
// exercises the sweep pool's synchronization.

// flowFingerprint renders everything observable about one flow run:
// exported design JSON, the full provenance trace of every design, and
// the telemetry counters (minus the pool's own accounting).
func flowFingerprint(t *testing.T, results []DesignResult, rec *telemetry.Recorder) string {
	t.Helper()
	var sb strings.Builder
	for _, r := range results {
		j, err := json.Marshal(designJSON(r))
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(j)
		sb.WriteByte('\n')
		for _, ev := range r.Design.Trace {
			sb.WriteString(ev.String())
			sb.WriteByte('\n')
		}
		if r.Design.HLSReport != nil {
			fmt.Fprintf(&sb, "hls: %+v\n", *r.Design.HLSReport)
		}
	}
	snap := rec.Snapshot()
	for _, name := range sortedCounterNames(snap.Counters) {
		// The pool's own accounting differs by construction, and the
		// compile-time counter is wall-clock nanoseconds — nondeterministic
		// between any two runs, serial or not.
		if strings.HasPrefix(name, "dse.parallel.") || name == "interp.compile.ns" {
			continue
		}
		fmt.Fprintf(&sb, "counter %s=%d\n", name, snap.Counters[name])
	}
	return sb.String()
}

func sortedCounterNames(m map[string]int64) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

func runFingerprinted(t *testing.T, b *bench.Benchmark, mode tasks.Mode, env JobEnv) string {
	t.Helper()
	rec := telemetry.New()
	results, err := RunBenchmarkEnv(context.Background(), b, nil,
		tasks.FlowOptions{Mode: mode, Strategy: tasks.DefaultStrategy},
		env, nil, rec, core.NewRunCache())
	if err != nil {
		t.Fatalf("%s: %v", b.Name, err)
	}
	return flowFingerprint(t, results, rec)
}

// TestParallelDSEDeterministic compares serial against pooled sweeps for
// every benchmark in both flow modes.
func TestParallelDSEDeterministic(t *testing.T) {
	for _, b := range bench.All() {
		for _, mode := range []tasks.Mode{tasks.Uninformed, tasks.Informed} {
			serial := runFingerprinted(t, b, mode, JobEnv{})
			parallel := runFingerprinted(t, b, mode, JobEnv{DSEWorkers: 8})
			if serial != parallel {
				t.Errorf("%s mode=%v: parallel DSE diverged from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
					b.Name, mode, serial, parallel)
			}
		}
	}
}

// TestParallelDSEDeterministicUnderFaults repeats the comparison with
// deterministic fault injection active: the serial consumption walk must
// keep injector occurrence order identical, so the same faults fire at
// the same points in both modes.
func TestParallelDSEDeterministicUnderFaults(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		inj := faults.New(seed, 0.2, faults.HLS, faults.Device)
		for _, b := range bench.All() {
			serial := runFingerprinted(t, b, tasks.Uninformed, JobEnv{Faults: inj.WithSeed(seed)})
			parallel := runFingerprinted(t, b, tasks.Uninformed, JobEnv{Faults: inj.WithSeed(seed), DSEWorkers: 6})
			if serial != parallel {
				t.Errorf("%s seed=%d: parallel DSE diverged from serial under faults\n--- serial ---\n%s\n--- parallel ---\n%s",
					b.Name, seed, serial, parallel)
			}
		}
	}
}

// TestParallelDSEPoolCountersFire asserts the pool actually ran: a
// parallel flow must report sweeps and candidates, a serial one must not.
func TestParallelDSEPoolCountersFire(t *testing.T) {
	b, _ := bench.ByName("nbody")
	rec := telemetry.New()
	_, err := RunBenchmarkEnv(context.Background(), b, nil,
		tasks.FlowOptions{Mode: tasks.Uninformed, Strategy: tasks.DefaultStrategy},
		JobEnv{DSEWorkers: 4}, nil, rec, core.NewRunCache())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Counter(telemetry.CounterDSEParallelSweeps) == 0 {
		t.Error("parallel run recorded no dse.parallel.sweeps")
	}
	if rec.Counter(telemetry.CounterDSEParallelCandidates) == 0 {
		t.Error("parallel run recorded no dse.parallel.candidates")
	}

	rec = telemetry.New()
	if _, err := RunBenchmarkEnv(context.Background(), b, nil,
		tasks.FlowOptions{Mode: tasks.Uninformed, Strategy: tasks.DefaultStrategy},
		JobEnv{}, nil, rec, core.NewRunCache()); err != nil {
		t.Fatal(err)
	}
	if n := rec.Counter(telemetry.CounterDSEParallelSweeps); n != 0 {
		t.Errorf("serial run recorded dse.parallel.sweeps=%d, want 0", n)
	}
}
