package experiments

import (
	"fmt"
	"strings"

	"psaflow/internal/bench"
	"psaflow/internal/platform"
	"psaflow/internal/tasks"
)

// Table1Row is one benchmark's added-LOC record (paper Table I): the
// percentage of reference lines added by each generated design, and the
// total across the five designs. Unsynthesizable designs (Rush Larsen's
// CPU+FPGA pair) are excluded, as in the paper.
type Table1Row struct {
	Benchmark string
	RefLOC    int
	OMP       float64 // percent added LOC
	HIP1080   float64
	HIP2080   float64
	A10       float64
	S10       float64
	Total     float64
	Excluded  []string // devices excluded because the design is unsynthesizable
}

// RunTable1 regenerates Table I by running the uninformed PSA-flow on all
// benchmarks and measuring each rendered design against the reference
// source line count.
func RunTable1(logf func(string, ...any)) ([]Table1Row, error) {
	var rows []Table1Row
	for _, b := range bench.All() {
		results, err := RunBenchmark(b, tasks.Uninformed, logf)
		if err != nil {
			return nil, err
		}
		row := Table1Row{Benchmark: b.Name}
		for _, r := range results {
			d := r.Design
			row.RefLOC = d.RefLOC
			if d.Infeasible != "" || d.Artifact == nil {
				if d.Device != "" {
					row.Excluded = append(row.Excluded, d.Device)
				}
				continue
			}
			pct := 100 * float64(d.Artifact.AddedLOC) / float64(d.RefLOC)
			switch {
			case d.Target == platform.TargetCPU:
				row.OMP = pct
			case d.Device == platform.GTX1080Ti.Name:
				row.HIP1080 = pct
			case d.Device == platform.RTX2080Ti.Name:
				row.HIP2080 = pct
			case d.Device == platform.Arria10.Name:
				row.A10 = pct
			case d.Device == platform.Stratix10.Name:
				row.S10 = pct
			}
			row.Total += pct
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table1Average computes the per-column averages (the paper's final row).
// Columns with excluded designs contribute only their present values.
func Table1Average(rows []Table1Row) Table1Row {
	avg := Table1Row{Benchmark: "average"}
	if len(rows) == 0 {
		return avg
	}
	n := float64(len(rows))
	counts := [5]float64{}
	for _, r := range rows {
		avg.OMP += r.OMP
		avg.HIP1080 += r.HIP1080
		avg.HIP2080 += r.HIP2080
		avg.A10 += r.A10
		avg.S10 += r.S10
		avg.Total += r.Total
		if r.OMP > 0 {
			counts[0]++
		}
		if r.HIP1080 > 0 {
			counts[1]++
		}
		if r.HIP2080 > 0 {
			counts[2]++
		}
		if r.A10 > 0 {
			counts[3]++
		}
		if r.S10 > 0 {
			counts[4]++
		}
	}
	div := func(sum, c float64) float64 {
		if c == 0 {
			return 0
		}
		return sum / c
	}
	avg.OMP = div(avg.OMP, counts[0])
	avg.HIP1080 = div(avg.HIP1080, counts[1])
	avg.HIP2080 = div(avg.HIP2080, counts[2])
	avg.A10 = div(avg.A10, counts[3])
	avg.S10 = div(avg.S10, counts[4])
	avg.Total /= n
	return avg
}

// paperTable1 records the paper's Table I percentages.
var paperTable1 = map[string][6]float64{
	//              omp  1080 2080  a10  s10 total
	"rushlarsen":  {0.4, 6, 6, 0, 0, 0},
	"nbody":       {2, 37, 37, 52, 69, 197},
	"bezier":      {2, 26, 26, 34, 42, 130},
	"adpredictor": {2, 31, 31, 42, 63, 169},
	"kmeans":      {4, 81, 81, 101, 147, 414},
}

// PaperTable1 exposes the paper's Table I row for a benchmark:
// OMP, HIP-1080, HIP-2080, oneAPI-A10, oneAPI-S10, total.
func PaperTable1(name string) ([6]float64, bool) {
	v, ok := paperTable1[name]
	return v, ok
}

// FormatTable1 renders the measured-vs-paper added-LOC table.
func FormatTable1(rows []Table1Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %6s %8s %8s %8s %8s %8s %8s\n",
		"benchmark", "refLOC", "OMP", "HIP1080", "HIP2080", "A10", "S10", "total")
	pct := func(v float64) string {
		if v == 0 {
			return "n/a"
		}
		return fmt.Sprintf("+%.0f%%", v)
	}
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %6d %8s %8s %8s %8s %8s %8s\n",
			r.Benchmark, r.RefLOC, pct(r.OMP), pct(r.HIP1080), pct(r.HIP2080),
			pct(r.A10), pct(r.S10), pct(r.Total))
		if p, ok := PaperTable1(r.Benchmark); ok {
			fmt.Fprintf(&sb, "%-12s %6s %8s %8s %8s %8s %8s %8s\n",
				"  (paper)", "", pct(p[0]), pct(p[1]), pct(p[2]), pct(p[3]), pct(p[4]), pct(p[5]))
		}
	}
	avg := Table1Average(rows)
	fmt.Fprintf(&sb, "%-12s %6s %8s %8s %8s %8s %8s %8s\n",
		"average", "", pct(avg.OMP), pct(avg.HIP1080), pct(avg.HIP2080),
		pct(avg.A10), pct(avg.S10), pct(avg.Total))
	fmt.Fprintf(&sb, "%-12s %6s %8s %8s %8s %8s %8s %8s\n",
		"  (paper)", "", "+2%", "+36%", "+36%", "+57%", "+81%", "+212%")
	return sb.String()
}
