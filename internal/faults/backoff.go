package faults

import (
	"context"
	"time"
)

// RetryPolicy tunes per-operation retries: exponential backoff with
// deterministic jitter, a per-operation attempt cap, and a shared retry
// budget that bounds the total extra work one flow (or one service job)
// may spend recovering from faults. The zero value means "use defaults"
// — call WithDefaults before reading fields.
type RetryPolicy struct {
	// MaxAttempts is the total tries per operation, including the first
	// (default 6 — see docs/FAULTS.md for the chaos-rate math).
	MaxAttempts int
	// BaseDelay is the pre-jitter delay before the first retry (default
	// 2ms; the substrates are simulated, so delays stay test-friendly).
	BaseDelay time.Duration
	// MaxDelay caps the post-jitter delay (default 50ms).
	MaxDelay time.Duration
	// Multiplier grows the delay per retry (default 2).
	Multiplier float64
	// Jitter is the +/- fraction applied to each delay (default 0.5, i.e.
	// a delay lands uniformly in [0.5d, 1.5d)). Jitter draws are a pure
	// function of (Seed, op, attempt), so a fixed seed fixes the schedule.
	Jitter float64
	// Budget bounds the total retries across all operations sharing one
	// budget tracker (a flow run, a service job); 0 means unlimited.
	Budget int
	// Seed fixes the jitter stream (default 1).
	Seed int64
}

// DefaultRetry is the policy applied when faults are enabled and nothing
// overrides it.
var DefaultRetry = RetryPolicy{
	MaxAttempts: 6,
	BaseDelay:   2 * time.Millisecond,
	MaxDelay:    50 * time.Millisecond,
	Multiplier:  2,
	Jitter:      0.5,
	Budget:      256,
	Seed:        1,
}

// WithDefaults fills unset fields from DefaultRetry. Negative Budget means
// "explicitly unlimited" and maps to 0.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	d := DefaultRetry
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	if p.Multiplier <= 1 {
		p.Multiplier = d.Multiplier
	}
	if p.Jitter <= 0 {
		p.Jitter = d.Jitter
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.Budget == 0 {
		p.Budget = d.Budget
	}
	if p.Budget < 0 {
		p.Budget = 0
	}
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	return p
}

// Delay returns the backoff before retry number retry (1-based: the delay
// after the first failed attempt is Delay(op, 1)). Deterministic: fixed
// (Seed, op, retry) gives a fixed duration.
func (p RetryPolicy) Delay(op string, retry int) time.Duration {
	p = p.WithDefaults()
	if retry < 1 {
		retry = 1
	}
	d := float64(p.BaseDelay)
	for i := 1; i < retry; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			break
		}
	}
	// Uniform jitter in [1-J, 1+J) from the deterministic unit hash.
	u := unitHash(p.Seed, "backoff|"+op, int64(retry))
	d *= 1 - p.Jitter + 2*p.Jitter*u
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Sleep blocks for the given backoff, returning early with ctx.Err() if
// the context lands first. A nil ctx never interrupts.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do runs fn with the policy's retry loop: transient failures are retried
// with backoff until success, attempt exhaustion, a non-transient error,
// or ctx cancellation. onRetry (optional) observes each scheduled retry —
// the serving and engine layers hang their telemetry off it. The returned
// error is fn's last error, unwrapped-compatible with the Fault chain.
func (p RetryPolicy) Do(ctx context.Context, op string, onRetry func(retry int, delay time.Duration, err error), fn func() error) error {
	p = p.WithDefaults()
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil || !Transient(err) || attempt >= p.MaxAttempts {
			return err
		}
		if ctx != nil && ctx.Err() != nil {
			return err
		}
		delay := p.Delay(op, attempt)
		if onRetry != nil {
			onRetry(attempt, delay, err)
		}
		if serr := Sleep(ctx, delay); serr != nil {
			return err
		}
	}
}
