// Package faults is the fault-injection and resilience layer for the
// simulated toolchain substrates. The paper's PSA-flows exist because real
// heterogeneous toolchains fail routinely — an HLS partial compile dies or
// times out, a profiled run is flaky, an accelerator board is claimed by
// another tenant — and a design-flow that aborts on the first tool error
// cannot be automated. This package provides the two halves of surviving
// that reality:
//
//   - Injector: a deterministic, seedable source of synthetic faults that
//     the instrumented call sites (internal/tasks, internal/service) consult
//     before each simulated tool invocation. Decisions are pure functions of
//     (seed, kind, operation, occurrence index), so a chaos run replays
//     bit-identically for a given seed, even when branch paths execute on
//     concurrent goroutines.
//   - RetryPolicy: deterministic exponential backoff with jitter and a
//     per-flow retry budget, used by the flow engine (per-task retries) and
//     the serving layer (transient I/O).
//
// Fault classification (Transient, Degradable) drives the engine's two
// recovery tiers: transient faults are retried in place; non-transient (or
// retry-exhausted) faults at a branch path degrade that path to an
// Infeasible verdict and let the PSA strategy fall back to the next-best
// branch instead of aborting the flow. A nil *Injector is fully functional
// as "injection off": every method is nil-safe and returns the zero
// decision, so production paths pay nothing.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind classifies an injectable (or classified) failure.
type Kind string

// Injectable fault kinds and their real-toolchain analogues (see
// docs/FAULTS.md for the full model).
const (
	// HLS models a failed or timed-out oneAPI/dpcpp partial compile — the
	// expensive tool step of the unroll-until-overmap DSE. Transient: HLS
	// farm flakiness (license contention, OOM) clears on re-submission.
	HLS Kind = "hls"
	// Run models a flaky profiled run of the dynamic-analysis interpreter
	// (the simulated stand-in for instrumented native execution).
	// Transient: rerunning the workload usually succeeds.
	Run Kind = "run"
	// Device models an accelerator that is unavailable for the duration of
	// the flow (board held by another tenant, PCIe enumeration failure).
	// NOT transient: retrying the same device is pointless; the branch
	// degrades and the strategy falls back to another target.
	Device Kind = "device"
	// IO models transient service-layer I/O errors (result persistence,
	// snapshot writes). Transient.
	IO Kind = "io"
	// Timeout is not injectable through the Injector: the flow engine uses
	// it to classify a task that exceeded Context.TaskTimeout. Transient —
	// a timed-out tool invocation is retried like a failed one.
	Timeout Kind = "timeout"
)

// Kinds lists the injectable kinds (Timeout is classification-only).
func Kinds() []Kind { return []Kind{HLS, Run, Device, IO} }

// transientByKind records which kinds are worth retrying in place.
var transientByKind = map[Kind]bool{
	HLS: true, Run: true, IO: true, Timeout: true, Device: false,
}

// Fault is one injected (or engine-classified) failure. It is carried as
// an error through the flow so the engine can classify it anywhere in the
// wrap chain via errors.As.
type Fault struct {
	Kind Kind
	// Op names the failed operation, e.g. "run:gpu:nbody_hotspot" or an
	// FPGA device name. It keys the injector's occurrence counters.
	Op string
	// N is the 1-based occurrence index of (Kind, Op) that fired.
	N int64
	// Transient reports whether retrying the operation may succeed.
	Transient bool
}

// Error implements the error interface.
func (f *Fault) Error() string {
	verb := "failed"
	if f.Kind == Timeout {
		verb = "timed out"
	} else if !f.Transient {
		verb = "unavailable"
	}
	return fmt.Sprintf("injected fault: %s %q %s (occurrence %d)", f.Kind, f.Op, verb, f.N)
}

// AsFault extracts the innermost *Fault from err's wrap chain, or nil.
func AsFault(err error) *Fault {
	var f *Fault
	if errors.As(err, &f) {
		return f
	}
	return nil
}

// Transient reports whether err should be retried in place: its chain
// carries a Fault whose kind is retryable.
func Transient(err error) bool {
	f := AsFault(err)
	return f != nil && f.Transient
}

// Degradable reports whether err may gracefully degrade a branch path —
// i.e. it is a (possibly retry-exhausted) fault rather than a programming
// or specification error, which must still abort the flow.
func Degradable(err error) bool { return AsFault(err) != nil }

// Injector decides, deterministically, whether each instrumented operation
// fails. Decisions hash (seed, kind, op, occurrence) — not a shared PRNG
// stream — so concurrent branch paths drawing from the injector do not
// perturb each other's outcomes: as long as each (kind, op) pair is
// invoked a deterministic number of times (call sites scope op strings per
// branch path to guarantee this), a seed fully determines every fault.
type Injector struct {
	seed  int64
	rate  float64
	kinds map[Kind]bool

	mu     sync.Mutex
	counts map[string]int64 // occurrence counter per kind|op
	fired  map[Kind]int64   // injected faults per kind
}

// New returns an injector that fails each enabled operation with the given
// probability. No kinds means all injectable kinds. rate is clamped to
// [0, 1].
func New(seed int64, rate float64, kinds ...Kind) *Injector {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	km := make(map[Kind]bool)
	if len(kinds) == 0 {
		kinds = Kinds()
	}
	for _, k := range kinds {
		km[k] = true
	}
	return &Injector{
		seed:   seed,
		rate:   rate,
		kinds:  km,
		counts: make(map[string]int64),
		fired:  make(map[Kind]int64),
	}
}

// WithSeed returns a fresh injector with the same rate and kind set but
// the given seed and zeroed occurrence counters — the chaos sweep's way
// of replaying one fault profile across many seeds. Nil stays nil.
func (in *Injector) WithSeed(seed int64) *Injector {
	if in == nil {
		return nil
	}
	kinds := make([]Kind, 0, len(in.kinds))
	for k := range in.kinds {
		kinds = append(kinds, k)
	}
	return New(seed, in.rate, kinds...)
}

// Enabled reports whether the injector can ever fire. Nil-safe.
func (in *Injector) Enabled() bool { return in != nil && in.rate > 0 }

// Seed returns the injector's seed (0 for nil).
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Fail consults the injector for one operation: it returns a *Fault when
// this occurrence of (kind, op) is selected for failure, nil otherwise.
// Nil injector never fails.
func (in *Injector) Fail(kind Kind, op string) error {
	if in == nil || in.rate == 0 || !in.kinds[kind] {
		return nil
	}
	key := string(kind) + "|" + op
	in.mu.Lock()
	in.counts[key]++
	n := in.counts[key]
	hit := unitHash(in.seed, key, n) < in.rate
	if hit {
		in.fired[kind]++
	}
	in.mu.Unlock()
	if !hit {
		return nil
	}
	return &Fault{Kind: kind, Op: op, N: n, Transient: transientByKind[kind]}
}

// Injected snapshots the per-kind counts of faults fired so far.
func (in *Injector) Injected() map[Kind]int64 {
	out := make(map[Kind]int64)
	if in == nil {
		return out
	}
	in.mu.Lock()
	for k, v := range in.fired {
		out[k] = v
	}
	in.mu.Unlock()
	return out
}

// String renders the injector as a reproducible spec (the same syntax
// ParseSpec accepts).
func (in *Injector) String() string {
	if in == nil {
		return "off"
	}
	names := make([]string, 0, len(in.kinds))
	for k := range in.kinds {
		names = append(names, string(k))
	}
	sort.Strings(names)
	return fmt.Sprintf("seed=%d,rate=%g,kinds=%s", in.seed, in.rate, strings.Join(names, ","))
}

// ParseSpec builds an injector from the CLI/service flag syntax:
//
//	seed=N,rate=0.1[,kinds=hls,run,device,io]
//
// kinds consumes every following bare token (commas double as the list
// separator, so kinds must come last or each kind can be given as its own
// kinds= entry). Omitted kinds enables all injectable kinds; omitted seed
// defaults to 1. "off", "none", and "" yield a nil injector (injection
// disabled). rate is required otherwise.
func ParseSpec(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	switch spec {
	case "", "off", "none":
		return nil, nil
	}
	var (
		seed    int64 = 1
		rate          = -1.0
		kinds   []Kind
		inKinds bool
	)
	valid := make(map[Kind]bool)
	for _, k := range Kinds() {
		valid[k] = true
	}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, hasEq := strings.Cut(tok, "=")
		if !hasEq {
			if !inKinds {
				return nil, fmt.Errorf("faults: bare token %q (expected key=value; bare tokens only continue a kinds= list)", tok)
			}
			val = key
			key = "kinds"
		}
		switch key {
		case "seed":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q", val)
			}
			seed, inKinds = v, false
		case "rate":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil || v < 0 || v > 1 {
				return nil, fmt.Errorf("faults: bad rate %q (want 0..1)", val)
			}
			rate, inKinds = v, false
		case "kinds":
			k := Kind(val)
			if val == "all" {
				kinds, inKinds = append(kinds, Kinds()...), true
				continue
			}
			if !valid[k] {
				return nil, fmt.Errorf("faults: unknown kind %q (want hls, run, device, io)", val)
			}
			kinds, inKinds = append(kinds, k), true
		default:
			return nil, fmt.Errorf("faults: unknown option %q", key)
		}
	}
	if rate < 0 {
		return nil, fmt.Errorf("faults: spec %q sets no rate", spec)
	}
	if rate == 0 {
		return nil, nil
	}
	return New(seed, rate, kinds...), nil
}

// unitHash maps (seed, key, n) to a uniform float64 in [0, 1) via a
// splitmix64-style avalanche over an FNV-1a digest of the key. Pure
// function: the decision stream for one (kind, op) is fixed by the seed.
func unitHash(seed int64, key string, n int64) float64 {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	x := h ^ uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(n)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
