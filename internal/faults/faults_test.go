package faults

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec    string
		wantNil bool
		wantErr bool
		check   func(t *testing.T, in *Injector)
	}{
		{spec: "", wantNil: true},
		{spec: "off", wantNil: true},
		{spec: "none", wantNil: true},
		{spec: "rate=0", wantNil: true},
		{spec: "seed=7,rate=0.25", check: func(t *testing.T, in *Injector) {
			if in.seed != 7 || in.rate != 0.25 {
				t.Fatalf("got seed=%d rate=%g", in.seed, in.rate)
			}
			for _, k := range Kinds() {
				if !in.kinds[k] {
					t.Fatalf("kind %s not enabled by default", k)
				}
			}
		}},
		{spec: "seed=3,rate=0.1,kinds=hls,run", check: func(t *testing.T, in *Injector) {
			if !in.kinds[HLS] || !in.kinds[Run] || in.kinds[Device] || in.kinds[IO] {
				t.Fatalf("kinds = %v", in.kinds)
			}
		}},
		{spec: "rate=0.5,kinds=all", check: func(t *testing.T, in *Injector) {
			if len(in.kinds) != len(Kinds()) {
				t.Fatalf("kinds = %v", in.kinds)
			}
			if in.seed != 1 {
				t.Fatalf("default seed = %d, want 1", in.seed)
			}
		}},
		{spec: "kinds=device,rate=0.3", check: func(t *testing.T, in *Injector) {
			if !in.kinds[Device] || in.kinds[HLS] {
				t.Fatalf("kinds = %v", in.kinds)
			}
		}},
		{spec: "rate=1.5", wantErr: true},
		{spec: "rate=-1", wantErr: true},
		{spec: "seed=x,rate=0.1", wantErr: true},
		{spec: "rate=0.1,kinds=bogus", wantErr: true},
		{spec: "rate=0.1,wat=1", wantErr: true},
		{spec: "hls,rate=0.1", wantErr: true}, // bare token outside a kinds list
		{spec: "seed=1", wantErr: true},       // no rate
	}
	for _, c := range cases {
		t.Run(c.spec, func(t *testing.T) {
			in, err := ParseSpec(c.spec)
			if c.wantErr {
				if err == nil {
					t.Fatalf("ParseSpec(%q) = %v, want error", c.spec, in)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseSpec(%q): %v", c.spec, err)
			}
			if c.wantNil != (in == nil) {
				t.Fatalf("ParseSpec(%q) = %v, wantNil=%t", c.spec, in, c.wantNil)
			}
			if c.check != nil {
				c.check(t, in)
			}
		})
	}
}

func TestInjectorNilSafe(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Fatal("nil injector enabled")
	}
	if err := in.Fail(Run, "x"); err != nil {
		t.Fatalf("nil injector injected %v", err)
	}
	if got := in.Injected(); len(got) != 0 {
		t.Fatalf("nil injector counts %v", got)
	}
	if in.String() != "off" {
		t.Fatalf("nil injector String = %q", in.String())
	}
}

func TestInjectorRateExtremes(t *testing.T) {
	never := New(1, 0)
	always := New(1, 1)
	for i := 0; i < 100; i++ {
		if err := never.Fail(Run, "op"); err != nil {
			t.Fatalf("rate=0 injected at %d: %v", i, err)
		}
		if err := always.Fail(Run, "op"); err == nil {
			t.Fatalf("rate=1 passed at %d", i)
		}
	}
	if got := always.Injected()[Run]; got != 100 {
		t.Fatalf("fired = %d, want 100", got)
	}
}

// TestInjectorDeterministic asserts the core chaos property: a seed fixes
// the exact decision sequence per (kind, op), independent of interleaving
// with other operations or goroutines.
func TestInjectorDeterministic(t *testing.T) {
	draw := func(in *Injector, op string, n int) []bool {
		out := make([]bool, n)
		for i := range out {
			out[i] = in.Fail(Run, op) != nil
		}
		return out
	}
	a := draw(New(42, 0.3), "op1", 200)
	b := draw(New(42, 0.3), "op1", 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical injectors", i)
		}
	}
	hits := 0
	for _, h := range a {
		if h {
			hits++
		}
	}
	if hits < 30 || hits > 90 {
		t.Fatalf("rate=0.3 fired %d/200 times; hash looks biased", hits)
	}

	// Interleaving other ops (as concurrent branch paths do) must not
	// perturb op1's stream.
	in := New(42, 0.3)
	var c []bool
	for i := 0; i < 200; i++ {
		in.Fail(HLS, "other")
		c = append(c, in.Fail(Run, "op1") != nil)
		in.Fail(Device, "noise")
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("decision %d perturbed by interleaved ops", i)
		}
	}

	// Different seeds must diverge.
	d := draw(New(43, 0.3), "op1", 200)
	same := 0
	for i := range a {
		if a[i] == d[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 42 and 43 produced identical decision streams")
	}
}

func TestInjectorConcurrentTotalDeterministic(t *testing.T) {
	// Concurrent callers on DISTINCT ops (how branch paths scope their op
	// strings) reproduce the same per-op outcome multiset as serial calls.
	run := func() map[string]int {
		in := New(9, 0.4)
		var wg sync.WaitGroup
		var mu sync.Mutex
		got := map[string]int{}
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				op := fmt.Sprintf("path%d", g)
				n := 0
				for i := 0; i < 50; i++ {
					if in.Fail(Run, op) != nil {
						n++
					}
				}
				mu.Lock()
				got[op] = n
				mu.Unlock()
			}(g)
		}
		wg.Wait()
		return got
	}
	a, b := run(), run()
	for op, n := range a {
		if b[op] != n {
			t.Fatalf("op %s fired %d then %d times", op, n, b[op])
		}
	}
}

func TestFaultClassification(t *testing.T) {
	cases := []struct {
		kind      Kind
		transient bool
	}{
		{HLS, true}, {Run, true}, {IO, true}, {Timeout, true}, {Device, false},
	}
	for _, c := range cases {
		f := &Fault{Kind: c.kind, Op: "x", N: 1, Transient: transientByKind[c.kind]}
		wrapped := fmt.Errorf("task wrapper: %w", f)
		if Transient(wrapped) != c.transient {
			t.Errorf("Transient(%s) = %t, want %t", c.kind, Transient(wrapped), c.transient)
		}
		if !Degradable(wrapped) {
			t.Errorf("Degradable(%s) = false, want true", c.kind)
		}
		if AsFault(wrapped).Kind != c.kind {
			t.Errorf("AsFault lost the kind")
		}
	}
	plain := errors.New("no kernel extracted")
	if Transient(plain) || Degradable(plain) {
		t.Fatal("plain errors must be neither transient nor degradable")
	}
}

// TestBackoffScheduleDeterministic is the satellite table test: a fixed
// seed yields a fixed backoff schedule, different seeds/ops diverge, and
// the schedule respects base/cap/jitter bounds.
func TestBackoffScheduleDeterministic(t *testing.T) {
	pol := RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   4 * time.Millisecond,
		MaxDelay:    40 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.5,
		Seed:        11,
	}
	schedule := func(p RetryPolicy, op string) []time.Duration {
		var out []time.Duration
		for r := 1; r < p.MaxAttempts; r++ {
			out = append(out, p.Delay(op, r))
		}
		return out
	}
	cases := []struct {
		name string
		pol  RetryPolicy
		op   string
	}{
		{"base", pol, "taskA"},
		{"other-op", pol, "taskB"},
		{"other-seed", func() RetryPolicy { p := pol; p.Seed = 12; return p }(), "taskA"},
		{"defaults", RetryPolicy{}, "taskA"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := schedule(c.pol, c.op)
			b := schedule(c.pol, c.op)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("retry %d: %v then %v — schedule not deterministic", i+1, a[i], b[i])
				}
			}
			p := c.pol.WithDefaults()
			for i, d := range a {
				// Pre-cap envelope: base*mult^i scaled by [1-J, 1+J), then capped.
				raw := float64(p.BaseDelay)
				for j := 0; j < i; j++ {
					raw *= p.Multiplier
				}
				lo := time.Duration(raw * (1 - p.Jitter))
				hi := time.Duration(raw * (1 + p.Jitter))
				if lo > p.MaxDelay {
					lo = p.MaxDelay
				}
				if hi > p.MaxDelay {
					hi = p.MaxDelay
				}
				if d < lo || d > hi {
					t.Fatalf("retry %d delay %v outside [%v, %v]", i+1, d, lo, hi)
				}
			}
		})
	}
	// Distinct ops must not share a jitter stream.
	a, b := schedule(pol, "taskA"), schedule(pol, "taskB")
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("ops taskA and taskB drew identical jitter")
	}
}

func TestRetryDo(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}

	t.Run("succeeds-after-transients", func(t *testing.T) {
		calls, retries := 0, 0
		err := pol.Do(context.Background(), "op", func(int, time.Duration, error) { retries++ }, func() error {
			calls++
			if calls < 3 {
				return &Fault{Kind: Run, Op: "op", N: int64(calls), Transient: true}
			}
			return nil
		})
		if err != nil || calls != 3 || retries != 2 {
			t.Fatalf("err=%v calls=%d retries=%d", err, calls, retries)
		}
	})

	t.Run("exhausts-attempts", func(t *testing.T) {
		calls := 0
		err := pol.Do(context.Background(), "op", nil, func() error {
			calls++
			return &Fault{Kind: Run, Op: "op", N: int64(calls), Transient: true}
		})
		if err == nil || calls != pol.MaxAttempts {
			t.Fatalf("err=%v calls=%d want %d", err, calls, pol.MaxAttempts)
		}
		if !Degradable(err) {
			t.Fatal("exhausted error lost its fault classification")
		}
	})

	t.Run("non-transient-fails-fast", func(t *testing.T) {
		calls := 0
		err := pol.Do(context.Background(), "op", nil, func() error {
			calls++
			return &Fault{Kind: Device, Op: "op", N: 1}
		})
		if err == nil || calls != 1 {
			t.Fatalf("err=%v calls=%d want 1", err, calls)
		}
	})

	t.Run("cancelled-context-stops", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		calls := 0
		err := pol.Do(ctx, "op", nil, func() error {
			calls++
			return &Fault{Kind: IO, Op: "op", N: 1, Transient: true}
		})
		if err == nil || calls != 1 {
			t.Fatalf("err=%v calls=%d want 1", err, calls)
		}
	})
}

func TestSpecRoundTrip(t *testing.T) {
	in, err := ParseSpec("seed=5,rate=0.2,kinds=hls,run")
	if err != nil {
		t.Fatal(err)
	}
	in2, err := ParseSpec(in.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", in.String(), err)
	}
	if in2.seed != in.seed || in2.rate != in.rate || len(in2.kinds) != len(in.kinds) {
		t.Fatalf("round trip lost config: %q vs %q", in.String(), in2.String())
	}
}
