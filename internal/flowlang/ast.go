package flowlang

// The AST mirrors the document structure one-to-one. Every node keeps the
// position of its leading keyword (and of every name it binds), so the
// validator can anchor each diagnostic to the exact source span.

// File is one parsed .psa document: named reusable fragments followed by
// the flow itself.
type File struct {
	Defs []*DefDecl
	Flow *FlowDecl
}

// DefDecl is a named, reusable statement sequence ("def" string block),
// inlined wherever a UseStmt names it.
type DefDecl struct {
	KwPos   Pos
	Name    string
	NamePos Pos
	Body    []Stmt
}

// FlowDecl is the document's flow: settings first, then statements.
type FlowDecl struct {
	KwPos    Pos
	Name     string
	NamePos  Pos
	Settings []*Setting
	Body     []Stmt
}

// SettingKind discriminates flow-level settings.
type SettingKind int

// Flow-level settings: a cost budget for gated branches, a default
// fault-injection spec, and the engine retry policy.
const (
	SetBudget SettingKind = iota
	SetFaults
	SetRetry
)

func (k SettingKind) String() string {
	switch k {
	case SetBudget:
		return "budget"
	case SetFaults:
		return "faults"
	default:
		return "retry"
	}
}

// Setting is one flow-level setting. Budget uses Value; Faults uses Text;
// Retry uses Attempts/RetryBudget with their Has* flags.
type Setting struct {
	KwPos Pos
	Kind  SettingKind

	Value    float64 // budget <number>
	ValuePos Pos

	Text    string // faults "<spec>"
	TextPos Pos

	Attempts    int // retry attempts=<int> [budget=<int>]
	RetryBudget int
	HasAttempts bool
	HasBudget   bool
}

// Stmt is a flow statement: a task step, a branch point, a conditional
// group, or a fragment use.
type Stmt interface {
	Pos() Pos
	stmtNode()
}

// TaskStmt is "task" ident [ "(" ident ")" ]: one engine task, with the
// device loop variable for device-parameterized tasks.
type TaskStmt struct {
	KwPos   Pos
	Name    string
	NamePos Pos
	Arg     string // device variable; "" for parameterless tasks
	ArgPos  Pos
}

// UseStmt is "use" string: inline the named def's statements here.
type UseStmt struct {
	KwPos   Pos
	Name    string
	NamePos Pos
}

// Cond is a when-condition: an optionally negated flow option ("sharing",
// "informed", "uninformed") or a device property ("<var>.usm").
type Cond struct {
	NotPos  Pos
	Neg     bool
	Name    string // base identifier
	NamePos Pos
	Prop    string // property after '.'; "" for flow options
	PropPos Pos
}

// String renders the condition as written.
func (c Cond) String() string {
	s := c.Name
	if c.Prop != "" {
		s += "." + c.Prop
	}
	if c.Neg {
		s = "!" + s
	}
	return s
}

// WhenStmt is "when" cond block: the body is included only when the
// condition holds for the compile-time flow options (mode, sharing) or the
// bound device.
type WhenStmt struct {
	KwPos Pos
	Cond  Cond
	Body  []Stmt
}

// BranchArm is one alternative group at a branch point: an explicit path
// or a foreach generating one path per catalog device.
type BranchArm interface {
	Pos() Pos
	armNode()
}

// PathArm is `path "name" [as "flow-name"] block`. The sub-flow's
// telemetry name defaults to the path name; "as" overrides it (the paper
// flow names its target sub-flows "gpu-path"/"fpga-path"/"cpu-path" while
// the paths stay "gpu"/"fpga"/"cpu" for the informed strategy).
type PathArm struct {
	KwPos       Pos
	Name        string
	NamePos     Pos
	FlowName    string // "" = path name
	FlowNamePos Pos
	Body        []Stmt
}

// ForeachArm is `foreach var in set block`: one path per device of the
// named catalog set ("gpus" or "fpgas"), the path named after the device
// and its sub-flow "<enclosing path>/<device>". The loop variable binds
// device-parameterized tasks and device-property conditions in the body.
type ForeachArm struct {
	KwPos  Pos
	Var    string
	VarPos Pos
	Set    string
	SetPos Pos
	Body   []Stmt
}

// Strategy names a branch selector, with optional tuning arguments
// (ai-threshold, transfer-bw) for the informed strategies.
type Strategy struct {
	Pos  Pos
	Name string // "auto", "informed", or "all"
	Args []StrategyArg
}

// StrategyArg is one key=number tuning argument.
type StrategyArg struct {
	Key    string
	KeyPos Pos
	Val    float64
	ValPos Pos
}

// BranchStmt is a PSA branch point: named alternatives plus a selection
// strategy, optionally gated by the budget feedback loop.
type BranchStmt struct {
	KwPos     Pos
	Name      string
	NamePos   Pos
	Strategy  Strategy
	Gated     bool
	Revisions int
	HasRev    bool
	RevPos    Pos
	Arms      []BranchArm
}

func (s *TaskStmt) Pos() Pos   { return s.KwPos }
func (s *UseStmt) Pos() Pos    { return s.KwPos }
func (s *WhenStmt) Pos() Pos   { return s.KwPos }
func (s *BranchStmt) Pos() Pos { return s.KwPos }

func (*TaskStmt) stmtNode()   {}
func (*UseStmt) stmtNode()    {}
func (*WhenStmt) stmtNode()   {}
func (*BranchStmt) stmtNode() {}

func (a *PathArm) Pos() Pos    { return a.KwPos }
func (a *ForeachArm) Pos() Pos { return a.KwPos }

func (*PathArm) armNode()    {}
func (*ForeachArm) armNode() {}
