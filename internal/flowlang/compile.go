package flowlang

import (
	"fmt"

	"psaflow/internal/core"
	"psaflow/internal/faults"
	"psaflow/internal/platform"
	"psaflow/internal/tasks"
)

// Options fixes the compile-time flow options: the DSL's when-conditions
// (sharing, informed, uninformed) and the "auto" strategy resolve against
// them, exactly as FlowOptions configures the hard-coded graph.
type Options struct {
	Mode     tasks.Mode
	Sharing  bool
	Strategy tasks.StrategyConfig // zero value = tasks.DefaultStrategy
}

// Compiled is a lowered flow plus the flow-level settings the caller wires
// into the execution context (core.Context.Budget, the fault injector, the
// engine retry policy).
type Compiled struct {
	Flow     *core.Flow
	Budget   float64
	Faults   string // faults-spec text; "" when the flow sets none
	Retry    faults.RetryPolicy
	HasRetry bool
}

// Compile lowers a parsed file onto the core engine. It validates first —
// passing an invalid file returns the full *ErrorList — so lowering itself
// only deals with well-formed input.
func Compile(f *File, opts Options) (*Compiled, error) {
	if err := Validate(f); err != nil {
		return nil, err
	}
	if opts.Strategy == (tasks.StrategyConfig{}) {
		opts.Strategy = tasks.DefaultStrategy
	}
	c := &compiler{opts: opts, defs: map[string]*DefDecl{}}
	for _, d := range f.Defs {
		c.defs[d.Name] = d
	}
	out := &Compiled{Flow: &core.Flow{Name: f.Flow.Name}}
	for _, s := range f.Flow.Settings {
		switch s.Kind {
		case SetBudget:
			out.Budget = s.Value
		case SetFaults:
			out.Faults = s.Text
		case SetRetry:
			out.HasRetry = true
			out.Retry = faults.RetryPolicy{MaxAttempts: s.Attempts, Budget: s.RetryBudget}
			if s.HasBudget && s.RetryBudget == 0 {
				out.Retry.Budget = -1 // explicit budget=0 means unlimited
			}
		}
	}
	if err := c.lower(out.Flow, f.Flow.Body, binding{pathName: f.Flow.Name}); err != nil {
		return nil, err
	}
	return out, nil
}

// CompileSource parses, validates, and compiles a .psa document.
func CompileSource(src string, opts Options) (*Compiled, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(f, opts)
}

// binding is the lowering context: the enclosing path name (prefix for
// foreach-generated sub-flow names) and the bound device, if any.
type binding struct {
	pathName string
	devVar   string
	devClass DeviceClass
	gpu      platform.GPUSpec
	fpga     platform.FPGASpec
}

// compiler lowers validated statements onto core flows.
type compiler struct {
	opts Options
	defs map[string]*DefDecl
}

// lower appends the lowered form of stmts to flow.
func (c *compiler) lower(flow *core.Flow, stmts []Stmt, b binding) error {
	for _, st := range stmts {
		switch s := st.(type) {
		case *TaskStmt:
			t, err := c.lowerTask(s, b)
			if err != nil {
				return err
			}
			flow.AddTask(t)
		case *UseStmt:
			if err := c.lower(flow, c.defs[s.Name].Body, b); err != nil {
				return err
			}
		case *WhenStmt:
			ok, err := c.eval(s.Cond, b)
			if err != nil {
				return err
			}
			if ok {
				if err := c.lower(flow, s.Body, b); err != nil {
					return err
				}
			}
		case *BranchStmt:
			br, err := c.lowerBranch(s, b)
			if err != nil {
				return err
			}
			flow.AddBranch(br)
		}
	}
	return nil
}

func (c *compiler) lowerTask(s *TaskStmt, b binding) (core.Task, error) {
	entry := taskRegistry[s.Name]
	if s.Arg == "" {
		return entry.Plain, nil
	}
	if s.Arg != b.devVar {
		return nil, fmt.Errorf("flowlang: internal: unbound device variable %q at %s", s.Arg, s.ArgPos)
	}
	if entry.Class == DevGPU {
		return entry.GPU(b.gpu), nil
	}
	return entry.FPGA(b.fpga), nil
}

// eval resolves a when-condition at compile time.
func (c *compiler) eval(cond Cond, b binding) (bool, error) {
	var val bool
	switch {
	case cond.Prop == "":
		switch cond.Name {
		case "sharing":
			val = c.opts.Sharing
		case "informed":
			val = c.opts.Mode == tasks.Informed
		case "uninformed":
			val = c.opts.Mode == tasks.Uninformed
		default:
			return false, fmt.Errorf("flowlang: internal: unknown condition %q at %s", cond.Name, cond.NamePos)
		}
	case cond.Name == b.devVar && b.devClass == DevFPGA && cond.Prop == "usm":
		val = b.fpga.USM
	default:
		return false, fmt.Errorf("flowlang: internal: unresolvable condition %q at %s", cond, cond.NamePos)
	}
	if cond.Neg {
		val = !val
	}
	return val, nil
}

func (c *compiler) lowerBranch(s *BranchStmt, b binding) (core.Branch, error) {
	br := core.Branch{PointName: s.Name, Gated: s.Gated}
	if s.HasRev {
		br.MaxRevisions = s.Revisions
	}

	cfg := c.opts.Strategy
	for _, a := range s.Strategy.Args {
		switch a.Key {
		case "ai-threshold":
			cfg.AIThreshold = a.Val
		case "transfer-bw":
			cfg.TransferBW = a.Val
		}
	}
	switch s.Strategy.Name {
	case "informed":
		br.Select = tasks.InformedSelector(cfg)
	case "auto":
		if c.opts.Mode == tasks.Informed {
			br.Select = tasks.InformedSelector(cfg)
		} else {
			br.Select = core.SelectAll{}
		}
	default: // "all"
		br.Select = core.SelectAll{}
	}

	for _, arm := range s.Arms {
		switch a := arm.(type) {
		case *PathArm:
			name := a.FlowName
			if name == "" {
				name = a.Name
			}
			sub := &core.Flow{Name: name}
			inner := b
			inner.pathName = a.Name
			if err := c.lower(sub, a.Body, inner); err != nil {
				return core.Branch{}, err
			}
			br.Paths = append(br.Paths, core.Path{Name: a.Name, Flow: sub})
		case *ForeachArm:
			paths, err := c.lowerForeach(a, b)
			if err != nil {
				return core.Branch{}, err
			}
			br.Paths = append(br.Paths, paths...)
		}
	}
	return br, nil
}

// lowerForeach expands a foreach arm into one path per catalog device, in
// catalog order. Each device's sub-flow is named "<enclosing path>/<device>"
// — the same scheme as the hard-coded graph's "gpu/<dev>" and "fpga/<dev>"
// flows — and the path itself is named after the device.
func (c *compiler) lowerForeach(a *ForeachArm, b binding) ([]core.Path, error) {
	var paths []core.Path
	expand := func(name string, inner binding) error {
		sub := &core.Flow{Name: b.pathName + "/" + name}
		inner.pathName = name
		if err := c.lower(sub, a.Body, inner); err != nil {
			return err
		}
		paths = append(paths, core.Path{Name: name, Flow: sub})
		return nil
	}
	switch deviceSets[a.Set] {
	case DevGPU:
		for _, dev := range platform.GPUs() {
			inner := b
			inner.devVar, inner.devClass, inner.gpu = a.Var, DevGPU, dev
			if err := expand(dev.Name, inner); err != nil {
				return nil, err
			}
		}
	default: // DevFPGA
		for _, dev := range platform.FPGAs() {
			inner := b
			inner.devVar, inner.devClass, inner.fpga = a.Var, DevFPGA, dev
			if err := expand(dev.Name, inner); err != nil {
				return nil, err
			}
		}
	}
	return paths, nil
}
