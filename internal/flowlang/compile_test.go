package flowlang_test

import (
	"fmt"
	"testing"

	"psaflow/internal/core"
	"psaflow/internal/flowlang"
	"psaflow/internal/tasks"
)

// flowEqual compares two flow graphs structurally: flow names, node order,
// task identities, and branch shape (point name, selector name, gating,
// revision bound, path names) — everything that determines execution.
func flowEqual(a, b *core.Flow, path string) error {
	if a.Name != b.Name {
		return fmt.Errorf("%s: flow name %q != %q", path, a.Name, b.Name)
	}
	if len(a.Nodes) != len(b.Nodes) {
		return fmt.Errorf("%s (%s): %d nodes != %d", path, a.Name, len(a.Nodes), len(b.Nodes))
	}
	for i := range a.Nodes {
		at := fmt.Sprintf("%s/%s[%d]", path, a.Name, i)
		switch an := a.Nodes[i].(type) {
		case core.Step:
			bn, ok := b.Nodes[i].(core.Step)
			if !ok {
				return fmt.Errorf("%s: Step != %T", at, b.Nodes[i])
			}
			if an.Task.Name() != bn.Task.Name() {
				return fmt.Errorf("%s: task %q != %q", at, an.Task.Name(), bn.Task.Name())
			}
			if an.Task.Kind() != bn.Task.Kind() || an.Task.Dynamic() != bn.Task.Dynamic() {
				return fmt.Errorf("%s: task %q kind/dyn mismatch", at, an.Task.Name())
			}
		case core.Branch:
			bn, ok := b.Nodes[i].(core.Branch)
			if !ok {
				return fmt.Errorf("%s: Branch != %T", at, b.Nodes[i])
			}
			if an.PointName != bn.PointName || an.Gated != bn.Gated || an.MaxRevisions != bn.MaxRevisions {
				return fmt.Errorf("%s: branch header %q/%v/%d != %q/%v/%d", at,
					an.PointName, an.Gated, an.MaxRevisions, bn.PointName, bn.Gated, bn.MaxRevisions)
			}
			if an.Select.Name() != bn.Select.Name() {
				return fmt.Errorf("%s: branch %q selector %q != %q", at, an.PointName, an.Select.Name(), bn.Select.Name())
			}
			if len(an.Paths) != len(bn.Paths) {
				return fmt.Errorf("%s: branch %q has %d paths != %d", at, an.PointName, len(an.Paths), len(bn.Paths))
			}
			for j := range an.Paths {
				if an.Paths[j].Name != bn.Paths[j].Name {
					return fmt.Errorf("%s: branch %q path %d: %q != %q", at, an.PointName, j, an.Paths[j].Name, bn.Paths[j].Name)
				}
				if err := flowEqual(an.Paths[j].Flow, bn.Paths[j].Flow, at+"/"+an.Paths[j].Name); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("%s: unknown node %T", at, a.Nodes[i])
		}
	}
	return nil
}

// TestPaperFlowStructuralDiff is the correctness anchor: examples/flows/
// paper.psa must compile to a graph structurally identical to the
// hard-coded tasks.BuildPSAFlowWithOptions in every mode × sharing
// combination.
func TestPaperFlowStructuralDiff(t *testing.T) {
	src := readExample(t, "paper.psa")
	for _, mode := range []tasks.Mode{tasks.Informed, tasks.Uninformed} {
		for _, sharing := range []bool{false, true} {
			name := fmt.Sprintf("mode=%v/sharing=%v", mode, sharing)
			opts := tasks.FlowOptions{Mode: mode, Strategy: tasks.DefaultStrategy, ResourceSharing: sharing}
			want := tasks.BuildPSAFlowWithOptions(opts)
			got, err := flowlang.CompileSource(src, flowlang.Options{Mode: mode, Sharing: sharing})
			if err != nil {
				t.Fatalf("%s: compile: %v", name, err)
			}
			if err := flowEqual(got.Flow, want, ""); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}
	}
}

func TestCompileSettings(t *testing.T) {
	src := `flow "d" {
  budget 2.5
  faults "seed=3,rate=0.1,kinds=hls"
  retry attempts=5 budget=12
  task identify-hotspots
}`
	c, err := flowlang.CompileSource(src, flowlang.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Budget != 2.5 {
		t.Errorf("Budget = %g", c.Budget)
	}
	if c.Faults != "seed=3,rate=0.1,kinds=hls" {
		t.Errorf("Faults = %q", c.Faults)
	}
	if !c.HasRetry || c.Retry.MaxAttempts != 5 || c.Retry.Budget != 12 {
		t.Errorf("Retry = %+v has=%v", c.Retry, c.HasRetry)
	}
}

func TestCompileWhenResolution(t *testing.T) {
	src := `flow "d" {
  when sharing { task identify-hotspots }
  when !sharing { task extract-hotspot }
  when informed { task pointer-analysis }
  when uninformed { task data-in-out }
}`
	taskNames := func(f *core.Flow) []string {
		var out []string
		for _, n := range f.Nodes {
			out = append(out, n.(core.Step).Task.Name())
		}
		return out
	}
	c, err := flowlang.CompileSource(src, flowlang.Options{Mode: tasks.Informed, Sharing: true})
	if err != nil {
		t.Fatal(err)
	}
	// Task.Name() is the engine's display name, not the DSL identifier.
	got := taskNames(c.Flow)
	if len(got) != 2 || got[0] != "Identify Hotspot Loops" || got[1] != "Pointer Analysis" {
		t.Errorf("informed+sharing tasks = %v", got)
	}
	c, err = flowlang.CompileSource(src, flowlang.Options{Mode: tasks.Uninformed})
	if err != nil {
		t.Fatal(err)
	}
	got = taskNames(c.Flow)
	if len(got) != 2 || got[0] != "Hotspot Loop Extraction" || got[1] != "Data In/Out Analysis" {
		t.Errorf("uninformed tasks = %v", got)
	}
}

func TestCompileRejectsInvalid(t *testing.T) {
	_, err := flowlang.CompileSource(`flow "d" { task frobnicate }`, flowlang.Options{})
	if err == nil {
		t.Fatal("want validation error")
	}
	if _, ok := err.(*flowlang.ErrorList); !ok {
		t.Fatalf("error is %T, want *ErrorList", err)
	}
}

// TestCompileStrategyArgs checks per-branch strategy tuning produces a
// distinct informed selector configuration (observable only structurally:
// the selector name stays "informed-fig3"; behaviour is covered by the
// engine's own strategy tests).
func TestCompileStrategyArgs(t *testing.T) {
	src := `flow "d" {
  branch "A" strategy informed(ai-threshold=2, transfer-bw=1e9) {
    path "gpu" { task generate-hip }
    path "fpga" { task generate-oneapi }
    path "cpu" { task omp-parallel-loops }
  }
}`
	c, err := flowlang.CompileSource(src, flowlang.Options{Mode: tasks.Uninformed})
	if err != nil {
		t.Fatal(err)
	}
	br := c.Flow.Nodes[0].(core.Branch)
	if br.Select.Name() != "informed-fig3" {
		t.Errorf("selector = %q (strategy informed must not follow the uninformed mode)", br.Select.Name())
	}
}
