package flowlang_test

import (
	"context"
	"fmt"
	"testing"

	"psaflow/internal/bench"
	"psaflow/internal/core"
	"psaflow/internal/experiments"
	"psaflow/internal/flowlang"
	"psaflow/internal/tasks"
	"psaflow/internal/telemetry"
)

// resultFingerprint flattens everything Fig. 5 reports about one design —
// label, verdict, speedup, breakdown, and the full provenance trace — into
// a comparable string.
func resultFingerprint(rs []experiments.DesignResult) []string {
	var out []string
	for _, r := range rs {
		s := fmt.Sprintf("%s infeasible=%v speedup=%v kernel=%v total=%v note=%q",
			r.Design.Label(), r.Infeasible, r.Speedup,
			r.Breakdown.KernelTime, r.Breakdown.Total, r.Breakdown.Note)
		for _, ev := range r.Design.Trace {
			s += fmt.Sprintf("\n  %s %s %s", ev.Kind, ev.Name, ev.Detail)
		}
		out = append(out, s)
	}
	return out
}

// TestPaperFlowExecutionDiff is the execution half of the correctness
// anchor: running examples/flows/paper.psa through the Fig. 5 harness must
// produce bit-identical results — labels, speedups, verdicts, traces, and
// the engine's telemetry counters — to the hard-coded graph, in both modes.
func TestPaperFlowExecutionDiff(t *testing.T) {
	src := readExample(t, "paper.psa")
	b, err := bench.ByName("nbody")
	if err != nil {
		t.Fatal(err)
	}
	counters := []string{
		telemetry.CounterInterpRuns, telemetry.CounterInterpOps, telemetry.CounterInterpCycles,
		telemetry.CounterHLSPartialCompiles, telemetry.CounterDesignsForked,
		telemetry.CounterRunCacheHits, telemetry.CounterRunCacheMisses,
		telemetry.CounterBudgetRevisions,
	}
	for _, mode := range []tasks.Mode{tasks.Informed, tasks.Uninformed} {
		opts := tasks.FlowOptions{Mode: mode, Strategy: tasks.DefaultStrategy}

		recWant := telemetry.New()
		want, err := experiments.RunBenchmarkEnv(context.Background(), b, nil, opts,
			experiments.JobEnv{}, nil, recWant, core.NewRunCache())
		if err != nil {
			t.Fatalf("mode %v: hard-coded flow: %v", mode, err)
		}

		compiled, err := flowlang.CompileSource(src, flowlang.Options{Mode: mode})
		if err != nil {
			t.Fatalf("mode %v: compile: %v", mode, err)
		}
		recGot := telemetry.New()
		got, err := experiments.RunBenchmarkEnv(context.Background(), b, nil, opts,
			experiments.JobEnv{Flow: compiled.Flow}, nil, recGot, core.NewRunCache())
		if err != nil {
			t.Fatalf("mode %v: DSL flow: %v", mode, err)
		}

		wantFP, gotFP := resultFingerprint(want), resultFingerprint(got)
		if len(wantFP) != len(gotFP) {
			t.Fatalf("mode %v: %d designs != %d\nhard-coded: %v\nDSL: %v",
				mode, len(wantFP), len(gotFP), wantFP, gotFP)
		}
		for i := range wantFP {
			if wantFP[i] != gotFP[i] {
				t.Errorf("mode %v: design %d differs\nhard-coded: %s\nDSL:        %s",
					mode, i, wantFP[i], gotFP[i])
			}
		}
		for _, c := range counters {
			if w, g := recWant.Counter(c), recGot.Counter(c); w != g {
				t.Errorf("mode %v: counter %s: hard-coded %d, DSL %d", mode, c, w, g)
			}
		}
	}
}

// TestMinimalFlowRuns smoke-runs the bundled two-task flow end to end.
func TestMinimalFlowRuns(t *testing.T) {
	b, err := bench.ByName("nbody")
	if err != nil {
		t.Fatal(err)
	}
	c, err := flowlang.CompileSource(readExample(t, "minimal.psa"), flowlang.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := experiments.RunBenchmarkEnv(context.Background(), b, nil,
		tasks.FlowOptions{Mode: tasks.Uninformed, Strategy: tasks.DefaultStrategy},
		experiments.JobEnv{Flow: c.Flow}, nil, nil, core.NewRunCache())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("got %d designs, want 1", len(rs))
	}
}
