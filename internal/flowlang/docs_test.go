package flowlang_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"psaflow/internal/flowlang"
)

// TestDocsCoverage is the checkdocs gate for the language reference: every
// keyword, task name, device set, strategy, condition, and validation
// error code the implementation knows must appear in docs/FLOWS.md, so an
// undocumented construct fails CI.
func TestDocsCoverage(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "FLOWS.md"))
	if err != nil {
		t.Fatalf("read docs/FLOWS.md: %v", err)
	}
	doc := string(raw)

	check := func(group, item string) {
		if !strings.Contains(doc, item) {
			t.Errorf("docs/FLOWS.md does not mention %s %q", group, item)
		}
	}
	for _, kw := range []string{
		"flow", "def", "use", "task", "branch", "path", "foreach", "in",
		"as", "when", "strategy", "gated", "revisions", "budget", "retry",
		"faults",
	} {
		check("keyword", kw)
	}
	for _, name := range flowlang.TaskNames() {
		check("task", "`"+name+"`")
	}
	for _, code := range flowlang.ErrorCodes() {
		check("error code", "`"+code+"`")
	}
	for _, s := range []string{"auto", "informed", "all"} {
		check("strategy", s)
	}
	for _, s := range []string{"gpus", "fpgas"} {
		check("device set", "`"+s+"`")
	}
	for _, s := range []string{"sharing", "informed", "uninformed", "usm"} {
		check("condition", s)
	}
	for _, s := range []string{"ai-threshold", "transfer-bw"} {
		check("strategy argument", "`"+s+"`")
	}
	for _, s := range []string{"PUT /v1/flows/", "GET /v1/flows", "flowlang.compiles", "flowlang.registry."} {
		check("registry reference", s)
	}
	for _, s := range []string{"examples/flows/paper.psa", "examples/flows/minimal.psa", "examples/flows/faults.psa"} {
		check("example", s)
	}
}
