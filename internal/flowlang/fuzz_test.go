package flowlang_test

import (
	"os"
	"path/filepath"
	"testing"

	"psaflow/internal/flowlang"
)

// FuzzFlowParse feeds arbitrary byte strings to the flow front end
// (seeded with the bundled example flows, like minic's bench-seeded
// FuzzParse). Parse must either return a file or an error — never panic,
// never overflow the stack — regardless of input: the psaflowd flow
// registry hands it untrusted documents straight off the wire.
func FuzzFlowParse(f *testing.F) {
	for _, name := range []string{"paper.psa", "minimal.psa", "faults.psa"} {
		src, err := os.ReadFile(filepath.Join("..", "..", "examples", "flows", name))
		if err != nil {
			f.Fatalf("read example %s: %v", name, err)
		}
		f.Add(string(src))
	}
	f.Add("")
	f.Add(`flow "d" { task identify-hotspots }`)
	f.Add(`flow "d" { budget 1.5 retry attempts=3 budget=8 task render-design }`)
	f.Add(`def "a" { use "a" } flow "d" { use "a" }`)
	f.Add(`flow "d" { branch "A" strategy informed(ai-threshold=6, transfer-bw=12e9) gated { path "cpu" { task omp-parallel-loops } } }`)
	f.Add(`flow "d" { branch "B" strategy all { foreach dev in gpus { when dev.usm { task zero-copy(dev) } } } }`)
	f.Add(`flow "未完 { task`)
	f.Add("flow \"d\" {\n  # comment\n  // comment\n}")
	f.Add(`flow "\x"`)
	f.Fuzz(func(t *testing.T, src string) {
		file, err := flowlang.Parse(src)
		if err == nil && file == nil {
			t.Fatal("Parse returned nil file and nil error")
		}
		if err != nil {
			return
		}
		// Anything that parses must also survive validation (collecting
		// diagnostics, not panicking), and anything that validates must
		// compile.
		if verr := flowlang.Validate(file); verr == nil {
			if _, cerr := flowlang.CompileSource(src, flowlang.Options{}); cerr != nil {
				t.Fatalf("validated flow failed to compile: %v", cerr)
			}
		}
	})
}
