package flowlang

import (
	"fmt"
	"strings"
	"unicode"
)

// LexError describes a lexical error with its position.
type LexError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *LexError) Error() string { return fmt.Sprintf("lex %s: %s", e.Pos, e.Msg) }

// Lexer turns flow-DSL source text into a token stream. Comments run from
// '#' or "//" to end of line. Identifiers may contain '-' (task names are
// kebab-case), so "a-b" is one identifier, never a subtraction — the
// language has no arithmetic.
type Lexer struct {
	src  []rune
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1}
}

// Lex tokenizes the entire input, returning the token list terminated by a
// TokEOF token.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peek() rune {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() rune {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() rune {
	if lx.off >= len(lx.src) {
		return 0
	}
	r := lx.src[lx.off]
	lx.off++
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) errorf(p Pos, format string, args ...any) error {
	return &LexError{Pos: p, Msg: fmt.Sprintf(format, args...)}
}

// skipWS consumes whitespace and comments.
func (lx *Lexer) skipWS() {
	for {
		r := lx.peek()
		switch {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			lx.advance()
		case r == '#', r == '/' && lx.peek2() == '/':
			for lx.peek() != 0 && lx.peek() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	lx.skipWS()
	p := lx.pos()
	r := lx.peek()
	switch {
	case r == 0:
		return Token{Kind: TokEOF, Pos: p}, nil
	case isIdentStart(r):
		return lx.lexIdent(p), nil
	case unicode.IsDigit(r):
		return lx.lexNumber(p)
	case r == '"':
		return lx.lexString(p)
	}
	lx.advance()
	switch r {
	case '{':
		return Token{Kind: TokLBrace, Pos: p}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: p}, nil
	case '(':
		return Token{Kind: TokLParen, Pos: p}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: p}, nil
	case ',':
		return Token{Kind: TokComma, Pos: p}, nil
	case '=':
		return Token{Kind: TokAssign, Pos: p}, nil
	case '!':
		return Token{Kind: TokNot, Pos: p}, nil
	case '.':
		return Token{Kind: TokDot, Pos: p}, nil
	}
	return Token{}, lx.errorf(p, "unexpected character %q", r)
}

func (lx *Lexer) lexIdent(p Pos) Token {
	var sb strings.Builder
	for isIdentPart(lx.peek()) {
		sb.WriteRune(lx.advance())
	}
	name := sb.String()
	if kw, ok := keywords[name]; ok {
		return Token{Kind: kw, Lit: name, Pos: p}
	}
	return Token{Kind: TokIdent, Lit: name, Pos: p}
}

func (lx *Lexer) lexNumber(p Pos) (Token, error) {
	var sb strings.Builder
	for unicode.IsDigit(lx.peek()) {
		sb.WriteRune(lx.advance())
	}
	if lx.peek() == '.' && unicode.IsDigit(lx.peek2()) {
		sb.WriteRune(lx.advance())
		for unicode.IsDigit(lx.peek()) {
			sb.WriteRune(lx.advance())
		}
	}
	if lx.peek() == 'e' || lx.peek() == 'E' {
		sb.WriteRune(lx.advance())
		if lx.peek() == '+' || lx.peek() == '-' {
			sb.WriteRune(lx.advance())
		}
		if !unicode.IsDigit(lx.peek()) {
			return Token{}, lx.errorf(p, "malformed exponent in number %q", sb.String())
		}
		for unicode.IsDigit(lx.peek()) {
			sb.WriteRune(lx.advance())
		}
	}
	return Token{Kind: TokNumber, Lit: sb.String(), Pos: p}, nil
}

func (lx *Lexer) lexString(p Pos) (Token, error) {
	lx.advance() // opening quote
	var sb strings.Builder
	for {
		r := lx.peek()
		if r == 0 || r == '\n' {
			return Token{}, lx.errorf(p, "unterminated string literal")
		}
		if r == '"' {
			lx.advance()
			return Token{Kind: TokString, Lit: sb.String(), Pos: p}, nil
		}
		if r == '\\' {
			lx.advance()
			esc := lx.advance()
			switch esc {
			case 'n':
				sb.WriteRune('\n')
			case 't':
				sb.WriteRune('\t')
			case '\\', '"':
				sb.WriteRune(esc)
			default:
				return Token{}, lx.errorf(p, "unsupported escape \\%c", esc)
			}
			continue
		}
		sb.WriteRune(lx.advance())
	}
}
