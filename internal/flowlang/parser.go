package flowlang

import (
	"fmt"
	"strconv"
)

// ParseError describes a syntax error with its position.
type ParseError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *ParseError) Error() string { return fmt.Sprintf("parse %s: %s", e.Pos, e.Msg) }

// Parser is a recursive-descent parser for the flow DSL.
type Parser struct {
	toks  []Token
	pos   int
	depth int
}

// maxParseDepth bounds block nesting. Without it, input like a megabyte of
// "when x {" drives the recursive descent deep enough to fatally overflow
// the goroutine stack — unrecoverable in Go, so a single malicious
// document would kill a process parsing untrusted input (the psaflowd flow
// registry accepts documents over HTTP). Real flows nest a few levels; the
// limit is far above anything legitimate.
const maxParseDepth = 10000

// enter guards one recursion level; callers must pair it with leave.
func (p *Parser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		return p.errorf("nesting too deep (more than %d levels)", maxParseDepth)
	}
	return nil
}

func (p *Parser) leave() { p.depth-- }

// Parse lexes and parses src into a File.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseFile()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(k TokKind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k TokKind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	return Token{}, p.errorf("expected %s, found %s", k, p.cur())
}

func (p *Parser) errorf(format string, args ...any) error {
	return &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

// parseFile parses { def } flow EOF.
func (p *Parser) parseFile() (*File, error) {
	f := &File{}
	for p.at(TokKwDef) {
		d, err := p.parseDef()
		if err != nil {
			return nil, err
		}
		f.Defs = append(f.Defs, d)
	}
	if !p.at(TokKwFlow) {
		return nil, p.errorf("expected flow declaration, found %s", p.cur())
	}
	fl, err := p.parseFlow()
	if err != nil {
		return nil, err
	}
	f.Flow = fl
	if !p.at(TokEOF) {
		return nil, p.errorf("expected EOF after flow declaration, found %s", p.cur())
	}
	return f, nil
}

// parseDef parses `def "name" { stmts }`.
func (p *Parser) parseDef() (*DefDecl, error) {
	kw := p.next() // def
	name, err := p.expect(TokString)
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &DefDecl{KwPos: kw.Pos, Name: name.Lit, NamePos: name.Pos, Body: body}, nil
}

// parseFlow parses `flow "name" { settings stmts }`.
func (p *Parser) parseFlow() (*FlowDecl, error) {
	kw := p.next() // flow
	name, err := p.expect(TokString)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	fl := &FlowDecl{KwPos: kw.Pos, Name: name.Lit, NamePos: name.Pos}
	for p.at(TokKwBudget) || p.at(TokKwFaults) || p.at(TokKwRetry) {
		set, err := p.parseSetting()
		if err != nil {
			return nil, err
		}
		fl.Settings = append(fl.Settings, set)
	}
	for !p.at(TokRBrace) {
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		fl.Body = append(fl.Body, st)
	}
	p.next() // }
	return fl, nil
}

// parseSetting parses one flow-level setting.
func (p *Parser) parseSetting() (*Setting, error) {
	kw := p.next()
	switch kw.Kind {
	case TokKwBudget:
		num, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		v, err := strconv.ParseFloat(num.Lit, 64)
		if err != nil {
			return nil, &ParseError{Pos: num.Pos, Msg: fmt.Sprintf("invalid number %q", num.Lit)}
		}
		return &Setting{KwPos: kw.Pos, Kind: SetBudget, Value: v, ValuePos: num.Pos}, nil
	case TokKwFaults:
		str, err := p.expect(TokString)
		if err != nil {
			return nil, err
		}
		return &Setting{KwPos: kw.Pos, Kind: SetFaults, Text: str.Lit, TextPos: str.Pos}, nil
	default: // TokKwRetry
		set := &Setting{KwPos: kw.Pos, Kind: SetRetry}
		for p.at(TokIdent) || p.at(TokKwBudget) {
			key := p.next()
			if _, err := p.expect(TokAssign); err != nil {
				return nil, err
			}
			num, err := p.expect(TokNumber)
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(num.Lit)
			if err != nil {
				return nil, &ParseError{Pos: num.Pos, Msg: fmt.Sprintf("retry %s wants an integer, found %q", key.Lit, num.Lit)}
			}
			switch key.Lit {
			case "attempts":
				set.Attempts, set.HasAttempts = n, true
			case "budget":
				set.RetryBudget, set.HasBudget = n, true
			default:
				return nil, &ParseError{Pos: key.Pos, Msg: fmt.Sprintf("unknown retry key %q (want attempts or budget)", key.Lit)}
			}
		}
		if !set.HasAttempts && !set.HasBudget {
			return nil, &ParseError{Pos: kw.Pos, Msg: "retry needs at least one of attempts=N, budget=N"}
		}
		return set, nil
	}
}

// parseBlock parses `{ stmts }`.
func (p *Parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	var body []Stmt
	for !p.at(TokRBrace) {
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		body = append(body, st)
	}
	p.next() // }
	return body, nil
}

// parseStmt parses one statement: task, branch, when, or use.
func (p *Parser) parseStmt() (Stmt, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	switch p.cur().Kind {
	case TokKwTask:
		return p.parseTask()
	case TokKwBranch:
		return p.parseBranch()
	case TokKwWhen:
		return p.parseWhen()
	case TokKwUse:
		kw := p.next()
		name, err := p.expect(TokString)
		if err != nil {
			return nil, err
		}
		return &UseStmt{KwPos: kw.Pos, Name: name.Lit, NamePos: name.Pos}, nil
	}
	return nil, p.errorf("expected a statement (task, branch, when, use), found %s", p.cur())
}

// parseTask parses `task name [ "(" var ")" ]`.
func (p *Parser) parseTask() (Stmt, error) {
	kw := p.next() // task
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	st := &TaskStmt{KwPos: kw.Pos, Name: name.Lit, NamePos: name.Pos}
	if p.accept(TokLParen) {
		arg, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		st.Arg, st.ArgPos = arg.Lit, arg.Pos
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// parseWhen parses `when [!]cond { stmts }`.
func (p *Parser) parseWhen() (Stmt, error) {
	kw := p.next() // when
	var cond Cond
	if p.at(TokNot) {
		not := p.next()
		cond.Neg, cond.NotPos = true, not.Pos
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	cond.Name, cond.NamePos = name.Lit, name.Pos
	if p.accept(TokDot) {
		prop, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		cond.Prop, cond.PropPos = prop.Lit, prop.Pos
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhenStmt{KwPos: kw.Pos, Cond: cond, Body: body}, nil
}

// parseBranch parses a branch point:
//
//	branch "A" strategy auto [gated] [revisions N] { arms }
func (p *Parser) parseBranch() (Stmt, error) {
	kw := p.next() // branch
	name, err := p.expect(TokString)
	if err != nil {
		return nil, err
	}
	st := &BranchStmt{KwPos: kw.Pos, Name: name.Lit, NamePos: name.Pos}
	if _, err := p.expect(TokKwStrategy); err != nil {
		return nil, err
	}
	strat, err := p.parseStrategy()
	if err != nil {
		return nil, err
	}
	st.Strategy = strat
	for {
		switch {
		case p.at(TokKwGated):
			p.next()
			st.Gated = true
			continue
		case p.at(TokKwRevisions):
			p.next()
			num, err := p.expect(TokNumber)
			if err != nil {
				return nil, err
			}
			n, aerr := strconv.Atoi(num.Lit)
			if aerr != nil {
				return nil, &ParseError{Pos: num.Pos, Msg: fmt.Sprintf("revisions wants an integer, found %q", num.Lit)}
			}
			st.Revisions, st.HasRev, st.RevPos = n, true, num.Pos
			continue
		}
		break
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	for !p.at(TokRBrace) {
		arm, err := p.parseArm()
		if err != nil {
			return nil, err
		}
		st.Arms = append(st.Arms, arm)
	}
	p.next() // }
	return st, nil
}

// parseStrategy parses `name [ "(" key=num {"," key=num} ")" ]`.
func (p *Parser) parseStrategy() (Strategy, error) {
	name, err := p.expect(TokIdent)
	if err != nil {
		return Strategy{}, err
	}
	strat := Strategy{Pos: name.Pos, Name: name.Lit}
	if !p.accept(TokLParen) {
		return strat, nil
	}
	for {
		key, err := p.expect(TokIdent)
		if err != nil {
			return Strategy{}, err
		}
		if _, err := p.expect(TokAssign); err != nil {
			return Strategy{}, err
		}
		num, err := p.expect(TokNumber)
		if err != nil {
			return Strategy{}, err
		}
		v, perr := strconv.ParseFloat(num.Lit, 64)
		if perr != nil {
			return Strategy{}, &ParseError{Pos: num.Pos, Msg: fmt.Sprintf("invalid number %q", num.Lit)}
		}
		strat.Args = append(strat.Args, StrategyArg{Key: key.Lit, KeyPos: key.Pos, Val: v, ValPos: num.Pos})
		if p.accept(TokComma) {
			continue
		}
		break
	}
	if _, err := p.expect(TokRParen); err != nil {
		return Strategy{}, err
	}
	return strat, nil
}

// parseArm parses one branch alternative: an explicit path or a foreach.
func (p *Parser) parseArm() (BranchArm, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	switch p.cur().Kind {
	case TokKwPath:
		kw := p.next()
		name, err := p.expect(TokString)
		if err != nil {
			return nil, err
		}
		arm := &PathArm{KwPos: kw.Pos, Name: name.Lit, NamePos: name.Pos}
		if p.accept(TokKwAs) {
			fn, err := p.expect(TokString)
			if err != nil {
				return nil, err
			}
			arm.FlowName, arm.FlowNamePos = fn.Lit, fn.Pos
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		arm.Body = body
		return arm, nil
	case TokKwForeach:
		kw := p.next()
		v, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKwIn); err != nil {
			return nil, err
		}
		set, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &ForeachArm{KwPos: kw.Pos, Var: v.Lit, VarPos: v.Pos, Set: set.Lit, SetPos: set.Pos, Body: body}, nil
	}
	return nil, p.errorf("expected a branch arm (path or foreach), found %s", p.cur())
}
