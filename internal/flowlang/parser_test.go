package flowlang_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"psaflow/internal/flowlang"
)

// readExample loads one bundled .psa document.
func readExample(t testing.TB, name string) string {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "flows", name))
	if err != nil {
		t.Fatalf("read example %s: %v", name, err)
	}
	return string(src)
}

func TestParseExamples(t *testing.T) {
	for _, name := range []string{"paper.psa", "minimal.psa", "faults.psa"} {
		f, err := flowlang.Parse(readExample(t, name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if f.Flow == nil || f.Flow.Name == "" {
			t.Errorf("%s: parsed file has no named flow", name)
		}
	}
}

func TestParseStructure(t *testing.T) {
	src := `
def "analysis" {
  task identify-hotspots
  task extract-hotspot
}
flow "demo" {
  budget 0.5
  faults "seed=1,rate=0.1"
  retry attempts=3 budget=8
  use "analysis"
  branch "A" strategy informed(ai-threshold=4.5, transfer-bw=9e9) gated revisions 2 {
    path "gpu" as "gpu-path" {
      task generate-hip
      branch "B" strategy all {
        foreach dev in gpus {
          task blocksize-dse(dev)
        }
      }
    }
    path "cpu" {
      when !sharing { task omp-parallel-loops }
      task render-design
    }
  }
}`
	f, err := flowlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Defs) != 1 || f.Defs[0].Name != "analysis" || len(f.Defs[0].Body) != 2 {
		t.Fatalf("defs = %+v", f.Defs)
	}
	fl := f.Flow
	if fl.Name != "demo" || len(fl.Settings) != 3 || len(fl.Body) != 2 {
		t.Fatalf("flow = %q settings=%d body=%d", fl.Name, len(fl.Settings), len(fl.Body))
	}
	if s := fl.Settings[0]; s.Kind != flowlang.SetBudget || s.Value != 0.5 {
		t.Errorf("setting 0 = %+v", s)
	}
	if s := fl.Settings[2]; s.Kind != flowlang.SetRetry || s.Attempts != 3 || s.RetryBudget != 8 {
		t.Errorf("setting 2 = %+v", s)
	}
	br, ok := fl.Body[1].(*flowlang.BranchStmt)
	if !ok {
		t.Fatalf("body[1] = %T", fl.Body[1])
	}
	if br.Name != "A" || !br.Gated || !br.HasRev || br.Revisions != 2 {
		t.Errorf("branch = %+v", br)
	}
	if br.Strategy.Name != "informed" || len(br.Strategy.Args) != 2 ||
		br.Strategy.Args[0].Key != "ai-threshold" || br.Strategy.Args[0].Val != 4.5 ||
		br.Strategy.Args[1].Key != "transfer-bw" || br.Strategy.Args[1].Val != 9e9 {
		t.Errorf("strategy = %+v", br.Strategy)
	}
	if len(br.Arms) != 2 {
		t.Fatalf("arms = %d", len(br.Arms))
	}
	gpu := br.Arms[0].(*flowlang.PathArm)
	if gpu.Name != "gpu" || gpu.FlowName != "gpu-path" {
		t.Errorf("gpu arm = %+v", gpu)
	}
	inner := gpu.Body[1].(*flowlang.BranchStmt)
	fe, ok := inner.Arms[0].(*flowlang.ForeachArm)
	if !ok || fe.Var != "dev" || fe.Set != "gpus" {
		t.Errorf("foreach = %+v", inner.Arms[0])
	}
	ts := fe.Body[0].(*flowlang.TaskStmt)
	if ts.Name != "blocksize-dse" || ts.Arg != "dev" {
		t.Errorf("task = %+v", ts)
	}
	cpu := br.Arms[1].(*flowlang.PathArm)
	if cpu.FlowName != "" {
		t.Errorf("cpu arm FlowName = %q", cpu.FlowName)
	}
	wh := cpu.Body[0].(*flowlang.WhenStmt)
	if wh.Cond.String() != "!sharing" {
		t.Errorf("cond = %q", wh.Cond.String())
	}
}

// TestParseErrors pins exact first-error messages and positions: the parser
// (like minic's) stops at the first syntax error.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no flow", `task identify-hotspots`, `parse 1:1: expected flow declaration, found task`},
		{"flow name", "flow demo {}", `parse 1:6: expected string literal, found identifier "demo"`},
		{"trailing", "flow \"d\" { task render-design }\nflow \"e\" {}", `parse 2:1: expected EOF after flow declaration, found flow`},
		{"setting after stmt", "flow \"d\" {\n  task render-design\n  budget 2\n}", `parse 3:3: expected a statement (task, branch, when, use), found budget`},
		{"bad retry key", "flow \"d\" {\n  retry tries=3\n}", `parse 2:9: unknown retry key "tries" (want attempts or budget)`},
		{"empty retry", "flow \"d\" {\n  retry\n}", `parse 2:3: retry needs at least one of attempts=N, budget=N`},
		{"arm", "flow \"d\" {\n  branch \"A\" strategy all {\n    task render-design\n  }\n}", `parse 3:5: expected a branch arm (path or foreach), found task`},
		{"unterminated string", `flow "d`, `lex 1:6: unterminated string literal`},
		{"bad char", "flow \"d\" {\n  task a; task b\n}", `lex 2:9: unexpected character ';'`},
		{"bad exponent", "flow \"d\" {\n  budget 1e\n}", `lex 2:10: malformed exponent in number "1e"`},
	}
	for _, tc := range cases {
		_, err := flowlang.Parse(tc.src)
		if err == nil {
			t.Errorf("%s: want error, got none", tc.name)
			continue
		}
		if err.Error() != tc.want {
			t.Errorf("%s:\n got %q\nwant %q", tc.name, err, tc.want)
		}
	}
}

// TestParseDepthLimit regression-tests the recursion guard: deep nesting
// must come back as a ParseError, not a goroutine stack overflow — the
// psaflowd flow registry parses documents straight off the wire.
func TestParseDepthLimit(t *testing.T) {
	deep := "flow \"d\" { " + strings.Repeat("when sharing { ", 500000) +
		"task render-design" + strings.Repeat(" }", 500000) + " }"
	if _, err := flowlang.Parse(deep); err == nil || !strings.Contains(err.Error(), "nesting too deep") {
		t.Errorf("want nesting-depth error, got %v", err)
	}
	ok := "flow \"d\" { " + strings.Repeat("when sharing { ", 500) +
		"task render-design" + strings.Repeat(" }", 500) + " }"
	if _, err := flowlang.Parse(ok); err != nil {
		t.Errorf("500-deep when should parse: %v", err)
	}
}

func TestLexKebabIdent(t *testing.T) {
	// "a-b" is one identifier: the language has no arithmetic.
	f, err := flowlang.Parse(`flow "d" { task remove-plus-eq-dep }`)
	if err != nil {
		t.Fatal(err)
	}
	ts := f.Flow.Body[0].(*flowlang.TaskStmt)
	if ts.Name != "remove-plus-eq-dep" {
		t.Errorf("task name = %q", ts.Name)
	}
}
