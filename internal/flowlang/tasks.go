package flowlang

import (
	"sort"

	"psaflow/internal/core"
	"psaflow/internal/platform"
	"psaflow/internal/tasks"
)

// DeviceClass partitions device-parameterized tasks and catalog device
// sets: a task constructed from a GPUSpec can only bind a variable ranging
// over "gpus", and vice versa.
type DeviceClass int

// Device classes.
const (
	DevGPU DeviceClass = iota
	DevFPGA
)

func (c DeviceClass) String() string {
	if c == DevGPU {
		return "gpu"
	}
	return "fpga"
}

// taskEntry describes one DSL-visible engine task. Exactly one of Plain
// (parameterless) or the device constructors (GPU/FPGA, discriminated by
// Class) is set.
type taskEntry struct {
	Plain core.Task
	Class DeviceClass
	GPU   func(platform.GPUSpec) core.Task
	FPGA  func(platform.FPGASpec) core.Task
}

func (e taskEntry) needsDevice() bool { return e.GPU != nil || e.FPGA != nil }

// taskRegistry maps DSL task names (kebab-case, matching the engine task
// names reported in telemetry spans) to their engine constructors. This is
// the complete surface the validator checks "task" statements against.
var taskRegistry = map[string]taskEntry{
	// Target-independent analysis (paper Fig. 4, left column).
	"identify-hotspots":    {Plain: tasks.IdentifyHotspots},
	"extract-hotspot":      {Plain: tasks.ExtractHotspot},
	"pointer-analysis":     {Plain: tasks.PointerAnalysis},
	"arithmetic-intensity": {Plain: tasks.ArithmeticIntensity},
	"data-in-out":          {Plain: tasks.DataInOut},
	"loop-dependence":      {Plain: tasks.LoopDependence},
	"trip-count":           {Plain: tasks.TripCount},
	"remove-plus-eq-dep":   {Plain: tasks.RemovePlusEqDep},

	// GPU path.
	"generate-hip":              {Plain: tasks.GenerateHIP},
	"pinned-memory":             {Plain: tasks.PinnedMemory},
	"single-precision-fns":      {Plain: tasks.SinglePrecisionFns},
	"single-precision-literals": {Plain: tasks.SinglePrecisionLiterals},
	"shared-mem-buffer":         {Plain: tasks.SharedMemBuffer},
	"specialised-math-fns":      {Plain: tasks.SpecialisedMathFns},
	"verify-kernel-runs":        {Plain: tasks.VerifyKernelRuns},
	"blocksize-dse":             {Class: DevGPU, GPU: tasks.BlocksizeDSE},

	// FPGA path.
	"generate-oneapi":              {Plain: tasks.GenerateOneAPI},
	"unroll-fixed-loops":           {Plain: tasks.UnrollFixedLoopsTask},
	"zero-copy":                    {Class: DevFPGA, FPGA: tasks.ZeroCopy},
	"unroll-until-overmap":         {Class: DevFPGA, FPGA: tasks.UnrollUntilOvermap},
	"unroll-until-overmap-sharing": {Class: DevFPGA, FPGA: tasks.UnrollUntilOvermapWithSharing},

	// CPU path.
	"omp-parallel-loops": {Plain: tasks.OMPParallelLoops},
	"num-threads-dse":    {Plain: tasks.NumThreadsDSE},

	// Shared tail.
	"render-design": {Plain: tasks.RenderDesign},
}

// deviceSets maps foreach set names to the platform catalog, preserving
// catalog order (which the engine's branch points B and C depend on).
var deviceSets = map[string]DeviceClass{
	"gpus":  DevGPU,
	"fpgas": DevFPGA,
}

// deviceProps lists the device properties usable in when-conditions, per
// class. Only FPGAs expose a property today (USM support gates zero-copy).
var deviceProps = map[DeviceClass]map[string]bool{
	DevGPU:  {},
	DevFPGA: {"usm": true},
}

// flowConds lists the compile-time flow-option conditions.
var flowConds = map[string]bool{
	"sharing":    true,
	"informed":   true,
	"uninformed": true,
}

// strategyNames lists valid branch strategies: "auto" follows the flow
// options (informed selector in informed mode, select-all otherwise),
// "informed" always applies the Fig. 3 strategy, "all" always selects
// every path.
var strategyNames = map[string]bool{
	"auto":     true,
	"informed": true,
	"all":      true,
}

// strategyArgKeys lists valid strategy tuning arguments.
var strategyArgKeys = map[string]bool{
	"ai-threshold": true,
	"transfer-bw":  true,
}

// TaskNames returns every DSL task name, sorted — used by the docs
// coverage gate and error messages.
func TaskNames() []string {
	names := make([]string, 0, len(taskRegistry))
	for n := range taskRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
