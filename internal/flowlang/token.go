// Package flowlang implements the PSA-flow description language: a small
// DSL that expresses tasks, branch points, selection strategies, budgets,
// and fault/retry policy as data (.psa documents), so new flow scenarios
// need no engine change. The package provides a lexer and recursive-descent
// parser producing a positioned AST (the same idioms as internal/minic:
// recursion depth limits, line/column error spans), a validator that
// reports every semantic error with its position, and a compiler lowering
// a validated document onto the internal/core + internal/tasks engine —
// informed/uninformed execution, telemetry, event streaming, faults and
// retries, and the run cache all work unchanged on compiled flows.
//
// The built-in paper flow re-expressed in the DSL lives in
// examples/flows/paper.psa and compiles to a graph bit-identical to
// tasks.BuildPSAFlowWithOptions. The full language reference is
// docs/FLOWS.md.
package flowlang

import "fmt"

// TokKind enumerates flow-DSL token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString

	// Keywords.
	TokKwFlow
	TokKwDef
	TokKwUse
	TokKwTask
	TokKwBranch
	TokKwPath
	TokKwForeach
	TokKwIn
	TokKwAs
	TokKwWhen
	TokKwStrategy
	TokKwGated
	TokKwRevisions
	TokKwBudget
	TokKwRetry
	TokKwFaults

	// Punctuation.
	TokLBrace
	TokRBrace
	TokLParen
	TokRParen
	TokComma
	TokAssign
	TokNot
	TokDot
)

var tokNames = map[TokKind]string{
	TokEOF:    "EOF",
	TokIdent:  "identifier",
	TokNumber: "number",
	TokString: "string literal",

	TokKwFlow:      "flow",
	TokKwDef:       "def",
	TokKwUse:       "use",
	TokKwTask:      "task",
	TokKwBranch:    "branch",
	TokKwPath:      "path",
	TokKwForeach:   "foreach",
	TokKwIn:        "in",
	TokKwAs:        "as",
	TokKwWhen:      "when",
	TokKwStrategy:  "strategy",
	TokKwGated:     "gated",
	TokKwRevisions: "revisions",
	TokKwBudget:    "budget",
	TokKwRetry:     "retry",
	TokKwFaults:    "faults",

	TokLBrace: "{",
	TokRBrace: "}",
	TokLParen: "(",
	TokRParen: ")",
	TokComma:  ",",
	TokAssign: "=",
	TokNot:    "!",
	TokDot:    ".",
}

// String returns the canonical spelling of the token kind.
func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

var keywords = map[string]TokKind{
	"flow":      TokKwFlow,
	"def":       TokKwDef,
	"use":       TokKwUse,
	"task":      TokKwTask,
	"branch":    TokKwBranch,
	"path":      TokKwPath,
	"foreach":   TokKwForeach,
	"in":        TokKwIn,
	"as":        TokKwAs,
	"when":      TokKwWhen,
	"strategy":  TokKwStrategy,
	"gated":     TokKwGated,
	"revisions": TokKwRevisions,
	"budget":    TokKwBudget,
	"retry":     TokKwRetry,
	"faults":    TokKwFaults,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token with its source position and literal text.
type Token struct {
	Kind TokKind
	Lit  string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokNumber:
		return fmt.Sprintf("%s %q", t.Kind, t.Lit)
	case TokString:
		return fmt.Sprintf("string %q", t.Lit)
	default:
		return t.Kind.String()
	}
}
