package flowlang

import (
	"fmt"
	"sort"
	"strings"

	"psaflow/internal/faults"
)

// Diag is one validation diagnostic: a stable error code (catalogued in
// docs/FLOWS.md), a source position, and a human-readable message.
type Diag struct {
	Code string
	Pos  Pos
	Msg  string
}

// Error implements the error interface.
func (d Diag) Error() string { return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Msg, d.Code) }

// ErrorList collects every diagnostic from one validation pass, sorted by
// source position. Unlike the parser (which stops at the first syntax
// error), the validator reports all semantic errors in one go.
type ErrorList struct {
	Diags []Diag
}

// Error renders all diagnostics, one per line.
func (e *ErrorList) Error() string {
	lines := make([]string, len(e.Diags))
	for i, d := range e.Diags {
		lines[i] = d.Error()
	}
	return strings.Join(lines, "\n")
}

func (e *ErrorList) add(code string, pos Pos, format string, args ...any) {
	e.Diags = append(e.Diags, Diag{Code: code, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Validation error codes. Every code here is documented in docs/FLOWS.md;
// the docs-coverage test enforces that.
const (
	ErrUnknownTask          = "unknown-task"
	ErrTaskTakesNoDevice    = "task-takes-no-device"
	ErrTaskNeedsDevice      = "task-needs-device"
	ErrUnknownDeviceVar     = "unknown-device-var"
	ErrDeviceClassMismatch  = "device-class-mismatch"
	ErrUnknownDeviceSet     = "unknown-device-set"
	ErrNestedForeach        = "nested-foreach"
	ErrDuplicatePath        = "duplicate-path"
	ErrDuplicateBranch      = "duplicate-branch"
	ErrEmptyBranch          = "empty-branch"
	ErrEmptyPath            = "empty-path"
	ErrUnknownStrategy      = "unknown-strategy"
	ErrBadStrategyArg       = "bad-strategy-arg"
	ErrInformedNeedsTargets = "informed-needs-targets"
	ErrUnknownCondition     = "unknown-condition"
	ErrCondOutsideForeach   = "condition-outside-foreach"
	ErrUnknownDeviceProp    = "unknown-device-property"
	ErrUnknownDef           = "unknown-def"
	ErrDuplicateDef         = "duplicate-def"
	ErrDefCycle             = "def-cycle"
	ErrDeviceRefInDef       = "device-ref-in-def"
	ErrBadSetting           = "bad-setting"
	ErrDuplicateSetting     = "duplicate-setting"
	ErrEmptyFlow            = "empty-flow"
)

// ErrorCodes returns every validation error code, sorted — used by the
// docs-coverage gate.
func ErrorCodes() []string {
	codes := []string{
		ErrUnknownTask, ErrTaskTakesNoDevice, ErrTaskNeedsDevice,
		ErrUnknownDeviceVar, ErrDeviceClassMismatch, ErrUnknownDeviceSet,
		ErrNestedForeach, ErrDuplicatePath, ErrDuplicateBranch,
		ErrEmptyBranch, ErrEmptyPath, ErrUnknownStrategy, ErrBadStrategyArg,
		ErrInformedNeedsTargets, ErrUnknownCondition, ErrCondOutsideForeach,
		ErrUnknownDeviceProp, ErrUnknownDef, ErrDuplicateDef, ErrDefCycle,
		ErrDeviceRefInDef, ErrBadSetting, ErrDuplicateSetting, ErrEmptyFlow,
	}
	sort.Strings(codes)
	return codes
}

// validator walks a File accumulating diagnostics.
type validator struct {
	errs *ErrorList
	defs map[string]*DefDecl
}

// Validate checks every semantic rule on a parsed file and returns either
// nil or an *ErrorList carrying all violations sorted by position.
func Validate(f *File) error {
	v := &validator{errs: &ErrorList{}, defs: map[string]*DefDecl{}}

	// Index defs, flagging duplicates, then check each def body in a
	// device-free scope (defs inline anywhere, so they may not capture a
	// foreach variable) and reject use-cycles among defs.
	for _, d := range f.Defs {
		if prev, ok := v.defs[d.Name]; ok {
			v.errs.add(ErrDuplicateDef, d.NamePos, "duplicate def %q (first defined at %s)", d.Name, prev.NamePos)
			continue
		}
		v.defs[d.Name] = d
	}
	v.checkDefCycles(f.Defs)
	for _, d := range f.Defs {
		v.checkStmts(d.Body, scope{inDef: true})
	}

	if f.Flow != nil {
		v.checkSettings(f.Flow.Settings)
		if len(f.Flow.Body) == 0 {
			v.errs.add(ErrEmptyFlow, f.Flow.KwPos, "flow %q has no statements", f.Flow.Name)
		}
		v.checkStmts(f.Flow.Body, scope{})
	}

	if len(v.errs.Diags) == 0 {
		return nil
	}
	sort.SliceStable(v.errs.Diags, func(i, j int) bool {
		a, b := v.errs.Diags[i].Pos, v.errs.Diags[j].Pos
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	return v.errs
}

// scope carries the lexical context while walking statements.
type scope struct {
	inDef    bool        // inside a def body: device vars can't exist
	devVar   string      // foreach loop variable in scope; "" if none
	devClass DeviceClass // class of devVar
}

func (v *validator) checkSettings(settings []*Setting) {
	seen := map[SettingKind]Pos{}
	for _, s := range settings {
		if prev, ok := seen[s.Kind]; ok {
			v.errs.add(ErrDuplicateSetting, s.KwPos, "duplicate %s setting (first at %s)", s.Kind, prev)
		} else {
			seen[s.Kind] = s.KwPos
		}
		switch s.Kind {
		case SetBudget:
			if s.Value <= 0 {
				v.errs.add(ErrBadSetting, s.ValuePos, "budget must be positive, got %g", s.Value)
			}
		case SetFaults:
			if _, err := faults.ParseSpec(s.Text); err != nil {
				v.errs.add(ErrBadSetting, s.TextPos, "invalid faults spec %q: %v", s.Text, err)
			}
		case SetRetry:
			if s.HasAttempts && s.Attempts < 1 {
				v.errs.add(ErrBadSetting, s.KwPos, "retry attempts must be at least 1, got %d", s.Attempts)
			}
			if s.HasBudget && s.RetryBudget < 0 {
				v.errs.add(ErrBadSetting, s.KwPos, "retry budget must not be negative, got %d", s.RetryBudget)
			}
		}
	}
}

// checkDefCycles rejects use-cycles among defs (a def that eventually
// inlines itself would expand forever).
func (v *validator) checkDefCycles(defs []*DefDecl) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(d *DefDecl) bool
	visit = func(d *DefDecl) bool {
		color[d.Name] = grey
		cyclic := false
		var walk func(stmts []Stmt)
		walk = func(stmts []Stmt) {
			for _, st := range stmts {
				switch s := st.(type) {
				case *UseStmt:
					ref, ok := v.defs[s.Name]
					if !ok {
						continue // unknown-def reported by checkStmts
					}
					switch color[ref.Name] {
					case grey:
						v.errs.add(ErrDefCycle, s.NamePos, "def cycle: %q uses %q which (transitively) uses it back", d.Name, ref.Name)
						cyclic = true
					case white:
						if visit(ref) {
							cyclic = true
						}
					}
				case *WhenStmt:
					walk(s.Body)
				case *BranchStmt:
					for _, arm := range s.Arms {
						switch a := arm.(type) {
						case *PathArm:
							walk(a.Body)
						case *ForeachArm:
							walk(a.Body)
						}
					}
				}
			}
		}
		walk(d.Body)
		color[d.Name] = black
		return cyclic
	}
	for _, d := range defs {
		if v.defs[d.Name] == d && color[d.Name] == white {
			visit(d)
		}
	}
}

func (v *validator) checkStmts(stmts []Stmt, sc scope) {
	branchNames := map[string]Pos{}
	for _, st := range stmts {
		switch s := st.(type) {
		case *TaskStmt:
			v.checkTask(s, sc)
		case *UseStmt:
			if _, ok := v.defs[s.Name]; !ok {
				v.errs.add(ErrUnknownDef, s.NamePos, "unknown def %q", s.Name)
			}
		case *WhenStmt:
			v.checkCond(s.Cond, sc)
			v.checkStmts(s.Body, sc)
		case *BranchStmt:
			if prev, ok := branchNames[s.Name]; ok {
				v.errs.add(ErrDuplicateBranch, s.NamePos, "duplicate branch %q in this block (first at %s)", s.Name, prev)
			} else {
				branchNames[s.Name] = s.NamePos
			}
			v.checkBranch(s, sc)
		}
	}
}

func (v *validator) checkTask(s *TaskStmt, sc scope) {
	entry, ok := taskRegistry[s.Name]
	if !ok {
		v.errs.add(ErrUnknownTask, s.NamePos, "unknown task %q (see docs/FLOWS.md for the task catalog)", s.Name)
		return
	}
	switch {
	case s.Arg == "" && entry.needsDevice():
		v.errs.add(ErrTaskNeedsDevice, s.NamePos, "task %q needs a %s device argument", s.Name, entry.Class)
	case s.Arg != "" && !entry.needsDevice():
		v.errs.add(ErrTaskTakesNoDevice, s.ArgPos, "task %q takes no device argument", s.Name)
	case s.Arg != "":
		if sc.inDef {
			v.errs.add(ErrDeviceRefInDef, s.ArgPos, "defs may not reference device variables (%q): defs inline outside any foreach", s.Arg)
		} else if sc.devVar == "" || s.Arg != sc.devVar {
			v.errs.add(ErrUnknownDeviceVar, s.ArgPos, "unknown device variable %q (no enclosing foreach binds it)", s.Arg)
		} else if sc.devClass != entry.Class {
			v.errs.add(ErrDeviceClassMismatch, s.ArgPos, "task %q wants a %s device but %q ranges over %ss", s.Name, entry.Class, s.Arg, sc.devClass)
		}
	}
}

func (v *validator) checkCond(c Cond, sc scope) {
	if c.Prop == "" {
		if !flowConds[c.Name] {
			v.errs.add(ErrUnknownCondition, c.NamePos, "unknown condition %q (want sharing, informed, uninformed, or <var>.<property>)", c.Name)
		}
		return
	}
	if sc.inDef {
		v.errs.add(ErrDeviceRefInDef, c.NamePos, "defs may not reference device variables (%q): defs inline outside any foreach", c.Name)
		return
	}
	if sc.devVar == "" || c.Name != sc.devVar {
		v.errs.add(ErrCondOutsideForeach, c.NamePos, "device condition %q needs an enclosing foreach binding %q", c, c.Name)
		return
	}
	if !deviceProps[sc.devClass][c.Prop] {
		v.errs.add(ErrUnknownDeviceProp, c.PropPos, "unknown %s device property %q", sc.devClass, c.Prop)
	}
}

func (v *validator) checkBranch(s *BranchStmt, sc scope) {
	strat := s.Strategy
	if !strategyNames[strat.Name] {
		v.errs.add(ErrUnknownStrategy, strat.Pos, "unknown strategy %q (want auto, informed, or all)", strat.Name)
	}
	argSeen := map[string]Pos{}
	for _, a := range strat.Args {
		if !strategyArgKeys[a.Key] {
			v.errs.add(ErrBadStrategyArg, a.KeyPos, "unknown strategy argument %q (want ai-threshold or transfer-bw)", a.Key)
			continue
		}
		if prev, ok := argSeen[a.Key]; ok {
			v.errs.add(ErrBadStrategyArg, a.KeyPos, "duplicate strategy argument %q (first at %s)", a.Key, prev)
			continue
		}
		argSeen[a.Key] = a.KeyPos
		if a.Val <= 0 {
			v.errs.add(ErrBadStrategyArg, a.ValPos, "strategy argument %s must be positive, got %g", a.Key, a.Val)
		}
		if strat.Name == "all" {
			v.errs.add(ErrBadStrategyArg, a.KeyPos, "strategy all takes no arguments")
		}
	}
	if s.HasRev && s.Revisions < 1 {
		v.errs.add(ErrBadSetting, s.RevPos, "revisions must be at least 1, got %d", s.Revisions)
	}

	if len(s.Arms) == 0 {
		v.errs.add(ErrEmptyBranch, s.KwPos, "branch %q has no paths", s.Name)
	}

	informed := strat.Name == "auto" || strat.Name == "informed"
	pathNames := map[string]Pos{}
	for _, arm := range s.Arms {
		switch a := arm.(type) {
		case *PathArm:
			if prev, ok := pathNames[a.Name]; ok {
				v.errs.add(ErrDuplicatePath, a.NamePos, "duplicate path %q in branch %q (first at %s)", a.Name, s.Name, prev)
			} else {
				pathNames[a.Name] = a.NamePos
			}
			if len(a.Body) == 0 {
				v.errs.add(ErrEmptyPath, a.KwPos, "path %q has no statements", a.Name)
			}
			v.checkStmts(a.Body, sc)
		case *ForeachArm:
			if sc.devVar != "" && !sc.inDef {
				v.errs.add(ErrNestedForeach, a.KwPos, "nested foreach: %q is already bound by an enclosing foreach", sc.devVar)
			}
			class, ok := deviceSets[a.Set]
			if !ok {
				v.errs.add(ErrUnknownDeviceSet, a.SetPos, "unknown device set %q (want gpus or fpgas)", a.Set)
				continue
			}
			if len(a.Body) == 0 {
				v.errs.add(ErrEmptyPath, a.KwPos, "foreach over %q has an empty body", a.Set)
			}
			inner := sc
			inner.devVar, inner.devClass = a.Var, class
			v.checkStmts(a.Body, inner)
		}
	}

	// The informed Fig. 3 selector picks among paths named gpu/fpga/cpu; a
	// branch that routes to it must offer all three or selection fails at
	// run time.
	if informed {
		for _, want := range []string{"gpu", "fpga", "cpu"} {
			if _, ok := pathNames[want]; !ok {
				v.errs.add(ErrInformedNeedsTargets, s.NamePos, "strategy %s on branch %q needs paths named gpu, fpga, and cpu (missing %q)", strat.Name, s.Name, want)
			}
		}
	}
}
