package flowlang_test

import (
	"strings"
	"testing"

	"psaflow/internal/flowlang"
)

// validate parses src (which must be syntactically valid) and returns the
// validator's diagnostics.
func validate(t *testing.T, src string) []flowlang.Diag {
	t.Helper()
	f, err := flowlang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	err = flowlang.Validate(f)
	if err == nil {
		return nil
	}
	el, ok := err.(*flowlang.ErrorList)
	if !ok {
		t.Fatalf("Validate returned %T, want *ErrorList", err)
	}
	return el.Diags
}

// TestValidateErrors pins the exact code, position, and message of every
// validation diagnostic. One table row per error code in the catalog.
func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string // "code pos message" per expected diag, in order
	}{
		{
			"unknown-task",
			"flow \"d\" {\n  task frobnicate\n}",
			[]string{`unknown-task 2:8 unknown task "frobnicate" (see docs/FLOWS.md for the task catalog)`},
		},
		{
			"task-takes-no-device",
			"flow \"d\" {\n  branch \"A\" strategy all {\n    foreach dev in gpus {\n      task render-design(dev)\n    }\n  }\n}",
			[]string{`task-takes-no-device 4:26 task "render-design" takes no device argument`},
		},
		{
			"task-needs-device",
			"flow \"d\" {\n  task blocksize-dse\n}",
			[]string{`task-needs-device 2:8 task "blocksize-dse" needs a gpu device argument`},
		},
		{
			"unknown-device-var",
			"flow \"d\" {\n  branch \"A\" strategy all {\n    foreach dev in gpus {\n      task blocksize-dse(gpu)\n    }\n  }\n}",
			[]string{`unknown-device-var 4:26 unknown device variable "gpu" (no enclosing foreach binds it)`},
		},
		{
			"device-class-mismatch",
			"flow \"d\" {\n  branch \"A\" strategy all {\n    foreach dev in gpus {\n      task zero-copy(dev)\n    }\n  }\n}",
			[]string{`device-class-mismatch 4:22 task "zero-copy" wants a fpga device but "dev" ranges over gpus`},
		},
		{
			"unknown-device-set",
			"flow \"d\" {\n  branch \"A\" strategy all {\n    foreach dev in tpus {\n      task render-design\n    }\n  }\n}",
			[]string{`unknown-device-set 3:20 unknown device set "tpus" (want gpus or fpgas)`},
		},
		{
			"nested-foreach",
			"flow \"d\" {\n  branch \"A\" strategy all {\n    foreach a in gpus {\n      branch \"B\" strategy all {\n        foreach b in fpgas {\n          task render-design\n        }\n      }\n    }\n  }\n}",
			[]string{`nested-foreach 5:9 nested foreach: "a" is already bound by an enclosing foreach`},
		},
		{
			"duplicate-path",
			"flow \"d\" {\n  branch \"A\" strategy all {\n    path \"x\" { task render-design }\n    path \"x\" { task render-design }\n  }\n}",
			[]string{`duplicate-path 4:10 duplicate path "x" in branch "A" (first at 3:10)`},
		},
		{
			"duplicate-branch",
			"flow \"d\" {\n  branch \"A\" strategy all {\n    path \"x\" { task render-design }\n  }\n  branch \"A\" strategy all {\n    path \"y\" { task render-design }\n  }\n}",
			[]string{`duplicate-branch 5:10 duplicate branch "A" in this block (first at 2:10)`},
		},
		{
			"empty-branch",
			"flow \"d\" {\n  branch \"A\" strategy all {\n  }\n}",
			[]string{`empty-branch 2:3 branch "A" has no paths`},
		},
		{
			"empty-path",
			"flow \"d\" {\n  branch \"A\" strategy all {\n    path \"x\" {\n    }\n  }\n}",
			[]string{`empty-path 3:5 path "x" has no statements`},
		},
		{
			"unknown-strategy",
			"flow \"d\" {\n  branch \"A\" strategy greedy {\n    path \"x\" { task render-design }\n  }\n}",
			[]string{`unknown-strategy 2:23 unknown strategy "greedy" (want auto, informed, or all)`},
		},
		{
			"bad-strategy-arg",
			"flow \"d\" {\n  branch \"A\" strategy informed(threshold=2) {\n    path \"gpu\" { task render-design }\n    path \"fpga\" { task render-design }\n    path \"cpu\" { task render-design }\n  }\n}",
			[]string{`bad-strategy-arg 2:32 unknown strategy argument "threshold" (want ai-threshold or transfer-bw)`},
		},
		{
			"informed-needs-targets",
			"flow \"d\" {\n  branch \"A\" strategy auto {\n    path \"gpu\" { task render-design }\n    path \"cpu\" { task render-design }\n  }\n}",
			[]string{`informed-needs-targets 2:10 strategy auto on branch "A" needs paths named gpu, fpga, and cpu (missing "fpga")`},
		},
		{
			"unknown-condition",
			"flow \"d\" {\n  when turbo { task render-design }\n}",
			[]string{`unknown-condition 2:8 unknown condition "turbo" (want sharing, informed, uninformed, or <var>.<property>)`},
		},
		{
			"condition-outside-foreach",
			"flow \"d\" {\n  when dev.usm { task render-design }\n}",
			[]string{`condition-outside-foreach 2:8 device condition "dev.usm" needs an enclosing foreach binding "dev"`},
		},
		{
			"unknown-device-property",
			"flow \"d\" {\n  branch \"A\" strategy all {\n    foreach dev in fpgas {\n      when dev.hbm { task render-design }\n    }\n  }\n}",
			[]string{`unknown-device-property 4:16 unknown fpga device property "hbm"`},
		},
		{
			"unknown-def",
			"flow \"d\" {\n  use \"missing\"\n}",
			[]string{`unknown-def 2:7 unknown def "missing"`},
		},
		{
			"duplicate-def",
			"def \"a\" { task render-design }\ndef \"a\" { task render-design }\nflow \"d\" {\n  use \"a\"\n}",
			[]string{`duplicate-def 2:5 duplicate def "a" (first defined at 1:5)`},
		},
		{
			"def-cycle",
			"def \"a\" { use \"b\" }\ndef \"b\" { use \"a\" }\nflow \"d\" {\n  use \"a\"\n}",
			[]string{`def-cycle 2:15 def cycle: "b" uses "a" which (transitively) uses it back`},
		},
		{
			"device-ref-in-def",
			"def \"a\" { task blocksize-dse(dev) }\nflow \"d\" {\n  use \"a\"\n}",
			[]string{`device-ref-in-def 1:30 defs may not reference device variables ("dev"): defs inline outside any foreach`},
		},
		{
			"bad-setting",
			"flow \"d\" {\n  budget 0\n  task render-design\n}",
			[]string{`bad-setting 2:10 budget must be positive, got 0`},
		},
		{
			"bad-setting faults",
			"flow \"d\" {\n  faults \"rate=nope\"\n  task render-design\n}",
			nil, // message includes the ParseSpec error; checked by prefix below
		},
		{
			"duplicate-setting",
			"flow \"d\" {\n  budget 1\n  budget 2\n  task render-design\n}",
			[]string{`duplicate-setting 3:3 duplicate budget setting (first at 2:3)`},
		},
		{
			"empty-flow",
			"flow \"d\" {\n}",
			[]string{`empty-flow 1:1 flow "d" has no statements`},
		},
	}
	for _, tc := range cases {
		diags := validate(t, tc.src)
		if tc.want == nil {
			// Prefix-only check for messages embedding foreign error text.
			if len(diags) != 1 || diags[0].Code != flowlang.ErrBadSetting ||
				!strings.HasPrefix(diags[0].Msg, `invalid faults spec "rate=nope"`) {
				t.Errorf("%s: diags = %v", tc.name, diags)
			}
			continue
		}
		if len(diags) != len(tc.want) {
			t.Errorf("%s: got %d diags %v, want %d", tc.name, len(diags), diags, len(tc.want))
			continue
		}
		for i, d := range diags {
			got := d.Code + " " + d.Pos.String() + " " + d.Msg
			if got != tc.want[i] {
				t.Errorf("%s[%d]:\n got %q\nwant %q", tc.name, i, got, tc.want[i])
			}
		}
	}
}

// TestValidateReportsAll checks the validator reports every error in one
// pass, sorted by source position — not just the first.
func TestValidateReportsAll(t *testing.T) {
	src := `flow "d" {
  budget 0
  task frobnicate
  when turbo { task blocksize-dse }
  use "missing"
}`
	diags := validate(t, src)
	wantCodes := []string{
		flowlang.ErrBadSetting,       // 2:10
		flowlang.ErrUnknownTask,      // 3:8
		flowlang.ErrUnknownCondition, // 4:8
		flowlang.ErrTaskNeedsDevice,  // 4:21
		flowlang.ErrUnknownDef,       // 5:7
	}
	if len(diags) != len(wantCodes) {
		t.Fatalf("got %d diags %v, want %d", len(diags), diags, len(wantCodes))
	}
	for i, d := range diags {
		if d.Code != wantCodes[i] {
			t.Errorf("diag %d = %s at %s, want %s", i, d.Code, d.Pos, wantCodes[i])
		}
		if i > 0 {
			prev := diags[i-1].Pos
			if d.Pos.Line < prev.Line || (d.Pos.Line == prev.Line && d.Pos.Col < prev.Col) {
				t.Errorf("diags not sorted: %s before %s", prev, d.Pos)
			}
		}
	}
}

func TestValidateExamplesClean(t *testing.T) {
	for _, name := range []string{"paper.psa", "minimal.psa", "faults.psa"} {
		f, err := flowlang.Parse(readExample(t, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := flowlang.Validate(f); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestErrorCodesComplete keeps ErrorCodes in sync with the catalog: every
// code the validator can emit is listed exactly once.
func TestErrorCodesComplete(t *testing.T) {
	codes := flowlang.ErrorCodes()
	seen := map[string]bool{}
	for _, c := range codes {
		if seen[c] {
			t.Errorf("duplicate code %q", c)
		}
		seen[c] = true
	}
	if len(codes) != 24 {
		t.Errorf("ErrorCodes() has %d entries, want 24", len(codes))
	}
}
