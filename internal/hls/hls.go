// Package hls simulates the FPGA high-level-synthesis toolchain the paper
// drives through oneAPI/dpcpp partial compiles: it estimates the resource
// footprint (ALMs, DSPs, BRAM) of a MiniC kernel datapath, applies unroll
// pragmas, and produces the utilisation report that the
// unroll-until-overmap DSE consumes (paper Fig. 2). Costs are
// per-operator estimates in the range published for Intel FPGA floating
// point IP; absolute accuracy is not required — the DSE only needs the
// monotone resource-vs-unroll curve and a realistic overmap point.
package hls

import (
	"fmt"
	"strconv"
	"strings"

	"psaflow/internal/analysis"
	"psaflow/internal/minic"
	"psaflow/internal/platform"
	"psaflow/internal/query"
)

// opCost is the resource footprint of one hardware operator instance.
type opCost struct {
	alms int
	dsps int
}

// Operator cost table: double-precision (dp) and single-precision (sp)
// variants.
var (
	costAddDP   = opCost{alms: 1100, dsps: 0}
	costAddSP   = opCost{alms: 550, dsps: 0}
	costMulDP   = opCost{alms: 500, dsps: 6}
	costMulSP   = opCost{alms: 250, dsps: 1}
	costDivDP   = opCost{alms: 7800, dsps: 0}
	costDivSP   = opCost{alms: 3600, dsps: 0}
	costCmp     = opCost{alms: 300, dsps: 0}
	costIntOp   = opCost{alms: 150, dsps: 0}
	costLSU     = opCost{alms: 2100, dsps: 0} // load/store unit per memory op site
	costLoopCtl = opCost{alms: 1400, dsps: 0}

	specialDP = map[string]opCost{
		"sqrt": {alms: 9200, dsps: 0},
		"exp":  {alms: 31000, dsps: 24},
		"log":  {alms: 30000, dsps: 24},
		"pow":  {alms: 62000, dsps: 48},
		"sin":  {alms: 26000, dsps: 16},
		"cos":  {alms: 26000, dsps: 16},
		"tanh": {alms: 33000, dsps: 24},
		"erf":  {alms: 36000, dsps: 28},
	}
	specialSP = map[string]opCost{
		"sqrt": {alms: 4300, dsps: 0},
		"exp":  {alms: 10000, dsps: 10},
		"log":  {alms: 10000, dsps: 10},
		"pow":  {alms: 22000, dsps: 20},
		"sin":  {alms: 10500, dsps: 8},
		"cos":  {alms: 10500, dsps: 8},
		"tanh": {alms: 13000, dsps: 10},
		"erf":  {alms: 10500, dsps: 10},
	}
)

// shellALMs models the board support package / PCIe shell overhead that is
// resident on the device before any kernel logic.
const shellALMs = 50000

// OvermapThreshold is the LUT utilisation above which the DSE considers
// the design overmapped (paper Fig. 2 uses 90%).
const OvermapThreshold = 0.90

// Report is the estimated high-level design report for one kernel on one
// device — the artifact the paper's meta-programs parse out of the oneAPI
// partial compile.
type Report struct {
	Device         string
	Kernel         string
	Unroll         int     // outer unroll factor applied (from pragma, min 1)
	ALMs           int     // estimated logic
	DSPs           int     // estimated DSP blocks
	BRAMBits       int64   // estimated on-chip RAM
	LUTUtil        float64 // ALMs / device ALMs
	DSPUtil        float64
	RAMUtil        float64
	FmaxHz         float64 // achievable clock after utilisation derate
	II             int     // pipeline initiation interval of the remaining loop nest
	PipelinedTrips float64 // dynamic iterations of the pipelined loop nest (if known)
	Fits           bool    // LUTUtil < OvermapThreshold and DSPUtil < 1
	SinglePrec     bool
}

// Overmapped reports whether the design exceeds the DSE threshold.
func (r *Report) Overmapped() bool { return !r.Fits }

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("%s kernel=%s unroll=%d LUT=%.1f%% DSP=%.1f%% II=%d fmax=%.0fMHz fits=%t",
		r.Device, r.Kernel, r.Unroll, r.LUTUtil*100, r.DSPUtil*100, r.II, r.FmaxHz/1e6, r.Fits)
}

// spNames maps single-precision and specialised intrinsics to their cost
// family.
func specialFamily(name string) (string, bool, bool) {
	n := strings.TrimPrefix(name, "__")
	n = strings.TrimSuffix(n, "_rn")
	if n == "fsqrt" {
		n = "sqrtf"
	}
	sp := strings.HasSuffix(n, "f") && n != "erf" // erf ends in f but is DP
	base := strings.TrimSuffix(n, "f")
	if n == "erf" {
		base, sp = "erf", false
	}
	if n == "erff" {
		base, sp = "erf", true
	}
	if _, ok := specialDP[base]; !ok {
		return "", false, false
	}
	return base, sp, true
}

// kernelPrecision reports whether the kernel has been demoted to single
// precision by the SP transforms: all float literals single and no
// double-precision math calls.
func kernelPrecision(fn *minic.FuncDecl) bool {
	sp := true
	minic.Walk(fn, func(n minic.Node) bool {
		switch v := n.(type) {
		case *minic.FloatLit:
			if !v.Single {
				sp = false
			}
		case *minic.CallExpr:
			if base, isSP, ok := specialFamily(v.Fun); ok && !isSP {
				_ = base
				sp = false
			}
		}
		return true
	})
	return sp
}

// UnrollPragmaFactor extracts the factor of an "unroll N" pragma attached
// to the outermost loop of fn; returns 1 when absent.
func UnrollPragmaFactor(prog *minic.Program, fn *minic.FuncDecl) int {
	q := query.New(prog)
	outer := q.OutermostLoops(fn)
	if len(outer) == 0 {
		return 1
	}
	var pragmas []string
	switch l := outer[0].(type) {
	case *minic.ForStmt:
		pragmas = l.Pragmas
	case *minic.WhileStmt:
		pragmas = l.Pragmas
	}
	for _, p := range pragmas {
		fields := strings.Fields(p)
		if len(fields) == 2 && fields[0] == "unroll" {
			if n, err := strconv.Atoi(fields[1]); err == nil && n >= 1 {
				return n
			}
		}
	}
	return 1
}

// Counter receives named counter increments (*telemetry.Recorder
// satisfies it); the flow telemetry uses it to total partial-compile
// invocations across DSE loops.
type Counter interface {
	Add(name string, delta int64)
}

// CounterPartialCompiles names the counter EstimateCounted increments
// once per invocation — each call stands for one dpcpp partial compile,
// the expensive tool step the paper's Fig. 2 DSE repeats.
const CounterPartialCompiles = "hls.partial_compiles"

// EstimateCounted is Estimate with telemetry: it reports the invocation
// to c (nil skips accounting only).
func EstimateCounted(c Counter, prog *minic.Program, fn *minic.FuncDecl, dev platform.FPGASpec, pipelinedTrips float64) *Report {
	if c != nil {
		c.Add(CounterPartialCompiles, 1)
	}
	return Estimate(prog, fn, dev, pipelinedTrips)
}

// Estimate produces the high-level design report for kernel fn of prog on
// device dev. The datapath is costed from the kernel AST with
// statically-fixed inner loops counted spatially (they will be fully
// unrolled in hardware) and the whole datapath replicated by the unroll
// pragma factor on the outer loop. pipelinedTrips, when known from dynamic
// analysis, is recorded for the performance model.
func Estimate(prog *minic.Program, fn *minic.FuncDecl, dev platform.FPGASpec, pipelinedTrips float64) *Report {
	return EstimateUnroll(prog, fn, dev, pipelinedTrips, UnrollPragmaFactor(prog, fn))
}

// EstimateUnroll is Estimate with the outer-loop unroll factor supplied
// explicitly instead of read from the loop pragma. The estimator never
// mutates the AST, so candidate factors can be costed concurrently over
// one shared program — the parallel unroll DSE uses this to speculate
// ahead of the serial consumption walk. EstimateUnroll(…, n) is
// bit-for-bit identical to installing an "unroll n" pragma and calling
// Estimate.
func EstimateUnroll(prog *minic.Program, fn *minic.FuncDecl, dev platform.FPGASpec, pipelinedTrips float64, unroll int) *Report {
	sp := kernelPrecision(fn)

	ops := analysis.WeightedOps(fn)

	var alms, dsps int
	addC, mulC, divC := costAddDP, costMulDP, costDivDP
	spTable := specialDP
	if sp {
		addC, mulC, divC = costAddSP, costMulSP, costDivSP
		spTable = specialSP
	}
	scale := func(c opCost, n float64) {
		alms += int(float64(c.alms) * n)
		dsps += int(float64(c.dsps) * n)
	}
	scale(addC, ops.AddSub)
	scale(mulC, ops.Mul)
	scale(divC, ops.Div)
	scale(costCmp, ops.Cmp)
	scale(costIntOp, ops.IntOps)
	scale(costLSU, ops.Loads+ops.Stores)
	for name, n := range ops.SpecialK {
		base, isSP, ok := specialFamily(name)
		if !ok {
			continue
		}
		table := spTable
		if isSP {
			table = specialSP
		}
		scale(table[base], n)
	}
	// Control logic per loop in the kernel.
	q := query.New(prog)
	nLoops := len(q.LoopsIn(fn))
	scale(costLoopCtl, float64(nLoops)+1)

	// Replicate the datapath for the outer unroll factor.
	alms *= unroll
	dsps *= unroll
	alms += shellALMs

	// On-chip RAM: local arrays.
	var bramBits int64
	minic.Walk(fn, func(n minic.Node) bool {
		if d, ok := n.(*minic.DeclStmt); ok && d.ArrayLen != nil {
			if l, ok := d.ArrayLen.(*minic.IntLit); ok {
				width := int64(64)
				if d.Type.Kind == minic.Float || d.Type.Kind == minic.Int {
					width = 32
				}
				bramBits += l.Val * width * int64(unroll)
			}
		}
		return true
	})

	r := &Report{
		Device:         dev.Name,
		Kernel:         fn.Name,
		Unroll:         unroll,
		ALMs:           alms,
		DSPs:           dsps,
		BRAMBits:       bramBits,
		LUTUtil:        float64(alms) / float64(dev.ALMs),
		DSPUtil:        float64(dsps) / float64(dev.DSPs),
		RAMUtil:        float64(bramBits) / float64(dev.BRAMBits),
		SinglePrec:     sp,
		PipelinedTrips: pipelinedTrips,
	}
	r.II = estimateII(prog, fn)
	r.FmaxHz = dev.ClockHz
	if r.LUTUtil > 0.75 {
		r.FmaxHz *= 0.88 // routing congestion derate on nearly-full devices
	}
	r.Fits = r.LUTUtil < OvermapThreshold && r.DSPUtil < 1.0 && r.RAMUtil < 1.0
	return r
}

// estimateII computes the pipeline initiation interval of the loop nest
// that remains after fixed inner loops are spatially unrolled: II=1 when
// the innermost remaining loop carries no dependence (or only removable
// reductions already rewritten), otherwise the accumulation latency.
func estimateII(prog *minic.Program, fn *minic.FuncDecl) int {
	q := query.New(prog)
	loops := q.LoopsIn(fn)
	ii := 1
	for _, l := range loops {
		if _, fixed := query.FixedTripCount(l); fixed && !analysis.LoopMarkedRolled(l) {
			continue // will be fully unrolled spatially
		}
		deps := analysis.AnalyzeLoop(l)
		if !deps.Parallel() {
			// A carried dependence in a pipelined loop forces II up to the
			// accumulation latency.
			ii = 8
		}
	}
	return ii
}
