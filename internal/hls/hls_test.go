package hls

import (
	"strings"
	"testing"
	"testing/quick"

	"psaflow/internal/minic"
	"psaflow/internal/platform"
	"psaflow/internal/transform"
)

const smallKernel = `
void k(int n, const float *a, float *b) {
    for (int i = 0; i < n; i++) {
        b[i] = a[i] * 2.0f + 1.0f;
    }
}
`

const heavyKernel = `
void k(int n, const double *a, double *b) {
    for (int i = 0; i < n; i++) {
        double acc = 0.0;
        acc += exp(a[i]) + exp(a[i] * 2.0) + exp(a[i] * 3.0);
        acc += exp(a[i] * 4.0) + exp(a[i] * 5.0) + exp(a[i] * 6.0);
        acc += exp(a[i] * 7.0) + exp(a[i] * 8.0) + exp(a[i] * 9.0);
        acc += pow(a[i], 3.0) + pow(a[i], 4.0) + pow(a[i], 5.0);
        acc += erf(a[i]) + erf(a[i] * 2.0) + tanh(a[i]);
        b[i] = acc / (1.0 + exp(a[i] * 10.0));
    }
}
`

func kfn(t *testing.T, src string) (*minic.Program, *minic.FuncDecl) {
	t.Helper()
	prog := minic.MustParse(src)
	return prog, prog.MustFunc("k")
}

func TestEstimateSmallKernelFits(t *testing.T) {
	prog, fn := kfn(t, smallKernel)
	rep := Estimate(prog, fn, platform.Arria10, 1000)
	if !rep.Fits {
		t.Fatalf("small kernel should fit: %s", rep)
	}
	if rep.Unroll != 1 {
		t.Errorf("unroll = %d, want 1", rep.Unroll)
	}
	if rep.II != 1 {
		t.Errorf("II = %d, want 1 for a parallel pipeline loop", rep.II)
	}
	if !rep.SinglePrec {
		t.Error("kernel with only f-suffixed literals should be single precision")
	}
	if rep.PipelinedTrips != 1000 {
		t.Errorf("pipelined trips = %v", rep.PipelinedTrips)
	}
	if rep.LUTUtil <= 0 || rep.LUTUtil > 0.5 {
		t.Errorf("LUT util = %v, want small", rep.LUTUtil)
	}
}

func TestEstimateMonotoneInUnroll(t *testing.T) {
	prev := 0
	for n := 1; n <= 64; n *= 2 {
		prog, fn := kfn(t, smallKernel)
		q := firstLoop(prog, fn)
		transform.RemoveLoopPragmas(q, "unroll")
		if err := transform.InsertLoopPragma(q, pragma(n)); err != nil {
			t.Fatal(err)
		}
		rep := Estimate(prog, fn, platform.Arria10, 0)
		if rep.Unroll != n {
			t.Fatalf("unroll pragma %d not picked up: %d", n, rep.Unroll)
		}
		if rep.ALMs <= prev {
			t.Fatalf("resources not monotone at unroll %d: %d <= %d", n, rep.ALMs, prev)
		}
		prev = rep.ALMs
	}
}

// TestQuickUnrollMonotone is the property form: doubling unroll never
// reduces resources and eventually overmaps the device (the invariant the
// unroll-until-overmap DSE relies on).
func TestQuickUnrollMonotone(t *testing.T) {
	f := func(steps uint8) bool {
		n := 1 << (steps % 12)
		prog, fn := kfn(t, smallKernel)
		loop := firstLoop(prog, fn)
		if err := transform.InsertLoopPragma(loop, pragma(n)); err != nil {
			return false
		}
		rep1 := Estimate(prog, fn, platform.Stratix10, 0)
		transform.RemoveLoopPragmas(loop, "unroll")
		if err := transform.InsertLoopPragma(loop, pragma(2*n)); err != nil {
			return false
		}
		rep2 := Estimate(prog, fn, platform.Stratix10, 0)
		return rep2.ALMs > rep1.ALMs && rep2.DSPs >= rep1.DSPs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateHeavyKernelOvermapsArria(t *testing.T) {
	prog, fn := kfn(t, heavyKernel)
	rep := Estimate(prog, fn, platform.Arria10, 0)
	if rep.Fits {
		t.Fatalf("18 double-precision transcendental units should overmap an Arria 10: %s", rep)
	}
	if rep.SinglePrec {
		t.Error("kernel with bare double literals must not be single precision")
	}
}

func TestEstimateDPCostsExceedSP(t *testing.T) {
	progDP, fnDP := kfn(t, `void k(int n, const double *a, double *b) {
        for (int i = 0; i < n; i++) { b[i] = exp(a[i]) + sqrt(a[i]); }
    }`)
	progSP, fnSP := kfn(t, `void k(int n, const float *a, float *b) {
        for (int i = 0; i < n; i++) { b[i] = expf(a[i]) + sqrtf(a[i]); }
    }`)
	dp := Estimate(progDP, fnDP, platform.Stratix10, 0)
	sp := Estimate(progSP, fnSP, platform.Stratix10, 0)
	if dp.ALMs <= sp.ALMs {
		t.Fatalf("DP (%d ALMs) must cost more than SP (%d ALMs)", dp.ALMs, sp.ALMs)
	}
}

func TestEstimateIIReductionLoop(t *testing.T) {
	prog, fn := kfn(t, `void k(int n, int m, const double *a, double *b) {
        for (int i = 0; i < n; i++) {
            double acc = 0.0;
            for (int j = 0; j < m; j++) { acc += a[i * m + j]; }
            b[i] = acc;
        }
    }`)
	rep := Estimate(prog, fn, platform.Stratix10, 0)
	if rep.II != 8 {
		t.Errorf("II = %d, want 8 (carried accumulation in pipelined loop)", rep.II)
	}
}

func TestEstimateIIFixedInnerLoopSpatial(t *testing.T) {
	// Fixed inner loops are spatially unrolled: the remaining pipeline
	// loop is parallel, so II stays 1.
	prog, fn := kfn(t, `void k(int n, const double *a, double *b) {
        for (int i = 0; i < n; i++) {
            double acc = 0.0;
            for (int j = 0; j < 4; j++) { acc += a[i * 4 + j]; }
            b[i] = acc;
        }
    }`)
	rep := Estimate(prog, fn, platform.Stratix10, 0)
	if rep.II != 1 {
		t.Errorf("II = %d, want 1 (fixed inner loop is spatial)", rep.II)
	}
}

func TestFmaxDerating(t *testing.T) {
	prog, fn := kfn(t, smallKernel)
	low := Estimate(prog, fn, platform.Stratix10, 0)
	if low.FmaxHz != platform.Stratix10.ClockHz {
		t.Errorf("low-util fmax = %v, want full clock", low.FmaxHz)
	}
	// Unroll until utilisation exceeds the derating threshold.
	loop := firstLoop(prog, fn)
	if err := transform.InsertLoopPragma(loop, pragma(64)); err != nil {
		t.Fatal(err)
	}
	high := Estimate(prog, fn, platform.Stratix10, 0)
	if high.LUTUtil > 0.75 && high.FmaxHz >= platform.Stratix10.ClockHz {
		t.Errorf("high-util design should derate fmax: util=%v fmax=%v", high.LUTUtil, high.FmaxHz)
	}
}

func TestBRAMFromLocalArrays(t *testing.T) {
	prog, fn := kfn(t, `void k(int n, const double *a, double *b) {
        for (int i = 0; i < n; i++) {
            double buf[128];
            buf[0] = a[i];
            b[i] = buf[0];
        }
    }`)
	rep := Estimate(prog, fn, platform.Arria10, 0)
	if rep.BRAMBits != 128*64 {
		t.Errorf("BRAM = %d bits, want %d", rep.BRAMBits, 128*64)
	}
}

func TestUnrollPragmaFactorParsing(t *testing.T) {
	prog, fn := kfn(t, smallKernel)
	if got := UnrollPragmaFactor(prog, fn); got != 1 {
		t.Errorf("no pragma: factor = %d", got)
	}
	loop := firstLoop(prog, fn)
	if err := transform.InsertLoopPragma(loop, "unroll 16"); err != nil {
		t.Fatal(err)
	}
	if got := UnrollPragmaFactor(prog, fn); got != 16 {
		t.Errorf("factor = %d, want 16", got)
	}
}

func TestReportString(t *testing.T) {
	prog, fn := kfn(t, smallKernel)
	rep := Estimate(prog, fn, platform.Arria10, 0)
	s := rep.String()
	for _, want := range []string{"unroll=1", "LUT=", "fits=true"} {
		if !strings.Contains(s, want) {
			t.Errorf("report string missing %q: %s", want, s)
		}
	}
	if rep.Overmapped() {
		t.Error("fitting report must not be overmapped")
	}
}

// helpers

func firstLoop(prog *minic.Program, fn *minic.FuncDecl) minic.Stmt {
	var loop minic.Stmt
	minic.Walk(fn, func(n minic.Node) bool {
		if loop != nil {
			return false
		}
		if fs, ok := n.(*minic.ForStmt); ok {
			loop = fs
			return false
		}
		return true
	})
	return loop
}

func pragma(n int) string {
	return "unroll " + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
