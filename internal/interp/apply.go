package interp

import (
	"fmt"
	"sync/atomic"

	"psaflow/internal/minic"
)

// This file holds the arithmetic, charging, and store semantics shared by
// the tree-walking evaluator (eval.go) and the compiled fast path
// (compile.go). Keeping a single implementation is what makes the two
// execution modes bit-for-bit equivalent: every cycle charge, FLOP count,
// and error message happens in exactly one place, in exactly one order.

// applyUnary evaluates -x / !x on an already-evaluated operand, charging
// exactly as the paper's cost model prescribes.
func (m *machine) applyUnary(op minic.TokKind, x Value) Value {
	if op == minic.TokNot {
		m.charge(CostLogic)
		return BoolVal(!x.AsBool())
	}
	switch x.K {
	case KInt:
		m.charge(CostAddSub)
		return IntVal(-x.I)
	case KFloat:
		m.chargeFlop(CostAddSub, 1)
		return FloatVal(-x.F)
	default:
		m.chargeFlop(CostAddSub, 1)
		return DoubleVal(-x.AsFloat())
	}
}

// applyBinary combines two already-evaluated operands of a
// non-short-circuit binary operator (comparison, modulo, arithmetic).
func (m *machine) applyBinary(op minic.TokKind, l, r Value, pos minic.Pos) (Value, error) {
	if !l.IsNumeric() || !r.IsNumeric() {
		return Value{}, m.errf(pos, "non-numeric operands to %s", op)
	}
	k := promote(l, r)

	switch op {
	case minic.TokLt, minic.TokGt, minic.TokLe, minic.TokGe, minic.TokEqEq, minic.TokNe:
		m.charge(CostCmp)
		lf, rf := l.AsFloat(), r.AsFloat()
		var res bool
		switch op {
		case minic.TokLt:
			res = lf < rf
		case minic.TokGt:
			res = lf > rf
		case minic.TokLe:
			res = lf <= rf
		case minic.TokGe:
			res = lf >= rf
		case minic.TokEqEq:
			res = lf == rf
		case minic.TokNe:
			res = lf != rf
		}
		return BoolVal(res), nil
	case minic.TokPercent:
		if l.K != KInt || r.K != KInt {
			return Value{}, m.errf(pos, "%% requires int operands")
		}
		if r.I == 0 {
			return Value{}, m.errf(pos, "modulo by zero")
		}
		m.charge(CostDivInt)
		m.prof.IntOps++
		return IntVal(l.I % r.I), nil
	}

	if k == KInt {
		m.prof.IntOps++
		li, ri := l.AsInt(), r.AsInt()
		switch op {
		case minic.TokPlus:
			m.charge(CostAddSub)
			return IntVal(li + ri), nil
		case minic.TokMinus:
			m.charge(CostAddSub)
			return IntVal(li - ri), nil
		case minic.TokStar:
			m.charge(CostMul)
			return IntVal(li * ri), nil
		case minic.TokSlash:
			if ri == 0 {
				return Value{}, m.errf(pos, "integer division by zero")
			}
			m.charge(CostDivInt)
			return IntVal(li / ri), nil
		}
	} else {
		lf, rf := l.AsFloat(), r.AsFloat()
		switch op {
		case minic.TokPlus:
			m.chargeFlop(CostAddSub, 1)
			return makeNum(k, lf+rf), nil
		case minic.TokMinus:
			m.chargeFlop(CostAddSub, 1)
			return makeNum(k, lf-rf), nil
		case minic.TokStar:
			m.chargeFlop(CostMul, 1)
			return makeNum(k, lf*rf), nil
		case minic.TokSlash:
			if rf == 0 {
				return Value{}, m.errf(pos, "floating division by zero")
			}
			m.chargeFlop(CostDivF, 1)
			return makeNum(k, lf/rf), nil
		}
	}
	return Value{}, m.errf(pos, "unhandled binary operator %s", op)
}

// applyCompound resolves the RHS of an assignment: plain `=` passes rhs
// through; compound ops combine with the old value and charge.
func (m *machine) applyCompound(op minic.TokKind, old, rhs Value, pos minic.Pos) (Value, error) {
	if op == minic.TokAssign {
		return rhs, nil
	}
	if !old.IsNumeric() || !rhs.IsNumeric() {
		return Value{}, m.errf(pos, "non-numeric compound assignment")
	}
	k := promote(old, rhs)
	lf, rf := old.AsFloat(), rhs.AsFloat()
	var res float64
	switch op {
	case minic.TokPlusEq:
		res = lf + rf
	case minic.TokMinusEq:
		res = lf - rf
	case minic.TokStarEq:
		res = lf * rf
	case minic.TokSlashEq:
		if rf == 0 {
			return Value{}, m.errf(pos, "division by zero in /=")
		}
		res = lf / rf
	default:
		return Value{}, m.errf(pos, "unhandled assign op %s", op)
	}
	cost := CostAddSub
	if op == minic.TokStarEq {
		cost = CostMul
	} else if op == minic.TokSlashEq {
		cost = CostDivF
	}
	if k == KInt {
		m.charge(cost)
		m.prof.IntOps++
	} else {
		m.chargeFlop(cost, 1)
	}
	return makeNum(k, res), nil
}

// storeScalarCell writes nv into a scalar cell preserving the cell's
// declared kind, and returns the stored value (the assignment expression's
// result).
func (m *machine) storeScalarCell(cell *Value, nv Value, pos minic.Pos) (Value, error) {
	switch cell.K {
	case KInt:
		*cell = IntVal(nv.AsInt())
	case KFloat:
		*cell = FloatVal(nv.AsFloat())
	case KDouble:
		*cell = DoubleVal(nv.AsFloat())
	case KBool:
		*cell = BoolVal(nv.AsBool())
	default:
		return Value{}, m.errf(pos, "cannot assign to %s", cell.K)
	}
	m.charge(CostLocal)
	return *cell, nil
}

// incDecCell applies ++/-- to a scalar cell, returning the old value
// (postfix semantics).
func (m *machine) incDecCell(cell *Value, delta int64, pos minic.Pos) (Value, error) {
	old := *cell
	switch cell.K {
	case KInt:
		m.charge(CostAddSub)
		m.prof.IntOps++
		*cell = IntVal(cell.I + delta)
	case KFloat:
		m.chargeFlop(CostAddSub, 1)
		*cell = FloatVal(cell.F + float64(delta))
	case KDouble:
		m.chargeFlop(CostAddSub, 1)
		*cell = DoubleVal(cell.F + float64(delta))
	default:
		return Value{}, m.errf(pos, "cannot ++/-- a %s", cell.K)
	}
	return old, nil
}

// incDecElemValue applies ++/-- arithmetic to a loaded array element.
func (m *machine) incDecElemValue(old Value, delta int64) Value {
	if old.K == KInt {
		m.charge(CostAddSub)
		m.prof.IntOps++
		return IntVal(old.I + delta)
	}
	m.chargeFlop(CostAddSub, 1)
	return makeNum(old.K, old.F+float64(delta))
}

// callBuiltin invokes a runtime intrinsic on already-evaluated arguments.
func (m *machine) callBuiltin(name string, bi builtin, args []Value, pos minic.Pos) (Value, error) {
	if len(args) != bi.arity {
		return Value{}, m.errf(pos, "%s: %d args, want %d", name, len(args), bi.arity)
	}
	m.chargeFlop(bi.cost, bi.flops)
	if bi.flops > 1 {
		m.specialFlops += bi.flops
	}
	return bi.fn(args), nil
}

// bufOf checks that an evaluated index base is a buffer. The check runs
// before the index expression is evaluated, matching tree-walk order.
func (m *machine) bufOf(base Value, pos minic.Pos) (*Buffer, error) {
	if base.K != KBuf {
		return nil, m.errf(pos, "indexing non-array value (%s)", base.K)
	}
	return base.Buf, nil
}

// boundsOf validates an evaluated index against a buffer.
func (m *machine) boundsOf(buf *Buffer, idx Value, pos minic.Pos) (int64, error) {
	i := idx.AsInt()
	if i < 0 || i >= int64(buf.Len()) {
		return 0, m.errf(pos, "index %d out of range [0,%d) for %s", i, buf.Len(), buf.Name)
	}
	return i, nil
}

// makeArray allocates the runtime buffer for an array declaration.
func (m *machine) makeArray(name string, kind minic.BasicKind, n int64, pos minic.Pos) (*Buffer, error) {
	if n < 0 || n > 1<<26 {
		return nil, m.errf(pos, "array %s has invalid length %d", name, n)
	}
	buf := &Buffer{Name: name, Kind: kind}
	if kind == minic.Int {
		buf.I = make([]int64, n)
	} else {
		buf.F = make([]float64, n)
	}
	return buf, nil
}

// enterWatch begins a watched-function activation: records the call, the
// parameter→buffer bindings for alias observation, and swaps in the
// buffer→parameter map for traffic attribution. Returns the previous map
// for exitWatch.
func (m *machine) enterWatch(params []*minic.Param, args []Value) map[*Buffer]string {
	m.prof.WatchCalls++
	binding := make(map[string]*Buffer)
	pm := make(map[*Buffer]string)
	for i, p := range params {
		if args[i].K == KBuf {
			binding[p.Name] = args[i].Buf
			pm[args[i].Buf] = p.Name
			if _, ok := m.prof.ParamTraffic[p.Name]; !ok {
				m.prof.ParamTraffic[p.Name] = &Traffic{Param: p.Name}
			}
		}
	}
	m.prof.Bindings = append(m.prof.Bindings, binding)
	prev := m.paramOf
	m.paramOf = pm
	m.watchEpoch = nextWatchEpoch()
	if m.watchDepth == 0 {
		m.watchCycBase = m.prof.Cycles
		m.watchFlopBase = m.prof.Flops
		m.watchLoadBase = m.prof.LoadBytes
		m.watchStoreBase = m.prof.StoreBytes
		m.watchSpecialBase = m.specialFlops
	}
	m.watchDepth++
	return prev
}

// exitWatch ends a watched activation. Leaving the outermost watched
// call folds the totals accumulated during the activation into the
// Watch* counters (nested watched calls are already covered by the
// outermost delta, exactly as per-charge accounting would count them).
func (m *machine) exitWatch(prev map[*Buffer]string) {
	m.watchDepth--
	m.paramOf = prev
	m.watchEpoch = nextWatchEpoch()
	if m.watchDepth == 0 {
		m.prof.WatchCycles += m.prof.Cycles - m.watchCycBase
		m.prof.WatchFlops += m.prof.Flops - m.watchFlopBase
		m.prof.WatchLoadBytes += m.prof.LoadBytes - m.watchLoadBase
		m.prof.WatchStoreBytes += m.prof.StoreBytes - m.watchStoreBase
		m.prof.WatchSpecialFlops += m.specialFlops - m.watchSpecialBase
	}
}

// watchEpochCounter hands out globally unique watch epochs so that a
// Buffer's cached traffic pointer can never be mistaken for one resolved
// under a different paramOf map (even across machines reusing a buffer).
var watchEpochCounter atomic.Uint64

func nextWatchEpoch() uint64 { return watchEpochCounter.Add(1) }

// trafficOf returns the traffic accumulator for buf under the innermost
// watched call, or nil if buf is not bound to a watched parameter. The
// two map lookups (buffer→param name, name→accumulator) only run once
// per buffer per watch epoch; element accesses in hot loops hit the
// cache on the buffer itself.
func (m *machine) trafficOf(buf *Buffer) *Traffic {
	if buf.trafEpoch != m.watchEpoch {
		buf.trafEpoch = m.watchEpoch
		if pname, ok := m.paramOf[buf]; ok {
			buf.traf = m.prof.ParamTraffic[pname]
		} else {
			buf.traf = nil
		}
	}
	return buf.traf
}

// sprintParts renders captured printf arguments exactly as the tree-walk
// evaluator always has.
func sprintParts(parts []string) string { return fmt.Sprint(parts) }
