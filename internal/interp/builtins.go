package interp

import "math"

// builtin describes a runtime math intrinsic: Go implementation, arity,
// virtual-clock cost, and how many FLOPs it counts as (transcendentals are
// weighted by their polynomial cost so arithmetic-intensity measurements
// reflect real work, matching how rooflines weight special functions).
type builtin struct {
	fn    func([]Value) Value
	arity int
	cost  float64
	flops int64
	// Scalar forms for the quickener (quicken.go): the underlying float
	// function without the []Value wrapper, nil for the int intrinsics.
	// rnd marks single-precision results (FloatVal rounding).
	s1  func(float64) float64
	s2  func(float64, float64) float64
	rnd bool
}

func d1(f func(float64) float64, cost float64, flops int64) builtin {
	return builtin{
		fn:    func(a []Value) Value { return DoubleVal(f(a[0].AsFloat())) },
		arity: 1, cost: cost, flops: flops, s1: f,
	}
}

func f1(f func(float64) float64, cost float64, flops int64) builtin {
	return builtin{
		fn:    func(a []Value) Value { return FloatVal(f(a[0].AsFloat())) },
		arity: 1, cost: cost, flops: flops, s1: f, rnd: true,
	}
}

func d2(f func(float64, float64) float64, cost float64, flops int64) builtin {
	return builtin{
		fn:    func(a []Value) Value { return DoubleVal(f(a[0].AsFloat(), a[1].AsFloat())) },
		arity: 2, cost: cost, flops: flops, s2: f,
	}
}

func f2(f func(float64, float64) float64, cost float64, flops int64) builtin {
	return builtin{
		fn:    func(a []Value) Value { return FloatVal(f(a[0].AsFloat(), a[1].AsFloat())) },
		arity: 2, cost: cost, flops: flops, s2: f, rnd: true,
	}
}

// builtins is the MiniC intrinsic table. The double/single pairs mirror
// libm (sqrt/sqrtf, ...); the double-underscore entries model the
// specialised GPU intrinsics installed by the "Employ Specialised Math
// Fns" transform — same semantics, cheaper cost, single precision.
var builtins = map[string]builtin{
	"sqrt":   d1(math.Sqrt, CostSqrt, 4),
	"sqrtf":  f1(math.Sqrt, CostSqrt, 4),
	"exp":    d1(math.Exp, CostExp, 8),
	"expf":   f1(math.Exp, CostExp, 8),
	"log":    d1(math.Log, CostLog, 8),
	"logf":   f1(math.Log, CostLog, 8),
	"pow":    d2(math.Pow, CostPow, 16),
	"powf":   f2(math.Pow, CostPow, 16),
	"sin":    d1(math.Sin, CostTrig, 8),
	"sinf":   f1(math.Sin, CostTrig, 8),
	"cos":    d1(math.Cos, CostTrig, 8),
	"cosf":   f1(math.Cos, CostTrig, 8),
	"tanh":   d1(math.Tanh, CostTrig, 8),
	"tanhf":  f1(math.Tanh, CostTrig, 8),
	"erf":    d1(math.Erf, CostErf, 10),
	"erff":   f1(math.Erf, CostErf, 10),
	"fabs":   d1(math.Abs, CostAbsMin, 1),
	"fabsf":  f1(math.Abs, CostAbsMin, 1),
	"floor":  d1(math.Floor, CostAbsMin, 1),
	"floorf": f1(math.Floor, CostAbsMin, 1),
	"fmin":   d2(math.Min, CostAbsMin, 1),
	"fminf":  f2(math.Min, CostAbsMin, 1),
	"fmax":   d2(math.Max, CostAbsMin, 1),
	"fmaxf":  f2(math.Max, CostAbsMin, 1),

	// Specialised (fast-math) GPU intrinsics.
	"__expf":     f1(math.Exp, CostFastFn, 8),
	"__logf":     f1(math.Log, CostFastFn, 8),
	"__powf":     f2(math.Pow, CostFastFn, 16),
	"__sinf":     f1(math.Sin, CostFastFn, 8),
	"__cosf":     f1(math.Cos, CostFastFn, 8),
	"__fsqrt_rn": f1(math.Sqrt, CostFastFn, 4),

	"abs": {
		fn: func(a []Value) Value {
			v := a[0].AsInt()
			if v < 0 {
				v = -v
			}
			return IntVal(v)
		},
		arity: 1, cost: CostAbsMin, flops: 0,
	},
	"min": {
		fn: func(a []Value) Value {
			x, y := a[0].AsInt(), a[1].AsInt()
			if y < x {
				x = y
			}
			return IntVal(x)
		},
		arity: 2, cost: CostAbsMin, flops: 0,
	},
	"max": {
		fn: func(a []Value) Value {
			x, y := a[0].AsInt(), a[1].AsInt()
			if y > x {
				x = y
			}
			return IntVal(x)
		},
		arity: 2, cost: CostAbsMin, flops: 0,
	},
}

// IsBuiltin reports whether name is a runtime intrinsic.
func IsBuiltin(name string) bool {
	if name == "printf" {
		return true
	}
	_, ok := builtins[name]
	return ok
}

// BuiltinFlops returns the FLOP weight charged per call of a builtin, or
// 0 for unknown names; used by static analyses to weight call expressions
// consistently with dynamic measurement.
func BuiltinFlops(name string) int64 {
	if b, ok := builtins[name]; ok {
		return b.flops
	}
	return 0
}

// BuiltinCost returns the virtual-cycle cost of a builtin, or 0.
func BuiltinCost(name string) float64 {
	if b, ok := builtins[name]; ok {
		return b.cost
	}
	return 0
}
