package interp

import (
	"fmt"

	"psaflow/internal/minic"
)

// The register-based bytecode fast path. Run lowers every function of the
// program once into a flat instruction stream over numbered value slots
// (registers): variables resolve to stable registers exactly as in the
// closure compiler (compile.go), expression temporaries occupy a reused
// region above them, and a single dispatch loop (bytecode_exec.go)
// replaces the per-node closure calls of the compiled path. A fusion pass
// built into the lowering emits superinstructions for the dominant
// benchmark patterns — load-binop-store (opBinAssignVar), indexed array
// read/accumulate (fused index operands on assignments), compare-and-
// branch loop heads (opCmpBranch), and fused multiply-add on float paths
// (a compound `+=` whose RHS multiply executes in the same dispatch).
//
// Semantics — step accounting (including the exact position each budget
// check reports), cycle charging order, loop profiles, memory tracing,
// alias observation, captured output, and every error message — are
// bit-for-bit identical to the tree-walker and the closure path: all
// value/cost semantics live in the shared helpers of apply.go, and the
// lowering reproduces the closure compiler's accounting sequence
// instruction by instruction. The three-way equivalence suite
// (bytecode_test.go) holds all three engines to the bit under -race.
//
// Cancellation polling is folded into loop back-edges and function entry
// (opLoopBack / callBytecode) rather than every statement step, so the
// dispatch loop pays one counter increment per iteration and a channel
// poll every cancelCheckInterval back-edges.

// opcode enumerates bytecode instructions.
type opcode uint8

const (
	opNop opcode = iota
	opEval        // dst = fetch(a)
	opUnary       // dst = applyUnary(tok, fetch(a))
	opBinary      // dst = fusedBin(a, b, tok, pos)
	opLogicShort  // charge CostLogic; short-circuit on fetch result -> dst, jmp
	opBoolOf      // dst = BoolVal(fetch(a).AsBool())
	opCast        // dst = coerce(fetch(a), typ) after CostCast
	opDeclVar     // regs[reg] = coerce(fetch(a) or zero, typ); CostLocal
	opBinDeclVar  // regs[reg] = coerce(fusedBin(a, b, tok2, pos2), typ)  [superinstruction]
	opDeclArr     // regs[reg] = makeArray(name, kind, fetch(a))
	opAssignVar   // regs[reg] op= fetch(a) via applyCompound/storeScalarCell
	opBinAssignVar // regs[reg] op= fusedBin(a, b, tok2, pos2)  [superinstruction]
	opStoreIdx    // tgt[...] op= fetch(a) via loadElem/applyCompound/storeElem
	opIncVar      // dst = old; regs[reg] += n (postfix ++/--)
	opIncIdx      // dst = old; tgt[...] += n
	opLoadIdx     // dst = loadElem(resolveTgt(tgt)) — non-fused index read
	opCheckBuf    // bufOf(fetch(a)) — preserves base-check-before-index order
	opCmpBranch   // fusedBin cond; CostBranch; !cond -> pc = jmp  [superinstruction]
	opBranchFalse // fetch(a); CostBranch; !cond -> pc = jmp
	opJump        // pc = jmp
	opLoopEnter   // Entries++; push {lp, cycles} on the frame loop stack
	opLoopBack    // iteration step + cancellation poll + Trips++
	opLoopExit    // pop loop stack; attribute cycles
	opCall        // dst = callBytecode(fn, regs[reg:reg+n])
	opBuiltin     // dst = callBuiltin(name, bi, args) — args fused (a, b) or regs[reg:reg+n]
	opPrintf      // capture output from regs[reg:reg+n]
	opReturn      // fr.ret = coerce(fetch(a), typ); unwind loops; halt
	opReturnVoid  // unwind loops; halt
	opErrMsg      // return preformatted RuntimeError{pos, name}

	// Quickened (type-specialized) opcodes, rewritten in place from their
	// generic forms by the runtime quickener (quicken.go) once an
	// instruction turns hot. Every opcode from opQFirst on carries a baked
	// operand/accounting plan in binstr.q and deoptimizes back to its gop
	// on any guard miss. FF = both operands float kinds, II = both int.
	opQBinFF     // dst = a ⊗ b                     (from opBinary)
	opQBinII     //
	opQCmpBrFF   // !cmp(a, b) -> pc = jmp          (from opCmpBranch)
	opQCmpBrII   //
	opQBinDeclFF // regs[reg] = coerce(a ⊗ b)       (from opBinDeclVar)
	opQBinDeclII //
	opQAccFF     // regs[reg] op= a ⊗ b             (from opBinAssignVar)
	opQAccII     //
	opQStoreF    // tgt[...] op= a                  (from opStoreIdx)
	opQStoreI    //
	opQDeclF     // regs[reg] = coerce(a)           (from opDeclVar)
	opQDeclI     //
	opQLoad      // dst = tgt[...]                  (from opLoadIdx)
	opQMath1     // dst = mathfn(a)                 (from opBuiltin, scalar float intrinsics)
	opQMath2     // dst = mathfn(a, b)
)

// opQFirst marks the start of the quickened opcode range: an instruction
// with in.op >= opQFirst holds a baked plan and a saved generic opcode.
const opQFirst = opQBinFF

// Operand fetch modes. The fused modes reproduce exactly the accounting
// the corresponding standalone closure (compile.go) would perform.
const (
	omNone  uint8 = iota // operand absent
	omPlain              // read a register; the producer already accounted
	omVar                // step at pos + CostLocal + register read
	omConst              // step at pos + literal value
	omIdx                // step at pos + resolveTgt + loadElem (indexed read)
)

// FusePat identifies one superinstruction fusion pattern. Every fused
// instruction carries the pattern that produced it, so the dispatch loop
// can attribute superinstruction dispatches per pattern (DispatchTrace)
// and the lowering can be driven by a mined FusionPolicy instead of the
// fixed always-everything list.
type FusePat uint8

// The fusion patterns. Any subset lowers to a bit-for-bit equivalent
// program: a disabled pattern simply takes the general materialization
// path, whose accounting the closure oracle already defines.
const (
	FuseNone       FusePat = iota
	FuseBinary             // fused opBinary (inline operand fetches)
	FuseCmpBranch          // compare-and-branch loop heads (opCmpBranch)
	FuseBinDecl            // declare-with-binary-initializer (opBinDeclVar)
	FuseBinAssign          // load-binop-store / FMA accumulate (opBinAssignVar)
	FuseIdxOperand         // indexed loads fused as operands (omIdx)
	FuseStoreIdx           // fused indexed stores (opStoreIdx)
	FuseIncIdx             // fused indexed ++/-- (opIncIdx)
	FuseBuiltin            // builtins with inline-fetched arguments
	NumFusePats
)

// String names the pattern (telemetry and trace dumps).
func (p FusePat) String() string {
	switch p {
	case FuseBinary:
		return "binary"
	case FuseCmpBranch:
		return "cmp-branch"
	case FuseBinDecl:
		return "bin-decl"
	case FuseBinAssign:
		return "bin-assign"
	case FuseIdxOperand:
		return "idx-operand"
	case FuseStoreIdx:
		return "store-idx"
	case FuseIncIdx:
		return "inc-idx"
	case FuseBuiltin:
		return "builtin"
	}
	return "none"
}

// FusionPolicy selects which fusion patterns the lowering applies, one bit
// per FusePat. The zero policy disables all fusion; AllFusion is the
// cold-start policy (every pattern enabled, dispatch trace decides what a
// warm lowering keeps — see MineFusion).
type FusionPolicy uint16

// AllFusion enables every fusion pattern.
const AllFusion FusionPolicy = (1<<NumFusePats - 1) &^ 1

// Has reports whether pattern p is enabled.
func (fp FusionPolicy) Has(p FusePat) bool { return fp&(1<<p) != 0 }

// With returns fp with pattern p enabled.
func (fp FusionPolicy) With(p FusePat) FusionPolicy { return fp | 1<<p }

// bopnd is one fused operand.
type bopnd struct {
	mode uint8
	ref  int32     // register for omPlain/omVar
	val  Value     // literal for omConst
	pos  minic.Pos // accounting/diagnostic position
	tgt  *btarget  // indexed-load target for omIdx
}

// btarget is a (possibly fused) index target base[idx]. When fused is
// set, the index value is the fused binary idx ⊕ idxB — reproducing the
// closure path, where a binary index expression compiles to the inlined
// binary closure. When fused2 is also set, the index is the two-level
// binary (idx2a ⊕₂ idx2b) ⊕ idxB — the row-major pattern a[i*K+j] — and
// the inner result takes the outer binary's left-operand place (idx is
// unused). idx2a/idx2b come from fuseSimple, so they are always omVar or
// omConst.
type btarget struct {
	base   bopnd
	idx    bopnd
	idxB   bopnd
	fused  bool
	idxOp  minic.TokKind
	idxPos minic.Pos
	pos    minic.Pos // the IndexExpr position (bufOf / bounds errors)

	fused2  bool
	idx2a   bopnd
	idx2b   bopnd
	idxOp2  minic.TokKind
	idxPos2 minic.Pos
}

// binstr is one instruction. pre holds statement/expression step positions
// that the enclosing constructs charge before this instruction's own work
// (a fused `b[i] += x` carries the expression-statement and assignment
// steps here), preserving the exact budget-exceeded error positions.
//
// The leading fields form the dispatch-hot header (opcode, fusion pattern,
// quickening state, registers, batched step count); positions, types, and
// names used only on cold paths trail them.
type binstr struct {
	op     opcode
	fuse   FusePat // superinstruction pattern; FuseNone when not fused
	gop    opcode  // generic opcode a quickened instruction deopts back to
	dst    int32   // result register; -1 discards
	reg    int32   // variable register / args base register
	n      int32   // arg count; ++/-- delta
	jmp    int32   // branch target
	nsteps int32   // static step count: len(pre) + own step + operand steps
	hot    int32   // per-instruction execution counter driving quickening
	tok    minic.TokKind
	tok2   minic.TokKind // binop for opBinAssignVar
	a, b   bopnd
	q      *qinfo // quickened form; nil until the hot counter trips

	pre  []minic.Pos
	pos  minic.Pos
	pos2 minic.Pos // secondary position (binop inside opBinAssignVar, LHS of assignments)
	pos3 minic.Pos // tertiary position (LHS of opBinAssignVar)
	lid  int       // loop node ID for opLoopEnter
	tgt  *btarget
	typ  minic.Type
	name string // variable/function/builtin name or preformatted error text
	fn   *bfunc
	bi   builtin
}

// bfunc is one lowered function.
type bfunc struct {
	decl  *minic.FuncDecl
	nregs int
	code  []binstr
}

// bprog is the lowered program.
type bprog struct {
	funcs map[string]*bfunc
}

// tempBit marks temporary-register references during lowering; finalize
// rewrites them to sit above the function's variable registers.
const tempBit = int32(1) << 28

// bcompiler carries per-function lowering state. Variable registers are
// allocated exactly as the closure compiler allocates slots (never
// reused, so shadowing resolves identically); temporaries are a LIFO
// region rewritten above the variables once their count is known.
type bcompiler struct {
	prog   *minic.Program
	policy FusionPolicy
	funcs  map[string]*bfunc
	scopes []map[string]int32
	nvars  int32
	tempN  int32
	tempMax int32
	code   []binstr
	curFn  *minic.FuncDecl
	loops  []*bloopCtx
}

// bloopCtx collects break/continue patch sites for one lexical loop.
type bloopCtx struct {
	breaks []int32
	conts  []int32
}

// compileBytecode lowers every function of prog under the given fusion
// policy. Like compileProgram it never fails: constructs the tree-walker
// would only reject at runtime lower to opErrMsg instructions producing
// the identical error, so unexecuted dead code stays legal. Any policy
// lowers to a bit-for-bit equivalent program — a disabled pattern takes
// the general materialization path.
func compileBytecode(prog *minic.Program, policy FusionPolicy) *bprog {
	c := &bcompiler{prog: prog, policy: policy, funcs: make(map[string]*bfunc, len(prog.Funcs))}
	for _, f := range prog.Funcs {
		if _, exists := c.funcs[f.Name]; !exists { // first declaration wins, as in Program.Func
			c.funcs[f.Name] = &bfunc{decl: f}
		}
	}
	for _, f := range prog.Funcs {
		if bf := c.funcs[f.Name]; bf.decl == f {
			c.compileFunc(bf)
		}
	}
	return &bprog{funcs: c.funcs}
}

func (c *bcompiler) push() { c.scopes = append(c.scopes, make(map[string]int32)) }
func (c *bcompiler) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *bcompiler) declare(name string) int32 {
	reg := c.nvars
	c.nvars++
	c.scopes[len(c.scopes)-1][name] = reg
	return reg
}

func (c *bcompiler) lookup(name string) (int32, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if reg, ok := c.scopes[i][name]; ok {
			return reg, true
		}
	}
	return 0, false
}

// tempAlloc reserves a temporary register (LIFO discipline).
func (c *bcompiler) tempAlloc() int32 {
	t := c.tempN
	c.tempN++
	if c.tempN > c.tempMax {
		c.tempMax = c.tempN
	}
	return t | tempBit
}

func (c *bcompiler) tempFree(n int32) { c.tempN -= n }

func (c *bcompiler) emit(in binstr) int32 {
	c.code = append(c.code, in)
	return int32(len(c.code) - 1)
}

func (c *bcompiler) here() int32 { return int32(len(c.code)) }

func (c *bcompiler) compileFunc(bf *bfunc) {
	fn := bf.decl
	c.curFn = fn
	c.scopes = c.scopes[:0]
	c.nvars, c.tempN, c.tempMax = 0, 0, 0
	c.code = nil
	c.loops = c.loops[:0]
	c.push() // parameter scope, as in machine.call
	for _, p := range fn.Params {
		c.declare(p.Name) // params occupy registers 0..len-1 in order
	}
	c.compileStmts(fn.Body.Stmts, nil)
	c.pop()
	bf.code = c.code
	bf.nregs = int(c.nvars + c.tempMax)
	c.finalize(bf)
	c.code = nil
}

// opndSteps counts the fine-grained steps a fused operand fetch performs
// (fetchOp): one per omVar/omConst/omIdx fetch, plus the resolve steps of
// an indexed operand's target.
func opndSteps(o *bopnd) int32 {
	switch o.mode {
	case omVar, omConst:
		return 1
	case omIdx:
		return 1 + tgtSteps(o.tgt)
	}
	return 0
}

// tgtSteps counts the steps resolveTgt performs: the base fetch, and
// either the fused index binary (own step + two operand fetches), the
// two-level fused binary (outer and inner own steps + three operand
// fetches), or the plain index fetch.
func tgtSteps(t *btarget) int32 {
	n := opndSteps(&t.base)
	switch {
	case t.fused2:
		n += 1 + 1 + opndSteps(&t.idx2a) + opndSteps(&t.idx2b) + opndSteps(&t.idxB)
	case t.fused:
		n += 1 + opndSteps(&t.idx) + opndSteps(&t.idxB)
	default:
		n += opndSteps(&t.idx)
	}
	return n
}

// instrSteps computes an instruction's static step count — the exact
// number of fine-grained steps the closure path charges for the same
// work. The dispatch loop batches the whole count into one budget check;
// execPrecise replays per-step when the batch detects a crossing. Every
// counted step precedes the instruction's stepless tail (combine, store,
// branch, call), so a crossing is always caught before side effects.
func instrSteps(in *binstr) int32 {
	n := int32(len(in.pre))
	switch in.op {
	case opCmpBranch, opBinAssignVar, opBinDeclVar, opLoopBack:
		n++ // the instruction's own leading step
	}
	switch in.op {
	case opEval, opUnary, opLogicShort, opBoolOf, opCast, opDeclVar, opDeclArr,
		opAssignVar, opBranchFalse, opReturn, opCheckBuf:
		n += opndSteps(&in.a)
	case opBinary, opCmpBranch, opBinAssignVar, opBinDeclVar, opBuiltin:
		n += opndSteps(&in.a) + opndSteps(&in.b)
	case opStoreIdx:
		n += opndSteps(&in.a) + tgtSteps(in.tgt)
	case opIncIdx, opLoadIdx:
		n += tgtSteps(in.tgt)
	}
	return n
}

// finalize rewrites temporary references to live above the variables.
func (c *bcompiler) finalize(bf *bfunc) {
	fix := func(r *int32) {
		if *r >= 0 && *r&tempBit != 0 {
			*r = c.nvars + (*r &^ tempBit)
		}
	}
	fixOp := func(o *bopnd) {
		fix(&o.ref)
		if o.tgt != nil {
			fix(&o.tgt.base.ref)
			fix(&o.tgt.idx.ref)
			fix(&o.tgt.idxB.ref)
			fix(&o.tgt.idx2a.ref)
			fix(&o.tgt.idx2b.ref)
		}
	}
	for i := range bf.code {
		in := &bf.code[i]
		fix(&in.dst)
		fix(&in.reg)
		fixOp(&in.a)
		fixOp(&in.b)
		if in.tgt != nil {
			fixOp(&in.tgt.base)
			fixOp(&in.tgt.idx)
			fixOp(&in.tgt.idxB)
			fixOp(&in.tgt.idx2a)
			fixOp(&in.tgt.idx2b)
		}
		in.nsteps = instrSteps(in)
	}
}

// fuseSimple builds a fused operand for the shapes the closure compiler's
// operand() flattens: resolved identifiers and literals.
func (c *bcompiler) fuseSimple(e minic.Expr) (bopnd, bool) {
	pos := e.NodePos()
	switch v := e.(type) {
	case *minic.Ident:
		if reg, ok := c.lookup(v.Name); ok {
			return bopnd{mode: omVar, ref: reg, pos: pos}, true
		}
	case *minic.IntLit:
		return bopnd{mode: omConst, val: IntVal(v.Val), pos: pos}, true
	case *minic.FloatLit:
		if v.Single {
			return bopnd{mode: omConst, val: FloatVal(v.Val), pos: pos}, true
		}
		return bopnd{mode: omConst, val: DoubleVal(v.Val), pos: pos}, true
	case *minic.BoolLit:
		return bopnd{mode: omConst, val: BoolVal(v.Val), pos: pos}, true
	}
	return bopnd{}, false
}

// fuseOperand extends fuseSimple with indexed loads whose base is a
// resolved variable and whose index is simple or a simple⊕simple binary —
// the accumulate patterns (s += a[i], x = p[i*3]) fuse into one
// instruction. The fetch accounting matches the standalone IndexExpr
// closure exactly.
func (c *bcompiler) fuseOperand(e minic.Expr) (bopnd, bool) {
	if o, ok := c.fuseSimple(e); ok {
		return o, true
	}
	if !c.policy.Has(FuseIdxOperand) {
		return bopnd{}, false
	}
	ix, ok := e.(*minic.IndexExpr)
	if !ok {
		return bopnd{}, false
	}
	tgt, ok := c.fuseTarget(ix)
	if !ok {
		return bopnd{}, false
	}
	return bopnd{mode: omIdx, pos: ix.NodePos(), tgt: tgt}, true
}

// fuseTarget builds a fused index target when base and index are simple
// enough to resolve without materialization.
func (c *bcompiler) fuseTarget(ix *minic.IndexExpr) (*btarget, bool) {
	base, ok := c.fuseSimple(ix.Base)
	if !ok {
		return nil, false
	}
	t := &btarget{base: base, pos: ix.NodePos()}
	if idx, ok := c.fuseSimple(ix.Index); ok {
		t.idx = idx
		return t, true
	}
	if b, ok := ix.Index.(*minic.BinaryExpr); ok && b.Op != minic.TokAndAnd && b.Op != minic.TokOrOr {
		l, lok := c.fuseSimple(b.L)
		r, rok := c.fuseSimple(b.R)
		if lok && rok {
			t.idx, t.idxB, t.fused = l, r, true
			t.idxOp, t.idxPos = b.Op, b.NodePos()
			return t, true
		}
		// Two-level row-major pattern a[(x ⊕₂ y) ⊕ z]: a left-nested
		// binary with simple leaves (i*K+j and friends).
		if !lok && rok {
			if bl, ok := b.L.(*minic.BinaryExpr); ok && bl.Op != minic.TokAndAnd && bl.Op != minic.TokOrOr {
				x, xok := c.fuseSimple(bl.L)
				y, yok := c.fuseSimple(bl.R)
				if xok && yok {
					t.idx2a, t.idx2b, t.fused, t.fused2 = x, y, true, true
					t.idxOp2, t.idxPos2 = bl.Op, bl.NodePos()
					t.idxB = r
					t.idxOp, t.idxPos = b.Op, b.NodePos()
					return t, true
				}
			}
		}
	}
	return nil, false
}

// compileStmts lowers a statement list; pre is charged before the first
// statement's own step (the enclosing block's statement step).
func (c *bcompiler) compileStmts(stmts []minic.Stmt, pre []minic.Pos) {
	if len(stmts) == 0 {
		if len(pre) > 0 {
			c.emit(binstr{op: opNop, pre: pre})
		}
		return
	}
	for i, s := range stmts {
		if i == 0 {
			c.compileStmt(s, pre)
		} else {
			c.compileStmt(s, nil)
		}
	}
}

func withPos(pre []minic.Pos, pos minic.Pos) []minic.Pos {
	out := make([]minic.Pos, 0, len(pre)+1)
	out = append(out, pre...)
	return append(out, pos)
}

func (c *bcompiler) compileStmt(s minic.Stmt, pre []minic.Pos) {
	pos := s.NodePos()
	switch v := s.(type) {
	case *minic.Block:
		c.push()
		c.compileStmts(v.Stmts, withPos(pre, pos))
		c.pop()
	case *minic.DeclStmt:
		c.compileDecl(v, pre)
	case *minic.ExprStmt:
		c.compileExprTo(v.X, -1, withPos(pre, pos))
	case *minic.ForStmt:
		c.compileFor(v, pre)
	case *minic.WhileStmt:
		c.compileWhile(v, pre)
	case *minic.IfStmt:
		c.compileIf(v, pre)
	case *minic.ReturnStmt:
		if v.X == nil {
			c.emit(binstr{op: opReturnVoid, pre: withPos(pre, pos), pos: pos})
			return
		}
		if o, ok := c.fuseOperand(v.X); ok {
			c.emit(binstr{op: opReturn, pre: withPos(pre, pos), pos: pos, a: o, typ: c.curFn.Ret})
			return
		}
		t := c.tempAlloc()
		c.compileExprTo(v.X, t, withPos(pre, pos))
		c.emit(binstr{op: opReturn, pos: pos, a: bopnd{mode: omPlain, ref: t}, typ: c.curFn.Ret})
		c.tempFree(1)
	case *minic.BreakStmt:
		if len(c.loops) == 0 {
			c.emitEscaped(pre, pos)
			return
		}
		lc := c.loops[len(c.loops)-1]
		lc.breaks = append(lc.breaks, c.emit(binstr{op: opJump, pre: withPos(pre, pos)}))
	case *minic.ContinueStmt:
		if len(c.loops) == 0 {
			c.emitEscaped(pre, pos)
			return
		}
		lc := c.loops[len(c.loops)-1]
		lc.conts = append(lc.conts, c.emit(binstr{op: opJump, pre: withPos(pre, pos)}))
	case *minic.PragmaStmt:
		c.emit(binstr{op: opNop, pre: withPos(pre, pos)}) // pragmas are semantically transparent
	default:
		c.emit(binstr{op: opErrMsg, pre: withPos(pre, pos), pos: pos,
			name: fmt.Sprintf("unhandled statement %T", s)})
	}
}

// emitEscaped lowers a break/continue outside any loop: the closure path
// surfaces it when control reaches callCompiled, with the function's
// position.
func (c *bcompiler) emitEscaped(pre []minic.Pos, pos minic.Pos) {
	c.emit(binstr{op: opErrMsg, pre: withPos(pre, pos), pos: c.curFn.NodePos(),
		name: fmt.Sprintf("break/continue escaped function %s", c.curFn.Name)})
}

func (c *bcompiler) compileDecl(d *minic.DeclStmt, pre []minic.Pos) {
	pos := d.NodePos()
	if d.ArrayLen != nil {
		// The length expression resolves in the surrounding scope, before
		// the array's own name becomes visible.
		if o, ok := c.fuseOperand(d.ArrayLen); ok {
			reg := c.declare(d.Name)
			c.emit(binstr{op: opDeclArr, pre: withPos(pre, pos), pos: pos, reg: reg,
				a: o, name: d.Name, typ: d.Type})
			return
		}
		t := c.tempAlloc()
		c.compileExprTo(d.ArrayLen, t, withPos(pre, pos))
		reg := c.declare(d.Name)
		c.emit(binstr{op: opDeclArr, pos: pos, reg: reg,
			a: bopnd{mode: omPlain, ref: t}, name: d.Name, typ: d.Type})
		c.tempFree(1)
		return
	}
	// Initializers see the outer binding of a shadowed name, so compile
	// Init before declaring.
	var init bopnd
	var initInstrs bool
	var t int32
	if d.Init != nil {
		// Superinstruction: a declaration initialized by a fusible binary
		// (`float dx = p[j] - p[i]`) evaluates and declares in one dispatch.
		if b, bok := d.Init.(*minic.BinaryExpr); bok && c.policy.Has(FuseBinDecl) &&
			b.Op != minic.TokAndAnd && b.Op != minic.TokOrOr {
			l, lok := c.fuseOperand(b.L)
			r, rok := c.fuseOperand(b.R)
			if lok && rok {
				reg := c.declare(d.Name)
				c.emit(binstr{op: opBinDeclVar, fuse: FuseBinDecl, pre: withPos(pre, pos), pos: pos,
					pos2: b.NodePos(), tok2: b.Op, reg: reg, a: l, b: r, name: d.Name, typ: d.Type})
				return
			}
		}
		if o, ok := c.fuseOperand(d.Init); ok {
			init = o
		} else {
			t = c.tempAlloc()
			c.compileExprTo(d.Init, t, withPos(pre, pos))
			init = bopnd{mode: omPlain, ref: t}
			initInstrs = true
		}
	}
	reg := c.declare(d.Name)
	in := binstr{op: opDeclVar, pos: pos, reg: reg, a: init, name: d.Name, typ: d.Type}
	if !initInstrs {
		in.pre = withPos(pre, pos)
	}
	c.emit(in)
	if initInstrs {
		c.tempFree(1)
	}
}

func (c *bcompiler) compileIf(v *minic.IfStmt, pre []minic.Pos) {
	branch := c.compileCond(v.Cond, withPos(pre, v.NodePos()))
	c.push()
	c.compileStmts(v.Then.Stmts, nil)
	c.pop()
	if v.Else == nil {
		c.code[branch].jmp = c.here()
		return
	}
	end := c.emit(binstr{op: opJump})
	c.code[branch].jmp = c.here()
	c.compileStmt(v.Else, nil)
	c.code[end].jmp = c.here()
}

// compileCond lowers a conditional evaluation followed by the CostBranch
// charge and a branch-if-false with an unpatched target; it returns the
// index of the branching instruction. Fused binary conditions become a
// single compare-and-branch superinstruction.
func (c *bcompiler) compileCond(cond minic.Expr, pre []minic.Pos) int32 {
	if b, ok := cond.(*minic.BinaryExpr); ok && c.policy.Has(FuseCmpBranch) &&
		b.Op != minic.TokAndAnd && b.Op != minic.TokOrOr {
		l, lok := c.fuseOperand(b.L)
		r, rok := c.fuseOperand(b.R)
		if lok && rok {
			return c.emit(binstr{op: opCmpBranch, fuse: FuseCmpBranch, pre: pre, pos: b.NodePos(),
				tok: b.Op, a: l, b: r})
		}
	}
	if o, ok := c.fuseOperand(cond); ok {
		return c.emit(binstr{op: opBranchFalse, pre: pre, a: o})
	}
	t := c.tempAlloc()
	c.compileExprTo(cond, t, pre)
	idx := c.emit(binstr{op: opBranchFalse, a: bopnd{mode: omPlain, ref: t}})
	c.tempFree(1)
	return idx
}

func (c *bcompiler) compileFor(f *minic.ForStmt, pre []minic.Pos) {
	c.push() // the for-init scope, as in execFor
	lc := &bloopCtx{}
	c.loops = append(c.loops, lc)
	c.emit(binstr{op: opLoopEnter, pre: withPos(pre, f.NodePos()), pos: f.NodePos(), lid: f.ID()})
	if f.Init != nil {
		c.compileStmt(f.Init, nil)
	}
	condLbl := c.here()
	branch := int32(-1)
	if f.Cond != nil {
		branch = c.compileCond(f.Cond, nil)
	}
	c.emit(binstr{op: opLoopBack, pos: f.NodePos()})
	c.push()
	c.compileStmts(f.Body.Stmts, nil)
	c.pop()
	postLbl := c.here()
	if f.Post != nil {
		c.compileExprTo(f.Post, -1, nil)
	}
	c.emit(binstr{op: opJump, jmp: condLbl})
	exit := c.here()
	c.emit(binstr{op: opLoopExit})
	if branch >= 0 {
		c.code[branch].jmp = exit
	}
	for _, i := range lc.breaks {
		c.code[i].jmp = exit
	}
	for _, i := range lc.conts {
		c.code[i].jmp = postLbl
	}
	c.loops = c.loops[:len(c.loops)-1]
	c.pop()
}

func (c *bcompiler) compileWhile(w *minic.WhileStmt, pre []minic.Pos) {
	lc := &bloopCtx{}
	c.loops = append(c.loops, lc)
	c.emit(binstr{op: opLoopEnter, pre: withPos(pre, w.NodePos()), pos: w.NodePos(), lid: w.ID()})
	condLbl := c.here()
	branch := c.compileCond(w.Cond, nil)
	c.emit(binstr{op: opLoopBack, pos: w.NodePos()})
	c.push()
	c.compileStmts(w.Body.Stmts, nil)
	c.pop()
	c.emit(binstr{op: opJump, jmp: condLbl})
	exit := c.here()
	c.emit(binstr{op: opLoopExit})
	c.code[branch].jmp = exit
	for _, i := range lc.breaks {
		c.code[i].jmp = exit
	}
	for _, i := range lc.conts {
		c.code[i].jmp = condLbl
	}
	c.loops = c.loops[:len(c.loops)-1]
}

// compileExprTo lowers e so its value lands in register dst (-1 discards
// the value but performs all accounting). pre is charged before e's own
// step, preserving the closure path's statement-then-expression order.
func (c *bcompiler) compileExprTo(e minic.Expr, dst int32, pre []minic.Pos) {
	pos := e.NodePos()
	switch v := e.(type) {
	case *minic.IntLit, *minic.FloatLit, *minic.BoolLit:
		o, _ := c.fuseSimple(e)
		c.emit(binstr{op: opEval, pre: pre, dst: dst, a: o})
	case *minic.StringLit:
		c.emit(binstr{op: opEval, pre: withPos(pre, pos), dst: dst,
			a: bopnd{mode: omNone}}) // only meaningful inside printf-family calls
	case *minic.Ident:
		if o, ok := c.fuseSimple(e); ok {
			c.emit(binstr{op: opEval, pre: pre, dst: dst, a: o})
			return
		}
		c.emit(binstr{op: opErrMsg, pre: withPos(pre, pos), pos: pos,
			name: fmt.Sprintf("undefined variable %q", v.Name)})
	case *minic.UnaryExpr:
		if o, ok := c.fuseOperand(v.X); ok {
			c.emit(binstr{op: opUnary, pre: withPos(pre, pos), dst: dst, tok: v.Op, a: o})
			return
		}
		t := c.tempAlloc()
		c.compileExprTo(v.X, t, withPos(pre, pos))
		c.emit(binstr{op: opUnary, dst: dst, tok: v.Op, a: bopnd{mode: omPlain, ref: t}})
		c.tempFree(1)
	case *minic.BinaryExpr:
		c.compileBinaryTo(v, dst, pre)
	case *minic.AssignExpr:
		c.compileAssignTo(v, dst, pre)
	case *minic.IncDecExpr:
		c.compileIncDecTo(v, dst, pre)
	case *minic.IndexExpr:
		if o, ok := c.fuseOperand(e); ok {
			c.emit(binstr{op: opEval, fuse: FuseIdxOperand, pre: pre, dst: dst, a: o})
			return
		}
		tgt, ntemps := c.materializeTarget(v, withPos(pre, pos))
		c.emit(binstr{op: opLoadIdx, dst: dst, tgt: tgt})
		c.tempFree(ntemps)
	case *minic.CallExpr:
		c.compileCallTo(v, dst, pre)
	case *minic.CastExpr:
		if o, ok := c.fuseOperand(v.X); ok {
			c.emit(binstr{op: opCast, pre: withPos(pre, pos), pos: pos, dst: dst, a: o, typ: v.To})
			return
		}
		t := c.tempAlloc()
		c.compileExprTo(v.X, t, withPos(pre, pos))
		c.emit(binstr{op: opCast, pos: pos, dst: dst, a: bopnd{mode: omPlain, ref: t}, typ: v.To})
		c.tempFree(1)
	default:
		c.emit(binstr{op: opErrMsg, pre: withPos(pre, pos), pos: pos,
			name: fmt.Sprintf("unhandled expression %T", e)})
	}
}

// operandOrTemp fuses e or materializes it into a fresh temp, returning
// the operand and the number of temps to free after the consumer emits.
// pre is charged before e's first instruction only on the temp path; the
// caller attaches it to the consuming instruction on the fused path.
func (c *bcompiler) operandOrTemp(e minic.Expr, pre []minic.Pos) (bopnd, int32, bool) {
	if o, ok := c.fuseOperand(e); ok {
		return o, 0, true
	}
	t := c.tempAlloc()
	c.compileExprTo(e, t, pre)
	return bopnd{mode: omPlain, ref: t}, 1, false
}

func (c *bcompiler) compileBinaryTo(b *minic.BinaryExpr, dst int32, pre []minic.Pos) {
	pos := b.NodePos()
	if b.Op == minic.TokAndAnd || b.Op == minic.TokOrOr {
		// Short-circuit: L evaluates (with the binary's own step first),
		// CostLogic is charged, then R evaluates only when needed.
		l, ltemps, lfused := c.operandOrTemp(b.L, withPos(pre, pos))
		in := binstr{op: opLogicShort, dst: dst, tok: b.Op, a: l}
		if lfused {
			in.pre = withPos(pre, pos)
		}
		short := c.emit(in)
		c.tempFree(ltemps)
		r, rtemps, _ := c.operandOrTemp(b.R, nil)
		c.emit(binstr{op: opBoolOf, dst: dst, a: r})
		c.tempFree(rtemps)
		c.code[short].jmp = c.here()
		return
	}
	// The fused binary: operands resolve exactly as the closure operand()
	// does, with indexed loads additionally flattened. The binary's own
	// step rides in the instruction's pre list.
	var l, r bopnd
	var lok, rok bool
	if c.policy.Has(FuseBinary) {
		l, lok = c.fuseOperand(b.L)
		r, rok = c.fuseOperand(b.R)
	}
	if lok && rok {
		c.emit(binstr{op: opBinary, fuse: FuseBinary, pre: withPos(pre, pos), pos: pos,
			tok: b.Op, dst: dst, a: l, b: r})
		return
	}
	// At least one complex operand: the binary's step precedes the first
	// operand's instructions, and any fused operand *before* a complex one
	// materializes (via opEval, with identical accounting) so the fetch
	// order stays exactly the closure path's.
	carry := withPos(pre, pos)
	var ntemps int32
	t := c.tempAlloc()
	ntemps++
	c.compileExprTo(b.L, t, carry)
	l = bopnd{mode: omPlain, ref: t}
	if !rok {
		t2 := c.tempAlloc()
		ntemps++
		c.compileExprTo(b.R, t2, nil)
		r = bopnd{mode: omPlain, ref: t2}
	}
	in := binstr{op: opBinary, pos: pos, tok: b.Op, dst: dst, a: l, b: r}
	if r.mode != omPlain {
		in.fuse = FuseBinary
	}
	c.emit(in)
	c.tempFree(ntemps)
}

// materializeTarget lowers an index target that cannot fully fuse,
// preserving the base-is-buffer check between base and index evaluation.
// pre is charged before the first emitted instruction. Returns the target
// and the number of temps the caller must free after the consumer emits.
func (c *bcompiler) materializeTarget(ix *minic.IndexExpr, pre []minic.Pos) (*btarget, int32) {
	if tgt, ok := c.fuseTarget(ix); ok {
		if len(pre) > 0 {
			c.emit(binstr{op: opNop, pre: pre})
		}
		return tgt, 0
	}
	pos := ix.NodePos()
	tgt := &btarget{pos: pos}
	var ntemps int32
	idxFusible := false
	if _, ok := c.fuseSimple(ix.Index); ok {
		idxFusible = true
	} else if b, ok := ix.Index.(*minic.BinaryExpr); ok && b.Op != minic.TokAndAnd && b.Op != minic.TokOrOr {
		_, lok := c.fuseSimple(b.L)
		_, rok := c.fuseSimple(b.R)
		idxFusible = lok && rok
	}
	if idxFusible {
		// The index resolves inside the consuming instruction, so only the
		// base needs materializing (fuseTarget already failed, so the base
		// is complex). Base eval → bufOf → index fetch → bounds then run in
		// sequence inside the consumer, exactly the closure resolve order.
		t := c.tempAlloc()
		c.compileExprTo(ix.Base, t, pre)
		tgt.base = bopnd{mode: omPlain, ref: t}
		ntemps++
		if idx, ok := c.fuseSimple(ix.Index); ok {
			tgt.idx = idx
		} else {
			b := ix.Index.(*minic.BinaryExpr)
			tgt.idx, _ = c.fuseSimple(b.L)
			tgt.idxB, _ = c.fuseSimple(b.R)
			tgt.fused = true
			tgt.idxOp, tgt.idxPos = b.Op, b.NodePos()
		}
		return tgt, ntemps
	}
	// Complex index: the closure resolve order is base eval (with its own
	// accounting) → bufOf → index eval → bounds, so the base materializes
	// first — a fusible base lowers to opEval with identical accounting —
	// then the buffer check runs before the index expression evaluates.
	// The consumer's own bufOf re-check is then guaranteed to pass.
	t := c.tempAlloc()
	c.compileExprTo(ix.Base, t, pre)
	tgt.base = bopnd{mode: omPlain, ref: t}
	ntemps++
	c.emit(binstr{op: opCheckBuf, pos: pos, a: bopnd{mode: omPlain, ref: t}})
	ti := c.tempAlloc()
	c.compileExprTo(ix.Index, ti, nil)
	tgt.idx = bopnd{mode: omPlain, ref: ti}
	return tgt, ntemps + 1
}

func (c *bcompiler) compileAssignTo(a *minic.AssignExpr, dst int32, pre []minic.Pos) {
	pos := a.NodePos()
	switch lhs := a.LHS.(type) {
	case *minic.Ident:
		lpos := lhs.NodePos()
		reg, ok := c.lookup(lhs.Name)
		if !ok {
			t := c.tempAlloc()
			c.compileExprTo(a.RHS, t, withPos(pre, pos))
			c.tempFree(1)
			c.emit(binstr{op: opErrMsg, pos: lpos,
				name: fmt.Sprintf("undefined variable %q", lhs.Name)})
			return
		}
		// Superinstruction: x op= simple⊕simple executes the RHS binary,
		// the compound combine, and the store in one dispatch (the FMA
		// pattern `acc += a * b` lands here).
		if b, bok := a.RHS.(*minic.BinaryExpr); bok && c.policy.Has(FuseBinAssign) &&
			b.Op != minic.TokAndAnd && b.Op != minic.TokOrOr {
			l, lok := c.fuseOperand(b.L)
			r, rok := c.fuseOperand(b.R)
			if lok && rok {
				c.emit(binstr{op: opBinAssignVar, fuse: FuseBinAssign, pre: withPos(pre, pos),
					pos: pos, pos2: b.NodePos(), pos3: lpos, tok: a.Op, tok2: b.Op,
					dst: dst, reg: reg, a: l, b: r, name: lhs.Name})
				return
			}
		}
		rhs, ntemps, fused := c.operandOrTemp(a.RHS, withPos(pre, pos))
		in := binstr{op: opAssignVar, pos: pos, pos2: lpos, tok: a.Op, dst: dst,
			reg: reg, a: rhs}
		if fused && rhs.mode == omIdx {
			in.fuse = FuseIdxOperand
		}
		if fused {
			in.pre = withPos(pre, pos)
		}
		c.emit(in)
		c.tempFree(ntemps)
	case *minic.IndexExpr:
		lpos := lhs.NodePos()
		// RHS evaluates before the target resolves, as in compileAssign.
		carry := withPos(pre, pos)
		if c.policy.Has(FuseStoreIdx) {
			if tgt, ok := c.fuseTarget(lhs); ok {
				if rhs, rok := c.fuseOperand(a.RHS); rok {
					c.emit(binstr{op: opStoreIdx, fuse: FuseStoreIdx, pre: carry, pos: pos, pos2: lpos,
						tok: a.Op, dst: dst, a: rhs, tgt: tgt})
					return
				}
				t := c.tempAlloc()
				c.compileExprTo(a.RHS, t, carry)
				c.emit(binstr{op: opStoreIdx, fuse: FuseStoreIdx, pos: pos, pos2: lpos,
					tok: a.Op, dst: dst, a: bopnd{mode: omPlain, ref: t}, tgt: tgt})
				c.tempFree(1)
				return
			}
		}
		// Complex target: the RHS (fusible or not) materializes first so
		// its accounting precedes the target's instructions.
		t := c.tempAlloc()
		c.compileExprTo(a.RHS, t, carry)
		tgt, ttemps := c.materializeTarget(lhs, nil)
		c.emit(binstr{op: opStoreIdx, pos: pos, pos2: lpos, tok: a.Op, dst: dst,
			a: bopnd{mode: omPlain, ref: t}, tgt: tgt})
		c.tempFree(ttemps + 1)
	default:
		t := c.tempAlloc()
		c.compileExprTo(a.RHS, t, withPos(pre, pos))
		c.tempFree(1)
		c.emit(binstr{op: opErrMsg, pos: pos,
			name: fmt.Sprintf("invalid assignment target %T", a.LHS)})
	}
}

func (c *bcompiler) compileIncDecTo(x *minic.IncDecExpr, dst int32, pre []minic.Pos) {
	pos := x.NodePos()
	delta := int32(1)
	if x.Op == minic.TokMinusMinus {
		delta = -1
	}
	switch t := x.X.(type) {
	case *minic.Ident:
		tpos := t.NodePos()
		reg, ok := c.lookup(t.Name)
		if !ok {
			c.emit(binstr{op: opErrMsg, pre: withPos(pre, pos), pos: tpos,
				name: fmt.Sprintf("undefined variable %q", t.Name)})
			return
		}
		c.emit(binstr{op: opIncVar, pre: withPos(pre, pos), pos: tpos, dst: dst, reg: reg, n: delta})
	case *minic.IndexExpr:
		tpos := t.NodePos()
		if c.policy.Has(FuseIncIdx) {
			if tgt, ok := c.fuseTarget(t); ok {
				c.emit(binstr{op: opIncIdx, fuse: FuseIncIdx, pre: withPos(pre, pos), pos: tpos,
					dst: dst, n: delta, tgt: tgt})
				return
			}
		}
		tgt, ntemps := c.materializeTarget(t, withPos(pre, pos))
		c.emit(binstr{op: opIncIdx, pos: tpos, dst: dst, n: delta, tgt: tgt})
		c.tempFree(ntemps)
	default:
		c.emit(binstr{op: opErrMsg, pre: withPos(pre, pos), pos: pos,
			name: fmt.Sprintf("invalid ++/-- target %T", x.X)})
	}
}

func (c *bcompiler) compileCallTo(call *minic.CallExpr, dst int32, pre []minic.Pos) {
	pos := call.NodePos()
	// printf-family builtins capture output without evaluating format
	// strings for cost.
	if call.Fun == "printf" {
		var dataArgs []minic.Expr
		for _, a := range call.Args {
			if _, ok := a.(*minic.StringLit); ok {
				continue // format strings carry no data we need to capture
			}
			dataArgs = append(dataArgs, a)
		}
		base, n := c.compileArgs(dataArgs, withPos(pre, pos))
		in := binstr{op: opPrintf, dst: dst, reg: base, n: n}
		if n == 0 {
			in.pre = withPos(pre, pos)
		}
		c.emit(in)
		c.tempFree(n)
		return
	}
	if bi, ok := builtins[call.Fun]; ok {
		// Fused builtin: up to two simple arguments fetch inside the
		// dispatch (sqrt(r2), fmax(a, b[i]) ...).
		if len(call.Args) <= 2 && c.policy.Has(FuseBuiltin) {
			ops := make([]bopnd, len(call.Args))
			allFused := true
			for i, a := range call.Args {
				o, ok := c.fuseOperand(a)
				if !ok {
					allFused = false
					break
				}
				ops[i] = o
			}
			if allFused {
				in := binstr{op: opBuiltin, fuse: FuseBuiltin, pre: withPos(pre, pos), pos: pos,
					dst: dst, n: int32(len(ops)), bi: bi, name: call.Fun}
				if len(ops) > 0 {
					in.a = ops[0]
				}
				if len(ops) > 1 {
					in.b = ops[1]
				}
				c.emit(in)
				return
			}
		}
		base, n := c.compileArgs(call.Args, withPos(pre, pos))
		in := binstr{op: opBuiltin, pos: pos, dst: dst, reg: base, n: n, bi: bi, name: call.Fun}
		if n == 0 {
			in.pre = withPos(pre, pos)
		}
		c.emit(in)
		c.tempFree(n)
		return
	}
	callee := c.prog.Func(call.Fun)
	if callee == nil {
		// Arguments are not evaluated for undefined functions.
		c.emit(binstr{op: opErrMsg, pre: withPos(pre, pos), pos: pos,
			name: fmt.Sprintf("call to undefined function %q", call.Fun)})
		return
	}
	base, n := c.compileArgs(call.Args, withPos(pre, pos))
	in := binstr{op: opCall, pos: pos, dst: dst, reg: base, n: n, fn: c.funcs[callee.Name]}
	if n == 0 {
		in.pre = withPos(pre, pos)
	}
	c.emit(in)
	c.tempFree(n)
}

// compileArgs materializes call arguments into consecutive temporaries;
// pre is charged before the first argument. The caller frees n temps.
func (c *bcompiler) compileArgs(args []minic.Expr, pre []minic.Pos) (base int32, n int32) {
	n = int32(len(args))
	if n == 0 {
		return 0, 0
	}
	base = c.tempAlloc()
	for i := int32(1); i < n; i++ {
		c.tempAlloc()
	}
	for i, a := range args {
		if i == 0 {
			c.compileExprTo(a, base+int32(i), pre)
		} else {
			c.compileExprTo(a, base+int32(i), nil)
		}
	}
	return base, n
}
