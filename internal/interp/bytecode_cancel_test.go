package interp

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"psaflow/internal/minic"
)

// Cancellation tests for the bytecode VM, mirroring cancel_test.go: the
// dispatch loop folds its context poll into loop back-edges (opLoopBack)
// and function entry, so a cancelled context must surface as a
// CancelError anchored at the loop position, within a bounded number of
// dispatched instructions of the cancellation becoming observable.

// spinLoopPos returns the position of the spin benchmark's for loop —
// the only back-edge, and therefore the only poll site the abort can
// report from inside the loop.
func spinLoopPos(t *testing.T, prog *minic.Program) minic.Pos {
	t.Helper()
	var pos minic.Pos
	minic.Walk(prog, func(n minic.Node) bool {
		if f, ok := n.(*minic.ForStmt); ok && pos.Line == 0 {
			pos = f.NodePos()
		}
		return true
	})
	if pos.Line == 0 {
		t.Fatal("spin source has no for loop")
	}
	return pos
}

// TestBytecodeCancelAtBackEdge cancels mid-run and checks the bytecode
// engine aborts promptly with a CancelError positioned at the loop's
// back-edge.
func TestBytecodeCancelAtBackEdge(t *testing.T) {
	prog := minic.MustParse(spinSrc)
	loopPos := spinLoopPos(t, prog)
	cctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Run(prog, Config{Entry: "spin", Args: []Value{IntVal(1)}, Ctx: cctx})
	elapsed := time.Since(start)
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CancelError, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled cause, got %v", ce.Cause)
	}
	if ce.Pos != loopPos {
		t.Errorf("CancelError at %s, want the loop back-edge at %s", ce.Pos, loopPos)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("cancellation took %v; expected prompt abort", elapsed)
	}
}

// doneCtx passes the Run-entry Err() check exactly once and presents an
// already-closed Done channel, making the first in-dispatch poll the
// earliest possible abort point — deterministically, with no timing.
type doneCtx struct {
	context.Context
	done chan struct{}
	errs atomic.Int32
}

func newDoneCtx() *doneCtx {
	d := &doneCtx{Context: context.Background(), done: make(chan struct{})}
	close(d.done)
	return d
}

func (d *doneCtx) Done() <-chan struct{} { return d.done }

func (d *doneCtx) Err() error {
	if d.errs.Add(1) == 1 {
		return nil // let Run's entry check pass; the poll must catch it
	}
	return context.Canceled
}

// TestBytecodeCancelWithinBoundedInstructions proves the back-edge poll
// bounds the overrun: with cancellation observable from the first
// dispatched instruction, the VM must abort within cancelCheckInterval
// back-edges. The step budget is sized so that failing to poll in that
// window would surface as a step-budget error instead of a CancelError.
func TestBytecodeCancelWithinBoundedInstructions(t *testing.T) {
	prog := minic.MustParse(spinSrc)
	loopPos := spinLoopPos(t, prog)
	// The spin loop costs a handful of interpreter steps per iteration;
	// 64 per back-edge is far beyond any lowering of it.
	budget := int64(cancelCheckInterval * 64)
	_, err := Run(prog, Config{Entry: "spin", Args: []Value{IntVal(1)}, Ctx: newDoneCtx(), MaxSteps: budget})
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("VM ran past %d steps without observing cancellation: %v", budget, err)
	}
	if ce.Pos != loopPos {
		t.Errorf("CancelError at %s, want the loop back-edge at %s", ce.Pos, loopPos)
	}
}
