package interp_test

// Three-way differential suite for the register bytecode VM: the default
// engine must be bit-for-bit equivalent to BOTH reference oracles — the
// slot-indexed closure engine and the tree-walking evaluator — across the
// bundled benchmark corpus, error paths, and fuzzed programs. CI's
// bench-smoke gate runs this file under -race (scripts/ci.sh) and also
// checks the VM never takes its defensive closure fallback on the corpus.

import (
	"fmt"
	"reflect"
	"testing"

	"psaflow/internal/bench"
	"psaflow/internal/interp"
	"psaflow/internal/minic"
)

// engines enumerates the three execution paths by the Config flags that
// select them; the zero value is the default bytecode VM.
var engines = []struct {
	name string
	cfg  func(interp.Config) interp.Config
}{
	{"bytecode", func(c interp.Config) interp.Config { return c }},
	{"closures", func(c interp.Config) interp.Config { c.Closures = true; return c }},
	{"treewalk", func(c interp.Config) interp.Config { c.TreeWalk = true; return c }},
}

// mapCounters is a minimal interp.Counters sink for single-goroutine tests.
type mapCounters map[string]int64

func (m mapCounters) Add(name string, delta int64) { m[name] += delta }

// TestThreeWayEquivalenceBenchmarks pushes all five benchmark
// applications through every engine and asserts the entire observable
// surface — profile, output, steps, final buffer contents — matches the
// bytecode run.
func TestThreeWayEquivalenceBenchmarks(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog := b.Parse()
			type run struct {
				res  *interp.Result
				bufs []*interp.Buffer
			}
			runs := make(map[string]run, len(engines))
			for _, e := range engines {
				args := b.MakeArgs()
				res, err := interp.Run(prog, e.cfg(interp.Config{Entry: b.Entry, Args: args}))
				if err != nil {
					t.Fatalf("%s run: %v", e.name, err)
				}
				runs[e.name] = run{res: res, bufs: bufferArgs(args)}
			}
			ref := runs["bytecode"]
			for _, e := range engines[1:] {
				got := runs[e.name]
				assertResultsEqual(t, b.Name+"/"+e.name, ref.res, got.res)
				for i := range ref.bufs {
					if !reflect.DeepEqual(ref.bufs[i].I, got.bufs[i].I) ||
						!reflect.DeepEqual(ref.bufs[i].F, got.bufs[i].F) {
						t.Errorf("%s: buffer %s contents differ bytecode vs %s",
							b.Name, ref.bufs[i].Name, e.name)
					}
				}
			}
		})
	}
}

// TestThreeWayEquivalenceErrors asserts all three engines fail with
// byte-identical error messages, positions included, on the failure modes
// a flow can hit mid-DSE: runtime faults, unresolved names, bounds
// violations, and the step budget.
func TestThreeWayEquivalenceErrors(t *testing.T) {
	mkBuf := func() []interp.Value {
		return []interp.Value{interp.BufVal(interp.NewFloatBuffer("a", minic.Double, make([]float64, 3)))}
	}
	none := func() []interp.Value { return nil }
	cases := []struct {
		name string
		src  string
		args func() []interp.Value
		max  int64
	}{
		{"div-zero", `int f() { return 1 / 0; }`, none, 0},
		{"oob", `void f(double *a) { a[7] = 1.0; }`, mkBuf, 0},
		{"undef-fn", `int f() { return g(); }`, none, 0},
		{"step-budget", `void f() { while (true) { } }`, none, 5000},
		{"step-budget-deep", `
int leaf(int x) { return x + 1; }
int f() { int s = 0; for (int i = 0; i < 1000000; i++) { s = leaf(s); } return s; }`, none, 5000},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			prog := minic.MustParse(c.src)
			errs := make(map[string]error, len(engines))
			for _, e := range engines {
				_, err := interp.Run(prog, e.cfg(interp.Config{Entry: "f", Args: c.args(), MaxSteps: c.max}))
				if err == nil {
					t.Fatalf("%s: expected an error", e.name)
				}
				errs[e.name] = err
			}
			for _, e := range engines[1:] {
				if errs["bytecode"].Error() != errs[e.name].Error() {
					t.Errorf("error messages differ:\nbytecode: %v\n%s: %v",
						errs["bytecode"], e.name, errs[e.name])
				}
			}
		})
	}
}

// TestBytecodeNoFallbackOnBenchmarks is the no-regression gate for the
// lowering: every bundled benchmark must execute on the bytecode VM
// proper — instructions dispatched, zero defensive fallbacks to the
// closure engine. scripts/ci.sh fails the build when this trips.
func TestBytecodeNoFallbackOnBenchmarks(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			ctrs := mapCounters{}
			if _, err := interp.Run(b.Parse(), interp.Config{
				Entry: b.Entry, Args: b.MakeArgs(), Counters: ctrs,
			}); err != nil {
				t.Fatal(err)
			}
			if n := ctrs[interp.CounterBCFallbacks]; n != 0 {
				t.Errorf("%s fell back to the closure engine (%s=%d)",
					b.Name, interp.CounterBCFallbacks, n)
			}
			if ctrs[interp.CounterBCInstrs] == 0 {
				t.Errorf("%s dispatched no bytecode instructions (%s=0)",
					b.Name, interp.CounterBCInstrs)
			}
		})
	}
}

// fuzzArgs synthesizes deterministic arguments for fn: small buffers for
// pointer parameters, a matching small length for scalars. Returns false
// for signatures the corpus never uses (e.g. bool pointers).
func fuzzArgs(fn *minic.FuncDecl) ([]interp.Value, bool) {
	const n = 4
	args := make([]interp.Value, 0, len(fn.Params))
	for i, p := range fn.Params {
		switch {
		case p.Type.Ptr && p.Type.IsFloating():
			data := make([]float64, n)
			for j := range data {
				data[j] = float64(j+1) * 0.5
			}
			args = append(args, interp.BufVal(interp.NewFloatBuffer(fmt.Sprintf("b%d", i), p.Type.Kind, data)))
		case p.Type.Ptr && p.Type.Kind == minic.Int:
			args = append(args, interp.BufVal(interp.NewIntBuffer(fmt.Sprintf("b%d", i), []int64{3, 1, 4, 1})))
		case p.Type.Kind == minic.Int:
			args = append(args, interp.IntVal(n))
		case p.Type.Kind == minic.Float:
			args = append(args, interp.FloatVal(1.5))
		case p.Type.Kind == minic.Double:
			args = append(args, interp.DoubleVal(2.5))
		case p.Type.Kind == minic.Bool:
			args = append(args, interp.BoolVal(true))
		default:
			return nil, false
		}
	}
	return args, true
}

// FuzzBytecodeDiff is the lowering's differential fuzzer: any program the
// front end accepts must behave identically on the bytecode VM and the
// tree-walking reference — same result surface on success, byte-identical
// error otherwise, and never a panic or a closure fallback. Seeded with
// the benchmark corpus like minic's FuzzParse.
func FuzzBytecodeDiff(f *testing.F) {
	for _, b := range bench.All() {
		f.Add(b.Source)
	}
	f.Add("int f() { return 0; }")
	f.Add("int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i % 3; } return s; }")
	f.Add("double f(int n, const double *a, double *b) { double s = 0.0; for (int i = 0; i < n; i++) { b[i] = sqrt(a[i]); s += b[i]; } return s; }")
	f.Add("int f(int n) { if (n > 2) { return n * n; } return -n; }")
	f.Add("int f() { return 1 / 0; }")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := minic.Parse(src)
		if err != nil {
			return
		}
		for _, fn := range prog.Funcs {
			if fn.Body == nil {
				continue
			}
			bcArgs, ok := fuzzArgs(fn)
			if !ok {
				continue
			}
			twArgs, _ := fuzzArgs(fn)
			// Tight budget: fuzzed loops may spin; equivalence must hold
			// for the budget error too.
			const budget = 50_000
			ctrs := mapCounters{}
			bcRes, bcErr := interp.Run(prog, interp.Config{
				Entry: fn.Name, Args: bcArgs, MaxSteps: budget, Counters: ctrs,
			})
			twRes, twErr := interp.Run(prog, interp.Config{
				Entry: fn.Name, Args: twArgs, MaxSteps: budget, TreeWalk: true,
			})
			if ctrs[interp.CounterBCFallbacks] != 0 {
				t.Errorf("%s: lowering fell back to closures", fn.Name)
			}
			switch {
			case (bcErr == nil) != (twErr == nil):
				t.Fatalf("%s: error presence differs: bytecode=%v treewalk=%v", fn.Name, bcErr, twErr)
			case bcErr != nil:
				if bcErr.Error() != twErr.Error() {
					t.Fatalf("%s: errors differ:\nbytecode: %v\ntreewalk: %v", fn.Name, bcErr, twErr)
				}
			default:
				assertResultsEqual(t, fn.Name, bcRes, twRes)
				bcBufs, twBufs := bufferArgs(bcArgs), bufferArgs(twArgs)
				for i := range bcBufs {
					if !reflect.DeepEqual(bcBufs[i].I, twBufs[i].I) ||
						!reflect.DeepEqual(bcBufs[i].F, twBufs[i].F) {
						t.Errorf("%s: buffer %d contents diverge", fn.Name, i)
					}
				}
			}
		}
	})
}
