package interp

import (
	"math"
	"sync"

	"psaflow/internal/minic"
)

// The bytecode dispatch loop. One flat for/switch executes a lowered
// function (bytecode.go); all value, cost, and error semantics mirror the
// shared helpers in apply.go / eval.go so the engine stays bit-for-bit
// equivalent to the tree-walker and the closure path.
//
// Two things make this loop fast without breaking equivalence:
//
//  1. Batched step accounting. Every instruction carries its static step
//     count (nsteps, computed by finalize), so the hot loop pays a single
//     add+compare for a whole superinstruction instead of one check per
//     fine-grained step. When the batch detects that the budget is crossed
//     inside the instruction, it rolls the batch back and execPrecise
//     replays the instruction with per-step checks, reproducing the exact
//     error the closure path reports. Between the checks of one
//     instruction there is no observation point — loop attribution, watch
//     transitions, and Run's final snapshot all happen at instruction or
//     call boundaries, and Run discards the profile on error — so batching
//     is unobservable.
//
//  2. Inlined hot paths. Register/constant operand fetches and the common
//     arithmetic kinds (int/float compare, add, sub, mul, and the float
//     `+=` accumulate) execute inline in the dispatch switch; indexed
//     operands, rare operators, and mixed-kind arithmetic fall back to the
//     shared helpers before any state is touched.

// bactive is one running loop's profile attribution state.
type bactive struct {
	lp    *LoopProfile
	start float64
}

// bframe is one bytecode function activation.
type bframe struct {
	regs  []Value
	ret   Value
	loops []bactive
}

// callBytecode invokes a lowered function, mirroring callCompiled. The
// escaped-break/continue check has no runtime counterpart here: the
// lowering already rewrote escaped control flow into opErrMsg.
func (m *machine) callBytecode(bf *bfunc, args []Value, pos minic.Pos) (Value, error) {
	fn := bf.decl
	if len(args) != len(fn.Params) {
		return Value{}, m.errf(pos, "call %s: %d args, want %d", fn.Name, len(args), len(fn.Params))
	}
	m.charge(CostCall)
	// Cancellation polling is folded into back-edges (opLoopBack) and
	// function entry; the fine-grained statement steps do not poll.
	if m.done != nil {
		m.cancelTick++
		if m.cancelTick%cancelCheckInterval == 0 {
			select {
			case <-m.done:
				return Value{}, &CancelError{Pos: pos, Cause: m.ctx.Err()}
			default:
			}
		}
	}
	fr := m.newFrame(bf.nregs)
	for i, p := range fn.Params {
		coerced, err := m.coerce(args[i], p.Type, pos)
		if err != nil {
			m.freeFrame(fr)
			return Value{}, m.errf(pos, "call %s param %s: %v", fn.Name, p.Name, err)
		}
		fr.regs[i] = coerced // params occupy the first registers in order
	}

	watching := fn.Name == m.watch
	var prevParamOf map[*Buffer]string
	if watching {
		prevParamOf = m.enterWatch(fn.Params, args)
	}

	err := m.execBytecode(bf, fr)
	if watching {
		m.exitWatch(prevParamOf)
	}
	ret := fr.ret
	m.freeFrame(fr)
	if err != nil {
		return Value{}, err
	}
	return ret, nil
}

// frameArena recycles bytecode frames across machines (every Run builds a
// fresh machine, so a per-machine pool re-pays the frame and register
// allocations on each run — DSE sweeps and batched jobs do thousands).
// Pooled register contents need no zeroing: the lowering only emits
// register reads for resolved, already-declared variables and for
// temporaries the same expression wrote, so no program — including
// fuzzer-generated ones — can observe a stale register. The return slot
// is reset because void calls never write it.
var frameArena = sync.Pool{New: func() any { return new(bframe) }}

func (m *machine) newFrame(nregs int) *bframe {
	fr := frameArena.Get().(*bframe)
	if cap(fr.regs) >= nregs {
		fr.regs = fr.regs[:nregs]
	} else {
		fr.regs = make([]Value, nregs)
	}
	fr.ret = Value{}
	return fr
}

func (m *machine) freeFrame(fr *bframe) {
	frameArena.Put(fr)
}

// execBytecode runs the dispatch loop and then attributes any still-open
// loop timers — a return halts mid-loop, and errors unwind. No cycles are
// charged between the halt and the attribution, so the totals equal the
// closure path's deferred per-loop attributions exactly.
func (m *machine) execBytecode(bf *bfunc, fr *bframe) error {
	err := m.dispatch(bf, fr)
	for i := len(fr.loops) - 1; i >= 0; i-- {
		al := &fr.loops[i]
		al.lp.Cycles += m.prof.Cycles - al.start
	}
	fr.loops = fr.loops[:0]
	return err
}

// cmpFloat evaluates one of the six comparison operators on float64
// operands, exactly as applyBinary's comparison arm does.
func cmpFloat(op minic.TokKind, lf, rf float64) bool {
	switch op {
	case minic.TokLt:
		return lf < rf
	case minic.TokGt:
		return lf > rf
	case minic.TokLe:
		return lf <= rf
	case minic.TokGe:
		return lf >= rf
	case minic.TokEqEq:
		return lf == rf
	}
	return lf != rf // TokNe
}

func (m *machine) dispatch(bf *bfunc, fr *bframe) error {
	code := bf.code
	regs := fr.regs
	pc := 0
	// Hot-path accounting lives in dispatch locals (registers) and is
	// folded back into the machine by dflush. The pending amounts are
	// pure sums, so their ordering against charges issued by out-of-line
	// helpers is immaterial; correctness only requires a fold at the
	// points that READ the run totals mid-run: loop enter/exit snapshots
	// (cycles), nested calls (steps), and the success-path returns.
	// Error returns skip the fold entirely — Run discards the profile,
	// counters, and result when the run errors.
	steps := m.steps
	var cyc float64
	var flops, intops, nInstr, nFused int64
	// Per-pattern dispatch counts feed superinstruction mining; the local
	// array keeps the tracing-off fast path to a single flag test.
	tr := m.trace != nil
	var fhits [NumFusePats]int64
	var qhits int64
	for pc < len(code) {
		in := &code[pc]
		pc++
		nInstr++
		if in.fuse != 0 {
			nFused++
			if tr {
				fhits[in.fuse]++
			}
		}
		// Batched budget check for every fine-grained step this instruction
		// performs; a crossing inside the instruction replays precisely.
		if in.nsteps > 0 {
			steps += int64(in.nsteps)
			if steps > m.maxSteps {
				m.steps = steps - int64(in.nsteps)
				if in.op >= opQFirst {
					// execPrecise replays generic opcodes only; the precise
					// path reproduces the budget error exactly either way.
					in.op = in.gop
					in.hot = 0
					in.q = nil
				}
				return m.execPrecise(fr, in)
			}
		}
		switch in.op {
		case opNop:
			// steps already charged

		case opEval:
			var v Value
			switch in.a.mode {
			case omPlain:
				v = regs[in.a.ref]
			case omVar:
				cyc += CostLocal
				v = regs[in.a.ref]
			case omConst:
				v = in.a.val
			default:
				var err error
				if v, err = m.operandNB(fr, &in.a); err != nil {
					return err
				}
			}
			if in.dst >= 0 {
				regs[in.dst] = v
			}

		case opUnary:
			var v Value
			switch in.a.mode {
			case omPlain:
				v = regs[in.a.ref]
			case omVar:
				cyc += CostLocal
				v = regs[in.a.ref]
			case omConst:
				v = in.a.val
			default:
				var err error
				if v, err = m.operandNB(fr, &in.a); err != nil {
					return err
				}
			}
			// applyUnary inlined
			var r Value
			switch {
			case in.tok == minic.TokNot:
				cyc += CostLogic
				r = BoolVal(!v.AsBool())
			case v.K == KInt:
				cyc += CostAddSub
				r = IntVal(-v.I)
			case v.K == KFloat:
				cyc += CostAddSub
				flops++
				r = FloatVal(-v.F)
			default:
				cyc += CostAddSub
				flops++
				r = DoubleVal(-v.AsFloat())
			}
			if in.dst >= 0 {
				regs[in.dst] = r
			}

		case opBinary, opCmpBranch, opBinAssignVar, opBinDeclVar:
			// The superinstruction family: fetch two fused operands,
			// combine, then consume (store to a register, compare-and-
			// branch, compound-assign, or declare-with-initializer).
			if in.hot++; in.hot == m.quickenAt && m.quickenAt > 0 {
				if m.quicken(in, fr) {
					goto redo // re-dispatch under the quickened opcode
				}
			}
			tok := in.tok
			bpos := in.pos
			if in.op == opBinAssignVar || in.op == opBinDeclVar {
				tok, bpos = in.tok2, in.pos2
			}
			var lv, rv Value
			switch in.a.mode {
			case omPlain:
				lv = regs[in.a.ref]
			case omVar:
				cyc += CostLocal
				lv = regs[in.a.ref]
			case omConst:
				lv = in.a.val
			default:
				var err error
				if lv, err = m.operandNB(fr, &in.a); err != nil {
					return err
				}
			}
			switch in.b.mode {
			case omPlain:
				rv = regs[in.b.ref]
			case omVar:
				cyc += CostLocal
				rv = regs[in.b.ref]
			case omConst:
				rv = in.b.val
			default:
				var err error
				if rv, err = m.operandNB(fr, &in.b); err != nil {
					return err
				}
			}
			// Hot arithmetic inlined (identical charges, counts, and
			// rounding); every other kind/op combination falls back to
			// applyBinary before any state is touched.
			var v Value
			if lv.K == KInt && rv.K == KInt {
				switch tok {
				case minic.TokLt, minic.TokGt, minic.TokLe, minic.TokGe, minic.TokEqEq, minic.TokNe:
					cyc += CostCmp
					v = BoolVal(cmpFloat(tok, float64(lv.I), float64(rv.I)))
				case minic.TokPlus:
					intops++
					cyc += CostAddSub
					v = IntVal(lv.I + rv.I)
				case minic.TokMinus:
					intops++
					cyc += CostAddSub
					v = IntVal(lv.I - rv.I)
				case minic.TokStar:
					intops++
					cyc += CostMul
					v = IntVal(lv.I * rv.I)
				case minic.TokSlash:
					// IntOps ordering vs the zero error is unobservable:
					// errors discard the profile.
					if rv.I == 0 {
						return m.errf(bpos, "integer division by zero")
					}
					intops++
					cyc += CostDivInt
					v = IntVal(lv.I / rv.I)
				case minic.TokPercent:
					if rv.I == 0 {
						return m.errf(bpos, "modulo by zero")
					}
					intops++
					cyc += CostDivInt
					v = IntVal(lv.I % rv.I)
				default:
					var err error
					if v, err = m.applyBinary(tok, lv, rv, bpos); err != nil {
						return err
					}
				}
			} else if (lv.K == KFloat || lv.K == KDouble) && (rv.K == KFloat || rv.K == KDouble) {
				switch tok {
				case minic.TokLt, minic.TokGt, minic.TokLe, minic.TokGe, minic.TokEqEq, minic.TokNe:
					cyc += CostCmp
					v = BoolVal(cmpFloat(tok, lv.F, rv.F))
				case minic.TokPlus:
					cyc += CostAddSub
					flops++
					if lv.K == KFloat && rv.K == KFloat {
						v = FloatVal(lv.F + rv.F)
					} else {
						v = DoubleVal(lv.F + rv.F)
					}
				case minic.TokMinus:
					cyc += CostAddSub
					flops++
					if lv.K == KFloat && rv.K == KFloat {
						v = FloatVal(lv.F - rv.F)
					} else {
						v = DoubleVal(lv.F - rv.F)
					}
				case minic.TokStar:
					cyc += CostMul
					flops++
					if lv.K == KFloat && rv.K == KFloat {
						v = FloatVal(lv.F * rv.F)
					} else {
						v = DoubleVal(lv.F * rv.F)
					}
				case minic.TokSlash:
					if rv.F == 0 {
						return m.errf(bpos, "floating division by zero")
					}
					cyc += CostDivF
					flops++
					if lv.K == KFloat && rv.K == KFloat {
						v = FloatVal(lv.F / rv.F)
					} else {
						v = DoubleVal(lv.F / rv.F)
					}
				default:
					var err error
					if v, err = m.applyBinary(tok, lv, rv, bpos); err != nil {
						return err
					}
				}
			} else {
				var err error
				if v, err = m.applyBinary(tok, lv, rv, bpos); err != nil {
					return err
				}
			}
			switch in.op {
			case opBinary:
				if in.dst >= 0 {
					regs[in.dst] = v
				}
			case opCmpBranch:
				cyc += CostBranch
				if !v.AsBool() {
					pc = int(in.jmp)
				}
			case opBinDeclVar:
				// coerce inlined for the scalar kinds (which cannot fail);
				// pointer and rare kinds fall back
				var coerced Value
				if !in.typ.Ptr {
					switch in.typ.Kind {
					case minic.Float:
						coerced = FloatVal(v.AsFloat())
					case minic.Double:
						coerced = DoubleVal(v.AsFloat())
					case minic.Int:
						coerced = IntVal(v.AsInt())
					case minic.Bool:
						coerced = BoolVal(v.AsBool())
					default:
						var err error
						if coerced, err = m.coerce(v, in.typ, in.pos); err != nil {
							return m.errf(in.pos, "declare %s: %v", in.name, err)
						}
					}
				} else {
					var err error
					if coerced, err = m.coerce(v, in.typ, in.pos); err != nil {
						return m.errf(in.pos, "declare %s: %v", in.name, err)
					}
				}
				cyc += CostLocal
				regs[in.reg] = coerced
			default: // opBinAssignVar
				cell := &regs[in.reg]
				if in.tok == minic.TokAssign {
					// storeScalarCell, inlined for the scalar kinds
					switch cell.K {
					case KInt:
						*cell = IntVal(v.AsInt())
					case KFloat:
						*cell = FloatVal(v.AsFloat())
					case KDouble:
						*cell = DoubleVal(v.AsFloat())
					case KBool:
						*cell = BoolVal(v.AsBool())
					default:
						return m.errf(in.pos3, "cannot assign to %s", cell.K)
					}
					cyc += CostLocal
				} else if in.tok == minic.TokPlusEq && (cell.K == KFloat || cell.K == KDouble) && (v.K == KFloat || v.K == KDouble) {
					// The FMA accumulate `acc += a*b`: applyCompound(+=) on
					// float kinds plus the store, inlined. The cell's kind
					// wins at store time, so the promoted intermediate
					// rounds identically.
					cyc += CostLocal // compound old-value read
					res := cell.F + v.F
					cyc += CostAddSub
					flops++
					if cell.K == KFloat {
						*cell = FloatVal(res)
					} else {
						*cell = DoubleVal(res)
					}
					cyc += CostLocal // store
				} else if in.tok == minic.TokPlusEq && cell.K == KInt && v.K == KInt {
					cyc += CostLocal
					// applyCompound combines through float64, as the shared
					// helper does.
					res := int64(float64(cell.I) + float64(v.I))
					cyc += CostAddSub
					intops++
					*cell = IntVal(res)
					cyc += CostLocal
				} else {
					cyc += CostLocal
					old := *cell
					nv, err := m.applyCompound(in.tok, old, v, in.pos)
					if err != nil {
						return err
					}
					if _, err := m.storeScalarCell(cell, nv, in.pos3); err != nil {
						return err
					}
				}
				if in.dst >= 0 {
					regs[in.dst] = *cell
				}
			}

		case opLogicShort:
			v, err := m.operandNB(fr, &in.a)
			if err != nil {
				return err
			}
			cyc += CostLogic
			if in.tok == minic.TokAndAnd {
				if !v.AsBool() {
					if in.dst >= 0 {
						regs[in.dst] = BoolVal(false)
					}
					pc = int(in.jmp)
				}
			} else if v.AsBool() {
				if in.dst >= 0 {
					regs[in.dst] = BoolVal(true)
				}
				pc = int(in.jmp)
			}

		case opBoolOf:
			v, err := m.operandNB(fr, &in.a)
			if err != nil {
				return err
			}
			if in.dst >= 0 {
				regs[in.dst] = BoolVal(v.AsBool())
			}

		case opCast:
			v, err := m.operandNB(fr, &in.a)
			if err != nil {
				return err
			}
			cyc += CostCast
			// coerce inlined for the scalar kinds (which cannot fail)
			var cv Value
			if !in.typ.Ptr {
				switch in.typ.Kind {
				case minic.Float:
					cv = FloatVal(v.AsFloat())
				case minic.Double:
					cv = DoubleVal(v.AsFloat())
				case minic.Int:
					cv = IntVal(v.AsInt())
				case minic.Bool:
					cv = BoolVal(v.AsBool())
				default:
					if cv, err = m.coerce(v, in.typ, in.pos); err != nil {
						return err // plain coerce error, as in the closure path
					}
				}
			} else {
				if cv, err = m.coerce(v, in.typ, in.pos); err != nil {
					return err
				}
			}
			if in.dst >= 0 {
				regs[in.dst] = cv
			}

		case opDeclVar:
			if in.hot++; in.hot == m.quickenAt && m.quickenAt > 0 {
				if m.quicken(in, fr) {
					goto redo // re-dispatch under the quickened opcode
				}
			}
			init, err := m.operandNB(fr, &in.a) // omNone yields the zero Value
			if err != nil {
				return err
			}
			// coerce inlined for the scalar kinds (which cannot fail)
			var coerced Value
			if !in.typ.Ptr {
				switch in.typ.Kind {
				case minic.Float:
					coerced = FloatVal(init.AsFloat())
				case minic.Double:
					coerced = DoubleVal(init.AsFloat())
				case minic.Int:
					coerced = IntVal(init.AsInt())
				case minic.Bool:
					coerced = BoolVal(init.AsBool())
				default:
					if coerced, err = m.coerce(init, in.typ, in.pos); err != nil {
						return m.errf(in.pos, "declare %s: %v", in.name, err)
					}
				}
			} else {
				if coerced, err = m.coerce(init, in.typ, in.pos); err != nil {
					return m.errf(in.pos, "declare %s: %v", in.name, err)
				}
			}
			cyc += CostLocal
			regs[in.reg] = coerced

		case opDeclArr:
			nv, err := m.operandNB(fr, &in.a)
			if err != nil {
				return err
			}
			buf, err := m.makeArray(in.name, in.typ.Kind, nv.AsInt(), in.pos)
			if err != nil {
				return err
			}
			regs[in.reg] = BufVal(buf)

		case opAssignVar:
			var rhs Value
			switch in.a.mode {
			case omPlain:
				rhs = regs[in.a.ref]
			case omVar:
				cyc += CostLocal
				rhs = regs[in.a.ref]
			case omConst:
				rhs = in.a.val
			default:
				var err error
				if rhs, err = m.operandNB(fr, &in.a); err != nil {
					return err
				}
			}
			cell := &regs[in.reg]
			if in.tok == minic.TokAssign {
				// storeScalarCell, inlined for the scalar kinds
				switch cell.K {
				case KInt:
					*cell = IntVal(rhs.AsInt())
				case KFloat:
					*cell = FloatVal(rhs.AsFloat())
				case KDouble:
					*cell = DoubleVal(rhs.AsFloat())
				case KBool:
					*cell = BoolVal(rhs.AsBool())
				default:
					return m.errf(in.pos2, "cannot assign to %s", cell.K)
				}
				cyc += CostLocal
			} else {
				cyc += CostLocal
				old := *cell
				nv, err := m.applyCompound(in.tok, old, rhs, in.pos)
				if err != nil {
					return err
				}
				if _, err := m.storeScalarCell(cell, nv, in.pos2); err != nil {
					return err
				}
			}
			if in.dst >= 0 {
				regs[in.dst] = *cell
			}

		case opStoreIdx:
			if in.hot++; in.hot == m.quickenAt && m.quickenAt > 0 {
				if m.quicken(in, fr) {
					goto redo // re-dispatch under the quickened opcode
				}
			}
			var rhs Value
			switch in.a.mode {
			case omPlain:
				rhs = regs[in.a.ref]
			case omVar:
				cyc += CostLocal
				rhs = regs[in.a.ref]
			case omConst:
				rhs = in.a.val
			default:
				var err error
				if rhs, err = m.operandNB(fr, &in.a); err != nil {
					return err
				}
			}
			buf, i, err := m.resolveTgtNB(fr, in.tgt)
			if err != nil {
				return err
			}
			nv := rhs
			if in.tok != minic.TokAssign {
				old, err := m.loadElem(buf, i, in.pos2)
				if err != nil {
					return err
				}
				if nv, err = m.applyCompound(in.tok, old, rhs, in.pos); err != nil {
					return err
				}
			}
			if err := m.storeElem(buf, i, nv, in.pos2); err != nil {
				return err
			}
			if in.dst >= 0 {
				regs[in.dst] = nv
			}

		case opIncVar:
			cell := &regs[in.reg]
			if cell.K == KInt {
				// incDecCell's int arm inlined
				cyc += CostAddSub
				intops++
				old := *cell
				*cell = IntVal(cell.I + int64(in.n))
				if in.dst >= 0 {
					regs[in.dst] = old
				}
			} else {
				old, err := m.incDecCell(cell, int64(in.n), in.pos)
				if err != nil {
					return err
				}
				if in.dst >= 0 {
					regs[in.dst] = old
				}
			}

		case opIncIdx:
			buf, i, err := m.resolveTgtNB(fr, in.tgt)
			if err != nil {
				return err
			}
			old, err := m.loadElem(buf, i, in.pos)
			if err != nil {
				return err
			}
			nv := m.incDecElemValue(old, int64(in.n))
			if err := m.storeElem(buf, i, nv, in.pos); err != nil {
				return err
			}
			if in.dst >= 0 {
				regs[in.dst] = old // postfix semantics
			}

		case opLoadIdx:
			if in.hot++; in.hot == m.quickenAt && m.quickenAt > 0 {
				if m.quicken(in, fr) {
					goto redo // re-dispatch under the quickened opcode
				}
			}
			buf, i, err := m.resolveTgtNB(fr, in.tgt)
			if err != nil {
				return err
			}
			v, err := m.loadElem(buf, i, in.tgt.pos)
			if err != nil {
				return err
			}
			if in.dst >= 0 {
				regs[in.dst] = v
			}

		case opCheckBuf:
			if _, err := m.bufOf(regs[in.a.ref], in.pos); err != nil { // operand is always omPlain
				return err
			}

		case opBranchFalse:
			var v Value
			switch in.a.mode {
			case omPlain:
				v = regs[in.a.ref]
			case omVar:
				cyc += CostLocal
				v = regs[in.a.ref]
			case omConst:
				v = in.a.val
			default:
				var err error
				if v, err = m.operandNB(fr, &in.a); err != nil {
					return err
				}
			}
			cyc += CostBranch
			if !v.AsBool() {
				pc = int(in.jmp)
			}

		case opJump:
			pc = int(in.jmp)

		case opLoopEnter:
			m.prof.Cycles += cyc // snapshot reads the run total
			cyc = 0
			lp := m.loopProfile(in.lid, in.pos)
			lp.Entries++
			fr.loops = append(fr.loops, bactive{lp: lp, start: m.prof.Cycles})

		case opLoopBack:
			// The per-iteration step is batch-counted above; cancellation
			// polls here, on the back-edge, instead of on every statement.
			if m.done != nil {
				m.cancelTick++
				if m.cancelTick%cancelCheckInterval == 0 {
					select {
					case <-m.done:
						return &CancelError{Pos: in.pos, Cause: m.ctx.Err()}
					default:
					}
				}
			}
			fr.loops[len(fr.loops)-1].lp.Trips++

		case opLoopExit:
			m.prof.Cycles += cyc // attribution reads the run total
			cyc = 0
			n := len(fr.loops) - 1
			al := fr.loops[n]
			fr.loops = fr.loops[:n]
			al.lp.Cycles += m.prof.Cycles - al.start

		case opCall:
			m.steps = steps // the callee batches against the run total
			v, err := m.callBytecode(in.fn, regs[in.reg:in.reg+in.n], in.pos)
			steps = m.steps
			if err != nil {
				return err
			}
			if in.dst >= 0 {
				regs[in.dst] = v
			}

		case opBuiltin:
			if in.hot++; in.hot == m.quickenAt && m.quickenAt > 0 {
				if m.quicken(in, fr) {
					goto redo // re-dispatch under the quickened opcode
				}
			}
			var args []Value
			if in.fuse != 0 {
				nargs := int(in.n)
				if nargs > 0 {
					switch in.a.mode {
					case omPlain:
						m.biArgs[0] = regs[in.a.ref]
					case omVar:
						cyc += CostLocal
						m.biArgs[0] = regs[in.a.ref]
					case omConst:
						m.biArgs[0] = in.a.val
					default:
						v, err := m.operandNB(fr, &in.a)
						if err != nil {
							return err
						}
						m.biArgs[0] = v
					}
				}
				if nargs > 1 {
					switch in.b.mode {
					case omPlain:
						m.biArgs[1] = regs[in.b.ref]
					case omVar:
						cyc += CostLocal
						m.biArgs[1] = regs[in.b.ref]
					case omConst:
						m.biArgs[1] = in.b.val
					default:
						v, err := m.operandNB(fr, &in.b)
						if err != nil {
							return err
						}
						m.biArgs[1] = v
					}
				}
				args = m.biArgs[:nargs]
			} else {
				args = regs[in.reg : in.reg+in.n]
			}
			// callBuiltin inlined (arity errors keep its exact message)
			if len(args) != in.bi.arity {
				return m.errf(in.pos, "%s: %d args, want %d", in.name, len(args), in.bi.arity)
			}
			cyc += in.bi.cost
			flops += in.bi.flops
			if in.bi.flops > 1 {
				m.specialFlops += in.bi.flops
			}
			if in.dst >= 0 {
				regs[in.dst] = in.bi.fn(args)
			} else {
				in.bi.fn(args)
			}

		case opPrintf:
			if in.n > 0 {
				parts := make([]string, in.n)
				for i := int32(0); i < in.n; i++ {
					parts[i] = regs[in.reg+i].String()
				}
				m.output = append(m.output, sprintParts(parts))
			}
			if in.dst >= 0 {
				regs[in.dst] = Value{K: KVoid}
			}

		case opReturn:
			rv, err := m.operandNB(fr, &in.a)
			if err != nil {
				return err
			}
			coerced, err := m.coerce(rv, in.typ, in.pos)
			if err != nil {
				return m.errf(in.pos, "return: %v", err)
			}
			fr.ret = coerced
			m.dflush(steps, cyc, flops, intops, nInstr, nFused, qhits, &fhits)
			return nil

		case opReturnVoid:
			m.dflush(steps, cyc, flops, intops, nInstr, nFused, qhits, &fhits)
			return nil

		case opErrMsg:
			return &RuntimeError{Pos: in.pos, Msg: in.name}

		// --- Quickened opcodes (quicken.go) -------------------------------
		// Every arm follows the same discipline: fetch operands through
		// pure guarded plans (register and constant plans inline; indexed
		// plans through qresolve), goto deopt on any miss, and only then
		// commit the precomputed accounting and the result. A deopt
		// re-executes the instruction generically, so slow paths, runtime
		// errors, and their accounting stay bit-for-bit identical to
		// generic dispatch. Arms sharing an operand shape share one case,
		// so the fetch code exists once per shape.

		case opQBinFF, opQCmpBrFF, opQBinDeclFF, opQAccFF, opQMath2:
			q := in.q
			var af, bf2 float64
			var ab, bb *Buffer
			if q.a.plan == qoReg {
				v := &regs[q.a.ref]
				if v.K != q.a.kind {
					goto deopt
				}
				af = v.F
			} else if q.a.plan == qoConst {
				af = q.a.f
			} else {
				b, i, ok := qresolve(regs, &q.a)
				if !ok {
					goto deopt
				}
				af = b.F[i]
				if q.a.round {
					af = qrnd(af)
				}
				ab = b
			}
			if q.b.plan == qoReg {
				v := &regs[q.b.ref]
				if v.K != q.b.kind {
					goto deopt
				}
				bf2 = v.F
			} else if q.b.plan == qoConst {
				bf2 = q.b.f
			} else {
				b, i, ok := qresolve(regs, &q.b)
				if !ok {
					goto deopt
				}
				bf2 = b.F[i]
				if q.b.round {
					bf2 = qrnd(bf2)
				}
				bb = b
			}
			switch in.op {
			case opQBinFF:
				var r float64
				switch q.op {
				case qAdd:
					r = af + bf2
				case qSub:
					r = af - bf2
				default:
					r = af * bf2
				}
				if q.rk == KFloat {
					r = qrnd(r)
				}
				cyc += q.cyc
				flops += q.flops
				intops += q.intops
				m.prof.LoadBytes += q.lbytes
				if m.watchDepth > 0 {
					if ab != nil {
						m.qtrafIn(ab, q.a.ebytes)
					}
					if bb != nil {
						m.qtrafIn(bb, q.b.ebytes)
					}
				}
				qhits++
				if in.dst >= 0 {
					regs[in.dst] = Value{K: q.rk, F: r}
				}
			case opQCmpBrFF:
				cyc += q.cyc
				flops += q.flops
				intops += q.intops
				m.prof.LoadBytes += q.lbytes
				if m.watchDepth > 0 {
					if ab != nil {
						m.qtrafIn(ab, q.a.ebytes)
					}
					if bb != nil {
						m.qtrafIn(bb, q.b.ebytes)
					}
				}
				qhits++
				if !cmpFloat(q.cmp, af, bf2) {
					pc = int(in.jmp)
				}
			case opQBinDeclFF:
				var r float64
				switch q.op {
				case qAdd:
					r = af + bf2
				case qSub:
					r = af - bf2
				default:
					r = af * bf2
				}
				if q.rk == KFloat {
					r = qrnd(r)
				}
				cyc += q.cyc
				flops += q.flops
				intops += q.intops
				m.prof.LoadBytes += q.lbytes
				if m.watchDepth > 0 {
					if ab != nil {
						m.qtrafIn(ab, q.a.ebytes)
					}
					if bb != nil {
						m.qtrafIn(bb, q.b.ebytes)
					}
				}
				qhits++
				switch q.cellK { // the baked declared-type coercion
				case KFloat:
					regs[in.reg] = Value{K: KFloat, F: qrnd(r)}
				case KDouble:
					regs[in.reg] = Value{K: KDouble, F: r}
				default: // KInt: AsInt truncates toward zero
					regs[in.reg] = Value{K: KInt, I: int64(math.Trunc(r))}
				}
			case opQAccFF:
				cell := &regs[in.reg]
				if cell.K != q.cellK {
					goto deopt
				}
				var v float64
				switch q.op {
				case qAdd:
					v = af + bf2
				case qSub:
					v = af - bf2
				default:
					v = af * bf2
				}
				if q.rk == KFloat {
					v = qrnd(v)
				}
				res := v
				if q.acc {
					switch q.cop {
					case qAdd:
						res = cell.F + v
					case qSub:
						res = cell.F - v
					default:
						res = cell.F * v
					}
				}
				cyc += q.cyc
				flops += q.flops
				intops += q.intops
				m.prof.LoadBytes += q.lbytes
				if m.watchDepth > 0 {
					if ab != nil {
						m.qtrafIn(ab, q.a.ebytes)
					}
					if bb != nil {
						m.qtrafIn(bb, q.b.ebytes)
					}
				}
				qhits++
				// The cell's kind wins at store time (storeScalarCell), so
				// the promoted intermediate rounds identically to the
				// generic path.
				if q.cellK == KFloat {
					*cell = Value{K: KFloat, F: qrnd(res)}
				} else {
					*cell = Value{K: KDouble, F: res}
				}
				if in.dst >= 0 {
					regs[in.dst] = *cell
				}
			default: // opQMath2
				r := q.mfn2(af, bf2)
				cyc += q.cyc
				flops += q.flops
				intops += q.intops
				m.prof.LoadBytes += q.lbytes
				m.specialFlops += q.sflops
				if m.watchDepth > 0 {
					if ab != nil {
						m.qtrafIn(ab, q.a.ebytes)
					}
					if bb != nil {
						m.qtrafIn(bb, q.b.ebytes)
					}
				}
				qhits++
				if in.dst >= 0 {
					if q.rk == KFloat {
						regs[in.dst] = Value{K: KFloat, F: qrnd(r)}
					} else {
						regs[in.dst] = Value{K: KDouble, F: r}
					}
				}
			}

		case opQBinII, opQCmpBrII, opQBinDeclII, opQAccII:
			q := in.q
			var ai, bi int64
			var ab, bb *Buffer
			if q.a.plan == qoReg {
				v := &regs[q.a.ref]
				if v.K != KInt {
					goto deopt
				}
				ai = v.I
			} else if q.a.plan == qoConst {
				ai = q.a.i
			} else {
				b, i, ok := qresolve(regs, &q.a)
				if !ok {
					goto deopt
				}
				ai = b.I[i]
				ab = b
			}
			if q.b.plan == qoReg {
				v := &regs[q.b.ref]
				if v.K != KInt {
					goto deopt
				}
				bi = v.I
			} else if q.b.plan == qoConst {
				bi = q.b.i
			} else {
				b, i, ok := qresolve(regs, &q.b)
				if !ok {
					goto deopt
				}
				bi = b.I[i]
				bb = b
			}
			switch in.op {
			case opQBinII:
				var r int64
				switch q.op {
				case qAdd:
					r = ai + bi
				case qSub:
					r = ai - bi
				default:
					r = ai * bi
				}
				cyc += q.cyc
				flops += q.flops
				intops += q.intops
				m.prof.LoadBytes += q.lbytes
				if m.watchDepth > 0 {
					if ab != nil {
						m.qtrafIn(ab, q.a.ebytes)
					}
					if bb != nil {
						m.qtrafIn(bb, q.b.ebytes)
					}
				}
				qhits++
				if in.dst >= 0 {
					regs[in.dst] = Value{K: KInt, I: r}
				}
			case opQCmpBrII:
				cyc += q.cyc
				flops += q.flops
				intops += q.intops
				m.prof.LoadBytes += q.lbytes
				if m.watchDepth > 0 {
					if ab != nil {
						m.qtrafIn(ab, q.a.ebytes)
					}
					if bb != nil {
						m.qtrafIn(bb, q.b.ebytes)
					}
				}
				qhits++
				if !cmpFloat(q.cmp, float64(ai), float64(bi)) {
					pc = int(in.jmp)
				}
			case opQBinDeclII:
				var r int64
				switch q.op {
				case qAdd:
					r = ai + bi
				case qSub:
					r = ai - bi
				default:
					r = ai * bi
				}
				cyc += q.cyc
				flops += q.flops
				intops += q.intops
				m.prof.LoadBytes += q.lbytes
				if m.watchDepth > 0 {
					if ab != nil {
						m.qtrafIn(ab, q.a.ebytes)
					}
					if bb != nil {
						m.qtrafIn(bb, q.b.ebytes)
					}
				}
				qhits++
				switch q.cellK {
				case KInt:
					regs[in.reg] = Value{K: KInt, I: r}
				case KFloat:
					regs[in.reg] = Value{K: KFloat, F: qrnd(float64(r))}
				default:
					regs[in.reg] = Value{K: KDouble, F: float64(r)}
				}
			default: // opQAccII
				cell := &regs[in.reg]
				if cell.K != KInt {
					goto deopt
				}
				var v int64
				switch q.op {
				case qAdd:
					v = ai + bi
				case qSub:
					v = ai - bi
				default:
					v = ai * bi
				}
				res := v
				if q.acc {
					// applyCompound combines through float64, as the
					// shared helper does.
					switch q.cop {
					case qAdd:
						res = int64(float64(cell.I) + float64(v))
					case qSub:
						res = int64(float64(cell.I) - float64(v))
					default:
						res = int64(float64(cell.I) * float64(v))
					}
				}
				cyc += q.cyc
				flops += q.flops
				intops += q.intops
				m.prof.LoadBytes += q.lbytes
				if m.watchDepth > 0 {
					if ab != nil {
						m.qtrafIn(ab, q.a.ebytes)
					}
					if bb != nil {
						m.qtrafIn(bb, q.b.ebytes)
					}
				}
				qhits++
				*cell = Value{K: KInt, I: res}
				if in.dst >= 0 {
					regs[in.dst] = *cell
				}
			}

		case opQDeclF, opQMath1:
			q := in.q
			var af float64
			var ab *Buffer
			if q.a.plan == qoReg {
				v := &regs[q.a.ref]
				if v.K != q.a.kind {
					goto deopt
				}
				af = v.F
			} else if q.a.plan == qoConst {
				af = q.a.f
			} else {
				b, i, ok := qresolve(regs, &q.a)
				if !ok {
					goto deopt
				}
				af = b.F[i]
				if q.a.round {
					af = qrnd(af)
				}
				ab = b
			}
			if in.op == opQDeclF {
				cyc += q.cyc
				intops += q.intops
				m.prof.LoadBytes += q.lbytes
				if m.watchDepth > 0 && ab != nil {
					m.qtrafIn(ab, q.a.ebytes)
				}
				qhits++
				switch q.cellK { // the baked declared-type coercion
				case KFloat:
					regs[in.reg] = Value{K: KFloat, F: qrnd(af)}
				case KDouble:
					regs[in.reg] = Value{K: KDouble, F: af}
				default: // KInt: AsInt truncates toward zero
					regs[in.reg] = Value{K: KInt, I: int64(math.Trunc(af))}
				}
			} else { // opQMath1
				r := q.mfn1(af)
				cyc += q.cyc
				flops += q.flops
				intops += q.intops
				m.prof.LoadBytes += q.lbytes
				m.specialFlops += q.sflops
				if m.watchDepth > 0 && ab != nil {
					m.qtrafIn(ab, q.a.ebytes)
				}
				qhits++
				if in.dst >= 0 {
					if q.rk == KFloat {
						regs[in.dst] = Value{K: KFloat, F: qrnd(r)}
					} else {
						regs[in.dst] = Value{K: KDouble, F: r}
					}
				}
			}

		case opQDeclI:
			q := in.q
			var ai int64
			var ab *Buffer
			if q.a.plan == qoReg {
				v := &regs[q.a.ref]
				if v.K != KInt {
					goto deopt
				}
				ai = v.I
			} else if q.a.plan == qoConst {
				ai = q.a.i
			} else {
				b, i, ok := qresolve(regs, &q.a)
				if !ok {
					goto deopt
				}
				ai = b.I[i]
				ab = b
			}
			cyc += q.cyc
			intops += q.intops
			m.prof.LoadBytes += q.lbytes
			if m.watchDepth > 0 && ab != nil {
				m.qtrafIn(ab, q.a.ebytes)
			}
			qhits++
			switch q.cellK {
			case KInt:
				regs[in.reg] = Value{K: KInt, I: ai}
			case KFloat:
				regs[in.reg] = Value{K: KFloat, F: qrnd(float64(ai))}
			default:
				regs[in.reg] = Value{K: KDouble, F: float64(ai)}
			}

		case opQLoad:
			q := in.q
			sbuf, si, sok := qresolve(regs, &q.tgt)
			if !sok {
				goto deopt
			}
			cyc += q.cyc
			intops += q.intops
			m.prof.LoadBytes += q.lbytes
			if m.watchDepth > 0 {
				m.qtrafIn(sbuf, q.tgt.ebytes)
			}
			qhits++
			if in.dst >= 0 {
				switch q.rk {
				case KInt:
					regs[in.dst] = Value{K: KInt, I: sbuf.I[si]}
				case KFloat:
					regs[in.dst] = Value{K: KFloat, F: qrnd(sbuf.F[si])}
				default:
					regs[in.dst] = Value{K: KDouble, F: sbuf.F[si]}
				}
			}

		case opQStoreF:
			q := in.q
			var rf float64
			var rb *Buffer
			if q.a.plan == qoReg {
				v := &regs[q.a.ref]
				if v.K != q.a.kind {
					goto deopt
				}
				rf = v.F
			} else if q.a.plan == qoConst {
				rf = q.a.f
			} else {
				b, i, ok := qresolve(regs, &q.a)
				if !ok {
					goto deopt
				}
				rf = b.F[i]
				if q.a.round {
					rf = qrnd(rf)
				}
				rb = b
			}
			sbuf, si, sok := qresolve(regs, &q.tgt)
			if !sok {
				goto deopt
			}
			res := rf
			if q.acc {
				old := sbuf.F[si]
				if q.tgt.round {
					old = qrnd(old) // loadElem rounds Float elements
				}
				switch q.cop {
				case qAdd:
					res = old + rf
				case qSub:
					res = old - rf
				default:
					res = old * rf
				}
			}
			if q.rk == KFloat {
				res = qrnd(res)
			}
			cyc += q.cyc
			flops += q.flops
			intops += q.intops
			m.prof.LoadBytes += q.lbytes
			m.prof.StoreBytes += q.sbytes
			if m.watchDepth > 0 {
				if rb != nil {
					m.qtrafIn(rb, q.a.ebytes)
				}
				if q.acc {
					m.qtrafIn(sbuf, q.tgt.ebytes)
				}
				m.qtrafOut(sbuf, q.tgt.ebytes)
			}
			qhits++
			if q.tgt.round {
				sbuf.F[si] = qrnd(res)
			} else {
				sbuf.F[si] = res
			}
			if in.dst >= 0 {
				regs[in.dst] = Value{K: q.rk, F: res}
			}

		case opQStoreI:
			q := in.q
			var ri int64
			var rb *Buffer
			if q.a.plan == qoReg {
				v := &regs[q.a.ref]
				if v.K != KInt {
					goto deopt
				}
				ri = v.I
			} else if q.a.plan == qoConst {
				ri = q.a.i
			} else {
				b, i, ok := qresolve(regs, &q.a)
				if !ok {
					goto deopt
				}
				ri = b.I[i]
				rb = b
			}
			sbuf, si, sok := qresolve(regs, &q.tgt)
			if !sok {
				goto deopt
			}
			res := ri
			if q.acc {
				old := sbuf.I[si]
				// applyCompound combines through float64, as the shared
				// helper does.
				switch q.cop {
				case qAdd:
					res = int64(float64(old) + float64(ri))
				case qSub:
					res = int64(float64(old) - float64(ri))
				default:
					res = int64(float64(old) * float64(ri))
				}
			}
			cyc += q.cyc
			flops += q.flops
			intops += q.intops
			m.prof.LoadBytes += q.lbytes
			m.prof.StoreBytes += q.sbytes
			if m.watchDepth > 0 {
				if rb != nil {
					m.qtrafIn(rb, q.a.ebytes)
				}
				if q.acc {
					m.qtrafIn(sbuf, q.tgt.ebytes)
				}
				m.qtrafOut(sbuf, q.tgt.ebytes)
			}
			qhits++
			sbuf.I[si] = res
			if in.dst >= 0 {
				regs[in.dst] = Value{K: KInt, I: res}
			}
		}
		continue

	deopt:
		// A quickened guard missed: restore the generic opcode, pin the
		// instruction generic, and re-execute it under generic dispatch —
		// which reproduces the slow-path result, any runtime error, and
		// the exact generic accounting.
		in.op = in.gop
		in.hot = math.MinInt32
		in.q = nil
		m.qDeopts++
	redo:
		// Roll this dispatch's entry accounting back before re-dispatching
		// the instruction (also the landing point after a successful
		// quickening rewrite).
		nInstr--
		if in.fuse != 0 {
			nFused--
			if tr {
				fhits[in.fuse]--
			}
		}
		if in.nsteps > 0 {
			steps -= int64(in.nsteps)
		}
		pc--
	}
	m.dflush(steps, cyc, flops, intops, nInstr, nFused, qhits, &fhits)
	return nil
}

// dflush folds dispatch-local accounting back into the machine and the
// run profile. Dispatch calls it on every success-path return; error
// returns skip it because Run never surfaces the profile, the counters,
// or the step total of a failed run.
func (m *machine) dflush(steps int64, cyc float64, flops, intops, nInstr, nFused, qhits int64, fhits *[NumFusePats]int64) {
	m.steps = steps
	m.prof.Cycles += cyc
	m.prof.Flops += flops
	m.prof.IntOps += intops
	m.bcInstrs += nInstr
	m.bcFused += nFused
	m.qHits += qhits
	if m.trace != nil {
		m.trace.fold(fhits)
	}
}

// operandNB resolves one fused operand without step accounting (the
// dispatch loop batch-counts steps); cost, traffic, and error semantics
// are unchanged. The simple modes are also inlined at the hot call sites —
// this is the shared slow path.
func (m *machine) operandNB(fr *bframe, o *bopnd) (Value, error) {
	switch o.mode {
	case omPlain:
		return fr.regs[o.ref], nil
	case omVar:
		m.charge(CostLocal)
		return fr.regs[o.ref], nil
	case omConst:
		return o.val, nil
	case omIdx:
		buf, i, err := m.resolveTgtNB(fr, o.tgt)
		if err != nil {
			return Value{}, err
		}
		// loadElem inlined — the hot fused-load path
		m.prof.Cycles += CostLoad
		nbytes := buf.ElemBytes()
		m.prof.LoadBytes += nbytes
		if m.watchDepth > 0 {
			if t := m.trafficOf(buf); t != nil {
				t.BytesIn += nbytes
				t.ElemReads++
			}
		}
		switch buf.Kind {
		case minic.Int:
			return IntVal(buf.I[i]), nil
		case minic.Float:
			return FloatVal(buf.F[i]), nil
		default:
			return DoubleVal(buf.F[i]), nil
		}
	}
	return Value{}, nil // omNone
}

// resolveTgtNB resolves a (possibly fused) index target without step
// accounting, preserving the closure path's order: base fetch, buffer
// check, index evaluation, bounds check.
func (m *machine) resolveTgtNB(fr *bframe, t *btarget) (*Buffer, int64, error) {
	regs := fr.regs
	var bv Value
	switch t.base.mode {
	case omPlain:
		bv = regs[t.base.ref]
	case omVar:
		m.charge(CostLocal)
		bv = regs[t.base.ref]
	case omConst:
		bv = t.base.val
	default:
		var err error
		if bv, err = m.operandNB(fr, &t.base); err != nil {
			return nil, 0, err
		}
	}
	if bv.K != KBuf { // bufOf inlined
		return nil, 0, m.errf(t.pos, "indexing non-array value (%s)", bv.K)
	}
	buf := bv.Buf
	var iv Value
	if t.fused2 {
		// Two-level fused index (a[i*K+j]): inner binary then outer, in
		// tree-evaluation order. idx2a/idx2b/idxB are omVar or omConst
		// by construction (fuseSimple).
		var xv, yv Value
		if t.idx2a.mode == omVar {
			m.charge(CostLocal)
			xv = regs[t.idx2a.ref]
		} else {
			xv = t.idx2a.val
		}
		if t.idx2b.mode == omVar {
			m.charge(CostLocal)
			yv = regs[t.idx2b.ref]
		} else {
			yv = t.idx2b.val
		}
		var inner Value
		if xv.K == KInt && yv.K == KInt && t.idxOp2 == minic.TokStar {
			m.prof.IntOps++
			m.charge(CostMul)
			inner = IntVal(xv.I * yv.I)
		} else {
			var err error
			if inner, err = m.applyBinary(t.idxOp2, xv, yv, t.idxPos2); err != nil {
				return nil, 0, err
			}
		}
		var zv Value
		if t.idxB.mode == omVar {
			m.charge(CostLocal)
			zv = regs[t.idxB.ref]
		} else {
			zv = t.idxB.val
		}
		if inner.K == KInt && zv.K == KInt {
			switch t.idxOp {
			case minic.TokPlus:
				m.prof.IntOps++
				m.charge(CostAddSub)
				iv = IntVal(inner.I + zv.I)
			case minic.TokMinus:
				m.prof.IntOps++
				m.charge(CostAddSub)
				iv = IntVal(inner.I - zv.I)
			default:
				var err error
				if iv, err = m.applyBinary(t.idxOp, inner, zv, t.idxPos); err != nil {
					return nil, 0, err
				}
			}
		} else {
			var err error
			if iv, err = m.applyBinary(t.idxOp, inner, zv, t.idxPos); err != nil {
				return nil, 0, err
			}
		}
	} else if t.fused {
		// Fused binary index (p[j*3+1]): the int fast path mirrors
		// applyBinary's int arm; anything else falls back.
		var lv, rv Value
		switch t.idx.mode {
		case omPlain:
			lv = regs[t.idx.ref]
		case omVar:
			m.charge(CostLocal)
			lv = regs[t.idx.ref]
		case omConst:
			lv = t.idx.val
		default:
			var err error
			if lv, err = m.operandNB(fr, &t.idx); err != nil {
				return nil, 0, err
			}
		}
		switch t.idxB.mode {
		case omPlain:
			rv = regs[t.idxB.ref]
		case omVar:
			m.charge(CostLocal)
			rv = regs[t.idxB.ref]
		case omConst:
			rv = t.idxB.val
		default:
			var err error
			if rv, err = m.operandNB(fr, &t.idxB); err != nil {
				return nil, 0, err
			}
		}
		if lv.K == KInt && rv.K == KInt {
			switch t.idxOp {
			case minic.TokPlus:
				m.prof.IntOps++
				m.charge(CostAddSub)
				iv = IntVal(lv.I + rv.I)
			case minic.TokMinus:
				m.prof.IntOps++
				m.charge(CostAddSub)
				iv = IntVal(lv.I - rv.I)
			case minic.TokStar:
				m.prof.IntOps++
				m.charge(CostMul)
				iv = IntVal(lv.I * rv.I)
			default:
				var err error
				if iv, err = m.applyBinary(t.idxOp, lv, rv, t.idxPos); err != nil {
					return nil, 0, err
				}
			}
		} else {
			var err error
			if iv, err = m.applyBinary(t.idxOp, lv, rv, t.idxPos); err != nil {
				return nil, 0, err
			}
		}
	} else {
		switch t.idx.mode {
		case omPlain:
			iv = regs[t.idx.ref]
		case omVar:
			m.charge(CostLocal)
			iv = regs[t.idx.ref]
		case omConst:
			iv = t.idx.val
		default:
			var err error
			if iv, err = m.operandNB(fr, &t.idx); err != nil {
				return nil, 0, err
			}
		}
	}
	i := iv.AsInt() // boundsOf inlined
	if i < 0 || i >= int64(buf.Len()) {
		return nil, 0, m.errf(t.pos, "index %d out of range [0,%d) for %s", i, buf.Len(), buf.Name)
	}
	return buf, i, nil
}

// ---------------------------------------------------------------------------
// Precise replay: per-step budget accounting for the instruction in which
// the batched check detected a crossing.

// execPrecise replays one instruction with per-step budget checks. The
// batched check in dispatch guarantees the budget is crossed among this
// instruction's counted steps, and every counted step precedes the
// instruction's stepless tail (combine, store, branch, call), so replaying
// the step-generating prefix — pre-steps, the instruction's own step,
// operand fetches, target resolution — reproduces the exact error the
// closure path reports: a budget error at the precise sub-step position,
// or the first runtime error that textually precedes it.
func (m *machine) execPrecise(fr *bframe, in *binstr) error {
	for _, p := range in.pre {
		m.steps++
		if m.steps > m.maxSteps {
			return m.errf(p, "step budget exceeded (%d)", m.maxSteps)
		}
	}
	switch in.op {
	case opCmpBranch, opLoopBack:
		m.steps++
		if m.steps > m.maxSteps {
			return m.errf(in.pos, "step budget exceeded (%d)", m.maxSteps)
		}
	case opBinAssignVar, opBinDeclVar:
		m.steps++
		if m.steps > m.maxSteps {
			return m.errf(in.pos2, "step budget exceeded (%d)", m.maxSteps)
		}
	}
	switch in.op {
	case opEval, opUnary, opLogicShort, opBoolOf, opCast, opDeclVar, opDeclArr,
		opAssignVar, opBranchFalse, opReturn, opCheckBuf:
		if _, err := m.fetchOp(fr, &in.a); err != nil {
			return err
		}
	case opBinary, opCmpBranch, opBinAssignVar, opBinDeclVar, opBuiltin:
		if _, err := m.fetchOp(fr, &in.a); err != nil {
			return err
		}
		if _, err := m.fetchOp(fr, &in.b); err != nil {
			return err
		}
	case opStoreIdx:
		if _, err := m.fetchOp(fr, &in.a); err != nil {
			return err
		}
		if _, _, err := m.resolveTgt(fr, in.tgt); err != nil {
			return err
		}
	case opIncIdx, opLoadIdx:
		if _, _, err := m.resolveTgt(fr, in.tgt); err != nil {
			return err
		}
	}
	// Unreachable when nsteps is computed correctly (the crossing fires
	// above); a deterministic budget error keeps a miscount observable.
	return m.errf(in.pos, "step budget exceeded (%d)", m.maxSteps)
}

// fetchOp resolves one fused operand with exactly the accounting the
// corresponding standalone closure would perform, including per-step
// budget checks (precise-replay path only).
func (m *machine) fetchOp(fr *bframe, o *bopnd) (Value, error) {
	switch o.mode {
	case omPlain:
		return fr.regs[o.ref], nil
	case omVar:
		m.steps++
		if m.steps > m.maxSteps {
			return Value{}, m.errf(o.pos, "step budget exceeded (%d)", m.maxSteps)
		}
		m.charge(CostLocal)
		return fr.regs[o.ref], nil
	case omConst:
		m.steps++
		if m.steps > m.maxSteps {
			return Value{}, m.errf(o.pos, "step budget exceeded (%d)", m.maxSteps)
		}
		return o.val, nil
	case omIdx:
		// The IndexExpr's own step, then the target resolve and load —
		// the standalone indexed-load closure, fused.
		m.steps++
		if m.steps > m.maxSteps {
			return Value{}, m.errf(o.pos, "step budget exceeded (%d)", m.maxSteps)
		}
		buf, i, err := m.resolveTgt(fr, o.tgt)
		if err != nil {
			return Value{}, err
		}
		return m.loadElem(buf, i, o.pos)
	}
	return Value{}, nil // omNone
}

// resolveTgt resolves a (possibly fused) index target with per-step budget
// checks, preserving the closure path's order: base fetch, buffer check,
// index evaluation, bounds check (precise-replay path only).
func (m *machine) resolveTgt(fr *bframe, t *btarget) (*Buffer, int64, error) {
	bv, err := m.fetchOp(fr, &t.base)
	if err != nil {
		return nil, 0, err
	}
	buf, err := m.bufOf(bv, t.pos)
	if err != nil {
		return nil, 0, err
	}
	var iv Value
	if t.fused2 {
		// Two-level fused index: the outer binary's own step, then the
		// inner binary (own step + operands + combine), then the outer
		// right operand and combine — exact tree-evaluation order.
		m.steps++
		if m.steps > m.maxSteps {
			return nil, 0, m.errf(t.idxPos, "step budget exceeded (%d)", m.maxSteps)
		}
		m.steps++
		if m.steps > m.maxSteps {
			return nil, 0, m.errf(t.idxPos2, "step budget exceeded (%d)", m.maxSteps)
		}
		xv, err := m.fetchOp(fr, &t.idx2a)
		if err != nil {
			return nil, 0, err
		}
		yv, err := m.fetchOp(fr, &t.idx2b)
		if err != nil {
			return nil, 0, err
		}
		inner, err := m.applyBinary(t.idxOp2, xv, yv, t.idxPos2)
		if err != nil {
			return nil, 0, err
		}
		zv, err := m.fetchOp(fr, &t.idxB)
		if err != nil {
			return nil, 0, err
		}
		iv, err = m.applyBinary(t.idxOp, inner, zv, t.idxPos)
		if err != nil {
			return nil, 0, err
		}
	} else if t.fused {
		// Fused binary index (p[j*3+1]): the binary's own step precedes
		// its operand fetches, as in compileBinary.
		m.steps++
		if m.steps > m.maxSteps {
			return nil, 0, m.errf(t.idxPos, "step budget exceeded (%d)", m.maxSteps)
		}
		lv, err := m.fetchOp(fr, &t.idx)
		if err != nil {
			return nil, 0, err
		}
		rv, err := m.fetchOp(fr, &t.idxB)
		if err != nil {
			return nil, 0, err
		}
		iv, err = m.applyBinary(t.idxOp, lv, rv, t.idxPos)
		if err != nil {
			return nil, 0, err
		}
	} else {
		iv, err = m.fetchOp(fr, &t.idx)
		if err != nil {
			return nil, 0, err
		}
	}
	i, err := m.boundsOf(buf, iv, t.pos)
	if err != nil {
		return nil, 0, err
	}
	return buf, i, nil
}
