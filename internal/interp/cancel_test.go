package interp

import (
	"context"
	"errors"
	"testing"
	"time"

	"psaflow/internal/minic"
)

// spinSrc loops long enough to exhaust the default step budget many times
// over if cancellation failed to land.
const spinSrc = `
int spin(int n) {
    int acc = 0;
    for (int i = 0; i < 2000000000; i++) {
        acc = acc + i % 7;
    }
    return acc;
}
`

func testCancelPrompt(t *testing.T, treeWalk bool) {
	t.Helper()
	prog := minic.MustParse(spinSrc)
	cctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Run(prog, Config{Entry: "spin", Args: []Value{IntVal(1)}, Ctx: cctx, TreeWalk: treeWalk})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CancelError, got %T", err)
	}
	// The spin would run for many seconds; cancellation must cut it down to
	// roughly the cancel delay. Generous bound for loaded CI machines.
	if elapsed > 3*time.Second {
		t.Fatalf("cancellation took %v; expected prompt abort", elapsed)
	}
}

func TestCancelPromptCompiled(t *testing.T) { testCancelPrompt(t, false) }
func TestCancelPromptTreeWalk(t *testing.T) { testCancelPrompt(t, true) }

func TestCancelBeforeRun(t *testing.T) {
	prog := minic.MustParse(spinSrc)
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(prog, Config{Entry: "spin", Args: []Value{IntVal(1)}, Ctx: cctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestDeadlineExceededSurfaces(t *testing.T) {
	prog := minic.MustParse(spinSrc)
	cctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := Run(prog, Config{Entry: "spin", Args: []Value{IntVal(1)}, Ctx: cctx})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}
