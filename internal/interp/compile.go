package interp

import (
	"psaflow/internal/minic"
)

// The compiled fast path. Run lowers every function of the program once:
// local variables are resolved at compile time to integer slots in a flat
// per-activation []Value frame (replacing the tree-walker's linear scan
// over a stack of scope maps), and every statement/expression becomes a
// pre-bound closure, eliminating the per-node AST type switch from the
// hot loop. Semantics — step accounting, cycle charging order, loop
// profiles, memory tracing, alias observation, captured output, and error
// messages — are bit-for-bit identical to the tree-walker because both
// paths share the helpers in apply.go; the equivalence suite
// (compile_test.go) checks this over every bundled benchmark.

// cframe is one compiled function activation: a flat slot frame.
type cframe struct {
	slots []Value
	ret   Value
}

// cstmt executes one compiled statement.
type cstmt func(m *machine, fr *cframe) (ctrl, error)

// cexpr evaluates one compiled expression.
type cexpr func(m *machine, fr *cframe) (Value, error)

// cindex resolves a compiled index target to (buffer, element index).
type cindex func(m *machine, fr *cframe) (*Buffer, int64, error)

// compiledFunc is one lowered function.
type compiledFunc struct {
	decl   *minic.FuncDecl
	nslots int
	body   []cstmt
}

// compiledProg is the lowered program.
type compiledProg struct {
	funcs map[string]*compiledFunc
}

// compiler carries the per-function resolution state: a lexical scope
// stack mapping names to slots. Slots are never reused, so sibling scopes
// get distinct slots and shadowing resolves to the innermost declaration
// exactly as frame.lookup does.
type compiler struct {
	prog   *minic.Program
	funcs  map[string]*compiledFunc
	scopes []map[string]int
	nslots int
	curFn  *minic.FuncDecl
}

// compileProgram lowers every function of prog. Never fails: constructs
// that the tree-walker would only reject at runtime (undefined variables
// or functions, unhandled node types) compile to closures producing the
// identical runtime error, so unexecuted dead code stays legal.
func compileProgram(prog *minic.Program) *compiledProg {
	c := &compiler{prog: prog, funcs: make(map[string]*compiledFunc, len(prog.Funcs))}
	for _, f := range prog.Funcs {
		if _, exists := c.funcs[f.Name]; !exists { // first declaration wins, as in Program.Func
			c.funcs[f.Name] = &compiledFunc{decl: f}
		}
	}
	for _, f := range prog.Funcs {
		if cf := c.funcs[f.Name]; cf.decl == f {
			c.compileFunc(cf)
		}
	}
	return &compiledProg{funcs: c.funcs}
}

func (c *compiler) push() { c.scopes = append(c.scopes, make(map[string]int)) }
func (c *compiler) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

// declare allocates a fresh slot for name in the innermost scope.
func (c *compiler) declare(name string) int {
	slot := c.nslots
	c.nslots++
	c.scopes[len(c.scopes)-1][name] = slot
	return slot
}

// lookup resolves name to the innermost shadowing declaration's slot.
func (c *compiler) lookup(name string) (int, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if slot, ok := c.scopes[i][name]; ok {
			return slot, true
		}
	}
	return 0, false
}

func (c *compiler) compileFunc(cf *compiledFunc) {
	fn := cf.decl
	c.curFn = fn
	c.scopes = c.scopes[:0]
	c.nslots = 0
	c.push() // parameter scope, as in machine.call
	for _, p := range fn.Params {
		c.declare(p.Name) // params occupy slots 0..len-1 in order
	}
	cf.body = c.compileBlock(fn.Body)
	c.pop()
	cf.nslots = c.nslots
}

// compileBlock compiles a block's statements under a fresh scope. The
// returned list is executed without a step charge — matching execBlock,
// which only steps when the block itself appears as a statement.
func (c *compiler) compileBlock(b *minic.Block) []cstmt {
	c.push()
	defer c.pop()
	out := make([]cstmt, len(b.Stmts))
	for i, s := range b.Stmts {
		out[i] = c.compileStmt(s)
	}
	return out
}

// runStmts executes a compiled statement list (the execBlock equivalent).
func runStmts(m *machine, fr *cframe, stmts []cstmt) (ctrl, error) {
	for _, s := range stmts {
		ctl, err := s(m, fr)
		if err != nil {
			return ctrlNone, err
		}
		if ctl != ctrlNone {
			return ctl, nil
		}
	}
	return ctrlNone, nil
}

func (c *compiler) compileStmt(s minic.Stmt) cstmt {
	pos := s.NodePos()
	switch v := s.(type) {
	case *minic.Block:
		inner := c.compileBlock(v)
		return func(m *machine, fr *cframe) (ctrl, error) {
			if err := m.step(pos); err != nil {
				return ctrlNone, err
			}
			return runStmts(m, fr, inner)
		}
	case *minic.DeclStmt:
		return c.compileDecl(v)
	case *minic.ExprStmt:
		x := c.compileExpr(v.X)
		return func(m *machine, fr *cframe) (ctrl, error) {
			if err := m.step(pos); err != nil {
				return ctrlNone, err
			}
			_, err := x(m, fr)
			return ctrlNone, err
		}
	case *minic.ForStmt:
		return c.compileFor(v)
	case *minic.WhileStmt:
		return c.compileWhile(v)
	case *minic.IfStmt:
		cond := c.compileExpr(v.Cond)
		then := c.compileBlock(v.Then)
		var els cstmt
		if v.Else != nil {
			els = c.compileStmt(v.Else)
		}
		return func(m *machine, fr *cframe) (ctrl, error) {
			if err := m.step(pos); err != nil {
				return ctrlNone, err
			}
			cv, err := cond(m, fr)
			if err != nil {
				return ctrlNone, err
			}
			m.charge(CostBranch)
			if cv.AsBool() {
				return runStmts(m, fr, then)
			}
			if els != nil {
				return els(m, fr)
			}
			return ctrlNone, nil
		}
	case *minic.ReturnStmt:
		retType := c.curFn.Ret
		if v.X == nil {
			return func(m *machine, fr *cframe) (ctrl, error) {
				if err := m.step(pos); err != nil {
					return ctrlNone, err
				}
				return ctrlReturn, nil
			}
		}
		x := c.compileExpr(v.X)
		return func(m *machine, fr *cframe) (ctrl, error) {
			if err := m.step(pos); err != nil {
				return ctrlNone, err
			}
			rv, err := x(m, fr)
			if err != nil {
				return ctrlNone, err
			}
			coerced, err := m.coerce(rv, retType, pos)
			if err != nil {
				return ctrlNone, m.errf(pos, "return: %v", err)
			}
			fr.ret = coerced
			return ctrlReturn, nil
		}
	case *minic.BreakStmt:
		return func(m *machine, fr *cframe) (ctrl, error) {
			if err := m.step(pos); err != nil {
				return ctrlNone, err
			}
			return ctrlBreak, nil
		}
	case *minic.ContinueStmt:
		return func(m *machine, fr *cframe) (ctrl, error) {
			if err := m.step(pos); err != nil {
				return ctrlNone, err
			}
			return ctrlContinue, nil
		}
	case *minic.PragmaStmt:
		return func(m *machine, fr *cframe) (ctrl, error) {
			if err := m.step(pos); err != nil {
				return ctrlNone, err
			}
			return ctrlNone, nil // pragmas are semantically transparent
		}
	}
	node := s
	return func(m *machine, fr *cframe) (ctrl, error) {
		if err := m.step(pos); err != nil {
			return ctrlNone, err
		}
		return ctrlNone, m.errf(pos, "unhandled statement %T", node)
	}
}

func (c *compiler) compileDecl(d *minic.DeclStmt) cstmt {
	pos := d.NodePos()
	if d.ArrayLen != nil {
		// The length expression resolves in the surrounding scope, before
		// the array's own name becomes visible.
		alen := c.compileExpr(d.ArrayLen)
		slot := c.declare(d.Name)
		name, kind := d.Name, d.Type.Kind
		return func(m *machine, fr *cframe) (ctrl, error) {
			if err := m.step(pos); err != nil {
				return ctrlNone, err
			}
			nv, err := alen(m, fr)
			if err != nil {
				return ctrlNone, err
			}
			buf, err := m.makeArray(name, kind, nv.AsInt(), pos)
			if err != nil {
				return ctrlNone, err
			}
			fr.slots[slot] = BufVal(buf)
			return ctrlNone, nil
		}
	}
	// Initializers see the outer binding of a shadowed name (int x = x + 1
	// reads the outer x), so compile Init before declaring.
	var initC cexpr
	if d.Init != nil {
		initC = c.compileExpr(d.Init)
	}
	slot := c.declare(d.Name)
	name, typ := d.Name, d.Type
	return func(m *machine, fr *cframe) (ctrl, error) {
		if err := m.step(pos); err != nil {
			return ctrlNone, err
		}
		var init Value
		if initC != nil {
			v, err := initC(m, fr)
			if err != nil {
				return ctrlNone, err
			}
			init = v
		}
		coerced, err := m.coerce(init, typ, pos)
		if err != nil {
			return ctrlNone, m.errf(pos, "declare %s: %v", name, err)
		}
		m.charge(CostLocal)
		fr.slots[slot] = coerced
		return ctrlNone, nil
	}
}

func (c *compiler) compileFor(f *minic.ForStmt) cstmt {
	c.push() // the for-init scope, as in execFor
	var initC cstmt
	if f.Init != nil {
		initC = c.compileStmt(f.Init)
	}
	var condC cexpr
	if f.Cond != nil {
		condC = c.compileExpr(f.Cond)
	}
	var postC cexpr
	if f.Post != nil {
		postC = c.compileExpr(f.Post)
	}
	body := c.compileBlock(f.Body)
	c.pop()
	id, pos := f.ID(), f.NodePos()
	return func(m *machine, fr *cframe) (ctrl, error) {
		if err := m.step(pos); err != nil {
			return ctrlNone, err
		}
		lp := m.loopProfile(id, pos)
		lp.Entries++
		start := m.prof.Cycles
		defer func() { lp.Cycles += m.prof.Cycles - start }()

		if initC != nil {
			if _, err := initC(m, fr); err != nil {
				return ctrlNone, err
			}
		}
		for {
			if condC != nil {
				cond, err := condC(m, fr)
				if err != nil {
					return ctrlNone, err
				}
				m.charge(CostBranch)
				if !cond.AsBool() {
					return ctrlNone, nil
				}
			}
			if err := m.step(pos); err != nil {
				return ctrlNone, err
			}
			lp.Trips++
			ctl, err := runStmts(m, fr, body)
			if err != nil {
				return ctrlNone, err
			}
			if ctl == ctrlBreak {
				return ctrlNone, nil
			}
			if ctl == ctrlReturn {
				return ctrlReturn, nil
			}
			if postC != nil {
				if _, err := postC(m, fr); err != nil {
					return ctrlNone, err
				}
			}
		}
	}
}

func (c *compiler) compileWhile(w *minic.WhileStmt) cstmt {
	condC := c.compileExpr(w.Cond)
	body := c.compileBlock(w.Body)
	id, pos := w.ID(), w.NodePos()
	return func(m *machine, fr *cframe) (ctrl, error) {
		if err := m.step(pos); err != nil {
			return ctrlNone, err
		}
		lp := m.loopProfile(id, pos)
		lp.Entries++
		start := m.prof.Cycles
		defer func() { lp.Cycles += m.prof.Cycles - start }()
		for {
			cond, err := condC(m, fr)
			if err != nil {
				return ctrlNone, err
			}
			m.charge(CostBranch)
			if !cond.AsBool() {
				return ctrlNone, nil
			}
			if err := m.step(pos); err != nil {
				return ctrlNone, err
			}
			lp.Trips++
			ctl, err := runStmts(m, fr, body)
			if err != nil {
				return ctrlNone, err
			}
			if ctl == ctrlBreak {
				return ctrlNone, nil
			}
			if ctl == ctrlReturn {
				return ctrlReturn, nil
			}
		}
	}
}

func (c *compiler) compileExpr(e minic.Expr) cexpr {
	pos := e.NodePos()
	switch v := e.(type) {
	case *minic.IntLit:
		val := IntVal(v.Val)
		return func(m *machine, fr *cframe) (Value, error) {
			if err := m.step(pos); err != nil {
				return Value{}, err
			}
			return val, nil
		}
	case *minic.FloatLit:
		var val Value
		if v.Single {
			val = FloatVal(v.Val)
		} else {
			val = DoubleVal(v.Val)
		}
		return func(m *machine, fr *cframe) (Value, error) {
			if err := m.step(pos); err != nil {
				return Value{}, err
			}
			return val, nil
		}
	case *minic.BoolLit:
		val := BoolVal(v.Val)
		return func(m *machine, fr *cframe) (Value, error) {
			if err := m.step(pos); err != nil {
				return Value{}, err
			}
			return val, nil
		}
	case *minic.StringLit:
		return func(m *machine, fr *cframe) (Value, error) {
			if err := m.step(pos); err != nil {
				return Value{}, err
			}
			return Value{K: KVoid}, nil // only meaningful inside printf-family calls
		}
	case *minic.Ident:
		slot, ok := c.lookup(v.Name)
		if !ok {
			name := v.Name
			return func(m *machine, fr *cframe) (Value, error) {
				if err := m.step(pos); err != nil {
					return Value{}, err
				}
				return Value{}, m.errf(pos, "undefined variable %q", name)
			}
		}
		return func(m *machine, fr *cframe) (Value, error) {
			if err := m.step(pos); err != nil {
				return Value{}, err
			}
			m.charge(CostLocal)
			return fr.slots[slot], nil
		}
	case *minic.UnaryExpr:
		x := c.compileExpr(v.X)
		op := v.Op
		return func(m *machine, fr *cframe) (Value, error) {
			if err := m.step(pos); err != nil {
				return Value{}, err
			}
			xv, err := x(m, fr)
			if err != nil {
				return Value{}, err
			}
			return m.applyUnary(op, xv), nil
		}
	case *minic.BinaryExpr:
		return c.compileBinary(v)
	case *minic.AssignExpr:
		return c.compileAssign(v)
	case *minic.IncDecExpr:
		return c.compileIncDec(v)
	case *minic.IndexExpr:
		tgt := c.compileIndexTarget(v)
		return func(m *machine, fr *cframe) (Value, error) {
			if err := m.step(pos); err != nil {
				return Value{}, err
			}
			buf, i, err := tgt(m, fr)
			if err != nil {
				return Value{}, err
			}
			return m.loadElem(buf, i, pos)
		}
	case *minic.CallExpr:
		return c.compileCall(v)
	case *minic.CastExpr:
		x := c.compileExpr(v.X)
		to := v.To
		return func(m *machine, fr *cframe) (Value, error) {
			if err := m.step(pos); err != nil {
				return Value{}, err
			}
			xv, err := x(m, fr)
			if err != nil {
				return Value{}, err
			}
			m.charge(CostCast)
			return m.coerce(xv, to, pos)
		}
	}
	node := e
	return func(m *machine, fr *cframe) (Value, error) {
		if err := m.step(pos); err != nil {
			return Value{}, err
		}
		return Value{}, m.errf(pos, "unhandled expression %T", node)
	}
}

func (c *compiler) compileBinary(b *minic.BinaryExpr) cexpr {
	pos := b.NodePos()
	op := b.Op
	// Short-circuit logical operators.
	if op == minic.TokAndAnd || op == minic.TokOrOr {
		l := c.compileExpr(b.L)
		r := c.compileExpr(b.R)
		isAnd := op == minic.TokAndAnd
		return func(m *machine, fr *cframe) (Value, error) {
			if err := m.step(pos); err != nil {
				return Value{}, err
			}
			lv, err := l(m, fr)
			if err != nil {
				return Value{}, err
			}
			m.charge(CostLogic)
			if isAnd && !lv.AsBool() {
				return BoolVal(false), nil
			}
			if !isAnd && lv.AsBool() {
				return BoolVal(true), nil
			}
			rv, err := r(m, fr)
			if err != nil {
				return Value{}, err
			}
			return BoolVal(rv.AsBool()), nil
		}
	}
	l := c.operand(b.L)
	r := c.operand(b.R)
	lslot, lconst, lval, lgen, lpos := l.slot, l.isConst, l.val, l.gen, l.pos
	rslot, rconst, rval, rgen, rpos := r.slot, r.isConst, r.val, r.gen, r.pos
	// One closure with everything inlined: the step accounting, the
	// slot/literal operand fetches, and applyBinary's full dispatch body.
	// No internal calls remain on the hot path. Accounting (charge order,
	// IntOps / Flops, watch attribution) and every error message stay
	// identical to the tree-walk path — compile_test.go holds both to the
	// bit.
	return func(m *machine, fr *cframe) (Value, error) {
		m.steps++
		if m.steps > m.maxSteps {
			return Value{}, m.errf(pos, "step budget exceeded (%d)", m.maxSteps)
		}
		var lv, rv Value
		if lslot >= 0 {
			m.steps++
			if m.steps > m.maxSteps {
				return Value{}, m.errf(lpos, "step budget exceeded (%d)", m.maxSteps)
			}
			m.charge(CostLocal)
			lv = fr.slots[lslot]
		} else if lconst {
			m.steps++
			if m.steps > m.maxSteps {
				return Value{}, m.errf(lpos, "step budget exceeded (%d)", m.maxSteps)
			}
			lv = lval
		} else {
			var err error
			if lv, err = lgen(m, fr); err != nil {
				return Value{}, err
			}
		}
		if rslot >= 0 {
			m.steps++
			if m.steps > m.maxSteps {
				return Value{}, m.errf(rpos, "step budget exceeded (%d)", m.maxSteps)
			}
			m.charge(CostLocal)
			rv = fr.slots[rslot]
		} else if rconst {
			m.steps++
			if m.steps > m.maxSteps {
				return Value{}, m.errf(rpos, "step budget exceeded (%d)", m.maxSteps)
			}
			rv = rval
		} else {
			var err error
			if rv, err = rgen(m, fr); err != nil {
				return Value{}, err
			}
		}
		if !lv.IsNumeric() || !rv.IsNumeric() {
			return Value{}, m.errf(pos, "non-numeric operands to %s", op)
		}
		switch op {
		case minic.TokLt:
			m.charge(CostCmp)
			return BoolVal(lv.AsFloat() < rv.AsFloat()), nil
		case minic.TokGt:
			m.charge(CostCmp)
			return BoolVal(lv.AsFloat() > rv.AsFloat()), nil
		case minic.TokLe:
			m.charge(CostCmp)
			return BoolVal(lv.AsFloat() <= rv.AsFloat()), nil
		case minic.TokGe:
			m.charge(CostCmp)
			return BoolVal(lv.AsFloat() >= rv.AsFloat()), nil
		case minic.TokEqEq:
			m.charge(CostCmp)
			return BoolVal(lv.AsFloat() == rv.AsFloat()), nil
		case minic.TokNe:
			m.charge(CostCmp)
			return BoolVal(lv.AsFloat() != rv.AsFloat()), nil
		case minic.TokPercent:
			if lv.K != KInt || rv.K != KInt {
				return Value{}, m.errf(pos, "%% requires int operands")
			}
			if rv.I == 0 {
				return Value{}, m.errf(pos, "modulo by zero")
			}
			m.charge(CostDivInt)
			m.prof.IntOps++
			return IntVal(lv.I % rv.I), nil
		}
		if k := promote(lv, rv); k == KInt {
			m.prof.IntOps++
			li, ri := lv.AsInt(), rv.AsInt()
			switch op {
			case minic.TokPlus:
				m.charge(CostAddSub)
				return IntVal(li + ri), nil
			case minic.TokMinus:
				m.charge(CostAddSub)
				return IntVal(li - ri), nil
			case minic.TokStar:
				m.charge(CostMul)
				return IntVal(li * ri), nil
			case minic.TokSlash:
				if ri == 0 {
					return Value{}, m.errf(pos, "integer division by zero")
				}
				m.charge(CostDivInt)
				return IntVal(li / ri), nil
			}
		} else {
			lf, rf := lv.AsFloat(), rv.AsFloat()
			switch op {
			case minic.TokPlus:
				m.chargeFlop(CostAddSub, 1)
				return makeNum(k, lf+rf), nil
			case minic.TokMinus:
				m.chargeFlop(CostAddSub, 1)
				return makeNum(k, lf-rf), nil
			case minic.TokStar:
				m.chargeFlop(CostMul, 1)
				return makeNum(k, lf*rf), nil
			case minic.TokSlash:
				if rf == 0 {
					return Value{}, m.errf(pos, "floating division by zero")
				}
				m.chargeFlop(CostDivF, 1)
				return makeNum(k, lf/rf), nil
			}
		}
		return Value{}, m.errf(pos, "unhandled binary operator %s", op)
	}
}

// operand is a compiled expression with its common shapes — local slot
// load, literal — flattened so hot consumers (binary ops, index targets)
// can fetch the value without a closure call. fetch preserves exactly the
// accounting the standalone closure would perform: one step at the
// operand's position, plus CostLocal for slot reads.
type operand struct {
	slot    int   // >= 0: read fr.slots[slot]
	isConst bool  // slot < 0: return val
	val     Value // literal value for isConst
	gen     cexpr // fallback for every other shape
	pos     minic.Pos
}

func (c *compiler) operand(e minic.Expr) operand {
	pos := e.NodePos()
	switch v := e.(type) {
	case *minic.Ident:
		if slot, ok := c.lookup(v.Name); ok {
			return operand{slot: slot, pos: pos}
		}
	case *minic.IntLit:
		return operand{slot: -1, isConst: true, val: IntVal(v.Val), pos: pos}
	case *minic.FloatLit:
		if v.Single {
			return operand{slot: -1, isConst: true, val: FloatVal(v.Val), pos: pos}
		}
		return operand{slot: -1, isConst: true, val: DoubleVal(v.Val), pos: pos}
	case *minic.BoolLit:
		return operand{slot: -1, isConst: true, val: BoolVal(v.Val), pos: pos}
	}
	return operand{slot: -1, gen: c.compileExpr(e), pos: pos}
}

func (o *operand) fetch(m *machine, fr *cframe) (Value, error) {
	if o.slot >= 0 {
		m.steps++
		if m.steps > m.maxSteps {
			return Value{}, m.errf(o.pos, "step budget exceeded (%d)", m.maxSteps)
		}
		m.charge(CostLocal)
		return fr.slots[o.slot], nil
	}
	if o.isConst {
		m.steps++
		if m.steps > m.maxSteps {
			return Value{}, m.errf(o.pos, "step budget exceeded (%d)", m.maxSteps)
		}
		return o.val, nil
	}
	return o.gen(m, fr)
}

func (c *compiler) compileIndexTarget(ix *minic.IndexExpr) cindex {
	base := c.operand(ix.Base)
	idx := c.operand(ix.Index)
	bslot, bconst, bval, bgen, bpos := base.slot, base.isConst, base.val, base.gen, base.pos
	islot, iconst, ival, igen, ipos := idx.slot, idx.isConst, idx.val, idx.gen, idx.pos
	pos := ix.NodePos()
	// Fetches inlined as in compileBinary: the base-is-buffer check still
	// happens before the index expression evaluates, as in the tree walk.
	return func(m *machine, fr *cframe) (*Buffer, int64, error) {
		var bv Value
		if bslot >= 0 {
			m.steps++
			if m.steps > m.maxSteps {
				return nil, 0, m.errf(bpos, "step budget exceeded (%d)", m.maxSteps)
			}
			m.charge(CostLocal)
			bv = fr.slots[bslot]
		} else if bconst {
			m.steps++
			if m.steps > m.maxSteps {
				return nil, 0, m.errf(bpos, "step budget exceeded (%d)", m.maxSteps)
			}
			bv = bval
		} else {
			var err error
			if bv, err = bgen(m, fr); err != nil {
				return nil, 0, err
			}
		}
		buf, err := m.bufOf(bv, pos)
		if err != nil {
			return nil, 0, err
		}
		var iv Value
		if islot >= 0 {
			m.steps++
			if m.steps > m.maxSteps {
				return nil, 0, m.errf(ipos, "step budget exceeded (%d)", m.maxSteps)
			}
			m.charge(CostLocal)
			iv = fr.slots[islot]
		} else if iconst {
			m.steps++
			if m.steps > m.maxSteps {
				return nil, 0, m.errf(ipos, "step budget exceeded (%d)", m.maxSteps)
			}
			iv = ival
		} else {
			if iv, err = igen(m, fr); err != nil {
				return nil, 0, err
			}
		}
		i, err := m.boundsOf(buf, iv, pos)
		if err != nil {
			return nil, 0, err
		}
		return buf, i, nil
	}
}

func (c *compiler) compileAssign(a *minic.AssignExpr) cexpr {
	pos := a.NodePos()
	rhsC := c.compileExpr(a.RHS)
	op := a.Op
	compound := op != minic.TokAssign
	switch lhs := a.LHS.(type) {
	case *minic.Ident:
		lpos := lhs.NodePos()
		slot, ok := c.lookup(lhs.Name)
		if !ok {
			name := lhs.Name
			return func(m *machine, fr *cframe) (Value, error) {
				if err := m.step(pos); err != nil {
					return Value{}, err
				}
				if _, err := rhsC(m, fr); err != nil {
					return Value{}, err
				}
				return Value{}, m.errf(lpos, "undefined variable %q", name)
			}
		}
		return func(m *machine, fr *cframe) (Value, error) {
			if err := m.step(pos); err != nil {
				return Value{}, err
			}
			rhs, err := rhsC(m, fr)
			if err != nil {
				return Value{}, err
			}
			cell := &fr.slots[slot]
			var old Value
			if compound {
				m.charge(CostLocal)
				old = *cell
			}
			nv, err := m.applyCompound(op, old, rhs, pos)
			if err != nil {
				return Value{}, err
			}
			// Preserve the declared scalar kind of the cell.
			return m.storeScalarCell(cell, nv, lpos)
		}
	case *minic.IndexExpr:
		lpos := lhs.NodePos()
		tgt := c.compileIndexTarget(lhs)
		return func(m *machine, fr *cframe) (Value, error) {
			if err := m.step(pos); err != nil {
				return Value{}, err
			}
			rhs, err := rhsC(m, fr)
			if err != nil {
				return Value{}, err
			}
			buf, i, err := tgt(m, fr)
			if err != nil {
				return Value{}, err
			}
			var old Value
			if compound {
				old, err = m.loadElem(buf, i, lpos)
				if err != nil {
					return Value{}, err
				}
			}
			nv, err := m.applyCompound(op, old, rhs, pos)
			if err != nil {
				return Value{}, err
			}
			if err := m.storeElem(buf, i, nv, lpos); err != nil {
				return Value{}, err
			}
			return nv, nil
		}
	}
	node := a.LHS
	return func(m *machine, fr *cframe) (Value, error) {
		if err := m.step(pos); err != nil {
			return Value{}, err
		}
		if _, err := rhsC(m, fr); err != nil {
			return Value{}, err
		}
		return Value{}, m.errf(pos, "invalid assignment target %T", node)
	}
}

func (c *compiler) compileIncDec(x *minic.IncDecExpr) cexpr {
	pos := x.NodePos()
	delta := int64(1)
	if x.Op == minic.TokMinusMinus {
		delta = -1
	}
	switch t := x.X.(type) {
	case *minic.Ident:
		tpos := t.NodePos()
		slot, ok := c.lookup(t.Name)
		if !ok {
			name := t.Name
			return func(m *machine, fr *cframe) (Value, error) {
				if err := m.step(pos); err != nil {
					return Value{}, err
				}
				return Value{}, m.errf(tpos, "undefined variable %q", name)
			}
		}
		return func(m *machine, fr *cframe) (Value, error) {
			if err := m.step(pos); err != nil {
				return Value{}, err
			}
			return m.incDecCell(&fr.slots[slot], delta, tpos) // postfix semantics
		}
	case *minic.IndexExpr:
		tpos := t.NodePos()
		tgt := c.compileIndexTarget(t)
		return func(m *machine, fr *cframe) (Value, error) {
			if err := m.step(pos); err != nil {
				return Value{}, err
			}
			buf, i, err := tgt(m, fr)
			if err != nil {
				return Value{}, err
			}
			old, err := m.loadElem(buf, i, tpos)
			if err != nil {
				return Value{}, err
			}
			nv := m.incDecElemValue(old, delta)
			if err := m.storeElem(buf, i, nv, tpos); err != nil {
				return Value{}, err
			}
			return old, nil
		}
	}
	node := x.X
	return func(m *machine, fr *cframe) (Value, error) {
		if err := m.step(pos); err != nil {
			return Value{}, err
		}
		return Value{}, m.errf(pos, "invalid ++/-- target %T", node)
	}
}

func (c *compiler) compileCall(call *minic.CallExpr) cexpr {
	pos := call.NodePos()
	// printf-family builtins capture output without evaluating format
	// strings for cost.
	if call.Fun == "printf" {
		var argCs []cexpr
		for _, a := range call.Args {
			if _, ok := a.(*minic.StringLit); ok {
				continue // format strings carry no data we need to capture
			}
			argCs = append(argCs, c.compileExpr(a))
		}
		return func(m *machine, fr *cframe) (Value, error) {
			if err := m.step(pos); err != nil {
				return Value{}, err
			}
			var parts []string
			for _, ac := range argCs {
				v, err := ac(m, fr)
				if err != nil {
					return Value{}, err
				}
				parts = append(parts, v.String())
			}
			if len(parts) > 0 {
				m.output = append(m.output, sprintParts(parts))
			}
			return Value{K: KVoid}, nil
		}
	}
	argCs := make([]cexpr, len(call.Args))
	for i, a := range call.Args {
		argCs[i] = c.compileExpr(a)
	}
	if bi, ok := builtins[call.Fun]; ok {
		name := call.Fun
		return func(m *machine, fr *cframe) (Value, error) {
			if err := m.step(pos); err != nil {
				return Value{}, err
			}
			args := make([]Value, len(argCs))
			for i, ac := range argCs {
				v, err := ac(m, fr)
				if err != nil {
					return Value{}, err
				}
				args[i] = v
			}
			return m.callBuiltin(name, bi, args, pos)
		}
	}
	callee := c.prog.Func(call.Fun)
	if callee == nil {
		name := call.Fun
		return func(m *machine, fr *cframe) (Value, error) {
			if err := m.step(pos); err != nil {
				return Value{}, err
			}
			return Value{}, m.errf(pos, "call to undefined function %q", name)
		}
	}
	cf := c.funcs[callee.Name]
	return func(m *machine, fr *cframe) (Value, error) {
		if err := m.step(pos); err != nil {
			return Value{}, err
		}
		args := make([]Value, len(argCs))
		for i, ac := range argCs {
			v, err := ac(m, fr)
			if err != nil {
				return Value{}, err
			}
			args[i] = v
		}
		return m.callCompiled(cf, args, pos)
	}
}

// callCompiled invokes a lowered function, mirroring machine.call.
func (m *machine) callCompiled(cf *compiledFunc, args []Value, pos minic.Pos) (Value, error) {
	fn := cf.decl
	if len(args) != len(fn.Params) {
		return Value{}, m.errf(pos, "call %s: %d args, want %d", fn.Name, len(args), len(fn.Params))
	}
	m.charge(CostCall)
	fr := &cframe{slots: make([]Value, cf.nslots)}
	for i, p := range fn.Params {
		coerced, err := m.coerce(args[i], p.Type, pos)
		if err != nil {
			return Value{}, m.errf(pos, "call %s param %s: %v", fn.Name, p.Name, err)
		}
		fr.slots[i] = coerced // params occupy the first slots in order
	}

	watching := fn.Name == m.watch
	var prevParamOf map[*Buffer]string
	if watching {
		prevParamOf = m.enterWatch(fn.Params, args)
	}

	ctl, err := runStmts(m, fr, cf.body)
	if watching {
		m.exitWatch(prevParamOf)
	}
	if err != nil {
		return Value{}, err
	}
	if ctl == ctrlBreak || ctl == ctrlContinue {
		return Value{}, m.errf(fn.NodePos(), "break/continue escaped function %s", fn.Name)
	}
	return fr.ret, nil
}
