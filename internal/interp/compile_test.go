package interp_test

// Differential tests between the compiled slot-frame fast path and the
// reference tree-walking evaluator. The contract is bit-for-bit
// equivalence: identical return values, step counts, captured output,
// cycle/FLOP accounting (float64 accumulation order included), loop
// profiles, memory traffic, alias observations, final buffer contents,
// and error messages. CI runs this file under -race (scripts/ci.sh).

import (
	"reflect"
	"testing"

	"psaflow/internal/bench"
	"psaflow/internal/interp"
	"psaflow/internal/minic"
)

// runBoth executes prog twice — compiled and tree-walk — with args from
// the factory (fresh buffers per call, so runs cannot observe each other's
// writes) and returns both results.
func runBoth(t *testing.T, prog *minic.Program, entry, watch string, mkArgs func() []interp.Value) (compiled, walked *interp.Result) {
	t.Helper()
	var err error
	compiled, err = interp.Run(prog, interp.Config{Entry: entry, Args: mkArgs(), Watch: watch})
	if err != nil {
		t.Fatalf("compiled run: %v", err)
	}
	walked, err = interp.Run(prog, interp.Config{Entry: entry, Args: mkArgs(), Watch: watch, TreeWalk: true})
	if err != nil {
		t.Fatalf("tree-walk run: %v", err)
	}
	return compiled, walked
}

// assertResultsEqual checks the full observable surface of two results.
func assertResultsEqual(t *testing.T, name string, compiled, walked *interp.Result) {
	t.Helper()
	if compiled.Ret != walked.Ret {
		t.Errorf("%s: Ret compiled=%v walked=%v", name, compiled.Ret, walked.Ret)
	}
	if compiled.Steps != walked.Steps {
		t.Errorf("%s: Steps compiled=%d walked=%d", name, compiled.Steps, walked.Steps)
	}
	if !reflect.DeepEqual(compiled.Output, walked.Output) {
		t.Errorf("%s: Output compiled=%v walked=%v", name, compiled.Output, walked.Output)
	}
	cp, wp := compiled.Prof, walked.Prof
	if cp.Cycles != wp.Cycles {
		t.Errorf("%s: Cycles compiled=%v walked=%v", name, cp.Cycles, wp.Cycles)
	}
	if cp.Flops != wp.Flops || cp.IntOps != wp.IntOps {
		t.Errorf("%s: ops compiled=(%d flops, %d int) walked=(%d flops, %d int)",
			name, cp.Flops, cp.IntOps, wp.Flops, wp.IntOps)
	}
	if cp.LoadBytes != wp.LoadBytes || cp.StoreBytes != wp.StoreBytes {
		t.Errorf("%s: traffic compiled=(%d in, %d out) walked=(%d in, %d out)",
			name, cp.LoadBytes, cp.StoreBytes, wp.LoadBytes, wp.StoreBytes)
	}
	if cp.WatchFunc != wp.WatchFunc || cp.WatchCalls != wp.WatchCalls ||
		cp.WatchCycles != wp.WatchCycles || cp.WatchFlops != wp.WatchFlops ||
		cp.WatchLoadBytes != wp.WatchLoadBytes || cp.WatchStoreBytes != wp.WatchStoreBytes ||
		cp.WatchSpecialFlops != wp.WatchSpecialFlops {
		t.Errorf("%s: watch measurements differ:\ncompiled: %+v\nwalked:   %+v", name, *cp, *wp)
	}
	if !reflect.DeepEqual(cp.Loops, wp.Loops) {
		t.Errorf("%s: loop profiles differ:\ncompiled: %v\nwalked:   %v", name, cp.Loops, wp.Loops)
	}
	if !reflect.DeepEqual(cp.ParamTraffic, wp.ParamTraffic) {
		t.Errorf("%s: param traffic differs:\ncompiled: %v\nwalked:   %v", name, cp.ParamTraffic, wp.ParamTraffic)
	}
	if len(cp.Bindings) != len(wp.Bindings) {
		t.Errorf("%s: bindings count compiled=%d walked=%d", name, len(cp.Bindings), len(wp.Bindings))
	}
	if !reflect.DeepEqual(cp.AliasPairs(), wp.AliasPairs()) {
		t.Errorf("%s: alias pairs compiled=%v walked=%v", name, cp.AliasPairs(), wp.AliasPairs())
	}
}

// bufferArgs extracts the buffer-valued arguments for content comparison.
func bufferArgs(args []interp.Value) []*interp.Buffer {
	var out []*interp.Buffer
	for _, a := range args {
		if a.K == interp.KBuf {
			out = append(out, a.Buf)
		}
	}
	return out
}

// TestCompiledTreeWalkEquivalenceBenchmarks pushes all five bundled
// benchmark applications through both execution paths, watched on their
// entry, and asserts the entire observable surface matches — including
// the final contents of every argument buffer.
func TestCompiledTreeWalkEquivalenceBenchmarks(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog := b.Parse()
			cArgs := b.MakeArgs()
			wArgs := b.MakeArgs()
			compiled, err := interp.Run(prog, interp.Config{Entry: b.Entry, Args: cArgs})
			if err != nil {
				t.Fatalf("compiled run: %v", err)
			}
			walked, err := interp.Run(prog, interp.Config{Entry: b.Entry, Args: wArgs, TreeWalk: true})
			if err != nil {
				t.Fatalf("tree-walk run: %v", err)
			}
			assertResultsEqual(t, b.Name, compiled, walked)
			cBufs, wBufs := bufferArgs(cArgs), bufferArgs(wArgs)
			for i := range cBufs {
				if !reflect.DeepEqual(cBufs[i].I, wBufs[i].I) || !reflect.DeepEqual(cBufs[i].F, wBufs[i].F) {
					t.Errorf("%s: final contents of buffer %s differ between paths", b.Name, cBufs[i].Name)
				}
			}
		})
	}
}

// TestCompiledTreeWalkEquivalenceErrors asserts the two paths fail with
// byte-identical error messages, including positions, and that deferred
// compile-time-unresolvable constructs only fail when actually executed.
func TestCompiledTreeWalkEquivalenceErrors(t *testing.T) {
	mkBuf := func() []interp.Value {
		return []interp.Value{interp.BufVal(interp.NewFloatBuffer("a", minic.Double, make([]float64, 3)))}
	}
	none := func() []interp.Value { return nil }
	cases := []struct {
		name string
		src  string
		args func() []interp.Value
		max  int64
	}{
		{"div-zero", `int f() { return 1 / 0; }`, none, 0},
		{"mod-zero", `int f() { return 1 % 0; }`, none, 0},
		{"fdiv-zero", `double f() { return 1.0 / 0.0; }`, none, 0},
		{"undef-var", `int f() { return x; }`, none, 0},
		{"undef-var-assign", `int f() { x = 3; return 0; }`, none, 0},
		{"undef-fn", `int f() { return g(); }`, none, 0},
		{"oob-high", `void f(double *a) { a[5] = 1.0; }`, mkBuf, 0},
		{"oob-low", `void f(double *a) { a[-1] = 1.0; }`, mkBuf, 0},
		{"builtin-arity", `int f() { return sqrt(1.0, 2.0); }`, none, 0},
		{"index-non-array", `int f() { int x = 1; return x[0]; }`, none, 0},
		{"step-budget", `void f() { while (true) { } }`, none, 10000},
		{"dead-undef-ok", `int f() { if (false) { return zzz; } return 7; }`, none, 0},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			prog := minic.MustParse(c.src)
			_, cErr := prog, error(nil)
			_ = cErr
			rc, errC := interp.Run(prog, interp.Config{Entry: "f", Args: c.args(), MaxSteps: c.max})
			rw, errW := interp.Run(prog, interp.Config{Entry: "f", Args: c.args(), MaxSteps: c.max, TreeWalk: true})
			switch {
			case (errC == nil) != (errW == nil):
				t.Fatalf("error presence differs: compiled=%v walked=%v", errC, errW)
			case errC != nil && errC.Error() != errW.Error():
				t.Fatalf("error messages differ:\ncompiled: %v\nwalked:   %v", errC, errW)
			case errC == nil:
				assertResultsEqual(t, c.name, rc, rw)
			}
		})
	}
}

// TestShadowingAcrossNestedAndForInitScopes is the regression for
// frame.lookup's innermost-first resolution: the compiled resolver must
// bind every reference to the same declaration the scope-stack walk finds,
// across nested blocks and for-init scopes, in both execution paths.
func TestShadowingAcrossNestedAndForInitScopes(t *testing.T) {
	src := `
int f() {
    int x = 1;
    int i = 100;
    int seen = 0;
    {
        int x = 2;
        {
            int x = 3;
            x += 10;
            seen += x;
        }
        x += 1;
        seen += x * 100;
    }
    for (int i = 0; i < 3; i++) {
        int x = 50;
        x += i;
        seen += x * 10000;
    }
    for (int i = 5; i < 6; i++) {
        seen += i * 1000000;
    }
    return seen * 10 + x + i / 100;
}
`
	prog := minic.MustParse(src)
	none := func() []interp.Value { return nil }
	compiled, walked := runBoth(t, prog, "f", "", none)
	assertResultsEqual(t, "shadowing", compiled, walked)
	// seen = 13 + 300 + (50+51+52)*10000 + 5*1000000 = 6530313;
	// outer x and i survive untouched.
	if want := int64(6530313*10 + 1 + 1); compiled.Ret.AsInt() != want {
		t.Errorf("shadowing result = %d, want %d", compiled.Ret.AsInt(), want)
	}
}

// TestDeclInitSeesOuterBinding pins the declaration-order rule the
// compiler must preserve: an initializer referencing the declared name
// reads the outer (shadowed) binding, because the binding becomes visible
// only after its initializer evaluates.
func TestDeclInitSeesOuterBinding(t *testing.T) {
	src := `
int f() {
    int x = 2;
    {
        int x = x + 40;
        return x;
    }
}
`
	prog := minic.MustParse(src)
	none := func() []interp.Value { return nil }
	compiled, walked := runBoth(t, prog, "f", "", none)
	assertResultsEqual(t, "decl-init", compiled, walked)
	if compiled.Ret.AsInt() != 42 {
		t.Errorf("inner x = %d, want 42 (init must read outer binding)", compiled.Ret.AsInt())
	}
}

// TestCompiledWatchEquivalence watches a non-entry kernel with aliased
// buffers, checking watch accounting and alias detection agree when the
// watched function is entered mid-call-graph.
func TestCompiledWatchEquivalence(t *testing.T) {
	src := `
void kernel(int n, double *a, double *b) {
    for (int i = 0; i < n; i++) {
        a[i] += b[i] * 2.0;
    }
}
void main_fn(int n, double *a, double *b) {
    kernel(n, a, b);
    kernel(n, a, a);
}
`
	prog := minic.MustParse(src)
	mkArgs := func() []interp.Value {
		a := interp.NewFloatBuffer("a", minic.Double, []float64{1, 2, 3, 4})
		b := interp.NewFloatBuffer("b", minic.Double, []float64{5, 6, 7, 8})
		return []interp.Value{interp.IntVal(4), interp.BufVal(a), interp.BufVal(b)}
	}
	compiled, walked := runBoth(t, prog, "main_fn", "kernel", mkArgs)
	assertResultsEqual(t, "watch", compiled, walked)
	if pairs := compiled.Prof.AliasPairs(); len(pairs) != 1 {
		t.Errorf("alias pairs = %v, want exactly the a/b self-alias", pairs)
	}
}
