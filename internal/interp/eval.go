package interp

import (
	"fmt"

	"psaflow/internal/minic"
)

func (m *machine) eval(fr *frame, e minic.Expr) (Value, error) {
	if err := m.step(e.NodePos()); err != nil {
		return Value{}, err
	}
	switch v := e.(type) {
	case *minic.IntLit:
		return IntVal(v.Val), nil
	case *minic.FloatLit:
		if v.Single {
			return FloatVal(v.Val), nil
		}
		return DoubleVal(v.Val), nil
	case *minic.BoolLit:
		return BoolVal(v.Val), nil
	case *minic.StringLit:
		return Value{K: KVoid}, nil // only meaningful inside printf-family calls
	case *minic.Ident:
		cell := fr.lookup(v.Name)
		if cell == nil {
			return Value{}, m.errf(v.NodePos(), "undefined variable %q", v.Name)
		}
		m.charge(CostLocal)
		return *cell, nil
	case *minic.UnaryExpr:
		x, err := m.eval(fr, v.X)
		if err != nil {
			return Value{}, err
		}
		if v.Op == minic.TokNot {
			m.charge(CostLogic)
			return BoolVal(!x.AsBool()), nil
		}
		switch x.K {
		case KInt:
			m.charge(CostAddSub)
			return IntVal(-x.I), nil
		case KFloat:
			m.chargeFlop(CostAddSub, 1)
			return FloatVal(-x.F), nil
		default:
			m.chargeFlop(CostAddSub, 1)
			return DoubleVal(-x.AsFloat()), nil
		}
	case *minic.BinaryExpr:
		return m.evalBinary(fr, v)
	case *minic.AssignExpr:
		return m.evalAssign(fr, v)
	case *minic.IncDecExpr:
		return m.evalIncDec(fr, v)
	case *minic.IndexExpr:
		buf, idx, err := m.evalIndexTarget(fr, v)
		if err != nil {
			return Value{}, err
		}
		return m.loadElem(buf, idx, v.NodePos())
	case *minic.CallExpr:
		return m.evalCall(fr, v)
	case *minic.CastExpr:
		x, err := m.eval(fr, v.X)
		if err != nil {
			return Value{}, err
		}
		m.charge(CostCast)
		return m.coerce(x, v.To, v.NodePos())
	}
	return Value{}, m.errf(e.NodePos(), "unhandled expression %T", e)
}

// numericResult applies C-style promotion: double > float > int.
func promote(a, b Value) ValKind {
	if a.K == KDouble || b.K == KDouble {
		return KDouble
	}
	if a.K == KFloat || b.K == KFloat {
		return KFloat
	}
	return KInt
}

func makeNum(k ValKind, f float64) Value {
	switch k {
	case KInt:
		return IntVal(int64(f))
	case KFloat:
		return FloatVal(f)
	default:
		return DoubleVal(f)
	}
}

func (m *machine) evalBinary(fr *frame, b *minic.BinaryExpr) (Value, error) {
	// Short-circuit logical operators.
	if b.Op == minic.TokAndAnd || b.Op == minic.TokOrOr {
		l, err := m.eval(fr, b.L)
		if err != nil {
			return Value{}, err
		}
		m.charge(CostLogic)
		if b.Op == minic.TokAndAnd && !l.AsBool() {
			return BoolVal(false), nil
		}
		if b.Op == minic.TokOrOr && l.AsBool() {
			return BoolVal(true), nil
		}
		r, err := m.eval(fr, b.R)
		if err != nil {
			return Value{}, err
		}
		return BoolVal(r.AsBool()), nil
	}

	l, err := m.eval(fr, b.L)
	if err != nil {
		return Value{}, err
	}
	r, err := m.eval(fr, b.R)
	if err != nil {
		return Value{}, err
	}
	if !l.IsNumeric() || !r.IsNumeric() {
		return Value{}, m.errf(b.NodePos(), "non-numeric operands to %s", b.Op)
	}
	k := promote(l, r)

	switch b.Op {
	case minic.TokLt, minic.TokGt, minic.TokLe, minic.TokGe, minic.TokEqEq, minic.TokNe:
		m.charge(CostCmp)
		lf, rf := l.AsFloat(), r.AsFloat()
		var res bool
		switch b.Op {
		case minic.TokLt:
			res = lf < rf
		case minic.TokGt:
			res = lf > rf
		case minic.TokLe:
			res = lf <= rf
		case minic.TokGe:
			res = lf >= rf
		case minic.TokEqEq:
			res = lf == rf
		case minic.TokNe:
			res = lf != rf
		}
		return BoolVal(res), nil
	case minic.TokPercent:
		if l.K != KInt || r.K != KInt {
			return Value{}, m.errf(b.NodePos(), "%% requires int operands")
		}
		if r.I == 0 {
			return Value{}, m.errf(b.NodePos(), "modulo by zero")
		}
		m.charge(CostDivInt)
		m.prof.IntOps++
		return IntVal(l.I % r.I), nil
	}

	if k == KInt {
		m.prof.IntOps++
		li, ri := l.AsInt(), r.AsInt()
		switch b.Op {
		case minic.TokPlus:
			m.charge(CostAddSub)
			return IntVal(li + ri), nil
		case minic.TokMinus:
			m.charge(CostAddSub)
			return IntVal(li - ri), nil
		case minic.TokStar:
			m.charge(CostMul)
			return IntVal(li * ri), nil
		case minic.TokSlash:
			if ri == 0 {
				return Value{}, m.errf(b.NodePos(), "integer division by zero")
			}
			m.charge(CostDivInt)
			return IntVal(li / ri), nil
		}
	} else {
		lf, rf := l.AsFloat(), r.AsFloat()
		switch b.Op {
		case minic.TokPlus:
			m.chargeFlop(CostAddSub, 1)
			return makeNum(k, lf+rf), nil
		case minic.TokMinus:
			m.chargeFlop(CostAddSub, 1)
			return makeNum(k, lf-rf), nil
		case minic.TokStar:
			m.chargeFlop(CostMul, 1)
			return makeNum(k, lf*rf), nil
		case minic.TokSlash:
			if rf == 0 {
				return Value{}, m.errf(b.NodePos(), "floating division by zero")
			}
			m.chargeFlop(CostDivF, 1)
			return makeNum(k, lf/rf), nil
		}
	}
	return Value{}, m.errf(b.NodePos(), "unhandled binary operator %s", b.Op)
}

// evalIndexTarget resolves base buffer and index for an IndexExpr.
func (m *machine) evalIndexTarget(fr *frame, ix *minic.IndexExpr) (*Buffer, int64, error) {
	base, err := m.eval(fr, ix.Base)
	if err != nil {
		return nil, 0, err
	}
	if base.K != KBuf {
		return nil, 0, m.errf(ix.NodePos(), "indexing non-array value (%s)", base.K)
	}
	idx, err := m.eval(fr, ix.Index)
	if err != nil {
		return nil, 0, err
	}
	i := idx.AsInt()
	if i < 0 || i >= int64(base.Buf.Len()) {
		return nil, 0, m.errf(ix.NodePos(), "index %d out of range [0,%d) for %s", i, base.Buf.Len(), base.Buf.Name)
	}
	return base.Buf, i, nil
}

func (m *machine) loadElem(buf *Buffer, i int64, pos minic.Pos) (Value, error) {
	m.charge(CostLoad)
	nbytes := buf.ElemBytes()
	m.prof.LoadBytes += nbytes
	if m.watchDepth > 0 {
		m.prof.WatchLoadBytes += nbytes
		if pname, ok := m.paramOf[buf]; ok {
			t := m.prof.ParamTraffic[pname]
			t.BytesIn += nbytes
			t.ElemReads++
		}
	}
	switch buf.Kind {
	case minic.Int:
		return IntVal(buf.I[i]), nil
	case minic.Float:
		return FloatVal(buf.F[i]), nil
	default:
		return DoubleVal(buf.F[i]), nil
	}
}

func (m *machine) storeElem(buf *Buffer, i int64, v Value, pos minic.Pos) error {
	m.charge(CostStore)
	nbytes := buf.ElemBytes()
	m.prof.StoreBytes += nbytes
	if m.watchDepth > 0 {
		m.prof.WatchStoreBytes += nbytes
		if pname, ok := m.paramOf[buf]; ok {
			t := m.prof.ParamTraffic[pname]
			t.BytesOut += nbytes
			t.ElemWrites++
		}
	}
	switch buf.Kind {
	case minic.Int:
		buf.I[i] = v.AsInt()
	case minic.Float:
		buf.F[i] = float64(float32(v.AsFloat()))
	default:
		buf.F[i] = v.AsFloat()
	}
	return nil
}

func (m *machine) evalAssign(fr *frame, a *minic.AssignExpr) (Value, error) {
	rhs, err := m.eval(fr, a.RHS)
	if err != nil {
		return Value{}, err
	}
	apply := func(old Value) (Value, error) {
		if a.Op == minic.TokAssign {
			return rhs, nil
		}
		if !old.IsNumeric() || !rhs.IsNumeric() {
			return Value{}, m.errf(a.NodePos(), "non-numeric compound assignment")
		}
		k := promote(old, rhs)
		lf, rf := old.AsFloat(), rhs.AsFloat()
		var res float64
		switch a.Op {
		case minic.TokPlusEq:
			res = lf + rf
		case minic.TokMinusEq:
			res = lf - rf
		case minic.TokStarEq:
			res = lf * rf
		case minic.TokSlashEq:
			if rf == 0 {
				return Value{}, m.errf(a.NodePos(), "division by zero in /=")
			}
			res = lf / rf
		default:
			return Value{}, m.errf(a.NodePos(), "unhandled assign op %s", a.Op)
		}
		cost := CostAddSub
		if a.Op == minic.TokStarEq {
			cost = CostMul
		} else if a.Op == minic.TokSlashEq {
			cost = CostDivF
		}
		if k == KInt {
			m.charge(cost)
			m.prof.IntOps++
		} else {
			m.chargeFlop(cost, 1)
		}
		return makeNum(k, res), nil
	}

	switch lhs := a.LHS.(type) {
	case *minic.Ident:
		cell := fr.lookup(lhs.Name)
		if cell == nil {
			return Value{}, m.errf(lhs.NodePos(), "undefined variable %q", lhs.Name)
		}
		var old Value
		if a.Op != minic.TokAssign {
			m.charge(CostLocal)
			old = *cell
		}
		nv, err := apply(old)
		if err != nil {
			return Value{}, err
		}
		// Preserve the declared scalar kind of the cell.
		switch cell.K {
		case KInt:
			*cell = IntVal(nv.AsInt())
		case KFloat:
			*cell = FloatVal(nv.AsFloat())
		case KDouble:
			*cell = DoubleVal(nv.AsFloat())
		case KBool:
			*cell = BoolVal(nv.AsBool())
		default:
			return Value{}, m.errf(lhs.NodePos(), "cannot assign to %s", cell.K)
		}
		m.charge(CostLocal)
		return *cell, nil
	case *minic.IndexExpr:
		buf, i, err := m.evalIndexTarget(fr, lhs)
		if err != nil {
			return Value{}, err
		}
		var old Value
		if a.Op != minic.TokAssign {
			old, err = m.loadElem(buf, i, lhs.NodePos())
			if err != nil {
				return Value{}, err
			}
		}
		nv, err := apply(old)
		if err != nil {
			return Value{}, err
		}
		if err := m.storeElem(buf, i, nv, lhs.NodePos()); err != nil {
			return Value{}, err
		}
		return nv, nil
	}
	return Value{}, m.errf(a.NodePos(), "invalid assignment target %T", a.LHS)
}

func (m *machine) evalIncDec(fr *frame, x *minic.IncDecExpr) (Value, error) {
	delta := int64(1)
	if x.Op == minic.TokMinusMinus {
		delta = -1
	}
	switch t := x.X.(type) {
	case *minic.Ident:
		cell := fr.lookup(t.Name)
		if cell == nil {
			return Value{}, m.errf(t.NodePos(), "undefined variable %q", t.Name)
		}
		old := *cell
		switch cell.K {
		case KInt:
			m.charge(CostAddSub)
			m.prof.IntOps++
			*cell = IntVal(cell.I + delta)
		case KFloat:
			m.chargeFlop(CostAddSub, 1)
			*cell = FloatVal(cell.F + float64(delta))
		case KDouble:
			m.chargeFlop(CostAddSub, 1)
			*cell = DoubleVal(cell.F + float64(delta))
		default:
			return Value{}, m.errf(t.NodePos(), "cannot ++/-- a %s", cell.K)
		}
		return old, nil // postfix semantics
	case *minic.IndexExpr:
		buf, i, err := m.evalIndexTarget(fr, t)
		if err != nil {
			return Value{}, err
		}
		old, err := m.loadElem(buf, i, t.NodePos())
		if err != nil {
			return Value{}, err
		}
		var nv Value
		if old.K == KInt {
			m.charge(CostAddSub)
			m.prof.IntOps++
			nv = IntVal(old.I + delta)
		} else {
			m.chargeFlop(CostAddSub, 1)
			nv = makeNum(old.K, old.F+float64(delta))
		}
		if err := m.storeElem(buf, i, nv, t.NodePos()); err != nil {
			return Value{}, err
		}
		return old, nil
	}
	return Value{}, m.errf(x.NodePos(), "invalid ++/-- target %T", x.X)
}

func (m *machine) evalCall(fr *frame, c *minic.CallExpr) (Value, error) {
	// printf-family builtins capture output without evaluating format
	// strings for cost.
	if c.Fun == "printf" {
		return m.evalPrintf(fr, c)
	}
	if bi, ok := builtins[c.Fun]; ok {
		args := make([]Value, len(c.Args))
		for i, a := range c.Args {
			v, err := m.eval(fr, a)
			if err != nil {
				return Value{}, err
			}
			args[i] = v
		}
		if len(args) != bi.arity {
			return Value{}, m.errf(c.NodePos(), "%s: %d args, want %d", c.Fun, len(args), bi.arity)
		}
		m.chargeFlop(bi.cost, bi.flops)
		if bi.flops > 1 && m.watchDepth > 0 {
			m.prof.WatchSpecialFlops += bi.flops
		}
		return bi.fn(args), nil
	}
	callee := m.prog.Func(c.Fun)
	if callee == nil {
		return Value{}, m.errf(c.NodePos(), "call to undefined function %q", c.Fun)
	}
	args := make([]Value, len(c.Args))
	for i, a := range c.Args {
		v, err := m.eval(fr, a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	return m.call(callee, args, c.NodePos())
}

func (m *machine) evalPrintf(fr *frame, c *minic.CallExpr) (Value, error) {
	var parts []string
	for _, a := range c.Args {
		if _, ok := a.(*minic.StringLit); ok {
			continue // format strings carry no data we need to capture
		}
		v, err := m.eval(fr, a)
		if err != nil {
			return Value{}, err
		}
		parts = append(parts, v.String())
	}
	if len(parts) > 0 {
		m.output = append(m.output, fmt.Sprint(parts))
	}
	return Value{K: KVoid}, nil
}
