package interp

import (
	"psaflow/internal/minic"
)

// The tree-walking evaluator. Since the compiled fast path (compile.go)
// became the default, this walker is kept as the semantic reference the
// equivalence suite checks the compiler against; all value semantics and
// cost charging live in the shared helpers of apply.go.

func (m *machine) eval(fr *frame, e minic.Expr) (Value, error) {
	if err := m.step(e.NodePos()); err != nil {
		return Value{}, err
	}
	switch v := e.(type) {
	case *minic.IntLit:
		return IntVal(v.Val), nil
	case *minic.FloatLit:
		if v.Single {
			return FloatVal(v.Val), nil
		}
		return DoubleVal(v.Val), nil
	case *minic.BoolLit:
		return BoolVal(v.Val), nil
	case *minic.StringLit:
		return Value{K: KVoid}, nil // only meaningful inside printf-family calls
	case *minic.Ident:
		cell := fr.lookup(v.Name)
		if cell == nil {
			return Value{}, m.errf(v.NodePos(), "undefined variable %q", v.Name)
		}
		m.charge(CostLocal)
		return *cell, nil
	case *minic.UnaryExpr:
		x, err := m.eval(fr, v.X)
		if err != nil {
			return Value{}, err
		}
		return m.applyUnary(v.Op, x), nil
	case *minic.BinaryExpr:
		return m.evalBinary(fr, v)
	case *minic.AssignExpr:
		return m.evalAssign(fr, v)
	case *minic.IncDecExpr:
		return m.evalIncDec(fr, v)
	case *minic.IndexExpr:
		buf, idx, err := m.evalIndexTarget(fr, v)
		if err != nil {
			return Value{}, err
		}
		return m.loadElem(buf, idx, v.NodePos())
	case *minic.CallExpr:
		return m.evalCall(fr, v)
	case *minic.CastExpr:
		x, err := m.eval(fr, v.X)
		if err != nil {
			return Value{}, err
		}
		m.charge(CostCast)
		return m.coerce(x, v.To, v.NodePos())
	}
	return Value{}, m.errf(e.NodePos(), "unhandled expression %T", e)
}

// numericResult applies C-style promotion: double > float > int.
func promote(a, b Value) ValKind {
	if a.K == KDouble || b.K == KDouble {
		return KDouble
	}
	if a.K == KFloat || b.K == KFloat {
		return KFloat
	}
	return KInt
}

func makeNum(k ValKind, f float64) Value {
	switch k {
	case KInt:
		return IntVal(int64(f))
	case KFloat:
		return FloatVal(f)
	default:
		return DoubleVal(f)
	}
}

func (m *machine) evalBinary(fr *frame, b *minic.BinaryExpr) (Value, error) {
	// Short-circuit logical operators.
	if b.Op == minic.TokAndAnd || b.Op == minic.TokOrOr {
		l, err := m.eval(fr, b.L)
		if err != nil {
			return Value{}, err
		}
		m.charge(CostLogic)
		if b.Op == minic.TokAndAnd && !l.AsBool() {
			return BoolVal(false), nil
		}
		if b.Op == minic.TokOrOr && l.AsBool() {
			return BoolVal(true), nil
		}
		r, err := m.eval(fr, b.R)
		if err != nil {
			return Value{}, err
		}
		return BoolVal(r.AsBool()), nil
	}

	l, err := m.eval(fr, b.L)
	if err != nil {
		return Value{}, err
	}
	r, err := m.eval(fr, b.R)
	if err != nil {
		return Value{}, err
	}
	return m.applyBinary(b.Op, l, r, b.NodePos())
}

// evalIndexTarget resolves base buffer and index for an IndexExpr.
func (m *machine) evalIndexTarget(fr *frame, ix *minic.IndexExpr) (*Buffer, int64, error) {
	base, err := m.eval(fr, ix.Base)
	if err != nil {
		return nil, 0, err
	}
	buf, err := m.bufOf(base, ix.NodePos())
	if err != nil {
		return nil, 0, err
	}
	idx, err := m.eval(fr, ix.Index)
	if err != nil {
		return nil, 0, err
	}
	i, err := m.boundsOf(buf, idx, ix.NodePos())
	if err != nil {
		return nil, 0, err
	}
	return buf, i, nil
}

func (m *machine) loadElem(buf *Buffer, i int64, pos minic.Pos) (Value, error) {
	m.charge(CostLoad)
	nbytes := buf.ElemBytes()
	m.prof.LoadBytes += nbytes
	if m.watchDepth > 0 {
		if t := m.trafficOf(buf); t != nil {
			t.BytesIn += nbytes
			t.ElemReads++
		}
	}
	switch buf.Kind {
	case minic.Int:
		return IntVal(buf.I[i]), nil
	case minic.Float:
		return FloatVal(buf.F[i]), nil
	default:
		return DoubleVal(buf.F[i]), nil
	}
}

func (m *machine) storeElem(buf *Buffer, i int64, v Value, pos minic.Pos) error {
	m.charge(CostStore)
	nbytes := buf.ElemBytes()
	m.prof.StoreBytes += nbytes
	if m.watchDepth > 0 {
		if t := m.trafficOf(buf); t != nil {
			t.BytesOut += nbytes
			t.ElemWrites++
		}
	}
	switch buf.Kind {
	case minic.Int:
		buf.I[i] = v.AsInt()
	case minic.Float:
		buf.F[i] = float64(float32(v.AsFloat()))
	default:
		buf.F[i] = v.AsFloat()
	}
	return nil
}

func (m *machine) evalAssign(fr *frame, a *minic.AssignExpr) (Value, error) {
	rhs, err := m.eval(fr, a.RHS)
	if err != nil {
		return Value{}, err
	}

	switch lhs := a.LHS.(type) {
	case *minic.Ident:
		cell := fr.lookup(lhs.Name)
		if cell == nil {
			return Value{}, m.errf(lhs.NodePos(), "undefined variable %q", lhs.Name)
		}
		var old Value
		if a.Op != minic.TokAssign {
			m.charge(CostLocal)
			old = *cell
		}
		nv, err := m.applyCompound(a.Op, old, rhs, a.NodePos())
		if err != nil {
			return Value{}, err
		}
		// Preserve the declared scalar kind of the cell.
		return m.storeScalarCell(cell, nv, lhs.NodePos())
	case *minic.IndexExpr:
		buf, i, err := m.evalIndexTarget(fr, lhs)
		if err != nil {
			return Value{}, err
		}
		var old Value
		if a.Op != minic.TokAssign {
			old, err = m.loadElem(buf, i, lhs.NodePos())
			if err != nil {
				return Value{}, err
			}
		}
		nv, err := m.applyCompound(a.Op, old, rhs, a.NodePos())
		if err != nil {
			return Value{}, err
		}
		if err := m.storeElem(buf, i, nv, lhs.NodePos()); err != nil {
			return Value{}, err
		}
		return nv, nil
	}
	return Value{}, m.errf(a.NodePos(), "invalid assignment target %T", a.LHS)
}

func (m *machine) evalIncDec(fr *frame, x *minic.IncDecExpr) (Value, error) {
	delta := int64(1)
	if x.Op == minic.TokMinusMinus {
		delta = -1
	}
	switch t := x.X.(type) {
	case *minic.Ident:
		cell := fr.lookup(t.Name)
		if cell == nil {
			return Value{}, m.errf(t.NodePos(), "undefined variable %q", t.Name)
		}
		return m.incDecCell(cell, delta, t.NodePos()) // postfix semantics
	case *minic.IndexExpr:
		buf, i, err := m.evalIndexTarget(fr, t)
		if err != nil {
			return Value{}, err
		}
		old, err := m.loadElem(buf, i, t.NodePos())
		if err != nil {
			return Value{}, err
		}
		nv := m.incDecElemValue(old, delta)
		if err := m.storeElem(buf, i, nv, t.NodePos()); err != nil {
			return Value{}, err
		}
		return old, nil
	}
	return Value{}, m.errf(x.NodePos(), "invalid ++/-- target %T", x.X)
}

func (m *machine) evalCall(fr *frame, c *minic.CallExpr) (Value, error) {
	// printf-family builtins capture output without evaluating format
	// strings for cost.
	if c.Fun == "printf" {
		return m.evalPrintf(fr, c)
	}
	if bi, ok := builtins[c.Fun]; ok {
		args := make([]Value, len(c.Args))
		for i, a := range c.Args {
			v, err := m.eval(fr, a)
			if err != nil {
				return Value{}, err
			}
			args[i] = v
		}
		return m.callBuiltin(c.Fun, bi, args, c.NodePos())
	}
	callee := m.prog.Func(c.Fun)
	if callee == nil {
		return Value{}, m.errf(c.NodePos(), "call to undefined function %q", c.Fun)
	}
	args := make([]Value, len(c.Args))
	for i, a := range c.Args {
		v, err := m.eval(fr, a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	return m.call(callee, args, c.NodePos())
}

func (m *machine) evalPrintf(fr *frame, c *minic.CallExpr) (Value, error) {
	var parts []string
	for _, a := range c.Args {
		if _, ok := a.(*minic.StringLit); ok {
			continue // format strings carry no data we need to capture
		}
		v, err := m.eval(fr, a)
		if err != nil {
			return Value{}, err
		}
		parts = append(parts, v.String())
	}
	if len(parts) > 0 {
		m.output = append(m.output, sprintParts(parts))
	}
	return Value{K: KVoid}, nil
}
