package interp

import (
	"context"
	"fmt"
	"time"

	"psaflow/internal/minic"
	"psaflow/internal/query"
)

// RuntimeError is an execution error with a source position.
type RuntimeError struct {
	Pos minic.Pos
	Msg string
}

// Error implements the error interface.
func (e *RuntimeError) Error() string { return fmt.Sprintf("runtime %s: %s", e.Pos, e.Msg) }

// CancelError reports an execution aborted because Config.Ctx was
// cancelled: a job cancellation or deadline in the serving layer, or a CLI
// wall-clock bound. It wraps the context error, so callers can distinguish
// context.Canceled from context.DeadlineExceeded with errors.Is.
type CancelError struct {
	Pos   minic.Pos
	Cause error
}

// Error implements the error interface.
func (e *CancelError) Error() string {
	return fmt.Sprintf("interp %s: execution cancelled: %v", e.Pos, e.Cause)
}

// Unwrap exposes the context error.
func (e *CancelError) Unwrap() error { return e.Cause }

// Counters receives named counter increments describing a run's hot-path
// totals (*telemetry.Recorder satisfies it). The sink must be safe for
// concurrent use when runs execute on parallel branch paths.
type Counters interface {
	Add(name string, delta int64)
}

// Counter names emitted to Config.Counters after each run.
const (
	CounterRuns   = "interp.runs"
	CounterOps    = "interp.ops"    // AST evaluation steps executed
	CounterCycles = "interp.cycles" // virtual cycles charged (rounded)
	// CounterCompileFuncs / CounterCompileNanos describe the compile pass
	// that lowers the AST before execution (bytecode by default, or
	// slot-indexed closures under Config.Closures).
	CounterCompileFuncs = "interp.compile.funcs"
	CounterCompileNanos = "interp.compile.ns"
	// Bytecode engine counters: instructions dispatched, superinstruction
	// (fused) dispatches, and defensive fallbacks to the closure engine.
	CounterBCInstrs    = "interp.bytecode.instructions"
	CounterBCFused     = "interp.bytecode.fused"
	CounterBCFallbacks = "interp.bytecode.fallbacks"
	// Quickening counters: in-place rewrites of hot generic opcodes to
	// type-specialized forms, dispatches served by a quickened form, and
	// deoptimizations back to the generic form on a guard miss.
	CounterBCQuickenRewrites = "interp.bytecode.quicken.rewrites"
	CounterBCQuickenHits     = "interp.bytecode.quicken.hits"
	CounterBCQuickenDeopts   = "interp.bytecode.quicken.deopts"
	// Program-cache counters: lowerings actually performed vs Runs served
	// from an already-lowered (and possibly already-quickened) program.
	CounterBCLowerings = "interp.bytecode.lowerings"
	CounterBCProgHits  = "interp.bytecode.progcache.hits"
)

// Config configures one execution.
type Config struct {
	Entry    string  // entry function name
	Args     []Value // arguments bound to the entry function's parameters
	Watch    string  // function to watch for kernel analyses; defaults to Entry
	MaxSteps int64   // step budget; defaults to 400M
	// Ctx, when non-nil, aborts execution with a CancelError once the
	// context is done. The check runs every cancelCheckInterval loop
	// iterations / statements, so cancellation lands promptly even inside
	// a program that would otherwise spin until the step budget.
	Ctx context.Context
	// Counters, when non-nil, receives the run's op/cycle totals
	// (CounterRuns/CounterOps/CounterCycles) once execution finishes.
	Counters Counters
	// TreeWalk forces the legacy tree-walking evaluator instead of the
	// bytecode fast path. All engines are bit-for-bit equivalent
	// (profiles, outputs, errors); the walker remains as the semantic
	// reference for differential testing.
	TreeWalk bool
	// Closures forces the slot-indexed closure engine (the previous fast
	// path), kept as a second reference oracle for the three-way
	// differential suite and for defensive fallback.
	Closures bool
	// QuickenThreshold is the per-instruction execution count after which
	// the bytecode VM rewrites a generic opcode in place to its
	// type-specialized (quickened) form. 0 selects DefaultQuickenThreshold;
	// negative disables quickening. Quickened execution is bit-for-bit
	// equivalent to generic execution (a guard miss deoptimizes back), so
	// the threshold is purely a performance knob.
	QuickenThreshold int
	// Progs, when non-nil, caches lowered bytecode programs keyed by
	// Fingerprint so repeat Runs of the same program skip lowering and
	// inherit quickened instruction state from earlier runs. The first run
	// of a fingerprint also captures a dispatch trace that mines the
	// superinstruction set used by later lowerings of that program.
	// Requires a nonzero Fingerprint; ignored for the non-bytecode engines.
	Progs *ProgramCache
	// Fingerprint identifies the program for Progs (minic.Fingerprint).
	Fingerprint uint64
}

// Result is the outcome of one execution.
type Result struct {
	Ret    Value
	Prof   *Profile
	Steps  int64
	Output []string // captured by the printf-family builtins
}

const defaultMaxSteps = 400_000_000

type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

type loopInfo struct {
	fn    string
	depth int
}

type machine struct {
	prog     *minic.Program
	prof     *Profile
	steps    int64
	maxSteps int64
	loopInfo map[int]loopInfo
	output   []string

	// Cancellation: done is Ctx.Done() (nil disables the check entirely);
	// cancelTick spaces the channel poll so the hot path pays one counter
	// increment per step() call, not a select.
	ctx        context.Context
	done       <-chan struct{}
	cancelTick uint32

	watch      string
	watchDepth int
	// paramOf maps buffers to the watched function's parameter names for
	// the innermost watched call. watchEpoch changes (to a globally
	// unique value) whenever paramOf does, so buffers can cache their
	// traffic accumulator between map swaps (machine.trafficOf).
	paramOf    map[*Buffer]string
	watchEpoch uint64
	// Outermost-watch baselines: exitWatch folds the run-total deltas
	// accumulated since the matching enterWatch into the Watch* profile
	// counters, so charge/chargeFlop/loadElem/storeElem stay branch-free.
	// specialFlops is the run-wide special-builtin FLOP total backing
	// WatchSpecialFlops the same way Flops backs WatchFlops.
	watchCycBase     float64
	watchFlopBase    int64
	watchLoadBase    int64
	watchStoreBase   int64
	watchSpecialBase int64
	specialFlops     int64

	// Bytecode engine telemetry: instructions dispatched and fused
	// (superinstruction) dispatches this run.
	bcInstrs int64
	bcFused  int64
	// Quickening state: quickenAt is the hot-counter trip point (0
	// disables), trace receives per-pattern dispatch counts when
	// superinstruction mining is active, and the q* totals feed the
	// interp.bytecode.quicken.* counters.
	quickenAt int32
	trace     *DispatchTrace
	qRewrites int64
	qHits     int64
	qDeopts   int64
	// biArgs is the fused-builtin argument scratch (builtins are leaf
	// calls, so one buffer per machine suffices and keeps the argument
	// slice off the heap). Frames themselves recycle through the
	// package-level frameArena.
	biArgs [2]Value
}

// DefaultQuickenThreshold is the hot-counter trip point used when
// Config.QuickenThreshold is 0: low enough that the bench kernels
// quicken within their first loop entries, high enough that one-shot
// straight-line code never pays the rewrite.
const DefaultQuickenThreshold = 64

// Run executes cfg.Entry in prog and returns the result with its profile.
// By default the program is first lowered to slot-indexed closures
// (compile.go); cfg.TreeWalk selects the reference tree-walker instead.
func Run(prog *minic.Program, cfg Config) (*Result, error) {
	entry := prog.Func(cfg.Entry)
	if entry == nil {
		return nil, fmt.Errorf("interp: no function %q", cfg.Entry)
	}
	watch := cfg.Watch
	if watch == "" {
		watch = cfg.Entry
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = defaultMaxSteps
	}
	m := &machine{
		prog:     prog,
		prof:     newProfile(watch),
		maxSteps: maxSteps,
		watch:    watch,
	}
	if cfg.Ctx != nil {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, &CancelError{Pos: entry.NodePos(), Cause: err}
		}
		m.ctx = cfg.Ctx
		m.done = cfg.Ctx.Done()
	}
	var ret Value
	var err error
	var compileNanos int64
	var compiledFuncs int64
	var fallbacks int64
	var progHits int64
	switch {
	case cfg.TreeWalk:
		m.loopInfo = buildLoopInfo(prog)
		ret, err = m.call(entry, cfg.Args, entry.NodePos())
	case cfg.Closures:
		m.loopInfo = buildLoopInfo(prog)
		compileStart := time.Now()
		cp := compileProgram(prog)
		compileNanos = time.Since(compileStart).Nanoseconds()
		compiledFuncs = int64(len(cp.funcs))
		ret, err = m.callCompiled(cp.funcs[cfg.Entry], cfg.Args, entry.NodePos())
	default:
		m.quickenAt = quickenTrip(cfg.QuickenThreshold)
		compileStart := time.Now()
		var bp *bprog
		var lease *progLease
		if cfg.Progs != nil && cfg.Fingerprint != 0 {
			lease = cfg.Progs.lease(cfg.Fingerprint, prog)
			bp = lease.bp
			m.trace = lease.trace
			m.loopInfo = lease.loops
			if !lease.lowered {
				progHits = 1
			}
		} else {
			bp = lowerBytecode(prog, AllFusion)
			if bp != nil {
				m.loopInfo = buildLoopInfo(prog)
			}
		}
		compileNanos = time.Since(compileStart).Nanoseconds()
		if bp != nil {
			compiledFuncs = int64(len(bp.funcs))
			ret, err = m.callBytecode(bp.funcs[cfg.Entry], cfg.Args, entry.NodePos())
		} else {
			// Defensive fallback: a lowering panic degrades to the
			// closure engine rather than aborting the flow. Counted so
			// the CI bench-smoke gate can assert it never fires on the
			// bundled benchmarks.
			fallbacks = 1
			m.loopInfo = buildLoopInfo(prog)
			cp := compileProgram(prog)
			compiledFuncs = int64(len(cp.funcs))
			ret, err = m.callCompiled(cp.funcs[cfg.Entry], cfg.Args, entry.NodePos())
		}
		if lease != nil {
			m.trace = nil
			cfg.Progs.release(lease, err == nil)
		}
	}
	if err != nil {
		return nil, err
	}
	if cfg.Counters != nil {
		cfg.Counters.Add(CounterRuns, 1)
		cfg.Counters.Add(CounterOps, m.steps)
		cfg.Counters.Add(CounterCycles, int64(m.prof.Cycles))
		if compiledFuncs > 0 && progHits == 0 {
			cfg.Counters.Add(CounterCompileFuncs, compiledFuncs)
			cfg.Counters.Add(CounterCompileNanos, compileNanos)
		}
		if m.bcInstrs > 0 {
			cfg.Counters.Add(CounterBCInstrs, m.bcInstrs)
			cfg.Counters.Add(CounterBCFused, m.bcFused)
		}
		if m.qRewrites > 0 {
			cfg.Counters.Add(CounterBCQuickenRewrites, m.qRewrites)
		}
		if m.qHits > 0 {
			cfg.Counters.Add(CounterBCQuickenHits, m.qHits)
		}
		if m.qDeopts > 0 {
			cfg.Counters.Add(CounterBCQuickenDeopts, m.qDeopts)
		}
		if fallbacks > 0 {
			cfg.Counters.Add(CounterBCFallbacks, fallbacks)
		}
		if compiledFuncs > 0 && !cfg.Closures {
			if progHits > 0 {
				cfg.Counters.Add(CounterBCProgHits, progHits)
			} else if fallbacks == 0 {
				cfg.Counters.Add(CounterBCLowerings, 1)
			}
		}
	}
	return &Result{Ret: ret, Prof: m.prof, Steps: m.steps, Output: m.output}, nil
}

// quickenTrip maps Config.QuickenThreshold onto the machine's int32 hot
// trip point: 0 selects the default, negative disables (the hot counter
// never reaches a zero trip in any bounded run), and large values clamp.
func quickenTrip(threshold int) int32 {
	switch {
	case threshold < 0:
		return 0
	case threshold == 0:
		return DefaultQuickenThreshold
	case threshold > 1<<30:
		return 1 << 30
	default:
		return int32(threshold)
	}
}

// lowerBytecode wraps compileBytecode with a panic guard: the lowering is
// exercised by the differential fuzzer and never expected to fail, but a
// defect must degrade to the closure oracle, not crash a flow.
func lowerBytecode(prog *minic.Program, policy FusionPolicy) (bp *bprog) {
	defer func() {
		if recover() != nil {
			bp = nil
		}
	}()
	return compileBytecode(prog, policy)
}

// buildLoopInfo precomputes enclosing function and nesting depth for every
// loop node ID.
func buildLoopInfo(prog *minic.Program) map[int]loopInfo {
	q := query.New(prog)
	out := make(map[int]loopInfo)
	for _, fn := range prog.Funcs {
		for _, l := range q.LoopsIn(fn) {
			out[l.ID()] = loopInfo{fn: fn.Name, depth: q.LoopDepth(l)}
		}
	}
	return out
}

func (m *machine) errf(pos minic.Pos, format string, args ...any) error {
	return &RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// cancelCheckInterval spaces cancellation polls: step() is called once per
// statement / loop iteration (the fine-grained expression steps are inlined
// by the compiled path and never reach here), so polling every 1024 calls
// bounds the cancellation latency to microseconds while keeping the poll
// off the hot path.
const cancelCheckInterval = 1024

func (m *machine) step(pos minic.Pos) error {
	m.steps++
	if m.steps > m.maxSteps {
		return m.errf(pos, "step budget exceeded (%d)", m.maxSteps)
	}
	if m.done != nil {
		m.cancelTick++
		if m.cancelTick%cancelCheckInterval == 0 {
			select {
			case <-m.done:
				return &CancelError{Pos: pos, Cause: m.ctx.Err()}
			default:
			}
		}
	}
	return nil
}

// charge and chargeFlop only bump the run-wide totals; the Watch*
// counterparts are folded in as boundary deltas by exitWatch (the charges
// issued while watchDepth > 0 are exactly the totals accumulated between
// the outermost enterWatch and its exitWatch), which keeps the hot path
// at a single read-modify-write per counter.
func (m *machine) charge(c float64) {
	m.prof.Cycles += c
}

func (m *machine) chargeFlop(c float64, n int64) {
	m.prof.Cycles += c
	m.prof.Flops += n
}

// frame is one function activation with nested scopes.
type frame struct {
	fn     *minic.FuncDecl
	scopes []map[string]*Value
	ret    Value
}

func (f *frame) push() { f.scopes = append(f.scopes, make(map[string]*Value)) }
func (f *frame) pop()  { f.scopes = f.scopes[:len(f.scopes)-1] }

func (f *frame) lookup(name string) *Value {
	for i := len(f.scopes) - 1; i >= 0; i-- {
		if v, ok := f.scopes[i][name]; ok {
			return v
		}
	}
	return nil
}

func (f *frame) declare(name string, v Value) {
	cell := v
	f.scopes[len(f.scopes)-1][name] = &cell
}

// call invokes fn with args; pos is the call site for diagnostics.
func (m *machine) call(fn *minic.FuncDecl, args []Value, pos minic.Pos) (Value, error) {
	if len(args) != len(fn.Params) {
		return Value{}, m.errf(pos, "call %s: %d args, want %d", fn.Name, len(args), len(fn.Params))
	}
	m.charge(CostCall)
	fr := &frame{fn: fn}
	fr.push()
	for i, p := range fn.Params {
		v := args[i]
		coerced, err := m.coerce(v, p.Type, pos)
		if err != nil {
			return Value{}, m.errf(pos, "call %s param %s: %v", fn.Name, p.Name, err)
		}
		fr.declare(p.Name, coerced)
	}

	watching := fn.Name == m.watch
	var prevParamOf map[*Buffer]string
	if watching {
		prevParamOf = m.enterWatch(fn.Params, args)
	}

	c, err := m.execBlock(fr, fn.Body)
	if watching {
		m.exitWatch(prevParamOf)
	}
	if err != nil {
		return Value{}, err
	}
	if c == ctrlBreak || c == ctrlContinue {
		return Value{}, m.errf(fn.NodePos(), "break/continue escaped function %s", fn.Name)
	}
	return fr.ret, nil
}

// coerce converts v to declared type t (scalar types only; pointers pass
// through with element-kind check).
func (m *machine) coerce(v Value, t minic.Type, pos minic.Pos) (Value, error) {
	if t.Ptr {
		if v.K != KBuf {
			return Value{}, fmt.Errorf("expected buffer for %s, got %s", t, v.K)
		}
		if v.Buf.Kind != t.Kind {
			return Value{}, fmt.Errorf("buffer element kind %s, want %s", v.Buf.Kind, t.Kind)
		}
		return v, nil
	}
	switch t.Kind {
	case minic.Int:
		return IntVal(v.AsInt()), nil
	case minic.Float:
		return FloatVal(v.AsFloat()), nil
	case minic.Double:
		return DoubleVal(v.AsFloat()), nil
	case minic.Bool:
		return BoolVal(v.AsBool()), nil
	case minic.Void:
		return Value{}, nil
	}
	return Value{}, fmt.Errorf("cannot coerce to %s", t)
}

func (m *machine) execBlock(fr *frame, b *minic.Block) (ctrl, error) {
	fr.push()
	defer fr.pop()
	for _, s := range b.Stmts {
		c, err := m.execStmt(fr, s)
		if err != nil {
			return ctrlNone, err
		}
		if c != ctrlNone {
			return c, nil
		}
	}
	return ctrlNone, nil
}

func (m *machine) execStmt(fr *frame, s minic.Stmt) (ctrl, error) {
	if err := m.step(s.NodePos()); err != nil {
		return ctrlNone, err
	}
	switch v := s.(type) {
	case *minic.Block:
		return m.execBlock(fr, v)
	case *minic.DeclStmt:
		return ctrlNone, m.execDecl(fr, v)
	case *minic.ExprStmt:
		_, err := m.eval(fr, v.X)
		return ctrlNone, err
	case *minic.ForStmt:
		return m.execFor(fr, v)
	case *minic.WhileStmt:
		return m.execWhile(fr, v)
	case *minic.IfStmt:
		cond, err := m.eval(fr, v.Cond)
		if err != nil {
			return ctrlNone, err
		}
		m.charge(CostBranch)
		if cond.AsBool() {
			return m.execBlock(fr, v.Then)
		}
		if v.Else != nil {
			return m.execStmt(fr, v.Else)
		}
		return ctrlNone, nil
	case *minic.ReturnStmt:
		if v.X != nil {
			rv, err := m.eval(fr, v.X)
			if err != nil {
				return ctrlNone, err
			}
			coerced, err := m.coerce(rv, fr.fn.Ret, v.NodePos())
			if err != nil {
				return ctrlNone, m.errf(v.NodePos(), "return: %v", err)
			}
			fr.ret = coerced
		}
		return ctrlReturn, nil
	case *minic.BreakStmt:
		return ctrlBreak, nil
	case *minic.ContinueStmt:
		return ctrlContinue, nil
	case *minic.PragmaStmt:
		return ctrlNone, nil // pragmas are semantically transparent
	}
	return ctrlNone, m.errf(s.NodePos(), "unhandled statement %T", s)
}

func (m *machine) execDecl(fr *frame, d *minic.DeclStmt) error {
	if d.ArrayLen != nil {
		nv, err := m.eval(fr, d.ArrayLen)
		if err != nil {
			return err
		}
		buf, err := m.makeArray(d.Name, d.Type.Kind, nv.AsInt(), d.NodePos())
		if err != nil {
			return err
		}
		fr.declare(d.Name, BufVal(buf))
		return nil
	}
	var init Value
	if d.Init != nil {
		v, err := m.eval(fr, d.Init)
		if err != nil {
			return err
		}
		init = v
	}
	coerced, err := m.coerce(init, d.Type, d.NodePos())
	if err != nil {
		return m.errf(d.NodePos(), "declare %s: %v", d.Name, err)
	}
	m.charge(CostLocal)
	fr.declare(d.Name, coerced)
	return nil
}

// loopEnter/loopExit maintain the per-loop profile (the "loop timer"
// instrumentation of the paper, built into the virtual machine).
func (m *machine) loopProfile(id int, pos minic.Pos) *LoopProfile {
	lp, ok := m.prof.Loops[id]
	if !ok {
		info := m.loopInfo[id]
		lp = &LoopProfile{ID: id, Pos: pos, Func: info.fn, Depth: info.depth}
		m.prof.Loops[id] = lp
	}
	return lp
}

func (m *machine) execFor(fr *frame, f *minic.ForStmt) (ctrl, error) {
	fr.push()
	defer fr.pop()
	lp := m.loopProfile(f.ID(), f.NodePos())
	lp.Entries++
	start := m.prof.Cycles
	defer func() { lp.Cycles += m.prof.Cycles - start }()

	if f.Init != nil {
		if _, err := m.execStmt(fr, f.Init); err != nil {
			return ctrlNone, err
		}
	}
	for {
		if f.Cond != nil {
			cond, err := m.eval(fr, f.Cond)
			if err != nil {
				return ctrlNone, err
			}
			m.charge(CostBranch)
			if !cond.AsBool() {
				return ctrlNone, nil
			}
		}
		if err := m.step(f.NodePos()); err != nil {
			return ctrlNone, err
		}
		lp.Trips++
		c, err := m.execBlock(fr, f.Body)
		if err != nil {
			return ctrlNone, err
		}
		if c == ctrlBreak {
			return ctrlNone, nil
		}
		if c == ctrlReturn {
			return ctrlReturn, nil
		}
		if f.Post != nil {
			if _, err := m.eval(fr, f.Post); err != nil {
				return ctrlNone, err
			}
		}
	}
}

func (m *machine) execWhile(fr *frame, w *minic.WhileStmt) (ctrl, error) {
	lp := m.loopProfile(w.ID(), w.NodePos())
	lp.Entries++
	start := m.prof.Cycles
	defer func() { lp.Cycles += m.prof.Cycles - start }()
	for {
		cond, err := m.eval(fr, w.Cond)
		if err != nil {
			return ctrlNone, err
		}
		m.charge(CostBranch)
		if !cond.AsBool() {
			return ctrlNone, nil
		}
		if err := m.step(w.NodePos()); err != nil {
			return ctrlNone, err
		}
		lp.Trips++
		c, err := m.execBlock(fr, w.Body)
		if err != nil {
			return ctrlNone, err
		}
		if c == ctrlBreak {
			return ctrlNone, nil
		}
		if c == ctrlReturn {
			return ctrlReturn, nil
		}
	}
}
