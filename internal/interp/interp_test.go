package interp

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"psaflow/internal/minic"
)

func run(t *testing.T, src, entry string, args ...Value) *Result {
	t.Helper()
	prog := minic.MustParse(src)
	res, err := Run(prog, Config{Entry: entry, Args: args})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want float64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"7 / 2", 3},   // integer division
		{"7 % 3", 1},   // modulo
		{"-4 + 1", -3}, // unary minus
		{"10 - 3 - 2", 5},
	}
	for _, c := range cases {
		res := run(t, "int f() { return "+c.expr+"; }", "f")
		if got := res.Ret.AsFloat(); got != c.want {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestFloatingArithmetic(t *testing.T) {
	res := run(t, "double f() { return 7.0 / 2.0; }", "f")
	if res.Ret.AsFloat() != 3.5 {
		t.Errorf("7.0/2.0 = %v", res.Ret.AsFloat())
	}
	res = run(t, "double f() { return 1.0 / 3.0; }", "f")
	if math.Abs(res.Ret.AsFloat()-1.0/3.0) > 1e-15 {
		t.Errorf("1.0/3.0 = %v", res.Ret.AsFloat())
	}
}

func TestSinglePrecisionRounding(t *testing.T) {
	// float arithmetic must round through float32.
	res := run(t, "float f() { return 1.0f / 3.0f; }", "f")
	want := float64(float32(1.0) / float32(3.0))
	if res.Ret.AsFloat() != want {
		t.Errorf("1.0f/3.0f = %v, want %v", res.Ret.AsFloat(), want)
	}
	if res.Ret.K != KFloat {
		t.Errorf("kind = %v, want float", res.Ret.K)
	}
	// Mixed float/double promotes to double.
	res = run(t, "double f() { return 1.0f + 2.0; }", "f")
	if res.Ret.K != KDouble {
		t.Errorf("promotion kind = %v, want double", res.Ret.K)
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	cases := []struct {
		expr string
		want bool
	}{
		{"1 < 2", true}, {"2 <= 2", true}, {"3 > 4", false},
		{"4 >= 5", false}, {"2 == 2", true}, {"2 != 2", false},
		{"true && false", false}, {"true || false", true},
		{"!true", false},
		{"1 < 2 && 2 < 3", true},
	}
	for _, c := range cases {
		res := run(t, "bool f() { return "+c.expr+"; }", "f")
		if got := res.Ret.AsBool(); got != c.want {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// Division by zero on the RHS must not execute when short-circuited.
	src := `bool f(int x) { return x == 0 || 10 / x > 2; }`
	res := run(t, src, "f", IntVal(0))
	if !res.Ret.AsBool() {
		t.Error("short-circuit || failed")
	}
	src2 := `bool f(int x) { return x != 0 && 10 / x > 2; }`
	res = run(t, src2, "f", IntVal(0))
	if res.Ret.AsBool() {
		t.Error("short-circuit && failed")
	}
}

func TestLoopsAndArrays(t *testing.T) {
	src := `
double sum(int n, const double *a) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        s += a[i];
    }
    return s;
}
`
	buf := NewFloatBuffer("a", minic.Double, []float64{1, 2, 3, 4.5})
	res := run(t, src, "sum", IntVal(4), BufVal(buf))
	if res.Ret.AsFloat() != 10.5 {
		t.Errorf("sum = %v, want 10.5", res.Ret.AsFloat())
	}
}

func TestWriteThroughPointer(t *testing.T) {
	src := `
void scale(int n, double *a, double k) {
    for (int i = 0; i < n; i++) {
        a[i] *= k;
    }
}
`
	buf := NewFloatBuffer("a", minic.Double, []float64{1, 2, 3})
	run(t, src, "scale", IntVal(3), BufVal(buf), DoubleVal(2))
	want := []float64{2, 4, 6}
	for i, w := range want {
		if buf.F[i] != w {
			t.Errorf("a[%d] = %v, want %v", i, buf.F[i], w)
		}
	}
}

func TestLocalArray(t *testing.T) {
	src := `
int f() {
    int hist[4];
    for (int i = 0; i < 10; i++) {
        hist[i % 4] += 1;
    }
    return hist[0] + hist[1] * 10 + hist[2] * 100 + hist[3] * 1000;
}
`
	res := run(t, src, "f")
	if res.Ret.AsInt() != 2233 { // 3,3,2,2
		t.Errorf("hist encoding = %d, want 2233", res.Ret.AsInt())
	}
}

func TestWhileBreakContinue(t *testing.T) {
	src := `
int f() {
    int i = 0;
    int s = 0;
    while (true) {
        i++;
        if (i > 100) { break; }
        if (i % 2 == 0) { continue; }
        s += i;
    }
    return s;
}
`
	res := run(t, src, "f")
	if res.Ret.AsInt() != 2500 { // sum of odd numbers 1..99
		t.Errorf("s = %d, want 2500", res.Ret.AsInt())
	}
}

func TestNestedFunctionCalls(t *testing.T) {
	src := `
double sq(double x) { return x * x; }
double hyp(double a, double b) { return sqrt(sq(a) + sq(b)); }
`
	res := run(t, src, "hyp", DoubleVal(3), DoubleVal(4))
	if res.Ret.AsFloat() != 5 {
		t.Errorf("hyp = %v, want 5", res.Ret.AsFloat())
	}
}

func TestRecursion(t *testing.T) {
	src := `int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }`
	res := run(t, src, "fib", IntVal(12))
	if res.Ret.AsInt() != 144 {
		t.Errorf("fib(12) = %d, want 144", res.Ret.AsInt())
	}
}

func TestBuiltins(t *testing.T) {
	cases := []struct {
		expr string
		want float64
	}{
		{"sqrt(16.0)", 4},
		{"fabs(-2.5)", 2.5},
		{"fmin(2.0, 3.0)", 2},
		{"fmax(2.0, 3.0)", 3},
		{"pow(2.0, 10.0)", 1024},
		{"floor(2.9)", 2},
		{"exp(0.0)", 1},
		{"log(1.0)", 0},
	}
	for _, c := range cases {
		res := run(t, "double f() { return "+c.expr+"; }", "f")
		if got := res.Ret.AsFloat(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestIntBuiltins(t *testing.T) {
	res := run(t, "int f() { return abs(-3) + min(1, 2) + max(1, 2); }", "f")
	if res.Ret.AsInt() != 6 {
		t.Errorf("got %d, want 6", res.Ret.AsInt())
	}
}

func TestCast(t *testing.T) {
	res := run(t, "int f() { return (int)3.9; }", "f")
	if res.Ret.AsInt() != 3 {
		t.Errorf("(int)3.9 = %d", res.Ret.AsInt())
	}
	res = run(t, "double f(int n) { return (double)n / 4.0; }", "f", IntVal(3))
	if res.Ret.AsFloat() != 0.75 {
		t.Errorf("cast division = %v", res.Ret.AsFloat())
	}
}

func TestPrintfCapture(t *testing.T) {
	src := `void f() { printf("x = %d\n", 42); printf("done\n"); }`
	res := run(t, src, "f")
	if len(res.Output) != 1 || !strings.Contains(res.Output[0], "42") {
		t.Errorf("output = %v", res.Output)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		src  string
		args []Value
		want string
	}{
		{`int f() { return 1 / 0; }`, nil, "division by zero"},
		{`int f() { return 1 % 0; }`, nil, "modulo by zero"},
		{`double f() { return 1.0 / 0.0; }`, nil, "division by zero"},
		{`int f() { return x; }`, nil, "undefined variable"},
		{`int f() { return g(); }`, nil, "undefined function"},
		{`void f(double *a) { a[5] = 1.0; }`,
			[]Value{BufVal(NewFloatBuffer("a", minic.Double, make([]float64, 3)))},
			"out of range"},
		{`void f(double *a) { a[-1] = 1.0; }`,
			[]Value{BufVal(NewFloatBuffer("a", minic.Double, make([]float64, 3)))},
			"out of range"},
		{`int f() { return sqrt(1.0, 2.0); }`, nil, "args"},
	}
	for _, c := range cases {
		prog := minic.MustParse(c.src)
		_, err := Run(prog, Config{Entry: "f", Args: c.args})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want contains %q", c.src, err, c.want)
		}
	}
}

func TestStepBudget(t *testing.T) {
	prog := minic.MustParse(`void f() { while (true) { } }`)
	_, err := Run(prog, Config{Entry: "f", MaxSteps: 10000})
	if err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Fatalf("err = %v, want step budget exceeded", err)
	}
}

func TestMissingEntry(t *testing.T) {
	prog := minic.MustParse(`void f() { }`)
	if _, err := Run(prog, Config{Entry: "g"}); err == nil {
		t.Fatal("expected error for missing entry")
	}
}

func TestArgCountMismatch(t *testing.T) {
	prog := minic.MustParse(`void f(int a, int b) { }`)
	if _, err := Run(prog, Config{Entry: "f", Args: []Value{IntVal(1)}}); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestBufferKindMismatch(t *testing.T) {
	prog := minic.MustParse(`void f(double *a) { }`)
	buf := NewIntBuffer("a", make([]int64, 4))
	if _, err := Run(prog, Config{Entry: "f", Args: []Value{BufVal(buf)}}); err == nil {
		t.Fatal("expected element-kind mismatch error")
	}
}

func TestScoping(t *testing.T) {
	src := `
int f() {
    int x = 1;
    for (int i = 0; i < 3; i++) {
        int x = 10;
        x += i;
    }
    return x;
}
`
	res := run(t, src, "f")
	if res.Ret.AsInt() != 1 {
		t.Errorf("outer x = %d, want 1 (inner shadow must not leak)", res.Ret.AsInt())
	}
}

func TestScalarKindPreservedOnAssign(t *testing.T) {
	// Assigning a double into an int variable truncates (C semantics).
	res := run(t, `int f() { int x = 0; x = 3; x += 1; return x; }`, "f")
	if res.Ret.AsInt() != 4 {
		t.Errorf("x = %d", res.Ret.AsInt())
	}
	res = run(t, `int f() { int x = 0; x = (int)3.7; return x; }`, "f")
	if res.Ret.AsInt() != 3 {
		t.Errorf("x = %d, want 3", res.Ret.AsInt())
	}
}

func TestIncDecPostfixValue(t *testing.T) {
	res := run(t, `int f() { int x = 5; int y = x++; return y * 100 + x; }`, "f")
	if res.Ret.AsInt() != 506 {
		t.Errorf("got %d, want 506", res.Ret.AsInt())
	}
	res = run(t, `int f() { int x = 5; int y = x--; return y * 100 + x; }`, "f")
	if res.Ret.AsInt() != 504 {
		t.Errorf("got %d, want 504", res.Ret.AsInt())
	}
}

func TestArrayElemIncDec(t *testing.T) {
	src := `void f(int *a) { a[0]++; a[1]--; }`
	buf := NewIntBuffer("a", []int64{10, 10})
	run(t, src, "f", BufVal(buf))
	if buf.I[0] != 11 || buf.I[1] != 9 {
		t.Errorf("a = %v", buf.I)
	}
}

func TestFloatBufferRounding(t *testing.T) {
	// Stores into float buffers round to float32 precision.
	src := `void f(float *a) { a[0] = 1.0 / 3.0; }`
	buf := NewFloatBuffer("a", minic.Float, make([]float64, 1))
	run(t, src, "f", BufVal(buf))
	if buf.F[0] != float64(float32(1.0/3.0)) {
		t.Errorf("a[0] = %v not rounded to float32", buf.F[0])
	}
}

// TestQuickIntArithmeticMatchesGo: interpreter integer semantics agree
// with Go for a fixed expression over random inputs.
func TestQuickIntArithmeticMatchesGo(t *testing.T) {
	prog := minic.MustParse(`int f(int a, int b) { return a * 3 + b * b - a / (b * b + 1); }`)
	f := func(a, b int16) bool {
		ai, bi := int64(a), int64(b)
		want := ai*3 + bi*bi - ai/(bi*bi+1)
		res, err := Run(prog, Config{Entry: "f", Args: []Value{IntVal(ai), IntVal(bi)}})
		if err != nil {
			return false
		}
		return res.Ret.AsInt() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeterminism: two runs of the same program produce identical
// results, cycle counts, and profiles — the property dynamic analyses
// depend on.
func TestQuickDeterminism(t *testing.T) {
	src := `
double work(int n, double *a) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        s += sqrt(a[i] * a[i] + 1.0);
    }
    return s;
}
`
	prog := minic.MustParse(src)
	f := func(seed uint8) bool {
		n := int(seed%32) + 1
		data := make([]float64, n)
		for i := range data {
			data[i] = float64(i) * 1.25
		}
		r1, err1 := Run(prog, Config{Entry: "work", Args: []Value{IntVal(int64(n)), BufVal(NewFloatBuffer("a", minic.Double, append([]float64(nil), data...)))}})
		r2, err2 := Run(prog, Config{Entry: "work", Args: []Value{IntVal(int64(n)), BufVal(NewFloatBuffer("a", minic.Double, append([]float64(nil), data...)))}})
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.Ret == r2.Ret && r1.Prof.Cycles == r2.Prof.Cycles &&
			r1.Prof.Flops == r2.Prof.Flops && r1.Steps == r2.Steps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDoubleArithmeticMatchesGo: double-precision expression
// evaluation agrees bit-for-bit with Go's float64 semantics.
func TestQuickDoubleArithmeticMatchesGo(t *testing.T) {
	prog := minic.MustParse(`double f(double a, double b) {
        return (a * b + a - b) / (b * b + 1.5) + a * 0.25;
    }`)
	f := func(a, b float64) bool {
		if a != a || b != b || a > 1e150 || a < -1e150 || b > 1e150 || b < -1e150 {
			return true // skip NaN/overflow corner inputs
		}
		want := (a*b+a-b)/(b*b+1.5) + a*0.25
		res, err := Run(prog, Config{Entry: "f", Args: []Value{DoubleVal(a), DoubleVal(b)}})
		if err != nil {
			return false
		}
		got := res.Ret.AsFloat()
		return got == want || (got != got && want != want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
