package interp

import (
	"sort"

	"psaflow/internal/minic"
)

// Cost constants: virtual-clock cycles charged per operation, calibrated
// to a modern superscalar core executing scalar code (the paper's
// single-thread CPU reference). The absolute scale only matters relative
// to the device models in perfmodel, which consume the same counters.
const (
	CostAddSub = 1.0
	CostMul    = 1.0
	CostDivInt = 10.0
	CostDivF   = 8.0
	CostCmp    = 1.0
	CostLogic  = 1.0
	CostLoad   = 3.0
	CostStore  = 3.0
	CostLocal  = 0.5 // scalar register access
	CostBranch = 1.0
	CostCall   = 8.0
	CostSqrt   = 14.0
	CostExp    = 22.0
	CostLog    = 22.0
	CostPow    = 48.0
	CostTrig   = 24.0
	CostErf    = 30.0
	CostAbsMin = 2.0
	CostCast   = 1.0
	CostFastFn = 8.0 // GPU-style specialised intrinsics (__expf, ...)
)

// LoopProfile accumulates per-loop dynamic measurements, keyed by the loop
// node's ID. This is what the paper gathers by instrumenting loops with
// timers and executing the application.
type LoopProfile struct {
	ID      int
	Pos     minic.Pos
	Func    string  // enclosing function name
	Depth   int     // 1 = outermost
	Entries int64   // times the loop statement was entered
	Trips   int64   // total iterations executed
	Cycles  float64 // virtual cycles spent inside the loop (inclusive)
}

// AvgTrips returns mean iterations per entry.
func (lp *LoopProfile) AvgTrips() float64 {
	if lp.Entries == 0 {
		return 0
	}
	return float64(lp.Trips) / float64(lp.Entries)
}

// Traffic is byte traffic through one watched pointer parameter.
type Traffic struct {
	Param      string
	BytesIn    int64 // read by the kernel (host→device if offloaded)
	BytesOut   int64 // written by the kernel (device→host if offloaded)
	ElemReads  int64
	ElemWrites int64
}

// Profile is the dynamic measurement record of one execution.
type Profile struct {
	Cycles     float64 // total virtual cycles
	Flops      int64   // floating-point operations executed
	IntOps     int64
	LoadBytes  int64
	StoreBytes int64
	Loops      map[int]*LoopProfile
	// Watched-function measurements (kernel analyses):
	WatchFunc       string
	WatchCalls      int64
	WatchCycles     float64 // cycles inside the watched function
	WatchFlops      int64   // flops inside the watched function
	WatchLoadBytes  int64   // bytes loaded inside the watched function
	WatchStoreBytes int64   // bytes stored inside the watched function
	// WatchSpecialFlops counts FLOPs contributed by special
	// (transcendental) builtins in the watched function.
	WatchSpecialFlops int64
	ParamTraffic      map[string]*Traffic // per pointer-parameter traffic
	// Bindings records, per watched call, which Buffer each pointer
	// parameter was bound to (for dynamic alias analysis).
	Bindings []map[string]*Buffer
}

func newProfile(watch string) *Profile {
	return &Profile{
		Loops:        make(map[int]*LoopProfile),
		WatchFunc:    watch,
		ParamTraffic: make(map[string]*Traffic),
	}
}

// LoopsByCycles returns loop profiles sorted by descending cycle count —
// the hotspot ranking.
func (p *Profile) LoopsByCycles() []*LoopProfile {
	out := make([]*LoopProfile, 0, len(p.Loops))
	for _, lp := range p.Loops {
		out = append(out, lp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Hotspot returns the outermost loop with the largest cycle share, and its
// fraction of total cycles. Returns nil if no loops ran.
func (p *Profile) Hotspot() (*LoopProfile, float64) {
	var best *LoopProfile
	for _, lp := range p.Loops {
		if lp.Depth != 1 {
			continue
		}
		if best == nil || lp.Cycles > best.Cycles ||
			(lp.Cycles == best.Cycles && lp.ID < best.ID) {
			best = lp
		}
	}
	if best == nil || p.Cycles == 0 {
		return best, 0
	}
	return best, best.Cycles / p.Cycles
}

// TotalBytesIn sums host→kernel traffic over all watched parameters.
func (p *Profile) TotalBytesIn() int64 {
	var n int64
	for _, t := range p.ParamTraffic {
		n += t.BytesIn
	}
	return n
}

// TotalBytesOut sums kernel→host traffic over all watched parameters.
func (p *Profile) TotalBytesOut() int64 {
	var n int64
	for _, t := range p.ParamTraffic {
		n += t.BytesOut
	}
	return n
}

// AliasPairs returns parameter-name pairs that were ever bound to the same
// buffer in a watched call — the dynamic pointer-alias result.
func (p *Profile) AliasPairs() [][2]string {
	seen := make(map[[2]string]bool)
	var out [][2]string
	for _, binding := range p.Bindings {
		names := make([]string, 0, len(binding))
		for name := range binding {
			names = append(names, name)
		}
		sort.Strings(names)
		for i := 0; i < len(names); i++ {
			for j := i + 1; j < len(names); j++ {
				if binding[names[i]] == binding[names[j]] {
					key := [2]string{names[i], names[j]}
					if !seen[key] {
						seen[key] = true
						out = append(out, key)
					}
				}
			}
		}
	}
	return out
}

// DispatchTrace counts superinstruction dispatches per fusion pattern
// during one (or more) bytecode runs. The counts are saturating: a trace
// only has to rank patterns as "hot or not", so pinning at MaxUint32
// beats wrapping back to a misleading small number on long runs.
//
// A trace is NOT part of Profile: profiles are compared bit-for-bit
// across engines by the differential suites, and only the bytecode VM
// has dispatch patterns to count.
type DispatchTrace struct {
	Hits [NumFusePats]uint32
}

// fold accumulates one dispatch loop's local pattern counts, saturating
// at MaxUint32. Called from dflush; the caller guards on trace != nil.
func (t *DispatchTrace) fold(fhits *[NumFusePats]int64) {
	for p, n := range fhits {
		if n == 0 {
			continue
		}
		if s := uint64(t.Hits[p]) + uint64(n); s < 1<<32 {
			t.Hits[p] = uint32(s)
		} else {
			t.Hits[p] = 1<<32 - 1
		}
	}
}

// Total returns the trace's total superinstruction dispatch count (each
// pattern's count saturates independently).
func (t *DispatchTrace) Total() uint64 {
	var n uint64
	for _, h := range t.Hits {
		n += uint64(h)
	}
	return n
}

// MineFusion selects the superinstruction set for future lowerings of
// the traced program: every pattern that actually dispatched. Fusing a
// pattern the program never executes only bloats compiled operand plans,
// so cold patterns lower through the generic materialization paths
// instead (any policy subset is bit-for-bit equivalent — the general
// paths carry identical accounting). FuseIdxOperand rides along whenever
// anything fired: indexed operands embed inside the other patterns, and
// their count alone under-reports their reach.
func (t *DispatchTrace) MineFusion() FusionPolicy {
	var fp FusionPolicy
	for p := FusePat(1); p < NumFusePats; p++ {
		if t.Hits[p] > 0 {
			fp = fp.With(p)
		}
	}
	if fp != 0 {
		fp = fp.With(FuseIdxOperand)
	}
	return fp
}

// ArithmeticIntensity returns executed FLOPs per byte of memory traffic
// inside the watched function; 0 when nothing was measured.
func (p *Profile) ArithmeticIntensity() float64 {
	bytes := p.TotalBytesIn() + p.TotalBytesOut()
	if bytes == 0 {
		return 0
	}
	return float64(p.WatchFlops) / float64(bytes)
}
