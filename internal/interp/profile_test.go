package interp

import (
	"testing"

	"psaflow/internal/minic"
	"psaflow/internal/query"
)

const profSrc = `
void kernel(int n, const double *in, double *out) {
    for (int i = 0; i < n; i++) {
        double acc = 0.0;
        for (int j = 0; j < 8; j++) {
            acc += in[i] * (double)j;
        }
        out[i] = acc;
    }
}

void app(int n, const double *in, double *out) {
    for (int r = 0; r < 2; r++) {
        kernel(n, in, out);
    }
    for (int i = 0; i < n; i++) {
        out[i] = out[i] + 1.0;
    }
}
`

func runProf(t *testing.T, watch string) (*Result, *minic.Program) {
	t.Helper()
	prog := minic.MustParse(profSrc)
	n := 16
	in := NewFloatBuffer("in", minic.Double, make([]float64, n))
	out := NewFloatBuffer("out", minic.Double, make([]float64, n))
	for i := 0; i < n; i++ {
		in.F[i] = float64(i)
	}
	res, err := Run(prog, Config{
		Entry: "app",
		Args:  []Value{IntVal(int64(n)), BufVal(in), BufVal(out)},
		Watch: watch,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res, prog
}

func TestLoopProfileTripsAndEntries(t *testing.T) {
	res, prog := runProf(t, "kernel")
	q := query.New(prog)
	kernel := prog.MustFunc("kernel")
	outer := q.OutermostLoops(kernel)[0]
	inner := q.InnerLoops(outer)[0]

	lpOuter := res.Prof.Loops[outer.ID()]
	if lpOuter == nil {
		t.Fatal("no profile for outer loop")
	}
	// kernel is called twice with n=16.
	if lpOuter.Entries != 2 || lpOuter.Trips != 32 {
		t.Errorf("outer: entries=%d trips=%d, want 2/32", lpOuter.Entries, lpOuter.Trips)
	}
	if lpOuter.AvgTrips() != 16 {
		t.Errorf("outer avg trips = %v, want 16", lpOuter.AvgTrips())
	}
	lpInner := res.Prof.Loops[inner.ID()]
	if lpInner.Entries != 32 || lpInner.Trips != 256 {
		t.Errorf("inner: entries=%d trips=%d, want 32/256", lpInner.Entries, lpInner.Trips)
	}
	if lpOuter.Depth != 1 || lpInner.Depth != 2 {
		t.Errorf("depths = %d,%d, want 1,2", lpOuter.Depth, lpInner.Depth)
	}
	if lpOuter.Func != "kernel" {
		t.Errorf("outer func = %q", lpOuter.Func)
	}
}

func TestLoopCyclesInclusive(t *testing.T) {
	res, prog := runProf(t, "kernel")
	q := query.New(prog)
	kernel := prog.MustFunc("kernel")
	outer := q.OutermostLoops(kernel)[0]
	inner := q.InnerLoops(outer)[0]
	lpOuter := res.Prof.Loops[outer.ID()]
	lpInner := res.Prof.Loops[inner.ID()]
	if lpOuter.Cycles <= lpInner.Cycles {
		t.Errorf("outer cycles (%v) must exceed inner (%v): inclusive accounting", lpOuter.Cycles, lpInner.Cycles)
	}
	if lpOuter.Cycles >= res.Prof.Cycles {
		t.Errorf("loop cycles (%v) must be below total (%v)", lpOuter.Cycles, res.Prof.Cycles)
	}
}

func TestHotspotDetection(t *testing.T) {
	res, prog := runProf(t, "app")
	hs, share := res.Prof.Hotspot()
	if hs == nil {
		t.Fatal("no hotspot")
	}
	// The hottest outermost loop is app's first loop (calls kernel twice).
	q := query.New(prog)
	appLoops := q.OutermostLoops(prog.MustFunc("app"))
	if hs.ID != appLoops[0].ID() {
		t.Errorf("hotspot ID = %d, want loop at %v", hs.ID, appLoops[0].NodePos())
	}
	if share <= 0.5 || share > 1.0 {
		t.Errorf("hotspot share = %v, want (0.5, 1]", share)
	}
}

func TestParamTraffic(t *testing.T) {
	res, _ := runProf(t, "kernel")
	traffic := res.Prof.ParamTraffic
	in := traffic["in"]
	out := traffic["out"]
	if in == nil || out == nil {
		t.Fatalf("missing traffic entries: %v", traffic)
	}
	// in is read 8 times per i (16 i's, 2 calls): 256 reads * 8 bytes.
	if in.BytesIn != 256*8 {
		t.Errorf("in.BytesIn = %d, want %d", in.BytesIn, 256*8)
	}
	if in.BytesOut != 0 {
		t.Errorf("in.BytesOut = %d, want 0", in.BytesOut)
	}
	// out is written once per i: 32 writes * 8 bytes.
	if out.BytesOut != 32*8 {
		t.Errorf("out.BytesOut = %d, want %d", out.BytesOut, 32*8)
	}
	if out.BytesIn != 0 {
		t.Errorf("out.BytesIn = %d, want 0 (plain stores)", out.BytesIn)
	}
	if res.Prof.TotalBytesIn() != 256*8 || res.Prof.TotalBytesOut() != 32*8 {
		t.Errorf("totals = %d/%d", res.Prof.TotalBytesIn(), res.Prof.TotalBytesOut())
	}
}

func TestWatchCallsAndFlops(t *testing.T) {
	res, _ := runProf(t, "kernel")
	if res.Prof.WatchCalls != 2 {
		t.Errorf("WatchCalls = %d, want 2", res.Prof.WatchCalls)
	}
	if res.Prof.WatchFlops <= 0 || res.Prof.WatchFlops > res.Prof.Flops {
		t.Errorf("WatchFlops = %d (total %d)", res.Prof.WatchFlops, res.Prof.Flops)
	}
	if res.Prof.WatchCycles <= 0 || res.Prof.WatchCycles > res.Prof.Cycles {
		t.Errorf("WatchCycles = %v (total %v)", res.Prof.WatchCycles, res.Prof.Cycles)
	}
	if ai := res.Prof.ArithmeticIntensity(); ai <= 0 {
		t.Errorf("arithmetic intensity = %v", ai)
	}
}

func TestAliasObservation(t *testing.T) {
	prog := minic.MustParse(`
void k(int n, double *a, double *b) {
    for (int i = 0; i < n; i++) { a[i] = b[i] * 2.0; }
}
void app(int n, double *x, double *y) {
    k(n, x, y);
    k(n, x, x);
}
`)
	x := NewFloatBuffer("x", minic.Double, make([]float64, 4))
	y := NewFloatBuffer("y", minic.Double, make([]float64, 4))
	res, err := Run(prog, Config{Entry: "app",
		Args:  []Value{IntVal(4), BufVal(x), BufVal(y)},
		Watch: "k"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	pairs := res.Prof.AliasPairs()
	if len(pairs) != 1 || pairs[0] != [2]string{"a", "b"} {
		t.Fatalf("alias pairs = %v, want [[a b]]", pairs)
	}
	if len(res.Prof.Bindings) != 2 {
		t.Errorf("bindings = %d, want 2", len(res.Prof.Bindings))
	}
}

func TestNoAliasWhenDistinct(t *testing.T) {
	prog := minic.MustParse(`
void k(int n, double *a, double *b) {
    for (int i = 0; i < n; i++) { a[i] = b[i]; }
}
`)
	x := NewFloatBuffer("x", minic.Double, make([]float64, 4))
	y := NewFloatBuffer("y", minic.Double, make([]float64, 4))
	res, err := Run(prog, Config{Entry: "k",
		Args: []Value{IntVal(4), BufVal(x), BufVal(y)}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if pairs := res.Prof.AliasPairs(); len(pairs) != 0 {
		t.Errorf("alias pairs = %v, want none", pairs)
	}
}

func TestLoopsByCyclesSorted(t *testing.T) {
	res, _ := runProf(t, "app")
	loops := res.Prof.LoopsByCycles()
	for i := 1; i < len(loops); i++ {
		if loops[i-1].Cycles < loops[i].Cycles {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestBufferCloneIndependent(t *testing.T) {
	b := NewFloatBuffer("a", minic.Double, []float64{1, 2, 3})
	c := b.Clone()
	c.F[0] = 99
	if b.F[0] != 1 {
		t.Error("clone shares storage")
	}
	ib := NewIntBuffer("i", []int64{5})
	ic := ib.Clone()
	ic.I[0] = 7
	if ib.I[0] != 5 {
		t.Error("int clone shares storage")
	}
}

func TestElemBytes(t *testing.T) {
	if NewFloatBuffer("d", minic.Double, nil).ElemBytes() != 8 {
		t.Error("double elem bytes != 8")
	}
	if NewFloatBuffer("f", minic.Float, nil).ElemBytes() != 4 {
		t.Error("float elem bytes != 4")
	}
	if NewIntBuffer("i", nil).ElemBytes() != 4 {
		t.Error("int elem bytes != 4")
	}
}

// TestDispatchTraceSaturation drives the per-pattern dispatch counters
// past their uint32 range: counts must pin at the maximum instead of
// wrapping back to a misleading small number, and a saturated pattern
// must still rank as hot for fusion mining.
func TestDispatchTraceSaturation(t *testing.T) {
	tr := &DispatchTrace{}
	p := FusePat(2)
	var fhits [NumFusePats]int64
	fhits[p] = 1<<32 - 10 // one fold away from the ceiling
	tr.fold(&fhits)
	if got := tr.Hits[p]; got != 1<<32-10 {
		t.Fatalf("Hits[%d] = %d after first fold, want %d", p, got, uint64(1)<<32-10)
	}
	fhits[p] = 1 << 20 // crosses the ceiling: must saturate, not wrap
	tr.fold(&fhits)
	if got := tr.Hits[p]; got != 1<<32-1 {
		t.Fatalf("Hits[%d] = %d after overflow fold, want saturation at %d", p, got, uint64(1)<<32-1)
	}
	tr.fold(&fhits) // saturated counters must stay pinned
	if got := tr.Hits[p]; got != 1<<32-1 {
		t.Fatalf("Hits[%d] = %d after repeated fold, want %d", p, got, uint64(1)<<32-1)
	}
	if got := tr.Total(); got != 1<<32-1 {
		t.Errorf("Total() = %d, want %d", got, uint64(1)<<32-1)
	}
	fp := tr.MineFusion()
	if !fp.Has(p) {
		t.Errorf("MineFusion dropped saturated pattern %d", p)
	}
	if !fp.Has(FuseIdxOperand) {
		t.Errorf("MineFusion policy misses the FuseIdxOperand rider")
	}
}

// TestDispatchTraceZeroStaysCold checks the complement: an empty trace
// mines the empty policy (no speculative fusing of never-seen patterns).
func TestDispatchTraceZeroStaysCold(t *testing.T) {
	tr := &DispatchTrace{}
	if fp := tr.MineFusion(); fp != 0 {
		t.Errorf("empty trace mined policy %b, want 0", fp)
	}
}
