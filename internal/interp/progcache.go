package interp

import (
	"sync"

	"psaflow/internal/minic"
)

// ProgramCache shares lowered bytecode programs across Runs, keyed by
// minic.Fingerprint. It exists for the workloads a run cache cannot
// absorb: the same program executed against many different inputs (DSE
// candidate sweeps, batched daemon jobs), where every Run used to pay a
// full lowering and started from cold generic opcodes.
//
// Each fingerprint owns a pool of lowered programs handed out under an
// exclusive lease — exclusivity is what makes in-place quickening safe:
// a leased program's instruction words are written only by the single
// run holding the lease, and a released program keeps its quickened
// instructions (and hot counters) for the next lease. Concurrent runs of
// the same fingerprint each get their own copy; sequential runs — the
// batched-execution case — share one progressively-quickened program.
//
// The first lease of a fingerprint also captures a DispatchTrace, and
// MineFusion turns it into the superinstruction policy used by every
// later lowering of that fingerprint, so extra copies lowered for
// concurrency start pre-fused with exactly the patterns the program was
// observed to execute.
type ProgramCache struct {
	mu      sync.Mutex
	entries map[uint64]*progEntry
	peer    PolicyPeer // nil on a single-node cache
}

// PolicyPeer is the distributed hook for mined fusion policies
// (implemented by cluster.Node): a fingerprint first seen on this node
// may already have been traced and mined on a peer, in which case the
// first lowering here starts from the mined policy instead of paying
// for a local trace. Both calls are best-effort — peer loss simply
// means the node traces locally, exactly like a single-node cache.
type PolicyPeer interface {
	FetchPolicy(fp uint64) (FusionPolicy, bool)
	FillPolicy(fp uint64, policy FusionPolicy)
}

// SetPeer wires the distributed policy hook (call at construction,
// before the cache is shared).
func (c *ProgramCache) SetPeer(p PolicyPeer) {
	c.mu.Lock()
	c.peer = p
	c.mu.Unlock()
}

type progEntry struct {
	free []*bprog // released lowered programs, ready to lease
	// loops is the shared read-only loop-metadata map (built once per
	// fingerprint; machines only read it).
	loops map[int]loopInfo
	// Mined superinstruction selection. Until a successful traced run
	// completes, mined is false and lowerings use AllFusion.
	policy FusionPolicy
	mined  bool
	// tracing marks a trace-capturing lease in flight, so concurrent
	// first runs don't all pay for tracing.
	tracing bool
	// failed latches a lowering panic: later leases skip straight to the
	// caller's defensive closure fallback instead of re-panicking.
	failed bool
}

// progLease is one exclusive claim on a lowered program. bp is nil when
// lowering failed (the caller falls back to the closure engine); trace
// is non-nil when this run should capture a dispatch trace for mining.
type progLease struct {
	cache   *ProgramCache
	ent     *progEntry
	fp      uint64
	bp      *bprog
	loops   map[int]loopInfo
	trace   *DispatchTrace
	lowered bool // this lease performed a lowering (cache miss or extra copy)
}

// NewProgramCache returns an empty cache, safe for concurrent use.
func NewProgramCache() *ProgramCache {
	return &ProgramCache{entries: make(map[uint64]*progEntry)}
}

// lease returns an exclusively-held lowered program for prog, lowering
// one if no released copy is available. fp must be prog's fingerprint —
// the cache trusts the caller's keying exactly as core.RunCache does.
func (c *ProgramCache) lease(fp uint64, prog *minic.Program) *progLease {
	c.mu.Lock()
	ent := c.entries[fp]
	if ent == nil {
		ent = &progEntry{}
		c.entries[fp] = ent
	}
	l := &progLease{cache: c, ent: ent, fp: fp}
	if n := len(ent.free); n > 0 {
		l.bp = ent.free[n-1]
		ent.free[n-1] = nil
		ent.free = ent.free[:n-1]
		l.loops = ent.loops
		c.mu.Unlock()
		return l
	}
	if ent.failed {
		c.mu.Unlock()
		return l // bp nil: remembered lowering failure
	}
	policy := AllFusion
	peer := c.peer
	if ent.mined {
		policy = ent.policy
	} else if !ent.tracing {
		// First lowering of this fingerprint (or the previous traced run
		// failed): capture a trace to mine the fusion policy from.
		ent.tracing = true
		l.trace = &DispatchTrace{}
	}
	c.mu.Unlock()

	// The tracing lease checks the cluster before paying for a local
	// trace: a peer that already mined this fingerprint hands over its
	// policy and this node lowers pre-fused, no trace run needed. The
	// tracing flag (set above) keeps concurrent first leases from
	// stampeding the peer; the fetch runs outside the lock because it
	// may block on the network.
	if l.trace != nil && peer != nil {
		if pol, ok := peer.FetchPolicy(fp); ok {
			pol &= AllFusion // foreign bits never reach the lowering
			c.mu.Lock()
			if !ent.mined {
				ent.policy = pol
				ent.mined = true
			}
			policy = ent.policy
			ent.tracing = false
			c.mu.Unlock()
			l.trace = nil
		}
	}

	// Lowering runs outside the lock: it can be slow, and concurrent
	// leases of other fingerprints (or extra copies of this one) must
	// not serialize behind it.
	bp := lowerBytecode(prog, policy)

	c.mu.Lock()
	defer c.mu.Unlock()
	if bp == nil {
		ent.failed = true
		if l.trace != nil {
			ent.tracing = false
			l.trace = nil
		}
		return l
	}
	if ent.loops == nil {
		ent.loops = buildLoopInfo(prog)
	}
	l.bp = bp
	l.loops = ent.loops
	l.lowered = true
	return l
}

// release returns a leased program to its fingerprint's pool. ok reports
// whether the run succeeded; a trace captured by a failed run is
// discarded (its counts stop at the error), a successful trace is mined
// into the fingerprint's fusion policy.
func (c *ProgramCache) release(l *progLease, ok bool) {
	if l.bp == nil {
		return
	}
	c.mu.Lock()
	var publish FusionPolicy
	published := false
	if l.trace != nil {
		l.ent.tracing = false
		if ok && !l.ent.mined {
			l.ent.policy = l.trace.MineFusion()
			l.ent.mined = true
			if c.peer != nil {
				publish, published = l.ent.policy, true
			}
		}
	}
	peer := c.peer
	l.ent.free = append(l.ent.free, l.bp)
	l.bp = nil
	c.mu.Unlock()
	// Publish a freshly mined policy to its cluster owner outside the
	// lock (the fill may block on the network; best-effort by contract).
	if published {
		peer.FillPolicy(l.fp, publish)
	}
}

// Len returns the number of distinct fingerprints cached.
func (c *ProgramCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
