package interp

import (
	"math"

	"psaflow/internal/minic"
)

// Runtime quickening: once a generic superinstruction has executed
// Config.QuickenThreshold times, the dispatch loop rewrites it in place
// to a type-specialized opcode whose operand plan, result construction,
// and cost accounting were baked from the kinds observed at the rewrite
// point. A quickened instruction re-checks those assumptions with cheap
// guards (exact value kinds, buffer element kinds, index bounds) and
// deoptimizes back to the generic opcode on any miss, so quickened
// execution is bit-for-bit equivalent to generic execution: guards and
// operand fetches are side-effect-free, every profile/accounting write
// happens only after all guards pass, and a deopt re-executes the
// instruction generically — reproducing slow-path results and runtime
// errors (division by zero, bounds) exactly, with exactly the generic
// accounting.
//
// What gets baked:
//
//   - operand plans (qopnd): constant payloads pre-extracted, register
//     reads guarded on the exact ValKind, indexed loads guarded on the
//     base register holding a buffer of the observed element kind with
//     an in-bounds integer index;
//   - the arithmetic: the token switch, kind promotion, and float32
//     rounding decisions collapse to a baked operator and result kind;
//   - the accounting: per-operand CostLocal charges, the operation
//     costs, FLOP/IntOp counts, and Load/StoreBytes deltas fold into
//     single precomputed per-instruction sums (cycle sums stay exact:
//     every cost constant is a dyadic rational, so float64 addition of
//     any regrouping is associative here).
//
// Division and modulo never quicken: their zero-divisor runtime errors
// would need error paths inside the quickened case for no benchmark
// benefit. Shapes outside the baked set pin themselves generic
// (hot = math.MinInt32) and are never re-examined.

// Baked arithmetic operators.
const (
	qAdd uint8 = iota
	qSub
	qMul
)

// Operand plans.
const (
	qoConst uint8 = iota // payload pre-extracted into f / i
	qoReg                // regs[ref], guarded on exact value kind
	qoIdx                // buffer element load: base/kind/index/bounds guarded
)

// Index plans for qoIdx.
const (
	qiConst uint8 = iota // precomputed index in i
	qiReg                // regs[ia.ref], guarded KInt
	qiBin                // ia ⊗ ib (iop), int fast path
	qiBin2               // (ia * ib) ⊕ ic (iop), the row-major a[i*K+j]
)

// qix is one integer index component: a guarded register or a constant.
type qix struct {
	isConst bool
	ref     int32
	k       int64
}

// qopnd is one baked operand (or store-target) plan.
type qopnd struct {
	plan  uint8
	iplan uint8   // index plan (qoIdx)
	iop   uint8   // index binary operator (qiBin: + - *; qiBin2 outer: + -)
	round bool    // qoIdx: element loads round through float32 (Float elems)
	kind  ValKind // qoReg: guarded value kind
	ekind minic.BasicKind
	ref   int32 // qoReg value register / qoIdx base register
	f     float64
	i     int64 // qoConst payload; qiConst index
	ebytes int64
	ia, ib, ic qix
}

// qinfo is the baked form of one quickened instruction.
type qinfo struct {
	a, b qopnd // operands (b: second combine operand; unused by opQStore*)
	tgt  qopnd // store target (opQStore*)

	// Precomputed accounting, committed only after every guard passes.
	cyc    float64
	flops  int64
	intops int64
	lbytes int64
	sbytes int64

	op    uint8         // combine operator
	cop   uint8         // compound-assign operator (opQAcc*/opQStore* with acc)
	acc   bool          // compound (+= etc.) vs plain = (opQAcc*/opQStore*)
	cmp   minic.TokKind // comparison token (opQCmpBr*)
	rk    ValKind       // combine/assign result kind (FF: KFloat iff both KFloat)
	cellK ValKind       // guarded cell kind (opQAcc*) / baked decl kind (opQBinDecl*)

	// Scalar math intrinsics (opQMath1/opQMath2): the unwrapped float
	// function and its special-FLOP weight (0 when the builtin does not
	// count as a special function).
	mfn1   func(float64) float64
	mfn2   func(float64, float64) float64
	sflops int64
}

// qrnd is the float32 rounding every KFloat value passes through.
func qrnd(f float64) float64 { return float64(float32(f)) }

// qix1 fetches one index component. Pure; ok=false on a kind guard miss.
func qix1(regs []Value, x *qix) (int64, bool) {
	if x.isConst {
		return x.k, true
	}
	v := &regs[x.ref]
	if v.K != KInt {
		return 0, false
	}
	return v.I, true
}

// qindex computes a baked index plan. Pure; ok=false on a guard miss.
func qindex(regs []Value, o *qopnd) (int64, bool) {
	switch o.iplan {
	case qiConst:
		return o.i, true
	case qiReg:
		v := &regs[o.ia.ref]
		if v.K != KInt {
			return 0, false
		}
		return v.I, true
	case qiBin:
		a, ok := qix1(regs, &o.ia)
		if !ok {
			return 0, false
		}
		b, ok := qix1(regs, &o.ib)
		if !ok {
			return 0, false
		}
		switch o.iop {
		case qAdd:
			return a + b, true
		case qSub:
			return a - b, true
		default:
			return a * b, true
		}
	default: // qiBin2
		a, ok := qix1(regs, &o.ia)
		if !ok {
			return 0, false
		}
		b, ok := qix1(regs, &o.ib)
		if !ok {
			return 0, false
		}
		c, ok := qix1(regs, &o.ic)
		if !ok {
			return 0, false
		}
		if o.iop == qAdd {
			return a*b + c, true
		}
		return a*b - c, true
	}
}

// qresolve resolves a qoIdx plan to (buffer, index). Pure; ok=false on
// any guard miss, including bounds (the generic re-execution reports the
// exact bounds error).
func qresolve(regs []Value, o *qopnd) (*Buffer, int64, bool) {
	bv := &regs[o.ref]
	if bv.K != KBuf {
		return nil, 0, false
	}
	b := bv.Buf
	if b.Kind != o.ekind {
		return nil, 0, false
	}
	i, ok := qindex(regs, o)
	if !ok {
		return nil, 0, false
	}
	if o.ekind == minic.Int {
		if uint64(i) >= uint64(len(b.I)) {
			return nil, 0, false
		}
	} else if uint64(i) >= uint64(len(b.F)) {
		return nil, 0, false
	}
	return b, i, true
}

// qfetchF fetches one float-context operand. Pure; the returned buffer
// (nil unless qoIdx) lets the caller commit watch traffic after all
// guards pass.
func qfetchF(regs []Value, o *qopnd) (float64, *Buffer, bool) {
	switch o.plan {
	case qoConst:
		return o.f, nil, true
	case qoReg:
		v := &regs[o.ref]
		if v.K != o.kind {
			return 0, nil, false
		}
		return v.F, nil, true
	default: // qoIdx
		b, i, ok := qresolve(regs, o)
		if !ok {
			return 0, nil, false
		}
		f := b.F[i]
		if o.round {
			f = qrnd(f)
		}
		return f, b, true
	}
}

// qfetchI fetches one int-context operand. Pure.
func qfetchI(regs []Value, o *qopnd) (int64, *Buffer, bool) {
	switch o.plan {
	case qoConst:
		return o.i, nil, true
	case qoReg:
		v := &regs[o.ref]
		if v.K != KInt {
			return 0, nil, false
		}
		return v.I, nil, true
	default: // qoIdx
		b, i, ok := qresolve(regs, o)
		if !ok {
			return 0, nil, false
		}
		return b.I[i], b, true
	}
}

// qtrafIn / qtrafOut commit watched traffic for one element access; the
// caller has already checked watchDepth > 0 and buf != nil.
func (m *machine) qtrafIn(buf *Buffer, nbytes int64) {
	if t := m.trafficOf(buf); t != nil {
		t.BytesIn += nbytes
		t.ElemReads++
	}
}

func (m *machine) qtrafOut(buf *Buffer, nbytes int64) {
	if t := m.trafficOf(buf); t != nil {
		t.BytesOut += nbytes
		t.ElemWrites++
	}
}

// ---------------------------------------------------------------------------
// The quickener (bake pass). Runs once per instruction, at the hot trip.

// quicken attempts the in-place rewrite of a hot generic instruction,
// using the operand kinds observed in the current frame. Returns true on
// success (the dispatch loop re-dispatches under the quickened opcode);
// on failure the instruction pins itself generic and is never
// re-examined.
func (m *machine) quicken(in *binstr, fr *bframe) bool {
	q, op := bakeQuicken(in, fr.regs)
	if q == nil {
		in.hot = math.MinInt32
		return false
	}
	in.q = q
	in.gop = in.op
	in.op = op
	m.qRewrites++
	return true
}

// qopcost maps a baked operator to its cycle cost.
func qopcost(op uint8) float64 {
	if op == qMul {
		return CostMul
	}
	return CostAddSub
}

// qarith maps an arithmetic token to a baked operator.
func qarith(tok minic.TokKind) (uint8, bool) {
	switch tok {
	case minic.TokPlus, minic.TokPlusEq:
		return qAdd, true
	case minic.TokMinus, minic.TokMinusEq:
		return qSub, true
	case minic.TokStar, minic.TokStarEq:
		return qMul, true
	}
	return 0, false
}

func qIsCmp(tok minic.TokKind) bool {
	switch tok {
	case minic.TokLt, minic.TokGt, minic.TokLe, minic.TokGe, minic.TokEqEq, minic.TokNe:
		return true
	}
	return false
}

// qelemBytes mirrors Buffer.ElemBytes for a baked element kind.
func qelemBytes(k minic.BasicKind) int64 {
	if k == minic.Double {
		return 8
	}
	return 4
}

// qelemKind maps a buffer element kind to the ValKind loadElem produces.
func qelemKind(k minic.BasicKind) ValKind {
	switch k {
	case minic.Int:
		return KInt
	case minic.Float:
		return KFloat
	default:
		return KDouble
	}
}

// qbakeIx bakes one index component (omVar/omConst/omPlain register or
// int constant), accumulating its fetch cost. Fused index components
// must be KInt for the generic int fast path; anything else fails.
func qbakeIx(o *bopnd, regs []Value, cyc *float64) (qix, bool) {
	switch o.mode {
	case omPlain:
		if regs[o.ref].K != KInt {
			return qix{}, false
		}
		return qix{ref: o.ref}, true
	case omVar:
		if regs[o.ref].K != KInt {
			return qix{}, false
		}
		*cyc += CostLocal
		return qix{ref: o.ref}, true
	case omConst:
		if o.val.K != KInt {
			return qix{}, false
		}
		return qix{isConst: true, k: o.val.I}, true
	}
	return qix{}, false
}

// qbakeTarget bakes a btarget into a qoIdx plan (base register, element
// kind, index computation) and accumulates the target's resolve cost —
// base fetch, index fetches, and index arithmetic, but NOT the element
// load/store itself (the consumer adds those).
func qbakeTarget(t *btarget, regs []Value, cyc *float64, intops *int64) (qopnd, bool) {
	var p qopnd
	p.plan = qoIdx
	switch t.base.mode {
	case omPlain:
	case omVar:
		*cyc += CostLocal
	default:
		return p, false
	}
	bv := regs[t.base.ref]
	if bv.K != KBuf || bv.Buf == nil {
		return p, false
	}
	p.ref = t.base.ref
	p.ekind = bv.Buf.Kind
	p.round = p.ekind == minic.Float
	p.ebytes = qelemBytes(p.ekind)
	switch {
	case t.fused2:
		// (ia * ib) ⊕ ic — the generic fast path requires the inner op
		// to be * and all components KInt.
		if t.idxOp2 != minic.TokStar {
			return p, false
		}
		op, ok := qarith(t.idxOp)
		if !ok || op == qMul {
			return p, false
		}
		if p.ia, ok = qbakeIx(&t.idx2a, regs, cyc); !ok {
			return p, false
		}
		if p.ib, ok = qbakeIx(&t.idx2b, regs, cyc); !ok {
			return p, false
		}
		*cyc += CostMul
		*intops++
		if p.ic, ok = qbakeIx(&t.idxB, regs, cyc); !ok {
			return p, false
		}
		*cyc += CostAddSub
		*intops++
		p.iplan, p.iop = qiBin2, op
	case t.fused:
		op, ok := qarith(t.idxOp)
		if !ok {
			return p, false
		}
		if p.ia, ok = qbakeIx(&t.idx, regs, cyc); !ok {
			return p, false
		}
		if p.ib, ok = qbakeIx(&t.idxB, regs, cyc); !ok {
			return p, false
		}
		*cyc += qopcost(op)
		*intops++
		p.iplan, p.iop = qiBin, op
	default:
		switch t.idx.mode {
		case omPlain:
			if regs[t.idx.ref].K != KInt {
				return p, false
			}
			p.iplan = qiReg
			p.ia = qix{ref: t.idx.ref}
		case omVar:
			if regs[t.idx.ref].K != KInt {
				return p, false
			}
			*cyc += CostLocal
			p.iplan = qiReg
			p.ia = qix{ref: t.idx.ref}
		case omConst:
			// A plain constant index truncates via AsInt in the generic
			// path, so any numeric literal bakes.
			if !t.idx.val.IsNumeric() {
				return p, false
			}
			p.iplan = qiConst
			p.i = t.idx.val.AsInt()
		default:
			return p, false
		}
	}
	return p, true
}

// qbakeOperand bakes one combine operand, returning its plan, observed
// value kind, and accumulated fetch accounting.
func qbakeOperand(o *bopnd, regs []Value, cyc *float64, intops, lbytes *int64) (qopnd, ValKind, bool) {
	var p qopnd
	switch o.mode {
	case omPlain, omVar:
		v := regs[o.ref]
		if v.K != KInt && v.K != KFloat && v.K != KDouble {
			return p, KVoid, false
		}
		if o.mode == omVar {
			*cyc += CostLocal
		}
		p.plan = qoReg
		p.kind = v.K
		p.ref = o.ref
		return p, v.K, true
	case omConst:
		v := o.val
		if v.K != KInt && v.K != KFloat && v.K != KDouble {
			return p, KVoid, false
		}
		p.plan = qoConst
		p.f = v.F
		p.i = v.I
		return p, v.K, true
	case omIdx:
		p, ok := qbakeTarget(o.tgt, regs, cyc, intops)
		if !ok {
			return p, KVoid, false
		}
		*cyc += CostLoad
		*lbytes += p.ebytes
		return p, qelemKind(p.ekind), true
	}
	return p, KVoid, false
}

func qIsFloat(k ValKind) bool { return k == KFloat || k == KDouble }

// bakeQuicken builds the baked form for one hot generic instruction, or
// returns nil if its shape is outside the quickenable set.
func bakeQuicken(in *binstr, regs []Value) (*qinfo, opcode) {
	switch in.op {
	case opBinary, opCmpBranch, opBinDeclVar, opBinAssignVar:
	case opStoreIdx:
		return bakeStore(in, regs)
	case opDeclVar:
		return bakeDecl(in, regs)
	case opLoadIdx:
		return bakeLoad(in, regs)
	case opBuiltin:
		return bakeBuiltin(in, regs)
	default:
		return nil, opNop
	}

	tok := in.tok
	if in.op == opBinAssignVar || in.op == opBinDeclVar {
		tok = in.tok2
	}
	q := &qinfo{}
	a, lk, ok := qbakeOperand(&in.a, regs, &q.cyc, &q.intops, &q.lbytes)
	if !ok {
		return nil, opNop
	}
	b, rk, ok := qbakeOperand(&in.b, regs, &q.cyc, &q.intops, &q.lbytes)
	if !ok {
		return nil, opNop
	}
	q.a, q.b = a, b

	ints := lk == KInt && rk == KInt
	floats := qIsFloat(lk) && qIsFloat(rk)
	if !ints && !floats {
		return nil, opNop
	}

	// Comparison consumer: only opCmpBranch (a standalone compare
	// producing a bool register stays generic — it never dominates).
	if qIsCmp(tok) {
		if in.op != opCmpBranch {
			return nil, opNop
		}
		q.cmp = tok
		q.cyc += CostCmp + CostBranch
		if ints {
			return q, opQCmpBrII
		}
		return q, opQCmpBrFF
	}
	op, ok := qarith(tok)
	if !ok {
		return nil, opNop // div/mod keep their zero-divisor error paths generic
	}
	q.op = op
	q.cyc += qopcost(op)
	if ints {
		q.intops++
		q.rk = KInt
	} else {
		q.flops++
		if lk == KFloat && rk == KFloat {
			q.rk = KFloat
		} else {
			q.rk = KDouble
		}
	}

	switch in.op {
	case opBinary:
		if ints {
			return q, opQBinII
		}
		return q, opQBinFF
	case opBinDeclVar:
		if in.typ.Ptr {
			return nil, opNop
		}
		switch in.typ.Kind {
		case minic.Int:
			q.cellK = KInt
		case minic.Float:
			q.cellK = KFloat
		case minic.Double:
			q.cellK = KDouble
		default:
			return nil, opNop
		}
		q.cyc += CostLocal
		if ints {
			return q, opQBinDeclII
		}
		return q, opQBinDeclFF
	default: // opBinAssignVar
		cellK := regs[in.reg].K
		q.cellK = cellK
		switch in.tok {
		case minic.TokAssign:
			q.cyc += CostLocal
		case minic.TokPlusEq, minic.TokMinusEq, minic.TokStarEq:
			q.acc = true
			q.cop, _ = qarith(in.tok)
			q.cyc += CostLocal + qopcost(q.cop) + CostLocal
			if ints {
				q.intops++
			} else {
				q.flops++
			}
		default:
			return nil, opNop // /= keeps its zero-divisor error path generic
		}
		if ints {
			if cellK != KInt {
				return nil, opNop
			}
			return q, opQAccII
		}
		if !qIsFloat(cellK) {
			return nil, opNop
		}
		return q, opQAccFF
	}
}

// bakeDecl builds the baked form of a hot single-operand opDeclVar — the
// indexed-initializer declarations (`double gold = gates[c*20+g]`) the
// binary-decl superinstruction cannot cover.
func bakeDecl(in *binstr, regs []Value) (*qinfo, opcode) {
	if in.a.mode == omNone || in.typ.Ptr {
		return nil, opNop
	}
	q := &qinfo{}
	a, k, ok := qbakeOperand(&in.a, regs, &q.cyc, &q.intops, &q.lbytes)
	if !ok {
		return nil, opNop
	}
	q.a = a
	switch in.typ.Kind {
	case minic.Int:
		q.cellK = KInt
	case minic.Float:
		q.cellK = KFloat
	case minic.Double:
		q.cellK = KDouble
	default:
		return nil, opNop
	}
	q.cyc += CostLocal
	if k == KInt {
		return q, opQDeclI
	}
	return q, opQDeclF
}

// bakeLoad builds the baked form of a hot opLoadIdx (a non-fused indexed
// read into a register).
func bakeLoad(in *binstr, regs []Value) (*qinfo, opcode) {
	q := &qinfo{}
	tgt, ok := qbakeTarget(in.tgt, regs, &q.cyc, &q.intops)
	if !ok {
		return nil, opNop
	}
	q.tgt = tgt
	q.cyc += CostLoad
	q.lbytes += tgt.ebytes
	q.rk = qelemKind(tgt.ekind)
	return q, opQLoad
}

// bakeBuiltin builds the baked form of a hot fused opBuiltin call to a
// scalar float intrinsic (exp, sqrtf, ...): the math function is called
// directly on guarded float operands, skipping the []Value wrapper.
// Arity mismatches (a guaranteed runtime error) and the int intrinsics
// (abs/min/max) stay generic.
func bakeBuiltin(in *binstr, regs []Value) (*qinfo, opcode) {
	if in.fuse == 0 || int(in.n) != in.bi.arity {
		return nil, opNop
	}
	q := &qinfo{}
	op := opQMath1
	switch in.bi.arity {
	case 1:
		if in.bi.s1 == nil {
			return nil, opNop
		}
		a, k, ok := qbakeOperand(&in.a, regs, &q.cyc, &q.intops, &q.lbytes)
		if !ok || !qIsFloat(k) {
			return nil, opNop
		}
		q.a = a
		q.mfn1 = in.bi.s1
	case 2:
		if in.bi.s2 == nil {
			return nil, opNop
		}
		a, lk, ok := qbakeOperand(&in.a, regs, &q.cyc, &q.intops, &q.lbytes)
		if !ok || !qIsFloat(lk) {
			return nil, opNop
		}
		b, rk, ok := qbakeOperand(&in.b, regs, &q.cyc, &q.intops, &q.lbytes)
		if !ok || !qIsFloat(rk) {
			return nil, opNop
		}
		q.a, q.b = a, b
		q.mfn2 = in.bi.s2
		op = opQMath2
	default:
		return nil, opNop
	}
	q.cyc += in.bi.cost
	q.flops += in.bi.flops
	if in.bi.flops > 1 {
		q.sflops = in.bi.flops
	}
	if in.bi.rnd {
		q.rk = KFloat
	} else {
		q.rk = KDouble
	}
	return q, op
}

// bakeStore builds the baked form of a hot opStoreIdx.
func bakeStore(in *binstr, regs []Value) (*qinfo, opcode) {
	q := &qinfo{}
	a, rhsK, ok := qbakeOperand(&in.a, regs, &q.cyc, &q.intops, &q.lbytes)
	if !ok {
		return nil, opNop
	}
	q.a = a
	tgt, ok := qbakeTarget(in.tgt, regs, &q.cyc, &q.intops)
	if !ok {
		return nil, opNop
	}
	q.tgt = tgt
	elemK := qelemKind(tgt.ekind)
	ints := elemK == KInt && rhsK == KInt
	floats := qIsFloat(elemK) && qIsFloat(rhsK)
	if !ints && !floats {
		return nil, opNop
	}
	switch in.tok {
	case minic.TokAssign:
		q.rk = rhsK
	case minic.TokPlusEq, minic.TokMinusEq, minic.TokStarEq:
		q.acc = true
		q.cop, _ = qarith(in.tok)
		// loadElem for the old value, then the compound combine.
		q.cyc += CostLoad + qopcost(q.cop)
		q.lbytes += tgt.ebytes
		if ints {
			q.intops++
			q.rk = KInt
		} else {
			q.flops++
			if elemK == KFloat && rhsK == KFloat {
				q.rk = KFloat
			} else {
				q.rk = KDouble
			}
		}
	default:
		return nil, opNop // /= keeps its zero-divisor error path generic
	}
	q.cyc += CostStore
	q.sbytes += tgt.ebytes
	if ints {
		return q, opQStoreI
	}
	return q, opQStoreF
}
