package interp_test

// Differential and concurrency coverage for the profile-guided
// quickening tier (quicken.go / bytecode_exec.go): type-specialized
// opcodes must be bit-for-bit equivalent to generic dispatch on results,
// profiles, buffers, AND error paths (a failed guard deoptimizes and the
// generic form re-raises the identical error), and in-place rewriting
// must stay race-free when concurrent Runs share one program-cache
// image. scripts/ci.sh runs this file under -race.

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"psaflow/internal/bench"
	"psaflow/internal/interp"
	"psaflow/internal/minic"
)

// runQuickened executes one benchmark app at the given threshold.
func runQuickened(t *testing.T, b *bench.Benchmark, threshold int, ctrs interp.Counters) (*interp.Result, []*interp.Buffer) {
	t.Helper()
	args := b.MakeArgs()
	res, err := interp.Run(b.Parse(), interp.Config{
		Entry: b.Entry, Args: args, QuickenThreshold: threshold, Counters: ctrs,
	})
	if err != nil {
		t.Fatalf("threshold %d: %v", threshold, err)
	}
	return res, bufferArgs(args)
}

// TestQuickenEquivalenceBenchmarks runs every bundled benchmark with
// quickening disabled, at the default threshold, and at the most
// aggressive threshold (1: every instruction specializes on its second
// execution), and asserts the entire observable surface matches the
// unquickened run bit-for-bit.
func TestQuickenEquivalenceBenchmarks(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			refRes, refBufs := runQuickened(t, b, -1, nil)
			for _, threshold := range []int{0, 1} {
				ctrs := mapCounters{}
				res, bufs := runQuickened(t, b, threshold, ctrs)
				assertResultsEqual(t, fmt.Sprintf("%s/threshold=%d", b.Name, threshold), refRes, res)
				for i := range refBufs {
					if !reflect.DeepEqual(refBufs[i].I, bufs[i].I) ||
						!reflect.DeepEqual(refBufs[i].F, bufs[i].F) {
						t.Errorf("threshold %d: buffer %s contents differ from unquickened run",
							threshold, refBufs[i].Name)
					}
				}
				if ctrs[interp.CounterBCQuickenRewrites] == 0 {
					t.Errorf("threshold %d: no instructions quickened on %s", threshold, b.Name)
				}
				if ctrs[interp.CounterBCQuickenDeopts] != 0 {
					t.Errorf("threshold %d: %d unexpected deopts on the well-typed corpus",
						threshold, ctrs[interp.CounterBCQuickenDeopts])
				}
				if ctrs[interp.CounterBCFallbacks] != 0 {
					t.Errorf("threshold %d: VM fell back to the closure engine", threshold)
				}
			}
		})
	}
}

// TestQuickenErrorEquivalence drives quickened instructions into runtime
// errors AFTER they have specialized — the guard fails, the instruction
// deoptimizes, and the generic form must re-raise the byte-identical
// error the unquickened VM produces. The out-of-bounds cases fail inside
// a loop that has already quickened its indexed load/store, exercising
// the deopt rollback (step and counter rewind) on the error path.
func TestQuickenErrorEquivalence(t *testing.T) {
	mkBuf := func(n int) func() []interp.Value {
		return func() []interp.Value {
			return []interp.Value{interp.BufVal(interp.NewFloatBuffer("a", minic.Double, make([]float64, n)))}
		}
	}
	cases := []struct {
		name string
		src  string
		args func() []interp.Value
		max  int64
	}{
		// a[i] quickens while i < 32, then i = 32 misses the bounds guard.
		{"store-oob-after-quicken",
			`void f(double *a) { for (int i = 0; i < 64; i++) { a[i] = 1.0; } }`,
			mkBuf(32), 0},
		{"load-oob-after-quicken",
			`void f(double *a) { double s = 0.0; for (int i = 0; i < 64; i++) { s = s + a[i]; } }`,
			mkBuf(32), 0},
		{"budget-in-quickened-loop",
			`void f(double *a) { double s = 0.0; for (int i = 0; i < 1000000; i++) { s = s + a[i % 8]; } }`,
			mkBuf(8), 9000},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			prog := minic.MustParse(c.src)
			errs := map[int]error{}
			for _, threshold := range []int{-1, 1, 8} {
				_, err := interp.Run(prog, interp.Config{
					Entry: "f", Args: c.args(), MaxSteps: c.max, QuickenThreshold: threshold,
				})
				if err == nil {
					t.Fatalf("threshold %d: expected an error", threshold)
				}
				errs[threshold] = err
			}
			for _, threshold := range []int{1, 8} {
				if errs[-1].Error() != errs[threshold].Error() {
					t.Errorf("error differs at threshold %d:\nunquickened: %v\nquickened:   %v",
						threshold, errs[-1], errs[threshold])
				}
			}
		})
	}
}

// TestQuickenConcurrentSharedProgram hammers one program-cache image from
// many goroutines: leases are exclusive, so in-place quickening must stay
// race-free while every run still observes a progressively-quickened
// program. Run under -race by scripts/ci.sh; all results must match a
// serial unquickened reference.
func TestQuickenConcurrentSharedProgram(t *testing.T) {
	src := `
double f(double *a, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        s = s + a[i] * a[i] + sqrt(a[i]);
    }
    return s;
}
`
	prog := minic.MustParse(src)
	mkArgs := func() []interp.Value {
		data := make([]float64, 256)
		for i := range data {
			data[i] = float64(i%7) + 0.5
		}
		return []interp.Value{
			interp.BufVal(interp.NewFloatBuffer("a", minic.Double, data)),
			interp.IntVal(int64(len(data))),
		}
	}
	ref, err := interp.Run(prog, interp.Config{Entry: "f", Args: mkArgs(), QuickenThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}

	progs := interp.NewProgramCache()
	fp := minic.Fingerprint(prog)
	const workers, runsPer = 8, 6
	var wg sync.WaitGroup
	errCh := make(chan error, workers*runsPer)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < runsPer; r++ {
				res, err := interp.Run(prog, interp.Config{
					Entry: "f", Args: mkArgs(),
					QuickenThreshold: 1, Progs: progs, Fingerprint: fp,
				})
				if err != nil {
					errCh <- err
					return
				}
				if res.Ret.AsFloat() != ref.Ret.AsFloat() || res.Steps != ref.Steps {
					errCh <- fmt.Errorf("concurrent run diverged: ret %v steps %d, want %v / %d",
						res.Ret.AsFloat(), res.Steps, ref.Ret.AsFloat(), ref.Steps)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if progs.Len() != 1 {
		t.Errorf("program cache holds %d entries, want 1", progs.Len())
	}
}
