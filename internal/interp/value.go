// Package interp is a tree-walking interpreter for MiniC with a
// deterministic virtual clock and always-on profiling. It stands in for
// native execution in the paper's dynamic analyses: hotspot detection
// (per-loop timers), loop trip counts, data-movement measurement, and
// pointer alias observation — and it verifies functional equivalence of
// transformed designs against their references.
package interp

import (
	"fmt"
	"math"

	"psaflow/internal/minic"
)

// ValKind enumerates runtime value kinds.
type ValKind int

// Runtime value kinds. KFloat models C float (results are rounded through
// float32 so single-precision transforms have observable numerics);
// KDouble models C double.
const (
	KVoid ValKind = iota
	KBool
	KInt
	KFloat
	KDouble
	KBuf
)

// String names the kind.
func (k ValKind) String() string {
	switch k {
	case KVoid:
		return "void"
	case KBool:
		return "bool"
	case KInt:
		return "int"
	case KFloat:
		return "float"
	case KDouble:
		return "double"
	case KBuf:
		return "buffer"
	}
	return fmt.Sprintf("ValKind(%d)", int(k))
}

// Value is a runtime value.
type Value struct {
	K   ValKind
	I   int64
	F   float64
	B   bool
	Buf *Buffer
}

// Buffer is a runtime array. Element kind is Int (data in I) or
// Float/Double (data in F). Buffers model the memory a pointer parameter
// points at; alias observation compares Buffer identity.
type Buffer struct {
	Name string
	Kind minic.BasicKind
	F    []float64
	I    []int64

	// traf caches this buffer's traffic accumulator for the watch epoch
	// it was last resolved in (see machine.trafficOf). Epochs are
	// globally unique, so stale entries from earlier runs never collide.
	traf      *Traffic
	trafEpoch uint64
}

// NewFloatBuffer allocates a float/double buffer with the given contents.
func NewFloatBuffer(name string, kind minic.BasicKind, data []float64) *Buffer {
	return &Buffer{Name: name, Kind: kind, F: data}
}

// NewIntBuffer allocates an int buffer with the given contents.
func NewIntBuffer(name string, data []int64) *Buffer {
	return &Buffer{Name: name, Kind: minic.Int, I: data}
}

// Len returns the element count.
func (b *Buffer) Len() int {
	if b.Kind == minic.Int {
		return len(b.I)
	}
	return len(b.F)
}

// ElemBytes returns the byte size of one element.
func (b *Buffer) ElemBytes() int64 {
	switch b.Kind {
	case minic.Float:
		return 4
	case minic.Int:
		return 4
	default:
		return 8
	}
}

// Clone deep-copies the buffer (used to re-run designs from the same
// initial state).
func (b *Buffer) Clone() *Buffer {
	nb := &Buffer{Name: b.Name, Kind: b.Kind}
	if b.F != nil {
		nb.F = append([]float64(nil), b.F...)
	}
	if b.I != nil {
		nb.I = append([]int64(nil), b.I...)
	}
	return nb
}

// IntVal constructs an int value.
func IntVal(v int64) Value { return Value{K: KInt, I: v} }

// DoubleVal constructs a double value.
func DoubleVal(v float64) Value { return Value{K: KDouble, F: v} }

// FloatVal constructs a single-precision value (rounded through float32).
func FloatVal(v float64) Value { return Value{K: KFloat, F: float64(float32(v))} }

// BoolVal constructs a bool value.
func BoolVal(v bool) Value { return Value{K: KBool, B: v} }

// BufVal constructs a buffer (pointer) value.
func BufVal(b *Buffer) Value { return Value{K: KBuf, Buf: b} }

// AsFloat converts a numeric value to float64.
func (v Value) AsFloat() float64 {
	switch v.K {
	case KInt:
		return float64(v.I)
	case KBool:
		if v.B {
			return 1
		}
		return 0
	default:
		return v.F
	}
}

// AsInt converts a numeric value to int64 (floats truncate toward zero).
func (v Value) AsInt() int64 {
	switch v.K {
	case KInt:
		return v.I
	case KBool:
		if v.B {
			return 1
		}
		return 0
	default:
		return int64(math.Trunc(v.F))
	}
}

// AsBool converts a value to a truth value (non-zero is true).
func (v Value) AsBool() bool {
	switch v.K {
	case KBool:
		return v.B
	case KInt:
		return v.I != 0
	default:
		return v.F != 0
	}
}

// IsNumeric reports whether the value participates in arithmetic.
func (v Value) IsNumeric() bool {
	switch v.K {
	case KInt, KFloat, KDouble, KBool:
		return true
	}
	return false
}

// String renders the value for diagnostics and captured output.
func (v Value) String() string {
	switch v.K {
	case KVoid:
		return "void"
	case KBool:
		return fmt.Sprintf("%t", v.B)
	case KInt:
		return fmt.Sprintf("%d", v.I)
	case KFloat, KDouble:
		return fmt.Sprintf("%g", v.F)
	case KBuf:
		return fmt.Sprintf("buffer(%s,%d)", v.Buf.Name, v.Buf.Len())
	}
	return "?"
}
