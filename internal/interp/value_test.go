package interp

import (
	"strings"
	"testing"

	"psaflow/internal/minic"
)

func TestValueConversions(t *testing.T) {
	cases := []struct {
		v     Value
		asF   float64
		asI   int64
		asB   bool
		isNum bool
	}{
		{IntVal(5), 5, 5, true, true},
		{IntVal(0), 0, 0, false, true},
		{DoubleVal(2.9), 2.9, 2, true, true},
		{DoubleVal(-2.9), -2.9, -2, true, true}, // truncation toward zero
		{FloatVal(1.5), 1.5, 1, true, true},
		{BoolVal(true), 1, 1, true, true},
		{BoolVal(false), 0, 0, false, true},
	}
	for _, c := range cases {
		if got := c.v.AsFloat(); got != c.asF {
			t.Errorf("%v.AsFloat() = %v, want %v", c.v, got, c.asF)
		}
		if got := c.v.AsInt(); got != c.asI {
			t.Errorf("%v.AsInt() = %v, want %v", c.v, got, c.asI)
		}
		if got := c.v.AsBool(); got != c.asB {
			t.Errorf("%v.AsBool() = %v, want %v", c.v, got, c.asB)
		}
		if got := c.v.IsNumeric(); got != c.isNum {
			t.Errorf("%v.IsNumeric() = %v", c.v, got)
		}
	}
	buf := BufVal(NewFloatBuffer("a", minic.Double, []float64{1}))
	if buf.IsNumeric() {
		t.Error("buffers are not numeric")
	}
}

func TestValueStrings(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{IntVal(7), "7"},
		{DoubleVal(2.5), "2.5"},
		{BoolVal(true), "true"},
		{Value{K: KVoid}, "void"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	b := BufVal(NewFloatBuffer("xs", minic.Double, make([]float64, 3)))
	if got := b.String(); !strings.Contains(got, "xs") || !strings.Contains(got, "3") {
		t.Errorf("buffer string = %q", got)
	}
}

func TestValKindStrings(t *testing.T) {
	want := map[ValKind]string{
		KVoid: "void", KBool: "bool", KInt: "int",
		KFloat: "float", KDouble: "double", KBuf: "buffer",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("kind %d = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestBuiltinIntrospection(t *testing.T) {
	if !IsBuiltin("sqrt") || !IsBuiltin("printf") || !IsBuiltin("__expf") {
		t.Error("builtins not recognized")
	}
	if IsBuiltin("my_kernel") {
		t.Error("user function recognized as builtin")
	}
	if BuiltinFlops("exp") != 8 || BuiltinFlops("sqrt") != 4 || BuiltinFlops("nope") != 0 {
		t.Error("flop weights wrong")
	}
	if BuiltinCost("pow") != CostPow || BuiltinCost("nope") != 0 {
		t.Error("cost lookup wrong")
	}
}

func TestFloatValRounding(t *testing.T) {
	v := FloatVal(1.0 / 3.0)
	if v.F != float64(float32(1.0/3.0)) {
		t.Error("FloatVal must round through float32")
	}
}

func TestSinglePrecisionBuiltins(t *testing.T) {
	// sqrtf returns a KFloat rounded value; sqrt returns KDouble.
	prog := minic.MustParse(`
float f32(float x) { return sqrtf(x); }
double f64(double x) { return sqrt(x); }
`)
	r32, err := Run(prog, Config{Entry: "f32", Args: []Value{FloatVal(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if r32.Ret.K != KFloat {
		t.Errorf("sqrtf kind = %v", r32.Ret.K)
	}
	r64, err := Run(prog, Config{Entry: "f64", Args: []Value{DoubleVal(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if r64.Ret.K != KDouble {
		t.Errorf("sqrt kind = %v", r64.Ret.K)
	}
	if r32.Ret.F == r64.Ret.F {
		t.Error("single-precision sqrt should differ from double in low bits")
	}
}

func TestAvgTripsZeroEntries(t *testing.T) {
	lp := &LoopProfile{}
	if lp.AvgTrips() != 0 {
		t.Error("zero entries should yield 0 average")
	}
}

func TestSpecialFlopsTracking(t *testing.T) {
	prog := minic.MustParse(`
void k(int n, double *a) {
    for (int i = 0; i < n; i++) {
        a[i] = exp(a[i]) + a[i] * 2.0;
    }
}
`)
	buf := NewFloatBuffer("a", minic.Double, make([]float64, 8))
	res, err := Run(prog, Config{Entry: "k", Args: []Value{IntVal(8), BufVal(buf)}})
	if err != nil {
		t.Fatal(err)
	}
	// 8 exps at weight 8 = 64 special flops; total adds mul+add.
	if res.Prof.WatchSpecialFlops != 64 {
		t.Errorf("special flops = %d, want 64", res.Prof.WatchSpecialFlops)
	}
	if res.Prof.WatchFlops <= res.Prof.WatchSpecialFlops {
		t.Errorf("total flops %d must exceed special %d", res.Prof.WatchFlops, res.Prof.WatchSpecialFlops)
	}
}
