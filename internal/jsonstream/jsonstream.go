// Package jsonstream decodes one top-level JSON object token by token,
// dispatching each key's value to a registered handler as it arrives on
// the wire. The service layer uses it for request bodies (job submits)
// so a submission is parsed as it streams in — a chunked upload starts
// decoding on the first chunk, and the handler never materializes the
// document as a whole, only one field's value at a time. Unknown keys
// are rejected by name, preserving the strictness of
// json.Decoder.DisallowUnknownFields with a friendlier error.
package jsonstream

import (
	"encoding/json"
	"fmt"
	"io"
)

// FieldFunc consumes exactly one JSON value from dec — the value of the
// field it is registered for. The typed helpers (String, Int, ...) cover
// the common cases; register a FieldFunc directly for anything fancier
// (nested objects, arrays processed element-wise).
type FieldFunc func(dec *json.Decoder) error

// Object is a streaming decoder for one JSON object shape: a set of
// known fields and their handlers. Register fields once, Decode per
// request; an Object is read-only during Decode and safe to share.
type Object struct {
	fields map[string]FieldFunc
}

// NewObject returns an empty shape.
func NewObject() *Object {
	return &Object{fields: make(map[string]FieldFunc)}
}

// Field registers a handler for one key.
func (o *Object) Field(name string, fn FieldFunc) {
	o.fields[name] = fn
}

// decodeInto adapts json.Decoder.Decode to a destination pointer —
// Decode consumes exactly the next value in the token stream, which is
// precisely the FieldFunc contract.
func decodeInto[T any](dst *T) FieldFunc {
	return func(dec *json.Decoder) error { return dec.Decode(dst) }
}

// String registers a string-valued field decoded into dst.
func (o *Object) String(name string, dst *string) { o.Field(name, decodeInto(dst)) }

// Bool registers a boolean field.
func (o *Object) Bool(name string, dst *bool) { o.Field(name, decodeInto(dst)) }

// Int registers an integer field.
func (o *Object) Int(name string, dst *int) { o.Field(name, decodeInto(dst)) }

// Int64 registers a 64-bit integer field.
func (o *Object) Int64(name string, dst *int64) { o.Field(name, decodeInto(dst)) }

// Float64 registers a floating-point field.
func (o *Object) Float64(name string, dst *float64) { o.Field(name, decodeInto(dst)) }

// Decode reads one JSON object from r, dispatching each field to its
// handler in wire order. Unknown fields fail with an error naming the
// offender; so does anything but a single object followed by EOF.
// Errors from the underlying reader (e.g. *http.MaxBytesError) pass
// through unwrapped so callers can classify them.
func (o *Object) Decode(r io.Reader) error {
	dec := json.NewDecoder(r)
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if delim, ok := tok.(json.Delim); !ok || delim != '{' {
		return fmt.Errorf("expected a JSON object, found %v", tok)
	}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return err
		}
		key, ok := keyTok.(string)
		if !ok {
			return fmt.Errorf("malformed object key %v", keyTok)
		}
		fn := o.fields[key]
		if fn == nil {
			return fmt.Errorf("unknown field %q", key)
		}
		if err := fn(dec); err != nil {
			// Reader errors pass through bare for classification; decode
			// errors get the field name prepended.
			if _, isType := err.(*json.UnmarshalTypeError); isType {
				return fmt.Errorf("field %q: %w", key, err)
			}
			var syn *json.SyntaxError
			if asErr(err, &syn) {
				return fmt.Errorf("field %q: %w", key, err)
			}
			return err
		}
	}
	if _, err := dec.Token(); err != nil { // the closing '}'
		return err
	}
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("trailing data after the JSON object")
	}
	return nil
}

// asErr is errors.As without importing errors (keeps the import list to
// the decoding essentials).
func asErr[T error](err error, target *T) bool {
	for err != nil {
		if t, ok := err.(T); ok {
			*target = t
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
