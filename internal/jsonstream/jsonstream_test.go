package jsonstream

import (
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"
)

type sample struct {
	name    string
	count   int
	big     int64
	ratio   float64
	enabled bool
}

func sampleObject(s *sample) *Object {
	o := NewObject()
	o.String("name", &s.name)
	o.Int("count", &s.count)
	o.Int64("big", &s.big)
	o.Float64("ratio", &s.ratio)
	o.Bool("enabled", &s.enabled)
	return o
}

func TestDecodeAllFields(t *testing.T) {
	var s sample
	body := `{"name":"vadd","count":3,"big":9000000000,"ratio":0.25,"enabled":true}`
	if err := sampleObject(&s).Decode(strings.NewReader(body)); err != nil {
		t.Fatal(err)
	}
	if s.name != "vadd" || s.count != 3 || s.big != 9000000000 || s.ratio != 0.25 || !s.enabled {
		t.Fatalf("decoded: %+v", s)
	}
}

func TestDecodePartialAndEmpty(t *testing.T) {
	var s sample
	if err := sampleObject(&s).Decode(strings.NewReader(`{"count":7}`)); err != nil {
		t.Fatal(err)
	}
	if s.count != 7 || s.name != "" {
		t.Fatalf("decoded: %+v", s)
	}
	if err := sampleObject(&s).Decode(strings.NewReader(`{}`)); err != nil {
		t.Fatalf("empty object: %v", err)
	}
}

func TestDecodeUnknownFieldNamed(t *testing.T) {
	var s sample
	err := sampleObject(&s).Decode(strings.NewReader(`{"name":"x","cuont":1}`))
	if err == nil || !strings.Contains(err.Error(), `"cuont"`) {
		t.Fatalf("unknown field error should name the offender, got %v", err)
	}
}

func TestDecodeTypeMismatchNamesField(t *testing.T) {
	var s sample
	err := sampleObject(&s).Decode(strings.NewReader(`{"count":"three"}`))
	if err == nil || !strings.Contains(err.Error(), `"count"`) {
		t.Fatalf("type error should name the field, got %v", err)
	}
}

func TestDecodeRejectsNonObject(t *testing.T) {
	var s sample
	for _, body := range []string{`[1,2]`, `"hi"`, `42`, ``} {
		if err := sampleObject(&s).Decode(strings.NewReader(body)); err == nil {
			t.Errorf("body %q decoded, want error", body)
		}
	}
}

func TestDecodeRejectsTrailingData(t *testing.T) {
	var s sample
	err := sampleObject(&s).Decode(strings.NewReader(`{"count":1}{"count":2}`))
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing data: %v", err)
	}
}

func TestDecodeNestedViaFieldFunc(t *testing.T) {
	var tags []string
	var s sample
	o := sampleObject(&s)
	o.Field("tags", func(dec *json.Decoder) error { return dec.Decode(&tags) })
	body := `{"name":"n","tags":["a","b"],"count":2}`
	if err := o.Decode(strings.NewReader(body)); err != nil {
		t.Fatal(err)
	}
	if len(tags) != 2 || tags[0] != "a" || s.count != 2 {
		t.Fatalf("tags %v count %d", tags, s.count)
	}
}

// trickleReader yields one byte per Read, the worst-case chunked wire.
type trickleReader struct{ data []byte }

func (r *trickleReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	p[0] = r.data[0]
	r.data = r.data[1:]
	return 1, nil
}

func TestDecodeFromTrickle(t *testing.T) {
	var s sample
	body := `{"name":"vadd","count":3,"ratio":1.5}`
	if err := sampleObject(&s).Decode(&trickleReader{data: []byte(body)}); err != nil {
		t.Fatal(err)
	}
	if s.name != "vadd" || s.count != 3 || s.ratio != 1.5 {
		t.Fatalf("decoded: %+v", s)
	}
}

// failAfterReader serves n bytes then fails with errBoom, standing in for
// http.MaxBytesReader tripping mid-stream.
var errBoom = errors.New("boom")

type failAfterReader struct {
	data []byte
	n    int
}

func (r *failAfterReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, errBoom
	}
	take := min(min(len(p), r.n), len(r.data))
	copy(p, r.data[:take])
	r.data = r.data[take:]
	r.n -= take
	return take, nil
}

func TestDecodeReaderErrorPassesThrough(t *testing.T) {
	var s sample
	body := `{"name":"` + strings.Repeat("x", 100) + `"}`
	err := sampleObject(&s).Decode(&failAfterReader{data: []byte(body), n: 20})
	if !errors.Is(err, errBoom) {
		t.Fatalf("want bare reader error, got %v", err)
	}
}
