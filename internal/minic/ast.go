package minic

import "fmt"

// BasicKind enumerates MiniC base types.
type BasicKind int

// Base type kinds.
const (
	Void BasicKind = iota
	Bool
	Int
	Float
	Double
)

// String returns the C spelling of the kind.
func (k BasicKind) String() string {
	switch k {
	case Void:
		return "void"
	case Bool:
		return "bool"
	case Int:
		return "int"
	case Float:
		return "float"
	case Double:
		return "double"
	}
	return fmt.Sprintf("BasicKind(%d)", int(k))
}

// Type is a MiniC type: a base kind, optionally a pointer, optionally
// const-qualified.
type Type struct {
	Kind  BasicKind
	Ptr   bool
	Const bool
}

// String returns the C spelling of the type.
func (t Type) String() string {
	s := t.Kind.String()
	if t.Const {
		s = "const " + s
	}
	if t.Ptr {
		s += " *"
	}
	return s
}

// IsFloating reports whether the base kind is float or double.
func (t Type) IsFloating() bool { return t.Kind == Float || t.Kind == Double }

// Elem returns the pointed-to type of a pointer type.
func (t Type) Elem() Type { return Type{Kind: t.Kind, Const: t.Const} }

// Node is any AST node. Every node carries a stable ID (unique within its
// Program after AssignIDs) and the source position it was parsed at.
type Node interface {
	ID() int
	NodePos() Pos
	setID(int)
}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// base is embedded by every concrete node.
type base struct {
	id  int
	pos Pos
}

// ID returns the node's identifier (0 until AssignIDs runs).
func (b *base) ID() int { return b.id }

// NodePos returns the node's source position.
func (b *base) NodePos() Pos { return b.pos }

func (b *base) setID(id int) { b.id = id }

// Program is a parsed MiniC translation unit.
type Program struct {
	base
	Funcs []*FuncDecl
}

// FuncDecl is a function definition.
type FuncDecl struct {
	base
	Ret    Type
	Name   string
	Params []*Param
	Body   *Block
}

// Param is a function parameter.
type Param struct {
	base
	Type Type
	Name string
}

// Block is a brace-delimited statement list.
type Block struct {
	base
	Stmts []Stmt
}

// DeclStmt declares a local variable, optionally a fixed-size array,
// optionally with an initializer.
type DeclStmt struct {
	base
	Type     Type
	Name     string
	ArrayLen Expr // nil unless an array declaration
	Init     Expr // nil if uninitialized
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	base
	X Expr
}

// ForStmt is a C-style for loop. Pragmas holds the text of `#pragma`
// directives attached immediately before the loop (e.g. "unroll 4",
// "omp parallel for num_threads(32)").
type ForStmt struct {
	base
	Init    Stmt // DeclStmt or ExprStmt, may be nil
	Cond    Expr // may be nil
	Post    Expr // may be nil
	Body    *Block
	Pragmas []string
}

// WhileStmt is a while loop; pragma attachment matches ForStmt.
type WhileStmt struct {
	base
	Cond    Expr
	Body    *Block
	Pragmas []string
}

// IfStmt is an if with optional else (Else is *Block or *IfStmt).
type IfStmt struct {
	base
	Cond Expr
	Then *Block
	Else Stmt // nil, *Block, or *IfStmt
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	base
	X Expr // nil for bare return
}

// BreakStmt breaks the innermost loop.
type BreakStmt struct{ base }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ base }

// PragmaStmt is a free-standing pragma that was not attached to a loop.
type PragmaStmt struct {
	base
	Text string
}

// Ident is a variable reference.
type Ident struct {
	base
	Name string
}

// IntLit is an integer literal.
type IntLit struct {
	base
	Val  int64
	Text string
}

// FloatLit is a floating literal. Single records an 'f' suffix
// (single precision), which the SP-literal transform toggles.
type FloatLit struct {
	base
	Val    float64
	Text   string
	Single bool
}

// BoolLit is true or false.
type BoolLit struct {
	base
	Val bool
}

// StringLit appears only as an argument to diagnostic builtins.
type StringLit struct {
	base
	Val string
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	base
	Op TokKind // TokMinus or TokNot
	X  Expr
}

// BinaryExpr is a binary arithmetic, comparison, or logical expression.
type BinaryExpr struct {
	base
	Op TokKind
	L  Expr
	R  Expr
}

// AssignExpr is an assignment; Op is one of =, +=, -=, *=, /=. LHS is an
// Ident or IndexExpr.
type AssignExpr struct {
	base
	Op  TokKind
	LHS Expr
	RHS Expr
}

// IncDecExpr is x++ or x--.
type IncDecExpr struct {
	base
	Op TokKind // TokPlusPlus or TokMinusMinus
	X  Expr
}

// IndexExpr is base[index].
type IndexExpr struct {
	base
	Base  Expr
	Index Expr
}

// CallExpr is a call to a named function (user-defined or builtin).
type CallExpr struct {
	base
	Fun  string
	Args []Expr
}

// CastExpr is (type)x.
type CastExpr struct {
	base
	To Type
	X  Expr
}

func (*Program) stmtNode()      {} // never used; keeps Program out of Expr/Stmt sets
func (*Block) stmtNode()        {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*IfStmt) stmtNode()       {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*PragmaStmt) stmtNode()   {}

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*BoolLit) exprNode()    {}
func (*StringLit) exprNode()  {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*AssignExpr) exprNode() {}
func (*IncDecExpr) exprNode() {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*CastExpr) exprNode()   {}

// Children returns the direct child nodes of n in source order. It is the
// single structural description of the AST that Walk, Parents, and the
// query engine are built on.
func Children(n Node) []Node {
	var out []Node
	add := func(c Node) {
		switch v := c.(type) {
		case nil:
		case Expr:
			if v != nil {
				out = append(out, v)
			}
		default:
			out = append(out, c)
		}
	}
	switch v := n.(type) {
	case *Program:
		for _, f := range v.Funcs {
			add(f)
		}
	case *FuncDecl:
		for _, p := range v.Params {
			add(p)
		}
		if v.Body != nil {
			add(v.Body)
		}
	case *Param:
	case *Block:
		for _, s := range v.Stmts {
			add(s)
		}
	case *DeclStmt:
		if v.ArrayLen != nil {
			add(v.ArrayLen)
		}
		if v.Init != nil {
			add(v.Init)
		}
	case *ExprStmt:
		add(v.X)
	case *ForStmt:
		if v.Init != nil {
			add(v.Init)
		}
		if v.Cond != nil {
			add(v.Cond)
		}
		if v.Post != nil {
			add(v.Post)
		}
		add(v.Body)
	case *WhileStmt:
		add(v.Cond)
		add(v.Body)
	case *IfStmt:
		add(v.Cond)
		add(v.Then)
		if v.Else != nil {
			add(v.Else)
		}
	case *ReturnStmt:
		if v.X != nil {
			add(v.X)
		}
	case *BreakStmt, *ContinueStmt, *PragmaStmt:
	case *Ident, *IntLit, *FloatLit, *BoolLit, *StringLit:
	case *UnaryExpr:
		add(v.X)
	case *BinaryExpr:
		add(v.L)
		add(v.R)
	case *AssignExpr:
		add(v.LHS)
		add(v.RHS)
	case *IncDecExpr:
		add(v.X)
	case *IndexExpr:
		add(v.Base)
		add(v.Index)
	case *CallExpr:
		for _, a := range v.Args {
			add(a)
		}
	case *CastExpr:
		add(v.X)
	}
	return out
}

// Walk visits n and all its descendants in depth-first source order,
// calling fn for each. If fn returns false the node's subtree is skipped.
func Walk(n Node, fn func(Node) bool) {
	if n == nil {
		return
	}
	if !fn(n) {
		return
	}
	for _, c := range Children(n) {
		Walk(c, fn)
	}
}

// AssignIDs numbers every node in the program with a unique, dense,
// depth-first ID starting at 1, and returns the number of nodes.
func AssignIDs(p *Program) int {
	next := 1
	Walk(p, func(n Node) bool {
		n.setID(next)
		next++
		return true
	})
	return next - 1
}

// Parents builds a child-to-parent map for every node under root.
func Parents(root Node) map[Node]Node {
	m := make(map[Node]Node)
	var rec func(n Node)
	rec = func(n Node) {
		for _, c := range Children(n) {
			m[c] = n
			rec(c)
		}
	}
	rec(root)
	return m
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// MustFunc returns the named function or panics; intended for tests and
// harness code where the function is known to exist.
func (p *Program) MustFunc(name string) *FuncDecl {
	f := p.Func(name)
	if f == nil {
		panic(fmt.Sprintf("minic: no function %q", name))
	}
	return f
}
