package minic

import "fmt"

// Clone returns a deep copy of the program. Node IDs are re-assigned so
// the clone is a fully independent AST; the PSA-flow engine relies on this
// when forking a design at a branch point.
func (p *Program) Clone() *Program {
	cp := &Program{base: p.base}
	cp.Funcs = make([]*FuncDecl, len(p.Funcs))
	for i, f := range p.Funcs {
		cp.Funcs[i] = cloneFunc(f)
	}
	AssignIDs(cp)
	return cp
}

func cloneFunc(f *FuncDecl) *FuncDecl {
	cf := &FuncDecl{base: f.base, Ret: f.Ret, Name: f.Name}
	cf.Params = make([]*Param, len(f.Params))
	for i, p := range f.Params {
		cp := *p
		cf.Params[i] = &cp
	}
	cf.Body = cloneBlock(f.Body)
	return cf
}

func cloneBlock(b *Block) *Block {
	if b == nil {
		return nil
	}
	cb := &Block{base: b.base}
	cb.Stmts = make([]Stmt, len(b.Stmts))
	for i, s := range b.Stmts {
		cb.Stmts[i] = CloneStmt(s)
	}
	return cb
}

// CloneStmt deep-copies a statement. IDs are copied verbatim; call
// AssignIDs on the enclosing program if fresh IDs are needed.
func CloneStmt(s Stmt) Stmt {
	switch v := s.(type) {
	case nil:
		return nil
	case *Block:
		return cloneBlock(v)
	case *DeclStmt:
		return &DeclStmt{base: v.base, Type: v.Type, Name: v.Name,
			ArrayLen: CloneExpr(v.ArrayLen), Init: CloneExpr(v.Init)}
	case *ExprStmt:
		return &ExprStmt{base: v.base, X: CloneExpr(v.X)}
	case *ForStmt:
		cf := &ForStmt{base: v.base, Cond: CloneExpr(v.Cond), Post: CloneExpr(v.Post), Body: cloneBlock(v.Body)}
		if v.Init != nil {
			cf.Init = CloneStmt(v.Init)
		}
		cf.Pragmas = append([]string(nil), v.Pragmas...)
		return cf
	case *WhileStmt:
		cw := &WhileStmt{base: v.base, Cond: CloneExpr(v.Cond), Body: cloneBlock(v.Body)}
		cw.Pragmas = append([]string(nil), v.Pragmas...)
		return cw
	case *IfStmt:
		ci := &IfStmt{base: v.base, Cond: CloneExpr(v.Cond), Then: cloneBlock(v.Then)}
		if v.Else != nil {
			ci.Else = CloneStmt(v.Else)
		}
		return ci
	case *ReturnStmt:
		return &ReturnStmt{base: v.base, X: CloneExpr(v.X)}
	case *BreakStmt:
		return &BreakStmt{base: v.base}
	case *ContinueStmt:
		return &ContinueStmt{base: v.base}
	case *PragmaStmt:
		return &PragmaStmt{base: v.base, Text: v.Text}
	}
	panic(fmt.Sprintf("minic: CloneStmt: unhandled %T", s))
}

// CloneExpr deep-copies an expression (nil-safe).
func CloneExpr(e Expr) Expr {
	switch v := e.(type) {
	case nil:
		return nil
	case *Ident:
		return &Ident{base: v.base, Name: v.Name}
	case *IntLit:
		return &IntLit{base: v.base, Val: v.Val, Text: v.Text}
	case *FloatLit:
		return &FloatLit{base: v.base, Val: v.Val, Text: v.Text, Single: v.Single}
	case *BoolLit:
		return &BoolLit{base: v.base, Val: v.Val}
	case *StringLit:
		return &StringLit{base: v.base, Val: v.Val}
	case *UnaryExpr:
		return &UnaryExpr{base: v.base, Op: v.Op, X: CloneExpr(v.X)}
	case *BinaryExpr:
		return &BinaryExpr{base: v.base, Op: v.Op, L: CloneExpr(v.L), R: CloneExpr(v.R)}
	case *AssignExpr:
		return &AssignExpr{base: v.base, Op: v.Op, LHS: CloneExpr(v.LHS), RHS: CloneExpr(v.RHS)}
	case *IncDecExpr:
		return &IncDecExpr{base: v.base, Op: v.Op, X: CloneExpr(v.X)}
	case *IndexExpr:
		return &IndexExpr{base: v.base, Base: CloneExpr(v.Base), Index: CloneExpr(v.Index)}
	case *CallExpr:
		cc := &CallExpr{base: v.base, Fun: v.Fun}
		cc.Args = make([]Expr, len(v.Args))
		for i, a := range v.Args {
			cc.Args[i] = CloneExpr(a)
		}
		return cc
	case *CastExpr:
		return &CastExpr{base: v.base, To: v.To, X: CloneExpr(v.X)}
	}
	panic(fmt.Sprintf("minic: CloneExpr: unhandled %T", e))
}
