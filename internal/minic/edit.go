package minic

// AST surgery utilities used by the instrument/transform layer. All editors
// operate in place; callers should re-run AssignIDs (and rebuild query
// contexts) after structural changes.

// ReplaceStmt replaces old with new wherever old appears as a direct child
// statement under root (block entries, for-inits, if-elses). Returns true
// if a replacement happened.
func ReplaceStmt(root Node, old, new Stmt) bool {
	done := false
	Walk(root, func(n Node) bool {
		if done {
			return false
		}
		switch v := n.(type) {
		case *Block:
			for i, s := range v.Stmts {
				if s == old {
					v.Stmts[i] = new
					done = true
					return false
				}
			}
		case *ForStmt:
			if v.Init == old {
				v.Init = new
				done = true
				return false
			}
		case *IfStmt:
			if v.Else == old {
				v.Else = new
				done = true
				return false
			}
		}
		return true
	})
	return done
}

// InsertBefore inserts stmts immediately before target in its enclosing
// block. Returns false if target is not a direct block entry.
func InsertBefore(root Node, target Stmt, stmts ...Stmt) bool {
	done := false
	Walk(root, func(n Node) bool {
		if done {
			return false
		}
		if b, ok := n.(*Block); ok {
			for i, s := range b.Stmts {
				if s == target {
					rest := append([]Stmt{}, b.Stmts[i:]...)
					b.Stmts = append(b.Stmts[:i], append(stmts, rest...)...)
					done = true
					return false
				}
			}
		}
		return true
	})
	return done
}

// InsertAfter inserts stmts immediately after target in its enclosing
// block. Returns false if target is not a direct block entry.
func InsertAfter(root Node, target Stmt, stmts ...Stmt) bool {
	done := false
	Walk(root, func(n Node) bool {
		if done {
			return false
		}
		if b, ok := n.(*Block); ok {
			for i, s := range b.Stmts {
				if s == target {
					rest := append([]Stmt{}, b.Stmts[i+1:]...)
					b.Stmts = append(b.Stmts[:i+1], append(stmts, rest...)...)
					done = true
					return false
				}
			}
		}
		return true
	})
	return done
}

// RemoveStmt deletes target from its enclosing block. Returns false if
// target is not a direct block entry.
func RemoveStmt(root Node, target Stmt) bool {
	done := false
	Walk(root, func(n Node) bool {
		if done {
			return false
		}
		if b, ok := n.(*Block); ok {
			for i, s := range b.Stmts {
				if s == target {
					b.Stmts = append(b.Stmts[:i], b.Stmts[i+1:]...)
					done = true
					return false
				}
			}
		}
		return true
	})
	return done
}

// ReplaceExpr replaces old with new wherever old appears as a direct
// expression operand under root. Returns true if a replacement happened.
func ReplaceExpr(root Node, old, new Expr) bool {
	done := false
	try := func(slot *Expr) bool {
		if *slot == old {
			*slot = new
			done = true
			return true
		}
		return false
	}
	Walk(root, func(n Node) bool {
		if done {
			return false
		}
		switch v := n.(type) {
		case *DeclStmt:
			if v.ArrayLen != nil && try(&v.ArrayLen) {
				return false
			}
			if v.Init != nil && try(&v.Init) {
				return false
			}
		case *ExprStmt:
			if try(&v.X) {
				return false
			}
		case *ForStmt:
			if v.Cond != nil && try(&v.Cond) {
				return false
			}
			if v.Post != nil && try(&v.Post) {
				return false
			}
		case *WhileStmt:
			if try(&v.Cond) {
				return false
			}
		case *IfStmt:
			if try(&v.Cond) {
				return false
			}
		case *ReturnStmt:
			if v.X != nil && try(&v.X) {
				return false
			}
		case *UnaryExpr:
			if try(&v.X) {
				return false
			}
		case *BinaryExpr:
			if try(&v.L) || try(&v.R) {
				return false
			}
		case *AssignExpr:
			if try(&v.LHS) || try(&v.RHS) {
				return false
			}
		case *IncDecExpr:
			if try(&v.X) {
				return false
			}
		case *IndexExpr:
			if try(&v.Base) || try(&v.Index) {
				return false
			}
		case *CallExpr:
			for i := range v.Args {
				if try(&v.Args[i]) {
					return false
				}
			}
		case *CastExpr:
			if try(&v.X) {
				return false
			}
		}
		return true
	})
	return done
}

// RewriteExprs applies fn to every expression slot under root, bottom-up:
// children are rewritten before their parents, and fn's non-nil result
// replaces the slot. Used by transforms such as single-precision literal
// demotion and math-function substitution.
func RewriteExprs(root Node, fn func(Expr) Expr) {
	var rewrite func(e Expr) Expr
	rewrite = func(e Expr) Expr {
		if e == nil {
			return nil
		}
		switch v := e.(type) {
		case *UnaryExpr:
			v.X = rewrite(v.X)
		case *BinaryExpr:
			v.L = rewrite(v.L)
			v.R = rewrite(v.R)
		case *AssignExpr:
			v.LHS = rewrite(v.LHS)
			v.RHS = rewrite(v.RHS)
		case *IncDecExpr:
			v.X = rewrite(v.X)
		case *IndexExpr:
			v.Base = rewrite(v.Base)
			v.Index = rewrite(v.Index)
		case *CallExpr:
			for i := range v.Args {
				v.Args[i] = rewrite(v.Args[i])
			}
		case *CastExpr:
			v.X = rewrite(v.X)
		}
		if out := fn(e); out != nil {
			return out
		}
		return e
	}
	// Each statement kind rewrites exactly the expression slots it owns
	// directly; nested statements (for-inits, block entries) are rewritten
	// on their own visit, so fn is applied exactly once per expression.
	Walk(root, func(m Node) bool {
		switch v := m.(type) {
		case *DeclStmt:
			if v.ArrayLen != nil {
				v.ArrayLen = rewrite(v.ArrayLen)
			}
			if v.Init != nil {
				v.Init = rewrite(v.Init)
			}
			return false
		case *ExprStmt:
			v.X = rewrite(v.X)
			return false
		case *ForStmt:
			if v.Cond != nil {
				v.Cond = rewrite(v.Cond)
			}
			if v.Post != nil {
				v.Post = rewrite(v.Post)
			}
			return true // init and body handled as children
		case *WhileStmt:
			v.Cond = rewrite(v.Cond)
			return true
		case *IfStmt:
			v.Cond = rewrite(v.Cond)
			return true
		case *ReturnStmt:
			if v.X != nil {
				v.X = rewrite(v.X)
			}
			return false
		case Expr:
			return false // expression subtrees are rewritten by their owners
		}
		return true
	})
}
