package minic

import (
	"strings"
	"testing"
)

const editSrc = `
void f(int n, double *a) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        s += a[i];
    }
    a[0] = s;
}
`

func TestReplaceStmt(t *testing.T) {
	prog := MustParse(editSrc)
	body := prog.Func("f").Body
	loop := body.Stmts[1]
	repl := &PragmaStmt{Text: "replaced"}
	if !ReplaceStmt(prog, loop, repl) {
		t.Fatal("ReplaceStmt returned false")
	}
	if body.Stmts[1] != Stmt(repl) {
		t.Fatal("statement not replaced")
	}
	if ReplaceStmt(prog, loop, repl) {
		t.Fatal("ReplaceStmt of removed node should return false")
	}
}

func TestReplaceForInit(t *testing.T) {
	prog := MustParse(editSrc)
	loop := prog.Func("f").Body.Stmts[1].(*ForStmt)
	newInit := &ExprStmt{X: &AssignExpr{Op: TokAssign, LHS: &Ident{Name: "i"}, RHS: &IntLit{Val: 5}}}
	if !ReplaceStmt(prog, loop.Init, newInit) {
		t.Fatal("ReplaceStmt on for-init returned false")
	}
	if loop.Init != Stmt(newInit) {
		t.Fatal("for-init not replaced")
	}
}

func TestInsertBeforeAfter(t *testing.T) {
	prog := MustParse(editSrc)
	body := prog.Func("f").Body
	loop := body.Stmts[1]
	before := &PragmaStmt{Text: "before"}
	after := &PragmaStmt{Text: "after"}
	if !InsertBefore(prog, loop, before) {
		t.Fatal("InsertBefore failed")
	}
	if !InsertAfter(prog, loop, after) {
		t.Fatal("InsertAfter failed")
	}
	out := Print(prog)
	iBefore := strings.Index(out, "#pragma before")
	iLoop := strings.Index(out, "for (")
	iAfter := strings.Index(out, "#pragma after")
	if !(iBefore < iLoop && iLoop < iAfter) {
		t.Fatalf("wrong ordering:\n%s", out)
	}
	if len(body.Stmts) != 5 {
		t.Fatalf("body stmts = %d, want 5", len(body.Stmts))
	}
}

func TestRemoveStmt(t *testing.T) {
	prog := MustParse(editSrc)
	body := prog.Func("f").Body
	decl := body.Stmts[0]
	if !RemoveStmt(prog, decl) {
		t.Fatal("RemoveStmt failed")
	}
	if len(body.Stmts) != 2 {
		t.Fatalf("body stmts = %d, want 2", len(body.Stmts))
	}
	if RemoveStmt(prog, decl) {
		t.Fatal("RemoveStmt of removed node should return false")
	}
}

func TestReplaceExpr(t *testing.T) {
	prog := MustParse(editSrc)
	loop := prog.Func("f").Body.Stmts[1].(*ForStmt)
	cond := loop.Cond.(*BinaryExpr)
	hi := cond.R // n
	if !ReplaceExpr(prog, hi, &IntLit{Val: 128}) {
		t.Fatal("ReplaceExpr failed")
	}
	if FormatExpr(loop.Cond) != "i < 128" {
		t.Fatalf("cond = %q", FormatExpr(loop.Cond))
	}
}

func TestRewriteExprsDoubleToSingle(t *testing.T) {
	src := `void f(double *a) { a[0] = 1.5; a[1] = 2.5 + 3.0; }`
	prog := MustParse(src)
	RewriteExprs(prog, func(e Expr) Expr {
		if fl, ok := e.(*FloatLit); ok && !fl.Single {
			return &FloatLit{Val: fl.Val, Text: fl.Text, Single: true}
		}
		return nil
	})
	out := Print(prog)
	for _, want := range []string{"1.5f", "2.5f", "3.0f"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s in:\n%s", want, out)
		}
	}
}

func TestRewriteExprsAppliedOnce(t *testing.T) {
	// Wrapping every int literal in a call must wrap exactly once,
	// including literals in for-loop inits, conditions and posts.
	src := `void f(int *a) { for (int i = 2; i < 8; i += 2) { a[i] = 4; } }`
	prog := MustParse(src)
	RewriteExprs(prog, func(e Expr) Expr {
		if il, ok := e.(*IntLit); ok {
			return &CallExpr{Fun: "wrap", Args: []Expr{&IntLit{Val: il.Val, Text: il.Text}}}
		}
		return nil
	})
	out := Print(prog)
	if strings.Contains(out, "wrap(wrap(") {
		t.Fatalf("double rewrite:\n%s", out)
	}
	if got := strings.Count(out, "wrap("); got != 4 {
		t.Fatalf("wrap count = %d, want 4:\n%s", got, out)
	}
}

func TestRewriteExprsCallRename(t *testing.T) {
	src := `double f(double x) { return sqrt(x) + sqrt(exp(x)); }`
	prog := MustParse(src)
	RewriteExprs(prog, func(e Expr) Expr {
		if c, ok := e.(*CallExpr); ok && c.Fun == "sqrt" {
			c.Fun = "sqrtf"
		}
		return nil
	})
	out := Print(prog)
	if strings.Count(out, "sqrtf(") != 2 || strings.Contains(out, "sqrt(x) ") {
		t.Fatalf("rename failed:\n%s", out)
	}
	if !strings.Contains(out, "exp(") {
		t.Fatalf("exp should be untouched:\n%s", out)
	}
}
