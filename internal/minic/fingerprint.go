package minic

import "math"

// This file defines the deterministic structural AST hash that keys the
// profiled-run cache (core.RunCache). Two properties matter for cache
// safety:
//
//  1. Any rewrite a transform can make — renamed identifiers, changed
//     literals (including the float 'f' suffix the SP transforms toggle),
//     added or removed pragmas, restructured or outlined loops — changes
//     the hash, so a stale interp.Result can never be reused.
//  2. Loop node IDs are hashed. A cached Profile keys its per-loop
//     counters by node ID, so a hit must guarantee the consumer's AST
//     numbers its loops identically to the profiled one. The parser and
//     Clone both run AssignIDs (a dense depth-first numbering), so
//     structurally identical programs carry identical IDs and still hash
//     equal; anything that renumbers differently misses harmlessly.
//
// The hash is 64-bit FNV-1a over a type-tagged preorder serialisation
// with explicit nil markers for optional children, so `for(;;body)` vs
// `for(init;;)` and `if/else` vs `if` cannot collide structurally (the
// generic Children() flattening would conflate them).

const (
	fpOffset uint64 = 14695981039346656037
	fpPrime  uint64 = 1099511628211
)

// Node type tags for the serialisation. Values are part of the hash, so
// keep the order append-only.
const (
	fpNil byte = iota
	fpProgram
	fpFunc
	fpParam
	fpBlock
	fpDecl
	fpExprStmt
	fpFor
	fpWhile
	fpIf
	fpReturn
	fpBreak
	fpContinue
	fpPragmaStmt
	fpIdent
	fpIntLit
	fpFloatLit
	fpBoolLit
	fpStringLit
	fpUnary
	fpBinary
	fpAssign
	fpIncDec
	fpIndex
	fpCall
	fpCast
)

type fingerprinter struct{ h uint64 }

func (f *fingerprinter) byte(b byte) { f.h = (f.h ^ uint64(b)) * fpPrime }

func (f *fingerprinter) u64(v uint64) {
	for i := 0; i < 8; i++ {
		f.byte(byte(v))
		v >>= 8
	}
}

func (f *fingerprinter) boolean(b bool) {
	if b {
		f.byte(1)
	} else {
		f.byte(0)
	}
}

func (f *fingerprinter) str(s string) {
	f.u64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		f.byte(s[i])
	}
}

func (f *fingerprinter) strs(ss []string) {
	f.u64(uint64(len(ss)))
	for _, s := range ss {
		f.str(s)
	}
}

func (f *fingerprinter) typ(t Type) {
	f.byte(byte(t.Kind))
	f.boolean(t.Ptr)
	f.boolean(t.Const)
}

// opt hashes an optional child, with an explicit marker when absent.
func (f *fingerprinter) opt(n Node) {
	if n == nil {
		f.byte(fpNil)
		return
	}
	f.node(n)
}

func (f *fingerprinter) node(n Node) {
	switch v := n.(type) {
	case *Program:
		f.byte(fpProgram)
		f.u64(uint64(len(v.Funcs)))
		for _, fn := range v.Funcs {
			f.node(fn)
		}
	case *FuncDecl:
		f.byte(fpFunc)
		f.typ(v.Ret)
		f.str(v.Name)
		f.u64(uint64(len(v.Params)))
		for _, p := range v.Params {
			f.node(p)
		}
		f.opt(v.Body)
	case *Param:
		f.byte(fpParam)
		f.typ(v.Type)
		f.str(v.Name)
	case *Block:
		f.byte(fpBlock)
		f.u64(uint64(len(v.Stmts)))
		for _, s := range v.Stmts {
			f.node(s)
		}
	case *DeclStmt:
		f.byte(fpDecl)
		f.typ(v.Type)
		f.str(v.Name)
		f.opt(v.ArrayLen)
		f.opt(v.Init)
	case *ExprStmt:
		f.byte(fpExprStmt)
		f.node(v.X)
	case *ForStmt:
		f.byte(fpFor)
		f.u64(uint64(v.ID())) // ties cached loop-profile keys to this AST
		f.opt(v.Init)
		f.opt(v.Cond)
		f.opt(v.Post)
		f.node(v.Body)
		f.strs(v.Pragmas)
	case *WhileStmt:
		f.byte(fpWhile)
		f.u64(uint64(v.ID()))
		f.node(v.Cond)
		f.node(v.Body)
		f.strs(v.Pragmas)
	case *IfStmt:
		f.byte(fpIf)
		f.node(v.Cond)
		f.node(v.Then)
		f.opt(v.Else)
	case *ReturnStmt:
		f.byte(fpReturn)
		f.opt(v.X)
	case *BreakStmt:
		f.byte(fpBreak)
	case *ContinueStmt:
		f.byte(fpContinue)
	case *PragmaStmt:
		f.byte(fpPragmaStmt)
		f.str(v.Text)
	case *Ident:
		f.byte(fpIdent)
		f.str(v.Name)
	case *IntLit:
		f.byte(fpIntLit)
		f.u64(uint64(v.Val))
	case *FloatLit:
		f.byte(fpFloatLit)
		f.u64(math.Float64bits(v.Val))
		f.boolean(v.Single)
	case *BoolLit:
		f.byte(fpBoolLit)
		f.boolean(v.Val)
	case *StringLit:
		f.byte(fpStringLit)
		f.str(v.Val)
	case *UnaryExpr:
		f.byte(fpUnary)
		f.u64(uint64(v.Op))
		f.node(v.X)
	case *BinaryExpr:
		f.byte(fpBinary)
		f.u64(uint64(v.Op))
		f.node(v.L)
		f.node(v.R)
	case *AssignExpr:
		f.byte(fpAssign)
		f.u64(uint64(v.Op))
		f.node(v.LHS)
		f.node(v.RHS)
	case *IncDecExpr:
		f.byte(fpIncDec)
		f.u64(uint64(v.Op))
		f.node(v.X)
	case *IndexExpr:
		f.byte(fpIndex)
		f.node(v.Base)
		f.node(v.Index)
	case *CallExpr:
		f.byte(fpCall)
		f.str(v.Fun)
		f.u64(uint64(len(v.Args)))
		for _, a := range v.Args {
			f.node(a)
		}
	case *CastExpr:
		f.byte(fpCast)
		f.typ(v.To)
		f.node(v.X)
	default:
		f.byte(fpNil) // unknown node kinds hash as absent
	}
}

// Fingerprint returns a deterministic structural hash of the program.
// Equal fingerprints mean the interpreter would produce identical results
// (same outputs, profile, and loop-profile keys) for the same workload;
// any transform rewrite changes the fingerprint.
func Fingerprint(p *Program) uint64 {
	f := &fingerprinter{h: fpOffset}
	f.node(p)
	return f.h
}
