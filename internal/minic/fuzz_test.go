package minic_test

import (
	"strings"
	"testing"

	"psaflow/internal/bench"
	"psaflow/internal/minic"
)

// TestParseDepthLimit regression-tests the recursion guard: nesting beyond
// the parser's limit must come back as a ParseError, not a fatal goroutine
// stack overflow (which would kill a daemon parsing untrusted source).
func TestParseDepthLimit(t *testing.T) {
	cases := map[string]string{
		"parens": "int f() { return " + strings.Repeat("(", 500000) + "1" + strings.Repeat(")", 500000) + "; }",
		"unary":  "int f() { return " + strings.Repeat("!", 500000) + "1; }",
		"blocks": "int f() { " + strings.Repeat("{", 500000) + strings.Repeat("}", 500000) + " }",
		"casts":  "int f() { return " + strings.Repeat("(int)", 500000) + "1; }",
	}
	for name, src := range cases {
		if _, err := minic.Parse(src); err == nil || !strings.Contains(err.Error(), "nesting too deep") {
			t.Errorf("%s: want nesting-depth error, got %v", name, err)
		}
	}
	// Reasonable nesting still parses.
	ok := "int f() { return " + strings.Repeat("(", 500) + "1" + strings.Repeat(")", 500) + "; }"
	if _, err := minic.Parse(ok); err != nil {
		t.Errorf("500-deep parens should parse: %v", err)
	}
}

// FuzzParse feeds arbitrary byte strings to the MiniC front end. Parse must
// either return a program or an error — never panic — regardless of input:
// the service layer hands it untrusted source straight off the wire.
func FuzzParse(f *testing.F) {
	for _, b := range bench.All() {
		f.Add(b.Source)
	}
	f.Add("")
	f.Add("int f() { return 0; }")
	f.Add("void g(int *p) { for (int i = 0; i < 10; i++) p[i] = i; }")
	f.Add("int h() { return ((((((1)))))); }")
	f.Add("/* unterminated")
	f.Add(`"unterminated string`)
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := minic.Parse(src)
		if err == nil && prog == nil {
			t.Fatal("Parse returned nil program and nil error")
		}
	})
}
