package minic

import (
	"fmt"
	"strings"
	"unicode"
)

// LexError describes a lexical error with its position.
type LexError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *LexError) Error() string { return fmt.Sprintf("lex %s: %s", e.Pos, e.Msg) }

// Lexer turns MiniC source text into a token stream. Comments are skipped;
// "#pragma" lines become single TokPragma tokens carrying the directive text
// after the word "#pragma" (trimmed).
type Lexer struct {
	src  []rune
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1}
}

// Lex tokenizes the entire input, returning the token list terminated by a
// TokEOF token.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peek() rune {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() rune {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() rune {
	if lx.off >= len(lx.src) {
		return 0
	}
	r := lx.src[lx.off]
	lx.off++
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) errorf(p Pos, format string, args ...any) error {
	return &LexError{Pos: p, Msg: fmt.Sprintf(format, args...)}
}

// skipWS consumes whitespace and comments.
func (lx *Lexer) skipWS() error {
	for {
		r := lx.peek()
		switch {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			lx.advance()
		case r == '/' && lx.peek2() == '/':
			for lx.peek() != 0 && lx.peek() != '\n' {
				lx.advance()
			}
		case r == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			for {
				if lx.peek() == 0 {
					return lx.errorf(start, "unterminated block comment")
				}
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipWS(); err != nil {
		return Token{}, err
	}
	p := lx.pos()
	r := lx.peek()
	switch {
	case r == 0:
		return Token{Kind: TokEOF, Pos: p}, nil
	case r == '#':
		return lx.lexDirective(p)
	case unicode.IsLetter(r) || r == '_':
		return lx.lexIdent(p), nil
	case unicode.IsDigit(r) || (r == '.' && unicode.IsDigit(lx.peek2())):
		return lx.lexNumber(p)
	case r == '"':
		return lx.lexString(p)
	}
	return lx.lexOperator(p)
}

// lexDirective handles "#pragma ..." and "#include ..." lines. Includes are
// skipped (the MiniC runtime provides all builtins); pragmas are preserved.
func (lx *Lexer) lexDirective(p Pos) (Token, error) {
	var sb strings.Builder
	for lx.peek() != 0 && lx.peek() != '\n' {
		sb.WriteRune(lx.advance())
	}
	line := sb.String()
	switch {
	case strings.HasPrefix(line, "#pragma"):
		text := strings.TrimSpace(strings.TrimPrefix(line, "#pragma"))
		return Token{Kind: TokPragma, Lit: text, Pos: p}, nil
	case strings.HasPrefix(line, "#include"):
		// Ignore and continue with the next token.
		return lx.Next()
	default:
		return Token{}, lx.errorf(p, "unsupported directive %q", line)
	}
}

func (lx *Lexer) lexIdent(p Pos) Token {
	var sb strings.Builder
	for {
		r := lx.peek()
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			sb.WriteRune(lx.advance())
			continue
		}
		break
	}
	name := sb.String()
	if kw, ok := keywords[name]; ok {
		return Token{Kind: kw, Lit: name, Pos: p}
	}
	return Token{Kind: TokIdent, Lit: name, Pos: p}
}

func (lx *Lexer) lexNumber(p Pos) (Token, error) {
	var sb strings.Builder
	isFloat := false
	for unicode.IsDigit(lx.peek()) {
		sb.WriteRune(lx.advance())
	}
	if lx.peek() == '.' {
		isFloat = true
		sb.WriteRune(lx.advance())
		for unicode.IsDigit(lx.peek()) {
			sb.WriteRune(lx.advance())
		}
	}
	if lx.peek() == 'e' || lx.peek() == 'E' {
		isFloat = true
		sb.WriteRune(lx.advance())
		if lx.peek() == '+' || lx.peek() == '-' {
			sb.WriteRune(lx.advance())
		}
		if !unicode.IsDigit(lx.peek()) {
			return Token{}, lx.errorf(p, "malformed exponent in number %q", sb.String())
		}
		for unicode.IsDigit(lx.peek()) {
			sb.WriteRune(lx.advance())
		}
	}
	// Single-precision suffix: keep it in the literal text so the printer
	// and the single-precision transforms can round-trip it.
	if lx.peek() == 'f' || lx.peek() == 'F' {
		isFloat = true
		sb.WriteRune(lx.advance())
	}
	kind := TokIntLit
	if isFloat {
		kind = TokFloatLit
	}
	return Token{Kind: kind, Lit: sb.String(), Pos: p}, nil
}

func (lx *Lexer) lexString(p Pos) (Token, error) {
	lx.advance() // opening quote
	var sb strings.Builder
	for {
		r := lx.peek()
		if r == 0 || r == '\n' {
			return Token{}, lx.errorf(p, "unterminated string literal")
		}
		if r == '"' {
			lx.advance()
			return Token{Kind: TokStringLit, Lit: sb.String(), Pos: p}, nil
		}
		if r == '\\' {
			lx.advance()
			esc := lx.advance()
			switch esc {
			case 'n':
				sb.WriteRune('\n')
			case 't':
				sb.WriteRune('\t')
			case '\\', '"':
				sb.WriteRune(esc)
			default:
				return Token{}, lx.errorf(p, "unsupported escape \\%c", esc)
			}
			continue
		}
		sb.WriteRune(lx.advance())
	}
}

func (lx *Lexer) lexOperator(p Pos) (Token, error) {
	r := lx.advance()
	two := func(next rune, k2, k1 TokKind) Token {
		if lx.peek() == next {
			lx.advance()
			return Token{Kind: k2, Pos: p}
		}
		return Token{Kind: k1, Pos: p}
	}
	switch r {
	case '(':
		return Token{Kind: TokLParen, Pos: p}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: p}, nil
	case '{':
		return Token{Kind: TokLBrace, Pos: p}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: p}, nil
	case '[':
		return Token{Kind: TokLBracket, Pos: p}, nil
	case ']':
		return Token{Kind: TokRBracket, Pos: p}, nil
	case ',':
		return Token{Kind: TokComma, Pos: p}, nil
	case ';':
		return Token{Kind: TokSemi, Pos: p}, nil
	case '+':
		if lx.peek() == '+' {
			lx.advance()
			return Token{Kind: TokPlusPlus, Pos: p}, nil
		}
		return two('=', TokPlusEq, TokPlus), nil
	case '-':
		if lx.peek() == '-' {
			lx.advance()
			return Token{Kind: TokMinusMinus, Pos: p}, nil
		}
		return two('=', TokMinusEq, TokMinus), nil
	case '*':
		return two('=', TokStarEq, TokStar), nil
	case '/':
		return two('=', TokSlashEq, TokSlash), nil
	case '%':
		return Token{Kind: TokPercent, Pos: p}, nil
	case '<':
		return two('=', TokLe, TokLt), nil
	case '>':
		return two('=', TokGe, TokGt), nil
	case '=':
		return two('=', TokEqEq, TokAssign), nil
	case '!':
		return two('=', TokNe, TokNot), nil
	case '&':
		if lx.peek() == '&' {
			lx.advance()
			return Token{Kind: TokAndAnd, Pos: p}, nil
		}
		return Token{Kind: TokAmp, Pos: p}, nil
	case '|':
		if lx.peek() == '|' {
			lx.advance()
			return Token{Kind: TokOrOr, Pos: p}, nil
		}
		return Token{}, lx.errorf(p, "bitwise | is not supported")
	}
	return Token{}, lx.errorf(p, "unexpected character %q", r)
}
