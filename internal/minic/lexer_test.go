package minic

import "testing"

func kinds(toks []Token) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks, err := Lex("int x = 42;")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	want := []TokKind{TokKwInt, TokIdent, TokAssign, TokIntLit, TokSemi, TokEOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	cases := []struct {
		src  string
		want TokKind
	}{
		{"+", TokPlus}, {"+=", TokPlusEq}, {"++", TokPlusPlus},
		{"-", TokMinus}, {"-=", TokMinusEq}, {"--", TokMinusMinus},
		{"*", TokStar}, {"*=", TokStarEq},
		{"/", TokSlash}, {"/=", TokSlashEq},
		{"%", TokPercent},
		{"<", TokLt}, {"<=", TokLe}, {">", TokGt}, {">=", TokGe},
		{"==", TokEqEq}, {"!=", TokNe}, {"=", TokAssign},
		{"&&", TokAndAnd}, {"||", TokOrOr}, {"!", TokNot}, {"&", TokAmp},
	}
	for _, c := range cases {
		toks, err := Lex(c.src)
		if err != nil {
			t.Fatalf("Lex(%q): %v", c.src, err)
		}
		if toks[0].Kind != c.want {
			t.Errorf("Lex(%q) = %s, want %s", c.src, toks[0].Kind, c.want)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind TokKind
		lit  string
	}{
		{"0", TokIntLit, "0"},
		{"12345", TokIntLit, "12345"},
		{"3.14", TokFloatLit, "3.14"},
		{"1e9", TokFloatLit, "1e9"},
		{"2.5e-3", TokFloatLit, "2.5e-3"},
		{"1.0f", TokFloatLit, "1.0f"},
		{"6f", TokFloatLit, "6f"},
		{".5", TokFloatLit, ".5"},
	}
	for _, c := range cases {
		toks, err := Lex(c.src)
		if err != nil {
			t.Fatalf("Lex(%q): %v", c.src, err)
		}
		if toks[0].Kind != c.kind || toks[0].Lit != c.lit {
			t.Errorf("Lex(%q) = %s %q, want %s %q", c.src, toks[0].Kind, toks[0].Lit, c.kind, c.lit)
		}
	}
}

func TestLexMalformedExponent(t *testing.T) {
	if _, err := Lex("1e+"); err == nil {
		t.Fatal("expected error for malformed exponent")
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("// line comment\nint /* inline */ x; /* multi\nline */ 7")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	want := []TokKind{TokKwInt, TokIdent, TokSemi, TokIntLit, TokEOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	if _, err := Lex("/* never closed"); err == nil {
		t.Fatal("expected error for unterminated comment")
	}
}

func TestLexPragma(t *testing.T) {
	toks, err := Lex("#pragma unroll 4\nfor")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if toks[0].Kind != TokPragma || toks[0].Lit != "unroll 4" {
		t.Fatalf("got %v, want pragma 'unroll 4'", toks[0])
	}
	if toks[1].Kind != TokKwFor {
		t.Fatalf("got %v, want 'for'", toks[1])
	}
}

func TestLexIncludeSkipped(t *testing.T) {
	toks, err := Lex("#include <math.h>\nint x;")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if toks[0].Kind != TokKwInt {
		t.Fatalf("include not skipped: first token %v", toks[0])
	}
}

func TestLexString(t *testing.T) {
	toks, err := Lex(`"hello\nworld"`)
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if toks[0].Kind != TokStringLit || toks[0].Lit != "hello\nworld" {
		t.Fatalf("got %v", toks[0])
	}
}

func TestLexUnterminatedString(t *testing.T) {
	if _, err := Lex(`"oops`); err == nil {
		t.Fatal("expected error for unterminated string")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("int\n  x;")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("int at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("x at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, err := Lex("forx for whiley while int_ int")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	want := []TokKind{TokIdent, TokKwFor, TokIdent, TokKwWhile, TokIdent, TokKwInt, TokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexUnexpectedChar(t *testing.T) {
	if _, err := Lex("int x @ 3;"); err == nil {
		t.Fatal("expected error for @")
	}
}

func TestLexBitwiseOrRejected(t *testing.T) {
	if _, err := Lex("a | b"); err == nil {
		t.Fatal("expected error for single |")
	}
}
