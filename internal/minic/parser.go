package minic

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError describes a syntax error with its position.
type ParseError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *ParseError) Error() string { return fmt.Sprintf("parse %s: %s", e.Pos, e.Msg) }

// Parser is a recursive-descent parser for MiniC.
type Parser struct {
	toks  []Token
	pos   int
	depth int
}

// maxParseDepth bounds expression/statement nesting. Without it, input like
// a megabyte of '(' drives the recursive descent deep enough to fatally
// overflow the goroutine stack — unrecoverable in Go, so a single malicious
// source would kill a process parsing untrusted input. Real programs nest a
// few dozen levels; the limit is far above anything legitimate.
const maxParseDepth = 10000

// enter guards one recursion level; callers must pair it with leave.
func (p *Parser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		return p.errorf("nesting too deep (more than %d levels)", maxParseDepth)
	}
	return nil
}

func (p *Parser) leave() { p.depth-- }

// Parse lexes and parses src into a Program with node IDs assigned.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	AssignIDs(prog)
	return prog, nil
}

// MustParse parses src and panics on error; for tests and embedded
// benchmark sources that are known to be valid.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(k TokKind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k TokKind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	return Token{}, p.errorf("expected %s, found %s", k, p.cur())
}

func (p *Parser) errorf(format string, args ...any) error {
	return &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func isTypeTok(k TokKind) bool {
	switch k {
	case TokKwInt, TokKwFloat, TokKwDouble, TokKwVoid, TokKwBool, TokKwConst:
		return true
	}
	return false
}

// parseType parses ['const'] basetype ['*'].
func (p *Parser) parseType() (Type, error) {
	var t Type
	if p.accept(TokKwConst) {
		t.Const = true
	}
	switch p.cur().Kind {
	case TokKwInt:
		t.Kind = Int
	case TokKwFloat:
		t.Kind = Float
	case TokKwDouble:
		t.Kind = Double
	case TokKwVoid:
		t.Kind = Void
	case TokKwBool:
		t.Kind = Bool
	default:
		return t, p.errorf("expected type, found %s", p.cur())
	}
	p.next()
	if p.accept(TokStar) {
		t.Ptr = true
	}
	return t, nil
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	prog.pos = p.cur().Pos
	for !p.at(TokEOF) {
		f, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, f)
	}
	return prog, nil
}

func (p *Parser) parseFunc() (*FuncDecl, error) {
	start := p.cur().Pos
	ret, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	f := &FuncDecl{Ret: ret, Name: name.Lit}
	f.pos = start
	if !p.at(TokRParen) {
		for {
			param, err := p.parseParam()
			if err != nil {
				return nil, err
			}
			f.Params = append(f.Params, param)
			if !p.accept(TokComma) {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *Parser) parseParam() (*Param, error) {
	start := p.cur().Pos
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	// Array-style parameter "double a[]" is pointer sugar.
	if p.accept(TokLBracket) {
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		t.Ptr = true
	}
	prm := &Param{Type: t, Name: name.Lit}
	prm.pos = start
	return prm, nil
}

func (p *Parser) parseBlock() (*Block, error) {
	start, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	b := &Block{}
	b.pos = start.Pos
	for !p.at(TokRBrace) {
		if p.at(TokEOF) {
			return nil, p.errorf("unexpected EOF in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	p.next() // consume '}'
	return b, nil
}

// parseStmt parses one statement. Consecutive pragmas are collected and
// attached to a following loop; pragmas not followed by a loop become
// PragmaStmt nodes.
func (p *Parser) parseStmt() (Stmt, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	if p.at(TokPragma) {
		var pragmas []string
		firstPos := p.cur().Pos
		for p.at(TokPragma) {
			pragmas = append(pragmas, p.next().Lit)
		}
		switch p.cur().Kind {
		case TokKwFor, TokKwWhile:
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			switch loop := s.(type) {
			case *ForStmt:
				loop.Pragmas = append(pragmas, loop.Pragmas...)
			case *WhileStmt:
				loop.Pragmas = append(pragmas, loop.Pragmas...)
			}
			return s, nil
		default:
			if len(pragmas) == 1 {
				ps := &PragmaStmt{Text: pragmas[0]}
				ps.pos = firstPos
				return ps, nil
			}
			// Multiple free-standing pragmas: keep them as one block-less
			// sequence by re-queuing all but the first.
			b := &Block{}
			b.pos = firstPos
			for _, text := range pragmas {
				ps := &PragmaStmt{Text: text}
				ps.pos = firstPos
				b.Stmts = append(b.Stmts, ps)
			}
			return b, nil
		}
	}

	switch p.cur().Kind {
	case TokLBrace:
		return p.parseBlock()
	case TokKwFor:
		return p.parseFor()
	case TokKwWhile:
		return p.parseWhile()
	case TokKwIf:
		return p.parseIf()
	case TokKwReturn:
		start := p.next().Pos
		rs := &ReturnStmt{}
		rs.pos = start
		if !p.at(TokSemi) {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.X = x
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return rs, nil
	case TokKwBreak:
		start := p.next().Pos
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		bs := &BreakStmt{}
		bs.pos = start
		return bs, nil
	case TokKwContinue:
		start := p.next().Pos
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		cs := &ContinueStmt{}
		cs.pos = start
		return cs, nil
	case TokSemi:
		p.next()
		return nil, nil
	}
	if isTypeTok(p.cur().Kind) {
		d, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return d, nil
	}
	// Expression statement.
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	es := &ExprStmt{X: x}
	es.pos = exprPos(x)
	return es, nil
}

func exprPos(e Expr) Pos {
	if e == nil {
		return Pos{}
	}
	return e.NodePos()
}

// parseDecl parses "type name [ '[' expr ']' ] [ '=' expr ]" without the
// trailing semicolon (shared by statements and for-inits).
func (p *Parser) parseDecl() (*DeclStmt, error) {
	start := p.cur().Pos
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{Type: t, Name: name.Lit}
	d.pos = start
	if p.accept(TokLBracket) {
		n, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.ArrayLen = n
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
	}
	if p.accept(TokAssign) {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	return d, nil
}

func (p *Parser) parseFor() (*ForStmt, error) {
	start := p.next().Pos // 'for'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	fs := &ForStmt{}
	fs.pos = start
	if !p.at(TokSemi) {
		if isTypeTok(p.cur().Kind) {
			d, err := p.parseDecl()
			if err != nil {
				return nil, err
			}
			fs.Init = d
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			es := &ExprStmt{X: x}
			es.pos = exprPos(x)
			fs.Init = es
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if !p.at(TokSemi) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fs.Cond = cond
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if !p.at(TokRParen) {
		post, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fs.Post = post
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseLoopBody()
	if err != nil {
		return nil, err
	}
	fs.Body = body
	return fs, nil
}

func (p *Parser) parseWhile() (*WhileStmt, error) {
	start := p.next().Pos // 'while'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseLoopBody()
	if err != nil {
		return nil, err
	}
	ws := &WhileStmt{Cond: cond, Body: body}
	ws.pos = start
	return ws, nil
}

// parseLoopBody parses a block, or a single statement wrapped in a block.
func (p *Parser) parseLoopBody() (*Block, error) {
	if p.at(TokLBrace) {
		return p.parseBlock()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	b := &Block{}
	if s != nil {
		b.pos = s.NodePos()
		b.Stmts = []Stmt{s}
	}
	return b, nil
}

func (p *Parser) parseIf() (*IfStmt, error) {
	start := p.next().Pos // 'if'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseLoopBody()
	if err != nil {
		return nil, err
	}
	is := &IfStmt{Cond: cond, Then: then}
	is.pos = start
	if p.accept(TokKwElse) {
		if p.at(TokKwIf) {
			elseIf, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			is.Else = elseIf
		} else {
			blk, err := p.parseLoopBody()
			if err != nil {
				return nil, err
			}
			is.Else = blk
		}
	}
	return is, nil
}

// Expression parsing: precedence climbing with assignment at the bottom.

func (p *Parser) parseExpr() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	return p.parseAssign()
}

func isAssignOp(k TokKind) bool {
	switch k {
	case TokAssign, TokPlusEq, TokMinusEq, TokStarEq, TokSlashEq:
		return true
	}
	return false
}

func (p *Parser) parseAssign() (Expr, error) {
	lhs, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if isAssignOp(p.cur().Kind) {
		switch lhs.(type) {
		case *Ident, *IndexExpr:
		default:
			return nil, p.errorf("invalid assignment target %T", lhs)
		}
		op := p.next().Kind
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		a := &AssignExpr{Op: op, LHS: lhs, RHS: rhs}
		a.pos = exprPos(lhs)
		return a, nil
	}
	return lhs, nil
}

func (p *Parser) parseBinaryLevel(ops []TokKind, sub func() (Expr, error)) (Expr, error) {
	l, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		match := false
		for _, op := range ops {
			if p.at(op) {
				match = true
				break
			}
		}
		if !match {
			return l, nil
		}
		op := p.next().Kind
		r, err := sub()
		if err != nil {
			return nil, err
		}
		b := &BinaryExpr{Op: op, L: l, R: r}
		b.pos = exprPos(l)
		l = b
	}
}

func (p *Parser) parseOr() (Expr, error) {
	return p.parseBinaryLevel([]TokKind{TokOrOr}, p.parseAnd)
}

func (p *Parser) parseAnd() (Expr, error) {
	return p.parseBinaryLevel([]TokKind{TokAndAnd}, p.parseEquality)
}

func (p *Parser) parseEquality() (Expr, error) {
	return p.parseBinaryLevel([]TokKind{TokEqEq, TokNe}, p.parseRelational)
}

func (p *Parser) parseRelational() (Expr, error) {
	return p.parseBinaryLevel([]TokKind{TokLt, TokGt, TokLe, TokGe}, p.parseAdditive)
}

func (p *Parser) parseAdditive() (Expr, error) {
	return p.parseBinaryLevel([]TokKind{TokPlus, TokMinus}, p.parseMultiplicative)
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	return p.parseBinaryLevel([]TokKind{TokStar, TokSlash, TokPercent}, p.parseUnary)
}

func (p *Parser) parseUnary() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	switch p.cur().Kind {
	case TokMinus, TokNot:
		start := p.cur().Pos
		op := p.next().Kind
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		u := &UnaryExpr{Op: op, X: x}
		u.pos = start
		return u, nil
	case TokLParen:
		// Possible cast: '(' type ')' unary.
		if isTypeTok(p.toks[p.pos+1].Kind) {
			start := p.next().Pos // '('
			t, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			c := &CastExpr{To: t, X: x}
			c.pos = start
			return c, nil
		}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case TokLBracket:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			ie := &IndexExpr{Base: x, Index: idx}
			ie.pos = exprPos(x)
			x = ie
		case TokPlusPlus, TokMinusMinus:
			op := p.next().Kind
			switch x.(type) {
			case *Ident, *IndexExpr:
			default:
				return nil, p.errorf("invalid ++/-- target %T", x)
			}
			id := &IncDecExpr{Op: op, X: x}
			id.pos = exprPos(x)
			x = id
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokIntLit:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer literal %q: %v", t.Lit, err)
		}
		il := &IntLit{Val: v, Text: t.Lit}
		il.pos = t.Pos
		return il, nil
	case TokFloatLit:
		p.next()
		text := t.Lit
		single := strings.HasSuffix(text, "f") || strings.HasSuffix(text, "F")
		numText := strings.TrimRight(text, "fF")
		v, err := strconv.ParseFloat(numText, 64)
		if err != nil {
			return nil, p.errorf("bad float literal %q: %v", t.Lit, err)
		}
		fl := &FloatLit{Val: v, Text: text, Single: single}
		fl.pos = t.Pos
		return fl, nil
	case TokStringLit:
		p.next()
		sl := &StringLit{Val: t.Lit}
		sl.pos = t.Pos
		return sl, nil
	case TokKwTrue, TokKwFalse:
		p.next()
		bl := &BoolLit{Val: t.Kind == TokKwTrue}
		bl.pos = t.Pos
		return bl, nil
	case TokIdent:
		p.next()
		if p.at(TokLParen) {
			p.next()
			call := &CallExpr{Fun: t.Lit}
			call.pos = t.Pos
			if !p.at(TokRParen) {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(TokComma) {
						break
					}
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		id := &Ident{Name: t.Lit}
		id.pos = t.Pos
		return id, nil
	case TokLParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errorf("unexpected token %s in expression", t)
}
