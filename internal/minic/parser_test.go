package minic

import (
	"strings"
	"testing"
	"testing/quick"
)

const sampleSrc = `
void saxpy(int n, float a, const float *x, float *y) {
    for (int i = 0; i < n; i++) {
        y[i] = a * x[i] + y[i];
    }
}

double dot(int n, const double *x, const double *y) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        s += x[i] * y[i];
    }
    return s;
}
`

func TestParseSample(t *testing.T) {
	prog, err := Parse(sampleSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Funcs) != 2 {
		t.Fatalf("got %d funcs, want 2", len(prog.Funcs))
	}
	saxpy := prog.Func("saxpy")
	if saxpy == nil {
		t.Fatal("saxpy not found")
	}
	if len(saxpy.Params) != 4 {
		t.Fatalf("saxpy params = %d, want 4", len(saxpy.Params))
	}
	if !saxpy.Params[2].Type.Ptr || !saxpy.Params[2].Type.Const {
		t.Errorf("param x should be const pointer, got %v", saxpy.Params[2].Type)
	}
	if saxpy.Ret.Kind != Void {
		t.Errorf("saxpy ret = %v, want void", saxpy.Ret)
	}
	if prog.Func("dot").Ret.Kind != Double {
		t.Errorf("dot ret kind wrong")
	}
	if prog.Func("missing") != nil {
		t.Error("Func(missing) should be nil")
	}
}

func TestParseForLoopStructure(t *testing.T) {
	prog := MustParse(sampleSrc)
	body := prog.Func("saxpy").Body
	if len(body.Stmts) != 1 {
		t.Fatalf("saxpy body stmts = %d, want 1", len(body.Stmts))
	}
	loop, ok := body.Stmts[0].(*ForStmt)
	if !ok {
		t.Fatalf("stmt is %T, want *ForStmt", body.Stmts[0])
	}
	if _, ok := loop.Init.(*DeclStmt); !ok {
		t.Errorf("loop init is %T, want *DeclStmt", loop.Init)
	}
	cond, ok := loop.Cond.(*BinaryExpr)
	if !ok || cond.Op != TokLt {
		t.Errorf("loop cond wrong: %v", FormatExpr(loop.Cond))
	}
	if _, ok := loop.Post.(*IncDecExpr); !ok {
		t.Errorf("loop post is %T, want *IncDecExpr", loop.Post)
	}
}

func TestParsePragmaAttachment(t *testing.T) {
	src := `
void k(int n, float *a) {
    #pragma unroll 8
    for (int i = 0; i < n; i++) {
        a[i] = a[i] * 2.0f;
    }
    #pragma standalone
    int x = 1;
    x = x + 1;
}
`
	prog := MustParse(src)
	body := prog.Func("k").Body
	loop := body.Stmts[0].(*ForStmt)
	if len(loop.Pragmas) != 1 || loop.Pragmas[0] != "unroll 8" {
		t.Fatalf("loop pragmas = %v, want [unroll 8]", loop.Pragmas)
	}
	if _, ok := body.Stmts[1].(*PragmaStmt); !ok {
		t.Fatalf("stmt 1 is %T, want *PragmaStmt", body.Stmts[1])
	}
}

func TestParseMultiplePragmasBeforeLoop(t *testing.T) {
	src := `
void k(int n, float *a) {
    #pragma omp parallel for
    #pragma unroll 2
    for (int i = 0; i < n; i++) { a[i] = 0.0f; }
}
`
	prog := MustParse(src)
	loop := prog.Func("k").Body.Stmts[0].(*ForStmt)
	if len(loop.Pragmas) != 2 {
		t.Fatalf("pragmas = %v, want 2 entries", loop.Pragmas)
	}
	if loop.Pragmas[0] != "omp parallel for" || loop.Pragmas[1] != "unroll 2" {
		t.Fatalf("pragmas = %v", loop.Pragmas)
	}
}

func TestParseIfElseChain(t *testing.T) {
	src := `
int sign(double x) {
    if (x > 0.0) {
        return 1;
    } else if (x < 0.0) {
        return -1;
    } else {
        return 0;
    }
}
`
	prog := MustParse(src)
	ifs, ok := prog.Func("sign").Body.Stmts[0].(*IfStmt)
	if !ok {
		t.Fatal("expected IfStmt")
	}
	elseIf, ok := ifs.Else.(*IfStmt)
	if !ok {
		t.Fatalf("else is %T, want *IfStmt", ifs.Else)
	}
	if _, ok := elseIf.Else.(*Block); !ok {
		t.Fatalf("final else is %T, want *Block", elseIf.Else)
	}
}

func TestParsePrecedence(t *testing.T) {
	src := `int f() { return 1 + 2 * 3 - 4 / 2; }`
	prog := MustParse(src)
	ret := prog.Func("f").Body.Stmts[0].(*ReturnStmt)
	// Expect ((1 + (2*3)) - (4/2))
	top, ok := ret.X.(*BinaryExpr)
	if !ok || top.Op != TokMinus {
		t.Fatalf("top op = %v", FormatExpr(ret.X))
	}
	l := top.L.(*BinaryExpr)
	if l.Op != TokPlus {
		t.Fatalf("left op wrong: %v", FormatExpr(l))
	}
	if l.R.(*BinaryExpr).Op != TokStar {
		t.Fatal("2*3 should bind tighter than +")
	}
	if top.R.(*BinaryExpr).Op != TokSlash {
		t.Fatal("4/2 should bind tighter than -")
	}
}

func TestParseLogicalPrecedence(t *testing.T) {
	src := `bool f(int a, int b, int c) { return a < b && b < c || a == c; }`
	prog := MustParse(src)
	ret := prog.Func("f").Body.Stmts[0].(*ReturnStmt)
	top := ret.X.(*BinaryExpr)
	if top.Op != TokOrOr {
		t.Fatalf("top should be ||, got %s", top.Op)
	}
	if top.L.(*BinaryExpr).Op != TokAndAnd {
		t.Fatal("&& should bind tighter than ||")
	}
}

func TestParseCast(t *testing.T) {
	src := `float f(int x) { return (float)x / 2.0f; }`
	prog := MustParse(src)
	ret := prog.Func("f").Body.Stmts[0].(*ReturnStmt)
	div := ret.X.(*BinaryExpr)
	cast, ok := div.L.(*CastExpr)
	if !ok {
		t.Fatalf("lhs is %T, want *CastExpr", div.L)
	}
	if cast.To.Kind != Float {
		t.Errorf("cast to %v, want float", cast.To)
	}
}

func TestParseAssignOps(t *testing.T) {
	src := `void f(float *a, int i) { a[i] += 1.0f; a[i] -= 2.0f; a[i] *= 3.0f; a[i] /= 4.0f; }`
	prog := MustParse(src)
	stmts := prog.Func("f").Body.Stmts
	wantOps := []TokKind{TokPlusEq, TokMinusEq, TokStarEq, TokSlashEq}
	for i, w := range wantOps {
		a := stmts[i].(*ExprStmt).X.(*AssignExpr)
		if a.Op != w {
			t.Errorf("stmt %d op = %s, want %s", i, a.Op, w)
		}
		if _, ok := a.LHS.(*IndexExpr); !ok {
			t.Errorf("stmt %d lhs is %T", i, a.LHS)
		}
	}
}

func TestParseLocalArray(t *testing.T) {
	src := `void f() { double acc[16]; acc[0] = 1.0; }`
	prog := MustParse(src)
	d := prog.Func("f").Body.Stmts[0].(*DeclStmt)
	if d.ArrayLen == nil {
		t.Fatal("expected array length")
	}
	if d.ArrayLen.(*IntLit).Val != 16 {
		t.Errorf("array len = %v", FormatExpr(d.ArrayLen))
	}
}

func TestParseWhileBreakContinue(t *testing.T) {
	src := `
void f(int n) {
    int i = 0;
    while (i < n) {
        i++;
        if (i == 3) { continue; }
        if (i > 10) { break; }
    }
}
`
	prog := MustParse(src)
	ws, ok := prog.Func("f").Body.Stmts[1].(*WhileStmt)
	if !ok {
		t.Fatal("expected WhileStmt")
	}
	if len(ws.Body.Stmts) != 3 {
		t.Fatalf("while body stmts = %d", len(ws.Body.Stmts))
	}
}

func TestParseSingleStmtBodies(t *testing.T) {
	src := `void f(int n, int *a) { for (int i = 0; i < n; i++) a[i] = 0; if (n > 0) a[0] = 1; else a[0] = 2; }`
	prog := MustParse(src)
	loop := prog.Func("f").Body.Stmts[0].(*ForStmt)
	if len(loop.Body.Stmts) != 1 {
		t.Fatalf("single-stmt body not wrapped: %d stmts", len(loop.Body.Stmts))
	}
}

func TestParseCallArgs(t *testing.T) {
	src := `double f(double x) { return pow(sqrt(x), 2.0) + exp(0.0); }`
	prog := MustParse(src)
	ret := prog.Func("f").Body.Stmts[0].(*ReturnStmt)
	add := ret.X.(*BinaryExpr)
	call := add.L.(*CallExpr)
	if call.Fun != "pow" || len(call.Args) != 2 {
		t.Fatalf("call = %v", FormatExpr(call))
	}
	if inner := call.Args[0].(*CallExpr); inner.Fun != "sqrt" {
		t.Fatalf("inner call = %v", FormatExpr(inner))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"void f( {",
		"void f() { int; }",
		"void f() { 1 + ; }",
		"void f() { x = ; }",
		"void f() { for (;;) }",
		"void f() { 3 = x; }",
		"void f() { (x+1)++; }",
		"int f() { return 1 }",
		"void f() { if x { } }",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseEmptyStatement(t *testing.T) {
	prog := MustParse("void f() { ;; int x = 1; ; }")
	if n := len(prog.Func("f").Body.Stmts); n != 1 {
		t.Fatalf("empty statements not skipped: %d stmts", n)
	}
}

func TestAssignIDsDense(t *testing.T) {
	prog := MustParse(sampleSrc)
	seen := map[int]bool{}
	max := 0
	Walk(prog, func(n Node) bool {
		id := n.ID()
		if id <= 0 {
			t.Fatalf("node %T has non-positive ID %d", n, id)
		}
		if seen[id] {
			t.Fatalf("duplicate ID %d on %T", id, n)
		}
		seen[id] = true
		if id > max {
			max = id
		}
		return true
	})
	if len(seen) != max {
		t.Errorf("IDs not dense: %d nodes, max ID %d", len(seen), max)
	}
}

func TestParentsMap(t *testing.T) {
	prog := MustParse(sampleSrc)
	parents := Parents(prog)
	Walk(prog, func(n Node) bool {
		if n == Node(prog) {
			return true
		}
		if _, ok := parents[n]; !ok {
			t.Errorf("node %T missing from parents map", n)
		}
		return true
	})
	loop := prog.Func("saxpy").Body.Stmts[0]
	if parents[loop] != Node(prog.Func("saxpy").Body) {
		t.Error("loop parent should be function body block")
	}
}

func TestCloneIndependence(t *testing.T) {
	prog := MustParse(sampleSrc)
	clone := prog.Clone()
	if Print(prog) != Print(clone) {
		t.Fatal("clone prints differently")
	}
	// Mutate the clone; original must be untouched.
	clone.Func("saxpy").Body.Stmts[0].(*ForStmt).Pragmas = []string{"unroll 4"}
	clone.Func("dot").Name = "dot2"
	if strings.Contains(Print(prog), "unroll 4") {
		t.Error("mutating clone affected original pragmas")
	}
	if prog.Func("dot") == nil {
		t.Error("mutating clone affected original function name")
	}
}

func TestMustFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustFunc should panic for missing function")
		}
	}()
	MustParse("void f() { }").MustFunc("g")
}

// TestQuickParserNeverPanics: arbitrary byte soup must yield an error or a
// program, never a panic — the robustness property the meta-programming
// layer needs when fed unvetted sources.
func TestQuickParserNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Targeted nasties.
	for _, src := range []string{
		"", "void", "void f(", "}{", "#pragma", "#pragma x\n#pragma y",
		"void f() { for (;;) { } }", "void f() { a[[]]; }",
		"int f() { return ((((1)))); }", "\x00\x01\x02",
		"void f() { x++++; }", "void f(int a, ) { }",
	} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}
