package minic

import (
	"fmt"
	"strings"
)

// Print renders the program back to MiniC source. The output is valid
// input to Parse, and the printer normalizes formatting so that
// Parse(Print(p)) is structurally identical to p (the round-trip property
// is enforced by tests).
func Print(p *Program) string {
	var pr printer
	for i, f := range p.Funcs {
		if i > 0 {
			pr.nl()
		}
		pr.fun(f)
	}
	return pr.sb.String()
}

// FormatExpr renders a single expression.
func FormatExpr(e Expr) string {
	var pr printer
	pr.expr(e, 0)
	return pr.sb.String()
}

// FormatStmt renders a single statement at indent 0.
func FormatStmt(s Stmt) string {
	var pr printer
	pr.stmt(s)
	return strings.TrimRight(pr.sb.String(), "\n")
}

// CountLOC counts non-blank lines of the printed program; this backs the
// paper's Table I "added lines of code" metric.
func CountLOC(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (pr *printer) ws() {
	for i := 0; i < pr.indent; i++ {
		pr.sb.WriteString("    ")
	}
}

func (pr *printer) nl() { pr.sb.WriteByte('\n') }

func (pr *printer) printf(format string, args ...any) {
	fmt.Fprintf(&pr.sb, format, args...)
}

func typeStr(t Type) string {
	s := ""
	if t.Const {
		s += "const "
	}
	s += t.Kind.String()
	if t.Ptr {
		s += " *"
	}
	return s
}

func (pr *printer) fun(f *FuncDecl) {
	pr.printf("%s %s(", typeStr(f.Ret), f.Name)
	for i, p := range f.Params {
		if i > 0 {
			pr.sb.WriteString(", ")
		}
		if p.Type.Ptr {
			pr.printf("%s%s", typeStr(p.Type), p.Name)
		} else {
			pr.printf("%s %s", typeStr(p.Type), p.Name)
		}
	}
	pr.sb.WriteString(") ")
	pr.block(f.Body)
	pr.nl()
}

func (pr *printer) block(b *Block) {
	pr.sb.WriteString("{\n")
	pr.indent++
	for _, s := range b.Stmts {
		pr.stmt(s)
	}
	pr.indent--
	pr.ws()
	pr.sb.WriteString("}")
}

func (pr *printer) stmt(s Stmt) {
	switch v := s.(type) {
	case *Block:
		pr.ws()
		pr.block(v)
		pr.nl()
	case *DeclStmt:
		pr.ws()
		pr.declNoSemi(v)
		pr.sb.WriteString(";\n")
	case *ExprStmt:
		pr.ws()
		pr.expr(v.X, 0)
		pr.sb.WriteString(";\n")
	case *ForStmt:
		for _, pg := range v.Pragmas {
			pr.ws()
			pr.printf("#pragma %s\n", pg)
		}
		pr.ws()
		pr.sb.WriteString("for (")
		switch init := v.Init.(type) {
		case nil:
		case *DeclStmt:
			pr.declNoSemi(init)
		case *ExprStmt:
			pr.expr(init.X, 0)
		}
		pr.sb.WriteString("; ")
		if v.Cond != nil {
			pr.expr(v.Cond, 0)
		}
		pr.sb.WriteString("; ")
		if v.Post != nil {
			pr.expr(v.Post, 0)
		}
		pr.sb.WriteString(") ")
		pr.block(v.Body)
		pr.nl()
	case *WhileStmt:
		for _, pg := range v.Pragmas {
			pr.ws()
			pr.printf("#pragma %s\n", pg)
		}
		pr.ws()
		pr.sb.WriteString("while (")
		pr.expr(v.Cond, 0)
		pr.sb.WriteString(") ")
		pr.block(v.Body)
		pr.nl()
	case *IfStmt:
		pr.ws()
		pr.ifChain(v)
		pr.nl()
	case *ReturnStmt:
		pr.ws()
		if v.X != nil {
			pr.sb.WriteString("return ")
			pr.expr(v.X, 0)
			pr.sb.WriteString(";\n")
		} else {
			pr.sb.WriteString("return;\n")
		}
	case *BreakStmt:
		pr.ws()
		pr.sb.WriteString("break;\n")
	case *ContinueStmt:
		pr.ws()
		pr.sb.WriteString("continue;\n")
	case *PragmaStmt:
		pr.ws()
		pr.printf("#pragma %s\n", v.Text)
	default:
		panic(fmt.Sprintf("minic: printer: unhandled statement %T", s))
	}
}

func (pr *printer) ifChain(v *IfStmt) {
	pr.sb.WriteString("if (")
	pr.expr(v.Cond, 0)
	pr.sb.WriteString(") ")
	pr.block(v.Then)
	switch e := v.Else.(type) {
	case nil:
	case *IfStmt:
		pr.sb.WriteString(" else ")
		pr.ifChain(e)
	case *Block:
		pr.sb.WriteString(" else ")
		pr.block(e)
	}
}

func (pr *printer) declNoSemi(d *DeclStmt) {
	if d.Type.Ptr {
		pr.printf("%s%s", typeStr(d.Type), d.Name)
	} else {
		pr.printf("%s %s", typeStr(d.Type), d.Name)
	}
	if d.ArrayLen != nil {
		pr.sb.WriteString("[")
		pr.expr(d.ArrayLen, 0)
		pr.sb.WriteString("]")
	}
	if d.Init != nil {
		pr.sb.WriteString(" = ")
		pr.expr(d.Init, 0)
	}
}

// Binding powers for precedence-aware parenthesization; higher binds
// tighter. Mirrors the parser's precedence levels.
func prec(op TokKind) int {
	switch op {
	case TokOrOr:
		return 1
	case TokAndAnd:
		return 2
	case TokEqEq, TokNe:
		return 3
	case TokLt, TokGt, TokLe, TokGe:
		return 4
	case TokPlus, TokMinus:
		return 5
	case TokStar, TokSlash, TokPercent:
		return 6
	}
	return 0
}

// expr prints e; outer is the binding power of the surrounding context.
func (pr *printer) expr(e Expr, outer int) {
	switch v := e.(type) {
	case *Ident:
		pr.sb.WriteString(v.Name)
	case *IntLit:
		if v.Text != "" {
			pr.sb.WriteString(v.Text)
		} else {
			pr.printf("%d", v.Val)
		}
	case *FloatLit:
		pr.sb.WriteString(floatText(v))
	case *BoolLit:
		if v.Val {
			pr.sb.WriteString("true")
		} else {
			pr.sb.WriteString("false")
		}
	case *StringLit:
		pr.printf("%q", v.Val)
	case *UnaryExpr:
		if outer > 7 {
			pr.sb.WriteString("(")
		}
		if v.Op == TokMinus {
			pr.sb.WriteString("-")
			// Avoid "--" when the operand is itself a unary minus.
			if inner, ok := v.X.(*UnaryExpr); ok && inner.Op == TokMinus {
				pr.sb.WriteString(" ")
			}
		} else {
			pr.sb.WriteString("!")
		}
		pr.expr(v.X, 7)
		if outer > 7 {
			pr.sb.WriteString(")")
		}
	case *BinaryExpr:
		p := prec(v.Op)
		if p < outer {
			pr.sb.WriteString("(")
		}
		pr.expr(v.L, p)
		pr.printf(" %s ", v.Op)
		pr.expr(v.R, p+1) // left-assoc: right operand needs higher power
		if p < outer {
			pr.sb.WriteString(")")
		}
	case *AssignExpr:
		if outer > 0 {
			pr.sb.WriteString("(")
		}
		pr.expr(v.LHS, 8)
		pr.printf(" %s ", v.Op)
		pr.expr(v.RHS, 0)
		if outer > 0 {
			pr.sb.WriteString(")")
		}
	case *IncDecExpr:
		pr.expr(v.X, 8)
		pr.sb.WriteString(v.Op.String())
	case *IndexExpr:
		pr.expr(v.Base, 8)
		pr.sb.WriteString("[")
		pr.expr(v.Index, 0)
		pr.sb.WriteString("]")
	case *CallExpr:
		pr.sb.WriteString(v.Fun)
		pr.sb.WriteString("(")
		for i, a := range v.Args {
			if i > 0 {
				pr.sb.WriteString(", ")
			}
			pr.expr(a, 0)
		}
		pr.sb.WriteString(")")
	case *CastExpr:
		if outer > 7 {
			pr.sb.WriteString("(")
		}
		pr.printf("(%s)", typeStr(v.To))
		pr.expr(v.X, 7)
		if outer > 7 {
			pr.sb.WriteString(")")
		}
	default:
		panic(fmt.Sprintf("minic: printer: unhandled expression %T", e))
	}
}

// floatText renders a float literal, preserving the original spelling when
// available and consistent with the Single flag.
func floatText(v *FloatLit) string {
	text := v.Text
	if text != "" {
		hasSuffix := strings.HasSuffix(text, "f") || strings.HasSuffix(text, "F")
		if hasSuffix == v.Single {
			return text
		}
		if v.Single {
			return text + "f"
		}
		return strings.TrimRight(text, "fF")
	}
	s := fmt.Sprintf("%g", v.Val)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	if v.Single {
		s += "f"
	}
	return s
}
