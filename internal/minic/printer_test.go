package minic

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// roundTrip asserts Parse(Print(Parse(src))) prints identically.
func roundTrip(t *testing.T, src string) {
	t.Helper()
	p1, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v\nsource:\n%s", err, src)
	}
	out1 := Print(p1)
	p2, err := Parse(out1)
	if err != nil {
		t.Fatalf("reparse: %v\nprinted:\n%s", err, out1)
	}
	out2 := Print(p2)
	if out1 != out2 {
		t.Fatalf("round trip not stable:\nfirst:\n%s\nsecond:\n%s", out1, out2)
	}
}

func TestPrintRoundTripSample(t *testing.T) { roundTrip(t, sampleSrc) }

func TestPrintRoundTripConstructs(t *testing.T) {
	cases := []string{
		`void f() { }`,
		`int f() { return -1; }`,
		`void f(int n) { while (n > 0) { n--; } }`,
		`void f(int n, double *a) {
			#pragma unroll 4
			for (int i = 0; i < n; i++) { a[i] = (double)i; }
		}`,
		`double f(double x) { return x < 0.0 ? 0.0 : x; }`, // ternary unsupported: expect failure below
	}
	for _, src := range cases[:4] {
		roundTrip(t, src)
	}
	if _, err := Parse(cases[4]); err == nil {
		t.Error("ternary should be rejected (unsupported construct)")
	}
}

func TestPrintParenthesization(t *testing.T) {
	cases := []struct{ src, wantExpr string }{
		{`int f(int a, int b, int c) { return a * (b + c); }`, "a * (b + c)"},
		{`int f(int a, int b, int c) { return a - (b - c); }`, "a - (b - c)"},
		{`int f(int a, int b, int c) { return (a - b) - c; }`, "a - b - c"},
		{`int f(int a, int b) { return -(a + b); }`, "-(a + b)"},
		{`bool f(bool a, bool b, bool c) { return (a || b) && c; }`, "(a || b) && c"},
		{`int f(int a, int b) { return a / (b * 2); }`, "a / (b * 2)"},
	}
	for _, c := range cases {
		prog := MustParse(c.src)
		ret := prog.Funcs[0].Body.Stmts[0].(*ReturnStmt)
		got := FormatExpr(ret.X)
		if got != c.wantExpr {
			t.Errorf("FormatExpr = %q, want %q", got, c.wantExpr)
		}
		roundTrip(t, c.src)
	}
}

func TestPrintPragmas(t *testing.T) {
	src := `void k(int n, float *a) {
    #pragma omp parallel for num_threads(32)
    for (int i = 0; i < n; i++) { a[i] = 0.0f; }
}`
	out := Print(MustParse(src))
	if !strings.Contains(out, "#pragma omp parallel for num_threads(32)") {
		t.Fatalf("pragma lost:\n%s", out)
	}
}

func TestPrintFloatSuffix(t *testing.T) {
	src := `void f(float *a) { a[0] = 1.5f; a[1] = 2.5; }`
	out := Print(MustParse(src))
	if !strings.Contains(out, "1.5f") {
		t.Errorf("single suffix lost:\n%s", out)
	}
	if !strings.Contains(out, "2.5;") {
		t.Errorf("double literal altered:\n%s", out)
	}
}

func TestPrintFloatSingleToggle(t *testing.T) {
	fl := &FloatLit{Val: 2.5, Text: "2.5", Single: true}
	if got := FormatExpr(fl); got != "2.5f" {
		t.Errorf("toggled single prints %q, want 2.5f", got)
	}
	fl2 := &FloatLit{Val: 2.5, Text: "2.5f", Single: false}
	if got := FormatExpr(fl2); got != "2.5" {
		t.Errorf("toggled double prints %q, want 2.5", got)
	}
	fl3 := &FloatLit{Val: 3.0}
	if got := FormatExpr(fl3); got != "3.0" {
		t.Errorf("synthesized literal prints %q, want 3.0", got)
	}
}

func TestCountLOC(t *testing.T) {
	if n := CountLOC("a\n\nb\n  \nc\n"); n != 3 {
		t.Errorf("CountLOC = %d, want 3", n)
	}
	if n := CountLOC(""); n != 0 {
		t.Errorf("CountLOC(empty) = %d, want 0", n)
	}
}

// genExpr builds a random well-formed expression tree for the round-trip
// property test.
func genExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return &Ident{Name: string(rune('a' + r.Intn(4)))}
		case 1:
			return &IntLit{Val: int64(r.Intn(100))}
		default:
			return &FloatLit{Val: float64(r.Intn(100)) / 4, Single: r.Intn(2) == 0}
		}
	}
	ops := []TokKind{TokPlus, TokMinus, TokStar, TokSlash, TokLt, TokGt, TokEqEq, TokAndAnd, TokOrOr}
	switch r.Intn(5) {
	case 0:
		return &UnaryExpr{Op: TokMinus, X: genExpr(r, depth-1)}
	case 1:
		return &IndexExpr{Base: &Ident{Name: "arr"}, Index: genExpr(r, depth-1)}
	case 2:
		return &CallExpr{Fun: "fn", Args: []Expr{genExpr(r, depth-1), genExpr(r, depth-1)}}
	default:
		return &BinaryExpr{Op: ops[r.Intn(len(ops))], L: genExpr(r, depth-1), R: genExpr(r, depth-1)}
	}
}

// TestQuickExprRoundTrip: printing a random expression and re-parsing it
// yields a structurally identical print. This is the printer/parser
// consistency invariant the meta-programming layer depends on.
func TestQuickExprRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := genExpr(r, 4)
		src := "int probe(int a, int b, int c, int d, int *arr) { return " + FormatExpr(e) + "; }"
		p1, err := Parse(src)
		if err != nil {
			t.Logf("parse failed for %q: %v", src, err)
			return false
		}
		out1 := Print(p1)
		p2, err := Parse(out1)
		if err != nil {
			t.Logf("reparse failed: %v", err)
			return false
		}
		return Print(p2) == out1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCloneEqualPrint: Clone always prints identically to the
// original and has the same node count.
func TestQuickCloneEqualPrint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := genExpr(r, 5)
		src := "double probe(double a, double b, double c, double d, double *arr) {\n" +
			"    double acc = 0.0;\n" +
			"    for (int i = 0; i < 10; i++) { acc += " + FormatExpr(e) + "; }\n" +
			"    return acc;\n}"
		p, err := Parse(src)
		if err != nil {
			// Random expressions are always parseable here; treat failure as bug.
			t.Logf("parse failed: %v", err)
			return false
		}
		c := p.Clone()
		n1, n2 := 0, 0
		Walk(p, func(Node) bool { n1++; return true })
		Walk(c, func(Node) bool { n2++; return true })
		return Print(p) == Print(c) && n1 == n2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatStmt(t *testing.T) {
	prog := MustParse("void f() { int x = 3; }")
	got := FormatStmt(prog.Funcs[0].Body.Stmts[0])
	if got != "int x = 3;" {
		t.Errorf("FormatStmt = %q", got)
	}
}
