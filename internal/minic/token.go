// Package minic implements the front end for MiniC, the small C-like
// source language that plays the role of the paper's C++ application
// sources. It provides a lexer, a recursive-descent parser, a typed AST
// with deep-clone and traversal support, and a source printer that emits
// human-readable code (the paper stresses that generated designs remain
// readable and hand-tunable).
package minic

import "fmt"

// TokKind enumerates MiniC token kinds.
type TokKind int

// Token kinds. Keep operators grouped so precedence tables can switch on
// contiguous ranges.
const (
	TokEOF TokKind = iota
	TokIdent
	TokIntLit
	TokFloatLit
	TokStringLit
	TokPragma // a full "#pragma ..." line, text in Lit

	// Keywords.
	TokKwInt
	TokKwFloat
	TokKwDouble
	TokKwVoid
	TokKwBool
	TokKwFor
	TokKwWhile
	TokKwIf
	TokKwElse
	TokKwReturn
	TokKwBreak
	TokKwContinue
	TokKwConst
	TokKwTrue
	TokKwFalse

	// Punctuation.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokSemi

	// Operators.
	TokAssign     // =
	TokPlusEq     // +=
	TokMinusEq    // -=
	TokStarEq     // *=
	TokSlashEq    // /=
	TokPlus       // +
	TokMinus      // -
	TokStar       // *
	TokSlash      // /
	TokPercent    // %
	TokPlusPlus   // ++
	TokMinusMinus // --
	TokLt         // <
	TokGt         // >
	TokLe         // <=
	TokGe         // >=
	TokEqEq       // ==
	TokNe         // !=
	TokAndAnd     // &&
	TokOrOr       // ||
	TokNot        // !
	TokAmp        // &
)

var tokNames = map[TokKind]string{
	TokEOF:        "EOF",
	TokIdent:      "identifier",
	TokIntLit:     "integer literal",
	TokFloatLit:   "float literal",
	TokStringLit:  "string literal",
	TokPragma:     "#pragma",
	TokKwInt:      "int",
	TokKwFloat:    "float",
	TokKwDouble:   "double",
	TokKwVoid:     "void",
	TokKwBool:     "bool",
	TokKwFor:      "for",
	TokKwWhile:    "while",
	TokKwIf:       "if",
	TokKwElse:     "else",
	TokKwReturn:   "return",
	TokKwBreak:    "break",
	TokKwContinue: "continue",
	TokKwConst:    "const",
	TokKwTrue:     "true",
	TokKwFalse:    "false",
	TokLParen:     "(",
	TokRParen:     ")",
	TokLBrace:     "{",
	TokRBrace:     "}",
	TokLBracket:   "[",
	TokRBracket:   "]",
	TokComma:      ",",
	TokSemi:       ";",
	TokAssign:     "=",
	TokPlusEq:     "+=",
	TokMinusEq:    "-=",
	TokStarEq:     "*=",
	TokSlashEq:    "/=",
	TokPlus:       "+",
	TokMinus:      "-",
	TokStar:       "*",
	TokSlash:      "/",
	TokPercent:    "%",
	TokPlusPlus:   "++",
	TokMinusMinus: "--",
	TokLt:         "<",
	TokGt:         ">",
	TokLe:         "<=",
	TokGe:         ">=",
	TokEqEq:       "==",
	TokNe:         "!=",
	TokAndAnd:     "&&",
	TokOrOr:       "||",
	TokNot:        "!",
	TokAmp:        "&",
}

// String returns the canonical spelling of the token kind.
func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

var keywords = map[string]TokKind{
	"int":      TokKwInt,
	"float":    TokKwFloat,
	"double":   TokKwDouble,
	"void":     TokKwVoid,
	"bool":     TokKwBool,
	"for":      TokKwFor,
	"while":    TokKwWhile,
	"if":       TokKwIf,
	"else":     TokKwElse,
	"return":   TokKwReturn,
	"break":    TokKwBreak,
	"continue": TokKwContinue,
	"const":    TokKwConst,
	"true":     TokKwTrue,
	"false":    TokKwFalse,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token with its source position and literal text.
type Token struct {
	Kind TokKind
	Lit  string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokIntLit, TokFloatLit, TokStringLit, TokPragma:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}
