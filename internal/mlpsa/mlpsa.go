// Package mlpsa implements the paper's proposed future work (§VI):
// "developing sophisticated ML-based PSA strategies". It provides a
// k-nearest-neighbour target classifier over the same kernel features the
// hand-written Fig. 3 strategy inspects, a synthetic training-set
// generator that labels feature vectors with the fastest target under the
// device models, and an adapter that plugs the trained model into a
// core.Branch as a drop-in Selector.
package mlpsa

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"psaflow/internal/analysis"
	"psaflow/internal/core"
	"psaflow/internal/hls"
	"psaflow/internal/perfmodel"
	"psaflow/internal/platform"
)

// NumFeatures is the dimensionality of the feature vector.
const NumFeatures = 9

// Features is the normalized kernel descriptor the classifier consumes.
type Features [NumFeatures]float64

// FromReport extracts the feature vector from an analyzed kernel report.
// All features are scale-free ratios or structural flags, so a model
// trained at deployment scale transfers to the profile-scale measurements
// available at branch time (the same property the hand-written Fig. 3
// strategy has).
func FromReport(r *core.KernelReport, cpu platform.CPUSpec) Features {
	feat := r.Features()
	log10 := func(v float64) float64 {
		if v <= 0 {
			return 0
		}
		return math.Log10(v)
	}
	boolF := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	ai := r.DynamicAI
	if ai == 0 {
		ai = r.StaticAI
	}
	tCPU := perfmodel.CPUTime1(cpu, feat)
	tData := (r.BytesIn + r.BytesOut) / 12e9
	ratio := 0.0
	if tCPU > 0 {
		ratio = tData / tCPU
	}
	parallel := r.OuterDeps != nil && r.OuterDeps.ParallelWithReduction()
	specialFrac := 0.0
	if feat.Flops > 0 {
		specialFrac = feat.SpecialFlops / feat.Flops
	}
	flopsPerIter := 0.0
	if r.PipelinedTrips > 0 {
		flopsPerIter = feat.Flops * math.Max(feat.Calls, 1) / r.PipelinedTrips
	}
	return Features{
		log10(ai + 1),
		boolF(parallel),
		float64(r.Unroll.InnerWithDeps),
		boolF(r.Unroll.AllDepsFixed),
		log10(feat.SerialDepth + 1),
		float64(feat.Regs) / 255,
		math.Min(ratio, 10),
		specialFrac,
		log10(flopsPerIter + 1),
	}
}

// Example is one labeled training point.
type Example struct {
	X      Features
	Target platform.TargetKind
}

// KNN is a k-nearest-neighbour classifier with per-feature
// standardization.
type KNN struct {
	K        int
	Mean     Features
	Std      Features
	Examples []Example
}

// Train fits the standardization statistics and stores the examples.
func Train(examples []Example, k int) (*KNN, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("mlpsa: no training examples")
	}
	if k <= 0 {
		k = 3
	}
	if k > len(examples) {
		k = len(examples)
	}
	m := &KNN{K: k, Examples: append([]Example(nil), examples...)}
	n := float64(len(examples))
	for _, e := range examples {
		for i, v := range e.X {
			m.Mean[i] += v / n
		}
	}
	for _, e := range examples {
		for i, v := range e.X {
			d := v - m.Mean[i]
			m.Std[i] += d * d / n
		}
	}
	for i := range m.Std {
		m.Std[i] = math.Sqrt(m.Std[i])
		if m.Std[i] < 1e-9 {
			m.Std[i] = 1
		}
	}
	return m, nil
}

func (m *KNN) normalize(x Features) Features {
	var out Features
	for i, v := range x {
		out[i] = (v - m.Mean[i]) / m.Std[i]
	}
	return out
}

func dist2(a, b Features) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Predict returns the majority target among the k nearest neighbours and
// the vote fraction as a confidence.
func (m *KNN) Predict(x Features) (platform.TargetKind, float64) {
	xn := m.normalize(x)
	type scored struct {
		d float64
		t platform.TargetKind
	}
	nb := make([]scored, 0, len(m.Examples))
	for _, e := range m.Examples {
		nb = append(nb, scored{d: dist2(xn, m.normalize(e.X)), t: e.Target})
	}
	sort.Slice(nb, func(i, j int) bool { return nb[i].d < nb[j].d })
	votes := map[platform.TargetKind]int{}
	for i := 0; i < m.K && i < len(nb); i++ {
		votes[nb[i].t]++
	}
	best, bestVotes := platform.TargetCPU, -1
	for _, t := range []platform.TargetKind{platform.TargetCPU, platform.TargetGPU, platform.TargetFPGA} {
		if votes[t] > bestVotes {
			best, bestVotes = t, votes[t]
		}
	}
	return best, float64(bestVotes) / float64(m.K)
}

// Selector adapts the model to a PSA branch point with paths named
// "cpu", "gpu", and "fpga" (the Fig. 4 branch point A layout). Excluded
// paths (budget feedback) fall back to the next most voted target.
func Selector(m *KNN) core.Selector {
	return core.SelectorFunc{
		SelName: "ml-knn",
		Fn: func(ctx *core.Context, d *core.Design, paths []core.Path, excluded map[int]bool) ([]int, error) {
			if d.Report == nil || d.Report.OuterDeps == nil {
				return nil, fmt.Errorf("mlpsa: selector requires analysis results")
			}
			x := FromReport(d.Report, ctx.CPU)
			target, conf := m.Predict(x)
			d.Tracef("branch", "ml", "kNN predicts %s (confidence %.2f)", target, conf)
			for i, p := range paths {
				if p.Name == target.String() && !excluded[i] {
					return []int{i}, nil
				}
			}
			// Fallback: any non-excluded path, CPU first.
			order := []string{"cpu", "gpu", "fpga"}
			for _, name := range order {
				for i, p := range paths {
					if p.Name == name && !excluded[i] {
						d.Tracef("branch", "ml", "predicted path unavailable; falling back to %s", name)
						return []int{i}, nil
					}
				}
			}
			return nil, nil
		},
	}
}

// SyntheticConfig bounds the synthetic kernel distribution.
type SyntheticConfig struct {
	N    int
	Seed int64
}

// SyntheticTrainingSet samples random kernel feature combinations and
// labels each with the fastest target under the device performance models
// — the flow's own cost models act as the oracle, so the classifier
// distils them into a single branch decision. Returns the labeled
// examples (features use the same encoding as FromReport).
func SyntheticTrainingSet(cfg SyntheticConfig) []Example {
	if cfg.N <= 0 {
		cfg.N = 400
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cpu := platform.EPYC7543
	out := make([]Example, 0, cfg.N)
	for len(out) < cfg.N {
		feat, report := randomKernel(rng)
		target, ok := bestTarget(cpu, feat, report)
		if !ok {
			continue
		}
		out = append(out, Example{X: FromReport(report, cpu), Target: target})
	}
	return out
}

// randomKernel draws a plausible kernel: work, data, parallel structure.
func randomKernel(rng *rand.Rand) (perfmodel.KernelFeatures, *core.KernelReport) {
	r := &core.KernelReport{}
	// Work: 1e6 .. 1e12 flops.
	r.KernelFlops = math.Pow(10, 6+6*rng.Float64())
	r.SpecialFlops = r.KernelFlops * rng.Float64() * 0.9
	// Intensity: footprint derived from a target AI 0.1 .. 1000.
	ai := math.Pow(10, -1+4*rng.Float64())
	foot := r.KernelFlops / ai
	r.BytesIn = foot * (0.3 + 0.6*rng.Float64())
	r.BytesOut = foot - r.BytesIn
	r.KernelBytes = foot
	r.DynamicAI = ai
	// CPU cost: 0.5 .. 4 cycles per flop.
	r.HotspotCycles = r.KernelFlops * (0.5 + 3.5*rng.Float64())
	// Geometry: 10..1000 flops per pipelined iteration; outer loops carry
	// up to 100 inner iterations each.
	flopsPerIter := math.Pow(10, 1+2*rng.Float64())
	r.PipelinedTrips = r.KernelFlops / flopsPerIter
	r.OuterTrips = r.PipelinedTrips / math.Pow(10, 2*rng.Float64())
	if r.OuterTrips < 64 {
		r.OuterTrips = 64
	}
	r.Calls = 1
	if rng.Intn(4) == 0 {
		r.Calls = float64(1 + rng.Intn(16))
	}
	if rng.Intn(3) > 0 {
		r.SerialDepth = math.Pow(10, 2.5*rng.Float64())
	}
	r.RegsEstimate = 32 + rng.Intn(224)
	r.SinglePrec = true
	r.HeavyFrac = rng.Float64()
	// Structure flags.
	parallel := rng.Intn(5) > 0 // most kernels have parallel outer loops
	r.OuterDeps = &analysis.LoopDeps{}
	if !parallel {
		r.OuterDeps.Carried = []analysis.Dependence{{Kind: analysis.DepScalar, Name: "acc"}}
	}
	r.Unroll.InnerLoopCount = rng.Intn(3)
	if r.SerialDepth > 0 && r.Unroll.InnerLoopCount == 0 {
		r.Unroll.InnerLoopCount = 1
	}
	r.Unroll.InnerWithDeps = r.Unroll.InnerLoopCount
	r.Unroll.AllDepsFixed = rng.Intn(2) == 0 && r.SerialDepth <= 64
	return r.Features(), r
}

// bestTarget evaluates the three target classes under the device models
// and returns the fastest; ok=false when no target is feasible/sensible.
func bestTarget(cpu platform.CPUSpec, feat perfmodel.KernelFeatures, r *core.KernelReport) (platform.TargetKind, bool) {
	if r.OuterDeps == nil || !r.OuterDeps.ParallelWithReduction() {
		// Serial outer loop: only an FPGA pipeline applies (Fig. 3).
		return platform.TargetFPGA, true
	}
	_, tOMP := perfmodel.BestThreads(cpu, feat)
	best, bestT := platform.TargetCPU, tOMP
	for _, dev := range platform.GPUs() {
		if _, bd := perfmodel.BestBlocksize(dev, feat, true); bd.Total < bestT {
			best, bestT = platform.TargetGPU, bd.Total
		}
	}
	for _, dev := range platform.FPGAs() {
		rep := synthHLSReport(dev, r)
		if bd := perfmodel.FPGATime(dev, rep, feat, dev.USM); bd.Total < bestT {
			best, bestT = platform.TargetFPGA, bd.Total
		}
	}
	return best, bestT > 0 && !math.IsInf(bestT, 1)
}

// synthHLSReport approximates the unroll DSE outcome for a synthetic
// kernel: unroll scales inversely with datapath size (proxied by special
// share), II follows the dependence structure.
func synthHLSReport(dev platform.FPGASpec, r *core.KernelReport) *hls.Report {
	ii := 1
	if r.Unroll.InnerWithDeps > 0 && !r.Unroll.AllDepsFixed {
		ii = 8
	}
	// Datapath footprint scales with flops per pipelined iteration and the
	// transcendental share (special units dominate area).
	flopsPerIter := r.KernelFlops / math.Max(r.PipelinedTrips, 1)
	specialFrac := r.SpecialFlops / math.Max(r.KernelFlops, 1)
	alms := flopsPerIter * 700 * (1 + 3*specialFrac)
	unroll := 1
	for unroll < 64 && alms*float64(unroll*2) < 0.9*float64(dev.ALMs) {
		unroll *= 2
	}
	if alms > 0.9*float64(dev.ALMs) {
		return &hls.Report{Device: dev.Name, Fits: false}
	}
	return &hls.Report{
		Device:         dev.Name,
		Unroll:         unroll,
		II:             ii,
		PipelinedTrips: r.PipelinedTrips,
		FmaxHz:         dev.ClockHz,
		Fits:           true,
	}
}
