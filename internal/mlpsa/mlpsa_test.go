package mlpsa

import (
	"testing"

	"psaflow/internal/analysis"
	"psaflow/internal/core"
	"psaflow/internal/platform"
)

func TestTrainRequiresExamples(t *testing.T) {
	if _, err := Train(nil, 3); err == nil {
		t.Fatal("expected error for empty training set")
	}
}

func TestTrainClampsK(t *testing.T) {
	ex := SyntheticTrainingSet(SyntheticConfig{N: 5, Seed: 1})
	m, err := Train(ex, 50)
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 5 {
		t.Errorf("k = %d, want clamped to 5", m.K)
	}
	m2, _ := Train(ex, 0)
	if m2.K != 3 {
		t.Errorf("default k = %d, want 3", m2.K)
	}
}

func TestSyntheticTrainingSetCoversAllTargets(t *testing.T) {
	ex := SyntheticTrainingSet(SyntheticConfig{N: 500, Seed: 7})
	if len(ex) != 500 {
		t.Fatalf("examples = %d", len(ex))
	}
	counts := map[platform.TargetKind]int{}
	for _, e := range ex {
		counts[e.Target]++
	}
	for _, target := range []platform.TargetKind{platform.TargetCPU, platform.TargetGPU, platform.TargetFPGA} {
		if counts[target] < 10 {
			t.Errorf("target %s has only %d examples; distribution degenerate: %v",
				target, counts[target], counts)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := SyntheticTrainingSet(SyntheticConfig{N: 50, Seed: 3})
	b := SyntheticTrainingSet(SyntheticConfig{N: 50, Seed: 3})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("synthetic set not deterministic")
		}
	}
}

// TestHeldOutAccuracy: train on one synthetic sample, evaluate on a
// disjoint one; the kNN must beat a majority-class baseline comfortably.
func TestHeldOutAccuracy(t *testing.T) {
	train := SyntheticTrainingSet(SyntheticConfig{N: 600, Seed: 11})
	test := SyntheticTrainingSet(SyntheticConfig{N: 200, Seed: 97})
	m, err := Train(train, 5)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	majority := map[platform.TargetKind]int{}
	for _, e := range test {
		majority[e.Target]++
		if got, _ := m.Predict(e.X); got == e.Target {
			correct++
		}
	}
	maxClass := 0
	for _, n := range majority {
		if n > maxClass {
			maxClass = n
		}
	}
	acc := float64(correct) / float64(len(test))
	base := float64(maxClass) / float64(len(test))
	t.Logf("held-out accuracy %.2f (majority baseline %.2f)", acc, base)
	if acc < 0.75 {
		t.Errorf("accuracy %.2f too low", acc)
	}
	if acc <= base {
		t.Errorf("accuracy %.2f does not beat majority baseline %.2f", acc, base)
	}
}

// report builds a hand-crafted kernel report.
func report(parallel bool, ai, flops, serial float64, regs int, innerDeps int, fixed bool) *core.KernelReport {
	r := &core.KernelReport{
		KernelFlops:   flops,
		SpecialFlops:  flops * 0.3,
		KernelBytes:   flops / ai,
		BytesIn:       flops / ai * 0.7,
		BytesOut:      flops / ai * 0.3,
		HotspotCycles: flops * 2,
		// ~100 flops per pipelined iteration, ~1000 per outer iteration —
		// keeps the synthetic kernel geometrically consistent.
		OuterTrips:     flops / 1000,
		PipelinedTrips: flops / 100,
		SerialDepth:    serial,
		Calls:          1,
		DynamicAI:      ai,
		RegsEstimate:   regs,
		SinglePrec:     true,
		OuterDeps:      &analysis.LoopDeps{},
	}
	if !parallel {
		r.OuterDeps.Carried = []analysis.Dependence{{Kind: analysis.DepScalar, Name: "s"}}
	}
	r.Unroll.InnerWithDeps = innerDeps
	r.Unroll.AllDepsFixed = fixed
	return r
}

// TestModelRecoversStrategyDecisions: the classifier trained on device-
// model labels should agree with the physics on clear-cut kernels.
func TestModelRecoversStrategyDecisions(t *testing.T) {
	m, err := Train(SyntheticTrainingSet(SyntheticConfig{N: 800, Seed: 23}), 5)
	if err != nil {
		t.Fatal(err)
	}
	cpu := platform.EPYC7543
	// Memory-bound parallel kernel → CPU.
	memBound := report(true, 0.5, 1e9, 0, 48, 0, false)
	if got, _ := m.Predict(FromReport(memBound, cpu)); got != platform.TargetCPU {
		t.Errorf("memory-bound kernel predicted %s, want cpu", got)
	}
	// Massive compute-bound parallel kernel → GPU.
	computeBound := report(true, 500, 1e12, 0, 48, 0, false)
	if got, _ := m.Predict(FromReport(computeBound, cpu)); got != platform.TargetGPU {
		t.Errorf("compute-bound kernel predicted %s, want gpu", got)
	}
}

func TestSelectorIntegration(t *testing.T) {
	m, err := Train(SyntheticTrainingSet(SyntheticConfig{N: 400, Seed: 31}), 5)
	if err != nil {
		t.Fatal(err)
	}
	sel := Selector(m)
	if sel.Name() != "ml-knn" {
		t.Errorf("selector name %q", sel.Name())
	}
	d := &core.Design{Name: "x", Report: report(true, 500, 1e12, 0, 48, 0, false)}
	ctx := &core.Context{CPU: platform.EPYC7543}
	paths := []core.Path{
		{Name: "gpu"}, {Name: "fpga"}, {Name: "cpu"},
	}
	idxs, err := sel.Select(ctx, d, paths, map[int]bool{})
	if err != nil {
		t.Fatal(err)
	}
	if len(idxs) != 1 {
		t.Fatalf("idxs = %v", idxs)
	}
	// Excluding the predicted path falls back to another one.
	excluded := map[int]bool{idxs[0]: true}
	idxs2, err := sel.Select(ctx, d, paths, excluded)
	if err != nil {
		t.Fatal(err)
	}
	if len(idxs2) != 1 || idxs2[0] == idxs[0] {
		t.Fatalf("fallback failed: %v then %v", idxs, idxs2)
	}
	// Selector demands analysis results.
	bare := &core.Design{Name: "bare", Report: &core.KernelReport{}}
	if _, err := sel.Select(ctx, bare, paths, map[int]bool{}); err == nil {
		t.Error("expected error without analysis results")
	}
}

func TestFeatureEncodingStable(t *testing.T) {
	r := report(true, 10, 1e9, 20, 255, 1, true)
	x := FromReport(r, platform.EPYC7543)
	if x[1] != 1 {
		t.Error("parallel flag not encoded")
	}
	if x[2] != 1 {
		t.Error("inner-deps count not encoded")
	}
	if x[3] != 1 {
		t.Error("fully-unrollable flag not encoded")
	}
	if x[5] != 1 {
		t.Errorf("regs feature = %v, want 1 at 255 regs", x[5])
	}
	serial := report(true, 10, 1e9, 0, 64, 0, false)
	y := FromReport(serial, platform.EPYC7543)
	if y[4] != 0 {
		t.Errorf("serial-depth feature = %v, want 0", y[4])
	}
}
