// Package perfmodel provides the analytical device performance models that
// substitute for executing generated designs on physical hardware. Each
// model consumes kernel features measured by the dynamic analyses (virtual
// cycles, FLOPs, byte traffic, trip counts) plus static features
// (registers, serial chain structure), and produces wall-clock estimates
// whose *ratios* reproduce the paper's Fig. 5 behaviour: OMP scaling near
// the core count, GPU residency/roofline/special-function effects, FPGA
// pipeline initiation-interval and unroll effects, and PCIe transfer and
// invocation costs.
package perfmodel

import (
	"fmt"
	"math"

	"psaflow/internal/hls"
	"psaflow/internal/platform"
)

// KernelFeatures aggregates everything the device models need to know
// about one extracted hotspot kernel and its measured execution. Values
// describe the full evaluation scenario (profiling measurements scaled to
// deployment size by the benchmark's EvalScale).
type KernelFeatures struct {
	// Dynamic measurements (interp on the reference input):
	HotspotCycles float64 // virtual cycles of the hotspot on one CPU thread
	Flops         float64 // total floating-point work inside the kernel
	SpecialFlops  float64 // portion of Flops from transcendental builtins
	Bytes         float64 // memory traffic inside the kernel
	TransferIn    float64 // bytes that must reach the accelerator (all invocations)
	TransferOut   float64 // bytes that must return to the host (all invocations)
	Threads       float64 // parallel iterations of the offloaded outer loop, per invocation
	SerialDepth   float64 // mean trips of sequential (dep-carrying) inner loops; 0 if none
	Calls         float64 // kernel invocations in the deployment scenario (min 1)

	// Static estimates:
	Regs       int     // estimated registers per GPU thread
	SinglePrec bool    // kernel demoted to single precision
	SpecialDP  bool    // kernel retains double-precision transcendentals
	HeavyFrac  float64 // fraction of special FLOPs from exp/log/tanh/erf
}

// Breakdown is a device time estimate with its components.
type Breakdown struct {
	KernelTime   float64
	TransferTime float64
	Overhead     float64 // launch / invocation costs
	Total        float64
	Note         string
}

// Model calibration constants. These absorb compiler and runtime effects
// the device specs do not capture; EXPERIMENTS.md records their
// calibration against the paper's Fig. 5 ratios.
const (
	// cpuIPCScale: superscalar + SIMD throughput of the native compiler
	// relative to the interpreter's scalar virtual clock.
	cpuIPCScale = 4.0
	// ompForkJoin: per-parallel-region overhead of an OpenMP runtime.
	ompForkJoin = 5.0e-6
	// gpuLaunch: per-invocation cost of a HIP kernel launch.
	gpuLaunch = 1.2e-5
	// fpgaInvoke: per-invocation cost of a oneAPI queue submission.
	fpgaInvoke = 1.0e-5
	// fpgaPipelineFill: pipeline depth in cycles charged per invocation.
	fpgaPipelineFill = 400.0
	// fp64Penalty divides consumer-GPU throughput for double-precision
	// arithmetic (between the 1/32 hardware rate and mixed streams).
	fp64Penalty = 8.0
	// fp64SpecialPenalty divides the special-function rate for kernels
	// that keep double-precision transcendentals (software emulation on
	// consumer parts).
	fp64SpecialPenalty = 10.0
	// depLatencyChain / depLatencyILP: per-thread cycles between dependent
	// issues for kernels with / without sequential accumulation chains —
	// governs the latency-bound regime.
	depLatencyChain = 18.0
	depLatencyILP   = 4.0
)

// CPUTime1 returns the single-thread CPU time of the hotspot — the
// reference all Fig. 5 speedups are measured against.
func CPUTime1(cpu platform.CPUSpec, feat KernelFeatures) float64 {
	return feat.HotspotCycles / (cpu.ClockHz * cpuIPCScale * cpu.PerThread)
}

// OMPTime returns the multi-thread CPU time with the given thread count
// (the paper's OpenMP design). Efficiency degrades linearly to OMPEff at
// the full core count; a fork/join overhead is charged per region.
func OMPTime(cpu platform.CPUSpec, feat KernelFeatures, threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	if threads > cpu.Cores {
		threads = cpu.Cores
	}
	t1 := CPUTime1(cpu, feat)
	eff := 1.0
	if cpu.Cores > 1 {
		eff = 1 - (1-cpu.OMPEff)*float64(threads-1)/float64(cpu.Cores-1)
	}
	calls := math.Max(feat.Calls, 1)
	return t1/(float64(threads)*eff) + ompForkJoin*calls
}

// gpuResidentPerSM computes resident threads per SM for the launch
// configuration: limited by the register file, the block granularity, and
// the architectural maximum.
func gpuResidentPerSM(dev platform.GPUSpec, regs, blocksize int) int {
	regLimited := dev.RegLimitedThreadsPerSM(regs)
	blocksFit := regLimited / blocksize
	if blocksFit == 0 {
		return 0
	}
	t := blocksFit * blocksize
	if t > dev.MaxThreadsPerSM {
		t = dev.MaxThreadsPerSM
	}
	return t
}

// GPUTime returns the CPU+GPU design time on dev for the given launch
// blocksize.
//
// Compute rate per SM (ops/cycle) = min(resident/depLatency, cores×sustained):
// the first term is the latency-bound regime (few resident threads, or a
// workload smaller than the device), the second the issue-bound regime.
// Transcendental FLOPs flow through a slower special-function pipe
// (rate/SpecialDiv, further divided for double-precision specials).
// Memory-bound kernels ride the DRAM roofline. Host transfers ride PCIe
// (faster pinned); each invocation pays a launch overhead.
func GPUTime(dev platform.GPUSpec, feat KernelFeatures, blocksize int, pinned bool) Breakdown {
	if blocksize <= 0 {
		blocksize = 256
	}
	if blocksize > dev.MaxBlockSize {
		return Breakdown{Total: math.Inf(1), Note: "blocksize exceeds device limit"}
	}
	residentPerSM := gpuResidentPerSM(dev, feat.Regs, blocksize)
	if residentPerSM == 0 {
		return Breakdown{Total: math.Inf(1),
			Note: fmt.Sprintf("blocksize %d with %d regs/thread does not fit an SM", blocksize, feat.Regs)}
	}
	// Workload-limited residency: a launch with fewer threads than the
	// device holds cannot fill every SM.
	perSM := float64(residentPerSM)
	if feat.Threads > 0 {
		avail := feat.Threads / float64(dev.SMs)
		if avail < perSM {
			perSM = avail
		}
	}
	depLat := depLatencyILP
	if feat.SerialDepth > 0 {
		depLat = depLatencyChain
	}
	latOps := perSM / depLat * dev.LatIPC * depLatencyILP // normalize so LatIPC tunes the regime
	issueOps := float64(dev.CoresPerSM) * dev.Sustained
	opsPerCycle := math.Min(latOps, issueOps)
	if opsPerCycle <= 0 {
		return Breakdown{Total: math.Inf(1), Note: "no resident threads"}
	}
	rate := float64(dev.SMs) * opsPerCycle * dev.ClockHz // plain FLOP/s
	if !feat.SinglePrec {
		rate /= fp64Penalty
	}
	// Heavy transcendentals (exp/log/tanh/erf) run as multi-pass SFU
	// sequences: the effective divisor grows with their share.
	specialDiv := math.Max(dev.SpecialDiv, 1) * (1 + 2*feat.HeavyFrac)
	specialRate := rate / specialDiv
	if feat.SpecialDP {
		specialRate /= fp64SpecialPenalty
	}
	aluFlops := feat.Flops - feat.SpecialFlops
	if aluFlops < 0 {
		aluFlops = 0
	}
	computeTime := aluFlops/rate + feat.SpecialFlops/specialRate
	memTime := feat.Bytes / dev.MemBWBps
	kernel := math.Max(computeTime, memTime)

	calls := math.Max(feat.Calls, 1)
	overhead := gpuLaunch * calls
	transfer := dev.TransferTime(int64(feat.TransferIn), int64(feat.TransferOut), pinned)
	note := "issue-bound"
	if latOps < issueOps {
		note = "latency-bound"
	}
	if memTime > computeTime {
		note = "memory-bound"
	}
	return Breakdown{
		KernelTime:   kernel,
		TransferTime: transfer,
		Overhead:     overhead,
		Total:        kernel + transfer + overhead,
		Note:         note,
	}
}

// FPGATime returns the CPU+FPGA design time for the kernel whose HLS
// report is rep (carrying unroll factor, II, fmax). With zero-copy USM the
// host traffic streams concurrently with the pipeline; otherwise it is a
// serial PCIe phase. Each invocation pays a queue-submission overhead and
// a pipeline fill.
func FPGATime(dev platform.FPGASpec, rep *hls.Report, feat KernelFeatures, zeroCopy bool) Breakdown {
	if !rep.Fits {
		return Breakdown{Total: math.Inf(1), Note: "design overmaps device"}
	}
	trips := rep.PipelinedTrips
	if trips <= 0 {
		trips = feat.Threads * math.Max(feat.Calls, 1)
	}
	u := float64(rep.Unroll)
	if u < 1 {
		u = 1
	}
	calls := math.Max(feat.Calls, 1)
	pipe := (trips*float64(rep.II)/u + fpgaPipelineFill*calls) / rep.FmaxHz
	memTime := feat.Bytes / dev.DDRBWBps
	kernel := math.Max(pipe, memTime)
	overhead := fpgaInvoke * calls

	hostBytes := feat.TransferIn + feat.TransferOut
	if zeroCopy && dev.USM {
		// Streamed through USM, overlapped with the pipeline.
		stream := hostBytes / dev.USMBps
		total := math.Max(kernel, stream) + overhead
		return Breakdown{KernelTime: kernel, TransferTime: stream, Overhead: overhead,
			Total: total, Note: "zero-copy"}
	}
	transfer := hostBytes / dev.PCIeBps
	return Breakdown{KernelTime: kernel, TransferTime: transfer, Overhead: overhead,
		Total: kernel + transfer + overhead, Note: "pcie"}
}

// Speedup is the Fig. 5 metric: single-thread CPU hotspot time divided by
// the design's hotspot time.
func Speedup(cpu platform.CPUSpec, feat KernelFeatures, design Breakdown) float64 {
	if design.Total <= 0 || math.IsInf(design.Total, 1) {
		return 0
	}
	return CPUTime1(cpu, feat) / design.Total
}

// BlocksizeCandidates is the sweep used by the per-device blocksize DSE.
var BlocksizeCandidates = []int{64, 128, 256, 512, 1024}

// BestBlocksize runs the blocksize DSE: it evaluates every candidate and
// returns the one minimizing design time (the paper's GTX 1080 / RTX 2080
// blocksize DSE tasks).
func BestBlocksize(dev platform.GPUSpec, feat KernelFeatures, pinned bool) (int, Breakdown) {
	best := -1
	var bestBd Breakdown
	bestBd.Total = math.Inf(1)
	for _, bs := range BlocksizeCandidates {
		bd := GPUTime(dev, feat, bs, pinned)
		if bd.Total < bestBd.Total {
			best = bs
			bestBd = bd
		}
	}
	return best, bestBd
}

// BestThreads runs the OpenMP num-threads DSE over 1..Cores.
func BestThreads(cpu platform.CPUSpec, feat KernelFeatures) (int, float64) {
	best := 1
	bestT := math.Inf(1)
	for t := 1; t <= cpu.Cores; t++ {
		if tt := OMPTime(cpu, feat, t); tt < bestT {
			bestT = tt
			best = t
		}
	}
	return best, bestT
}
