package perfmodel

import (
	"math"
	"testing"
	"testing/quick"

	"psaflow/internal/hls"
	"psaflow/internal/platform"
)

// computeFeat is a saturating compute-bound kernel.
func computeFeat() KernelFeatures {
	return KernelFeatures{
		HotspotCycles: 1e10,
		Flops:         5e9,
		SpecialFlops:  1e9,
		Bytes:         1e7,
		TransferIn:    1e6,
		TransferOut:   1e6,
		Threads:       1 << 20,
		Regs:          64,
		SinglePrec:    true,
		Calls:         1,
	}
}

func TestCPUTime1Positive(t *testing.T) {
	feat := computeFeat()
	t1 := CPUTime1(platform.EPYC7543, feat)
	if t1 <= 0 {
		t.Fatalf("t1 = %v", t1)
	}
	// Doubling the cycles doubles the time.
	feat.HotspotCycles *= 2
	if got := CPUTime1(platform.EPYC7543, feat); math.Abs(got-2*t1) > 1e-12 {
		t.Errorf("not linear in cycles: %v vs %v", got, 2*t1)
	}
}

func TestOMPScalingNearCoreCount(t *testing.T) {
	feat := computeFeat()
	t1 := CPUTime1(platform.EPYC7543, feat)
	t32 := OMPTime(platform.EPYC7543, feat, 32)
	speedup := t1 / t32
	if speedup < 25 || speedup > 32 {
		t.Fatalf("32-thread speedup = %v, want 25..32 (paper: 28-30X)", speedup)
	}
	// Monotone in threads for compute-heavy kernels.
	prev := math.Inf(1)
	for threads := 1; threads <= 32; threads++ {
		tt := OMPTime(platform.EPYC7543, feat, threads)
		if tt > prev*1.0001 {
			t.Fatalf("OMP time increased at %d threads", threads)
		}
		prev = tt
	}
}

func TestOMPClampsThreads(t *testing.T) {
	feat := computeFeat()
	if OMPTime(platform.EPYC7543, feat, 0) != OMPTime(platform.EPYC7543, feat, 1) {
		t.Error("0 threads should clamp to 1")
	}
	if OMPTime(platform.EPYC7543, feat, 64) != OMPTime(platform.EPYC7543, feat, 32) {
		t.Error("64 threads should clamp to core count")
	}
}

func TestBestThreadsPicksMax(t *testing.T) {
	n, _ := BestThreads(platform.EPYC7543, computeFeat())
	if n != 32 {
		t.Fatalf("best threads = %d, want 32 for an embarrassingly parallel hotspot", n)
	}
}

func TestGPUIssueBoundRegime(t *testing.T) {
	feat := computeFeat()
	bd := GPUTime(platform.RTX2080Ti, feat, 256, true)
	if bd.Note != "issue-bound" {
		t.Fatalf("saturating kernel should be issue-bound: %+v", bd)
	}
	if math.IsInf(bd.Total, 1) || bd.Total <= 0 {
		t.Fatalf("total = %v", bd.Total)
	}
}

func TestGPULatencyBoundSmallLaunch(t *testing.T) {
	feat := computeFeat()
	feat.Threads = 2048
	feat.SerialDepth = 16
	bd := GPUTime(platform.GTX1080Ti, feat, 256, true)
	if bd.Note != "latency-bound" {
		t.Fatalf("small launch with dep chains should be latency-bound: %+v", bd)
	}
	// Under-filled devices converge: both GPUs land close (paper Bezier).
	bd2 := GPUTime(platform.RTX2080Ti, feat, 256, true)
	ratio := bd.KernelTime / bd2.KernelTime
	if ratio < 0.8 || ratio > 1.3 {
		t.Fatalf("latency-bound devices should be close: ratio %v", ratio)
	}
}

func TestGPUMemoryBound(t *testing.T) {
	feat := computeFeat()
	feat.Flops = 1e6
	feat.SpecialFlops = 0
	feat.Bytes = 1e9
	bd := GPUTime(platform.GTX1080Ti, feat, 256, true)
	if bd.Note != "memory-bound" {
		t.Fatalf("note = %s", bd.Note)
	}
	wantKernel := 1e9/platform.GTX1080Ti.MemBWBps + 0 // roofline floor
	if bd.KernelTime < wantKernel {
		t.Fatalf("kernel %v below roofline %v", bd.KernelTime, wantKernel)
	}
}

func TestGPURegisterPressureLimitsResidency(t *testing.T) {
	// 255 regs/thread caps residency at 256 threads/SM (65536/255 rounded
	// to blocks of 64) on both devices — the precondition of the paper's
	// Rush Larsen saturation story.
	for _, dev := range platform.GPUs() {
		if got := gpuResidentPerSM(dev, 255, 64); got != 256 {
			t.Errorf("%s resident at 255 regs = %d, want 256", dev.Name, got)
		}
		if got := gpuResidentPerSM(dev, 64, 64); got <= 256 {
			t.Errorf("%s resident at 64 regs = %d, want > 256", dev.Name, got)
		}
	}
}

// TestGPURushLarsenSaturationStory reproduces the paper's Rush Larsen
// explanation: at 255 regs/thread the workload saturates the GTX 1080 Ti's
// register-limited capacity but not the RTX 2080 Ti's, leaving the 2080
// around 1.5-2X faster (paper: 1.6X).
func TestGPURushLarsenSaturationStory(t *testing.T) {
	feat := computeFeat()
	feat.Regs = 255
	feat.Threads = 12288
	feat.SerialDepth = 25
	feat.SpecialFlops = 0.8 * feat.Flops
	feat.HeavyFrac = 1
	_, bd1080 := BestBlocksize(platform.GTX1080Ti, feat, true)
	_, bd2080 := BestBlocksize(platform.RTX2080Ti, feat, true)
	ratio := bd1080.KernelTime / bd2080.KernelTime
	if ratio < 1.3 || ratio > 2.2 {
		t.Fatalf("2080/1080 advantage = %v, want 1.3..2.2 (paper 1.6)", ratio)
	}
}

func TestGPUBlocksizeInfeasible(t *testing.T) {
	feat := computeFeat()
	feat.Regs = 255 // 65536/255 = 257 resident; blocksize 512 cannot fit
	bd := GPUTime(platform.GTX1080Ti, feat, 512, true)
	if !math.IsInf(bd.Total, 1) {
		t.Fatalf("blocksize 512 at 255 regs should be infeasible: %+v", bd)
	}
	bs, best := BestBlocksize(platform.GTX1080Ti, feat, true)
	if bs <= 0 || bs > 256 {
		t.Fatalf("DSE blocksize = %d, want <= 256", bs)
	}
	if math.IsInf(best.Total, 1) {
		t.Fatal("DSE found no feasible configuration")
	}
}

func TestGPUOversizeBlocksizeRejected(t *testing.T) {
	bd := GPUTime(platform.GTX1080Ti, computeFeat(), 2048, true)
	if !math.IsInf(bd.Total, 1) {
		t.Fatal("blocksize above device limit must be rejected")
	}
}

func TestGPUDoublePrecisionPenalty(t *testing.T) {
	sp := computeFeat()
	dp := computeFeat()
	dp.SinglePrec = false
	spBd := GPUTime(platform.RTX2080Ti, sp, 256, true)
	dpBd := GPUTime(platform.RTX2080Ti, dp, 256, true)
	if dpBd.KernelTime <= spBd.KernelTime*2 {
		t.Fatalf("FP64 kernel should be much slower: %v vs %v", dpBd.KernelTime, spBd.KernelTime)
	}
}

func TestGPUHeavySpecialsSlower(t *testing.T) {
	light := computeFeat()
	heavy := computeFeat()
	heavy.HeavyFrac = 1
	lightBd := GPUTime(platform.RTX2080Ti, light, 256, true)
	heavyBd := GPUTime(platform.RTX2080Ti, heavy, 256, true)
	if heavyBd.KernelTime <= lightBd.KernelTime {
		t.Fatal("exp-heavy kernels must run slower than sqrt-heavy ones")
	}
}

func TestPinnedTransfersFaster(t *testing.T) {
	feat := computeFeat()
	feat.TransferIn = 1e9
	pinned := GPUTime(platform.GTX1080Ti, feat, 256, true)
	paged := GPUTime(platform.GTX1080Ti, feat, 256, false)
	if pinned.TransferTime >= paged.TransferTime {
		t.Fatalf("pinned %v should beat pageable %v", pinned.TransferTime, paged.TransferTime)
	}
}

func fitReport(unroll, ii int, trips float64, dev platform.FPGASpec) *hls.Report {
	return &hls.Report{
		Device: dev.Name, Kernel: "k", Unroll: unroll, II: ii,
		PipelinedTrips: trips, FmaxHz: dev.ClockHz, Fits: true,
	}
}

func TestFPGAPipelineScaling(t *testing.T) {
	feat := computeFeat()
	dev := platform.Stratix10
	t1 := FPGATime(dev, fitReport(1, 1, 1e9, dev), feat, false)
	t4 := FPGATime(dev, fitReport(4, 1, 1e9, dev), feat, false)
	if t4.KernelTime >= t1.KernelTime {
		t.Fatalf("unroll 4 should be faster: %v vs %v", t4.KernelTime, t1.KernelTime)
	}
	tII := FPGATime(dev, fitReport(1, 8, 1e9, dev), feat, false)
	if tII.KernelTime <= t1.KernelTime {
		t.Fatalf("II=8 should be slower: %v vs %v", tII.KernelTime, t1.KernelTime)
	}
}

func TestFPGAOvermapInfeasible(t *testing.T) {
	rep := &hls.Report{Fits: false}
	bd := FPGATime(platform.Arria10, rep, computeFeat(), false)
	if !math.IsInf(bd.Total, 1) {
		t.Fatal("overmapped design must be infeasible")
	}
	if Speedup(platform.EPYC7543, computeFeat(), bd) != 0 {
		t.Fatal("infeasible design speedup must be 0")
	}
}

func TestFPGAZeroCopyOverlaps(t *testing.T) {
	feat := computeFeat()
	feat.TransferIn = 5e8
	feat.TransferOut = 5e8
	dev := platform.Stratix10
	rep := fitReport(4, 1, 1e8, dev)
	serial := FPGATime(dev, rep, feat, false)
	overlap := FPGATime(dev, rep, feat, true)
	if overlap.Total >= serial.Total {
		t.Fatalf("zero-copy should be faster: %v vs %v", overlap.Total, serial.Total)
	}
	if overlap.Note != "zero-copy" {
		t.Errorf("note = %s", overlap.Note)
	}
	// Overlap means max(), not sum.
	want := math.Max(overlap.KernelTime, overlap.TransferTime) + overlap.Overhead
	if math.Abs(overlap.Total-want) > 1e-12 {
		t.Errorf("total %v, want overlapped %v", overlap.Total, want)
	}
}

func TestFPGAZeroCopyRequiresUSM(t *testing.T) {
	dev := platform.Arria10 // no USM
	rep := fitReport(1, 1, 1e8, dev)
	bd := FPGATime(dev, rep, computeFeat(), true)
	if bd.Note != "pcie" {
		t.Fatalf("zero-copy on a non-USM device must fall back to PCIe: %s", bd.Note)
	}
}

func TestSpeedupDefinition(t *testing.T) {
	feat := computeFeat()
	bd := Breakdown{Total: CPUTime1(platform.EPYC7543, feat) / 10}
	if s := Speedup(platform.EPYC7543, feat, bd); math.Abs(s-10) > 1e-9 {
		t.Fatalf("speedup = %v, want 10", s)
	}
	if Speedup(platform.EPYC7543, feat, Breakdown{}) != 0 {
		t.Error("zero-time design must yield 0 speedup")
	}
}

// TestQuickGPUMonotoneInWork: more FLOPs never make the kernel faster.
func TestQuickGPUMonotoneInWork(t *testing.T) {
	f := func(extra uint32) bool {
		base := computeFeat()
		more := base
		more.Flops += float64(extra)
		b1 := GPUTime(platform.RTX2080Ti, base, 256, true)
		b2 := GPUTime(platform.RTX2080Ti, more, 256, true)
		return b2.KernelTime >= b1.KernelTime
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFPGAMonotoneInTrips: more pipelined iterations never run faster.
func TestQuickFPGAMonotoneInTrips(t *testing.T) {
	dev := platform.Stratix10
	f := func(extra uint32) bool {
		feat := computeFeat()
		b1 := FPGATime(dev, fitReport(2, 1, 1e8, dev), feat, false)
		b2 := FPGATime(dev, fitReport(2, 1, 1e8+float64(extra), dev), feat, false)
		return b2.KernelTime >= b1.KernelTime
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBlocksizeDSEOptimal: the DSE result is never worse than any
// candidate it swept.
func TestQuickBlocksizeDSEOptimal(t *testing.T) {
	f := func(regs uint8, threadsK uint16) bool {
		feat := computeFeat()
		feat.Regs = int(regs)%240 + 16
		feat.Threads = float64(threadsK)*64 + 64
		_, best := BestBlocksize(platform.GTX1080Ti, feat, true)
		for _, bs := range BlocksizeCandidates {
			if bd := GPUTime(platform.GTX1080Ti, feat, bs, true); bd.Total < best.Total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
