// Package platform is the device catalog: published specification numbers
// for the CPUs, GPUs and FPGAs of the paper's evaluation testbed, plus the
// host-accelerator interconnect model. The perfmodel package consumes
// these specs; they substitute for the physical hardware the paper ran on
// (see DESIGN.md §2).
package platform

// TargetKind enumerates the three target classes of the implemented
// PSA-flow (paper Fig. 4 branch point A).
type TargetKind int

// Target classes.
const (
	TargetCPU  TargetKind = iota // multi-thread CPU (OpenMP)
	TargetGPU                    // CPU+GPU (HIP)
	TargetFPGA                   // CPU+FPGA (oneAPI)
)

// String names the target kind.
func (k TargetKind) String() string {
	switch k {
	case TargetCPU:
		return "cpu"
	case TargetGPU:
		return "gpu"
	case TargetFPGA:
		return "fpga"
	}
	return "unknown"
}

// CPUSpec describes a host CPU.
type CPUSpec struct {
	Name      string
	Cores     int
	ClockHz   float64
	MemBWBps  float64 // aggregate DRAM bandwidth
	OMPEff    float64 // parallel efficiency at full thread count
	PerThread float64 // sustained fraction of the virtual-clock model per thread
}

// GPUSpec describes a discrete GPU accelerator.
type GPUSpec struct {
	Name            string
	SMs             int
	CoresPerSM      int
	ClockHz         float64
	PeakFP32        float64 // FLOP/s
	MemBWBps        float64
	RegsPerSM       int // 32-bit registers per SM
	MaxThreadsPerSM int
	MaxBlockSize    int
	PCIeBps         float64 // effective host transfer bandwidth
	PinnedScale     float64 // PCIe bandwidth multiplier with pinned host memory
	Sustained       float64 // achieved/peak FLOPs on saturating compute kernels
	LatIPC          float64 // per-thread issue rate (ops/cycle) in the latency-bound regime
	SpecialDiv      float64 // throughput divisor for transcendental (SFU) operations
}

// FPGASpec describes a PCIe FPGA accelerator card.
type FPGASpec struct {
	Name       string
	ALMs       int     // adaptive logic modules (LUT resource pool)
	DSPs       int     // hardened DSP blocks
	BRAMBits   int64   // on-chip block RAM
	ClockHz    float64 // achievable pipeline clock after place and route
	DDRBWBps   float64 // on-card DRAM bandwidth
	PCIeBps    float64 // host transfer bandwidth
	USM        bool    // unified shared memory (zero-copy host access)
	USMBps     float64 // zero-copy streaming bandwidth (when USM)
	AddLatency int     // pipeline latency of a floating accumulation (cycles)
}

// The evaluation testbed of the paper, with public datasheet numbers.
// Sustained/LatIPC/OMPEff/PerThread are model calibration constants — they
// absorb compiler maturity and architectural efficiency differences that
// specs do not capture; EXPERIMENTS.md documents their calibration against
// the paper's Fig. 5 ratios.
var (
	// EPYC7543: AMD EPYC 7543, 32 cores @ 2.8 GHz, 8-channel DDR4-3200.
	EPYC7543 = CPUSpec{
		Name:      "AMD EPYC 7543 (32 cores, 2.8 GHz)",
		Cores:     32,
		ClockHz:   2.8e9,
		MemBWBps:  204.8e9,
		OMPEff:    0.92,
		PerThread: 1.0,
	}

	// GTX1080Ti: NVIDIA GeForce GTX 1080 Ti (Pascal GP102).
	GTX1080Ti = GPUSpec{
		Name:            "NVIDIA GeForce GTX 1080 Ti",
		SMs:             28,
		CoresPerSM:      128,
		ClockHz:         1.58e9,
		PeakFP32:        11.34e12,
		MemBWBps:        484e9,
		RegsPerSM:       65536,
		MaxThreadsPerSM: 2048,
		MaxBlockSize:    1024,
		PCIeBps:         9.0e9,
		PinnedScale:     1.25,
		Sustained:       0.31,
		LatIPC:          0.70,
		SpecialDiv:      6.0,
	}

	// RTX2080Ti: NVIDIA GeForce RTX 2080 Ti (Turing TU102).
	RTX2080Ti = GPUSpec{
		Name:            "NVIDIA GeForce RTX 2080 Ti",
		SMs:             68,
		CoresPerSM:      64,
		ClockHz:         1.545e9,
		PeakFP32:        13.45e12,
		MemBWBps:        616e9,
		RegsPerSM:       65536,
		MaxThreadsPerSM: 1024,
		MaxBlockSize:    1024,
		PCIeBps:         9.0e9,
		PinnedScale:     1.25,
		Sustained:       0.58,
		LatIPC:          0.70,
		SpecialDiv:      6.0,
	}

	// Arria10: Intel PAC with Arria 10 GX 1150.
	Arria10 = FPGASpec{
		Name:       "Intel PAC Arria 10 GX 1150",
		ALMs:       427200,
		DSPs:       1518,
		BRAMBits:   65 << 20,
		ClockHz:    240e6,
		DDRBWBps:   34e9,
		PCIeBps:    6.0e9, // PCIe gen3 x8
		USM:        false,
		AddLatency: 8,
	}

	// Stratix10: Intel Stratix 10 GX 2800 (D5005-class card) with USM.
	Stratix10 = FPGASpec{
		Name:       "Intel Stratix 10 GX 2800",
		ALMs:       933120,
		DSPs:       5760,
		BRAMBits:   244 << 20,
		ClockHz:    300e6,
		DDRBWBps:   76.8e9,
		PCIeBps:    12.0e9, // PCIe gen3 x16
		USM:        true,
		USMBps:     12.0e9,
		AddLatency: 8,
	}
)

// GPUs lists the catalog GPUs in the order of the paper's branch point B.
func GPUs() []GPUSpec { return []GPUSpec{GTX1080Ti, RTX2080Ti} }

// FPGAs lists the catalog FPGAs in the order of the paper's branch point C.
func FPGAs() []FPGASpec { return []FPGASpec{Arria10, Stratix10} }

// RegLimitedThreadsPerSM returns the number of resident threads per SM
// permitted by the register file for a kernel using regs registers per
// thread, clamped to the architectural maximum.
func (g GPUSpec) RegLimitedThreadsPerSM(regs int) int {
	if regs <= 0 {
		return g.MaxThreadsPerSM
	}
	t := g.RegsPerSM / regs
	if t > g.MaxThreadsPerSM {
		t = g.MaxThreadsPerSM
	}
	return t
}

// TransferTime returns the host↔device time for moving the given byte
// counts over PCIe, with the pinned-memory bandwidth boost when enabled.
func (g GPUSpec) TransferTime(bytesIn, bytesOut int64, pinned bool) float64 {
	bw := g.PCIeBps
	if pinned {
		bw *= g.PinnedScale
	}
	return float64(bytesIn+bytesOut) / bw
}

// GPUByName looks up a catalog GPU by its full name.
func GPUByName(name string) (GPUSpec, bool) {
	for _, g := range GPUs() {
		if g.Name == name {
			return g, true
		}
	}
	return GPUSpec{}, false
}

// FPGAByName looks up a catalog FPGA by its full name.
func FPGAByName(name string) (FPGASpec, bool) {
	for _, f := range FPGAs() {
		if f.Name == name {
			return f, true
		}
	}
	return FPGASpec{}, false
}
