package platform

import "testing"

func TestCatalogLookups(t *testing.T) {
	if len(GPUs()) != 2 || len(FPGAs()) != 2 {
		t.Fatalf("catalog sizes: %d GPUs, %d FPGAs", len(GPUs()), len(FPGAs()))
	}
	if g, ok := GPUByName(GTX1080Ti.Name); !ok || g.SMs != 28 {
		t.Errorf("GTX 1080 Ti lookup: %+v ok=%v", g, ok)
	}
	if f, ok := FPGAByName(Stratix10.Name); !ok || !f.USM {
		t.Errorf("Stratix 10 lookup: %+v ok=%v", f, ok)
	}
	if _, ok := GPUByName("nope"); ok {
		t.Error("bogus GPU resolved")
	}
	if _, ok := FPGAByName("nope"); ok {
		t.Error("bogus FPGA resolved")
	}
}

func TestTargetKindStrings(t *testing.T) {
	cases := map[TargetKind]string{TargetCPU: "cpu", TargetGPU: "gpu", TargetFPGA: "fpga", TargetKind(9): "unknown"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestDeviceSpecSanity(t *testing.T) {
	// Published spec relations the models depend on.
	if RTX2080Ti.SMs <= GTX1080Ti.SMs {
		t.Error("Turing part must have more SMs")
	}
	if RTX2080Ti.PeakFP32 <= GTX1080Ti.PeakFP32 {
		t.Error("2080 Ti peak must exceed 1080 Ti")
	}
	if RTX2080Ti.MemBWBps <= GTX1080Ti.MemBWBps {
		t.Error("2080 Ti bandwidth must exceed 1080 Ti")
	}
	if Stratix10.ALMs <= Arria10.ALMs || Stratix10.DSPs <= Arria10.DSPs {
		t.Error("Stratix 10 must be the larger FPGA")
	}
	if !Stratix10.USM || Arria10.USM {
		t.Error("only the Stratix 10 supports USM zero-copy (paper)")
	}
	if EPYC7543.Cores != 32 {
		t.Errorf("EPYC 7543 cores = %d, want 32", EPYC7543.Cores)
	}
}

func TestRegLimitedThreadsPerSM(t *testing.T) {
	// 255 registers: 65536/255 = 257, below both architectural caps.
	if got := GTX1080Ti.RegLimitedThreadsPerSM(255); got != 257 {
		t.Errorf("1080 reg-limited = %d, want 257", got)
	}
	// Tiny kernels clamp to the architectural max.
	if got := GTX1080Ti.RegLimitedThreadsPerSM(8); got != 2048 {
		t.Errorf("1080 unlimited = %d, want 2048", got)
	}
	if got := RTX2080Ti.RegLimitedThreadsPerSM(8); got != 1024 {
		t.Errorf("2080 unlimited = %d, want 1024 (Turing)", got)
	}
	if got := RTX2080Ti.RegLimitedThreadsPerSM(0); got != 1024 {
		t.Errorf("zero regs = %d, want max", got)
	}
}

func TestTransferTime(t *testing.T) {
	plain := GTX1080Ti.TransferTime(9e9, 0, false)
	if plain != 1.0 {
		t.Errorf("9 GB over 9 GB/s = %v, want 1s", plain)
	}
	pinned := GTX1080Ti.TransferTime(9e9, 0, true)
	if pinned >= plain {
		t.Errorf("pinned (%v) must beat pageable (%v)", pinned, plain)
	}
	both := GTX1080Ti.TransferTime(4e9, 5e9, false)
	if both != plain {
		t.Errorf("in+out should sum: %v", both)
	}
}
