// Package query implements the AST query mechanism of the meta-programming
// layer: predicate-based selection of nodes, structural relations
// (encloses, outermost, depth), and loop shape inspection. It is the Go
// counterpart of the paper's Artisan queries such as
//
//	query(∀loop,fn ∈ ast: loop.isForStmt ∧ fn.name = kernel_name
//	      ∧ fn.encloses(loop) ∧ loop.is_outermost)
package query

import (
	"psaflow/internal/minic"
)

// Q is a query context over one program. It caches the parent map; rebuild
// the context (New) after structural mutations.
type Q struct {
	Prog    *minic.Program
	parents map[minic.Node]minic.Node
}

// New builds a query context for prog.
func New(prog *minic.Program) *Q {
	return &Q{Prog: prog, parents: minic.Parents(prog)}
}

// Predicate decides whether a node matches; it receives the context so it
// can ask structural questions.
type Predicate func(q *Q, n minic.Node) bool

// Select returns all nodes under the program matching pred, in depth-first
// source order.
func (q *Q) Select(pred Predicate) []minic.Node {
	var out []minic.Node
	minic.Walk(q.Prog, func(n minic.Node) bool {
		if pred(q, n) {
			out = append(out, n)
		}
		return true
	})
	return out
}

// Parent returns the parent of n, or nil for the root.
func (q *Q) Parent(n minic.Node) minic.Node { return q.parents[n] }

// EnclosingFunc returns the function that contains n, or nil.
func (q *Q) EnclosingFunc(n minic.Node) *minic.FuncDecl {
	for cur := n; cur != nil; cur = q.parents[cur] {
		if f, ok := cur.(*minic.FuncDecl); ok {
			return f
		}
	}
	return nil
}

// Encloses reports whether inner is a strict descendant of outer.
func (q *Q) Encloses(outer, inner minic.Node) bool {
	for cur := q.parents[inner]; cur != nil; cur = q.parents[cur] {
		if cur == outer {
			return true
		}
	}
	return false
}

// IsLoop reports whether n is a for or while statement.
func IsLoop(n minic.Node) bool {
	switch n.(type) {
	case *minic.ForStmt, *minic.WhileStmt:
		return true
	}
	return false
}

// IsForStmt reports whether n is a for statement.
func IsForStmt(n minic.Node) bool {
	_, ok := n.(*minic.ForStmt)
	return ok
}

// IsOutermostLoop reports whether n is a loop with no enclosing loop in the
// same function.
func (q *Q) IsOutermostLoop(n minic.Node) bool {
	if !IsLoop(n) {
		return false
	}
	for cur := q.parents[n]; cur != nil; cur = q.parents[cur] {
		if IsLoop(cur) {
			return false
		}
		if _, ok := cur.(*minic.FuncDecl); ok {
			return true
		}
	}
	return true
}

// LoopDepth returns the nesting depth of loop n within its function
// (outermost loop = 1); 0 if n is not a loop.
func (q *Q) LoopDepth(n minic.Node) int {
	if !IsLoop(n) {
		return 0
	}
	d := 1
	for cur := q.parents[n]; cur != nil; cur = q.parents[cur] {
		if IsLoop(cur) {
			d++
		}
	}
	return d
}

// LoopsIn returns every loop statement in fn in depth-first source order.
func (q *Q) LoopsIn(fn *minic.FuncDecl) []minic.Stmt {
	var out []minic.Stmt
	minic.Walk(fn, func(n minic.Node) bool {
		if IsLoop(n) {
			out = append(out, n.(minic.Stmt))
		}
		return true
	})
	return out
}

// OutermostLoops returns the outermost loops of fn — the query from the
// paper's Fig. 2 meta-program.
func (q *Q) OutermostLoops(fn *minic.FuncDecl) []minic.Stmt {
	var out []minic.Stmt
	for _, l := range q.LoopsIn(fn) {
		if q.IsOutermostLoop(l) {
			out = append(out, l)
		}
	}
	return out
}

// InnerLoops returns all loops strictly nested inside loop.
func (q *Q) InnerLoops(loop minic.Stmt) []minic.Stmt {
	var out []minic.Stmt
	minic.Walk(loop, func(n minic.Node) bool {
		if n != minic.Node(loop) && IsLoop(n) {
			out = append(out, n.(minic.Stmt))
		}
		return true
	})
	return out
}

// LoopVar returns the canonical induction variable of a for loop of the
// form `for (int i = ...; i < ...; i++)`, or "" if the shape does not
// match.
func LoopVar(loop *minic.ForStmt) string {
	switch init := loop.Init.(type) {
	case *minic.DeclStmt:
		return init.Name
	case *minic.ExprStmt:
		if a, ok := init.X.(*minic.AssignExpr); ok && a.Op == minic.TokAssign {
			if id, ok := a.LHS.(*minic.Ident); ok {
				return id.Name
			}
		}
	}
	// Fall back to the post expression.
	switch post := loop.Post.(type) {
	case *minic.IncDecExpr:
		if id, ok := post.X.(*minic.Ident); ok {
			return id.Name
		}
	case *minic.AssignExpr:
		if id, ok := post.LHS.(*minic.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// LoopBound describes the statically recognized bounds of a canonical for
// loop: `for (v = Lo; v < Hi; v += Step)`.
type LoopBound struct {
	Var  string
	Lo   minic.Expr
	Hi   minic.Expr
	Step int64
}

// Bounds recognizes canonical for-loop shapes: init assigns the induction
// variable, cond is `v < hi` or `v <= hi`, post is `v++` or `v += c`.
// Returns ok=false for any other shape.
func Bounds(loop *minic.ForStmt) (LoopBound, bool) {
	var b LoopBound
	b.Var = LoopVar(loop)
	if b.Var == "" {
		return b, false
	}
	switch init := loop.Init.(type) {
	case *minic.DeclStmt:
		if init.Init == nil {
			return b, false
		}
		b.Lo = init.Init
	case *minic.ExprStmt:
		a, ok := init.X.(*minic.AssignExpr)
		if !ok || a.Op != minic.TokAssign {
			return b, false
		}
		b.Lo = a.RHS
	default:
		return b, false
	}
	cond, ok := loop.Cond.(*minic.BinaryExpr)
	if !ok || (cond.Op != minic.TokLt && cond.Op != minic.TokLe) {
		return b, false
	}
	lhs, ok := cond.L.(*minic.Ident)
	if !ok || lhs.Name != b.Var {
		return b, false
	}
	b.Hi = cond.R
	switch post := loop.Post.(type) {
	case *minic.IncDecExpr:
		if post.Op != minic.TokPlusPlus {
			return b, false
		}
		b.Step = 1
	case *minic.AssignExpr:
		if post.Op != minic.TokPlusEq {
			return b, false
		}
		c, ok := post.RHS.(*minic.IntLit)
		if !ok || c.Val <= 0 {
			return b, false
		}
		b.Step = c.Val
	default:
		return b, false
	}
	if cond.Op == minic.TokLe {
		// Normalize `<=` to an exclusive bound when both ends are literal.
		if hi, ok := b.Hi.(*minic.IntLit); ok {
			b.Hi = &minic.IntLit{Val: hi.Val + 1}
		} else {
			return b, false
		}
	}
	return b, true
}

// FixedTripCount returns the compile-time trip count of a canonical for
// loop whose bounds are integer literals, and whether it is fixed. This is
// the "fixed-bound" test used by the FPGA unroll tasks and the PSA
// strategy's "can fully unroll?" decision.
func FixedTripCount(loop minic.Stmt) (int64, bool) {
	fs, ok := loop.(*minic.ForStmt)
	if !ok {
		return 0, false
	}
	b, ok := Bounds(fs)
	if !ok {
		return 0, false
	}
	lo, ok := b.Lo.(*minic.IntLit)
	if !ok {
		return 0, false
	}
	hi, ok := b.Hi.(*minic.IntLit)
	if !ok {
		return 0, false
	}
	if hi.Val <= lo.Val {
		return 0, true
	}
	return (hi.Val - lo.Val + b.Step - 1) / b.Step, true
}

// IdentsUsed returns the set of identifier names referenced anywhere under
// n (reads and writes, including array bases and call arguments).
func IdentsUsed(n minic.Node) map[string]bool {
	out := make(map[string]bool)
	minic.Walk(n, func(m minic.Node) bool {
		if id, ok := m.(*minic.Ident); ok {
			out[id.Name] = true
		}
		return true
	})
	return out
}

// IdentsAssigned returns the set of names that are targets of assignment,
// ++/--, or declaration under n.
func IdentsAssigned(n minic.Node) map[string]bool {
	out := make(map[string]bool)
	minic.Walk(n, func(m minic.Node) bool {
		switch v := m.(type) {
		case *minic.AssignExpr:
			if id, ok := v.LHS.(*minic.Ident); ok {
				out[id.Name] = true
			}
		case *minic.IncDecExpr:
			if id, ok := v.X.(*minic.Ident); ok {
				out[id.Name] = true
			}
		case *minic.DeclStmt:
			out[v.Name] = true
		}
		return true
	})
	return out
}

// ArraysWritten returns the set of array base names written via
// `base[idx] = / += / ...` or ++/-- under n.
func ArraysWritten(n minic.Node) map[string]bool {
	out := make(map[string]bool)
	record := func(e minic.Expr) {
		if ix, ok := e.(*minic.IndexExpr); ok {
			if id, ok := ix.Base.(*minic.Ident); ok {
				out[id.Name] = true
			}
		}
	}
	minic.Walk(n, func(m minic.Node) bool {
		switch v := m.(type) {
		case *minic.AssignExpr:
			record(v.LHS)
		case *minic.IncDecExpr:
			record(v.X)
		}
		return true
	})
	return out
}

// ArraysRead returns the set of array base names read via `base[idx]`
// in a value position under n. Writes through `a[i] = x` do not count as
// reads of a, but `a[i] += x` does.
func ArraysRead(n minic.Node) map[string]bool {
	out := make(map[string]bool)
	var walkExpr func(e minic.Expr, store bool)
	walkExpr = func(e minic.Expr, store bool) {
		switch v := e.(type) {
		case nil:
		case *minic.IndexExpr:
			if !store {
				if id, ok := v.Base.(*minic.Ident); ok {
					out[id.Name] = true
				}
			}
			walkExpr(v.Index, false)
			// Nested bases (multi-dim sugar) are always reads.
			if _, ok := v.Base.(*minic.Ident); !ok {
				walkExpr(v.Base, false)
			}
		case *minic.AssignExpr:
			// Plain `=` does not read the LHS; compound ops do.
			walkExpr(v.LHS, v.Op == minic.TokAssign)
			walkExpr(v.RHS, false)
		case *minic.IncDecExpr:
			walkExpr(v.X, false) // x++ reads x
		case *minic.UnaryExpr:
			walkExpr(v.X, false)
		case *minic.BinaryExpr:
			walkExpr(v.L, false)
			walkExpr(v.R, false)
		case *minic.CallExpr:
			for _, a := range v.Args {
				walkExpr(a, false)
			}
		case *minic.CastExpr:
			walkExpr(v.X, false)
		}
	}
	minic.Walk(n, func(m minic.Node) bool {
		switch v := m.(type) {
		case *minic.ExprStmt:
			walkExpr(v.X, false)
			return false
		case *minic.DeclStmt:
			walkExpr(v.Init, false)
			return false
		case *minic.ReturnStmt:
			walkExpr(v.X, false)
			return false
		case *minic.ForStmt:
			if v.Cond != nil {
				walkExpr(v.Cond, false)
			}
			if v.Post != nil {
				walkExpr(v.Post, false)
			}
			// Init and body are visited as child statements.
			return true
		case *minic.WhileStmt:
			walkExpr(v.Cond, false)
			return true
		case *minic.IfStmt:
			walkExpr(v.Cond, false)
			return true
		}
		return true
	})
	return out
}

// CallsMade returns the set of function names called under n.
func CallsMade(n minic.Node) map[string]bool {
	out := make(map[string]bool)
	minic.Walk(n, func(m minic.Node) bool {
		if c, ok := m.(*minic.CallExpr); ok {
			out[c.Fun] = true
		}
		return true
	})
	return out
}
