package query

import (
	"testing"

	"psaflow/internal/minic"
)

const nestedSrc = `
void knl(int n, int m, double *a, double *b) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < m; j++) {
            a[i * m + j] = b[i * m + j] * 2.0;
        }
        while (a[i] > 100.0) {
            a[i] = a[i] / 2.0;
        }
    }
}

void other(int n, double *a) {
    for (int i = 0; i < n; i++) {
        a[i] = 0.0;
    }
}
`

func TestSelectOutermostForInFunc(t *testing.T) {
	prog := minic.MustParse(nestedSrc)
	q := New(prog)
	// The paper's Fig. 2 query: outermost for loops enclosed by knl.
	matches := q.Select(func(q *Q, n minic.Node) bool {
		if !IsForStmt(n) {
			return false
		}
		fn := q.EnclosingFunc(n)
		return fn != nil && fn.Name == "knl" && q.IsOutermostLoop(n)
	})
	if len(matches) != 1 {
		t.Fatalf("matches = %d, want 1", len(matches))
	}
	loop := matches[0].(*minic.ForStmt)
	if LoopVar(loop) != "i" {
		t.Errorf("loop var = %q, want i", LoopVar(loop))
	}
}

func TestLoopsInAndInnerLoops(t *testing.T) {
	prog := minic.MustParse(nestedSrc)
	q := New(prog)
	knl := prog.MustFunc("knl")
	all := q.LoopsIn(knl)
	if len(all) != 3 {
		t.Fatalf("LoopsIn = %d, want 3", len(all))
	}
	outer := q.OutermostLoops(knl)
	if len(outer) != 1 {
		t.Fatalf("OutermostLoops = %d, want 1", len(outer))
	}
	inner := q.InnerLoops(outer[0])
	if len(inner) != 2 {
		t.Fatalf("InnerLoops = %d, want 2", len(inner))
	}
}

func TestLoopDepth(t *testing.T) {
	prog := minic.MustParse(nestedSrc)
	q := New(prog)
	knl := prog.MustFunc("knl")
	loops := q.LoopsIn(knl)
	if d := q.LoopDepth(loops[0]); d != 1 {
		t.Errorf("outer depth = %d, want 1", d)
	}
	if d := q.LoopDepth(loops[1]); d != 2 {
		t.Errorf("inner depth = %d, want 2", d)
	}
	if d := q.LoopDepth(prog.MustFunc("knl").Body.Stmts[0].(*minic.ForStmt).Body); d != 0 {
		t.Errorf("non-loop depth = %d, want 0", d)
	}
}

func TestEncloses(t *testing.T) {
	prog := minic.MustParse(nestedSrc)
	q := New(prog)
	knl := prog.MustFunc("knl")
	other := prog.MustFunc("other")
	loops := q.LoopsIn(knl)
	if !q.Encloses(knl, loops[0]) {
		t.Error("knl should enclose its loop")
	}
	if !q.Encloses(loops[0], loops[1]) {
		t.Error("outer loop should enclose inner loop")
	}
	if q.Encloses(loops[1], loops[0]) {
		t.Error("inner loop must not enclose outer")
	}
	if q.Encloses(other, loops[0]) {
		t.Error("other must not enclose knl's loop")
	}
	if q.Encloses(loops[0], loops[0]) {
		t.Error("Encloses must be strict")
	}
}

func TestBoundsCanonical(t *testing.T) {
	prog := minic.MustParse(`void f(int n, int *a) {
        for (int i = 2; i < n; i++) { a[i] = 0; }
        for (int j = 0; j < 10; j += 2) { a[j] = 1; }
    }`)
	q := New(prog)
	loops := q.LoopsIn(prog.MustFunc("f"))
	b0, ok := Bounds(loops[0].(*minic.ForStmt))
	if !ok || b0.Var != "i" || b0.Step != 1 {
		t.Fatalf("bounds 0: %+v ok=%v", b0, ok)
	}
	if b0.Lo.(*minic.IntLit).Val != 2 {
		t.Errorf("lo = %v", minic.FormatExpr(b0.Lo))
	}
	b1, ok := Bounds(loops[1].(*minic.ForStmt))
	if !ok || b1.Step != 2 {
		t.Fatalf("bounds 1: %+v ok=%v", b1, ok)
	}
}

func TestBoundsNonCanonical(t *testing.T) {
	cases := []string{
		`void f(int n, int *a) { for (int i = 0; i > n; i++) { a[i] = 0; } }`,
		`void f(int n, int *a) { for (int i = 0; i < n; i--) { a[i] = 0; } }`,
		`void f(int n, int *a) { for (int i = 0; ; i++) { a[i] = 0; break; } }`,
		`void f(int n, int *a) { for (int i = 0; n < i; i++) { a[i] = 0; } }`,
		`void f(int n, int *a) { int i; for (; i < n; i++) { a[i] = 0; } }`,
	}
	for _, src := range cases {
		prog := minic.MustParse(src)
		q := New(prog)
		loop := q.LoopsIn(prog.MustFunc("f"))[0].(*minic.ForStmt)
		if _, ok := Bounds(loop); ok {
			t.Errorf("Bounds accepted non-canonical loop: %s", src)
		}
	}
}

func TestFixedTripCount(t *testing.T) {
	cases := []struct {
		src   string
		n     int64
		fixed bool
	}{
		{`void f(int *a) { for (int i = 0; i < 12; i++) { a[i] = 0; } }`, 12, true},
		{`void f(int *a) { for (int i = 0; i <= 12; i++) { a[i] = 0; } }`, 13, true},
		{`void f(int *a) { for (int i = 0; i < 10; i += 3) { a[i] = 0; } }`, 4, true},
		{`void f(int *a) { for (int i = 5; i < 5; i++) { a[i] = 0; } }`, 0, true},
		{`void f(int n, int *a) { for (int i = 0; i < n; i++) { a[i] = 0; } }`, 0, false},
	}
	for _, c := range cases {
		prog := minic.MustParse(c.src)
		q := New(prog)
		loop := q.LoopsIn(prog.MustFunc("f"))[0]
		n, fixed := FixedTripCount(loop)
		if fixed != c.fixed || (fixed && n != c.n) {
			t.Errorf("%s: got (%d,%v), want (%d,%v)", c.src, n, fixed, c.n, c.fixed)
		}
	}
}

func TestFixedTripCountWhile(t *testing.T) {
	prog := minic.MustParse(`void f(int n) { while (n > 0) { n--; } }`)
	q := New(prog)
	loop := q.LoopsIn(prog.MustFunc("f"))[0]
	if _, fixed := FixedTripCount(loop); fixed {
		t.Error("while loop must not have a fixed trip count")
	}
}

func TestIdentSets(t *testing.T) {
	prog := minic.MustParse(`
void f(int n, double *a, double *b, double *c) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        s += a[i] * b[i];
        c[i] = s;
        c[i] += 1.0;
    }
}`)
	fn := prog.MustFunc("f")
	used := IdentsUsed(fn.Body)
	for _, name := range []string{"n", "a", "b", "c", "s", "i"} {
		if !used[name] {
			t.Errorf("IdentsUsed missing %q", name)
		}
	}
	assigned := IdentsAssigned(fn.Body)
	for _, name := range []string{"s", "i"} {
		if !assigned[name] {
			t.Errorf("IdentsAssigned missing %q", name)
		}
	}
	if assigned["a"] || assigned["c"] {
		t.Error("array writes must not count as scalar assignment")
	}
	written := ArraysWritten(fn.Body)
	if !written["c"] || written["a"] || written["b"] {
		t.Errorf("ArraysWritten = %v", written)
	}
	read := ArraysRead(fn.Body)
	if !read["a"] || !read["b"] {
		t.Errorf("ArraysRead = %v, want a and b", read)
	}
	if !read["c"] {
		t.Errorf("c[i] += reads c; ArraysRead = %v", read)
	}
}

func TestArraysReadPlainStoreNotRead(t *testing.T) {
	prog := minic.MustParse(`void f(double *a, double *b) { a[0] = b[0]; }`)
	read := ArraysRead(prog.MustFunc("f").Body)
	if read["a"] {
		t.Error("plain store target must not count as read")
	}
	if !read["b"] {
		t.Error("b should be read")
	}
}

func TestCallsMade(t *testing.T) {
	prog := minic.MustParse(`double f(double x) { return sqrt(x) + helper(exp(x)); }`)
	calls := CallsMade(prog.MustFunc("f"))
	for _, name := range []string{"sqrt", "helper", "exp"} {
		if !calls[name] {
			t.Errorf("CallsMade missing %q", name)
		}
	}
}

func TestWhileIsLoopNotFor(t *testing.T) {
	prog := minic.MustParse(`void f(int n) { while (n > 0) { n--; } }`)
	q := New(prog)
	loop := q.LoopsIn(prog.MustFunc("f"))[0]
	if !IsLoop(loop) || IsForStmt(loop) {
		t.Error("while: IsLoop true, IsForStmt false expected")
	}
	if !q.IsOutermostLoop(loop) {
		t.Error("single while should be outermost")
	}
}

func TestParent(t *testing.T) {
	prog := minic.MustParse(nestedSrc)
	q := New(prog)
	knl := prog.MustFunc("knl")
	if q.Parent(knl) != minic.Node(prog) {
		t.Error("function parent should be program")
	}
	if q.Parent(prog) != nil {
		t.Error("program has no parent")
	}
	loop := q.OutermostLoops(knl)[0]
	if q.Parent(loop) != minic.Node(knl.Body) {
		t.Error("loop parent should be function body")
	}
}

func TestLoopVarNonCanonicalShapes(t *testing.T) {
	// Assignment-style init.
	prog := minic.MustParse(`void f(int n, int *a) {
        int i;
        for (i = 0; i < n; i++) { a[i] = 0; }
    }`)
	q := New(prog)
	loop := q.LoopsIn(prog.MustFunc("f"))[0].(*minic.ForStmt)
	if LoopVar(loop) != "i" {
		t.Errorf("assignment-init var = %q", LoopVar(loop))
	}
	// Post-only recognition (no init at all).
	prog2 := minic.MustParse(`void f(int n, int *a) {
        int j;
        j = 0;
        for (; j < n; j++) { a[j] = 0; }
    }`)
	q2 := New(prog2)
	loop2 := q2.LoopsIn(prog2.MustFunc("f"))[0].(*minic.ForStmt)
	if LoopVar(loop2) != "j" {
		t.Errorf("post-only var = %q", LoopVar(loop2))
	}
	// Compound-step post.
	prog3 := minic.MustParse(`void f(int n, int *a) {
        int k;
        for (k = 0; k < n; k += 4) { a[k] = 0; }
    }`)
	q3 := New(prog3)
	loop3 := q3.LoopsIn(prog3.MustFunc("f"))[0].(*minic.ForStmt)
	if LoopVar(loop3) != "k" {
		t.Errorf("compound-step var = %q", LoopVar(loop3))
	}
}

func TestSelectAllForStatements(t *testing.T) {
	prog := minic.MustParse(nestedSrc)
	q := New(prog)
	fors := q.Select(func(q *Q, n minic.Node) bool { return IsForStmt(n) })
	if len(fors) != 3 {
		t.Fatalf("for statements = %d, want 3", len(fors))
	}
	whiles := q.Select(func(q *Q, n minic.Node) bool {
		return IsLoop(n) && !IsForStmt(n)
	})
	if len(whiles) != 1 {
		t.Fatalf("while statements = %d, want 1", len(whiles))
	}
}
