package service

import (
	"encoding/json"
	"fmt"
	"sync"

	"psaflow/internal/bench"
	"psaflow/internal/events"
	"psaflow/internal/experiments"
	"psaflow/internal/minic"
	"psaflow/internal/telemetry"
)

// batchOutcome is the leader's terminal outcome, shared verbatim with
// every follower of the batch.
type batchOutcome struct {
	state   JobState
	msg     string
	class   string
	results []experiments.DesignResult
	rep     *telemetry.Report
	counter string
}

// Batched multi-job execution. The flow engine is deterministic, so two
// queued jobs that would execute the identical flow — same benchmark,
// same program fingerprint, same result-affecting spec fields — must
// produce identical results. With batching enabled (Config.Batch), the
// worker that dequeues the first such job becomes the batch leader: it
// claims every still-queued job with the same batch key as a follower,
// runs the flow exactly once through the process-wide program cache (one
// lowering, one progressively-quickened bytecode image), and distributes
// the result to the whole group. Followers' JobResults carry
// batched/batch_size/batch_leader so clients can see their job rode a
// shared execution; cancellation of a follower is best-effort only (the
// leader's run proceeds and the follower still receives its result).

// batchKey identifies the flow a job would execute: the program
// fingerprint plus every result-affecting JobSpec field. Source is
// replaced by the fingerprint (two textually different submissions of
// the same program batch together); jobs differing in any other field —
// including timeouts and fault specs, which can change the outcome —
// never share an execution.
func batchKey(job *Job) string {
	spec := job.Spec
	spec.Source = ""
	b, _ := json.Marshal(spec)
	return fmt.Sprintf("%016x|%s", job.fp, b)
}

// bundledFP caches the fingerprint of each benchmark's bundled source so
// submissions without custom source don't re-parse per request.
var bundledFP sync.Map // bench name → uint64

func programFingerprint(b *bench.Benchmark, prog *minic.Program) uint64 {
	if prog != nil {
		return minic.Fingerprint(prog)
	}
	if v, ok := bundledFP.Load(b.Name); ok {
		return v.(uint64)
	}
	fp := minic.Fingerprint(b.Parse())
	bundledFP.Store(b.Name, fp)
	return fp
}

// enrollBatch registers a freshly-queued job as a batching candidate.
// Caller holds s.mu (register serializes with claimFollowers' take).
func (s *Server) enrollBatch(job *Job) {
	if !s.cfg.Batch {
		return
	}
	s.pendingBatch[job.batchKey] = append(s.pendingBatch[job.batchKey], job)
}

// claimFollowers is called by the worker that just started leader: it
// takes every still-queued job with the leader's batch key out of the
// pending set and marks it running behind the leader. Claimed followers
// remain in the queue channel; the worker that later dequeues one finds
// it no longer queued and skips it (the same mechanism that skips jobs
// cancelled while queued). Jobs submitted after this point form the next
// batch.
func (s *Server) claimFollowers(leader *Job) []*Job {
	if !s.cfg.Batch {
		return nil
	}
	s.mu.Lock()
	pending := s.pendingBatch[leader.batchKey]
	delete(s.pendingBatch, leader.batchKey)
	s.mu.Unlock()
	var followers []*Job
	for _, f := range pending {
		if f == leader {
			continue
		}
		// A no-op cancel: the follower has no execution of its own to
		// stop, and the leader's run must not die with one rider.
		if !f.markRunning(func() {}) {
			continue // cancelled while queued (or already claimed)
		}
		s.logStart(f)
		followers = append(followers, f)
		st := f.Status()
		s.rec.Add(telemetry.CounterJobsStarted, 1)
		s.rec.Add(telemetry.CounterQueueWaitMillis, int64(st.QueueWaitMS))
		s.publish(f, events.Event{Type: events.TypeStarted, Name: f.Spec.Bench,
			Detail: fmt.Sprintf("batched behind leader %s (waited %.0fms in queue)", leader.ID, st.QueueWaitMS)})
		s.logf("job %s: batched behind leader %s", f.ID, leader.ID)
	}
	if len(followers) > 0 {
		s.rec.Add(telemetry.CounterBatchGroups, 1)
		s.rec.Add(telemetry.CounterBatchJobs, int64(len(followers)+1))
		s.publish(leader, events.Event{Type: events.TypeStarted, Name: leader.Spec.Bench,
			Detail: fmt.Sprintf("leading a batch of %d identical jobs", len(followers)+1)})
		s.logf("job %s: leading a batch of %d identical jobs", leader.ID, len(followers)+1)
	}
	return followers
}

// finishFollowers distributes the leader's outcome to its followers:
// each gets the leader's terminal state and a result built from the same
// evaluated designs and telemetry report, stamped with the batch fields.
func (s *Server) finishFollowers(leader *Job, followers []*Job, res *batchOutcome) {
	for _, f := range followers {
		f.finish(res.state, res.msg, nil)
		fres := buildResult(f.Status(), res.class, res.results, res.rep)
		fres.Batched = true
		fres.BatchSize = len(followers) + 1
		fres.BatchLeader = leader.ID
		f.setResult(fres)
		s.finalizeJob(f, res.counter)
	}
}
