package service

import (
	"context"
	"encoding/json"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"psaflow/internal/experiments"
	"psaflow/internal/interp"
	"psaflow/internal/telemetry"
)

// submitN submits n identical jobs and returns their IDs.
func submitN(t *testing.T, base string, spec JobSpec, n int) []string {
	t.Helper()
	ids := make([]string, n)
	for i := range ids {
		ids[i] = submitOK(t, base, spec).ID
	}
	return ids
}

func jobResult(t *testing.T, base, id string) *JobResult {
	t.Helper()
	code, body := getJSON(t, base+"/v1/jobs/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("result %s: got %d, body %s", id, code, body)
	}
	var res JobResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	return &res
}

// TestBatchedExecution queues 32 identical jobs before any worker starts
// and verifies the whole group rides ONE flow execution: the first
// dequeued job leads, the remaining 31 are finished as followers with
// copied results and the batch fields set.
func TestBatchedExecution(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueSize: 64, Batch: true})
	var flowRuns atomic.Int64
	s.runFlow = func(ctx context.Context, job *Job, rec *telemetry.Recorder) ([]experiments.DesignResult, error) {
		flowRuns.Add(1)
		return nil, nil
	}

	const n = 32
	ids := submitN(t, ts.URL, JobSpec{Bench: "nbody"}, n)
	// Workers start only now, so every job is queued (and enrolled for
	// batching) before the leader claims the group — deterministic.
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		waitState(t, ts.URL, id, 30*time.Second, StateDone)
	}

	if got := flowRuns.Load(); got != 1 {
		t.Fatalf("flow executed %d times for %d identical jobs, want 1", got, n)
	}
	leaderID := ""
	for _, id := range ids {
		res := jobResult(t, ts.URL, id)
		if !res.Batched || res.BatchSize != n || res.BatchLeader == "" {
			t.Fatalf("job %s: batch fields = (batched=%t size=%d leader=%q), want (true, %d, leader id)",
				id, res.Batched, res.BatchSize, res.BatchLeader, n)
		}
		if leaderID == "" {
			leaderID = res.BatchLeader
		} else if res.BatchLeader != leaderID {
			t.Fatalf("job %s names leader %s, others name %s", id, res.BatchLeader, leaderID)
		}
	}
	rec := s.Recorder()
	if g := rec.Counter(telemetry.CounterBatchGroups); g != 1 {
		t.Errorf("%s = %d, want 1", telemetry.CounterBatchGroups, g)
	}
	if j := rec.Counter(telemetry.CounterBatchJobs); j != n {
		t.Errorf("%s = %d, want %d", telemetry.CounterBatchJobs, j, n)
	}
	if c := rec.Counter(telemetry.CounterJobsCompleted); c != n {
		t.Errorf("%s = %d, want %d", telemetry.CounterJobsCompleted, c, n)
	}
	if st := rec.Counter(telemetry.CounterJobsStarted); st != n {
		t.Errorf("%s = %d, want %d (followers count as started)", telemetry.CounterJobsStarted, st, n)
	}
}

// TestBatchMixedSpecsSplitGroups checks the batch key: jobs differing in
// a result-affecting field (mode) must not share an execution.
func TestBatchMixedSpecsSplitGroups(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueSize: 64, Batch: true})
	var flowRuns atomic.Int64
	s.runFlow = func(ctx context.Context, job *Job, rec *telemetry.Recorder) ([]experiments.DesignResult, error) {
		flowRuns.Add(1)
		return nil, nil
	}
	var ids []string
	ids = append(ids, submitN(t, ts.URL, JobSpec{Bench: "nbody", Mode: "informed"}, 3)...)
	ids = append(ids, submitN(t, ts.URL, JobSpec{Bench: "nbody", Mode: "uninformed"}, 3)...)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		waitState(t, ts.URL, id, 30*time.Second, StateDone)
	}
	if got := flowRuns.Load(); got != 2 {
		t.Fatalf("flow executed %d times for 2 distinct specs, want 2", got)
	}
	if g := s.Recorder().Counter(telemetry.CounterBatchGroups); g != 2 {
		t.Errorf("%s = %d, want 2", telemetry.CounterBatchGroups, g)
	}
}

// TestBatchDisabledRunsEveryJob is the control: with batching off every
// job executes its own flow.
func TestBatchDisabledRunsEveryJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueSize: 64})
	var flowRuns atomic.Int64
	s.runFlow = func(ctx context.Context, job *Job, rec *telemetry.Recorder) ([]experiments.DesignResult, error) {
		flowRuns.Add(1)
		return nil, nil
	}
	ids := submitN(t, ts.URL, JobSpec{Bench: "nbody"}, 4)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		waitState(t, ts.URL, id, 30*time.Second, StateDone)
	}
	if got := flowRuns.Load(); got != 4 {
		t.Fatalf("flow executed %d times with batching off, want 4", got)
	}
	if res := jobResult(t, ts.URL, ids[0]); res.Batched || res.BatchSize != 0 {
		t.Errorf("unbatched job carries batch fields: %+v", res)
	}
}

// TestBatchLowersOnce is the end-to-end acceptance check: a batched run
// of 32 identical-fingerprint jobs through the REAL flow performs exactly
// as many bytecode lowerings as a single job does — the whole batch
// shares one lowered, progressively-quickened program image per distinct
// program the flow profiles (counter-verified via the process recorder).
func TestBatchLowersOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two real flows")
	}
	single, ts1 := newTestServer(t, Config{Workers: 1, QueueSize: 4})
	if err := single.Start(); err != nil {
		t.Fatal(err)
	}
	id := submitOK(t, ts1.URL, JobSpec{Bench: "kmeans"}).ID
	waitState(t, ts1.URL, id, 120*time.Second, StateDone)
	want := single.Recorder().Counter(interp.CounterBCLowerings)
	if want < 1 {
		t.Fatalf("single job performed %d lowerings, want >= 1", want)
	}

	const n = 32
	batched, ts2 := newTestServer(t, Config{Workers: 1, QueueSize: 64, Batch: true})
	ids := submitN(t, ts2.URL, JobSpec{Bench: "kmeans"}, n)
	if err := batched.Start(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		waitState(t, ts2.URL, id, 120*time.Second, StateDone)
	}
	rec := batched.Recorder()
	if got := rec.Counter(interp.CounterBCLowerings); got != want {
		t.Errorf("%d batched jobs performed %d lowerings, want %d (same as one job)",
			n, got, want)
	}
	if g, j := rec.Counter(telemetry.CounterBatchGroups), rec.Counter(telemetry.CounterBatchJobs); g != 1 || j != n {
		t.Errorf("batch counters groups=%d jobs=%d, want 1/%d", g, j, n)
	}
	// The shared image must never have fallen back to the closure engine.
	if fb := rec.Counter(interp.CounterBCFallbacks); fb != 0 {
		t.Errorf("%s = %d, want 0", interp.CounterBCFallbacks, fb)
	}
}
