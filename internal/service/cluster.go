package service

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"

	"psaflow/internal/cluster"
	"psaflow/internal/telemetry"
)

// Cluster integration of the HTTP handlers: a client may talk to any
// node and see one logical service.
//
// Submissions route by consistent hash: handleSubmit computes the job's
// ring owner from (tenant, program fingerprint) and forwards the decoded
// spec when the owner is another node — one hop at most, because the
// forwarded request carries ForwardedHeader and is always handled
// locally by the receiver. A forward that cannot reach its peer falls
// back to running the job locally: peer loss never fails a submission.
//
// Status, result, event, and cancel requests for jobs this node does not
// know proxy to the node whose ID prefixes the job ID (the ID *is* the
// routing table — no shared state needed). Proxied requests carry
// ProxiedHeader, again capping the hop count at one.

// forwardSubmit relays a validated, flow-pinned spec to its ring owner
// and copies the owner's response verbatim. false = transport failure
// (counted); the caller runs the job locally.
func (s *Server) forwardSubmit(w http.ResponseWriter, ctx context.Context, owner string, spec JobSpec) bool {
	c := s.cfg.Cluster
	body, err := json.Marshal(spec)
	if err != nil {
		return false
	}
	resp, err := c.ForwardSubmit(ctx, owner, body)
	if err != nil {
		s.rec.Add(telemetry.CounterClusterForwardFailed, 1)
		s.rec.Add(telemetry.CounterClusterForwardedLocal, 1)
		s.logf("cluster: forward to %s failed, running locally: %v", owner, err)
		return false
	}
	defer resp.Body.Close()
	s.rec.Add(telemetry.CounterClusterForwarded, 1)
	relayResponse(w, resp)
	return true
}

// proxyToOwner relays a request for a job whose ID names another node.
// false = not proxyable (no cluster, already proxied, unknown prefix, or
// the job is ours); transport failures answer 502 and return true.
func (s *Server) proxyToOwner(w http.ResponseWriter, r *http.Request, id string) bool {
	c := s.cfg.Cluster
	if c == nil || r.Header.Get(cluster.ProxiedHeader) != "" || r.Header.Get(cluster.ForwardedHeader) != "" {
		return false
	}
	owner := ""
	for _, node := range c.Nodes() {
		if node != c.Self() && strings.HasPrefix(id, node+"-") {
			owner = node
			break
		}
	}
	if owner == "" {
		return false
	}
	url, ok := c.PeerURL(owner)
	if !ok {
		return false
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url+r.URL.Path, nil)
	if err != nil {
		return false
	}
	req.URL.RawQuery = r.URL.RawQuery
	req.Header.Set(cluster.ProxiedHeader, c.Self())
	if accept := r.Header.Get("Accept"); accept != "" {
		req.Header.Set("Accept", accept)
	}
	if from := r.Header.Get("Last-Event-ID"); from != "" {
		req.Header.Set("Last-Event-ID", from)
	}
	// Event streams outlive any sane request timeout; everything else
	// uses the bounded peer client.
	client := c.StreamClient()
	resp, err := client.Do(req)
	if err != nil {
		s.rec.Add(telemetry.CounterClusterProxyFailed, 1)
		writeErr(w, http.StatusBadGateway, "job %q lives on node %s, which is unreachable: %v", id, owner, err)
		return true
	}
	defer resp.Body.Close()
	s.rec.Add(telemetry.CounterClusterProxied, 1)
	relayResponse(w, resp)
	return true
}

// relayResponse copies a peer's response through, flushing after every
// read so proxied event streams stay live.
func relayResponse(w http.ResponseWriter, resp *http.Response) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// clusterMetrics is the /metrics cluster block (nil on a single node).
type clusterMetrics struct {
	cluster.Stats
	// RunCachePeerHits counts local run-cache misses served by a peer —
	// executions this node skipped because the cluster had the result.
	RunCachePeerHits int64 `json:"runcache_peer_hits"`
	JobsForwarded    int64 `json:"jobs_forwarded"`
	JobsProxied      int64 `json:"requests_proxied"`
	ForwardFailed    int64 `json:"forward_failures"`
	LocalFallbacks   int64 `json:"forward_local_fallbacks"`
}
