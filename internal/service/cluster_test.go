package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"psaflow/internal/cluster"
	"psaflow/internal/faults"
)

// testCluster is n full service nodes in-process: each Server gets its
// own cluster.Node, all muxes are served over httptest, and the peer
// tables are wired after the listeners exist (the same listen-then-join
// order a real deployment has).
type testCluster struct {
	servers   []*Server
	listeners []*httptest.Server
	bases     []string
	nodes     []*cluster.Node
}

func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	ids := []string{"ca", "cb", "cc", "cd", "ce"}[:n]
	tc := &testCluster{
		servers:   make([]*Server, n),
		listeners: make([]*httptest.Server, n),
		bases:     make([]string, n),
		nodes:     make([]*cluster.Node, n),
	}
	for i := range tc.nodes {
		node, err := cluster.New(cluster.Config{
			Self:         ids[i],
			Retry:        faults.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
			PingInterval: 100 * time.Millisecond,
			FetchWait:    500 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.nodes[i] = node
		tc.servers[i] = New(Config{Workers: 2, QueueSize: 32, Cluster: node})
		ts := httptest.NewServer(tc.servers[i].Handler())
		t.Cleanup(ts.Close)
		tc.listeners[i] = ts
		tc.bases[i] = ts.URL
	}
	for i, node := range tc.nodes {
		peers := make(map[string]string)
		for j, id := range ids {
			if j != i {
				peers[id] = tc.bases[j]
			}
		}
		if err := node.SetPeers(peers); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range tc.servers {
		if err := s.Start(); err != nil {
			t.Fatalf("start node %d: %v", i, err)
		}
		srv := s
		t.Cleanup(func() { srv.Drain() })
	}
	return tc
}

// tenantForOwner searches tenant names until the ring places (tenant, fp)
// on the wanted node — how the tests steer a submission to a chosen home.
func tenantForOwner(t *testing.T, nodes []*cluster.Node, spec JobSpec, owner string) string {
	t.Helper()
	b, prog, err := spec.validate()
	if err != nil {
		t.Fatal(err)
	}
	fp := programFingerprint(b, prog)
	for i := 0; i < 100000; i++ {
		tenant := fmt.Sprintf("t%d", i)
		if nodes[0].OwnerForJob(tenant, fp) == owner {
			return tenant
		}
	}
	t.Fatalf("no tenant maps to node %s", owner)
	return ""
}

func fetchClusterMetrics(t *testing.T, base string) clusterMetrics {
	t.Helper()
	code, body := getJSON(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d %s", code, body)
	}
	var m struct {
		Service struct {
			Cluster *clusterMetrics `json:"cluster"`
		} `json:"service"`
	}
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Service.Cluster == nil {
		t.Fatalf("metrics missing cluster block: %s", body)
	}
	return *m.Service.Cluster
}

// TestClusterForwardedSubmit submits to a node that does not own the
// job's (tenant, fingerprint) slot and follows it through the forward:
// the job ID names the owner, status polls against the submit node proxy
// across, and a third uninvolved node can read the result too.
func TestClusterForwardedSubmit(t *testing.T) {
	tc := newTestCluster(t, 3)
	bases, nodes := tc.bases, tc.nodes
	spec := JobSpec{Bench: "adpredictor"}
	spec.Tenant = tenantForOwner(t, nodes, spec, "cb")

	st := submitOK(t, bases[0], spec)
	if !strings.HasPrefix(st.ID, "cb-") {
		t.Fatalf("job ID %q should carry the owner prefix cb-", st.ID)
	}
	if m := fetchClusterMetrics(t, bases[0]); m.JobsForwarded < 1 {
		t.Fatalf("submit node counted no forwards: %+v", m)
	}

	// Polling the submit node proxies each status read to the owner.
	waitState(t, bases[0], st.ID, 30*time.Second, StateDone)
	if m := fetchClusterMetrics(t, bases[0]); m.JobsProxied < 1 {
		t.Fatalf("submit node counted no proxied requests: %+v", m)
	}
	// Any node serves the result, including one that saw neither the
	// submit nor the run.
	if res := jobResult(t, bases[2], st.ID); len(res.Designs) == 0 {
		t.Fatalf("third-node result has no designs: %+v", res)
	}
}

// TestClusterHealthz checks the peer view the small-fix satellite added:
// ring membership, per-peer health, and the healthy-node gauge.
func TestClusterHealthz(t *testing.T) {
	tc := newTestCluster(t, 3)
	bases := tc.bases
	code, body := getJSON(t, bases[1]+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d %s", code, body)
	}
	var h struct {
		Node    string             `json:"node"`
		Ring    []string           `json:"ring"`
		Peers   []cluster.PeerInfo `json:"peers"`
		Healthy int                `json:"cluster_peers_healthy"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Node != "cb" || len(h.Ring) != 3 || len(h.Peers) != 3 || h.Healthy != 3 {
		t.Fatalf("healthz cluster view: %s", body)
	}
	for _, p := range h.Peers {
		if p.ID == "cb" && !p.Self {
			t.Errorf("own entry not marked self: %+v", p)
		}
	}
}

// TestClusterCrossNodeCacheHit runs the same program on two different
// nodes (distinct tenants steer placement apart) and asserts the second
// node served its profiled runs from the cluster cache instead of
// recomputing — the distributed read-through path end to end.
func TestClusterCrossNodeCacheHit(t *testing.T) {
	tc := newTestCluster(t, 3)
	bases, nodes := tc.bases, tc.nodes
	spec := JobSpec{Bench: "adpredictor"}

	first := spec
	first.Tenant = tenantForOwner(t, nodes, spec, "ca")
	st1 := submitOK(t, bases[0], first)
	waitState(t, bases[0], st1.ID, 30*time.Second, StateDone)

	second := spec
	second.Tenant = tenantForOwner(t, nodes, spec, "cb")
	st2 := submitOK(t, bases[1], second)
	waitState(t, bases[1], st2.ID, 30*time.Second, StateDone)

	if m := fetchClusterMetrics(t, bases[1]); m.RunCachePeerHits < 1 {
		t.Fatalf("second node recomputed instead of hitting the cluster cache: %+v", m)
	}
	var envelopes int
	for _, base := range bases {
		envelopes += fetchClusterMetrics(t, base).RunEntries
	}
	if envelopes < 1 {
		t.Fatalf("no node holds a filled cluster-cache envelope")
	}
}

// TestClusterDeterminism is the differential acceptance check: one spec
// executed three ways — plain single-node compute, a forwarded submit,
// and a run served through a peer-cache fill — must produce byte-identical
// designs.
func TestClusterDeterminism(t *testing.T) {
	spec := JobSpec{Bench: "adpredictor", Mode: "informed"}

	// Baseline: an uncluttered single node.
	solo, soloTS := newTestServer(t, Config{Workers: 1, QueueSize: 8})
	if err := solo.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { solo.Drain() })
	stSolo := submitOK(t, soloTS.URL, spec)
	waitState(t, soloTS.URL, stSolo.ID, 30*time.Second, StateDone)
	want, err := json.Marshal(jobResult(t, soloTS.URL, stSolo.ID).Designs)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobResult(t, soloTS.URL, stSolo.ID).Designs) == 0 {
		t.Fatal("baseline produced no designs")
	}

	tc := newTestCluster(t, 3)
	bases, nodes := tc.bases, tc.nodes

	// Forwarded: submitted at ca, owned and run by cc.
	fwd := spec
	fwd.Tenant = tenantForOwner(t, nodes, spec, "cc")
	stFwd := submitOK(t, bases[0], fwd)
	if !strings.HasPrefix(stFwd.ID, "cc-") {
		t.Fatalf("forwarded job landed at %q", stFwd.ID)
	}
	waitState(t, bases[0], stFwd.ID, 30*time.Second, StateDone)
	if got, _ := json.Marshal(jobResult(t, bases[0], stFwd.ID).Designs); string(got) != string(want) {
		t.Errorf("forwarded designs differ:\n got %s\nwant %s", got, want)
	}

	// Peer-cache: the same program on a different node — its profiled runs
	// arrive through the cluster cache cc's run filled.
	cached := spec
	cached.Tenant = tenantForOwner(t, nodes, spec, "ca")
	stC := submitOK(t, bases[0], cached)
	waitState(t, bases[0], stC.ID, 30*time.Second, StateDone)
	if got, _ := json.Marshal(jobResult(t, bases[0], stC.ID).Designs); string(got) != string(want) {
		t.Errorf("peer-cache designs differ:\n got %s\nwant %s", got, want)
	}
}

// TestClusterPeerLossDegrades kills a node and checks the survivors: a
// submission owned by the dead node falls back to running locally (a
// forward failure is a placement degradation, never a job failure), and
// health reporting shows the loss.
func TestClusterPeerLossDegrades(t *testing.T) {
	tc := newTestCluster(t, 3)
	bases, nodes := tc.bases, tc.nodes
	spec := JobSpec{Bench: "adpredictor"}
	spec.Tenant = tenantForOwner(t, nodes, spec, "cc")

	// Take cc down hard: stop its workers, then close the listener so its
	// peers see connection refused (httptest Close is idempotent; the
	// harness cleanup becomes a no-op).
	tc.servers[2].Drain()
	tc.listeners[2].Close()

	// A job whose ring owner is the dead node must still run: the forward
	// fails over to local execution on the submit node.
	st := submitOK(t, bases[0], spec)
	if !strings.HasPrefix(st.ID, "ca-") {
		t.Fatalf("fallback job should run on the submit node, got %q", st.ID)
	}
	final := waitState(t, bases[0], st.ID, 30*time.Second, StateDone)
	if final.State != StateDone {
		t.Fatalf("fallback job: %+v", final)
	}
	m := fetchClusterMetrics(t, bases[0])
	if m.ForwardFailed < 1 || m.LocalFallbacks < 1 {
		t.Fatalf("fallback not counted: %+v", m)
	}

	// Health converges: after a couple of failed pings the survivors mark
	// cc unhealthy and the gauge drops to 2.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if !tc.nodes[0].Healthy("cc") && tc.nodes[0].HealthyCount() == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivor never marked cc unhealthy (healthy=%d)", tc.nodes[0].HealthyCount())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// With cc out of the healthy set, new jobs for its slots rehash onto
	// survivors and submit cleanly.
	st2 := submitOK(t, bases[1], spec)
	waitState(t, bases[1], st2.ID, 30*time.Second, StateDone)
}
