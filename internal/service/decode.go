package service

import (
	"io"

	"psaflow/internal/jsonstream"
)

// decodeJobSpec reads a submit body as a stream: each field is decoded
// as its tokens arrive, so a chunked upload is parsed incrementally and
// the handler holds at most one field's value beyond the spec itself —
// never the whole document. Unknown fields fail by name, matching the
// old DisallowUnknownFields behavior (a typoed time_out_ms silently
// running with defaults is worse than a 400). Reader errors — notably
// *http.MaxBytesError from the body cap — pass through for the caller
// to classify.
func decodeJobSpec(r io.Reader) (JobSpec, error) {
	var spec JobSpec
	obj := jsonstream.NewObject()
	obj.String("bench", &spec.Bench)
	obj.String("source", &spec.Source)
	obj.String("mode", &spec.Mode)
	obj.String("flow", &spec.Flow)
	obj.Bool("sharing", &spec.Sharing)
	obj.Float64("ai_threshold", &spec.AIThreshold)
	obj.Float64("transfer_bw", &spec.TransferBW)
	obj.Int64("timeout_ms", &spec.TimeoutMS)
	obj.String("faults", &spec.Faults)
	obj.Int("retry_max_attempts", &spec.RetryMaxAttempts)
	obj.Int("retry_budget", &spec.RetryBudget)
	obj.Int64("task_timeout_ms", &spec.TaskTimeoutMS)
	obj.Int("dse_workers", &spec.DSEWorkers)
	obj.String("tenant", &spec.Tenant)
	obj.Int("priority", &spec.Priority)
	err := obj.Decode(r)
	return spec, err
}
