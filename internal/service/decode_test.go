package service

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestSubmitChunkedBody drives the streaming decoder over a real chunked
// upload: the body arrives via an io.Pipe in small pieces with pauses, so
// the request has no Content-Length and the handler must parse tokens as
// they trickle in rather than buffering the document.
func TestSubmitChunkedBody(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueSize: 4})

	body := `{"bench":"adpredictor","mode":"informed","tenant":"acme","priority":2}`
	pr, pw := io.Pipe()
	go func() {
		defer pw.Close()
		for i := 0; i < len(body); i += 7 {
			end := min(i+7, len(body))
			if _, err := pw.Write([]byte(body[i:end])); err != nil {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", pr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.ContentLength == 0 && req.ContentLength != 0 {
		t.Fatalf("request was not chunked (ContentLength %d)", req.ContentLength)
	}
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("chunked submit: got %d, body %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), `"tenant": "acme"`) {
		t.Fatalf("status missing tenant: %s", raw)
	}
}

// TestSubmitStreamDecodeErrors pins the streaming decoder to the old
// handler contract: unknown fields 400 naming the offender, oversized
// bodies 413, non-object bodies 400.
func TestSubmitStreamDecodeErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueSize: 4, MaxBody: 256})

	post := func(body string) (int, string) {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}

	if code, body := post(`{"bench":"adpredictor","time_out_ms":5}`); code != http.StatusBadRequest || !strings.Contains(body, "time_out_ms") {
		t.Errorf("typoed field: got %d %s", code, body)
	}
	if code, _ := post(`{"bench":"adpredictor","source":"` + strings.Repeat("x", 400) + `"}`); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: got %d", code)
	}
	if code, _ := post(`["adpredictor"]`); code != http.StatusBadRequest {
		t.Errorf("non-object body: got %d", code)
	}
	if code, _ := post(`{"bench":"adpredictor"}{"bench":"adpredictor"}`); code != http.StatusBadRequest {
		t.Errorf("trailing data: got %d", code)
	}
}
