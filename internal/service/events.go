package service

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"psaflow/internal/events"
	"psaflow/internal/telemetry"
)

// jobSink bridges a job's flow telemetry into its event broker: task
// spans become task_start/task_end events, span notes become note events,
// and the engine's typed emissions (branch decisions, DSE progress,
// faults, retries) pass through. Branch/path/flow spans are not mirrored
// — branch_decision events and the job lifecycle already cover them, and
// the stream stays uncluttered.
type jobSink struct {
	s   *Server
	job *Job
}

func (k *jobSink) SpanStart(kind, name string) {
	if kind == telemetry.KindTask {
		k.s.publish(k.job, events.Event{Type: events.TypeTaskStart, Name: name})
	}
}

func (k *jobSink) SpanEnd(kind, name, detail string, dur time.Duration) {
	if kind == telemetry.KindTask {
		k.s.publish(k.job, events.Event{Type: events.TypeTaskEnd, Name: name, Detail: detail,
			DurMS: float64(dur) / float64(time.Millisecond)})
	}
}

func (k *jobSink) SpanNote(kind, name, note string) {
	k.s.publish(k.job, events.Event{Type: events.TypeNote, Name: name, Detail: note})
}

func (k *jobSink) Event(typ, name, detail string) {
	k.s.publish(k.job, events.Event{Type: typ, Name: name, Detail: detail})
}

// defaultEventHeartbeat keeps idle streams alive through proxies.
const defaultEventHeartbeat = 10 * time.Second

// liveFlushInterval coalesces live-tail writes: without it every event
// costs every watcher a flush (a TCP packet each — with hundreds of
// watchers the packet work alone starves the flows the events describe).
// The first batch and the terminal event still flush immediately, so
// time-to-first-event and stream termination pay no coalescing latency.
const liveFlushInterval = 25 * time.Millisecond

// handleEvents streams a job's events as NDJSON (or SSE when the client
// asks via Accept: text/event-stream): the retained ring replays first —
// so the first event reaches the client immediately, regardless of where
// the flow is — then the live tail follows until the job reaches a
// terminal state or the client disconnects. `?from=<seq>` (or the SSE
// Last-Event-ID header) resumes after a dropped connection; events before
// the replay window are skipped and counted, never silently elided into
// an apparently complete stream. Nothing is buffered beyond the fixed
// ring: a watcher of an unbounded flow costs O(ring), not O(stream).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job := s.lookup(id)
	if job == nil {
		if _, err := s.loadResult(id); err == nil {
			// Evicted from the registry: the history is gone but the
			// outcome is not.
			writeErr(w, http.StatusGone, "job %q was evicted from the registry; its result is at /v1/jobs/%s/result", id, id)
			return
		}
		if s.proxyToOwner(w, r, id) {
			return
		}
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}

	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	var from uint64
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "invalid from=%q: %v", v, err)
			return
		}
		from = n
	} else if sse {
		// SSE auto-reconnect sends the last seen seq; resume after it.
		if v := r.Header.Get("Last-Event-ID"); v != "" {
			if n, err := strconv.ParseUint(v, 10, 64); err == nil {
				from = n + 1
			}
		}
	}

	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "response writer does not support streaming")
		return
	}
	sub, ok := job.events.Subscribe(from)
	if !ok {
		writeErr(w, http.StatusTooManyRequests, "job %q already has the maximum number of event watchers", id)
		return
	}
	s.rec.Add(telemetry.CounterEventWatchers, 1)
	defer func() {
		s.rec.Add(telemetry.CounterEventsDropped, int64(sub.Close()))
		s.rec.Add(telemetry.CounterEventWatchers, -1)
	}()

	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // tell buffering proxies to pass frames through
	w.WriteHeader(http.StatusOK)
	// No flush before the first poll: a late subscriber (the common case —
	// at minimum the queued event is retained) gets headers and the replay
	// batch in one packet, which is what keeps time-to-first-event flat
	// under hundreds of concurrent watchers.

	heartbeat := s.cfg.EventHeartbeat
	if heartbeat <= 0 {
		heartbeat = defaultEventHeartbeat
	}
	hb := time.NewTicker(heartbeat)
	defer hb.Stop()
	// The coalescing timer is armed only while unflushed frames sit in the
	// buffer (a free-running per-watcher ticker would itself be a load at
	// high watcher counts), so an idle or fully-flushed stream costs no
	// timer wakeups at all.
	flushTimer := time.NewTimer(time.Hour)
	flushTimer.Stop()
	defer flushTimer.Stop()
	var flushC <-chan time.Time

	ctx := r.Context()
	first := true
	pending := false // frames written since the last flush
	for {
		frames, done := sub.Poll(64)
		for _, f := range frames {
			if err := writeFrame(w, f, sse); err != nil {
				return // client went away mid-write
			}
			pending = true
		}
		if done || first {
			// Headers + replay batch leave in one packet; the terminal
			// event is never held back by coalescing.
			flusher.Flush()
			pending, first = false, false
		}
		if done {
			return
		}
		if pending && flushC == nil {
			flushTimer.Reset(liveFlushInterval)
			flushC = flushTimer.C
		}
		select {
		case <-ctx.Done():
			return
		case <-sub.Ready():
			// New frames (or the close) are visible; loop and write them.
			// They buffer until the armed flush timer fires.
		case <-flushC:
			flushC = nil
			if pending {
				flusher.Flush()
				pending = false
			}
		case <-hb.C:
			// Keep-alive: a blank NDJSON line (parsers skip empty lines) or
			// an SSE comment.
			if sse {
				if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
					return
				}
			} else {
				if _, err := fmt.Fprint(w, "\n"); err != nil {
					return
				}
			}
			flusher.Flush()
			pending = false
		}
	}
}

// writeFrame renders one event frame using the broker's pre-marshalled
// line (shared by every watcher), so a replay from seq 0 is byte-for-byte
// the live stream.
func writeFrame(w http.ResponseWriter, f events.Frame, sse bool) error {
	if sse {
		_, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", f.Seq, f.Type, f.Line)
		return err
	}
	if _, err := w.Write(f.Line); err != nil {
		return err
	}
	_, err := w.Write([]byte{'\n'})
	return err
}
